/**
 * @file
 * Unit tests of the discrete-event simulation kernel: event ordering,
 * priorities, SelfEvent semantics, clocked objects, statistics and the
 * deterministic RNG.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/sim_object.hh"
#include "sim/simulator.hh"
#include "sim/stats.hh"

using namespace nova::sim;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(300, [&] { order.push_back(3); });
    eq.schedule(100, [&] { order.push_back(1); });
    eq.schedule(200, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 300u);
}

TEST(EventQueue, SameTickFifoStable)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(50, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBreaksTies)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); }, 5);
    eq.schedule(10, [&] { order.push_back(1); }, -5);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleIn(5, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(eq.now(), 45u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 100; t += 10)
        eq.schedule(t, [&] { ++count; });
    eq.run(45);
    EXPECT_EQ(count, 5);
    EXPECT_FALSE(eq.empty());
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, MaxEventsLimit)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 20; ++i)
        eq.schedule(static_cast<Tick>(i), [&] { ++count; });
    eq.run(maxTick, 7);
    EXPECT_EQ(count, 7);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.runOne();
    EXPECT_THROW(eq.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 5u);
}

TEST(EventQueue, FingerprintTracksExecutionOrder)
{
    // Two identical schedules produce identical fingerprints ...
    auto run_schedule = [](bool swap) {
        EventQueue eq;
        eq.schedule(10, [] {}, swap ? 1 : -1);
        eq.schedule(10, [] {}, swap ? -1 : 1);
        eq.schedule(25, [] {});
        eq.run();
        return eq.fingerprint();
    };
    EXPECT_EQ(run_schedule(false), run_schedule(false));
    // ... while flipping same-tick priorities reorders execution and
    // must change the fingerprint.
    EXPECT_NE(run_schedule(false), run_schedule(true));
    // An empty queue keeps the initial basis.
    EventQueue fresh;
    EXPECT_EQ(fresh.fingerprint(), EventQueue().fingerprint());
}

TEST(SelfEvent, ScheduleWhilePendingIsNoop)
{
    EventQueue eq;
    int fired = 0;
    SelfEvent ev(eq, [&] { ++fired; });
    ev.schedule(100);
    ev.schedule(50); // ignored: already pending at 100
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 100u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());
}

TEST(SelfEvent, DescheduleCancels)
{
    EventQueue eq;
    int fired = 0;
    SelfEvent ev(eq, [&] { ++fired; });
    ev.schedule(100);
    ev.deschedule();
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(SelfEvent, ReschedulableAfterFiring)
{
    EventQueue eq;
    int fired = 0;
    SelfEvent ev(eq, [&] { ++fired; });
    ev.schedule(10);
    eq.run();
    ev.schedule(20);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(SelfEvent, DescheduleThenRescheduleFiresOnce)
{
    EventQueue eq;
    int fired = 0;
    SelfEvent ev(eq, [&] { ++fired; });
    ev.schedule(10);
    ev.deschedule();
    ev.schedule(30);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 30u);
}

TEST(ClockedObject, CycleTickConversions)
{
    EventQueue eq;
    ClockedObject obj("clk", eq, 500); // 2 GHz
    EXPECT_EQ(obj.clockPeriod(), 500u);
    EXPECT_EQ(obj.cyclesToTicks(4), 2000u);
    EXPECT_EQ(obj.curCycle(), 0u);
    EXPECT_EQ(obj.clockEdge(0), 0u);
    EXPECT_EQ(obj.clockEdge(3), 1500u);
}

TEST(ClockedObject, EdgeAlignsUp)
{
    EventQueue eq;
    ClockedObject obj("clk", eq, 500);
    eq.schedule(750, [] {});
    eq.run();
    EXPECT_EQ(obj.clockEdge(0), 1000u);
    EXPECT_EQ(obj.clockEdge(1), 1500u);
    EXPECT_EQ(obj.curCycle(), 1u);
}

TEST(Stats, ScalarArithmetic)
{
    stats::Scalar s;
    s += 2.5;
    ++s;
    s -= 1.0;
    EXPECT_DOUBLE_EQ(s.value(), 2.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, GroupCollectAndGet)
{
    stats::Group parent("sys");
    stats::Group child("unit");
    stats::Scalar a, b;
    a.set(3);
    b.set(7);
    parent.addScalar("a", &a);
    child.addScalar("b", &b);
    parent.addChild(&child);

    std::map<std::string, double> all;
    parent.collect(all);
    EXPECT_DOUBLE_EQ(all.at("sys.a"), 3);
    EXPECT_DOUBLE_EQ(all.at("sys.unit.b"), 7);
    EXPECT_DOUBLE_EQ(parent.get("sys.unit.b"), 7);
    EXPECT_TRUE(parent.has("sys.a"));
    EXPECT_FALSE(parent.has("sys.nope"));
    EXPECT_THROW(parent.get("sys.nope"), PanicError);
}

TEST(Stats, HistogramMoments)
{
    stats::Histogram h(0, 10, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 4.5);
    EXPECT_DOUBLE_EQ(h.min(), 0);
    EXPECT_DOUBLE_EQ(h.max(), 9);
    for (const auto bucket : h.buckets())
        EXPECT_EQ(bucket, 1u);
}

TEST(Stats, HistogramClampsOutOfRange)
{
    stats::Histogram h(0, 10, 2);
    h.sample(-5);
    h.sample(50);
    EXPECT_EQ(h.buckets().front(), 1u);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Simulator, RunsRegisteredObjects)
{
    Simulator simr("top");
    struct Ticker : SimObject
    {
        int fired = 0;
        Ticker(EventQueue &eq) : SimObject("ticker", eq) {}
        void
        startup() override
        {
            scheduleIn(100, [this] { ++fired; });
        }
    };
    auto *t = simr.create<Ticker>(simr.eventQueue());
    simr.run();
    EXPECT_EQ(t->fired, 1);
    EXPECT_EQ(simr.now(), 100u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const auto r = rng.nextRange(5, 9);
        EXPECT_GE(r, 5u);
        EXPECT_LE(r, 9u);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitDecorrelates)
{
    Rng a(42);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, SaveRestoreStateReplaysStream)
{
    Rng rng(123);
    for (int i = 0; i < 37; ++i)
        rng.next(); // advance mid-stream
    const auto state = rng.saveState();
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(rng.next());
    rng.restoreState(state);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.next(), first[static_cast<std::size_t>(i)]);
    // Restoring into a different generator works too.
    Rng other(999);
    other.restoreState(state);
    EXPECT_EQ(other.next(), first[0]);
}

TEST(Simulator, SeededRunsAreBitIdentical)
{
    // A random event storm driven by a seeded Rng must unfold the same
    // way twice: same final time, event count and order fingerprint.
    auto storm = [](std::uint64_t seed) {
        EventQueue eq;
        Rng rng(seed);
        int spawned = 0;
        std::function<void()> spawn = [&] {
            if (spawned >= 500)
                return;
            ++spawned;
            eq.scheduleIn(1 + rng.nextBounded(1000), spawn,
                          static_cast<std::int32_t>(rng.nextBounded(8)));
            if (rng.nextBool(0.3))
                eq.scheduleIn(1 + rng.nextBounded(100), spawn);
        };
        spawn();
        eq.run();
        return std::tuple{eq.now(), eq.executed(), eq.fingerprint()};
    };
    EXPECT_EQ(storm(77), storm(77));
    EXPECT_NE(storm(77), storm(78));
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(5);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Logging, FatalAndPanicCarryMessages)
{
    try {
        fatal("bad ", 42);
        FAIL();
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("bad 42"),
                  std::string::npos);
    }
    try {
        panic("broken");
        FAIL();
    } catch (const PanicError &e) {
        EXPECT_NE(std::string(e.what()).find("broken"),
                  std::string::npos);
    }
}

TEST(TickArith, CheckedOpsPassThroughInRange)
{
    EXPECT_EQ(tickAdd(3, 4), 7u);
    EXPECT_EQ(tickSub(10, 4), 6u);
    EXPECT_EQ(tickMul(6, 7), 42u);
    EXPECT_EQ(tickAdd(maxTick, 0), maxTick);
    EXPECT_EQ(tickMul(maxTick, 1), maxTick);
    EXPECT_EQ(tickMul(maxTick, 0), 0u);
}

TEST(TickArith, OverflowAndUnderflowPanic)
{
    EXPECT_THROW(tickAdd(maxTick, 1), PanicError);
    EXPECT_THROW(tickSub(3, 4), PanicError);
    EXPECT_THROW(tickMul(maxTick / 2 + 1, 2), PanicError);
}
