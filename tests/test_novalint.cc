/**
 * @file
 * nova-lint rule tests: every rule must fire on its violating fixture
 * at the expected location, stay quiet on the clean fixture, and honour
 * the suppression-comment syntax.
 *
 * Fixtures live in tests/lint_fixtures (NOVA_LINT_FIXTURE_DIR). Expected
 * lines are located by searching the fixture text for a marker substring
 * so the fixtures can be edited without breaking line-number literals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

using nova::lint::Diagnostic;
using nova::lint::lintFiles;
using nova::lint::SourceFile;

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(NOVA_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<Diagnostic>
lintFixtures(const std::vector<std::string> &names)
{
    std::vector<SourceFile> files;
    for (const std::string &name : names)
        files.push_back({name, readFixture(name)});
    return lintFiles(files);
}

/** 1-based line of the first occurrence of `marker` in `text`. */
int
lineOf(const std::string &text, const std::string &marker)
{
    const std::size_t at = text.find(marker);
    EXPECT_NE(at, std::string::npos) << "marker not found: " << marker;
    if (at == std::string::npos)
        return -1;
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + at, '\n'));
}

/** Expect exactly one diagnostic, with the given rule at marker's line. */
void
expectSingle(const std::string &fixture, const std::string &rule,
             const std::string &marker)
{
    SCOPED_TRACE(fixture);
    const std::string text = readFixture(fixture);
    const auto diags = lintFiles({{fixture, text}});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, rule);
    EXPECT_EQ(diags[0].file, fixture);
    EXPECT_EQ(diags[0].line, lineOf(text, marker));
}

void
expectClean(const std::vector<std::string> &fixtures)
{
    const auto diags = lintFixtures(fixtures);
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, CaptureDefaultFires)
{
    expectSingle("capture_default_bad.cc", "capture-default", "[&]");
}

TEST(NovaLint, CaptureDefaultClean)
{
    expectClean({"capture_default_ok.cc"});
}

TEST(NovaLint, UnorderedIterationFires)
{
    expectSingle("unordered_iteration_bad.cc", "unordered-iteration",
                 "for (const auto &kv : pending)");
}

TEST(NovaLint, UnorderedIterationClean)
{
    expectClean({"unordered_iteration_ok.cc"});
}

TEST(NovaLint, WallClockFires)
{
    const std::string text = readFixture("wall_clock_bad.cc");
    const auto diags = lintFiles({{"wall_clock_bad.cc", text}});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "wall-clock");
    EXPECT_EQ(diags[0].line, lineOf(text, "random_device rd"));
    EXPECT_EQ(diags[1].rule, "wall-clock");
    EXPECT_EQ(diags[1].line, lineOf(text, "steady_clock::now"));
}

TEST(NovaLint, WallClockClean)
{
    expectClean({"wall_clock_ok.cc"});
}

TEST(NovaLint, RawNewFires)
{
    expectSingle("raw_new_bad.cc", "raw-new", "new Widget");
}

TEST(NovaLint, RawNewClean)
{
    expectClean({"raw_new_ok.cc"});
}

TEST(NovaLint, TickArithFires)
{
    expectSingle("tick_arith_bad.cc", "tick-arith", "eq.now() + 100");
}

TEST(NovaLint, TickArithClean)
{
    expectClean({"tick_arith_ok.cc"});
}

TEST(NovaLint, UnregisteredStatFires)
{
    const std::string hh = readFixture("unregistered_stat_bad.hh");
    const std::string cc = readFixture("unregistered_stat_bad.cc");
    const auto diags = lintFiles({{"unregistered_stat_bad.hh", hh},
                                  {"unregistered_stat_bad.cc", cc}});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "unregistered-stat");
    EXPECT_EQ(diags[0].file, "unregistered_stat_bad.hh");
    EXPECT_EQ(diags[0].line, lineOf(hh, "Scalar misses"));
    EXPECT_NE(diags[0].message.find("'misses'"), std::string::npos);
}

TEST(NovaLint, UnregisteredStatClean)
{
    expectClean({"unregistered_stat_ok.hh", "unregistered_stat_ok.cc"});
}

TEST(NovaLint, UsingNamespaceStdFires)
{
    expectSingle("using_namespace_std_bad.hh", "using-namespace-std",
                 "using namespace std");
}

TEST(NovaLint, UsingNamespaceStdClean)
{
    expectClean({"using_namespace_std_ok.hh"});
}

TEST(NovaLint, VirtualDtorFires)
{
    expectSingle("virtual_dtor_bad.hh", "virtual-dtor", "class Model");
}

TEST(NovaLint, VirtualDtorClean)
{
    expectClean({"virtual_dtor_ok.hh"});
}

TEST(NovaLint, AssertSideEffectFires)
{
    expectSingle("assert_side_effect_bad.cc", "assert-side-effect",
                 "NOVA_ASSERT(i++");
}

TEST(NovaLint, AssertSideEffectClean)
{
    expectClean({"assert_side_effect_ok.cc"});
}

TEST(NovaLint, IncludeGuardFires)
{
    expectSingle("include_guard_bad.hh", "include-guard",
                 "#ifndef LINT_FIXTURE_WRONG_GUARD_H");
}

TEST(NovaLint, IncludeGuardClean)
{
    expectClean({"include_guard_ok.hh"});
}

TEST(NovaLint, SilentCatchFires)
{
    const std::string text = readFixture("silent_catch_bad.cc");
    const auto diags = lintFiles({{"silent_catch_bad.cc", text}});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "silent-catch");
    EXPECT_EQ(diags[0].line, lineOf(text, "catch (...)"));
    EXPECT_NE(diags[0].message.find("catch (...)"), std::string::npos);
    EXPECT_EQ(diags[1].rule, "silent-catch");
    EXPECT_EQ(diags[1].line, lineOf(text, "catch (const std::exception"));
    EXPECT_NE(diags[1].message.find("empty catch body"),
              std::string::npos);
}

TEST(NovaLint, SilentCatchClean)
{
    expectClean({"silent_catch_ok.cc"});
}

TEST(NovaLint, SilentCatchCatchAllWithRethrowIsFine)
{
    const SourceFile f{
        "inline.cc",
        "void f() {\n"
        "    try {\n"
        "        g();\n"
        "    } catch (...) {\n"
        "        cleanup();\n"
        "        throw;\n"
        "    }\n"
        "}\n"};
    const auto diags = lintFiles({f});
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, SuppressionSameAndPreviousLine)
{
    expectClean({"suppress.cc"});
}

TEST(NovaLint, SuppressionWholeFile)
{
    expectClean({"suppress_file.cc"});
}

TEST(NovaLint, SuppressionForOtherRuleDoesNotSilence)
{
    const SourceFile f{
        "inline.cc",
        "struct W { int x; };\n"
        "W *f() {\n"
        "    return new W; // novalint:allow(wall-clock)\n"
        "}\n"};
    const auto diags = lintFiles({f});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-new");
    EXPECT_EQ(diags[0].line, 3);
}

TEST(NovaLint, ViolationsInCommentsAndStringsIgnored)
{
    const SourceFile f{
        "inline.cc",
        "// return new Widget; std::random_device rd;\n"
        "/* using namespace std; [&] */\n"
        "const char *s = \"new Widget [&] steady_clock\";\n"};
    expectClean({});
    const auto diags = lintFiles({f});
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, DiagnosticFormat)
{
    const Diagnostic d{"src/x.cc", 12, "raw-new", "msg"};
    EXPECT_EQ(nova::lint::formatDiagnostic(d),
              "src/x.cc:12: error: [raw-new] msg");
}

TEST(NovaLint, RuleCatalogComplete)
{
    const auto &names = nova::lint::ruleNames();
    EXPECT_GE(names.size(), 8u);
    const std::vector<std::string> required = {
        "capture-default", "unordered-iteration", "wall-clock", "raw-new",
        "tick-arith",      "unregistered-stat",   "using-namespace-std",
        "virtual-dtor",    "assert-side-effect",  "include-guard",
        "silent-catch"};
    for (const std::string &expected : required) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing rule " << expected;
    }
}

TEST(NovaLint, RuleFilterRestrictsChecks)
{
    const std::string text = readFixture("raw_new_bad.cc");
    const auto diags =
        lintFiles({{"raw_new_bad.cc", text}}, {"wall-clock"});
    EXPECT_TRUE(diags.empty());
}

} // namespace
