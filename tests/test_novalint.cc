/**
 * @file
 * nova-lint rule tests: every rule must fire on its violating fixture
 * at the expected location, stay quiet on the clean fixture, and honour
 * the suppression-comment syntax.
 *
 * Fixtures live in tests/lint_fixtures (NOVA_LINT_FIXTURE_DIR). Expected
 * lines are located by searching the fixture text for a marker substring
 * so the fixtures can be edited without breaking line-number literals.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"
#include "sarif.hh"

namespace
{

using nova::lint::Diagnostic;
using nova::lint::lintFiles;
using nova::lint::SourceFile;

std::string
readFixture(const std::string &name)
{
    const std::string path = std::string(NOVA_LINT_FIXTURE_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<Diagnostic>
lintFixtures(const std::vector<std::string> &names)
{
    std::vector<SourceFile> files;
    for (const std::string &name : names)
        files.push_back({name, readFixture(name)});
    return lintFiles(files);
}

/** 1-based line of the first occurrence of `marker` in `text`. */
int
lineOf(const std::string &text, const std::string &marker)
{
    const std::size_t at = text.find(marker);
    EXPECT_NE(at, std::string::npos) << "marker not found: " << marker;
    if (at == std::string::npos)
        return -1;
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + at, '\n'));
}

/** Expect exactly one diagnostic, with the given rule at marker's line. */
void
expectSingle(const std::string &fixture, const std::string &rule,
             const std::string &marker)
{
    SCOPED_TRACE(fixture);
    const std::string text = readFixture(fixture);
    const auto diags = lintFiles({{fixture, text}});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, rule);
    EXPECT_EQ(diags[0].file, fixture);
    EXPECT_EQ(diags[0].line, lineOf(text, marker));
}

void
expectClean(const std::vector<std::string> &fixtures)
{
    const auto diags = lintFixtures(fixtures);
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, CaptureDefaultFires)
{
    expectSingle("capture_default_bad.cc", "capture-default", "[&]");
}

TEST(NovaLint, CaptureDefaultClean)
{
    expectClean({"capture_default_ok.cc"});
}

TEST(NovaLint, UnorderedIterationFires)
{
    expectSingle("unordered_iteration_bad.cc", "unordered-iteration",
                 "for (const auto &kv : pending)");
}

TEST(NovaLint, UnorderedIterationClean)
{
    expectClean({"unordered_iteration_ok.cc"});
}

TEST(NovaLint, WallClockFires)
{
    const std::string text = readFixture("wall_clock_bad.cc");
    const auto diags = lintFiles({{"wall_clock_bad.cc", text}});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "wall-clock");
    EXPECT_EQ(diags[0].line, lineOf(text, "random_device rd"));
    EXPECT_EQ(diags[1].rule, "wall-clock");
    EXPECT_EQ(diags[1].line, lineOf(text, "steady_clock::now"));
}

TEST(NovaLint, WallClockClean)
{
    expectClean({"wall_clock_ok.cc"});
}

TEST(NovaLint, RawNewFires)
{
    expectSingle("raw_new_bad.cc", "raw-new", "new Widget");
}

TEST(NovaLint, RawNewClean)
{
    expectClean({"raw_new_ok.cc"});
}

TEST(NovaLint, TickArithFires)
{
    expectSingle("tick_arith_bad.cc", "tick-arith", "eq.now() + 100");
}

TEST(NovaLint, TickArithClean)
{
    expectClean({"tick_arith_ok.cc"});
}

TEST(NovaLint, UnregisteredStatFires)
{
    const std::string hh = readFixture("unregistered_stat_bad.hh");
    const std::string cc = readFixture("unregistered_stat_bad.cc");
    const auto diags = lintFiles({{"unregistered_stat_bad.hh", hh},
                                  {"unregistered_stat_bad.cc", cc}});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "unregistered-stat");
    EXPECT_EQ(diags[0].file, "unregistered_stat_bad.hh");
    EXPECT_EQ(diags[0].line, lineOf(hh, "Scalar misses"));
    EXPECT_NE(diags[0].message.find("'misses'"), std::string::npos);
}

TEST(NovaLint, UnregisteredStatClean)
{
    expectClean({"unregistered_stat_ok.hh", "unregistered_stat_ok.cc"});
}

TEST(NovaLint, UsingNamespaceStdFires)
{
    expectSingle("using_namespace_std_bad.hh", "using-namespace-std",
                 "using namespace std");
}

TEST(NovaLint, UsingNamespaceStdClean)
{
    expectClean({"using_namespace_std_ok.hh"});
}

TEST(NovaLint, VirtualDtorFires)
{
    expectSingle("virtual_dtor_bad.hh", "virtual-dtor", "class Model");
}

TEST(NovaLint, VirtualDtorClean)
{
    expectClean({"virtual_dtor_ok.hh"});
}

TEST(NovaLint, AssertSideEffectFires)
{
    expectSingle("assert_side_effect_bad.cc", "assert-side-effect",
                 "NOVA_ASSERT(i++");
}

TEST(NovaLint, AssertSideEffectClean)
{
    expectClean({"assert_side_effect_ok.cc"});
}

TEST(NovaLint, IncludeGuardFires)
{
    expectSingle("include_guard_bad.hh", "include-guard",
                 "#ifndef LINT_FIXTURE_WRONG_GUARD_H");
}

TEST(NovaLint, IncludeGuardClean)
{
    expectClean({"include_guard_ok.hh"});
}

TEST(NovaLint, SilentCatchFires)
{
    const std::string text = readFixture("silent_catch_bad.cc");
    const auto diags = lintFiles({{"silent_catch_bad.cc", text}});
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_EQ(diags[0].rule, "silent-catch");
    EXPECT_EQ(diags[0].line, lineOf(text, "catch (...)"));
    EXPECT_NE(diags[0].message.find("catch (...)"), std::string::npos);
    EXPECT_EQ(diags[1].rule, "silent-catch");
    EXPECT_EQ(diags[1].line, lineOf(text, "catch (const std::exception"));
    EXPECT_NE(diags[1].message.find("empty catch body"),
              std::string::npos);
}

TEST(NovaLint, SilentCatchClean)
{
    expectClean({"silent_catch_ok.cc"});
}

TEST(NovaLint, SilentCatchCatchAllWithRethrowIsFine)
{
    const SourceFile f{
        "inline.cc",
        "void f() {\n"
        "    try {\n"
        "        g();\n"
        "    } catch (...) {\n"
        "        cleanup();\n"
        "        throw;\n"
        "    }\n"
        "}\n"};
    const auto diags = lintFiles({f});
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, ShardSafetyStaticFires)
{
    expectSingle("shard_safety_static_bad.cc", "shard-safety",
                 "std::uint64_t deliveredCount = 0;");
}

TEST(NovaLint, ShardSafetyScheduleFires)
{
    expectSingle("shard_safety_schedule_bad.cc", "shard-safety",
                 "sched.shard(1).schedule(when");
}

TEST(NovaLint, ShardSafetyAnnotatedClean)
{
    expectClean({"shard_safety_annotated_ok.cc"});
}

TEST(NovaLint, ShardSafetyGuardedClean)
{
    expectClean({"shard_safety_guarded_ok.cc"});
}

TEST(NovaLint, DeterminismTaintLoopFires)
{
    expectSingle("determinism_taint_loop_bad.cc", "determinism-taint",
                 "w.u64(kv.second);");
}

TEST(NovaLint, DeterminismTaintPropagationFires)
{
    expectSingle("determinism_taint_pointer_bad.cc", "determinism-taint",
                 "saveGroupStats(order);");
}

TEST(NovaLint, DeterminismTaintSortedClean)
{
    expectClean({"determinism_taint_sorted_ok.cc"});
}

TEST(NovaLint, DeterminismTaintOrderedClean)
{
    expectClean({"determinism_taint_ordered_ok.cc"});
}

TEST(NovaLint, DeterminismTaintPointerHashFires)
{
    const SourceFile f{
        "inline.cc",
        "#include <functional>\n"
        "struct V;\n"
        "std::size_t h(V *v) {\n"
        "    return std::hash<V *>{}(v);\n"
        "}\n"};
    const auto diags = lintFiles({f});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "determinism-taint");
    EXPECT_EQ(diags[0].line, 4);
}

TEST(NovaLint, DeterminismTaintPointerPrintFires)
{
    const SourceFile f{
        "inline.cc",
        "#include <cstdio>\n"
        "struct V;\n"
        "void dump(V *v) {\n"
        "    std::printf(\"vertex at %p\\n\", (void *)v);\n"
        "}\n"};
    const auto diags = lintFiles({f});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "determinism-taint");
    EXPECT_EQ(diags[0].line, 4);
}

TEST(NovaLint, ReductionOrderFires)
{
    expectSingle("reduction_order_bad.cc", "reduction-order",
                 "total += sh.energy;");
}

TEST(NovaLint, ReductionOrderAccumulateFires)
{
    expectSingle("reduction_order_accumulate_bad.cc", "reduction-order",
                 "std::accumulate(perShard.begin()");
}

TEST(NovaLint, ReductionOrderAnnotatedClean)
{
    expectClean({"reduction_order_annotated_ok.cc"});
}

TEST(NovaLint, ReductionOrderIntegerClean)
{
    expectClean({"reduction_order_int_ok.cc"});
}

TEST(NovaLint, RawExitFires)
{
    expectSingle("raw_exit_bad.cc", "raw-exit", "std::exit(2);");
}

TEST(NovaLint, RawExitClean)
{
    expectClean({"raw_exit_ok.cc"});
}

TEST(NovaLint, RawExitSuperviseBoundaryExempt)
{
    const SourceFile f{
        "src/sim/supervise.cc",
        "#include <unistd.h>\n"
        "void child() { ::_exit(127); }\n"};
    const auto diags = lintFiles({f});
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, BadAnnotationFires)
{
    const std::string text = readFixture("bad_annotation_bad.cc");
    const auto diags = lintFiles({{"bad_annotation_bad.cc", text}});
    ASSERT_EQ(diags.size(), 4u);
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.rule, "bad-annotation");
    EXPECT_EQ(diags[0].line, lineOf(text, "novalint: shard-owned"));
    EXPECT_NE(diags[0].message.find("unknown"), std::string::npos);
    EXPECT_EQ(diags[1].line,
              lineOf(text, "novalint: guarded-by(missingMutex)"));
    EXPECT_NE(diags[1].message.find("no mutex"), std::string::npos);
    EXPECT_EQ(diags[2].line, 2 + lineOf(text, "std::uint64_t counterB"));
    EXPECT_NE(diags[2].message.find("parenthesized"), std::string::npos);
    EXPECT_EQ(diags[3].line,
              lineOf(text, "novalint: canonical-order"));
    EXPECT_NE(diags[3].message.find("attaches to no"), std::string::npos);
}

TEST(NovaLint, BadAnnotationClean)
{
    expectClean({"bad_annotation_ok.cc"});
}

TEST(NovaLint, SuppressionSameAndPreviousLine)
{
    expectClean({"suppress.cc"});
}

TEST(NovaLint, SuppressionMultiRuleAndWhitespace)
{
    expectClean({"suppress_multi.cc"});
}

TEST(NovaLint, SuppressionWholeFile)
{
    expectClean({"suppress_file.cc"});
}

TEST(NovaLint, SuppressionForOtherRuleDoesNotSilence)
{
    const SourceFile f{
        "inline.cc",
        "struct W { int x; };\n"
        "W *f() {\n"
        "    return new W; // novalint:allow(wall-clock)\n"
        "}\n"};
    const auto diags = lintFiles({f});
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "raw-new");
    EXPECT_EQ(diags[0].line, 3);
}

TEST(NovaLint, ViolationsInCommentsAndStringsIgnored)
{
    const SourceFile f{
        "inline.cc",
        "// return new Widget; std::random_device rd;\n"
        "/* using namespace std; [&] */\n"
        "const char *s = \"new Widget [&] steady_clock\";\n"};
    expectClean({});
    const auto diags = lintFiles({f});
    for (const Diagnostic &d : diags)
        ADD_FAILURE() << nova::lint::formatDiagnostic(d);
}

TEST(NovaLint, DiagnosticFormat)
{
    const Diagnostic d{"src/x.cc", 12, "raw-new", "msg"};
    EXPECT_EQ(nova::lint::formatDiagnostic(d),
              "src/x.cc:12: error: [raw-new] msg");
}

TEST(NovaLint, RuleCatalogComplete)
{
    const auto &names = nova::lint::ruleNames();
    EXPECT_GE(names.size(), 16u);
    const std::vector<std::string> required = {
        "capture-default", "unordered-iteration", "wall-clock", "raw-new",
        "tick-arith",      "unregistered-stat",   "using-namespace-std",
        "virtual-dtor",    "assert-side-effect",  "include-guard",
        "silent-catch",    "shard-safety",        "determinism-taint",
        "reduction-order", "bad-annotation",      "raw-exit"};
    for (const std::string &expected : required) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing rule " << expected;
    }
}

TEST(NovaLint, RuleDescriptionsNonEmpty)
{
    for (const std::string &r : nova::lint::ruleNames())
        EXPECT_FALSE(nova::lint::ruleDescription(r).empty()) << r;
}

TEST(NovaLint, SarifShape)
{
    const std::vector<Diagnostic> diags = {
        {"src/a.cc", 12, "raw-new", "raw 'new' here"},
        {"src/b.cc", 3, "shard-safety", "message with \"quotes\"\n"},
    };
    const std::string doc = nova::lint::renderSarif(diags);
    EXPECT_NE(doc.find("\"$schema\""), std::string::npos);
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"nova-lint\""), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"raw-new\""), std::string::npos);
    EXPECT_NE(doc.find("\"ruleId\": \"shard-safety\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": 12"), std::string::npos);
    EXPECT_NE(doc.find("\"uri\": \"src/a.cc\""), std::string::npos);
    // Quotes and newlines in messages must be JSON-escaped.
    EXPECT_NE(doc.find("message with \\\"quotes\\\"\\n"),
              std::string::npos);
    // Rule metadata is listed once per referenced rule.
    EXPECT_NE(doc.find("\"id\": \"raw-new\""), std::string::npos);
    EXPECT_NE(doc.find("\"shortDescription\""), std::string::npos);
}

TEST(NovaLint, SarifEmptyRunIsValid)
{
    const std::string doc = nova::lint::renderSarif({});
    EXPECT_NE(doc.find("\"results\": []"), std::string::npos);
    EXPECT_NE(doc.find("\"rules\": []"), std::string::npos);
}

TEST(NovaLint, RuleFilterRestrictsChecks)
{
    const std::string text = readFixture("raw_new_bad.cc");
    const auto diags =
        lintFiles({{"raw_new_bad.cc", text}}, {"wall-clock"});
    EXPECT_TRUE(diags.empty());
}

} // namespace
