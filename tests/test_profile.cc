/**
 * @file
 * Tests of the host-time profiler (sim/profile.hh): armed/disarmed
 * parity, hierarchical self-time attribution, stats registration and
 * per-run reset.
 */
// novalint:allow-file(wall-clock)

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <thread>

#include "sim/event_queue.hh"
#include "sim/profile.hh"

using namespace nova::sim;
using profile::Registry;

namespace
{

/** Arm for the duration of one test, restoring the disarmed default. */
class ArmedGuard
{
  public:
    ArmedGuard()
    {
        Registry::instance().reset();
        Registry::instance().arm();
    }
    ~ArmedGuard() { Registry::instance().disarm(); }
};

void
spinFor(std::chrono::microseconds d)
{
    const auto start = std::chrono::steady_clock::now();
    while (std::chrono::steady_clock::now() - start < d) {
    }
}

} // namespace

TEST(Profile, DisarmedScopesRecordNothing)
{
    Registry &reg = Registry::instance();
    reg.disarm();
    reg.reset();
    profile::Site &site = reg.site("test.obj", "disarmed");
    {
        NOVA_PROF_SCOPE(site);
        spinFor(std::chrono::microseconds(50));
    }
    EXPECT_EQ(site.calls(), 0u);
    EXPECT_EQ(site.totalNanos(), 0u);
    EXPECT_EQ(site.selfNanos(), 0u);
}

TEST(Profile, ArmedScopesAccumulate)
{
    ArmedGuard armed;
    profile::Site &site =
        Registry::instance().site("test.obj", "armed");
    for (int i = 0; i < 3; ++i) {
        NOVA_PROF_SCOPE(site);
        spinFor(std::chrono::microseconds(100));
    }
    EXPECT_EQ(site.calls(), 3u);
    EXPECT_GE(site.totalNanos(), 3u * 100'000u);
    EXPECT_EQ(site.totalNanos(), site.selfNanos());
}

TEST(Profile, NestedScopesAttributeSelfTime)
{
    ArmedGuard armed;
    Registry &reg = Registry::instance();
    profile::Site &outer = reg.site("test.obj", "outer");
    profile::Site &inner = reg.site("test.obj", "inner");
    {
        NOVA_PROF_SCOPE(outer);
        spinFor(std::chrono::microseconds(200));
        {
            NOVA_PROF_SCOPE(inner);
            spinFor(std::chrono::microseconds(400));
        }
    }
    EXPECT_EQ(outer.calls(), 1u);
    EXPECT_EQ(inner.calls(), 1u);
    // Outer total covers both regions; outer self excludes the inner
    // scope entirely.
    EXPECT_GE(outer.totalNanos(), 600'000u);
    EXPECT_GE(outer.selfNanos(), 200'000u);
    EXPECT_LT(outer.selfNanos(), outer.totalNanos());
    EXPECT_LE(outer.selfNanos() + inner.totalNanos(),
              outer.totalNanos() + 50'000u); // clock-read slack
    EXPECT_EQ(inner.totalNanos(), inner.selfNanos());
}

TEST(Profile, SiteIsStableAcrossLookups)
{
    Registry &reg = Registry::instance();
    profile::Site &a = reg.site("test.obj", "stable");
    profile::Site &b = reg.site("test.obj", "stable");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.fullName(), "test.obj.stable");
}

TEST(Profile, StatsRegistration)
{
    ArmedGuard armed;
    Registry &reg = Registry::instance();
    profile::Site &site = reg.site("test.obj", "stats");
    {
        NOVA_PROF_SCOPE(site);
    }
    stats::Group &g = reg.statsGroup();
    EXPECT_TRUE(g.has("test.obj.stats.calls"));
    EXPECT_TRUE(g.has("test.obj.stats.total_ns"));
    EXPECT_TRUE(g.has("test.obj.stats.self_ns"));
    EXPECT_EQ(g.get("test.obj.stats.calls"), 1.0);

    std::map<std::string, double> flat;
    g.collect(flat);
    EXPECT_EQ(flat.at("profile.test.obj.stats.calls"), 1.0);
}

TEST(Profile, ResetZeroesAllSites)
{
    ArmedGuard armed;
    Registry &reg = Registry::instance();
    profile::Site &site = reg.site("test.obj", "reset");
    {
        NOVA_PROF_SCOPE(site);
        spinFor(std::chrono::microseconds(20));
    }
    EXPECT_GT(site.calls(), 0u);
    reg.reset();
    EXPECT_EQ(site.calls(), 0u);
    EXPECT_EQ(site.totalNanos(), 0u);
    EXPECT_EQ(site.selfNanos(), 0u);
}

TEST(Profile, ReportSortsBySelfTimeAndAggregates)
{
    ArmedGuard armed;
    Registry &reg = Registry::instance();
    profile::Site &slow0 = reg.site("obj0", "slowkind");
    profile::Site &slow1 = reg.site("obj1", "slowkind");
    profile::Site &fast = reg.site("obj0", "fastkind");
    for (profile::Site *s : {&slow0, &slow1}) {
        NOVA_PROF_SCOPE(*s);
        spinFor(std::chrono::microseconds(300));
    }
    {
        NOVA_PROF_SCOPE(fast);
        spinFor(std::chrono::microseconds(50));
    }

    const auto rows = reg.report(true);
    ASSERT_GE(rows.size(), 2u);
    // Aggregated: the two slowkind sites fold into one row that leads.
    EXPECT_EQ(rows[0].kind, "slowkind");
    EXPECT_EQ(rows[0].object, "*");
    EXPECT_EQ(rows[0].calls, 2u);
    for (std::size_t i = 1; i < rows.size(); ++i)
        EXPECT_LE(rows[i].selfNanos, rows[i - 1].selfNanos);

    const std::string table = reg.table();
    EXPECT_NE(table.find("slowkind"), std::string::npos);
    EXPECT_NE(table.find("fastkind"), std::string::npos);
}

TEST(Profile, EventLoopSiteMeasuresRun)
{
    ArmedGuard armed;
    EventQueue eq;
    int fired = 0;
    for (int i = 0; i < 100; ++i)
        eq.schedule(static_cast<Tick>(i) * 10, [&fired] { ++fired; });
    eq.run();
    EXPECT_EQ(fired, 100);
    profile::Site &loop = profile::loopSite();
    EXPECT_EQ(loop.calls(), 1u);
    EXPECT_GT(loop.totalNanos(), 0u);
}

TEST(Profile, ArmedRunsDoNotPerturbSimulation)
{
    // Event count, final tick and order fingerprint must be identical
    // with the profiler armed and disarmed.
    auto drive = [] {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.schedule(static_cast<Tick>(i % 97) * 1000, [] {});
        eq.run();
        return std::make_pair(eq.fingerprint(), eq.now());
    };
    Registry::instance().disarm();
    const auto disarmed = drive();
    const auto armed = [&] {
        ArmedGuard g;
        return drive();
    }();
    EXPECT_EQ(disarmed, armed);
}
