/**
 * @file
 * Crash-recovery supervisor unit tests with /bin/sh children: exit
 * classification (success / fatal / crash / signal), restart budgets,
 * crash-loop detection without checkpoint progress, and the JSON
 * recovery report shape. End-to-end supervision of real nova_cli
 * crashes lives in the supervise-smoke ctest and the soak campaign.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/supervise.hh"

using namespace nova;

namespace
{

/** A supervisor config that runs `sh -c <script>` with no backoff. */
sim::SuperviseConfig
shellChild(const std::string &script)
{
    sim::SuperviseConfig cfg;
    cfg.childArgv = {"/bin/sh", "-c", script};
    cfg.backoffMs = 0;
    return cfg;
}

struct ScopedFile
{
    explicit ScopedFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~ScopedFile() { std::remove(path.c_str()); }
    std::string path;
};

} // namespace

TEST(Supervise, SuccessFirstTry)
{
    const auto res = sim::superviseRun(shellChild("exit 0"));
    EXPECT_EQ(res.finalExit, 0);
    EXPECT_EQ(res.restarts, 0u);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, "success");
    EXPECT_FALSE(res.attempts[0].resumed);
}

TEST(Supervise, FatalIsNotRetried)
{
    // Exit 1 is a user error by the nova_cli contract: restarting
    // cannot change the outcome, so the supervisor stops immediately.
    const auto res = sim::superviseRun(shellChild("exit 1"));
    EXPECT_EQ(res.finalExit, 1);
    EXPECT_EQ(res.restarts, 0u);
    ASSERT_EQ(res.attempts.size(), 1u);
    EXPECT_EQ(res.attempts[0].outcome, "fatal");
}

TEST(Supervise, CrashOnceThenRecover)
{
    // First run crashes (exit 2), the restart succeeds: a marker file
    // flips the behaviour between attempts.
    ScopedFile marker("test_supervise_marker");
    sim::SuperviseConfig cfg = shellChild(
        "if [ -e " + marker.path + " ]; then exit 0; fi; "
        "touch " + marker.path + "; exit 2");
    cfg.crashLoopWindow = 5; // no checkpoint chain: allow no-progress
    const auto res = sim::superviseRun(cfg);
    EXPECT_EQ(res.finalExit, 0);
    EXPECT_EQ(res.restarts, 1u);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.attempts[0].outcome, "crash");
    EXPECT_EQ(res.attempts[0].exitCode, 2);
    EXPECT_EQ(res.attempts[1].outcome, "success");
}

TEST(Supervise, SignalCountsAsCrash)
{
    ScopedFile marker("test_supervise_sig_marker");
    sim::SuperviseConfig cfg = shellChild(
        "if [ -e " + marker.path + " ]; then exit 0; fi; "
        "touch " + marker.path + "; kill -KILL $$");
    cfg.crashLoopWindow = 5;
    const auto res = sim::superviseRun(cfg);
    EXPECT_EQ(res.finalExit, 0);
    ASSERT_EQ(res.attempts.size(), 2u);
    EXPECT_EQ(res.attempts[0].outcome, "crash");
    EXPECT_EQ(res.attempts[0].termSignal, 9);
}

TEST(Supervise, RetriesExhaustedExitsThree)
{
    sim::SuperviseConfig cfg = shellChild("exit 2");
    cfg.maxRestarts = 2;
    cfg.crashLoopWindow = 100; // keep the loop detector out of the way
    const auto res = sim::superviseRun(cfg);
    EXPECT_EQ(res.finalExit, sim::exitSupervisionFailed);
    EXPECT_TRUE(res.retriesExhausted);
    EXPECT_FALSE(res.crashLoop);
    EXPECT_EQ(res.restarts, 2u);
    EXPECT_EQ(res.attempts.size(), 3u); // initial + 2 restarts
}

TEST(Supervise, CrashLoopDetectedWithoutProgress)
{
    // No checkpoint chain ever appears, so every crash is a
    // no-progress crash: the window trips before the retry budget.
    sim::SuperviseConfig cfg = shellChild("exit 2");
    cfg.checkpointPath = "test_supervise_no_such.ckpt";
    cfg.maxRestarts = 50;
    cfg.crashLoopWindow = 3;
    const auto res = sim::superviseRun(cfg);
    EXPECT_EQ(res.finalExit, sim::exitSupervisionFailed);
    EXPECT_TRUE(res.crashLoop);
    EXPECT_FALSE(res.retriesExhausted);
    EXPECT_LT(res.attempts.size(), 10u);
}

TEST(Supervise, BackoffGrowsExponentially)
{
    sim::SuperviseConfig cfg = shellChild("exit 2");
    cfg.backoffMs = 1;
    cfg.maxRestarts = 3;
    cfg.crashLoopWindow = 100;
    const auto res = sim::superviseRun(cfg);
    ASSERT_EQ(res.attempts.size(), 4u);
    EXPECT_EQ(res.attempts[0].backoffMs, 0u);
    EXPECT_EQ(res.attempts[1].backoffMs, 1u);
    EXPECT_EQ(res.attempts[2].backoffMs, 2u);
    EXPECT_EQ(res.attempts[3].backoffMs, 4u);
}

TEST(Supervise, RecoveryReportShape)
{
    sim::SuperviseConfig cfg = shellChild("exit 2");
    cfg.maxRestarts = 1;
    cfg.crashLoopWindow = 100;
    cfg.checkpointPath = "run.ckpt";
    const auto res = sim::superviseRun(cfg);
    const std::string doc = sim::recoveryReportJson(cfg, res);
    for (const char *needle :
         {"\"schema\": \"nova-recovery-1\"", "\"command\"",
          "\"checkpoint\"", "\"finalExit\": 3", "\"restarts\": 1",
          "\"retriesExhausted\": true", "\"failover\"",
          "\"migratedVertices\"", "\"attempts\"",
          "\"outcome\": \"crash\""})
        EXPECT_NE(doc.find(needle), std::string::npos) << needle;
}
