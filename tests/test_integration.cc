/**
 * @file
 * Cross-engine integration sweep: every engine (NOVA in several
 * configurations, PolyGraph, Ligra) must produce reference-equal
 * results for every workload over a matrix of random graphs — the
 * repository's broadest correctness net.
 */

#include <gtest/gtest.h>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

enum class EngineKind
{
    NovaSmall,
    NovaMultiGpn,
    NovaEventCount,
    PolyGraphSliced,
    Ligra,
};

const char *
engineName(EngineKind k)
{
    switch (k) {
      case EngineKind::NovaSmall:
        return "nova1gpn";
      case EngineKind::NovaMultiGpn:
        return "nova2gpn";
      case EngineKind::NovaEventCount:
        return "novaEventCount";
      case EngineKind::PolyGraphSliced:
        return "pgSliced";
      case EngineKind::Ligra:
        return "ligra";
    }
    return "?";
}

std::unique_ptr<workloads::GraphEngine>
makeEngine(EngineKind k)
{
    switch (k) {
      case EngineKind::NovaSmall: {
        core::NovaConfig cfg;
        cfg.pesPerGpn = 4;
        cfg.cacheBytesPerPe = 512;
        cfg.activeBufferEntries = 16;
        return std::make_unique<core::NovaSystem>(cfg);
      }
      case EngineKind::NovaMultiGpn: {
        core::NovaConfig cfg;
        cfg.numGpns = 2;
        cfg.pesPerGpn = 4;
        cfg.cacheBytesPerPe = 512;
        return std::make_unique<core::NovaSystem>(cfg);
      }
      case EngineKind::NovaEventCount: {
        core::NovaConfig cfg;
        cfg.pesPerGpn = 4;
        cfg.cacheBytesPerPe = 512;
        cfg.tracker = core::TrackerPolicy::EventCount;
        cfg.activeBufferEntries = 8;
        return std::make_unique<core::NovaSystem>(cfg);
      }
      case EngineKind::PolyGraphSliced: {
        baselines::PolyGraphConfig cfg;
        cfg.onChipBytes = 1024; // forces several slices
        return std::make_unique<baselines::PolyGraphModel>(cfg);
      }
      case EngineKind::Ligra:
        return std::make_unique<baselines::LigraEngine>();
    }
    sim::panic("bad engine kind");
}

std::uint32_t
partsFor(EngineKind k)
{
    switch (k) {
      case EngineKind::NovaSmall:
      case EngineKind::NovaEventCount:
        return 4;
      case EngineKind::NovaMultiGpn:
        return 8;
      default:
        return 1;
    }
}

struct Case
{
    EngineKind engine;
    std::uint64_t seed;
};

} // namespace

class IntegrationSweep : public ::testing::TestWithParam<Case>
{
  protected:
    graph::Csr
    makeGraph(bool weighted) const
    {
        graph::RmatParams p;
        p.numVertices = 384;
        p.numEdges = 3072;
        p.seed = GetParam().seed;
        p.maxWeight = weighted ? 31 : 1;
        return graph::generateRmat(p);
    }

    graph::VertexMapping
    mapFor(const graph::Csr &g) const
    {
        return graph::randomMapping(g.numVertices(),
                                    partsFor(GetParam().engine),
                                    GetParam().seed + 1);
    }
};

TEST_P(IntegrationSweep, Bfs)
{
    const auto g = makeGraph(false);
    const VertexId src = graph::highestDegreeVertex(g);
    auto engine = makeEngine(GetParam().engine);
    workloads::BfsProgram prog(src);
    const auto r = engine->run(prog, g, mapFor(g));
    EXPECT_EQ(r.props, workloads::reference::bfsDepths(g, src));
}

TEST_P(IntegrationSweep, Sssp)
{
    const auto g = makeGraph(true);
    const VertexId src = graph::highestDegreeVertex(g);
    auto engine = makeEngine(GetParam().engine);
    workloads::SsspProgram prog(src);
    const auto r = engine->run(prog, g, mapFor(g));
    EXPECT_EQ(r.props, workloads::reference::ssspDistances(g, src));
}

TEST_P(IntegrationSweep, Cc)
{
    const auto g = graph::symmetrize(makeGraph(false));
    auto engine = makeEngine(GetParam().engine);
    workloads::CcProgram prog;
    const auto r = engine->run(prog, g, mapFor(g));
    EXPECT_EQ(r.props, workloads::reference::ccLabels(g));
}

TEST_P(IntegrationSweep, PageRank)
{
    const auto g = makeGraph(false);
    auto engine = makeEngine(GetParam().engine);
    workloads::PageRankProgram prog(0.85, 1e-11, 8);
    engine->run(prog, g, mapFor(g));
    const auto ref =
        workloads::reference::pagerankDelta(g, 0.85, 1e-11, 8);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(prog.rank()[v], ref[v], 1e-9 + 1e-6 * ref[v])
            << "vertex " << v;
}

TEST_P(IntegrationSweep, Bc)
{
    const auto g = graph::symmetrize(makeGraph(false));
    const VertexId src = graph::highestDegreeVertex(g);
    auto engine = makeEngine(GetParam().engine);
    const auto bc = workloads::runBc(*engine, g, mapFor(g), src);
    const auto ref = workloads::reference::bcDependencies(g, src);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(bc.centrality[v], ref[v],
                    1e-6 + 1e-4 * std::abs(ref[v]))
            << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntegrationSweep,
    ::testing::Values(
        Case{EngineKind::NovaSmall, 1}, Case{EngineKind::NovaSmall, 2},
        Case{EngineKind::NovaSmall, 3},
        Case{EngineKind::NovaMultiGpn, 1},
        Case{EngineKind::NovaMultiGpn, 2},
        Case{EngineKind::NovaEventCount, 1},
        Case{EngineKind::NovaEventCount, 2},
        Case{EngineKind::PolyGraphSliced, 1},
        Case{EngineKind::PolyGraphSliced, 2},
        Case{EngineKind::Ligra, 1}, Case{EngineKind::Ligra, 2}),
    [](const auto &info) {
        return std::string(engineName(info.param.engine)) + "_seed" +
               std::to_string(info.param.seed);
    });

TEST(IntegrationMisc, HighDiameterGraphAllEngines)
{
    // A weighted grid exercises deep frontiers and the prefetcher's
    // sparse-frontier path on every engine.
    graph::RoadGridParams p;
    p.width = 24;
    p.height = 24;
    p.seed = 6;
    p.maxWeight = 15;
    const auto g = graph::generateRoadGrid(p);
    const VertexId src = 0;
    const auto ref = workloads::reference::ssspDistances(g, src);
    for (const auto kind :
         {EngineKind::NovaSmall, EngineKind::PolyGraphSliced,
          EngineKind::Ligra}) {
        auto engine = makeEngine(kind);
        workloads::SsspProgram prog(src);
        const auto map = graph::randomMapping(g.numVertices(),
                                              partsFor(kind), 9);
        const auto r = engine->run(prog, g, map);
        EXPECT_EQ(r.props, ref) << engineName(kind);
    }
}
