/**
 * @file
 * Unit and property tests of the NOVA core: configuration equations
 * (Eq. 1-2), vertex-store geometry, VMU policies, deadlock freedom
 * under tiny resources, execution-model equivalences and determinism.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "core/vertex_store.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

TEST(TrackerCapacity, MatchesPaperTableIIValues)
{
    // Sec. VI-C2: superblock_dim {32, 64, 128, 256} over a 4 GiB GPN
    // stack need {3, 1.75, 1, 0.576} MiB of tracker storage.
    const std::uint64_t stack = std::uint64_t(4) << 30;
    auto mib = [&](std::uint32_t dim) {
        return static_cast<double>(
                   core::trackerCapacityBits(stack, dim, 32)) /
               8 / (1 << 20);
    };
    EXPECT_NEAR(mib(32), 3.0, 0.2);
    EXPECT_NEAR(mib(64), 1.75, 0.1);
    EXPECT_NEAR(mib(128), 1.0, 0.1);
    EXPECT_NEAR(mib(256), 0.576, 0.02);
}

TEST(TrackerCapacity, Wdc12ClaimAndBitVectorRatio)
{
    // Sec. III-D: WDC12 has ~3.6 B vertices of 16 B (57.6 GB vertex
    // set). A per-vertex bit vector needs ~440 MiB; the superblock
    // tracker (dim 128) needs ~16 MiB — "27x smaller".
    const std::uint64_t num_vertices = 3'600'000'000ULL;
    const std::uint64_t vertex_set = num_vertices * 16;
    const std::uint64_t tracker_bits =
        core::trackerCapacityBits(vertex_set, 128, 32);
    const double tracker_mib =
        static_cast<double>(tracker_bits) / 8 / (1 << 20);
    EXPECT_GT(tracker_mib, 11.0);
    EXPECT_LT(tracker_mib, 17.0);

    const double bitvec_mib =
        static_cast<double>(num_vertices) / 8 / (1 << 20);
    EXPECT_NEAR(bitvec_mib, 440.0, 30.0);
    const double ratio = bitvec_mib / tracker_mib;
    EXPECT_GT(ratio, 20.0);
    EXPECT_LT(ratio, 35.0);
}

TEST(NovaConfig, ScaledShrinksOnChipOnly)
{
    const core::NovaConfig base;
    const core::NovaConfig s = base.scaled(1000);
    EXPECT_LT(s.cacheBytesPerPe, base.cacheBytesPerPe);
    EXPECT_EQ(s.vertexMem.tBurst, base.vertexMem.tBurst);
    EXPECT_EQ(s.superblockDim, base.superblockDim);
    EXPECT_EQ(s.activeBufferEntries, base.activeBufferEntries);
}

TEST(NovaConfig, GpnBandwidthMatchesPaper)
{
    // 256 GB/s HBM + 76.8 GB/s DDR = 332.8 GB/s per GPN.
    EXPECT_NEAR(core::NovaConfig{}.gpnBandwidthGBs(), 332.8, 0.5);
}

TEST(VertexStore, GeometryAndAddressing)
{
    const auto g = graph::generatePath(100);
    const auto map = graph::VertexMapping::interleave(100, 4);
    core::NovaConfig cfg;
    workloads::BfsProgram prog(0);
    prog.bind(g);
    core::VertexStore store(g, map, 1, cfg, prog);

    EXPECT_EQ(store.numLocal(), 25u);
    EXPECT_EQ(store.vertsPerBlock(), 2u);
    EXPECT_EQ(store.numBlocks(), 13u);
    EXPECT_EQ(store.blockOf(0), 0u);
    EXPECT_EQ(store.blockOf(3), 1u);
    EXPECT_EQ(store.superblockOf(0), 0u);
    EXPECT_EQ(store.blockAddr(2), 64u);
    EXPECT_EQ(store.blockFirst(2), 4u);
    EXPECT_EQ(store.blockEnd(12), 25u); // clamped tail block
    // PE 1 owns globals 1, 5, 9, ...
    EXPECT_EQ(store.globalOf(0), 1u);
    EXPECT_EQ(store.globalOf(3), 13u);
}

TEST(VertexStore, ActiveCountTracksFlags)
{
    const auto g = graph::generatePath(16);
    const auto map = graph::VertexMapping::interleave(16, 1);
    core::NovaConfig cfg;
    workloads::BfsProgram prog(0);
    prog.bind(g);
    core::VertexStore store(g, map, 0, cfg, prog);

    store.setActiveNow(0, true);
    store.setActiveNow(1, true); // same block
    EXPECT_EQ(store.activeCountInBlock(0), 2u);
    store.setActiveNow(0, true); // idempotent
    EXPECT_EQ(store.activeCountInBlock(0), 2u);
    store.setActiveNow(0, false);
    store.setActiveNow(1, false);
    EXPECT_EQ(store.activeCountInBlock(0), 0u);
    EXPECT_EQ(store.exactActiveBlocks(0), 0u);
}

TEST(VertexStore, LocalCsrMatchesGlobal)
{
    graph::RmatParams p;
    p.numVertices = 128;
    p.numEdges = 1024;
    p.seed = 21;
    const auto g = graph::generateRmat(p);
    const auto map = graph::randomMapping(128, 4, 5);
    core::NovaConfig cfg;
    workloads::BfsProgram prog(0);
    prog.bind(g);
    for (std::uint32_t pe = 0; pe < 4; ++pe) {
        core::VertexStore store(g, map, pe, cfg, prog);
        for (VertexId local = 0; local < store.numLocal(); ++local) {
            const VertexId v = store.globalOf(local);
            ASSERT_EQ(store.degree(local), g.degree(v));
            graph::EdgeId ge = g.edgeBegin(v);
            for (graph::EdgeId e = store.edgeBegin(local);
                 e < store.edgeEnd(local); ++e, ++ge)
                ASSERT_EQ(store.edgeDest(e), g.edgeDest(ge));
        }
    }
}

namespace
{

core::NovaConfig
tinyConfig()
{
    core::NovaConfig cfg;
    cfg.numGpns = 1;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 256;
    return cfg;
}

workloads::RunResult
runBfs(const core::NovaConfig &cfg, const graph::Csr &g, VertexId src,
       std::uint64_t seed = 3)
{
    core::NovaSystem nova(cfg);
    const auto map =
        graph::randomMapping(g.numVertices(), cfg.totalPes(), seed);
    workloads::BfsProgram prog(src);
    return nova.run(prog, g, map);
}

} // namespace

TEST(NovaSystem, DeadlockFreeUnderTinyResources)
{
    // Minimal buffers, credits and MSHRs must still drain to the
    // correct answer (the decoupling guarantee of Sec. III).
    graph::RmatParams p;
    p.numVertices = 512;
    p.numEdges = 8192;
    p.seed = 31;
    const auto g = graph::generateRmat(p);
    core::NovaConfig cfg = tinyConfig();
    cfg.activeBufferEntries = 4;
    cfg.prefetchThreshold = 1;
    cfg.prefetchBurstBlocks = 2;
    cfg.cacheMshrs = 2;
    cfg.mguBurstDepth = 1;
    cfg.mguEntryDepth = 1;
    cfg.net.creditsPerDst = 2;
    cfg.vertexMem.queueCapacity = 2;
    cfg.edgeMem.queueCapacity = 2;

    const VertexId src = graph::highestDegreeVertex(g);
    const auto r = runBfs(cfg, g, src);
    EXPECT_EQ(r.props, workloads::reference::bfsDepths(g, src));
}

TEST(NovaSystem, DeterministicAcrossRuns)
{
    graph::RmatParams p;
    p.numVertices = 256;
    p.numEdges = 2048;
    p.seed = 8;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);
    const auto a = runBfs(tinyConfig(), g, src);
    const auto b = runBfs(tinyConfig(), g, src);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.messagesProcessed, b.messagesProcessed);
    EXPECT_EQ(a.coalescedUpdates, b.coalescedUpdates);
}

TEST(NovaSystem, TrackerPoliciesAgreeFunctionally)
{
    graph::RmatParams p;
    p.numVertices = 512;
    p.numEdges = 4096;
    p.seed = 77;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);

    core::NovaConfig exact = tinyConfig();
    exact.tracker = core::TrackerPolicy::ExactBlockCount;
    exact.activeBufferEntries = 8;
    core::NovaConfig event = exact;
    event.tracker = core::TrackerPolicy::EventCount;

    const auto a = runBfs(exact, g, src);
    const auto b = runBfs(event, g, src);
    EXPECT_EQ(a.props, b.props);
    // Event counting may over-scan but never under-delivers.
    EXPECT_GE(b.extra.at("vertexMem.wastefulPrefetchBytes") + 1,
              a.extra.at("vertexMem.wastefulPrefetchBytes") * 0);
}

TEST(NovaSystem, SpillPoliciesAgreeFunctionally)
{
    graph::RmatParams p;
    p.numVertices = 512;
    p.numEdges = 4096;
    p.seed = 15;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);

    core::NovaConfig over = tinyConfig();
    over.activeBufferEntries = 8;
    over.spill = core::SpillPolicy::OverwriteVertexSet;
    core::NovaConfig fifo = over;
    fifo.spill = core::SpillPolicy::OffChipFifo;

    const auto a = runBfs(over, g, src);
    const auto b = runBfs(fifo, g, src);
    const auto ref = workloads::reference::bfsDepths(g, src);
    EXPECT_EQ(a.props, ref);
    EXPECT_EQ(b.props, ref);
    // The FIFO policy cannot coalesce: at least as many messages.
    EXPECT_GE(b.messagesGenerated, a.messagesGenerated);
}

TEST(NovaSystem, FabricsAgreeFunctionally)
{
    graph::RmatParams p;
    p.numVertices = 1024;
    p.numEdges = 8192;
    p.seed = 4;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);
    const auto ref = workloads::reference::bfsDepths(g, src);
    for (const auto fabric : {noc::FabricKind::Hierarchical,
                              noc::FabricKind::Ideal}) {
        core::NovaConfig cfg = tinyConfig();
        cfg.numGpns = 2;
        cfg.fabric = fabric;
        const auto r = runBfs(cfg, g, src);
        EXPECT_EQ(r.props, ref);
    }
}

TEST(NovaSystem, IdealFabricNeverSlower)
{
    graph::RmatParams p;
    p.numVertices = 2048;
    p.numEdges = 1 << 15;
    p.seed = 12;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);
    core::NovaConfig hier = tinyConfig();
    hier.numGpns = 2;
    hier.fabric = noc::FabricKind::Hierarchical;
    core::NovaConfig ideal = hier;
    ideal.fabric = noc::FabricKind::Ideal;
    EXPECT_LE(runBfs(ideal, g, src).ticks,
              static_cast<sim::Tick>(
                  static_cast<double>(runBfs(hier, g, src).ticks) *
                  1.02));
}

TEST(NovaSystem, MoreGpnsNeverSlower)
{
    graph::RmatParams p;
    p.numVertices = 4096;
    p.numEdges = 1 << 16;
    p.seed = 3;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);
    core::NovaConfig one = core::NovaConfig{}.scaled(4000);
    one.numGpns = 1;
    core::NovaConfig four = one;
    four.numGpns = 4;
    EXPECT_LT(runBfs(four, g, src).ticks, runBfs(one, g, src).ticks);
}

TEST(NovaSystem, MessageConservation)
{
    graph::RmatParams p;
    p.numVertices = 512;
    p.numEdges = 4096;
    p.seed = 44;
    const auto g = graph::generateRmat(p);
    const VertexId src = graph::highestDegreeVertex(g);
    const auto r = runBfs(tinyConfig(), g, src);
    // Every generated message is eventually reduced, exactly once.
    EXPECT_EQ(r.messagesGenerated, r.messagesProcessed);
}

TEST(NovaSystem, RejectsMismatchedMapping)
{
    const auto g = graph::generatePath(16);
    const auto map = graph::VertexMapping::interleave(16, 3); // not 4
    core::NovaSystem nova(tinyConfig());
    workloads::BfsProgram prog(0);
    EXPECT_THROW(nova.run(prog, g, map), sim::FatalError);
}

TEST(NovaSystem, EmptyActiveSetTerminatesImmediately)
{
    // BFS from an isolated vertex: one propagation attempt, no edges.
    graph::EdgeList list;
    list.numVertices = 8;
    list.edges = {{1, 2, 1}};
    const auto g = graph::buildCsr(list);
    core::NovaSystem nova(tinyConfig());
    const auto map = graph::VertexMapping::interleave(8, 4);
    workloads::BfsProgram prog(0); // vertex 0 has no out edges
    const auto r = nova.run(prog, g, map);
    EXPECT_EQ(r.messagesGenerated, 0u);
    EXPECT_EQ(r.props[2], workloads::infProp);
}

TEST(NovaSystem, BspIterationsMatchGraphDepth)
{
    // BC forward on a path needs one superstep per level.
    const auto g = graph::symmetrize(graph::generatePath(10));
    core::NovaSystem nova(tinyConfig());
    const auto map = graph::VertexMapping::interleave(10, 4);
    workloads::BcForwardProgram prog(0);
    const auto r = nova.run(prog, g, map);
    EXPECT_GE(r.bspIterations, 9u);
    for (VertexId v = 0; v < 10; ++v) {
        EXPECT_EQ(workloads::unpackLevel(r.props[v]), v);
        EXPECT_EQ(workloads::unpackSigma(r.props[v]), 1u);
    }
}
