/**
 * @file
 * Tests of the differential fuzzing and replay harness: fuzzer
 * determinism and coverage, clean differential sweeps, fault-injection
 * detection, token round-trips and bit-exact engine replay.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/system.hh"
#include "graph/partition.hh"
#include "verify/differential.hh"
#include "verify/fuzz.hh"
#include "verify/replay.hh"
#include "workloads/programs.hh"

using namespace nova;
using verify::Algo;
using verify::CaseOutcome;
using verify::DiffOptions;
using verify::EngineKind;
using verify::FuzzedGraph;
using verify::ReplayCase;

TEST(Fuzzer, RandomAccessDeterminism)
{
    for (std::uint64_t i : {0ull, 1ull, 7ull, 42ull, 199ull}) {
        const FuzzedGraph a = verify::fuzzCase(5, i);
        const FuzzedGraph b = verify::fuzzCase(5, i);
        EXPECT_EQ(a.description, b.description);
        EXPECT_EQ(a.source, b.source);
        EXPECT_EQ(a.graph.rowPtr(), b.graph.rowPtr());
        EXPECT_EQ(a.graph.dests(), b.graph.dests());
        EXPECT_EQ(a.graph.weights(), b.graph.weights());
    }
}

TEST(Fuzzer, SeedsAndIndicesDecorrelate)
{
    const FuzzedGraph base = verify::fuzzCase(5, 3);
    const FuzzedGraph other_seed = verify::fuzzCase(6, 3);
    const FuzzedGraph other_index = verify::fuzzCase(5, 4);
    EXPECT_TRUE(base.description != other_seed.description ||
                base.graph.dests() != other_seed.graph.dests());
    EXPECT_TRUE(base.description != other_index.description ||
                base.graph.dests() != other_index.graph.dests());
}

TEST(Fuzzer, CoversEveryFamily)
{
    std::set<verify::GraphFamily> seen;
    for (std::uint64_t i = 0; i < 400; ++i)
        seen.insert(verify::fuzzCase(11, i).family);
    EXPECT_EQ(seen.size(), verify::numGraphFamilies)
        << "some structural family was never sampled";
}

TEST(Fuzzer, RespectsBounds)
{
    verify::FuzzerConfig cfg;
    cfg.maxVertices = 64;
    cfg.maxEdges = 256;
    for (std::uint64_t i = 0; i < 100; ++i) {
        const FuzzedGraph f = verify::fuzzCase(13, i, cfg);
        ASSERT_GE(f.graph.numVertices(), 1u) << f.description;
        ASSERT_LE(f.graph.numVertices(), cfg.maxVertices)
            << f.description;
        ASSERT_LE(f.graph.numEdges(), 552u) << f.description;
        if (f.graph.numVertices() > 0) {
            ASSERT_LT(f.source, f.graph.numVertices()) << f.description;
        }
    }
}

TEST(Fuzzer, ProducesDegenerateShapes)
{
    bool saw_edgeless = false, saw_self_loop = false;
    bool saw_zero_weight = false;
    for (std::uint64_t i = 0; i < 300; ++i) {
        const FuzzedGraph f = verify::fuzzCase(17, i);
        const graph::Csr &g = f.graph;
        saw_edgeless = saw_edgeless || g.numEdges() == 0;
        for (graph::VertexId v = 0; v < g.numVertices(); ++v)
            for (graph::EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
                saw_self_loop = saw_self_loop || g.edgeDest(e) == v;
                saw_zero_weight =
                    saw_zero_weight || g.edgeWeight(e) == 0;
            }
    }
    EXPECT_TRUE(saw_edgeless);
    EXPECT_TRUE(saw_self_loop);
    EXPECT_TRUE(saw_zero_weight);
}

TEST(Differential, CleanSweepAllEnginesAgree)
{
    const verify::FuzzSummary summary = verify::runFuzz(3, 8, {});
    EXPECT_EQ(summary.casesRun, 8u);
    EXPECT_EQ(summary.runsExecuted, 8u * 4 * 3);
    for (const CaseOutcome &fail : summary.failures)
        ADD_FAILURE() << "case #" << fail.index << " ("
                      << fail.graphDescription << "): "
                      << fail.divergences.front().detail;
}

TEST(Differential, CaseRerunIsDeterministic)
{
    DiffOptions opt;
    const CaseOutcome a = verify::runCase(9, 4, opt);
    const CaseOutcome b = verify::runCase(9, 4, opt);
    EXPECT_EQ(a.graphDescription, b.graphDescription);
    EXPECT_EQ(a.divergences.size(), b.divergences.size());
    EXPECT_EQ(a.runsExecuted, b.runsExecuted);
}

TEST(Differential, InjectedFaultIsDetectedAndReplaysExactly)
{
    DiffOptions opt;
    opt.algos = {Algo::Sssp};
    opt.engines = {EngineKind::Nova};
    opt.fault.enabled = true;
    opt.fault.afterReduces = 0;
    opt.fault.xorMask = ~std::uint64_t(0);

    // A corrupted reduction can be masked by later updates (min-style
    // reduce), so scan a few cases; the fault must surface quickly.
    bool found = false;
    for (std::uint64_t index = 0; index < 20 && !found; ++index) {
        const CaseOutcome outcome = verify::runCase(21, index, opt);
        if (outcome.ok())
            continue;
        found = true;
        ASSERT_EQ(outcome.divergences.size(), 1u);
        const verify::Divergence &d = outcome.divergences.front();
        EXPECT_EQ(d.algo, Algo::Sssp);
        EXPECT_EQ(d.engine, EngineKind::Nova);
        EXPECT_FALSE(d.detail.empty());

        // The emitted token must reproduce the identical divergence.
        ReplayCase c;
        ASSERT_TRUE(verify::parseReplayToken(d.replayToken, c))
            << d.replayToken;
        EXPECT_EQ(c.seed, 21u);
        EXPECT_EQ(c.index, index);
        EXPECT_TRUE(c.fault.enabled);
        const CaseOutcome replayed = verify::replayCase(c);
        EXPECT_EQ(replayed.graphDescription, outcome.graphDescription);
        ASSERT_EQ(replayed.divergences.size(), 1u);
        EXPECT_EQ(replayed.divergences.front().detail, d.detail);
        EXPECT_EQ(replayed.divergences.front().replayToken,
                  d.replayToken);
    }
    EXPECT_TRUE(found)
        << "no injected fault surfaced in 20 fuzz cases";
}

TEST(Differential, FaultFreeReplayOfCleanCasePasses)
{
    ReplayCase c;
    c.seed = 3;
    c.index = 2;
    c.algo = Algo::Bfs;
    c.engine = EngineKind::Ligra;
    const CaseOutcome outcome = verify::replayCase(c);
    EXPECT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.runsExecuted, 1u);
}

TEST(Replay, TokenRoundTrip)
{
    ReplayCase c;
    c.seed = 0xdeadbeef12345ULL;
    c.index = 321;
    c.algo = Algo::Cc;
    c.engine = EngineKind::PolyGraph;
    c.fuzzer.maxVertices = 128;
    c.fuzzer.maxEdges = 999;
    c.fault.enabled = true;
    c.fault.afterReduces = 17;
    c.fault.xorMask = 0xff00ff00ULL;

    const std::string token = verify::encodeReplayToken(c);
    ReplayCase parsed;
    ASSERT_TRUE(verify::parseReplayToken(token, parsed)) << token;
    EXPECT_EQ(parsed.seed, c.seed);
    EXPECT_EQ(parsed.index, c.index);
    EXPECT_EQ(parsed.algo, c.algo);
    EXPECT_EQ(parsed.engine, c.engine);
    EXPECT_EQ(parsed.fuzzer.maxVertices, c.fuzzer.maxVertices);
    EXPECT_EQ(parsed.fuzzer.maxEdges, c.fuzzer.maxEdges);
    EXPECT_TRUE(parsed.fault.enabled);
    EXPECT_EQ(parsed.fault.afterReduces, c.fault.afterReduces);
    EXPECT_EQ(parsed.fault.xorMask, c.fault.xorMask);

    // Fault-free tokens omit the trailing fault field.
    c.fault.enabled = false;
    const std::string clean = verify::encodeReplayToken(c);
    EXPECT_EQ(clean.find(".f"), std::string::npos);
    ASSERT_TRUE(verify::parseReplayToken(clean, parsed));
    EXPECT_FALSE(parsed.fault.enabled);
}

TEST(Replay, MalformedTokensRejected)
{
    ReplayCase c;
    for (const char *bad :
         {"", "NV1", "garbage", "NV2.s1.i0.bfs.nova.v256.e2048",
          "NV1.s1.i0.quux.nova.v256.e2048",
          "NV1.s1.i0.bfs.gpu.v256.e2048",
          "NV1.sZZ.i0.bfs.nova.v256.e2048",
          "NV1.s1.i0.bfs.nova.v256",
          "NV1.s1.i0.bfs.nova.v256.e2048.fnope",
          "NV1.s1.i0.bfs.nova.v256.e2048.f1x2.extra"})
        EXPECT_FALSE(verify::parseReplayToken(bad, c)) << bad;
}

TEST(Replay, CommandContainsToken)
{
    ReplayCase c;
    c.seed = 7;
    const std::string cmd = verify::replayCommand(c);
    EXPECT_NE(cmd.find("nova_cli verify --replay="), std::string::npos);
    EXPECT_NE(cmd.find(verify::encodeReplayToken(c)), std::string::npos);
}

TEST(Replay, NovaRunsAreBitExactAcrossRepeats)
{
    // The full stack (generators, mapping, event queue, DRAM, NoC) must
    // be schedule-deterministic: two identical runs end with the same
    // tick count, properties, event count and event-order fingerprint.
    const FuzzedGraph f = verify::fuzzCase(31, 6);
    core::NovaConfig cfg;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 512;
    const auto map =
        graph::randomMapping(f.graph.numVertices(), cfg.totalPes(), 2);

    auto run_once = [&] {
        core::NovaSystem nova(cfg);
        workloads::BfsProgram prog(f.source);
        return nova.run(prog, f.graph, map);
    };
    const workloads::RunResult a = run_once();
    const workloads::RunResult b = run_once();
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.props, b.props);
    EXPECT_EQ(a.extra.at("sim.events"), b.extra.at("sim.events"));
    EXPECT_EQ(a.extra.at("sim.fingerprint"),
              b.extra.at("sim.fingerprint"));
}
