/**
 * @file
 * Degraded-mode failover (docs/RESILIENCE.md, "Hard faults"): a GPN
 * that dies mid-run has its vertex slice dealt onto the survivors at
 * the next BSP barrier, dead NoC links are routed around with a
 * deterministic penalty, and lost spill regions degrade to recompute
 * inserts — all without changing the converged answer, and all
 * bit-identical across the serial and sharded schedulers and across a
 * checkpoint/resume boundary.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/logging.hh"
#include "workloads/programs.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
testGraph(VertexId vertices = 220, std::uint64_t edges = 1400)
{
    graph::UniformParams p;
    p.numVertices = vertices;
    p.numEdges = edges;
    p.maxWeight = 32;
    p.seed = 13;
    return graph::generateUniform(p);
}

core::NovaConfig
twoGpnConfig()
{
    core::NovaConfig cfg;
    cfg.numGpns = 2;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 512;
    cfg.activeBufferEntries = 16;
    return cfg;
}

struct PrRun
{
    workloads::RunResult result;
    std::vector<double> rank;
};

PrRun
runPr(const core::NovaConfig &cfg, const graph::Csr &g,
      const core::CheckpointPolicy &policy = {})
{
    core::NovaSystem sys(cfg);
    sys.setCheckpointPolicy(policy);
    const auto map = graph::VertexMapping::interleave(g.numVertices(),
                                                      cfg.totalPes());
    workloads::PageRankProgram prog(0.85, 1e-11, 8);
    PrRun r;
    r.result = sys.run(prog, g, map);
    r.rank = prog.rank();
    return r;
}

/** Bit-exact answer parity (determinism contract within one config). */
void
expectSameAnswer(const PrRun &want, const PrRun &got)
{
    EXPECT_EQ(want.result.props, got.result.props);
    ASSERT_EQ(want.rank.size(), got.rank.size());
    for (std::size_t v = 0; v < want.rank.size(); ++v)
        EXPECT_EQ(want.rank[v], got.rank[v]) << "rank of vertex " << v;
}

/**
 * Tolerance answer parity: degraded mode changes the floating-point
 * reduction order (migrated vertices sum in a new order), so a faulted
 * run matches a fault-free run to rounding, not bit for bit — the same
 * contract the differential harness enforces against the reference.
 */
void
expectCloseAnswer(const PrRun &want, const PrRun &got)
{
    ASSERT_EQ(want.rank.size(), got.rank.size());
    for (std::size_t v = 0; v < want.rank.size(); ++v) {
        const double scale =
            std::max({std::abs(want.rank[v]), std::abs(got.rank[v]), 1e-30});
        EXPECT_LE(std::abs(want.rank[v] - got.rank[v]), 1e-9 * scale)
            << "rank of vertex " << v;
    }
}

struct ScopedFile
{
    explicit ScopedFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~ScopedFile() { std::remove(path.c_str()); }
    std::string path;
};

} // namespace

TEST(Failover, GpnDeathMigratesWithoutChangingTheAnswer)
{
    const graph::Csr g = testGraph();
    const PrRun clean = runPr(twoGpnConfig(), g);

    core::NovaConfig cfg = twoGpnConfig();
    cfg.faultSchedule = "gpn.dead@gpn1:tick=1";
    const PrRun faulted = runPr(cfg, g);

    expectCloseAnswer(clean, faulted);
    EXPECT_EQ(faulted.result.extra.at("failover.hardFaultsApplied"), 1);
    EXPECT_EQ(faulted.result.extra.at("failover.gpnsFailed"), 1);
    // Interleave over 8 PEs: residues 4..7 of 220 land on GPN 1.
    double on_gpn1 = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        if (v % 8 >= 4)
            ++on_gpn1;
    EXPECT_EQ(faulted.result.extra.at("failover.migratedVertices"),
              on_gpn1);
}

TEST(Failover, GpnDeathShardedMatchesSerialBitForBit)
{
    const graph::Csr g = testGraph();

    core::NovaConfig serial = twoGpnConfig();
    serial.faultSchedule = "gpn.dead@gpn0:tick=1";
    const PrRun want = runPr(serial, g);

    core::NovaConfig sharded = serial;
    sharded.threads = 2;
    sharded.deterministicMerge = true;
    const PrRun got = runPr(sharded, g);

    expectSameAnswer(want, got);
    EXPECT_EQ(want.result.extra.at("failover.migratedVertices"),
              got.result.extra.at("failover.migratedVertices"));
    EXPECT_EQ(want.result.bspIterations, got.result.bspIterations);
}

TEST(Failover, LinkDownPenaltyDeterministicAcrossSchedulers)
{
    const graph::Csr g = testGraph();

    core::NovaConfig serial = twoGpnConfig();
    serial.faultSchedule = "noc.linkdown@gpn1:tick=1";
    const PrRun want = runPr(serial, g);
    EXPECT_GT(want.result.extra.at("failover.net.reroutes"), 0);
    EXPECT_GT(want.result.extra.at("failover.net.rerouteDelayTicks"), 0);

    core::NovaConfig sharded = serial;
    sharded.threads = 4;
    sharded.deterministicMerge = true;
    const PrRun got = runPr(sharded, g);

    // The reroute penalty is applied at different pipeline points by
    // the two schedulers (deliver vs uplink exit), so same-tick message
    // interleavings — and thus FP sums — agree to rounding, while the
    // integral penalty accounting must agree exactly.
    expectCloseAnswer(want, got);
    for (const char *key :
         {"failover.net.reroutes", "failover.net.rerouteRetries",
          "failover.net.rerouteDelayTicks", "failover.linksDown"})
        EXPECT_EQ(want.result.extra.at(key), got.result.extra.at(key))
            << key;
}

TEST(Failover, SpillRegionLossDegradesWithoutDataLoss)
{
    const graph::Csr g = testGraph();
    const PrRun clean = runPr(twoGpnConfig(), g);

    core::NovaConfig cfg = twoGpnConfig();
    cfg.faultSchedule = "spill.loss@pe2:tick=1";
    const PrRun faulted = runPr(cfg, g);

    expectSameAnswer(clean, faulted);
    EXPECT_EQ(faulted.result.extra.at("failover.spillRegionsLost"), 1);
    EXPECT_GT(faulted.result.extra.at("failover.degradedInserts"), 0);
}

TEST(Failover, ResumeAcrossGpnDeathBitIdentical)
{
    // The hard-fault ledger rides in the checkpoint: stopping after
    // the fault fired and resuming must replay the slice remap before
    // component state lands, giving the uninterrupted answer exactly.
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_failover_resume.ckpt");

    core::NovaConfig cfg = twoGpnConfig();
    cfg.faultSchedule = "gpn.dead@gpn1:tick=1";
    const PrRun whole = runPr(cfg, g);

    core::CheckpointPolicy stop;
    stop.stopAfterIters = 4;
    stop.path = ckpt.path;
    const PrRun first = runPr(cfg, g, stop);
    EXPECT_TRUE(first.result.stoppedAtCheckpoint);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun second = runPr(cfg, g, resume);
    EXPECT_EQ(whole.result.extra, second.result.extra);
    expectSameAnswer(whole, second);
    EXPECT_EQ(whole.result.ticks, second.result.ticks);
}

TEST(Failover, ShardCrashForcesCheckpointThenResumeCompletes)
{
    // shard.crash models the worker process dying: the run force-writes
    // a checkpoint and panics. Resuming that checkpoint sails past the
    // (already-recorded) fault and converges to the fault-free answer.
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_failover_crash.ckpt");

    const PrRun clean = runPr(twoGpnConfig(), g);

    core::NovaConfig cfg = twoGpnConfig();
    cfg.faultSchedule = "shard.crash@gpn0:tick=1";
    core::CheckpointPolicy periodic;
    periodic.everyIters = 1;
    periodic.path = ckpt.path;
    EXPECT_THROW(runPr(cfg, g, periodic), sim::PanicError);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun second = runPr(cfg, g, resume);
    expectSameAnswer(clean, second);
    // The cumulative ledger rides in the checkpoint: the resumed run
    // still reports the crash that produced it.
    EXPECT_EQ(second.result.extra.at("failover.shardCrashes"), 1);
}

TEST(Failover, HardFaultGrammarRejectsBadSchedules)
{
    const graph::Csr g = testGraph();
    for (const char *bad :
         {"gpn.dead@gpn1",            // hard kinds need tick=
          "gpn.dead:every=5",         // ...and a targeted instance
          "gpn.dead@gpn9:tick=5",     // no such GPN
          "spill.loss@pe99:tick=5"}) {
        core::NovaConfig cfg = twoGpnConfig();
        cfg.faultSchedule = bad;
        EXPECT_THROW(runPr(cfg, g), sim::FatalError) << bad;
    }
}

TEST(Failover, AllGpnsDeadIsFatal)
{
    const graph::Csr g = testGraph();
    core::NovaConfig cfg = twoGpnConfig();
    cfg.faultSchedule = "gpn.dead@gpn0:tick=1+gpn.dead@gpn1:tick=2";
    EXPECT_THROW(runPr(cfg, g), sim::FatalError);
}
