/**
 * @file
 * Tests of the analytical models: Table IV scaling rows and the
 * Table V FPGA estimate, anchored to the paper's numbers.
 */

#include <gtest/gtest.h>

#include "analytic/fpga.hh"
#include "analytic/scaling.hh"

using namespace nova::analytic;

TEST(Wdc12, FootprintMatchesPaper)
{
    const auto g = wdc12();
    EXPECT_NEAR(g.vertexGiB(), 53.0, 0.2);
    EXPECT_NEAR(g.edgeGiB(), 959.0, 1.0);
}

TEST(TableIV, NovaRowMatchesPaper)
{
    const auto r = novaRequirements(wdc12());
    EXPECT_EQ(r.hbmStacks, 14u);
    EXPECT_EQ(r.ddrChannels, 56u);
    EXPECT_NEAR(r.sramMiB, 21.0, 0.1);
    EXPECT_EQ(r.cores, 112u);
    EXPECT_EQ(r.slices, 1u);
}

TEST(TableIV, PolyGraphRowNearPaper)
{
    const auto r = polygraphRequirements(wdc12());
    EXPECT_NEAR(r.hbmStacks, 136.0, 3.0);
    EXPECT_NEAR(r.sramMiB / 1024.0, 4.0, 0.5);
    EXPECT_NEAR(r.cores, 2176.0, 48.0);
    EXPECT_NEAR(r.slices, 15.0, 1.0);
}

TEST(TableIV, PolyGraphNonSlicedRowNearPaper)
{
    const auto r = polygraphNonSlicedRequirements(wdc12());
    EXPECT_NEAR(r.hbmStacks, 128.0, 9.0);
    EXPECT_NEAR(r.sramMiB / 1024.0, 56.0, 4.0);
    EXPECT_NEAR(r.cores, 6400.0, 400.0);
    EXPECT_EQ(r.slices, 1u);
}

TEST(TableIV, DalorexRowNearPaper)
{
    const auto r = dalorexRequirements(wdc12());
    EXPECT_NEAR(r.sramMiB / 1024.0 / 1024.0, 1.0, 0.05); // ~1 TiB
    EXPECT_NEAR(r.cores, 249661.0, 6000.0);
    EXPECT_EQ(r.hbmStacks, 0u);
}

TEST(TableIV, NovaNeedsFarLessSramThanAlternatives)
{
    const auto nova = novaRequirements(wdc12());
    const auto pg = polygraphRequirements(wdc12());
    const auto dal = dalorexRequirements(wdc12());
    EXPECT_LT(nova.sramMiB * 100, pg.sramMiB);
    EXPECT_LT(nova.sramMiB * 10000, dal.sramMiB);
}

TEST(TableV, UnitTotalsMatchPaper)
{
    const auto e = estimateGpn(8);
    ASSERT_EQ(e.rows.size(), 4u);
    EXPECT_EQ(e.rows[0].res.lut, 6032u); // 8 MPU
    EXPECT_EQ(e.rows[0].res.ff, 7472u);
    EXPECT_EQ(e.rows[1].res.bram, 64u);  // 8 VMU
    EXPECT_EQ(e.rows[1].res.uram, 64u);
    EXPECT_EQ(e.rows[2].res.lut, 1640u); // 8 MGU
    EXPECT_EQ(e.rows[3].res.ff, 145u);   // NoC
    EXPECT_NEAR(e.total.powerMw, 3274.0, 1.0);
}

TEST(TableV, UtilisationOnU280)
{
    const auto e = estimateGpn(8);
    const auto dev = alveoU280();
    EXPECT_NEAR(e.lutPct(dev), 1.0, 0.3);
    EXPECT_NEAR(e.ffPct(dev), 0.7, 0.2);
    EXPECT_NEAR(e.bramPct(dev), 4.8, 0.5);
    EXPECT_NEAR(e.uramPct(dev), 10.0, 0.5);
}

TEST(TableV, MultipleGpnsFitOnU280)
{
    // The paper fits 14 GPNs; our conservative estimate is bounded by
    // URAM and must land in the same ballpark.
    const auto gpns = maxGpnsOnDevice(alveoU280());
    EXPECT_GE(gpns, 8u);
    EXPECT_LE(gpns, 16u);
}

TEST(TableV, ResourceArithmetic)
{
    const FpgaResources a{1, 2, 3, 4, 5.0};
    const FpgaResources b = a * 3;
    EXPECT_EQ(b.lut, 3u);
    EXPECT_EQ(b.uram, 12u);
    const FpgaResources c = a + b;
    EXPECT_EQ(c.ff, 8u);
    EXPECT_DOUBLE_EQ(c.powerMw, 20.0);
}

TEST(Scaling, RequirementsGrowWithGraph)
{
    GraphRequirements half = wdc12();
    half.vertices /= 2;
    half.edges /= 2;
    EXPECT_LT(novaRequirements(half).hbmStacks,
              novaRequirements(wdc12()).hbmStacks);
    // PolyGraph's slice count is scale-invariant (scratchpad grows
    // with node count), but its node/core counts are not.
    EXPECT_LT(polygraphRequirements(half).cores,
              polygraphRequirements(wdc12()).cores);
    EXPECT_LT(dalorexRequirements(half).cores,
              dalorexRequirements(wdc12()).cores);
}
