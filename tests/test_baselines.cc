/**
 * @file
 * Functional validation of the PolyGraph model and the Ligra-like
 * engine against the sequential references, plus behavioural checks of
 * the slicing cost model.
 */

#include <gtest/gtest.h>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
testRmat(VertexId n, graph::EdgeId e, std::uint64_t seed,
         graph::Weight max_w = 1)
{
    graph::RmatParams p;
    p.numVertices = n;
    p.numEdges = e;
    p.seed = seed;
    p.maxWeight = max_w;
    return graph::generateRmat(p);
}

graph::VertexMapping
dummyMap(const graph::Csr &g)
{
    return graph::VertexMapping::interleave(g.numVertices(), 1);
}

} // namespace

class EngineParamTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
  protected:
    std::unique_ptr<workloads::GraphEngine>
    makeEngine() const
    {
        const int kind = std::get<0>(GetParam());
        if (kind == 0) {
            baselines::PolyGraphConfig cfg;
            cfg.onChipBytes = 2048; // force several slices on test inputs
            return std::make_unique<baselines::PolyGraphModel>(cfg);
        }
        return std::make_unique<baselines::LigraEngine>();
    }

    std::uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(EngineParamTest, BfsMatchesReference)
{
    const auto g = testRmat(512, 4096, seed());
    const VertexId src = graph::highestDegreeVertex(g);
    auto engine = makeEngine();
    workloads::BfsProgram prog(src);
    const auto r = engine->run(prog, g, dummyMap(g));
    const auto ref = workloads::reference::bfsDepths(g, src);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.props[v], ref[v]) << "vertex " << v;
}

TEST_P(EngineParamTest, SsspMatchesReference)
{
    const auto g = testRmat(256, 2048, seed(), 63);
    const VertexId src = graph::highestDegreeVertex(g);
    auto engine = makeEngine();
    workloads::SsspProgram prog(src);
    const auto r = engine->run(prog, g, dummyMap(g));
    const auto ref = workloads::reference::ssspDistances(g, src);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.props[v], ref[v]) << "vertex " << v;
}

TEST_P(EngineParamTest, CcMatchesReference)
{
    const auto g = graph::symmetrize(testRmat(256, 1024, seed()));
    auto engine = makeEngine();
    workloads::CcProgram prog;
    const auto r = engine->run(prog, g, dummyMap(g));
    const auto ref = workloads::reference::ccLabels(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.props[v], ref[v]) << "vertex " << v;
}

TEST_P(EngineParamTest, PageRankMatchesReference)
{
    const auto g = testRmat(256, 2048, seed());
    auto engine = makeEngine();
    workloads::PageRankProgram prog(0.85, 1e-12, 10);
    engine->run(prog, g, dummyMap(g));
    const auto ref =
        workloads::reference::pagerankDelta(g, 0.85, 1e-12, 10);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(prog.rank()[v], ref[v], 1e-9 + 1e-6 * ref[v]);
}

TEST_P(EngineParamTest, BcMatchesReference)
{
    const auto g = graph::symmetrize(testRmat(128, 1024, seed()));
    auto engine = makeEngine();
    const VertexId src = graph::highestDegreeVertex(g);
    const auto bc = workloads::runBc(*engine, g, dummyMap(g), src);
    const auto ref = workloads::reference::bcDependencies(g, src);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(bc.centrality[v], ref[v],
                    1e-6 + 1e-4 * std::abs(ref[v]));
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineParamTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(1u, 42u, 1234u)),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) == 0 ? "polygraph"
                                                        : "ligra") +
               "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(PolyGraphModel, SliceCountsMatchTableIII)
{
    // Table III: slices with 32 MiB on-chip memory.
    baselines::PolyGraphConfig cfg;
    EXPECT_EQ(cfg.numSlices(23'900'000), 3u);  // RoadUSA
    EXPECT_EQ(cfg.numSlices(41'650'000), 5u);  // Twitter
    EXPECT_EQ(cfg.numSlices(65'600'000), 8u);  // Friendster
    EXPECT_EQ(cfg.numSlices(101'000'000), 13u); // Host
    EXPECT_EQ(cfg.numSlices(134'200'000), 16u); // Urand (paper: 16)
}

TEST(PolyGraphModel, SwitchingOverheadGrowsWithSlices)
{
    const auto g = testRmat(4096, 65536, 9);
    const VertexId src = graph::highestDegreeVertex(g);
    double prev_switching = -1;
    for (std::uint32_t slices : {1u, 4u, 16u}) {
        baselines::PolyGraphConfig cfg;
        cfg.forcedSlices = slices;
        baselines::PolyGraphModel pg(cfg);
        workloads::BfsProgram prog(src);
        const auto r = pg.run(prog, g, dummyMap(g));
        const double sw = r.extra.at("pg.switchingTicks");
        EXPECT_GT(sw, prev_switching);
        prev_switching = sw;
        EXPECT_EQ(r.extra.at("pg.numSlices"), slices);
    }
}

TEST(PolyGraphModel, NonSlicedHasNoRepeatedSwitching)
{
    const auto g = testRmat(1024, 8192, 3);
    baselines::PolyGraphConfig cfg; // 32 MiB default: non-sliced here
    baselines::PolyGraphModel pg(cfg);
    workloads::BfsProgram prog(graph::highestDegreeVertex(g));
    const auto r = pg.run(prog, g, dummyMap(g));
    EXPECT_EQ(r.extra.at("pg.numSlices"), 1);
    // One load + one store of the vertex state only.
    const double eff_bw = 332.8 * cfg.dramEfficiency;
    const double expected =
        2.0 * static_cast<double>(g.numVertices()) * 16 * 1000.0 / eff_bw;
    EXPECT_NEAR(r.extra.at("pg.switchingTicks"), expected,
                expected * 0.01);
}
