/**
 * @file
 * Determinism battery of the conservative-PDES parallel scheduler.
 *
 * Two layers:
 *
 *  - a full-system battery: every fuzzer graph family runs SSSP and
 *    PageRank on the sharded NOVA model with 1, 2, 4 and 8 host
 *    threads under --deterministic-merge, and every outcome (final
 *    properties, tick count, every statistic, the per-shard and merged
 *    event fingerprints) must be bit-identical to the single-threaded
 *    legacy-heap run;
 *
 *  - a million-event ParallelScheduler stress: a self-expanding
 *    multi-shard workload with cross-shard posts, checked event for
 *    event against an independent naive model of the conservative
 *    window algorithm (per-shard std::priority_queue shards plus
 *    sorted mailboxes), and for thread-count invariance.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <tuple>
#include <vector>

#include "core/system.hh"
#include "graph/partition.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "sim/random.hh"
#include "verify/fuzz.hh"
#include "workloads/programs.hh"

using namespace nova;
using sim::Tick;

namespace
{

/** Scaled-down two-GPN system, mirroring the differential harness. */
core::NovaConfig
shardedConfig(std::uint32_t threads)
{
    core::NovaConfig cfg;
    cfg.numGpns = 2;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 512;
    cfg.activeBufferEntries = 16;
    cfg.threads = threads;
    cfg.deterministicMerge = threads > 0;
    return cfg;
}

/** Everything a run produced, for bit-exact comparison. */
struct Outcome
{
    std::vector<std::uint64_t> props;
    std::map<std::string, double> extra;
    std::uint64_t ticks = 0;
    std::uint64_t bspIterations = 0;
    std::uint64_t messagesGenerated = 0;
};

enum class Prog
{
    Sssp,
    Pr,
};

Outcome
runSharded(const verify::FuzzedGraph &fuzzed, Prog which,
           std::uint32_t threads, sim::EventQueue::Impl impl)
{
    sim::EventQueue::ScopedDefaultImpl forced(impl);
    const graph::Csr &g = fuzzed.graph;
    core::NovaConfig cfg = shardedConfig(threads);
    core::NovaSystem system(cfg);
    const auto map =
        graph::randomMapping(g.numVertices(), cfg.totalPes(), 9);

    workloads::RunResult r;
    if (which == Prog::Sssp) {
        workloads::SsspProgram prog(fuzzed.source);
        r = system.run(prog, g, map);
    } else {
        workloads::PageRankProgram prog(0.85, 1e-11, 8);
        r = system.run(prog, g, map);
    }

    Outcome out;
    out.props = r.props;
    out.extra = std::map<std::string, double>(r.extra.begin(),
                                              r.extra.end());
    out.ticks = r.ticks;
    out.bspIterations = r.bspIterations;
    out.messagesGenerated = r.messagesGenerated;
    return out;
}

void
expectIdentical(const Outcome &got, const Outcome &want,
                const std::string &label)
{
    EXPECT_EQ(got.props, want.props) << label;
    EXPECT_EQ(got.ticks, want.ticks) << label;
    EXPECT_EQ(got.bspIterations, want.bspIterations) << label;
    EXPECT_EQ(got.messagesGenerated, want.messagesGenerated) << label;
    ASSERT_EQ(got.extra.size(), want.extra.size()) << label;
    for (const auto &[key, value] : want.extra) {
        const auto it = got.extra.find(key);
        ASSERT_TRUE(it != got.extra.end()) << label << ": missing " << key;
        EXPECT_EQ(it->second, value) << label << ": stat " << key;
    }
}

/**
 * One representative fuzz case per graph family: the family is sampled
 * per case, so walk the stream until all 13 have appeared.
 */
std::map<verify::GraphFamily, std::uint64_t>
familyRepresentatives(std::uint64_t seed)
{
    std::map<verify::GraphFamily, std::uint64_t> reps;
    for (std::uint64_t index = 0;
         index < 512 && reps.size() < verify::numGraphFamilies; ++index) {
        const verify::FuzzedGraph fuzzed = verify::fuzzCase(seed, index);
        reps.emplace(fuzzed.family, index);
    }
    return reps;
}

} // namespace

TEST(ParallelDeterminism, AllFamiliesBitIdenticalAcrossThreadCounts)
{
    constexpr std::uint64_t kSeed = 0x7E57;
    const auto reps = familyRepresentatives(kSeed);
    ASSERT_EQ(reps.size(), verify::numGraphFamilies)
        << "fuzz stream did not cover every graph family";

    for (const auto &[family, index] : reps) {
        const verify::FuzzedGraph fuzzed = verify::fuzzCase(kSeed, index);
        SCOPED_TRACE(std::string("family ") + verify::familyName(family) +
                     ": " + fuzzed.description);
        for (const Prog which : {Prog::Sssp, Prog::Pr}) {
            const std::string prog =
                which == Prog::Sssp ? "sssp" : "pr";
            // Reference: one thread on the legacy binary heap.
            const Outcome want = runSharded(
                fuzzed, which, 1, sim::EventQueue::Impl::LegacyHeap);
            EXPECT_TRUE(want.extra.count("sim.mergedFingerprint"))
                << prog << ": deterministic merge did not run";
            for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
                const Outcome got = runSharded(
                    fuzzed, which, threads,
                    sim::EventQueue::Impl::Calendar);
                expectIdentical(got, want,
                                prog + " with " +
                                    std::to_string(threads) +
                                    " calendar threads");
            }
        }
    }
}

namespace
{

/** One executed event as observed from outside the scheduler. */
struct Observed
{
    Tick when;
    int priority;
    std::uint64_t id;

    bool
    operator==(const Observed &o) const
    {
        return when == o.when && priority == o.priority && id == o.id;
    }
};

constexpr std::uint32_t kShards = 4;
constexpr Tick kLookahead = 1000;

/**
 * Independent reference model of the conservative window algorithm:
 * per-shard (when, priority, seq) priority queues, cross-shard posts
 * buffered in mailboxes that are drained only at window barriers in
 * (when, priority, srcShard, srcSeq) order. Deliberately naive — no
 * calendar, no threads, no lock-free anything.
 */
class ModelParallel
{
  public:
    explicit ModelParallel(std::uint32_t num_shards)
        : shards(num_shards), mailboxes(num_shards)
    {
    }

    Tick now(std::uint32_t s) const { return shards[s].cur; }

    void
    schedule(std::uint32_t s, Tick when, int priority,
             std::function<void()> fn)
    {
        ModelShard &sh = shards[s];
        sh.heap.push(Item{when, priority, sh.nextSeq++, std::move(fn)});
    }

    void
    postCross(std::uint32_t src, std::uint32_t dst, Tick when,
              int priority, std::function<void()> fn)
    {
        mailboxes[dst].push_back(
            Mail{when, priority, src, shards[src].postSeq++,
                 std::move(fn)});
    }

    void
    runUntilQuiescent(const std::function<void(std::uint32_t s, Tick when,
                                               int priority)> &observe)
    {
        while (true) {
            drainMailboxes();
            bool any = false;
            Tick global_next = 0;
            for (const ModelShard &sh : shards) {
                if (sh.heap.empty())
                    continue;
                if (!any || sh.heap.top().when < global_next)
                    global_next = sh.heap.top().when;
                any = true;
            }
            if (!any)
                return;
            const Tick horizon = global_next + kLookahead;
            for (std::uint32_t s = 0; s < shards.size(); ++s) {
                ModelShard &sh = shards[s];
                while (!sh.heap.empty() &&
                       sh.heap.top().when < horizon) {
                    Item it =
                        std::move(const_cast<Item &>(sh.heap.top()));
                    sh.heap.pop();
                    sh.cur = it.when;
                    observe(s, it.when, it.priority);
                    it.fn();
                }
            }
        }
    }

  private:
    struct Item
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            return std::make_tuple(a.when, a.priority, a.seq) >
                   std::make_tuple(b.when, b.priority, b.seq);
        }
    };

    struct ModelShard
    {
        std::priority_queue<Item, std::vector<Item>, Later> heap;
        Tick cur = 0;
        std::uint64_t nextSeq = 0;
        std::uint64_t postSeq = 0;
    };

    struct Mail
    {
        Tick when;
        int priority;
        std::uint32_t srcShard;
        std::uint64_t srcSeq;
        std::function<void()> fn;
    };

    void
    drainMailboxes()
    {
        for (std::uint32_t s = 0; s < shards.size(); ++s) {
            auto &box = mailboxes[s];
            std::sort(box.begin(), box.end(),
                      [](const Mail &a, const Mail &b) {
                          return std::make_tuple(a.when, a.priority,
                                                 a.srcShard, a.srcSeq) <
                                 std::make_tuple(b.when, b.priority,
                                                 b.srcShard, b.srcSeq);
                      });
            for (Mail &m : box)
                schedule(s, m.when, m.priority, std::move(m.fn));
            box.clear();
        }
    }

    std::vector<ModelShard> shards;
    std::vector<std::vector<Mail>> mailboxes;
};

/**
 * The self-expanding stress workload over any scheduler adapter. Every
 * executed event draws from its shard's Rng (consumed strictly in that
 * shard's execution order, so two schedulers draw identically iff they
 * execute identically) and schedules one or two children: usually
 * local at mixed horizons, sometimes cross-shard at now + lookahead +
 * delta. Budgets and ids are per shard — under real worker threads
 * each is touched only by its owning shard.
 */
template <typename Adapter>
std::vector<std::vector<Observed>>
runStress(Adapter &sched, std::uint64_t target_per_shard,
          std::uint64_t seed)
{
    struct ShardState
    {
        sim::Rng rng{0};
        std::uint64_t scheduled = 0;
        std::uint64_t nextId = 0;
    };
    std::vector<ShardState> state(kShards);
    std::vector<std::vector<Observed>> traces(kShards);
    for (std::uint32_t s = 0; s < kShards; ++s) {
        state[s].rng = sim::Rng(seed ^ (0x9E3779B9ULL * (s + 1)));
        traces[s].reserve(target_per_shard + 16);
    }

    // body(shard, priority, id) runs as one event on `shard`.
    std::function<void(std::uint32_t, int, std::uint64_t)> body =
        [&sched, &state, &traces, &body, target_per_shard](
            std::uint32_t s, int priority, std::uint64_t id) {
            ShardState &st = state[s];
            traces[s].push_back(Observed{sched.now(s), priority, id});
            const std::uint32_t fanout = 1 + st.rng.nextBounded(2);
            for (std::uint32_t i = 0;
                 i < fanout && st.scheduled < target_per_shard; ++i) {
                const int child_prio =
                    static_cast<int>(st.rng.nextBounded(3)) - 1;
                const std::uint64_t child =
                    (static_cast<std::uint64_t>(s) << 40) | st.nextId++;
                ++st.scheduled;
                const bool cross = st.rng.nextBounded(8) == 0;
                if (cross) {
                    const std::uint32_t dst = (s + 1) % kShards;
                    const Tick when = sched.now(s) + kLookahead +
                                      st.rng.nextBounded(5000);
                    sched.postCross(s, dst, when, child_prio,
                                    [&body, dst, child_prio, child] {
                                        body(dst, child_prio, child);
                                    });
                    continue;
                }
                Tick delta = 0;
                switch (st.rng.nextBounded(4)) {
                  case 0:
                    delta = 0; // same tick
                    break;
                  case 1:
                    delta = st.rng.nextBounded(1000); // same bucket
                    break;
                  case 2:
                    delta = st.rng.nextBounded(200'000); // in-window
                    break;
                  default:
                    delta = 250'000 +
                            st.rng.nextBounded(5'000'000); // far heap
                    break;
                }
                sched.schedule(s, sched.now(s) + delta, child_prio,
                               [&body, s, child_prio, child] {
                                   body(s, child_prio, child);
                               });
            }
        };

    for (std::uint32_t s = 0; s < kShards; ++s) {
        ++state[s].scheduled;
        const std::uint64_t root =
            (static_cast<std::uint64_t>(s) << 40) | state[s].nextId++;
        sched.schedule(s, 0, 0,
                       [&body, s, root] { body(s, 0, root); });
    }
    sched.run();
    return traces;
}

/** Adapter driving the real ParallelScheduler. */
class RealAdapter
{
  public:
    RealAdapter(std::uint32_t threads, bool merge)
    {
        sim::ParallelScheduler::Config cfg;
        cfg.numShards = kShards;
        cfg.numThreads = threads;
        cfg.lookahead = kLookahead;
        cfg.deterministicMerge = merge;
        sched.emplace(cfg);
    }

    Tick now(std::uint32_t s) const { return sched->shard(s).now(); }

    void
    schedule(std::uint32_t s, Tick when, int priority,
             std::function<void()> fn)
    {
        sched->shard(s).schedule(when, std::move(fn), priority);
    }

    void
    postCross(std::uint32_t src, std::uint32_t dst, Tick when,
              int priority, std::function<void()> fn)
    {
        sched->postCross(src, dst, when, priority, std::move(fn));
    }

    void run() { sched->runUntilQuiescent(); }

    sim::ParallelScheduler &scheduler() { return *sched; }

  private:
    std::optional<sim::ParallelScheduler> sched;
};

/** Adapter driving the naive reference model. */
class ModelAdapter
{
  public:
    ModelAdapter() : model(kShards) {}

    Tick now(std::uint32_t s) const { return model.now(s); }

    void
    schedule(std::uint32_t s, Tick when, int priority,
             std::function<void()> fn)
    {
        model.schedule(s, when, priority, std::move(fn));
    }

    void
    postCross(std::uint32_t src, std::uint32_t dst, Tick when,
              int priority, std::function<void()> fn)
    {
        model.postCross(src, dst, when, priority, std::move(fn));
    }

    void
    run()
    {
        model.runUntilQuiescent(
            [this](std::uint32_t s, Tick when, int priority) {
                observed[s].push_back(Observed{when, priority, 0});
            });
    }

    /** Model-side (when, priority) execution order, per shard. */
    std::vector<std::vector<Observed>> observed{kShards};

  private:
    ModelParallel model;
};

} // namespace

TEST(ParallelSchedulerStress, MatchesReferenceModelOnMillionEvents)
{
    constexpr std::uint64_t kPerShard = 250'000;
    constexpr std::uint64_t kSeed = 0xC0FFEE;

    RealAdapter real(1, false);
    const auto got = runStress(real, kPerShard, kSeed);
    ModelAdapter model;
    const auto want = runStress(model, kPerShard, kSeed);

    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < kShards; ++s) {
        ASSERT_EQ(got[s].size(), want[s].size()) << "shard " << s;
        total += got[s].size();
        for (std::size_t i = 0; i < got[s].size(); ++i)
            ASSERT_TRUE(got[s][i] == want[s][i])
                << "shard " << s << " diverged at event " << i
                << ": scheduler ran id " << got[s][i].id << " at tick "
                << got[s][i].when << ", model ran id " << want[s][i].id
                << " at tick " << want[s][i].when;
    }
    EXPECT_EQ(total, kShards * kPerShard);
    EXPECT_EQ(real.scheduler().executed(), total);
}

TEST(ParallelSchedulerStress, ThreadCountInvariantOnMillionEvents)
{
    constexpr std::uint64_t kPerShard = 250'000;
    constexpr std::uint64_t kSeed = 0xD15EA5E;

    RealAdapter one(1, true);
    const auto base = runStress(one, kPerShard, kSeed);

    for (const std::uint32_t threads : {2u, 4u, 8u}) {
        RealAdapter many(threads, true);
        const auto got = runStress(many, kPerShard, kSeed);
        for (std::uint32_t s = 0; s < kShards; ++s) {
            ASSERT_EQ(got[s].size(), base[s].size())
                << threads << " threads, shard " << s;
            for (std::size_t i = 0; i < got[s].size(); ++i)
                ASSERT_TRUE(got[s][i] == base[s][i])
                    << threads << " threads, shard " << s
                    << " diverged at event " << i;
        }
        EXPECT_EQ(many.scheduler().fingerprint(),
                  one.scheduler().fingerprint())
            << threads << " threads";
        EXPECT_EQ(many.scheduler().mergedFingerprint(),
                  one.scheduler().mergedFingerprint())
            << threads << " threads";
        EXPECT_EQ(many.scheduler().executed(), one.scheduler().executed())
            << threads << " threads";
        EXPECT_EQ(many.scheduler().now(), one.scheduler().now())
            << threads << " threads";
    }
}

TEST(ParallelScheduler, CrossPostsDeliverInCanonicalOrder)
{
    // Two sources post to one destination at the same tick: the drain
    // must order by (when, priority, srcShard, srcSeq) regardless of
    // post order, and the destination clock must never run backwards.
    sim::ParallelScheduler::Config cfg;
    cfg.numShards = 3;
    cfg.numThreads = 1;
    cfg.lookahead = 100;
    sim::ParallelScheduler sched(cfg);

    std::vector<int> order;
    sched.shard(1).schedule(0, [&sched, &order] {
        const Tick when = sched.shard(1).now() + 100;
        sched.postCross(1, 0, when, 0, [&order] { order.push_back(10); });
        sched.postCross(1, 0, when, -1, [&order] { order.push_back(11); });
    });
    sched.shard(2).schedule(0, [&sched, &order] {
        const Tick when = sched.shard(2).now() + 100;
        sched.postCross(2, 0, when, 0, [&order] { order.push_back(20); });
        sched.postCross(2, 0, when, 0, [&order] { order.push_back(21); });
    });
    sched.runUntilQuiescent();

    // Priority -1 first, then shard 1's remaining post, then shard 2's
    // two posts in their issue order.
    const std::vector<int> want = {11, 10, 20, 21};
    EXPECT_EQ(order, want);
    EXPECT_EQ(sched.executed(), 6u);
}

TEST(ParallelScheduler, ShardClocksResyncAtQuiescence)
{
    sim::ParallelScheduler::Config cfg;
    cfg.numShards = 2;
    cfg.numThreads = 2;
    cfg.lookahead = 10;
    sim::ParallelScheduler sched(cfg);

    // Shard 0 runs far ahead of shard 1.
    sched.shard(0).schedule(5000, [] {});
    sched.shard(1).schedule(7, [] {});
    sched.runUntilQuiescent();
    EXPECT_EQ(sched.shard(0).now(), sched.shard(1).now());
    EXPECT_EQ(sched.now(), Tick{5000});

    // A post-quiescence super-step (the BSP barrier pattern) must be
    // able to schedule at the resynchronized clock on every shard.
    sched.shard(1).schedule(sched.now(), [] {});
    sched.runUntilQuiescent();
    EXPECT_EQ(sched.executed(), 3u);
}
