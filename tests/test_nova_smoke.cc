/**
 * @file
 * End-to-end smoke tests of the NOVA cycle model: functional results
 * must match the sequential references on small graphs.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

core::NovaConfig
smallConfig()
{
    core::NovaConfig cfg;
    cfg.numGpns = 1;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 1024;
    return cfg;
}

} // namespace

TEST(NovaSmoke, BfsOnPath)
{
    const auto g = graph::generatePath(32);
    const auto map = graph::VertexMapping::interleave(g.numVertices(), 4);
    core::NovaSystem nova(smallConfig());
    workloads::BfsProgram prog(0);
    const auto result = nova.run(prog, g, map);

    const auto ref = workloads::reference::bfsDepths(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.props[v], ref[v]) << "vertex " << v;
    EXPECT_GT(result.ticks, 0u);
    EXPECT_EQ(result.messagesProcessed, 31u);
}

TEST(NovaSmoke, BfsOnRmat)
{
    graph::RmatParams p;
    p.numVertices = 512;
    p.numEdges = 4096;
    p.seed = 42;
    const auto g = graph::generateRmat(p);
    const auto map = graph::randomMapping(g.numVertices(), 4, 7);
    core::NovaSystem nova(smallConfig());
    workloads::BfsProgram prog(0);
    const auto result = nova.run(prog, g, map);

    const auto ref = workloads::reference::bfsDepths(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.props[v], ref[v]) << "vertex " << v;
}

TEST(NovaSmoke, SsspOnRmat)
{
    graph::RmatParams p;
    p.numVertices = 256;
    p.numEdges = 2048;
    p.maxWeight = 63;
    p.seed = 3;
    const auto g = graph::generateRmat(p);
    const auto map = graph::VertexMapping::interleave(g.numVertices(), 4);
    core::NovaSystem nova(smallConfig());
    workloads::SsspProgram prog(1);
    const auto result = nova.run(prog, g, map);

    const auto ref = workloads::reference::ssspDistances(g, 1);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.props[v], ref[v]) << "vertex " << v;
}

TEST(NovaSmoke, CcOnDisconnectedGraph)
{
    graph::EdgeList list;
    list.numVertices = 60;
    // Three chains of 20 vertices each; symmetric.
    for (VertexId base : {0u, 20u, 40u}) {
        for (VertexId i = 0; i + 1 < 20; ++i) {
            list.edges.push_back({base + i, base + i + 1, 1});
            list.edges.push_back({base + i + 1, base + i, 1});
        }
    }
    const auto g = graph::buildCsr(list);
    const auto map = graph::VertexMapping::interleave(g.numVertices(), 4);
    core::NovaSystem nova(smallConfig());
    workloads::CcProgram prog;
    const auto result = nova.run(prog, g, map);

    const auto ref = workloads::reference::ccLabels(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.props[v], ref[v]) << "vertex " << v;
}

TEST(NovaSmoke, PageRankOnRmat)
{
    graph::RmatParams p;
    p.numVertices = 256;
    p.numEdges = 2048;
    p.seed = 11;
    const auto g = graph::generateRmat(p);
    const auto map = graph::VertexMapping::interleave(g.numVertices(), 4);
    core::NovaSystem nova(smallConfig());
    workloads::PageRankProgram prog(0.85, 1e-12, 10);
    const auto result = nova.run(prog, g, map);
    EXPECT_GT(result.bspIterations, 1u);

    const auto ref =
        workloads::reference::pagerankDelta(g, 0.85, 1e-12, 10);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(prog.rank()[v], ref[v], 1e-9 + 1e-6 * ref[v])
            << "vertex " << v;
}

TEST(NovaSmoke, BcOnSymmetrizedRmat)
{
    graph::RmatParams p;
    p.numVertices = 128;
    p.numEdges = 1024;
    p.seed = 5;
    const auto g = graph::symmetrize(graph::generateRmat(p));
    const auto map = graph::VertexMapping::interleave(g.numVertices(), 4);
    core::NovaSystem nova(smallConfig());
    const auto bc = workloads::runBc(nova, g, map, 0);

    const auto ref = workloads::reference::bcDependencies(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_NEAR(bc.centrality[v], ref[v],
                    1e-6 + 1e-4 * std::abs(ref[v]))
            << "vertex " << v;
    EXPECT_GT(bc.totalTicks(), 0u);
}
