// Fixture: a pointer-keyed ordered map iterates in host-address order;
// a value accumulated from that loop reaches a stats sink later in the
// same function -> determinism-taint fires at the sink.
#include <cstdint>
#include <map>
#include <vector>

namespace nova
{

struct Vertex;

void
foldRanks(const std::map<Vertex *, std::uint64_t> &ranks)
{
    std::vector<std::uint64_t> order;
    for (const auto &kv : ranks)
        order.push_back(kv.second);
    saveGroupStats(order);
}

} // namespace nova
