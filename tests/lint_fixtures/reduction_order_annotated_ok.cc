// Fixture: the same merge loop as reduction_order_bad.cc, but the loop
// is declared to run in a canonical order -> clean.
#include <vector>

namespace nova
{

struct ShardStats
{
    double energy = 0;
};

double
mergeEnergy(const std::vector<ShardStats> &shards)
{
    double total = 0;
    // Shard index order is fixed at construction time.
    // novalint: canonical-order
    for (const auto &sh : shards)
        total += sh.energy;
    return total;
}

} // namespace nova
