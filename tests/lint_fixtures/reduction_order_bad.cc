// Fixture: floating-point += in a loop of a merge-path function with
// no canonical-order annotation -> reduction-order fires.
#include <vector>

namespace nova
{

struct ShardStats
{
    double energy = 0;
};

double
mergeEnergy(const std::vector<ShardStats> &shards)
{
    double total = 0;
    for (const auto &sh : shards)
        total += sh.energy;
    return total;
}

} // namespace nova
