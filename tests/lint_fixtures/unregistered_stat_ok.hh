// Fixture: both stats are registered in the paired .cc — clean.
#ifndef NOVA_LINT_FIXTURE_UNREGISTERED_STAT_OK_HH
#define NOVA_LINT_FIXTURE_UNREGISTERED_STAT_OK_HH

#include "sim/sim_object.hh"

class GoodCounter : public nova::sim::SimObject
{
  public:
    GoodCounter(std::string name, nova::sim::EventQueue &queue);

    nova::sim::stats::Scalar hits;
    nova::sim::stats::Scalar misses;
};

#endif // NOVA_LINT_FIXTURE_UNREGISTERED_STAT_OK_HH
