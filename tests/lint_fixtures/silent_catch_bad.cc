// Fixture: silent-catch violations.

#include <stdexcept>

int
swallowsEverything(int x)
{
    try {
        if (x < 0)
            throw std::runtime_error("negative");
    } catch (...) { // marker: catch-all swallow
        x = 0;
    }
    return x;
}

void
emptyHandler(int x)
{
    try {
        if (x < 0)
            throw std::runtime_error("negative");
    } catch (const std::exception &e) { // marker: empty typed handler
    }
}
