// Fixture: a polymorphic base with a virtual destructor, a derived
// class (destructor virtuality comes from the base), and a plain
// value type — all clean.
#ifndef NOVA_LINT_FIXTURE_VIRTUAL_DTOR_OK_HH
#define NOVA_LINT_FIXTURE_VIRTUAL_DTOR_OK_HH

class Model
{
  public:
    virtual ~Model() = default;
    virtual void step() = 0;
};

class FastModel : public Model
{
  public:
    void step() override {}
};

struct Point
{
    int x = 0;
    int y = 0;
};

#endif // NOVA_LINT_FIXTURE_VIRTUAL_DTOR_OK_HH
