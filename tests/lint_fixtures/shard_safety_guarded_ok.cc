// Fixture: mutable shared state with a guarded-by annotation naming a
// mutex that is really declared in the TU -> clean.
#include "sim/event_queue.hh"

#include <cstdint>
#include <mutex>

namespace nova
{

std::mutex statsMutex;

// novalint: guarded-by(statsMutex)
std::uint64_t sharedDrops = 0;

void
noteDrop(sim::EventQueue &eq)
{
    std::lock_guard<std::mutex> hold(statsMutex);
    ++sharedDrops;
    eq.scheduleIn(1, [] {});
}

} // namespace nova
