// Fixture: range-for over an unordered container in an event-scheduling
// file must fire unordered-iteration.
#include <unordered_map>

#include "sim/event_queue.hh"

void
hazard(nova::sim::EventQueue &eq)
{
    std::unordered_map<int, int> pending;
    pending[1] = 10;
    for (const auto &kv : pending)
        eq.scheduleIn(kv.second, [] {});
}
