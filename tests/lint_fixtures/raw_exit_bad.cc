// Fixture: raw process termination bypasses the nova_cli exit-code
// contract (0/1/2/3), the crash bundle, and supervisor classification.
#include <cstdlib>

void
bail(bool bad)
{
    if (bad)
        std::exit(2);
}
