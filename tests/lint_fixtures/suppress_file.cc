// Fixture: a file-wide allow silences every occurrence of the rule.
// novalint:allow-file(raw-new)
struct Widget
{
    int x = 0;
};

Widget *
first()
{
    return new Widget;
}

Widget *
second()
{
    return new Widget;
}
