// Fixture: same shape as determinism_taint_loop_bad.cc but over a
// value-keyed std::map, whose iteration order is already canonical ->
// clean.
#include "sim/checkpoint.hh"

#include <cstdint>
#include <map>

namespace nova
{

void
savePending(sim::CheckpointWriter &w,
            const std::map<std::uint32_t, std::uint64_t> &pending)
{
    for (const auto &kv : pending)
        w.u64(kv.second);
}

} // namespace nova
