// Fixture: a matching NOVA_*_HH ifndef/define pair — clean.
#ifndef NOVA_LINT_FIXTURE_INCLUDE_GUARD_OK_HH
#define NOVA_LINT_FIXTURE_INCLUDE_GUARD_OK_HH

inline int
answer()
{
    return 42;
}

#endif // NOVA_LINT_FIXTURE_INCLUDE_GUARD_OK_HH
