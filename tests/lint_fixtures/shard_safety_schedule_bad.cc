// Fixture: scheduling directly on a ParallelScheduler shard queue
// without a shard-local annotation -> shard-safety fires (cross-shard
// work must go through postCross).
#include "sim/parallel.hh"

namespace nova
{

void
kick(sim::ParallelScheduler &sched, sim::Tick when)
{
    sched.shard(1).schedule(when, [] {});
}

} // namespace nova
