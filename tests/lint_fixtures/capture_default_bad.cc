// Fixture: a default-capture lambda in a file that schedules events
// must fire capture-default.
#include "sim/event_queue.hh"

void
hazard(nova::sim::EventQueue &eq)
{
    int x = 0;
    eq.scheduleIn(10, [&] { x += 1; });
}
