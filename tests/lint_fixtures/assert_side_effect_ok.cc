// Fixture: side-effect-free assertions (including comparisons that
// contain '=' as part of ==, !=, <=, >=) are clean.
#include "sim/logging.hh"

void
safe(int n)
{
    int i = 0;
    NOVA_ASSERT(i + 1 <= n, "pure condition");
    NOVA_ASSERT(i == 0 || n != 0, "still pure");
    (void)i;
}
