// Fixture: NOVA_ASSERT whose condition mutates state must fire.
#include "sim/logging.hh"

void
hazard(int n)
{
    int i = 0;
    NOVA_ASSERT(i++ < n, "mutating condition");
    (void)i;
}
