// Fixture: the sanctioned forms — throwing through the error types so
// main() translates to the exit contract, or an explicit allowance at
// a fork/exec boundary where unwinding the child is not an option.
#include <unistd.h>

[[noreturn]] void fatal(const char *what);

void
bail(bool bad)
{
    if (bad)
        fatal("bad input");
}

void
afterForkExecFailed()
{
    ::_exit(127); // novalint:allow(raw-exit)
}
