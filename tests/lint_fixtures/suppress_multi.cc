// Fixture: suppression-comment parsing tolerates whitespace and
// comma-separated rule lists (regression for the exact-match-only
// parser). Every line below would otherwise fire.
struct Widget
{
    int x;
};

Widget *
makeTrailingSpace()
{
    return new Widget; // novalint:allow(raw-new)  	
}

Widget *
makeMultiRule()
{
    // novalint:allow(raw-new, wall-clock)
    return new Widget;
}

Widget *
makeSpacedList()
{
    return new Widget; // novalint: allow( raw-new , unordered-iteration )
}
