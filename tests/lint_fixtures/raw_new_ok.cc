// Fixture: unique_ptr ownership via make_unique is the sanctioned form.
#include <memory>

struct Widget
{
    int x = 0;
};

std::unique_ptr<Widget>
safe()
{
    return std::make_unique<Widget>();
}
