// Fixture: a guard that is not NOVA_*_HH must fire include-guard.
#ifndef LINT_FIXTURE_WRONG_GUARD_H
#define LINT_FIXTURE_WRONG_GUARD_H

inline int
answer()
{
    return 42;
}

#endif // LINT_FIXTURE_WRONG_GUARD_H
