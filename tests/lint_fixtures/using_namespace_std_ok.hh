// Fixture: qualified names in a header — clean.
#ifndef NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_OK_HH
#define NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_OK_HH

#include <string>

inline std::string
shout(const std::string &s)
{
    return s + "!";
}

#endif // NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_OK_HH
