// Fixture: iterating an unordered_map directly into a checkpoint
// writer -> determinism-taint fires inside the loop (bucket order
// would be serialized).
#include "sim/checkpoint.hh"

#include <cstdint>
#include <unordered_map>

namespace nova
{

void
savePending(sim::CheckpointWriter &w,
            const std::unordered_map<std::uint32_t, std::uint64_t> &pending)
{
    for (const auto &kv : pending)
        w.u64(kv.second);
}

} // namespace nova
