// Fixture: the values are collected from an unordered container but
// std::sort establishes a canonical order before the sink -> clean.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace nova
{

void
foldRanks(const std::unordered_map<std::uint32_t, std::uint64_t> &ranks)
{
    std::vector<std::uint64_t> order;
    for (const auto &kv : ranks)
        order.push_back(kv.second);
    std::sort(order.begin(), order.end());
    saveGroupStats(order);
}

} // namespace nova
