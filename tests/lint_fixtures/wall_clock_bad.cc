// Fixture: entropy and wall-clock sources outside src/sim/random.*
// must each fire.
#include <chrono>
#include <random>

std::uint64_t
hazard()
{
    std::random_device rd;
    const auto t = std::chrono::steady_clock::now();
    return rd() + static_cast<std::uint64_t>(t.time_since_epoch().count());
}
