// Fixture: point lookups (find/end/count) on an unordered container are
// deterministic and allowed; only iteration order is hazardous.
#include <unordered_map>

#include "sim/event_queue.hh"

void
safe(nova::sim::EventQueue &eq)
{
    std::unordered_map<int, int> pending;
    pending[1] = 10;
    auto it = pending.find(1);
    if (it != pending.end())
        eq.scheduleIn(it->second, [] {});
}
