// Fixture pair of unregistered_stat_ok.hh: every stat is registered.
#include "unregistered_stat_ok.hh"

GoodCounter::GoodCounter(std::string name, nova::sim::EventQueue &queue)
    : nova::sim::SimObject(std::move(name), queue)
{
    statistics().addScalar("hits", &hits);
    statistics().addScalar("misses", &misses);
}
