// Fixture: the checked helpers are the sanctioned Tick arithmetic.
#include "sim/event_queue.hh"

nova::sim::Tick
safe(nova::sim::EventQueue &eq)
{
    return nova::sim::tickAdd(eq.now(), 100);
}
