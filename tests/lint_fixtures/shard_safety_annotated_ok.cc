// Fixture: the same shapes as shard_safety_*_bad.cc, but every site
// carries a shard-local annotation -> clean.
#include "sim/parallel.hh"

#include <cstdint>

namespace nova
{

// Only shard 0's event stream ever mutates this counter.
// novalint: shard-local
std::uint64_t shardLocalHits = 0;

void
bump(sim::ParallelScheduler &sched, sim::Tick when)
{
    ++shardLocalHits;
    // Self-delivery on the caller's own shard.
    // novalint: shard-local
    sched.shard(0).schedule(when, [] {});
}

} // namespace nova
