// Fixture: every violation below carries a novalint:allow — same-line
// and previous-line forms — so the file must lint clean.
struct Widget
{
    int x = 0;
};

Widget *
sameLine()
{
    return new Widget; // novalint:allow(raw-new)
}

Widget *
previousLine()
{
    // novalint:allow(raw-new)
    return new Widget;
}
