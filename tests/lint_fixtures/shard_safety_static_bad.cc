// Fixture: mutable namespace-scope state touched from an event handler
// in an event-scheduling file, with no shard-local/guarded-by
// annotation -> shard-safety fires at the declaration.
#include "sim/event_queue.hh"

#include <cstdint>

namespace nova
{

std::uint64_t deliveredCount = 0;

void
onDeliver(sim::EventQueue &eq)
{
    ++deliveredCount;
    eq.scheduleIn(5, [] {});
}

} // namespace nova
