// Fixture: a polymorphic base without a virtual destructor must fire
// virtual-dtor at the class declaration.
#ifndef NOVA_LINT_FIXTURE_VIRTUAL_DTOR_BAD_HH
#define NOVA_LINT_FIXTURE_VIRTUAL_DTOR_BAD_HH

class Model
{
  public:
    virtual void step() = 0;
    virtual int latency() const { return 1; }
};

#endif // NOVA_LINT_FIXTURE_VIRTUAL_DTOR_BAD_HH
