// Fixture: `misses` is declared but never registered in the paired .cc;
// unregistered-stat must fire on its declaration line.
#ifndef NOVA_LINT_FIXTURE_UNREGISTERED_STAT_BAD_HH
#define NOVA_LINT_FIXTURE_UNREGISTERED_STAT_BAD_HH

#include "sim/sim_object.hh"

class BadCounter : public nova::sim::SimObject
{
  public:
    BadCounter(std::string name, nova::sim::EventQueue &queue);

    nova::sim::stats::Scalar hits;
    nova::sim::stats::Scalar misses;
};

#endif // NOVA_LINT_FIXTURE_UNREGISTERED_STAT_BAD_HH
