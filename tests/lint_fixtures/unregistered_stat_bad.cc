// Fixture pair of unregistered_stat_bad.hh: only `hits` is registered.
#include "unregistered_stat_bad.hh"

BadCounter::BadCounter(std::string name, nova::sim::EventQueue &queue)
    : nova::sim::SimObject(std::move(name), queue)
{
    statistics().addScalar("hits", &hits);
}
