// Fixture: raw arithmetic on now() must fire tick-arith.
#include "sim/event_queue.hh"

nova::sim::Tick
hazard(nova::sim::EventQueue &eq)
{
    return eq.now() + 100;
}
