// Fixture: a raw new expression must fire raw-new.
struct Widget
{
    int x = 0;
};

Widget *
hazard()
{
    return new Widget;
}
