// Fixture: randomness routed through the seeded sim::Rng is fine.
#include "sim/random.hh"

std::uint64_t
safe(nova::sim::Rng &rng)
{
    return rng.nextBounded(100);
}
