// Fixture: integer accumulation is associative, so a merge loop over
// integers needs no annotation -> clean.
#include <cstdint>
#include <vector>

namespace nova
{

std::uint64_t
mergeCounts(const std::vector<std::uint64_t> &perShard)
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < perShard.size(); ++i)
        total += perShard[i];
    return total;
}

} // namespace nova
