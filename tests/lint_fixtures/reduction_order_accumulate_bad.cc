// Fixture: std::accumulate over doubles in a per-shard fold -> same
// ordering hazard as an explicit += loop -> reduction-order fires.
#include <numeric>
#include <vector>

namespace nova
{

double
foldLatency(const std::vector<double> &perShard)
{
    return std::accumulate(perShard.begin(), perShard.end(), 0.0);
}

} // namespace nova
