// Fixture: every way an annotation can be wrong — unknown directive,
// guarded-by naming a mutex that does not exist, guarded-by without an
// argument, and an annotation attached to nothing.
#include <cstdint>

namespace nova
{

// novalint: shard-owned
std::uint64_t counterA = 0;

// novalint: guarded-by(missingMutex)
std::uint64_t counterB = 0;

// novalint: guarded-by
std::uint64_t counterC = 0;

// novalint: canonical-order
std::uint64_t counterD = 0;

} // namespace nova
