// Fixture: compliant exception handling.

#include <cstdio>
#include <stdexcept>

int
handlesAndRethrows(int x)
{
    // A typed catch with real handling is fine.
    try {
        if (x < 0)
            throw std::runtime_error("negative");
    } catch (const std::runtime_error &e) {
        std::puts(e.what());
        x = 0;
    }

    // catch (...) is fine when it rethrows after cleanup.
    try {
        if (x > 100)
            throw std::logic_error("too big");
    } catch (...) {
        std::puts("cleaning up");
        throw;
    }
    return x;
}

void
suppressedSwallow(int x)
{
    try {
        if (x < 0)
            throw std::runtime_error("negative");
    } catch (...) { // novalint:allow(silent-catch)
        std::puts("last-resort boundary");
    }
}
