// Fixture: every annotation kind, well formed and attached to a
// recognized target -> clean.
#include <cstdint>
#include <mutex>
#include <vector>

namespace nova
{

std::mutex tableMutex;

// novalint: guarded-by(tableMutex)
std::uint64_t tableSize = 0;

// novalint: shard-local
std::uint64_t shardHits = 0;

double
mergeAll(const std::vector<double> &perShard)
{
    double total = 0;
    // novalint: canonical-order
    for (double v : perShard)
        total += v;
    return total;
}

} // namespace nova
