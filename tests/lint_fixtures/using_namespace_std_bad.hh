// Fixture: a namespace-std using-directive in a header must fire.
#ifndef NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_BAD_HH
#define NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_BAD_HH

#include <string>

using namespace std;

inline string
shout(const string &s)
{
    return s + "!";
}

#endif // NOVA_LINT_FIXTURE_USING_NAMESPACE_STD_BAD_HH
