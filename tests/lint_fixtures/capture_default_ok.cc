// Fixture: explicit by-value captures in an event-scheduling file are
// fine, and default captures in files that never touch the event
// machinery are out of scope.
#include "sim/event_queue.hh"

void
safe(nova::sim::EventQueue &eq)
{
    int x = 0;
    eq.scheduleIn(10, [x] { (void)x; });
}
