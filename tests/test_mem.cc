/**
 * @file
 * Unit tests of the memory models: DRAM channel timing behaviour,
 * multi-channel routing, backpressure, and the direct-mapped
 * write-back cache with MSHRs.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace nova;
using namespace nova::mem;
using sim::Addr;
using sim::EventQueue;
using sim::Tick;

namespace
{

DramTiming
fastTiming()
{
    DramTiming t = DramTiming::hbm2Channel();
    return t;
}

} // namespace

TEST(DramChannel, SingleAccessLatencyBounds)
{
    EventQueue eq;
    DramChannel ch("ch", eq, fastTiming());
    Tick done_at = 0;
    ASSERT_TRUE(ch.tryAccess(0, false, [&] { done_at = eq.now(); }));
    eq.run();
    const auto &t = ch.timing();
    // First access: row miss.
    EXPECT_EQ(done_at, t.frontendLatency + t.tRowMiss + t.tBurst);
}

TEST(DramChannel, RowHitFasterThanMiss)
{
    EventQueue eq;
    DramChannel ch("ch", eq, fastTiming());
    Tick first = 0, second = 0;
    ASSERT_TRUE(ch.tryAccess(0, false, [&] { first = eq.now(); }));
    eq.run();
    ASSERT_TRUE(ch.tryAccess(0, false, [&] { second = eq.now(); }));
    eq.run();
    EXPECT_LT(second - first, first);
    EXPECT_EQ(ch.rowHits.value(), 1.0);
    EXPECT_EQ(ch.rowMisses.value(), 1.0);
}

TEST(DramChannel, BankParallelismOverlaps)
{
    // N accesses to N different banks should take far less than N
    // serialized accesses.
    EventQueue eq;
    DramChannel ch("ch", eq, fastTiming());
    const auto &t = ch.timing();
    int done = 0;
    for (std::uint32_t b = 0; b < t.numBanks; ++b)
        ASSERT_TRUE(ch.tryAccess(static_cast<Addr>(b) * t.accessBytes,
                                 false, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(done, static_cast<int>(t.numBanks));
    const Tick serialized =
        t.numBanks * (t.frontendLatency + t.tRowMiss + t.tBurst);
    EXPECT_LT(eq.now(), serialized / 4);
}

TEST(DramChannel, SameBankSerializes)
{
    EventQueue eq;
    DramChannel ch("ch", eq, fastTiming());
    const auto &t = ch.timing();
    // Two different rows of the same bank: second waits for the first
    // bank cycle and misses again.
    const Addr row_stride =
        static_cast<Addr>(t.numBanks) * t.rowBytes;
    int done = 0;
    ASSERT_TRUE(ch.tryAccess(0, false, [&] { ++done; }));
    ASSERT_TRUE(ch.tryAccess(row_stride, false, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_GE(eq.now(), 2 * (t.tRowMiss + t.tBurst));
    EXPECT_EQ(ch.rowMisses.value(), 2.0);
}

TEST(DramChannel, BackpressureAndWaiters)
{
    EventQueue eq;
    DramTiming t = fastTiming();
    t.queueCapacity = 4;
    DramChannel ch("ch", eq, t);
    int done = 0;
    int rejected = 0;
    for (int i = 0; i < 8; ++i)
        if (!ch.tryAccess(static_cast<Addr>(i) * 32, false,
                          [&] { ++done; }))
            ++rejected;
    EXPECT_EQ(rejected, 4);
    bool woken = false;
    ch.waitForSpace([&] { woken = true; });
    eq.run();
    EXPECT_TRUE(woken);
    EXPECT_EQ(done, 4);
}

TEST(DramChannel, BandwidthAccountingConserved)
{
    EventQueue eq;
    DramChannel ch("ch", eq, fastTiming());
    sim::Rng rng(3);
    int issued = 0;
    std::function<void()> feed = [&] {
        while (issued < 400 &&
               ch.tryAccess(rng.next() % (1 << 24), (rng.next() & 1),
                            [&] { feed(); }))
            ++issued;
    };
    feed();
    eq.run();
    EXPECT_EQ(ch.bytesRead.value() + ch.bytesWritten.value(),
              400.0 * ch.timing().accessBytes);
    EXPECT_EQ(ch.numAccesses.value(), 400.0);
    // Achieved bandwidth can never exceed the bus peak.
    EXPECT_LE(ch.achievedBytesPerSec(),
              ch.timing().peakBytesPerSec() * 1.001);
}

TEST(DramChannel, SequentialStreamMostlyRowHits)
{
    EventQueue eq;
    DramChannel ch("ch", eq, DramTiming::ddr4Channel());
    int outstanding = 0;
    Addr next = 0;
    std::function<void()> feed = [&] {
        while (next < 4096 * 64 &&
               ch.tryAccess(next, false, [&] { --outstanding; feed(); })) {
            next += 64;
            ++outstanding;
        }
    };
    feed();
    eq.run();
    EXPECT_GT(ch.rowHits.value(), 0.9 * ch.numAccesses.value());
}

TEST(MemorySystem, SplitsAcrossChannels)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, DramTiming::ddr4Channel(), 4);
    int done = 0;
    // 256 B spans 4 atoms -> one per channel with atom interleaving.
    ASSERT_TRUE(mem.tryAccess(0, 256, false, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(done, 1); // one completion for the whole request
    for (std::uint32_t c = 0; c < 4; ++c)
        EXPECT_EQ(mem.channel(c).numAccesses.value(), 1.0);
}

TEST(MemorySystem, CallbackFiresOnceOnLastAtom)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, DramTiming::hbm2Channel(), 2);
    int done = 0;
    ASSERT_TRUE(mem.tryAccess(5, 100, true, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(done, 1);
    EXPECT_EQ(mem.totalBytes(), 4 * 32.0); // 5..105 covers 4 atoms
}

TEST(MemorySystem, AllOrNothingAdmission)
{
    EventQueue eq;
    DramTiming t = DramTiming::hbm2Channel();
    t.queueCapacity = 2;
    MemorySystem mem("mem", eq, t, 1);
    // 3 atoms > capacity 2: rejected atomically, nothing enqueued.
    EXPECT_FALSE(mem.tryAccess(0, 96, false, [] {}));
    EXPECT_EQ(mem.channel(0).queued(), 0u);
}

TEST(MemorySystem, PeakBandwidthSums)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, DramTiming::ddr4Channel(), 4);
    EXPECT_NEAR(mem.peakBytesPerSec(), 4 * 19.2e9, 1e8);
}

TEST(Cache, HitAfterFill)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 1024;
    DirectMappedCache cache("c", eq, cfg, mem);
    int done = 0;
    ASSERT_TRUE(cache.access(64, false, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(cache.misses.value(), 1.0);
    EXPECT_TRUE(cache.contains(64));
    ASSERT_TRUE(cache.access(64, false, [&] { ++done; }));
    const Tick before = eq.now();
    eq.run();
    EXPECT_EQ(cache.hits.value(), 1.0);
    EXPECT_EQ(eq.now() - before, cfg.hitLatency);
    EXPECT_EQ(done, 2);
}

TEST(Cache, MshrMergesSameLine)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    DirectMappedCache cache("c", eq, cfg, mem);
    int done = 0;
    ASSERT_TRUE(cache.access(128, false, [&] { ++done; }));
    ASSERT_TRUE(cache.access(130, true, [&] { ++done; })); // same line
    eq.run();
    EXPECT_EQ(done, 2);
    // Only one memory fill for the merged line.
    EXPECT_EQ(mem.channel(0).numAccesses.value(), 1.0);
}

TEST(Cache, DirtyEvictionWritesBackAndHooks)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 64; // 2 lines
    cfg.lineBytes = 32;
    DirectMappedCache cache("c", eq, cfg, mem);
    std::vector<Addr> evicted;
    cache.setEvictHook([&](Addr a) { evicted.push_back(a); });

    ASSERT_TRUE(cache.access(0, true, [] {}));
    eq.run();
    // Conflicting line (same index 0, different tag) evicts dirty 0.
    ASSERT_TRUE(cache.access(64, false, [] {}));
    eq.run();
    EXPECT_EQ(cache.evictions.value(), 1.0);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 0u);
    // A clean eviction does not write back.
    ASSERT_TRUE(cache.access(128, false, [] {}));
    eq.run();
    EXPECT_EQ(cache.evictions.value(), 2.0);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
}

TEST(Cache, MshrExhaustionRejectsAndWakes)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 1 << 16;
    cfg.numMshrs = 2;
    DirectMappedCache cache("c", eq, cfg, mem);
    int done = 0;
    ASSERT_TRUE(cache.access(0, false, [&] { ++done; }));
    ASSERT_TRUE(cache.access(32, false, [&] { ++done; }));
    EXPECT_FALSE(cache.access(96, false, [&] { ++done; }));
    EXPECT_EQ(cache.mshrRejects.value(), 1.0);
    bool woken = false;
    cache.waitForSpace([&] { woken = true; });
    eq.run();
    EXPECT_TRUE(woken);
    EXPECT_EQ(done, 2);
}

TEST(Cache, MshrCoalescesSameLineEvenWhenExhausted)
{
    // With every MSHR in use, a miss to an already-outstanding line
    // must still be accepted (it merges into the existing MSHR) while
    // a miss to a new line is rejected.
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 1 << 16;
    cfg.numMshrs = 2;
    DirectMappedCache cache("c", eq, cfg, mem);
    int done = 0;
    ASSERT_TRUE(cache.access(0, false, [&] { ++done; }));
    ASSERT_TRUE(cache.access(32, false, [&] { ++done; }));
    // Same line as the first outstanding miss: coalesces, no new MSHR.
    ASSERT_TRUE(cache.access(4, true, [&] { ++done; }));
    // Genuinely new line: no MSHR left.
    EXPECT_FALSE(cache.access(96, false, [&] { ++done; }));
    EXPECT_EQ(cache.mshrRejects.value(), 1.0);
    eq.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(cache.misses.value(), 3.0);
    // The coalesced target must not trigger a second fill of line 0.
    EXPECT_EQ(mem.channel(0).numAccesses.value(), 2.0);
    // The merged write target must leave the line dirty.
    ASSERT_TRUE(cache.access(cfg.sizeBytes, false, [] {})); // conflict
    eq.run();
    EXPECT_EQ(cache.writebacks.value(), 1.0);
}

TEST(Cache, EvictionDeferredUntilFillReturns)
{
    // A conflict miss must not invalidate the victim while the fill is
    // still in flight: accesses to the victim line keep hitting until
    // the new data actually arrives, and the dirty victim is written
    // back exactly once at that point.
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 64; // 2 lines
    cfg.lineBytes = 32;
    DirectMappedCache cache("c", eq, cfg, mem);

    ASSERT_TRUE(cache.access(0, true, [] {}));
    eq.run();
    ASSERT_TRUE(cache.contains(0));

    const Tick base = eq.now();
    Tick conflict_done_at = 0;
    Tick victim_hit_at = 0;
    ASSERT_TRUE(cache.access(64, false,
                             [&] { conflict_done_at = eq.now(); }));
    // While the 64-fill is outstanding, the dirty victim still hits.
    ASSERT_TRUE(cache.access(0, false, [&] { victim_hit_at = eq.now(); }));
    eq.run();
    EXPECT_EQ(victim_hit_at - base, cfg.hitLatency);
    EXPECT_GT(conflict_done_at, victim_hit_at);
    EXPECT_EQ(cache.hits.value(), 1.0);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_TRUE(cache.contains(64));
    EXPECT_EQ(cache.evictions.value(), 1.0);
    EXPECT_EQ(cache.writebacks.value(), 1.0);
}

TEST(Cache, WritebacksRetryUnderMemoryBackpressure)
{
    // Evict two dirty lines while the DRAM queue is nearly full: the
    // posted write-backs must retry via waitForSpace rather than being
    // dropped, so every byte eventually reaches memory.
    EventQueue eq;
    DramTiming t = fastTiming();
    t.queueCapacity = 2;
    MemorySystem mem("mem", eq, t, 1);
    CacheConfig cfg;
    cfg.sizeBytes = 64; // 2 lines
    cfg.lineBytes = 32;
    cfg.numMshrs = 4;
    DirectMappedCache cache("c", eq, cfg, mem);

    ASSERT_TRUE(cache.access(0, true, [] {}));
    ASSERT_TRUE(cache.access(32, true, [] {}));
    eq.run();
    // Conflict both indices at once; fills + write-backs now compete
    // for the two DRAM queue slots.
    int done = 0;
    ASSERT_TRUE(cache.access(64, false, [&] { ++done; }));
    ASSERT_TRUE(cache.access(96, false, [&] { ++done; }));
    eq.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(cache.evictions.value(), 2.0);
    EXPECT_EQ(cache.writebacks.value(), 2.0);
    EXPECT_EQ(mem.channel(0).bytesWritten.value(), 2.0 * cfg.lineBytes);
}

TEST(Cache, FlushAllDirtyInvokesHook)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 256;
    DirectMappedCache cache("c", eq, cfg, mem);
    int flushed = 0;
    cache.setEvictHook([&](Addr) { ++flushed; });
    for (Addr a = 0; a < 256; a += 32)
        cache.access(a, true, [] {});
    eq.run();
    cache.flushAllDirty();
    EXPECT_EQ(flushed, 8);
    EXPECT_EQ(cache.writebacks.value(), 8.0);
}

TEST(Cache, RandomStressCompletesAllAccesses)
{
    EventQueue eq;
    MemorySystem mem("mem", eq, fastTiming(), 1);
    CacheConfig cfg;
    cfg.sizeBytes = 512;
    cfg.numMshrs = 8;
    DirectMappedCache cache("c", eq, cfg, mem);
    sim::Rng rng(17);
    int done = 0;
    int issued = 0;
    std::function<void()> feed = [&] {
        while (issued < 2000) {
            const Addr a = (rng.next() % (1 << 14)) / 32 * 32;
            if (!cache.access(a, rng.next() & 1, [&] { ++done; feed(); })) {
                cache.waitForSpace([&] { feed(); });
                return;
            }
            ++issued;
        }
    };
    feed();
    eq.run();
    EXPECT_EQ(done, 2000);
    EXPECT_EQ(cache.hits.value() + cache.misses.value(), 2000.0);
}
