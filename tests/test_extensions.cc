/**
 * @file
 * Tests of the extension features: vertex reordering, multi-source
 * betweenness centrality and the additional memory-technology presets.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>

#include "baselines/ligra.hh"
#include "graph/generators.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "graph/reorder.hh"
#include "mem/dram.hh"
#include "sim/logging.hh"
#include "workloads/bc.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
roadGraph()
{
    graph::RoadGridParams p;
    p.width = 32;
    p.height = 32;
    p.seed = 2;
    return graph::generateRoadGrid(p);
}

} // namespace

TEST(Reorder, DegreeSortPutsHubsFirst)
{
    graph::RmatParams p;
    p.numVertices = 256;
    p.numEdges = 2048;
    p.seed = 4;
    const auto g = graph::generateRmat(p);
    const auto perm = graph::degreeSortPermutation(g);
    graph::validatePermutation(perm, g.numVertices());
    const auto h = graph::applyPermutation(g, perm);
    for (VertexId v = 0; v + 1 < h.numVertices(); ++v)
        ASSERT_GE(h.degree(v), h.degree(v + 1));
}

TEST(Reorder, BfsPermutationRecoversLocality)
{
    // Shuffle the grid's ids, then recover locality with a BFS order.
    const auto g = roadGraph();
    std::vector<VertexId> shuffle(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        shuffle[v] = (v * 773) % g.numVertices(); // 773 coprime to 1024
    const auto shuffled = graph::applyPermutation(g, shuffle);

    const auto perm = graph::bfsPermutation(shuffled);
    graph::validatePermutation(perm, shuffled.numVertices());
    const auto h = graph::applyPermutation(shuffled, perm);
    EXPECT_LT(graph::averageEdgeSpan(h),
              0.6 * graph::averageEdgeSpan(shuffled));
}

TEST(Reorder, CommunityPermutationImprovesLocalityOnShuffledGrid)
{
    // Destroy the grid's natural id locality, then recover it.
    const auto g = roadGraph();
    std::vector<VertexId> shuffle(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        shuffle[v] = (v * 769) % g.numVertices(); // 769 coprime to 1024
    const auto shuffled = graph::applyPermutation(g, shuffle);

    const auto perm = graph::communityPermutation(shuffled, 64);
    graph::validatePermutation(perm, shuffled.numVertices());
    const auto recovered = graph::applyPermutation(shuffled, perm);
    EXPECT_LT(graph::averageEdgeSpan(recovered),
              0.5 * graph::averageEdgeSpan(shuffled));
}

TEST(Reorder, PermutationPreservesAlgorithmResults)
{
    graph::RmatParams p;
    p.numVertices = 128;
    p.numEdges = 1024;
    p.seed = 6;
    const auto g = graph::generateRmat(p);
    const auto perm = graph::communityPermutation(g);
    const auto h = graph::applyPermutation(g, perm);
    const VertexId src = 5;
    const auto dg = workloads::reference::bfsDepths(g, src);
    const auto dh = workloads::reference::bfsDepths(h, perm[src]);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(dg[v], dh[perm[v]]);
}

TEST(Reorder, ValidateRejectsBrokenPermutations)
{
    EXPECT_THROW(graph::validatePermutation({0, 0, 1}, 3),
                 sim::PanicError);
    EXPECT_THROW(graph::validatePermutation({0, 5}, 2),
                 sim::PanicError);
    EXPECT_THROW(graph::validatePermutation({0, 1}, 3),
                 sim::PanicError);
}

TEST(BcMultiSource, SumsPerSourceDependencies)
{
    graph::RmatParams p;
    p.numVertices = 96;
    p.numEdges = 768;
    p.seed = 9;
    const auto g = graph::symmetrize(graph::generateRmat(p));
    const auto map =
        graph::VertexMapping::interleave(g.numVertices(), 1);
    baselines::LigraEngine ligra;
    const auto multi =
        workloads::runBcMultiSource(ligra, g, map, 3);
    EXPECT_EQ(multi.numSources, 3u);
    EXPECT_GT(multi.totalTicks, 0u);
    EXPECT_GT(multi.edgesTraversed, 0u);
    // Manual sum over the same three sources must agree.
    std::vector<VertexId> order(g.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                     });
    std::vector<double> want(g.numVertices(), 0.0);
    for (int i = 0; i < 3; ++i) {
        const auto one =
            workloads::reference::bcDependencies(g, order[i]);
        for (VertexId v = 0; v < g.numVertices(); ++v)
            want[v] += one[v];
    }
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_NEAR(multi.centrality[v], want[v],
                    1e-6 + 1e-4 * std::abs(want[v]));
}

TEST(DramPresets, BandwidthOrdering)
{
    using mem::DramTiming;
    EXPECT_GT(DramTiming::hbm2eChannel().peakBytesPerSec(),
              DramTiming::hbm2Channel().peakBytesPerSec());
    EXPECT_GT(DramTiming::ddr5Channel().peakBytesPerSec(),
              DramTiming::ddr4Channel().peakBytesPerSec());
    EXPECT_NEAR(DramTiming::lpddr5Channel().peakBytesPerSec() / 1e9,
                25.6, 0.5);
}

TEST(DramPresets, AllPresetsServeTraffic)
{
    using mem::DramTiming;
    for (const auto &timing :
         {DramTiming::hbm2Channel(), DramTiming::hbm2eChannel(),
          DramTiming::ddr4Channel(), DramTiming::ddr5Channel(),
          DramTiming::lpddr5Channel()}) {
        sim::EventQueue eq;
        mem::DramChannel ch("ch", eq, timing);
        int done = 0;
        for (int i = 0; i < 16; ++i)
            ASSERT_TRUE(ch.tryAccess(
                static_cast<sim::Addr>(i) * timing.accessBytes, false,
                [&] { ++done; }));
        eq.run();
        EXPECT_EQ(done, 16);
    }
}

TEST(GraphIoFiles, BinaryFileRoundTrip)
{
    graph::RmatParams p;
    p.numVertices = 64;
    p.numEdges = 256;
    p.seed = 3;
    p.maxWeight = 77;
    const auto g = graph::generateRmat(p);
    const std::string path = "/tmp/nova_test_graph.bin";
    graph::saveBinaryFile(g, path);
    const auto h = graph::loadBinaryFile(path);
    EXPECT_EQ(h.rowPtr(), g.rowPtr());
    EXPECT_EQ(h.dests(), g.dests());
    EXPECT_EQ(h.weights(), g.weights());
    std::remove(path.c_str());
}

TEST(GraphIoFiles, MissingFileIsFatal)
{
    EXPECT_THROW(graph::loadBinaryFile("/tmp/definitely_missing.bin"),
                 sim::FatalError);
    EXPECT_THROW(graph::loadEdgeListFile("/tmp/definitely_missing.el"),
                 sim::FatalError);
}

TEST(MappingExtras, MaxLocalCount)
{
    const auto map = graph::VertexMapping::interleave(10, 4);
    EXPECT_EQ(map.maxLocalCount(), 3u); // parts 0,1 get 3; 2,3 get 2
    const auto chunk = graph::VertexMapping::chunk(10, 4);
    EXPECT_EQ(chunk.maxLocalCount(), 3u);
}

TEST(MappingExtras, EdgesPerPartSumsToTotal)
{
    graph::RmatParams p;
    p.numVertices = 200;
    p.numEdges = 1500;
    p.seed = 12;
    const auto g = graph::generateRmat(p);
    const auto map = graph::randomMapping(g.numVertices(), 6, 3);
    const auto counts = graph::edgesPerPart(g, map);
    graph::EdgeId sum = 0;
    for (const auto c : counts)
        sum += c;
    EXPECT_EQ(sum, g.numEdges());
}
