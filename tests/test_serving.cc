/**
 * @file
 * The multi-tenant serving layer (core/serving.hh): deterministic
 * arrival generation, the re-entrant query programs, report
 * bit-identity across host thread counts and queue backends, tenant
 * fairness accounting, overload shedding, quota/batch enforcement, and
 * campaign checkpoint/resume equivalence with an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/serving.hh"
#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/arrivals.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "workloads/queries.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
servingGraph(VertexId vertices = 64, std::uint64_t edges = 256)
{
    graph::RmatParams p;
    p.numVertices = vertices;
    p.numEdges = edges;
    p.maxWeight = 32;
    p.seed = 17;
    return graph::generateRmat(p);
}

/** A small, fast campaign configuration over the test graph. */
core::ServingConfig
smallCampaign()
{
    core::ServingConfig cfg;
    cfg.graphSpec = "test:rmat:64:256";
    cfg.arrivals = sim::ArrivalSpec::parse("poisson:200000");
    cfg.seed = 5;
    cfg.tenants = 3;
    cfg.duration = 8'000'000;
    cfg.groups = 2;
    cfg.batchWindow = 400'000;
    cfg.scale = 100;
    return cfg;
}

std::string
runCampaign(const core::ServingConfig &cfg, const graph::Csr &g,
            std::uint32_t threads, sim::EventQueue::Impl impl)
{
    sim::EventQueue::ScopedDefaultImpl forced(impl);
    core::ServingConfig c = cfg;
    c.threads = threads;
    core::ServingSystem sys(c, g);
    return sys.run().json;
}

TEST(ServingQuantiles, NearestRankPercentiles)
{
    sim::stats::Quantiles q;
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.percentile(99), 0u);
    EXPECT_EQ(q.mean(), 0u);
    for (std::uint64_t v : {30, 10, 50, 20, 40})
        q.sample(v);
    EXPECT_EQ(q.count(), 5u);
    EXPECT_EQ(q.mean(), 30u);
    EXPECT_EQ(q.max(), 50u);
    // Nearest rank over {10,20,30,40,50}: p50 -> 3rd, p95/p99 -> 5th.
    EXPECT_EQ(q.percentile(50), 30u);
    EXPECT_EQ(q.percentile(95), 50u);
    EXPECT_EQ(q.percentile(99), 50u);
    EXPECT_EQ(q.percentile(1), 10u);
    EXPECT_EQ(q.percentile(100), 50u);
    // Sampling after a percentile query resorts lazily.
    q.sample(5);
    EXPECT_EQ(q.percentile(1), 5u);
}

TEST(ServingQuantiles, CheckpointRoundTrip)
{
    sim::stats::Quantiles a;
    for (std::uint64_t v : {7, 3, 9, 1})
        a.sample(v);
    sim::stats::Quantiles b;
    b.setSamples(a.samples());
    EXPECT_EQ(b.count(), 4u);
    EXPECT_EQ(b.percentile(50), 3u);
    EXPECT_EQ(b.samples(), a.samples());
}

TEST(ServingArrivals, PoissonDeterministicAndOrdered)
{
    const auto spec = sim::ArrivalSpec::parse("poisson:5000");
    EXPECT_EQ(spec.kind, sim::ArrivalSpec::Kind::Poisson);
    EXPECT_EQ(spec.meanGap, 5000u);
    const auto a = sim::generateArrivals(spec, 42, 4, 3, 400'000);
    const auto b = sim::generateArrivals(spec, 42, 4, 3, 400'000);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].tenant, b[i].tenant);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].paramA, b[i].paramA);
        EXPECT_LT(a[i].tenant, 4u);
        EXPECT_LT(a[i].kind, 3u);
        EXPECT_LE(a[i].at, 400'000u);
        if (i > 0)
            EXPECT_GT(a[i].at, a[i - 1].at); // gaps are >= 1 tick
    }
    // A different seed draws a different stream.
    const auto c = sim::generateArrivals(spec, 43, 4, 3, 400'000);
    bool same = c.size() == a.size();
    for (std::size_t i = 0; same && i < a.size(); ++i)
        same = c[i].at == a[i].at && c[i].paramA == a[i].paramA;
    EXPECT_FALSE(same);
}

TEST(ServingArrivals, TraceParsing)
{
    const std::string path = "serving_trace_test.txt";
    {
        std::ofstream os(path, std::ios::trunc);
        os << "# comment line\n"
           << "1000 2 msbfs 42 7\n"
           << "500 0 ppr 11\n" // out of order: sorted by tick
           << "9000 1 2 5 6\n"
           << "999999999 0 p2p 1 2\n"; // beyond horizon: dropped
    }
    const auto spec = sim::ArrivalSpec::parse("trace:" + path);
    const auto a = sim::generateArrivals(spec, 7, 3, 3, 10'000);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a[0].at, 500u);
    EXPECT_EQ(a[0].tenant, 0u);
    EXPECT_EQ(a[0].kind, 1u); // "ppr"
    EXPECT_EQ(a[0].paramA, 11u);
    EXPECT_EQ(a[1].at, 1000u);
    EXPECT_EQ(a[1].kind, 0u); // "msbfs"
    EXPECT_EQ(a[1].paramA, 42u);
    EXPECT_EQ(a[1].paramB, 7u);
    EXPECT_EQ(a[2].at, 9000u);
    EXPECT_EQ(a[2].kind, 2u); // numeric kind token
    std::remove(path.c_str());
}

TEST(ServingArrivals, RejectsMalformedSpecs)
{
    EXPECT_THROW(sim::ArrivalSpec::parse("poisson:zero"),
                 sim::FatalError);
    EXPECT_THROW(sim::ArrivalSpec::parse("bursts:10"),
                 sim::FatalError);
    const std::string path = "serving_trace_bad.txt";
    {
        std::ofstream os(path, std::ios::trunc);
        os << "1000 0 msbfs 1 2 3 junk\n";
    }
    EXPECT_THROW(sim::generateArrivals(
                     sim::ArrivalSpec::parse("trace:" + path), 1, 2, 3,
                     10'000),
                 sim::FatalError);
    std::remove(path.c_str());
}

TEST(ServingQueries, MultiSourceBfsMatchesReference)
{
    const graph::Csr g = servingGraph();
    const std::vector<VertexId> seeds = {3, 17, 40};
    workloads::MultiSourceBfsProgram prog(seeds);
    core::NovaConfig cfg = core::NovaConfig{}.scaled(100);
    core::NovaSystem sys(cfg);
    const auto map =
        graph::VertexMapping::interleave(g.numVertices(), 8);
    const auto r = sys.run(prog, g, map);

    namespace ref = workloads::reference;
    std::vector<std::uint64_t> want(g.numVertices(), ~0ULL);
    for (const VertexId s : seeds) {
        const auto d = ref::bfsDepths(g, s);
        for (VertexId v = 0; v < g.numVertices(); ++v)
            want[v] = std::min(want[v], d[v]);
    }
    EXPECT_EQ(r.props, want);
}

TEST(ServingQueries, PointToPointSsspMatchesReference)
{
    const graph::Csr g = servingGraph();
    workloads::PointToPointSsspProgram prog(2, 55);
    EXPECT_EQ(prog.target(), 55u);
    core::NovaConfig cfg = core::NovaConfig{}.scaled(100);
    core::NovaSystem sys(cfg);
    const auto map =
        graph::VertexMapping::interleave(g.numVertices(), 8);
    const auto r = sys.run(prog, g, map);
    EXPECT_EQ(r.props, workloads::reference::ssspDistances(g, 2));
}

TEST(ServingQueries, PersonalizedPageRankConcentratesAtSource)
{
    const graph::Csr g = servingGraph();
    const VertexId src = 9;
    workloads::PersonalizedPageRankProgram prog(src, 0.85, 1e-9, 10);
    core::NovaConfig cfg = core::NovaConfig{}.scaled(100);
    core::NovaSystem sys(cfg);
    const auto map =
        graph::VertexMapping::interleave(g.numVertices(), 8);
    sys.run(prog, g, map);
    ASSERT_EQ(prog.rank().size(), g.numVertices());
    double total = 0;
    VertexId argmax = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_GE(prog.rank()[v], 0.0);
        total += prog.rank()[v];
        if (prog.rank()[v] > prog.rank()[argmax])
            argmax = v;
    }
    // The restart mass stays at the source; teleportation elsewhere
    // is zero, so nobody can outrank it.
    EXPECT_GE(prog.rank()[src], 0.15 - 1e-12);
    EXPECT_EQ(argmax, src);
    EXPECT_LE(total, 1.0 + 1e-6);
}

TEST(ServingSystem, ReportBitIdenticalAcrossThreadsAndBackends)
{
    const graph::Csr g = servingGraph();
    const core::ServingConfig cfg = smallCampaign();
    const std::string base =
        runCampaign(cfg, g, 1, sim::EventQueue::Impl::LegacyHeap);
    EXPECT_NE(base.find("\"schema\": \"nova-serving-1\""),
              std::string::npos);
    EXPECT_EQ(base, runCampaign(cfg, g, 1,
                                sim::EventQueue::Impl::Calendar));
    EXPECT_EQ(base, runCampaign(cfg, g, 2,
                                sim::EventQueue::Impl::LegacyHeap));
    EXPECT_EQ(base, runCampaign(cfg, g, 2,
                                sim::EventQueue::Impl::Calendar));
}

TEST(ServingSystem, AccountingBalancesAcrossTenants)
{
    const graph::Csr g = servingGraph();
    core::ServingSystem sys(smallCampaign(), g);
    const core::ServingReport rep = sys.run();
    ASSERT_GT(rep.served, 0u);
    EXPECT_EQ(rep.offered,
              rep.served + rep.shed + rep.pendingAtEnd);
    EXPECT_FALSE(rep.stopped);
    // The drained campaign leaves nothing behind.
    EXPECT_EQ(rep.pendingAtEnd, 0u);

    // The stats tree carries the same totals.
    const auto &st = sys.stats();
    EXPECT_EQ(st.get("serve.offered"),
              static_cast<double>(rep.offered));
    EXPECT_EQ(st.get("serve.served"),
              static_cast<double>(rep.served));
    EXPECT_EQ(st.get("serve.latency.count"),
              static_cast<double>(rep.served));
    double per_tenant_served = 0;
    for (std::uint32_t t = 0; t < sys.config().tenants; ++t)
        per_tenant_served += st.get(
            "serve.tenant" + std::to_string(t) + ".served");
    EXPECT_EQ(per_tenant_served, static_cast<double>(rep.served));
}

TEST(ServingSystem, OverloadShedsAndStaysBalanced)
{
    const graph::Csr g = servingGraph();
    core::ServingConfig cfg = smallCampaign();
    cfg.arrivals = sim::ArrivalSpec::parse("poisson:1000");
    cfg.queueCap = 2;
    cfg.groups = 1;
    cfg.duration = 4'000'000;
    core::ServingSystem sys(cfg, g);
    const core::ServingReport rep = sys.run();
    EXPECT_GT(rep.shed, 0u);
    EXPECT_GT(rep.served, 0u);
    EXPECT_EQ(rep.offered,
              rep.served + rep.shed + rep.pendingAtEnd);
    // Every shed query left a record flagged as such.
    std::uint64_t shed_records = 0;
    for (const core::QueryRecord &r : sys.records())
        shed_records += r.shed ? 1 : 0;
    EXPECT_EQ(shed_records, rep.shed);
}

TEST(ServingSystem, QuotaAndBatchLimitsHold)
{
    const graph::Csr g = servingGraph();
    core::ServingConfig cfg = smallCampaign();
    cfg.arrivals = sim::ArrivalSpec::parse("poisson:50000");
    cfg.quotaPerTenant = 3;
    cfg.batchMax = 2;
    cfg.duration = 6'000'000;
    core::ServingSystem sys(cfg, g);
    sys.run();

    // Replay the lifecycle intervals: per tenant, the number of
    // queries simultaneously dispatched never exceeds the quota.
    std::map<std::uint32_t,
             std::vector<std::pair<sim::Tick, sim::Tick>>> spans;
    for (const core::QueryRecord &r : sys.records()) {
        if (r.shed)
            continue;
        EXPECT_LE(r.batchSize, cfg.batchMax);
        EXPECT_LE(r.arrivedAt, r.startedAt);
        EXPECT_LT(r.startedAt, r.finishedAt);
        spans[r.tenant].emplace_back(r.startedAt, r.finishedAt);
    }
    ASSERT_FALSE(spans.empty());
    for (const auto &[tenant, intervals] : spans) {
        for (const auto &[start, finish] : intervals) {
            std::uint32_t overlap = 0;
            for (const auto &[s2, f2] : intervals)
                overlap += (s2 < finish && f2 > start) ? 1 : 0;
            EXPECT_LE(overlap, cfg.quotaPerTenant)
                << "tenant " << tenant;
        }
    }
}

TEST(ServingSystem, ResumeMatchesUninterruptedRun)
{
    const graph::Csr g = servingGraph();
    core::ServingConfig cfg = smallCampaign();
    const std::string ckpt = "serving_test.ckpt";
    std::remove(ckpt.c_str());

    core::ServingSystem full(cfg, g);
    const core::ServingReport want = full.run();
    ASSERT_GT(want.served, 8u);

    core::ServingConfig stop_cfg = cfg;
    stop_cfg.stopAfter = want.served / 2;
    stop_cfg.ckptPath = ckpt;
    core::ServingSystem stopped(stop_cfg, g);
    const core::ServingReport part = stopped.run();
    EXPECT_TRUE(part.stopped);
    EXPECT_GE(part.served, stop_cfg.stopAfter);
    EXPECT_LT(part.served, want.served);

    core::ServingConfig resume_cfg = cfg;
    resume_cfg.resumePath = ckpt;
    core::ServingSystem resumed(resume_cfg, g);
    const core::ServingReport rep = resumed.run();
    EXPECT_EQ(rep.json, want.json);
    EXPECT_EQ(rep.fingerprint, want.fingerprint);
    std::remove(ckpt.c_str());
}

TEST(ServingSystem, ResumeRejectsMismatchedCampaign)
{
    const graph::Csr g = servingGraph();
    core::ServingConfig cfg = smallCampaign();
    const std::string ckpt = "serving_test_mismatch.ckpt";
    std::remove(ckpt.c_str());
    cfg.stopAfter = 4;
    cfg.ckptPath = ckpt;
    core::ServingSystem stopped(cfg, g);
    stopped.run();

    core::ServingConfig other = smallCampaign();
    other.resumePath = ckpt;
    other.seed = cfg.seed + 1; // different arrival stream
    core::ServingSystem sys(other, g);
    EXPECT_THROW(sys.run(), sim::FatalError);
    std::remove(ckpt.c_str());
}

TEST(ServingSystem, RejectsBadConfigurations)
{
    const graph::Csr g = servingGraph();
    core::ServingConfig cfg = smallCampaign();
    cfg.tenants = 0;
    EXPECT_THROW(core::ServingSystem(cfg, g), sim::FatalError);
    cfg = smallCampaign();
    cfg.groups = 0;
    EXPECT_THROW(core::ServingSystem(cfg, g), sim::FatalError);
    cfg = smallCampaign();
    cfg.batchMax = cfg.quotaPerTenant + 1;
    EXPECT_THROW(core::ServingSystem(cfg, g), sim::FatalError);
    cfg = smallCampaign();
    cfg.queueCap = 0;
    EXPECT_THROW(core::ServingSystem(cfg, g), sim::FatalError);
}

} // namespace
