/**
 * @file
 * Direct unit tests of the Vertex Management Unit: fast-path inserts,
 * spilling, tracker counters, prefetch retrieval, coalescing windows,
 * reconciliation of event-counted counters and the off-chip FIFO
 * policy — driven against a real vertex memory model.
 */

#include <gtest/gtest.h>

#include "core/vmu.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "workloads/programs.hh"

using namespace nova;
using graph::VertexId;

namespace
{

/** A self-contained VMU test rig over a 64-vertex path graph. */
struct VmuRig
{
    core::NovaConfig cfg;
    graph::Csr g;
    graph::VertexMapping map;
    workloads::BfsProgram prog{0};
    sim::EventQueue eq;
    std::unique_ptr<core::VertexStore> store;
    std::unique_ptr<mem::MemorySystem> vmem;
    std::unique_ptr<core::Vmu> vmu;

    explicit VmuRig(std::uint32_t buffer_entries,
                    core::TrackerPolicy tracker =
                        core::TrackerPolicy::ExactBlockCount,
                    core::SpillPolicy spill =
                        core::SpillPolicy::OverwriteVertexSet,
                    VertexId num_verts = 64)
        : g(graph::generatePath(num_verts)),
          map(graph::VertexMapping::interleave(num_verts, 1))
    {
        cfg.pesPerGpn = 1;
        cfg.activeBufferEntries = buffer_entries;
        cfg.prefetchThreshold = 4;
        cfg.prefetchBurstBlocks = 4;
        cfg.tracker = tracker;
        cfg.spill = spill;
        prog.bind(g);
        store = std::make_unique<core::VertexStore>(g, map, 0, cfg,
                                                    prog);
        vmem = std::make_unique<mem::MemorySystem>(
            "vmem", eq, mem::DramTiming::hbm2Channel(), 1);
        vmu = std::make_unique<core::Vmu>("vmu", eq, cfg, *store,
                                          *vmem, prog);
    }

    /** Activate `n` distinct vertices with their propagate values. */
    void
    activate(VertexId first, VertexId count)
    {
        for (VertexId v = first; v < first + count; ++v) {
            store->cur(v) = v; // give it a distinguishable value
            vmu->activate(v, v);
        }
    }

    /** Drain everything the VMU will deliver; returns popped locals. */
    std::vector<VertexId>
    drain()
    {
        std::vector<VertexId> popped;
        // Keep consuming until the event queue and buffer both idle.
        for (;;) {
            while (vmu->hasEntry())
                popped.push_back(vmu->pop().local);
            if (eq.empty())
                break;
            eq.runOne();
        }
        return popped;
    }
};

} // namespace

TEST(Vmu, FastPathInsertsWithoutMemoryTraffic)
{
    VmuRig rig(16);
    rig.activate(0, 8);
    EXPECT_EQ(rig.vmu->directInserts.value(), 8.0);
    EXPECT_EQ(rig.vmu->spills.value(), 0.0);
    EXPECT_EQ(rig.vmem->totalBytes(), 0.0);
    const auto popped = rig.drain();
    EXPECT_EQ(popped.size(), 8u);
}

TEST(Vmu, SpillsWhenBufferFull)
{
    VmuRig rig(8);
    rig.activate(0, 20);
    EXPECT_EQ(rig.vmu->directInserts.value(), 8.0);
    EXPECT_EQ(rig.vmu->spills.value(), 12.0);
    // pendingWork counts buffered entries plus tracked *blocks*
    // (12 spilled vertices over 2-vertex blocks = 6 blocks).
    EXPECT_EQ(rig.vmu->pendingWork(), 8u + 6u);
}

TEST(Vmu, PrefetchRetrievesEverySpilledVertex)
{
    VmuRig rig(8);
    rig.activate(0, 40);
    const auto popped = rig.drain();
    // Every activation is eventually delivered exactly once.
    std::vector<VertexId> sorted = popped;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), 40u);
    for (VertexId v = 0; v < 40; ++v)
        EXPECT_EQ(sorted[v], v);
    EXPECT_EQ(rig.vmu->pendingWork(), 0u);
    // Retrieval went through vertex memory.
    EXPECT_GT(rig.vmem->totalBytes(), 0.0);
}

TEST(Vmu, CoalescesUpdatesToSpilledVertices)
{
    VmuRig rig(4);
    rig.activate(0, 12); // 4 buffered + 8 spilled
    // New updates to spilled-but-untracked... vertices fold in.
    const double spills_before = rig.vmu->spills.value();
    for (VertexId v = 8; v < 12; ++v)
        rig.vmu->activate(v, v); // already active_now -> coalesce
    EXPECT_EQ(rig.vmu->coalescedUpdates.value(), 4.0);
    EXPECT_EQ(rig.vmu->spills.value(), spills_before);
    const auto popped = rig.drain();
    EXPECT_EQ(popped.size(), 12u); // coalesced ones are not duplicated
}

TEST(Vmu, ReactivationOfBufferedVertexRespills)
{
    VmuRig rig(8);
    rig.activate(0, 4); // all in buffer
    // A fresher update to a buffered vertex must propagate again.
    rig.vmu->activate(2, 99);
    const auto popped = rig.drain();
    EXPECT_EQ(popped.size(), 5u);
    EXPECT_EQ(std::count(popped.begin(), popped.end(), 2), 2);
}

TEST(Vmu, WastefulReadsCountedForSparseScans)
{
    // One spilled vertex in a superblock of many blocks: the burst
    // reads neighbours that are inactive.
    VmuRig rig(4);
    rig.activate(0, 4);        // fill buffer
    rig.vmu->activate(40, 40); // spill one far-away vertex
    rig.store->cur(40) = 40;
    rig.drain();
    EXPECT_GT(rig.vmu->wastefulPrefetchBytes.value(), 0.0);
    EXPECT_GT(rig.vmu->usefulPrefetchBytes.value(), 0.0);
}

TEST(Vmu, EventCountPolicyDeliversSameSet)
{
    VmuRig exact(8, core::TrackerPolicy::ExactBlockCount);
    VmuRig event(8, core::TrackerPolicy::EventCount);
    exact.activate(0, 30);
    event.activate(0, 30);
    auto a = exact.drain();
    auto b = event.drain();
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
}

TEST(Vmu, EventCountOverestimatesAreReconciled)
{
    VmuRig rig(4, core::TrackerPolicy::EventCount);
    rig.activate(0, 4); // buffer full
    // Two activations to vertices of the same block: event counting
    // bumps the counter twice for one active block.
    rig.vmu->activate(8, 8);
    rig.vmu->activate(9, 9); // same 2-vertex block as 8
    rig.drain();
    EXPECT_EQ(rig.vmu->pendingWork(), 0u);
}

TEST(Vmu, FifoPolicyDeliversDuplicatesEagerly)
{
    VmuRig rig(4, core::TrackerPolicy::ExactBlockCount,
               core::SpillPolicy::OffChipFifo);
    rig.activate(0, 10);
    // Re-activating a spilled vertex appends another FIFO entry: the
    // eager baseline cannot coalesce.
    rig.vmu->activate(8, 8);
    EXPECT_EQ(rig.vmu->coalescedUpdates.value(), 0.0);
    EXPECT_GT(rig.vmu->fifoWrites.value(), 0.0);
    const auto popped = rig.drain();
    EXPECT_EQ(popped.size(), 11u); // 10 + 1 duplicate
}

TEST(Vmu, EntryNotifyFiresOnEmptyToNonEmpty)
{
    VmuRig rig(8);
    int notified = 0;
    rig.vmu->setEntryNotify([&] { ++notified; });
    rig.activate(0, 3);
    EXPECT_EQ(notified, 1);
    rig.drain();
    rig.activate(10, 1);
    EXPECT_EQ(notified, 2);
}

TEST(Vmu, AlphaSnapshotsFreshValueOnRetrieval)
{
    VmuRig rig(4);
    rig.activate(0, 4);        // fill the buffer
    rig.vmu->activate(20, 0);  // spills; alpha argument is ignored
    rig.store->cur(20) = 1234; // update lands while spilled
    // Drain: the retrieved entry must carry the *current* value
    // (propagateValue of cur at fetch time = the coalesced window).
    std::vector<core::Vmu::Entry> entries;
    for (;;) {
        while (rig.vmu->hasEntry())
            entries.push_back(rig.vmu->pop());
        if (rig.eq.empty())
            break;
        rig.eq.runOne();
    }
    bool found = false;
    for (const auto &e : entries) {
        if (e.local == 20) {
            found = true;
            // BFS propagateValue is the property itself.
            EXPECT_EQ(e.alpha, 1234u);
        }
    }
    EXPECT_TRUE(found);
}
