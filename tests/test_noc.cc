/**
 * @file
 * Unit tests of the interconnect models: delivery, ordering, credits,
 * serialization rate limits and the hierarchical crossbar path.
 */

#include <gtest/gtest.h>

#include "noc/network.hh"
#include "sim/event_queue.hh"

using namespace nova;
using namespace nova::noc;
using sim::EventQueue;
using sim::Tick;

namespace
{

NetworkConfig
smallConfig(std::uint32_t num_pes = 8, std::uint32_t pes_per_gpn = 8)
{
    NetworkConfig cfg;
    cfg.numPes = num_pes;
    cfg.pesPerGpn = pes_per_gpn;
    return cfg;
}

Message
msg(std::uint32_t src, std::uint32_t dst, std::uint64_t update = 0)
{
    Message m;
    m.srcPe = src;
    m.dstPe = dst;
    m.dstVertex = dst;
    m.update = update;
    return m;
}

} // namespace

TEST(P2PNetwork, DeliversToInbound)
{
    EventQueue eq;
    PePointToPointNetwork net("net", eq, smallConfig());
    ASSERT_TRUE(net.trySend(msg(0, 3, 99)));
    eq.run();
    ASSERT_FALSE(net.inboundEmpty(3));
    const Message m = net.popInbound(3);
    EXPECT_EQ(m.update, 99u);
    EXPECT_EQ(net.messagesInNetwork(), 0u);
}

TEST(P2PNetwork, PerPairOrderingPreserved)
{
    EventQueue eq;
    PePointToPointNetwork net("net", eq, smallConfig());
    for (std::uint64_t i = 0; i < 20; ++i)
        ASSERT_TRUE(net.trySend(msg(1, 2, i)));
    eq.run();
    for (std::uint64_t i = 0; i < 20; ++i) {
        ASSERT_FALSE(net.inboundEmpty(2));
        EXPECT_EQ(net.popInbound(2).update, i);
    }
}

TEST(P2PNetwork, SelfMessagesBypassLinks)
{
    EventQueue eq;
    PePointToPointNetwork net("net", eq, smallConfig());
    ASSERT_TRUE(net.trySend(msg(4, 4, 7)));
    eq.run();
    EXPECT_EQ(eq.now(), net.config().selfLatency);
    EXPECT_EQ(net.selfMessages.value(), 1.0);
    EXPECT_EQ(net.messagesSent.value(), 0.0);
    EXPECT_EQ(net.popInbound(4).update, 7u);
}

TEST(P2PNetwork, LinkSerializationBoundsThroughput)
{
    EventQueue eq;
    NetworkConfig cfg = smallConfig();
    cfg.creditsPerDst = 1000;
    PePointToPointNetwork net("net", eq, cfg);
    const int n = 100;
    // Feed with retry: the link stage has a bounded input queue.
    int sent = 0;
    std::function<void()> feed = [&] {
        while (sent < n && net.trySend(msg(0, 1)))
            ++sent;
        if (sent < n)
            net.waitForSpace(0, feed);
    };
    feed();
    eq.run();
    ASSERT_EQ(sent, n);
    // One link at linkGBs: n messages need >= n * ser ticks.
    const double bytes_per_ps = cfg.linkGBs * 1e9 / 1e12;
    const auto ser = static_cast<Tick>(cfg.messageBytes / bytes_per_ps);
    EXPECT_GE(eq.now(), (n - 1) * ser);
}

TEST(P2PNetwork, CreditsExhaustThenRecover)
{
    EventQueue eq;
    NetworkConfig cfg = smallConfig();
    cfg.creditsPerDst = 4;
    PePointToPointNetwork net("net", eq, cfg);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(net.trySend(msg(0, 1)));
    EXPECT_FALSE(net.trySend(msg(2, 1))); // out of credits for dst 1
    EXPECT_GT(net.sendRejects.value(), 0.0);
    bool woken = false;
    net.waitForSpace(2, [&] { woken = true; });
    eq.run();
    net.popInbound(1);
    EXPECT_TRUE(woken);
    EXPECT_TRUE(net.trySend(msg(2, 1)));
}

TEST(P2PNetwork, InboundNotifyFiresOnEmptyToNonEmpty)
{
    EventQueue eq;
    PePointToPointNetwork net("net", eq, smallConfig());
    int notified = 0;
    net.setInboundNotify(5, [&] { ++notified; });
    ASSERT_TRUE(net.trySend(msg(0, 5)));
    ASSERT_TRUE(net.trySend(msg(1, 5)));
    eq.run();
    EXPECT_EQ(notified, 1); // only the empty->nonempty transition
}

TEST(P2PNetwork, RequiresSingleGpn)
{
    EventQueue eq;
    EXPECT_THROW(PePointToPointNetwork("net", eq, smallConfig(16, 8)),
                 sim::PanicError);
}

TEST(HierarchicalNetwork, IntraGpnStaysLocal)
{
    EventQueue eq;
    HierarchicalNetwork net("net", eq, smallConfig(16, 8));
    ASSERT_TRUE(net.trySend(msg(0, 7))); // same GPN 0
    eq.run();
    EXPECT_EQ(net.crossGpnMessages.value(), 0.0);
    EXPECT_EQ(net.popInbound(7).srcPe, 0u);
}

TEST(HierarchicalNetwork, CrossGpnTraversesCrossbar)
{
    EventQueue eq;
    HierarchicalNetwork net("net", eq, smallConfig(16, 8));
    ASSERT_TRUE(net.trySend(msg(0, 12))); // GPN 0 -> GPN 1
    eq.run();
    EXPECT_EQ(net.crossGpnMessages.value(), 1.0);
    ASSERT_FALSE(net.inboundEmpty(12));
    // The crossbar path is slower than an intra-GPN link.
    EXPECT_GT(eq.now(), net.config().xbarLatency);
}

TEST(HierarchicalNetwork, ManyToManyAllDelivered)
{
    EventQueue eq;
    NetworkConfig cfg = smallConfig(32, 8);
    cfg.creditsPerDst = 256;
    HierarchicalNetwork net("net", eq, cfg);
    int sent = 0;
    for (std::uint32_t s = 0; s < 32; ++s)
        for (std::uint32_t d = 0; d < 32; ++d)
            sent += net.trySend(msg(s, d));
    eq.run();
    int received = 0;
    for (std::uint32_t d = 0; d < 32; ++d)
        while (!net.inboundEmpty(d)) {
            net.popInbound(d);
            ++received;
        }
    EXPECT_EQ(received, sent);
    EXPECT_EQ(net.messagesInNetwork(), 0u);
}

TEST(HierarchicalNetwork, CrossGpnOrderingPreserved)
{
    // The crossbar path chains three stages (uplink, switch port,
    // intra-GPN link); the chaining must not reorder a same-pair
    // stream.
    EventQueue eq;
    HierarchicalNetwork net("net", eq, smallConfig(16, 8));
    for (std::uint64_t i = 0; i < 20; ++i)
        ASSERT_TRUE(net.trySend(msg(0, 12, i))); // GPN 0 -> GPN 1
    eq.run();
    EXPECT_EQ(net.crossGpnMessages.value(), 20.0);
    for (std::uint64_t i = 0; i < 20; ++i) {
        ASSERT_FALSE(net.inboundEmpty(12));
        EXPECT_EQ(net.popInbound(12).update, i);
    }
}

TEST(P2PNetwork, OrderingPreservedUnderCreditBackpressure)
{
    // Drive far more messages than the destination has credits and
    // drain the inbound queue concurrently with delivery: the
    // reject/retry cycle must not reorder or drop anything.
    EventQueue eq;
    NetworkConfig cfg = smallConfig();
    cfg.creditsPerDst = 4;
    PePointToPointNetwork net("net", eq, cfg);
    const std::uint64_t n = 30;
    std::uint64_t sent = 0;
    std::function<void()> feed = [&] {
        while (sent < n && net.trySend(msg(1, 2, sent)))
            ++sent;
        if (sent < n)
            net.waitForSpace(1, feed);
    };
    std::vector<std::uint64_t> received;
    net.setInboundNotify(2, [&] {
        // Draining returns credits, which wakes the blocked sender.
        while (!net.inboundEmpty(2))
            received.push_back(net.popInbound(2).update);
    });
    feed();
    eq.run();
    EXPECT_GT(net.sendRejects.value(), 0.0);
    ASSERT_EQ(sent, n);
    ASSERT_EQ(received.size(), n);
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_EQ(received[i], i);
    EXPECT_EQ(net.messagesInNetwork(), 0u);
}

TEST(IdealNetwork, FixedLatencyOnly)
{
    EventQueue eq;
    IdealNetwork net("net", eq, smallConfig(16, 8));
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(net.trySend(msg(0, 9)));
    eq.run();
    // All arrive after exactly linkLatency (no serialization).
    EXPECT_EQ(eq.now(), net.config().linkLatency);
    EXPECT_EQ(net.inboundSize(9), 50u);
}

TEST(NetworkFactory, MakesAllKinds)
{
    EventQueue eq;
    auto p2p = makeNetwork(FabricKind::PointToPoint, "a", eq,
                           smallConfig());
    auto hier = makeNetwork(FabricKind::Hierarchical, "b", eq,
                            smallConfig(16, 8));
    auto ideal = makeNetwork(FabricKind::Ideal, "c", eq,
                             smallConfig(16, 8));
    EXPECT_NE(p2p, nullptr);
    EXPECT_NE(hier, nullptr);
    EXPECT_NE(ideal, nullptr);
}

TEST(Network, LatencyStatAccumulates)
{
    EventQueue eq;
    PePointToPointNetwork net("net", eq, smallConfig());
    ASSERT_TRUE(net.trySend(msg(0, 1)));
    eq.run();
    EXPECT_GT(net.totalLatency.value(), 0.0);
    EXPECT_EQ(net.bytesSent.value(),
              static_cast<double>(net.config().messageBytes));
}
