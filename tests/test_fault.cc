/**
 * @file
 * The fault-injection & recovery matrix: every injection point fires
 * and is recovered on the NOVA model (results still reference-equal,
 * the matching recovery stat advances, and the run replays bit-exactly
 * from its seed); the engine-agnostic recovered-reduce path does the
 * same for PolyGraph and Ligra. Plus: schedule-grammar validation,
 * watchdog deadlock/livelock detection, event-queue runaway guards,
 * replay tokens carrying fault schedules, crash bundles, and the
 * zero-overhead guarantee for fault-free runs.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "verify/differential.hh"
#include "verify/replay.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
testGraph(std::uint64_t seed = 11)
{
    graph::UniformParams p;
    p.numVertices = 240;
    p.numEdges = 1500;
    p.maxWeight = 64;
    p.seed = seed;
    return graph::generateUniform(p);
}

core::NovaConfig
smallConfig()
{
    core::NovaConfig cfg;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 512;
    cfg.activeBufferEntries = 8; // tiny: forces VMU spills
    return cfg;
}

struct FaultedRun
{
    workloads::RunResult result;
    bool valid = false; ///< props match the sequential reference
};

/** Run SSSP on the NOVA model under `schedule`; validate vs reference. */
FaultedRun
runSsspUnder(const std::string &schedule, std::uint64_t fault_seed = 5)
{
    const graph::Csr g = testGraph();
    core::NovaConfig cfg = smallConfig();
    cfg.faultSchedule = schedule;
    cfg.faultSeed = fault_seed;
    core::NovaSystem sys(cfg);
    const auto map = graph::randomMapping(g.numVertices(), 4, 7);
    workloads::SsspProgram prog(0);
    FaultedRun r;
    r.result = sys.run(prog, g, map);
    r.valid = r.result.props == workloads::reference::ssspDistances(g, 0);
    return r;
}

double
extraOr(const workloads::RunResult &r, const std::string &key,
        double fallback = -1)
{
    const auto it = r.extra.find(key);
    return it == r.extra.end() ? fallback : it->second;
}

} // namespace

// ---------------------------------------------------------------------
// Schedule grammar
// ---------------------------------------------------------------------

TEST(FaultSchedule, ValidSchedulesParse)
{
    using sim::FaultInjector;
    EXPECT_EQ(FaultInjector::validateSchedule("dram.bitflip:n=3"), "");
    EXPECT_EQ(FaultInjector::validateSchedule(
                  "noc.drop:every=10:mask=ff+cache.ecc:p=0.5"),
              "");
    EXPECT_EQ(FaultInjector::validateSchedule(
                  "spill.corrupt@gpn0.pe1:n=2:mask=deadbeef"),
              "");
    EXPECT_EQ(FaultInjector::validateSchedule(
                  "reduce.bitflip:every=7+dram.txn:p=0.01+noc.dup:n=1"),
              "");
}

TEST(FaultSchedule, MalformedSchedulesRejected)
{
    using sim::FaultInjector;
    EXPECT_NE(FaultInjector::validateSchedule("bogus.kind:n=1"), "");
    EXPECT_NE(FaultInjector::validateSchedule("dram.bitflip"), "");
    EXPECT_NE(FaultInjector::validateSchedule("dram.bitflip:often=1"), "");
    EXPECT_NE(FaultInjector::validateSchedule("dram.bitflip:n=zero"), "");
    EXPECT_NE(FaultInjector::validateSchedule("dram.bitflip:p=2"), "");
    EXPECT_NE(FaultInjector::validateSchedule(
                  "dram.bitflip:n=1:mask=nothex"),
              "");
    EXPECT_NE(FaultInjector::validateSchedule("+"), "");
}

TEST(FaultSchedule, ConfigureRejectsBadInputByFatal)
{
    sim::FaultInjector inj(1);
    EXPECT_THROW(inj.configure("nope:n=1"), sim::FatalError);
}

// ---------------------------------------------------------------------
// The injection-point matrix on the NOVA model. Each kind must fire,
// recover, and leave a reference-equal result.
// ---------------------------------------------------------------------

struct KindCase
{
    const char *schedule;
    const char *stat; ///< extra[] key whose value must be positive
};

class FaultMatrix : public ::testing::TestWithParam<KindCase>
{
};

TEST_P(FaultMatrix, FiresRecoversAndStaysCorrect)
{
    const KindCase &kc = GetParam();
    const FaultedRun r = runSsspUnder(kc.schedule);
    EXPECT_TRUE(r.valid) << "results diverged under " << kc.schedule;
    EXPECT_GT(extraOr(r.result, "fault.injected"), 0)
        << kc.schedule << " never fired";
    EXPECT_GT(extraOr(r.result, kc.stat), 0)
        << "recovery stat " << kc.stat << " did not advance";
    EXPECT_GT(extraOr(r.result, "fault.recoveries"), 0);
}

TEST_P(FaultMatrix, ReplaysBitExactly)
{
    const KindCase &kc = GetParam();
    const FaultedRun a = runSsspUnder(kc.schedule);
    const FaultedRun b = runSsspUnder(kc.schedule);
    EXPECT_EQ(a.result.props, b.result.props);
    EXPECT_EQ(extraOr(a.result, "sim.fingerprint"),
              extraOr(b.result, "sim.fingerprint"));
    EXPECT_EQ(extraOr(a.result, "fault.injected"),
              extraOr(b.result, "fault.injected"));
    EXPECT_EQ(extraOr(a.result, "fault.recoveries"),
              extraOr(b.result, "fault.recoveries"));
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FaultMatrix,
    ::testing::Values(
        KindCase{"dram.bitflip:every=40", "fault.dram.eccCorrected"},
        KindCase{"dram.txn:every=50", "fault.dram.txnRetries"},
        KindCase{"cache.ecc:every=30", "fault.cache.eccCorrected"},
        KindCase{"noc.drop:every=25", "fault.net.retries"},
        KindCase{"noc.corrupt:every=25", "fault.net.flitsCorrupted"},
        KindCase{"noc.dup:every=25", "fault.net.duplicatesDiscarded"},
        KindCase{"spill.corrupt:every=3", "fault.vmu.spillScrubs"},
        KindCase{"reduce.bitflip:every=20",
                 "fault.mpu.reduceRecomputes"}),
    [](const ::testing::TestParamInfo<KindCase> &info) {
        std::string name = info.param.schedule;
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(FaultMatrix, DifferentFaultSeedsDiverge)
{
    // Probabilistic schedules must consume the per-point seeded stream:
    // two different fault seeds give different firing patterns.
    const FaultedRun a = runSsspUnder("noc.drop:p=0.02", 1);
    const FaultedRun b = runSsspUnder("noc.drop:p=0.02", 2);
    EXPECT_TRUE(a.valid);
    EXPECT_TRUE(b.valid);
    EXPECT_NE(extraOr(a.result, "sim.fingerprint"),
              extraOr(b.result, "sim.fingerprint"));
}

TEST(FaultMatrix, CombinedScheduleRecoversEverything)
{
    const FaultedRun r = runSsspUnder(
        "dram.bitflip:every=60+noc.drop:every=45+cache.ecc:every=35+"
        "reduce.bitflip:every=25+noc.dup:every=55");
    EXPECT_TRUE(r.valid);
    EXPECT_GT(extraOr(r.result, "fault.recoveries"), 0);
}

// ---------------------------------------------------------------------
// Zero overhead when disabled
// ---------------------------------------------------------------------

TEST(FaultFree, NoFaultKeysAndDeterministic)
{
    const FaultedRun a = runSsspUnder("");
    const FaultedRun b = runSsspUnder("");
    EXPECT_TRUE(a.valid);
    EXPECT_EQ(a.result.extra.count("fault.injected"), 0u)
        << "fault stats must not appear in a fault-free run";
    EXPECT_EQ(a.result.extra.count("fault.recoveries"), 0u);
    EXPECT_EQ(extraOr(a.result, "sim.fingerprint"),
              extraOr(b.result, "sim.fingerprint"));
    EXPECT_EQ(a.result.props, b.result.props);
}

// ---------------------------------------------------------------------
// Engine-agnostic recovered faults: every engine of the differential
// harness detects and recovers the corrupted reduce, with no divergence.
// ---------------------------------------------------------------------

TEST(EngineFaultMatrix, RecoveredReduceOnEveryEngine)
{
    verify::DiffOptions opt;
    opt.fault.enabled = true;
    opt.fault.afterReduces = 4;
    opt.fault.xorMask = 0xff;
    opt.fault.recover = true;
    // Case (5, 1) is a dense RMAT graph: every algorithm on every
    // engine performs well over `afterReduces` reductions.
    const verify::CaseOutcome outcome = verify::runCase(5, 1, opt);
    EXPECT_TRUE(outcome.ok()) << "recovered faults must not diverge";
    ASSERT_FALSE(outcome.runs.empty());
    bool saw[3] = {false, false, false};
    for (const verify::RunRecord &rec : outcome.runs) {
        EXPECT_GT(rec.recoveries, 0u)
            << verify::engineKindName(rec.engine) << " on "
            << verify::algoName(rec.algo) << " recovered nothing";
        saw[static_cast<std::uint32_t>(rec.engine)] = true;
    }
    EXPECT_TRUE(saw[0] && saw[1] && saw[2])
        << "some engine was never exercised";
}

TEST(EngineFaultMatrix, HardwareScheduleInsideDifferentialHarness)
{
    verify::DiffOptions opt;
    opt.faultSchedule = "dram.bitflip:every=50+noc.drop:every=40";
    const verify::CaseOutcome a = verify::runCase(23, 1, opt);
    EXPECT_TRUE(a.ok())
        << "hardware faults under recovery must not diverge";
    bool nova_recovered = false;
    for (const verify::RunRecord &rec : a.runs)
        if (rec.engine == verify::EngineKind::Nova && rec.recoveries > 0)
            nova_recovered = true;
    EXPECT_TRUE(nova_recovered);

    // Bit-exact across a repeat of the same case.
    const verify::CaseOutcome b = verify::runCase(23, 1, opt);
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        EXPECT_EQ(a.runs[i].fingerprint, b.runs[i].fingerprint);
        EXPECT_EQ(a.runs[i].recoveries, b.runs[i].recoveries);
    }
}

TEST(EngineFaultMatrix, UnrecoveredFaultStillDetected)
{
    // The harness must keep catching *unrecovered* corruption.
    verify::DiffOptions opt;
    opt.algos = {verify::Algo::Sssp};
    opt.engines = {verify::EngineKind::Ligra};
    opt.fault.enabled = true;
    opt.fault.afterReduces = 3;
    const verify::CaseOutcome outcome = verify::runCase(5, 0, opt);
    EXPECT_FALSE(outcome.ok());
}

// ---------------------------------------------------------------------
// Replay tokens with fault schedules
// ---------------------------------------------------------------------

TEST(ReplayToken, RoundTripsRecoveredFaultAndSchedule)
{
    verify::ReplayCase c;
    c.seed = 0xabc;
    c.index = 17;
    c.algo = verify::Algo::Pr;
    c.engine = verify::EngineKind::Nova;
    c.fault.enabled = true;
    c.fault.afterReduces = 9;
    c.fault.xorMask = 0x1f;
    c.fault.recover = true;
    c.faultSchedule = "dram.bitflip:every=64:mask=3+noc.drop:n=5";

    const std::string token = verify::encodeReplayToken(c);
    EXPECT_NE(token.find(".r9x1f"), std::string::npos);
    EXPECT_NE(token.find(".Sdram.bitflip"), std::string::npos);

    verify::ReplayCase parsed;
    ASSERT_TRUE(verify::parseReplayToken(token, parsed));
    EXPECT_EQ(parsed.seed, c.seed);
    EXPECT_EQ(parsed.index, c.index);
    EXPECT_EQ(parsed.algo, c.algo);
    EXPECT_EQ(parsed.engine, c.engine);
    EXPECT_TRUE(parsed.fault.enabled);
    EXPECT_TRUE(parsed.fault.recover);
    EXPECT_EQ(parsed.fault.afterReduces, 9u);
    EXPECT_EQ(parsed.fault.xorMask, 0x1fu);
    EXPECT_EQ(parsed.faultSchedule, c.faultSchedule);
}

TEST(ReplayToken, LegacyUnrecoveredFormStillParses)
{
    verify::ReplayCase parsed;
    ASSERT_TRUE(verify::parseReplayToken(
        "NV1.s1.i12.sssp.nova.v256.e2048.f3xff", parsed));
    EXPECT_TRUE(parsed.fault.enabled);
    EXPECT_FALSE(parsed.fault.recover);
    EXPECT_TRUE(parsed.faultSchedule.empty());
}

TEST(ReplayToken, BadScheduleSuffixRejected)
{
    verify::ReplayCase parsed;
    EXPECT_FALSE(verify::parseReplayToken(
        "NV1.s1.i12.sssp.nova.v256.e2048.Sbogus.kind:n=1", parsed));
    EXPECT_FALSE(verify::parseReplayToken(
        "NV1.s1.i12.sssp.nova.v256.e2048.S", parsed));
}

TEST(ReplayToken, ReplayOfRecoveredTokenReproducesRecoveries)
{
    verify::ReplayCase c;
    c.seed = 5;
    c.index = 1;
    c.algo = verify::Algo::Sssp;
    c.engine = verify::EngineKind::Nova;
    c.fault.enabled = true;
    c.fault.afterReduces = 3;
    c.fault.xorMask = 4;
    c.fault.recover = true;

    const verify::CaseOutcome a = verify::replayCase(c);
    const verify::CaseOutcome b = verify::replayCase(c);
    EXPECT_TRUE(a.ok());
    ASSERT_EQ(a.runs.size(), 1u);
    ASSERT_EQ(b.runs.size(), 1u);
    EXPECT_GT(a.runs[0].recoveries, 0u);
    EXPECT_EQ(a.runs[0].fingerprint, b.runs[0].fingerprint);
    EXPECT_EQ(a.runs[0].recoveries, b.runs[0].recoveries);
}

// ---------------------------------------------------------------------
// Watchdog and runaway guards
// ---------------------------------------------------------------------

TEST(Watchdog, LivelockDetected)
{
    sim::EventQueue eq;
    sim::Watchdog dog(eq, 16, 4);
    dog.addProgress("work", [] { return std::uint64_t(0); });
    dog.arm();

    // A self-perpetuating event chain that makes no progress.
    std::function<void()> spin = [&eq, &spin] {
        eq.scheduleIn(100, spin);
    };
    eq.scheduleIn(100, spin);
    EXPECT_THROW(eq.run(), sim::PanicError);
}

TEST(Watchdog, ProgressSuppressesLivelock)
{
    sim::EventQueue eq;
    std::uint64_t beats = 0;
    sim::Watchdog dog(eq, 16, 4);
    dog.addProgress("work", [&beats] { return beats; });
    dog.arm();

    std::uint64_t remaining = 500;
    std::function<void()> spin = [&] {
        ++beats; // every event advances the heartbeat
        if (--remaining > 0)
            eq.scheduleIn(100, spin);
    };
    eq.scheduleIn(100, spin);
    EXPECT_NO_THROW(eq.run());
    EXPECT_EQ(remaining, 0u);
}

TEST(Watchdog, DeadlockDetectedAtQuiescence)
{
    sim::EventQueue eq;
    sim::Watchdog dog(eq, 1000, 4);
    dog.addPending("stuck", [] { return std::uint64_t(3); });
    eq.run();
    EXPECT_THROW(dog.checkQuiescence(), sim::PanicError);
}

TEST(Watchdog, CleanQuiescencePasses)
{
    sim::EventQueue eq;
    sim::Watchdog dog(eq, 1000, 4);
    dog.addPending("ok", [] { return std::uint64_t(0); });
    eq.run();
    EXPECT_NO_THROW(dog.checkQuiescence());
}

TEST(EventQueueGuard, MaxEventsCeilingPanics)
{
    sim::EventQueue eq;
    eq.setGuard(0, 64);
    std::function<void()> spin = [&eq, &spin] {
        eq.scheduleIn(10, spin);
    };
    eq.scheduleIn(10, spin);
    EXPECT_THROW(eq.run(), sim::PanicError);
}

TEST(EventQueueGuard, MaxTickCeilingPanics)
{
    sim::EventQueue eq;
    eq.setGuard(5000, 0);
    std::function<void()> spin = [&eq, &spin] {
        eq.scheduleIn(100, spin);
    };
    eq.scheduleIn(100, spin);
    EXPECT_THROW(eq.run(), sim::PanicError);
}

TEST(EventQueueGuard, DisabledByDefault)
{
    sim::EventQueue eq;
    std::uint64_t remaining = 200;
    std::function<void()> spin = [&] {
        if (--remaining > 0)
            eq.scheduleIn(10, spin);
    };
    eq.scheduleIn(10, spin);
    EXPECT_NO_THROW(eq.run());
}

// ---------------------------------------------------------------------
// Crash bundles
// ---------------------------------------------------------------------

TEST(CrashBundle, GuardTripLeavesBundleWithReplayToken)
{
    const std::string path = "test_fault_crash_bundle.txt";
    std::remove(path.c_str());
    sim::crash::setBundlePath(path);
    sim::crash::setReplayToken("nova_test --replayable");

    const graph::Csr g = testGraph();
    core::NovaConfig cfg = smallConfig();
    cfg.maxEvents = 300; // far below what the run needs
    core::NovaSystem sys(cfg);
    const auto map = graph::randomMapping(g.numVertices(), 4, 7);
    workloads::SsspProgram prog(0);
    EXPECT_THROW(sys.run(prog, g, map), sim::PanicError);

    // run() writes the bundle while its components are still alive.
    EXPECT_EQ(sim::crash::lastBundle(), path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "no crash bundle at " << path;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string bundle = buf.str();
    EXPECT_NE(bundle.find("NOVA crash bundle"), std::string::npos);
    EXPECT_NE(bundle.find("replay: nova_test --replayable"),
              std::string::npos);
    EXPECT_NE(bundle.find("recent-events"), std::string::npos);
    EXPECT_NE(bundle.find("stats:"), std::string::npos);

    std::remove(path.c_str());
    sim::crash::setBundlePath("");
    sim::crash::setReplayToken("");
}
