/**
 * @file
 * Stress tests of the calendar-queue event-kernel fast path: ordering
 * and fingerprint equivalence against both the legacy binary-heap
 * backend and an independent std::priority_queue reference model, over
 * a million mixed-horizon events including SelfEvent cancellations.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace nova::sim;

namespace
{

/** One executed event as observed from outside the queue. */
struct Observed
{
    Tick when;
    int priority;
    std::uint64_t id;

    bool
    operator==(const Observed &o) const
    {
        return when == o.when && priority == o.priority && id == o.id;
    }
};

/**
 * Deterministic self-expanding workload: each event draws from a
 * seeded Rng and schedules one or two follow-ups (supercritical, so
 * the cascade cannot die out) at mixed horizons — same tick, near
 * (inside one calendar bucket), mid (inside the 256-bucket window) and
 * far (well beyond it) — until `target` events have been scheduled. Because every draw happens inside an executed event, two
 * queues produce identical schedules iff they execute in the same
 * order.
 */
std::vector<Observed>
runExpandingWorkload(EventQueue &eq, std::uint64_t target,
                     std::uint64_t seed)
{
    std::vector<Observed> trace;
    trace.reserve(target);
    Rng rng(seed);
    std::uint64_t scheduled = 0;
    std::uint64_t next_id = 0;

    std::function<void(std::uint64_t)> body = [&](std::uint64_t id) {
        trace.push_back(Observed{eq.now(), 0, id});
        const std::uint32_t fanout = 1 + rng.nextBounded(2);
        for (std::uint32_t i = 0; i < fanout && scheduled < target; ++i) {
            Tick delta = 0;
            switch (rng.nextBounded(4)) {
              case 0:
                delta = 0; // same tick
                break;
              case 1:
                delta = rng.nextBounded(1000); // same / adjacent bucket
                break;
              case 2:
                delta = rng.nextBounded(200'000); // inside the window
                break;
              default:
                delta = 250'000 + rng.nextBounded(5'000'000); // overflow heap
                break;
            }
            const std::uint64_t child = next_id++;
            ++scheduled;
            eq.scheduleIn(delta, [&body, child] { body(child); });
        }
    };

    const std::uint64_t root = next_id++;
    ++scheduled;
    eq.schedule(0, [&body, root] { body(root); });
    eq.run();
    return trace;
}

/**
 * Reference model: the same (when, priority, seq) key ordering as
 * EventQueue, implemented directly on std::priority_queue with the
 * callbacks carried alongside. Deliberately naive.
 */
class ModelQueue
{
  public:
    void
    schedule(Tick when, std::function<void()> fn, int priority = 0)
    {
        heap.push(Item{when, priority, nextSeq++, std::move(fn)});
    }

    void
    scheduleIn(Tick delta, std::function<void()> fn, int priority = 0)
    {
        schedule(cur + delta, std::move(fn), priority);
    }

    Tick now() const { return cur; }

    void
    run()
    {
        while (!heap.empty()) {
            Item it = std::move(const_cast<Item &>(heap.top()));
            heap.pop();
            cur = it.when;
            it.fn();
        }
    }

  private:
    struct Item
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            return std::make_tuple(a.when, a.priority, a.seq) >
                   std::make_tuple(b.when, b.priority, b.seq);
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> heap;
    Tick cur = 0;
    std::uint64_t nextSeq = 0;
};

/** The expanding workload on the reference model. */
std::vector<Observed>
runExpandingModel(std::uint64_t target, std::uint64_t seed)
{
    std::vector<Observed> trace;
    trace.reserve(target);
    ModelQueue mq;
    Rng rng(seed);
    std::uint64_t scheduled = 0;
    std::uint64_t next_id = 0;

    std::function<void(std::uint64_t)> body = [&](std::uint64_t id) {
        trace.push_back(Observed{mq.now(), 0, id});
        const std::uint32_t fanout = 1 + rng.nextBounded(2);
        for (std::uint32_t i = 0; i < fanout && scheduled < target; ++i) {
            Tick delta = 0;
            switch (rng.nextBounded(4)) {
              case 0:
                delta = 0;
                break;
              case 1:
                delta = rng.nextBounded(1000);
                break;
              case 2:
                delta = rng.nextBounded(200'000);
                break;
              default:
                delta = 250'000 + rng.nextBounded(5'000'000);
                break;
            }
            const std::uint64_t child = next_id++;
            ++scheduled;
            mq.scheduleIn(delta, [&body, child] { body(child); });
        }
    };

    const std::uint64_t root = next_id++;
    ++scheduled;
    mq.schedule(0, [&body, root] { body(root); });
    mq.run();
    return trace;
}

} // namespace

TEST(EventQueueStress, CalendarMatchesReferenceModelOnMillionEvents)
{
    constexpr std::uint64_t kEvents = 1'000'000;
    EventQueue eq(EventQueue::Impl::Calendar);
    const auto got = runExpandingWorkload(eq, kEvents, 0xA5A5);
    const auto want = runExpandingModel(kEvents, 0xA5A5);
    ASSERT_EQ(got.size(), want.size());
    ASSERT_EQ(got.size(), kEvents);
    // EXPECT_EQ on the vectors would print megabytes on failure; find
    // the first mismatch instead.
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(got[i] == want[i])
            << "first divergence at event " << i << ": calendar ran id "
            << got[i].id << " at tick " << got[i].when
            << ", model ran id " << want[i].id << " at tick "
            << want[i].when;
    }
}

TEST(EventQueueStress, BackendFingerprintsIdenticalOnMillionEvents)
{
    constexpr std::uint64_t kEvents = 1'000'000;
    EventQueue cal(EventQueue::Impl::Calendar);
    EventQueue leg(EventQueue::Impl::LegacyHeap);
    const auto a = runExpandingWorkload(cal, kEvents, 0xBEEF);
    const auto b = runExpandingWorkload(leg, kEvents, 0xBEEF);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(cal.fingerprint(), leg.fingerprint());
    EXPECT_EQ(cal.executed(), leg.executed());
    EXPECT_EQ(cal.now(), leg.now());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << "backends diverged at event " << i;
}

TEST(EventQueueStress, MixedPrioritiesAcrossBuckets)
{
    // Priorities must order within a tick on both backends, including
    // ticks that land in calendar overflow and migrate into the window.
    for (const auto impl : {EventQueue::Impl::Calendar,
                            EventQueue::Impl::LegacyHeap}) {
        EventQueue eq(impl);
        Rng rng(77);
        std::vector<Observed> trace;
        for (std::uint64_t i = 0; i < 50'000; ++i) {
            const Tick when = rng.nextBounded(2'000'000);
            const int prio = static_cast<int>(rng.nextBounded(7)) - 3;
            eq.schedule(when, [&trace, &eq, i, prio] {
                trace.push_back(Observed{eq.now(), prio, i});
            }, prio);
        }
        eq.run();
        ASSERT_EQ(trace.size(), 50'000u);
        for (std::size_t i = 1; i < trace.size(); ++i) {
            const auto &p = trace[i - 1];
            const auto &c = trace[i];
            ASSERT_TRUE(std::make_tuple(p.when, p.priority) <=
                        std::make_tuple(c.when, c.priority))
                << "order violation at " << i;
        }
    }
}

TEST(EventQueueStress, SelfEventCancellationParity)
{
    // Schedule-and-cancel churn through SelfEvent: cancelled
    // occurrences must not fire, and both backends must agree on the
    // surviving execution order (fingerprints include the dead events'
    // queue slots, so they must match too).
    auto churn = [](EventQueue::Impl impl) {
        EventQueue eq(impl);
        Rng rng(123);
        std::uint64_t fired = 0;
        std::vector<std::unique_ptr<SelfEvent>> events;
        for (int i = 0; i < 64; ++i)
            events.push_back(std::make_unique<SelfEvent>(
                eq, [&fired] { ++fired; }));
        for (std::uint64_t round = 0; round < 20'000; ++round) {
            auto &ev = events[rng.nextBounded(64)];
            if (ev->scheduled() && rng.nextBounded(3) == 0)
                ev->deschedule();
            else if (!ev->scheduled())
                ev->schedule(eq.now() + rng.nextBounded(3'000'000));
            // Drain a little so now() advances between rounds.
            if (round % 16 == 0)
                eq.run(eq.now() + 100'000);
        }
        eq.run();
        return std::make_tuple(fired, eq.fingerprint(), eq.executed(),
                               eq.now());
    };
    const auto cal = churn(EventQueue::Impl::Calendar);
    const auto leg = churn(EventQueue::Impl::LegacyHeap);
    EXPECT_EQ(cal, leg);
    EXPECT_GT(std::get<0>(cal), 0u);
}

TEST(EventQueueStress, ImplSelectionAndScopedOverride)
{
    EXPECT_EQ(EventQueue().impl(), EventQueue::defaultImpl());
    {
        EventQueue::ScopedDefaultImpl forced(EventQueue::Impl::LegacyHeap);
        EXPECT_EQ(EventQueue().impl(), EventQueue::Impl::LegacyHeap);
        {
            EventQueue::ScopedDefaultImpl inner(
                EventQueue::Impl::Calendar);
            EXPECT_EQ(EventQueue().impl(), EventQueue::Impl::Calendar);
        }
        EXPECT_EQ(EventQueue().impl(), EventQueue::Impl::LegacyHeap);
    }
    EXPECT_EQ(EventQueue().impl(), EventQueue::defaultImpl());
}

TEST(EventQueueStress, RestoreJumpsCalendarWindow)
{
    // Restoring scheduling state at a far-future tick must leave the
    // calendar able to accept and order events around the new window.
    EventQueue eq(EventQueue::Impl::Calendar);
    eq.schedule(10, [] {});
    eq.run();
    Tick tick;
    std::uint64_t seq, executed, fp;
    eq.saveSchedulingState(tick, seq, executed, fp);
    const Tick far = Tick(1) << 40;
    eq.restoreSchedulingState(far, seq, executed, fp);
    std::vector<std::uint64_t> order;
    eq.schedule(far + 5, [&] { order.push_back(5); });
    eq.schedule(far, [&] { order.push_back(0); });
    eq.schedule(far + 300'000, [&] { order.push_back(300'000); });
    eq.run();
    EXPECT_EQ(order, (std::vector<std::uint64_t>{0, 5, 300'000}));
    EXPECT_EQ(eq.now(), far + 300'000);
}
