/**
 * @file
 * Checkpoint/restore round trips: a run stopped at a BSP-barrier
 * checkpoint and resumed into a fresh NovaSystem must finish with
 * bit-identical properties, statistics and event-order fingerprint to
 * an uninterrupted run — with and without fault injection armed. Plus
 * rejection paths: async programs, corrupt files and mismatched
 * configurations. (scripts/ckpt_roundtrip.sh repeats the round trip
 * across two separate nova_cli processes.)
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "core/system.hh"
#include "sim/checkpoint.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using graph::VertexId;

namespace
{

graph::Csr
testGraph(VertexId vertices = 220, std::uint64_t edges = 1400)
{
    graph::UniformParams p;
    p.numVertices = vertices;
    p.numEdges = edges;
    p.maxWeight = 32;
    p.seed = 13;
    return graph::generateUniform(p);
}

core::NovaConfig
smallConfig()
{
    core::NovaConfig cfg;
    cfg.pesPerGpn = 4;
    cfg.cacheBytesPerPe = 512;
    cfg.activeBufferEntries = 16;
    return cfg;
}

/** Run PageRank with a checkpoint policy; returns result + ranks. */
struct PrRun
{
    workloads::RunResult result;
    std::vector<double> rank;
};

PrRun
runPrCfg(const core::NovaConfig &cfg, const graph::Csr &g,
         const core::CheckpointPolicy &policy)
{
    core::NovaSystem sys(cfg);
    sys.setCheckpointPolicy(policy);
    const auto map =
        graph::randomMapping(g.numVertices(), cfg.totalPes(), 9);
    workloads::PageRankProgram prog(0.85, 1e-11, 8);
    PrRun r;
    r.result = sys.run(prog, g, map);
    r.rank = prog.rank();
    return r;
}

PrRun
runPr(const graph::Csr &g, const core::CheckpointPolicy &policy,
      const std::string &fault_schedule = "")
{
    core::NovaConfig cfg = smallConfig();
    cfg.faultSchedule = fault_schedule;
    cfg.faultSeed = 3;
    return runPrCfg(cfg, g, policy);
}

/** Two-GPN sharded-scheduler configuration (threads > 0). */
core::NovaConfig
shardedConfig(std::uint32_t threads)
{
    core::NovaConfig cfg = smallConfig();
    cfg.numGpns = 2;
    cfg.threads = threads;
    cfg.deterministicMerge = true;
    return cfg;
}

/** Every field that must survive the round trip, compared exactly. */
void
expectIdenticalOutcome(const PrRun &want, const PrRun &got)
{
    EXPECT_EQ(want.result.props, got.result.props);
    EXPECT_EQ(want.result.ticks, got.result.ticks);
    EXPECT_EQ(want.result.messagesProcessed,
              got.result.messagesProcessed);
    EXPECT_EQ(want.result.messagesGenerated,
              got.result.messagesGenerated);
    EXPECT_EQ(want.result.coalescedUpdates, got.result.coalescedUpdates);
    EXPECT_EQ(want.result.bspIterations, got.result.bspIterations);
    EXPECT_EQ(want.result.extra, got.result.extra);
    ASSERT_EQ(want.rank.size(), got.rank.size());
    for (std::size_t v = 0; v < want.rank.size(); ++v)
        EXPECT_EQ(want.rank[v], got.rank[v]) << "rank of vertex " << v;
}

struct ScopedFile
{
    explicit ScopedFile(std::string p) : path(std::move(p))
    {
        std::remove(path.c_str());
    }
    ~ScopedFile() { std::remove(path.c_str()); }
    std::string path;
};

} // namespace

TEST(Checkpoint, RoundTripBitIdentical)
{
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_roundtrip.ckpt");

    const PrRun whole = runPr(g, {});

    core::CheckpointPolicy stop;
    stop.stopAfterIters = 3;
    stop.path = ckpt.path;
    const PrRun first = runPr(g, stop);
    EXPECT_TRUE(first.result.stoppedAtCheckpoint);
    EXPECT_EQ(first.result.bspIterations, 3u);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun second = runPr(g, resume);
    EXPECT_FALSE(second.result.stoppedAtCheckpoint);
    expectIdenticalOutcome(whole, second);
}

TEST(Checkpoint, RoundTripBitIdenticalUnderFaults)
{
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_faulted.ckpt");
    const std::string faults =
        "dram.bitflip:every=45+noc.drop:every=35+reduce.bitflip:every=30";

    const PrRun whole = runPr(g, {}, faults);
    EXPECT_GT(whole.result.extra.at("fault.recoveries"), 0);

    core::CheckpointPolicy stop;
    stop.stopAfterIters = 4;
    stop.path = ckpt.path;
    const PrRun first = runPr(g, stop, faults);
    EXPECT_TRUE(first.result.stoppedAtCheckpoint);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun second = runPr(g, resume, faults);
    expectIdenticalOutcome(whole, second);
}

TEST(Checkpoint, PeriodicCheckpointsDoNotPerturbTheRun)
{
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_periodic.ckpt");

    const PrRun plain = runPr(g, {});

    core::CheckpointPolicy periodic;
    periodic.everyIters = 2;
    periodic.path = ckpt.path;
    const PrRun with = runPr(g, periodic);

    expectIdenticalOutcome(plain, with);
    std::ifstream in(ckpt.path);
    EXPECT_TRUE(in.good()) << "no checkpoint was written";
}

TEST(Checkpoint, ResumeFromLastPeriodicCheckpoint)
{
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_periodic_resume.ckpt");

    const PrRun whole = runPr(g, {});

    // Write checkpoints as the run goes; the file left behind is the
    // last one (iteration 6 of 8). Resuming it must still converge to
    // the identical result.
    core::CheckpointPolicy periodic;
    periodic.everyIters = 3;
    periodic.path = ckpt.path;
    runPr(g, periodic);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun resumed = runPr(g, resume);
    expectIdenticalOutcome(whole, resumed);
}

TEST(Checkpoint, AsyncProgramsCannotCheckpoint)
{
    const graph::Csr g = testGraph();
    core::NovaConfig cfg = smallConfig();
    core::NovaSystem sys(cfg);
    core::CheckpointPolicy policy;
    policy.everyIters = 1;
    policy.path = "test_ckpt_async.ckpt";
    sys.setCheckpointPolicy(policy);
    const auto map = graph::randomMapping(g.numVertices(), 4, 9);
    workloads::SsspProgram prog(0); // async: no barrier to checkpoint at
    EXPECT_THROW(sys.run(prog, g, map), sim::FatalError);
}

TEST(Checkpoint, CorruptFileRejected)
{
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_corrupt.ckpt");
    {
        std::ofstream os(ckpt.path);
        os << "not a checkpoint at all\n";
    }
    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    EXPECT_THROW(runPr(g, resume), sim::FatalError);
}

namespace
{

std::string
readWholeFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
writeWholeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << text;
    ASSERT_TRUE(os.good()) << path;
}

/** Byte offset of each line that opens a checkpoint section. */
std::vector<std::size_t>
sectionOffsets(const std::string &text)
{
    std::vector<std::size_t> at;
    std::size_t pos = 0;
    while (pos < text.size()) {
        if (text[pos] == '@')
            at.push_back(pos);
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }
    return at;
}

/** Flip the first alphanumeric character at or after `from`. */
std::string
bitFlipAfter(const std::string &text, std::size_t from)
{
    std::string bad = text;
    for (std::size_t i = from; i < bad.size(); ++i) {
        if (std::isalnum(static_cast<unsigned char>(bad[i]))) {
            bad[i] = bad[i] == '0' ? '1' : '0';
            return bad;
        }
    }
    ADD_FAILURE() << "no byte to corrupt after offset " << from;
    return bad;
}

} // namespace

TEST(Checkpoint, CorruptionMatrixEverySectionDetected)
{
    // Truncate the file at, and flip a payload byte inside, every
    // section of a real checkpoint: the per-section CRC (or the
    // missing `!end`) must reject each of the mutations.
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_matrix.ckpt");
    core::CheckpointPolicy stop;
    stop.stopAfterIters = 3;
    stop.path = ckpt.path;
    runPr(g, stop);

    const std::string text = readWholeFile(ckpt.path);
    ASSERT_TRUE(sim::validateCheckpointFile(ckpt.path));
    const std::vector<std::size_t> sections = sectionOffsets(text);
    ASSERT_GE(sections.size(), 4u) << "checkpoint has too few sections";

    ScopedFile bad("test_ckpt_matrix_bad.ckpt");
    for (std::size_t i = 0; i < sections.size(); ++i) {
        const std::size_t at = sections[i];

        writeWholeFile(bad.path, text.substr(0, at));
        std::string why;
        EXPECT_FALSE(sim::validateCheckpointFile(bad.path, &why))
            << "truncation at section " << i << " undetected";
        EXPECT_FALSE(why.empty());

        // Flip a byte past the section header so its CRC goes stale.
        const std::size_t line_end = text.find('\n', at);
        ASSERT_NE(line_end, std::string::npos);
        writeWholeFile(bad.path, bitFlipAfter(text, line_end + 1));
        why.clear();
        EXPECT_FALSE(sim::validateCheckpointFile(bad.path, &why))
            << "bit flip in section " << i << " undetected";
        EXPECT_FALSE(why.empty());
    }

    // The header line itself is covered too.
    writeWholeFile(bad.path, bitFlipAfter(text, 0));
    EXPECT_FALSE(sim::validateCheckpointFile(bad.path));
}

TEST(Checkpoint, GenerationFallbackRecoversTheRun)
{
    // keep-last-2 chain: corrupt the newest generation; resume must
    // fall back to `path.1` and still finish bit-identically to an
    // uninterrupted run.
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_fallback.ckpt");
    ScopedFile older(ckpt.path + ".1");

    const PrRun whole = runPr(g, {});

    core::CheckpointPolicy periodic;
    periodic.everyIters = 2;
    periodic.path = ckpt.path;
    periodic.keepGenerations = 2;
    runPr(g, periodic);
    ASSERT_TRUE(sim::validateCheckpointFile(ckpt.path));
    ASSERT_TRUE(sim::validateCheckpointFile(older.path));

    writeWholeFile(ckpt.path, bitFlipAfter(readWholeFile(ckpt.path), 16));
    const sim::GenerationPick pick =
        sim::newestValidCheckpoint(ckpt.path, 2);
    EXPECT_EQ(pick.path, older.path);
    EXPECT_EQ(pick.generation, 1u);
    EXPECT_EQ(pick.rejected.size(), 1u);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    resume.keepGenerations = 2;
    const PrRun recovered = runPr(g, resume);
    expectIdenticalOutcome(whole, recovered);

    // With every generation corrupt the resume must refuse, loudly.
    writeWholeFile(older.path, bitFlipAfter(readWholeFile(older.path), 16));
    EXPECT_THROW(runPr(g, resume), sim::FatalError);
}

TEST(Checkpoint, MissingFileRejected)
{
    const graph::Csr g = testGraph();
    core::CheckpointPolicy resume;
    resume.resumePath = "test_ckpt_does_not_exist.ckpt";
    EXPECT_THROW(runPr(g, resume), sim::FatalError);
}

TEST(Checkpoint, ParallelRoundTripThreadCountFree)
{
    // A checkpoint written by a 4-thread sharded run must resume
    // bit-identically on 1 thread, and vice versa: the checkpoint
    // records the shard decomposition, not the host thread count.
    const graph::Csr g = testGraph();
    ScopedFile ckpt("test_ckpt_parallel.ckpt");

    const PrRun whole = runPrCfg(shardedConfig(4), g, {});
    EXPECT_GT(whole.result.extra.at("sim.mergedFingerprint"), 0);

    core::CheckpointPolicy stop;
    stop.stopAfterIters = 3;
    stop.path = ckpt.path;
    const PrRun first = runPrCfg(shardedConfig(4), g, stop);
    EXPECT_TRUE(first.result.stoppedAtCheckpoint);

    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    const PrRun narrow = runPrCfg(shardedConfig(1), g, resume);
    expectIdenticalOutcome(whole, narrow);

    // The other direction: stop on 1 thread, resume on 4.
    ScopedFile ckpt2("test_ckpt_parallel_rev.ckpt");
    stop.path = ckpt2.path;
    const PrRun stopped = runPrCfg(shardedConfig(1), g, stop);
    EXPECT_TRUE(stopped.result.stoppedAtCheckpoint);
    resume.resumePath = ckpt2.path;
    const PrRun wide = runPrCfg(shardedConfig(4), g, resume);
    expectIdenticalOutcome(whole, wide);
}

TEST(Checkpoint, SerialAndShardedCheckpointsDoNotMix)
{
    // The scheduler mode (and shard count) is part of the checkpoint:
    // a serial checkpoint cannot resume sharded and vice versa.
    const graph::Csr g = testGraph();
    ScopedFile serial_ckpt("test_ckpt_serial_mode.ckpt");
    ScopedFile sharded_ckpt("test_ckpt_sharded_mode.ckpt");

    core::CheckpointPolicy stop;
    stop.stopAfterIters = 2;
    stop.path = serial_ckpt.path;
    runPr(g, stop);

    core::CheckpointPolicy resume;
    resume.resumePath = serial_ckpt.path;
    core::NovaConfig sharded = smallConfig();
    sharded.threads = 2;
    EXPECT_THROW(runPrCfg(sharded, g, resume), sim::FatalError);

    stop.path = sharded_ckpt.path;
    runPrCfg(shardedConfig(2), g, stop);
    resume.resumePath = sharded_ckpt.path;
    core::NovaConfig serial = smallConfig();
    serial.numGpns = 2;
    EXPECT_THROW(runPrCfg(serial, g, resume), sim::FatalError);
}

TEST(Checkpoint, MismatchedGraphRejected)
{
    ScopedFile ckpt("test_ckpt_mismatch.ckpt");
    core::CheckpointPolicy stop;
    stop.stopAfterIters = 2;
    stop.path = ckpt.path;
    runPr(testGraph(), stop);

    // Same program, different graph: the shape check must refuse.
    core::CheckpointPolicy resume;
    resume.resumePath = ckpt.path;
    EXPECT_THROW(runPr(testGraph(150, 900), resume), sim::FatalError);
}
