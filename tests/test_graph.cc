/**
 * @file
 * Unit and property tests of the graph substrate: CSR construction,
 * transforms, generators, IO, statistics and partitioners.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/io.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "sim/logging.hh"

using namespace nova::graph;

namespace
{

EdgeList
smallList()
{
    EdgeList list;
    list.numVertices = 4;
    list.edges = {{0, 1, 5}, {0, 2, 3}, {1, 2, 1}, {3, 0, 2}, {0, 1, 5}};
    return list;
}

} // namespace

TEST(Csr, BuildBasics)
{
    const Csr g = buildCsr(smallList());
    EXPECT_EQ(g.numVertices(), 4u);
    EXPECT_EQ(g.numEdges(), 5u);
    EXPECT_EQ(g.degree(0), 3u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(2), 0u);
    EXPECT_EQ(g.degree(3), 1u);
    EXPECT_TRUE(g.weighted());
}

TEST(Csr, DedupRemovesDuplicates)
{
    BuildOptions opts;
    opts.dedup = true;
    const Csr g = buildCsr(smallList(), opts);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(0), 2u);
}

TEST(Csr, DropSelfLoops)
{
    EdgeList list;
    list.numVertices = 3;
    list.edges = {{0, 0, 1}, {0, 1, 1}, {2, 2, 1}};
    BuildOptions opts;
    opts.dropSelfLoops = true;
    const Csr g = buildCsr(list, opts);
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Csr, SortedNeighbors)
{
    EdgeList list;
    list.numVertices = 4;
    list.edges = {{0, 3, 1}, {0, 1, 1}, {0, 2, 1}};
    const Csr g = buildCsr(list);
    const auto n = g.neighbors(0);
    EXPECT_TRUE(std::is_sorted(n.begin(), n.end()));
}

TEST(Csr, UnweightedReportsWeightOne)
{
    EdgeList list;
    list.numVertices = 2;
    list.edges = {{0, 1, 1}};
    const Csr g = buildCsr(list);
    EXPECT_FALSE(g.weighted());
    EXPECT_EQ(g.edgeWeight(0), 1u);
}

TEST(Csr, OutOfRangeEdgePanics)
{
    EdgeList list;
    list.numVertices = 2;
    list.edges = {{0, 5, 1}};
    EXPECT_THROW(buildCsr(list), nova::sim::PanicError);
}

TEST(Csr, FootprintAccounting)
{
    const Csr g = generatePath(10);
    EXPECT_EQ(g.footprintBytes(), 10u * 16 + 9u * 8);
}

TEST(CsrTransforms, TransposeInvolution)
{
    RmatParams p;
    p.numVertices = 128;
    p.numEdges = 512;
    p.seed = 5;
    const Csr g = generateRmat(p);
    const Csr tt = transpose(transpose(g));
    EXPECT_EQ(tt.rowPtr(), g.rowPtr());
    EXPECT_EQ(tt.dests(), g.dests());
}

TEST(CsrTransforms, SymmetrizeIsSymmetric)
{
    RmatParams p;
    p.numVertices = 64;
    p.numEdges = 256;
    p.seed = 9;
    const Csr s = symmetrize(generateRmat(p));
    const Csr t = transpose(s);
    EXPECT_EQ(t.rowPtr(), s.rowPtr());
    EXPECT_EQ(t.dests(), s.dests());
}

TEST(CsrTransforms, PermutationPreservesDegreesAndEdges)
{
    RmatParams p;
    p.numVertices = 64;
    p.numEdges = 300;
    p.seed = 2;
    const Csr g = generateRmat(p);
    std::vector<VertexId> perm(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        perm[v] = (v * 7 + 3) % g.numVertices(); // 7 coprime with 64
    const Csr h = applyPermutation(g, perm);
    EXPECT_EQ(h.numEdges(), g.numEdges());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(h.degree(perm[v]), g.degree(v));
}

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(GeneratorSeedTest, RmatHasRequestedShape)
{
    RmatParams p;
    p.numVertices = 1024;
    p.numEdges = 8192;
    p.seed = GetParam();
    p.maxWeight = 100;
    const Csr g = generateRmat(p);
    EXPECT_EQ(g.numVertices(), 1024u);
    EXPECT_EQ(g.numEdges(), 8192u);
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
        ASSERT_GE(g.edgeWeight(e), 1u);
        ASSERT_LE(g.edgeWeight(e), 100u);
    }
}

TEST_P(GeneratorSeedTest, RmatIsSkewed)
{
    RmatParams p;
    p.numVertices = 2048;
    p.numEdges = 1 << 16;
    p.seed = GetParam();
    const Csr g = generateRmat(p);
    // The top 1% of vertices should own far more than 1% of edges.
    std::vector<EdgeId> degs(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        degs[v] = g.degree(v);
    std::sort(degs.rbegin(), degs.rend());
    EdgeId top = 0;
    for (std::size_t i = 0; i < degs.size() / 100; ++i)
        top += degs[i];
    EXPECT_GT(static_cast<double>(top),
              0.05 * static_cast<double>(g.numEdges()));
}

TEST_P(GeneratorSeedTest, UniformIsNotSkewed)
{
    UniformParams p;
    p.numVertices = 2048;
    p.numEdges = 1 << 16;
    p.seed = GetParam();
    const Csr g = generateUniform(p);
    EdgeId max_deg = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        max_deg = std::max(max_deg, g.degree(v));
    // Poisson(32): the max degree stays within a small multiple.
    EXPECT_LT(max_deg, 32u * 4);
}

TEST_P(GeneratorSeedTest, GeneratorsAreDeterministic)
{
    RmatParams p;
    p.numVertices = 256;
    p.numEdges = 1024;
    p.seed = GetParam();
    const Csr a = generateRmat(p);
    const Csr b = generateRmat(p);
    EXPECT_EQ(a.dests(), b.dests());
    EXPECT_EQ(a.weights(), b.weights());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(Generators, RoadGridIsSymmetricHighDiameter)
{
    RoadGridParams p;
    p.width = 48;
    p.height = 48;
    p.seed = 3;
    const Csr g = generateRoadGrid(p);
    const Csr t = transpose(g);
    EXPECT_EQ(t.dests(), g.dests());
    const auto stats = computeStats(g);
    EXPECT_GT(stats.approxDiameter, 40u);
    EXPECT_LT(stats.avgDegree, 4.2);
}

TEST(Generators, SimpleShapes)
{
    EXPECT_EQ(generatePath(8).numEdges(), 7u);
    EXPECT_EQ(generateStar(9).degree(0), 8u);
    EXPECT_EQ(generateComplete(6).numEdges(), 30u);
    EXPECT_EQ(generateCycle(5).numEdges(), 5u);
    EXPECT_EQ(generateCycle(5).edgeDest(4), 0u);
}

TEST(Generators, WithRandomWeightsKeepsStructure)
{
    const Csr g = generatePath(32);
    const Csr w = withRandomWeights(g, 50, 4);
    EXPECT_EQ(w.rowPtr(), g.rowPtr());
    EXPECT_EQ(w.dests(), g.dests());
    EXPECT_TRUE(w.weighted());
    for (EdgeId e = 0; e < w.numEdges(); ++e)
        EXPECT_LE(w.edgeWeight(e), 50u);
}

TEST(GraphIo, EdgeListRoundTrip)
{
    RmatParams p;
    p.numVertices = 64;
    p.numEdges = 256;
    p.seed = 1;
    p.maxWeight = 9;
    const Csr g = generateRmat(p);
    std::stringstream ss;
    writeEdgeList(g, ss);
    const Csr h = buildCsr(readEdgeList(ss, g.numVertices()));
    EXPECT_EQ(h.rowPtr(), g.rowPtr());
    EXPECT_EQ(h.dests(), g.dests());
    EXPECT_EQ(h.weights(), g.weights());
}

TEST(GraphIo, EdgeListSkipsComments)
{
    std::stringstream ss("# comment\n0 1\n% other\n1 2 7\n");
    const auto list = readEdgeList(ss);
    EXPECT_EQ(list.numVertices, 3u);
    EXPECT_EQ(list.edges.size(), 2u);
    EXPECT_EQ(list.edges[1].weight, 7u);
}

TEST(GraphIo, BinaryRoundTrip)
{
    RmatParams p;
    p.numVertices = 128;
    p.numEdges = 512;
    p.seed = 11;
    p.maxWeight = 200;
    const Csr g = generateRmat(p);
    std::stringstream ss;
    writeBinary(g, ss);
    const Csr h = readBinary(ss);
    EXPECT_EQ(h.rowPtr(), g.rowPtr());
    EXPECT_EQ(h.dests(), g.dests());
    EXPECT_EQ(h.weights(), g.weights());
}

TEST(GraphIo, BinaryRejectsGarbage)
{
    std::stringstream ss("definitely not a graph");
    EXPECT_THROW(readBinary(ss), nova::sim::FatalError);
}

TEST(GraphStats, PathDiameterAndComponents)
{
    const auto stats = computeStats(generatePath(33));
    EXPECT_EQ(stats.numComponents, 1u);
    EXPECT_EQ(stats.largestComponent, 33u);
    EXPECT_EQ(stats.approxDiameter, 32u);
}

TEST(GraphStats, CountsDisjointComponents)
{
    EdgeList list;
    list.numVertices = 9;
    list.edges = {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}, {6, 7, 1}, {7, 8, 1}};
    const auto stats = computeStats(buildCsr(list));
    EXPECT_EQ(stats.numComponents, 4u); // {0,1,2} {3,4} {5} {6,7,8}
    EXPECT_EQ(stats.largestComponent, 3u);
}

TEST(GraphStats, HighestDegreeVertex)
{
    const Csr g = generateStar(10);
    EXPECT_EQ(highestDegreeVertex(g), 0u);
}

class MappingTest : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(MappingTest, InterleaveRoundTrips)
{
    const std::uint32_t parts = GetParam();
    const auto map = VertexMapping::interleave(1000, parts);
    for (VertexId v = 0; v < 1000; ++v) {
        const auto p = map.partOf(v);
        ASSERT_LT(p, parts);
        ASSERT_EQ(map.globalOf(p, map.localOf(v)), v);
    }
    VertexId total = 0;
    for (std::uint32_t p = 0; p < parts; ++p)
        total += map.localCount(p);
    EXPECT_EQ(total, 1000u);
}

TEST_P(MappingTest, ChunkRoundTrips)
{
    const std::uint32_t parts = GetParam();
    const auto map = VertexMapping::chunk(997, parts);
    for (VertexId v = 0; v < 997; ++v)
        ASSERT_EQ(map.globalOf(map.partOf(v), map.localOf(v)), v);
}

TEST_P(MappingTest, RandomMappingBalanced)
{
    const std::uint32_t parts = GetParam();
    const auto map = randomMapping(1024, parts, 77);
    const VertexId expect = 1024 / parts;
    for (std::uint32_t p = 0; p < parts; ++p) {
        ASSERT_GE(map.localCount(p), expect > 2 ? expect - 2 : 0);
        ASSERT_LE(map.localCount(p), expect + 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Parts, MappingTest,
                         ::testing::Values(1, 2, 7, 8, 64));

TEST(Partition, LoadBalancedEvensOutEdges)
{
    RmatParams p;
    p.numVertices = 2048;
    p.numEdges = 1 << 15;
    p.seed = 13;
    const Csr g = generateRmat(p);
    const auto lb = loadBalancedMapping(g, 8);
    const auto counts = edgesPerPart(g, lb);
    const auto [mn, mx] = std::minmax_element(counts.begin(),
                                              counts.end());
    EXPECT_LT(static_cast<double>(*mx),
              1.35 * static_cast<double>(std::max<EdgeId>(1, *mn)));
}

TEST(Partition, LocalityMappingCutsFewerEdges)
{
    RoadGridParams p;
    p.width = 64;
    p.height = 64;
    p.seed = 5;
    const Csr g = generateRoadGrid(p);
    const auto rnd = randomMapping(g.numVertices(), 8, 1);
    const auto loc = localityMapping(g, 8);
    EXPECT_LT(cutFraction(g, loc), 0.5 * cutFraction(g, rnd));
}

TEST(Partition, ExplicitAssignmentValidated)
{
    EXPECT_THROW(VertexMapping::fromAssignment({0, 1, 9}, 2),
                 nova::sim::PanicError);
}

TEST(Presets, ScaleControlsSize)
{
    const auto big = makeTwitter(4000);
    const auto small = makeTwitter(8000);
    EXPECT_GT(big.graph.numVertices(), small.graph.numVertices());
    EXPECT_EQ(big.paperVertices, small.paperVertices);
}

TEST(Presets, AllFiveGraphsPresentInOrder)
{
    const auto all = paperGraphs(8000);
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "roadusa");
    EXPECT_EQ(all[1].name, "twitter");
    EXPECT_EQ(all[2].name, "friendster");
    EXPECT_EQ(all[3].name, "host");
    EXPECT_EQ(all[4].name, "urand");
    for (const auto &named : all)
        EXPECT_GT(named.graph.numEdges(), 0u);
}
