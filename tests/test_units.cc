/**
 * @file
 * Direct unit tests of the MPU and MGU pipelines, driven with a real
 * network, cache and memory models but hand-injected work.
 */

#include <gtest/gtest.h>

#include "core/mgu.hh"
#include "core/mpu.hh"
#include "core/vmu.hh"
#include "graph/generators.hh"
#include "graph/partition.hh"
#include "noc/network.hh"
#include "sim/event_queue.hh"
#include "workloads/programs.hh"

using namespace nova;
using graph::VertexId;

namespace
{

/** A single-PE rig with every unit wired, over a small star graph. */
struct PeRig
{
    core::NovaConfig cfg;
    graph::Csr g;
    graph::VertexMapping map;
    workloads::SsspProgram prog{0};
    sim::EventQueue eq;
    core::RunCounters counters;
    std::unique_ptr<core::VertexStore> store;
    std::unique_ptr<mem::MemorySystem> vmem;
    std::unique_ptr<mem::MemorySystem> emem;
    std::unique_ptr<mem::DirectMappedCache> cache;
    std::unique_ptr<noc::PePointToPointNetwork> net;
    std::unique_ptr<core::Vmu> vmu;
    std::unique_ptr<core::Mpu> mpu;
    std::unique_ptr<core::Mgu> mgu;

    explicit PeRig(graph::Csr graph_in)
        : g(std::move(graph_in)),
          map(graph::VertexMapping::interleave(g.numVertices(), 1))
    {
        cfg.pesPerGpn = 1;
        cfg.cacheBytesPerPe = 1024;
        cfg.net.numPes = 1;
        cfg.net.pesPerGpn = 1;
        prog.bind(g);
        store = std::make_unique<core::VertexStore>(g, map, 0, cfg,
                                                    prog);
        vmem = std::make_unique<mem::MemorySystem>(
            "vmem", eq, mem::DramTiming::hbm2Channel(), 1);
        emem = std::make_unique<mem::MemorySystem>(
            "emem", eq, mem::DramTiming::ddr4Channel(), 1);
        mem::CacheConfig ccfg;
        ccfg.sizeBytes = cfg.cacheBytesPerPe;
        cache = std::make_unique<mem::DirectMappedCache>("cache", eq,
                                                         ccfg, *vmem);
        noc::NetworkConfig ncfg = cfg.net;
        net = std::make_unique<noc::PePointToPointNetwork>("net", eq,
                                                           ncfg);
        vmu = std::make_unique<core::Vmu>("vmu", eq, cfg, *store, *vmem,
                                          prog);
        mpu = std::make_unique<core::Mpu>("mpu", eq, cfg, 0, *store,
                                          *cache, *net, *vmu, prog, map,
                                          counters);
        mgu = std::make_unique<core::Mgu>("mgu", eq, cfg, 0, *store,
                                          *emem, *net, *vmu, prog, map,
                                          counters);
        mpu->startup();
        mgu->startup();
    }
};

} // namespace

TEST(MpuUnit, ReducesInjectedMessage)
{
    PeRig rig(graph::generateStar(8));
    noc::Message m;
    m.srcPe = 0;
    m.dstPe = 0;
    m.dstVertex = 3;
    m.update = 7;
    ASSERT_TRUE(rig.net->trySend(m));
    rig.eq.run();
    EXPECT_EQ(rig.store->cur(3), 7u);
    EXPECT_EQ(rig.mpu->reductions.value(), 1.0);
    EXPECT_EQ(rig.counters.messagesProcessed, 1u);
}

TEST(MpuUnit, MinReduceKeepsBest)
{
    PeRig rig(graph::generateStar(8));
    for (const std::uint64_t upd : {9u, 4u, 6u}) {
        noc::Message m;
        m.srcPe = 0;
        m.dstPe = 0;
        m.dstVertex = 2;
        m.update = upd;
        ASSERT_TRUE(rig.net->trySend(m));
    }
    rig.eq.run();
    EXPECT_EQ(rig.store->cur(2), 4u);
    // Activations: 9 improves inf, 4 improves 9, 6 does not.
    EXPECT_EQ(rig.mpu->activations.value(), 2.0);
}

TEST(MguUnit, PropagatesAllEdgesOfActiveVertex)
{
    // Star: vertex 0 has 7 out-edges; activating it sends messages to
    // every leaf (all local, so they loop back into the MPU).
    auto g = graph::withRandomWeights(graph::generateStar(8), 9, 5);
    PeRig rig(std::move(g));
    rig.store->cur(0) = 0;
    rig.vmu->activate(0, rig.prog.propagateValue(0, 0));
    rig.eq.run();
    EXPECT_EQ(rig.mgu->messagesSent.value(), 7.0);
    // The hub propagates, and each activated leaf follows with zero
    // edges of its own: 8 vertices total through the MGU.
    EXPECT_EQ(rig.mgu->verticesPropagated.value(), 8.0);
    EXPECT_GE(rig.mgu->rowPtrReads.value(), 1.0);
    // Every leaf received dist = weight of its edge.
    for (VertexId v = 1; v < 8; ++v) {
        ASSERT_NE(rig.store->cur(v), workloads::infProp);
        ASSERT_LE(rig.store->cur(v), 9u);
    }
}

TEST(MguUnit, ChargesEdgeMemoryTraffic)
{
    PeRig rig(graph::generateStar(64));
    rig.store->cur(0) = 0;
    rig.vmu->activate(0, 0);
    rig.eq.run();
    // 63 edges of 8 B plus the row-pointer read: at least 512 B.
    EXPECT_GE(rig.emem->totalBytes(), 512.0);
}

TEST(MguUnit, DegreeZeroVertexCompletesWithoutMessages)
{
    PeRig rig(graph::generateStar(8));
    rig.store->cur(5) = 1; // a leaf: no out-edges
    rig.vmu->activate(5, 1);
    rig.eq.run();
    EXPECT_EQ(rig.mgu->verticesPropagated.value(), 1.0);
    EXPECT_EQ(rig.mgu->messagesSent.value(), 0.0);
}

TEST(PipelineUnit, EndToEndChainTerminatesOnPath)
{
    // Inject dist 0 at the head of a path; the MPU/VMU/MGU loop must
    // ripple it to the tail and then go idle.
    auto g = graph::generatePath(16);
    PeRig rig(std::move(g));
    rig.store->cur(0) = 0;
    rig.vmu->activate(0, 0);
    rig.eq.run();
    for (VertexId v = 0; v < 16; ++v)
        ASSERT_EQ(rig.store->cur(v), v);
    EXPECT_EQ(rig.counters.messagesGenerated, 15u);
    EXPECT_EQ(rig.net->messagesInNetwork(), 0u);
    EXPECT_EQ(rig.vmu->pendingWork(), 0u);
}
