/**
 * @file
 * Unit tests of the vertex programs (operator semantics, payload
 * packing) and the sequential reference implementations.
 */

#include <gtest/gtest.h>

#include "graph/generators.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

using namespace nova;
using namespace nova::workloads;
using graph::VertexId;

TEST(Packing, DoubleRoundTrip)
{
    for (const double d : {0.0, 1.5, -3.25e10, 1e-300}) {
        EXPECT_EQ(unpackDouble(packDouble(d)), d);
    }
}

TEST(Packing, LevelSigmaRoundTrip)
{
    const std::uint64_t p = packLevelSigma(1234, 0x123456789ABULL);
    EXPECT_EQ(unpackLevel(p), 1234u);
    EXPECT_EQ(unpackSigma(p), 0x123456789ABULL);
}

TEST(Packing, ValueLevelKeepsPrecision)
{
    const double v = 0.3333333333333;
    const std::uint64_t p = packValueLevel(v, 77);
    EXPECT_EQ(unpackValueLevel(p), 77u);
    EXPECT_NEAR(unpackValue(p), v, 1e-9 * v);
}

TEST(BfsProgram, Operators)
{
    BfsProgram bfs(3);
    EXPECT_EQ(bfs.mode(), ExecMode::Async);
    EXPECT_EQ(bfs.initialProp(3), 0u);
    EXPECT_EQ(bfs.initialProp(0), infProp);
    EXPECT_EQ(bfs.initialActive(), std::vector<VertexId>{3});
    EXPECT_EQ(bfs.reduce(5, 9, 5), 5u);
    EXPECT_EQ(bfs.reduce(9, 5, 9), 5u);
    EXPECT_EQ(bfs.propagate(4, 100), 5u); // weight ignored
    EXPECT_TRUE(bfs.activates(9, 5));
    EXPECT_FALSE(bfs.activates(5, 5));
}

TEST(SsspProgram, UsesWeights)
{
    SsspProgram sssp(0);
    EXPECT_EQ(sssp.propagate(10, 7), 17u);
    EXPECT_EQ(sssp.reduce(20, 17, 20), 17u);
}

TEST(CcProgram, AllVerticesStartActive)
{
    const auto g = graph::generateCycle(6);
    CcProgram cc;
    cc.bind(g);
    EXPECT_EQ(cc.initialActive().size(), 6u);
    EXPECT_EQ(cc.initialProp(4), 4u);
    EXPECT_EQ(cc.propagate(2, 55), 2u); // label, weight ignored
}

TEST(PageRankProgram, BarrierAccumulatesRank)
{
    const auto g = graph::generateComplete(4);
    PageRankProgram pr(0.85, 1e-9, 10);
    pr.bind(g);
    const double base = 0.15 / 4;
    EXPECT_NEAR(unpackDouble(pr.initialProp(0)), base, 1e-12);
    // A vertex receiving 0.1 of delta gains 0.1 of rank.
    const auto out = pr.bspApply(packDouble(base), packDouble(0.1), 2);
    EXPECT_TRUE(out.active);
    EXPECT_NEAR(pr.rank()[2], base + 0.1, 1e-12);
    EXPECT_NEAR(unpackDouble(out.newCur), 0.1, 1e-12);
    EXPECT_EQ(unpackDouble(out.newAcc), 0.0);
    // Tiny deltas deactivate.
    const auto idle = pr.bspApply(packDouble(0.1), packDouble(1e-12), 2);
    EXPECT_FALSE(idle.active);
}

TEST(PageRankProgram, PropagateDividesByDegree)
{
    const auto g = graph::generateStar(5); // vertex 0 has degree 4
    PageRankProgram pr(0.85, 1e-9, 10);
    pr.bind(g);
    const std::uint64_t v =
        pr.propagateValue(packDouble(0.4), 0);
    EXPECT_NEAR(unpackDouble(v), 0.85 * 0.4 / 4, 1e-12);
    // Degree-0 vertices contribute nothing.
    EXPECT_EQ(unpackDouble(pr.propagateValue(packDouble(0.4), 3)), 0.0);
}

TEST(BcForwardProgram, SigmaAccumulatesAtEqualLevel)
{
    BcForwardProgram fwd(0);
    const std::uint64_t a = packLevelSigma(2, 3);
    const std::uint64_t b = packLevelSigma(2, 5);
    const std::uint64_t merged = fwd.reduce(a, b, a);
    EXPECT_EQ(unpackLevel(merged), 2u);
    EXPECT_EQ(unpackSigma(merged), 8u);
    // Lower level wins outright.
    const std::uint64_t lower = packLevelSigma(1, 7);
    EXPECT_EQ(fwd.reduce(a, lower, a), lower);
    EXPECT_EQ(fwd.reduce(lower, a, lower), lower);
}

TEST(BcForwardProgram, BarrierActivatesOnImprovement)
{
    BcForwardProgram fwd(0);
    const std::uint64_t unreached =
        packLevelSigma(BcForwardProgram::unreachedLevel, 0);
    const auto out = fwd.bspApply(unreached, packLevelSigma(3, 2), 1);
    EXPECT_TRUE(out.active);
    EXPECT_EQ(unpackLevel(out.newCur), 3u);
    // Stale (deeper) accumulations do not reactivate.
    const auto stale =
        fwd.bspApply(packLevelSigma(3, 2), packLevelSigma(4, 9), 1);
    EXPECT_FALSE(stale.active);
    EXPECT_EQ(unpackLevel(stale.newCur), 3u);
}

TEST(BcBackwardProgram, FiltersByLevel)
{
    const auto g = graph::symmetrize(graph::generatePath(4));
    std::vector<std::uint32_t> level = {0, 1, 2, 3};
    std::vector<std::uint64_t> sigma = {1, 1, 1, 1};
    BcBackwardProgram bwd(level, sigma, 3);
    bwd.bind(g);
    // A message from level 2 is accepted by a level-1 vertex...
    const std::uint64_t upd = packValueLevel(0.5, 2);
    const std::uint64_t cur1 = packLevelSigma(1, 1);
    EXPECT_NEAR(unpackDouble(bwd.reduce(packDouble(0.0), upd, cur1)),
                0.5, 1e-9);
    // ...but rejected by a level-2 or level-0 vertex.
    const std::uint64_t cur2 = packLevelSigma(2, 1);
    EXPECT_EQ(bwd.reduce(packDouble(0.0), upd, cur2), packDouble(0.0));
    const std::uint64_t cur0 = packLevelSigma(0, 1);
    EXPECT_EQ(bwd.reduce(packDouble(0.0), upd, cur0), packDouble(0.0));
}

TEST(BcBackwardProgram, ScheduleDescendsFromDeepest)
{
    const auto g = graph::symmetrize(graph::generatePath(4));
    std::vector<std::uint32_t> level = {0, 1, 2,
                                        BcForwardProgram::unreachedLevel};
    std::vector<std::uint64_t> sigma = {1, 1, 1, 0};
    BcBackwardProgram bwd(level, sigma, 2);
    bwd.bind(g);
    EXPECT_EQ(bwd.scheduledActivation(2), 0);
    EXPECT_EQ(bwd.scheduledActivation(1), 1);
    EXPECT_EQ(bwd.scheduledActivation(0), 2);
    EXPECT_EQ(bwd.scheduledActivation(3), -1); // unreached
}

TEST(Reference, BfsOnKnownShapes)
{
    const auto star = graph::generateStar(5);
    const auto d = reference::bfsDepths(star, 0);
    EXPECT_EQ(d[0], 0u);
    for (VertexId v = 1; v < 5; ++v)
        EXPECT_EQ(d[v], 1u);
    // Unreached from a leaf.
    const auto d2 = reference::bfsDepths(star, 1);
    EXPECT_EQ(d2[0], infProp);
}

TEST(Reference, SsspPrefersLightPath)
{
    graph::EdgeList list;
    list.numVertices = 3;
    list.edges = {{0, 2, 10}, {0, 1, 2}, {1, 2, 3}};
    const auto g = graph::buildCsr(list);
    const auto d = reference::ssspDistances(g, 0);
    EXPECT_EQ(d[2], 5u); // via vertex 1
}

TEST(Reference, CcLabelsAreComponentMinima)
{
    graph::EdgeList list;
    list.numVertices = 6;
    list.edges = {{5, 4, 1}, {4, 3, 1}, {1, 2, 1}};
    const auto g = graph::buildCsr(list);
    const auto labels = reference::ccLabels(g);
    EXPECT_EQ(labels[5], 3u);
    EXPECT_EQ(labels[4], 3u);
    EXPECT_EQ(labels[3], 3u);
    EXPECT_EQ(labels[1], 1u);
    EXPECT_EQ(labels[2], 1u);
    EXPECT_EQ(labels[0], 0u);
}

TEST(Reference, PagerankSumsBelowOne)
{
    graph::RmatParams p;
    p.numVertices = 256;
    p.numEdges = 2048;
    p.seed = 10;
    const auto g = graph::generateRmat(p);
    const auto rank = reference::pagerankDelta(g, 0.85, 1e-12, 30);
    double sum = 0;
    for (const double r : rank) {
        EXPECT_GE(r, 0.0);
        sum += r;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_GT(sum, 0.1);
}

TEST(Reference, BcPathDependencies)
{
    // On a path 0-1-2-3 (symmetric), delta from source 0:
    // delta[2] = 1 (for 3), delta[1] = 2 (for 2 and 3), delta[3] = 0.
    const auto g = graph::symmetrize(graph::generatePath(4));
    const auto delta = reference::bcDependencies(g, 0);
    EXPECT_NEAR(delta[1], 2.0, 1e-12);
    EXPECT_NEAR(delta[2], 1.0, 1e-12);
    EXPECT_NEAR(delta[3], 0.0, 1e-12);
}

TEST(Reference, SequentialEdgeWorkCountsReachedDegrees)
{
    const auto g = graph::generateStar(5);
    EXPECT_EQ(reference::sequentialEdgeWork(g, 0), 4u);
    EXPECT_EQ(reference::sequentialEdgeWork(g, 1), 0u);
}
