/**
 * @file
 * Table III: the evaluation graphs — footprint, vertex/edge counts
 * and PolyGraph's slice count at the (scaled) 32 MiB on-chip memory —
 * plus measured structural statistics of the scaled stand-ins.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 1000);
    printHeader("Table III", "graph workloads used in the evaluation",
                opts);

    const baselines::PolyGraphConfig pg = pgConfig(opts.scale);

    std::printf("%-11s | %-20s | %-9s %-11s | %-10s %-7s | %-8s %-9s "
                "%-7s\n",
                "graph", "paper (V, E)", "verts", "edges",
                "footprint", "slices", "avgDeg", "maxDeg", "diam>=");
    for (const auto &named : graph::paperGraphs(opts.scale)) {
        const auto stats = graph::computeStats(named.graph);
        char paper[32];
        std::snprintf(paper, sizeof(paper), "%.1fM, %.2fB",
                      static_cast<double>(named.paperVertices) / 1e6,
                      static_cast<double>(named.paperEdges) / 1e9);
        std::printf("%-11s | %-20s | %-9u %-11llu | %7.1f MiB %-7u | "
                    "%-8.1f %-9llu %-7u\n",
                    named.name.c_str(), paper, stats.numVertices,
                    static_cast<unsigned long long>(stats.numEdges),
                    static_cast<double>(stats.footprintBytes) /
                        (1 << 20),
                    pg.numSlices(stats.numVertices), stats.avgDegree,
                    static_cast<unsigned long long>(stats.maxDegree),
                    stats.approxDiameter);
    }
    std::printf("\nslices = PolyGraph temporal slices at the scaled "
                "32 MiB on-chip memory\n(paper: 3 / 5 / 8 / 13 / 16).\n");
    return 0;
}
