/**
 * @file
 * Figure 9a: sensitivity of a single GPN to the per-PE cache size
 * (paper: 64 KiB to 4 MiB, <2% difference on large graphs; RoadUSA
 * speeds up once most of the graph fits on-chip).
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 500);
    printHeader("Figure 9a",
                "sensitivity to per-PE cache size (single GPN, BFS)",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeRoadUsa(opts.scale)));
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));

    const std::uint64_t paper_sizes[] = {64 << 10, 256 << 10, 1 << 20,
                                         4 << 20};

    std::printf("%-11s %-12s %-10s | %-12s %-9s %-9s | %s\n", "graph",
                "paperCache", "scaled", "time (ms)", "GTEPS",
                "hitRate%", "valid");
    for (const BenchGraph &bg : graphs) {
        double base_ms = 0;
        for (const std::uint64_t paper_bytes : paper_sizes) {
            core::NovaConfig cfg = novaConfig(opts.scale);
            cfg.cacheBytesPerPe = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(
                    8 * cfg.blockBytes,
                    static_cast<std::uint64_t>(
                        static_cast<double>(paper_bytes) / opts.scale)));
            const auto run = runOnNova(cfg, "bfs", bg);
            const double ms = run.seconds() * 1e3;
            if (base_ms == 0)
                base_ms = ms;
            const auto &ex = run.result.extra;
            const double hits = ex.at("cache.hits");
            const double misses = ex.at("cache.misses");
            std::printf("%-11s %-12llu %-10u | %-12.3f %-9.2f %-9.1f "
                        "| %s (vs smallest: %+0.1f%%)\n",
                        bg.name().c_str(),
                        static_cast<unsigned long long>(paper_bytes),
                        cfg.cacheBytesPerPe, ms, run.gteps(),
                        100 * hits / std::max(1.0, hits + misses),
                        run.valid ? "ok" : "BAD",
                        100 * (base_ms - ms) / base_ms);
        }
    }
    return 0;
}
