/**
 * @file
 * Figure 7: strong scaling — fixed graph, growing GPN count (1..8),
 * for BFS (data-driven) and BC (topology-driven).
 *
 * Paper shape: near-perfect scaling (worst case ~19% off ideal);
 * Urand can scale super-linearly thanks to improved work efficiency.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 7", "strong scaling over GPNs (BFS and BC)",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));
    graphs.push_back(prepare(graph::makeUrand(opts.scale)));

    for (const std::string wl : {"bfs", "bc"}) {
        std::printf("\nworkload: %s\n", wl.c_str());
        std::printf("%-11s %-6s | %-12s %-10s %-10s | %s\n", "graph",
                    "GPNs", "time (ms)", "speedup", "ideal", "valid");
        for (const BenchGraph &bg : graphs) {
            double base_ms = 0;
            for (const std::uint32_t gpns : {1u, 2u, 4u, 8u}) {
                const auto run =
                    runOnNova(novaConfig(opts.scale, gpns), wl, bg);
                const double ms = run.seconds() * 1e3;
                if (gpns == 1)
                    base_ms = ms;
                std::printf("%-11s %-6u | %-12.3f %-10.2f %-10u | %s\n",
                            bg.name().c_str(), gpns, ms,
                            ms > 0 ? base_ms / ms : 0, gpns,
                            run.valid ? "ok" : "BAD");
            }
        }
    }
    return 0;
}
