/**
 * @file
 * Ablation: active-buffer size. The paper (Sec. III-D) reports that
 * "making the active buffer bigger than 80 entries has diminishing
 * returns" — this sweep reproduces the knee.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Ablation", "active-buffer size (BFS, single GPN)",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));
    graphs.push_back(prepare(graph::makeUrand(opts.scale)));

    std::printf("%-11s %-9s | %-12s %-9s | %-11s %-11s | %s\n", "graph",
                "entries", "time (ms)", "GTEPS", "spills",
                "coalesce%", "valid");
    for (const BenchGraph &bg : graphs) {
        for (const std::uint32_t entries : {8u, 16u, 40u, 80u, 160u,
                                            320u}) {
            core::NovaConfig cfg = novaConfig(opts.scale);
            cfg.activeBufferEntries = entries;
            cfg.prefetchThreshold =
                std::min(cfg.prefetchThreshold, entries / 2);
            const auto run = runOnNova(cfg, "bfs", bg);
            std::printf("%-11s %-9u | %-12.3f %-9.2f | %-11.0f %-11.2f "
                        "| %s\n",
                        bg.name().c_str(), entries, run.seconds() * 1e3,
                        run.gteps(), run.result.extra.at("vmu.spills"),
                        100 * run.result.coalescingRate(),
                        run.valid ? "ok" : "BAD");
        }
    }
    return 0;
}
