/**
 * @file
 * Figure 6: execution-time breakdown, NOVA vs. PolyGraph (BFS).
 *
 * NOVA's overhead is time spent reading inactive vertices while
 * searching for active ones (overfetch); PolyGraph's is slice
 * switching plus redundant re-processing. Paper shape: PolyGraph's
 * processing is faster, but its overheads grow with graph size until
 * they dominate.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 6",
                "execution-time breakdown, NOVA vs PolyGraph (BFS)",
                opts);

    std::printf("%-11s | %-11s %-11s | %-11s %-11s | %s\n", "graph",
                "NOVA proc%", "NOVA ovh%", "PG proc%", "PG ovh%",
                "valid");
    for (const BenchGraph &bg : prepareAll(opts.scale)) {
        const auto nova_run = runOnNova(novaConfig(opts.scale), "bfs",
                                        bg);
        const auto pg_run = runOnPolyGraph(pgConfig(opts.scale), "bfs",
                                           bg);

        // NOVA overfetch share: wasteful vertex-memory bytes over all
        // vertex-memory traffic.
        const auto &ex = nova_run.result.extra;
        const double vertex_bytes = ex.at("vertexMem.bytesRead") +
                                    ex.at("vertexMem.bytesWritten");
        const double nova_ovh =
            vertex_bytes > 0
                ? ex.at("vertexMem.wastefulPrefetchBytes") / vertex_bytes
                : 0;

        const auto &px = pg_run.result.extra;
        const double pg_total = px.at("pg.processingTicks") +
                                px.at("pg.inefficiencyTicks") +
                                px.at("pg.switchingTicks");
        const double pg_ovh = (px.at("pg.inefficiencyTicks") +
                               px.at("pg.switchingTicks")) /
                              pg_total;

        std::printf("%-11s | %-11.1f %-11.1f | %-11.1f %-11.1f | %s%s\n",
                    bg.name().c_str(), 100 * (1 - nova_ovh),
                    100 * nova_ovh, 100 * (1 - pg_ovh), 100 * pg_ovh,
                    nova_run.valid ? "n:ok " : "n:BAD ",
                    pg_run.valid ? "p:ok" : "p:BAD");
    }
    return 0;
}
