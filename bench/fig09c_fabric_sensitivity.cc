/**
 * @file
 * Figure 9c: sensitivity to the interconnect fabric (8-GPN system):
 * the proposed hierarchical fabric (intra-GPN point-to-point links +
 * inter-GPN crossbar) vs. an ideal infinite-bandwidth network.
 *
 * Paper shape: the hierarchical fabric performs like the ideal one —
 * the crossbar is not a bottleneck.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 9c",
                "sensitivity to fabric topology (8 GPNs, BFS)", opts);

    std::printf("%-11s %-14s | %-12s %-9s %-12s | %s\n", "graph",
                "fabric", "time (ms)", "GTEPS", "avgLat (ns)", "valid");
    for (BenchGraph &bg : prepareAll(opts.scale)) {
        for (const auto kind : {noc::FabricKind::Hierarchical,
                                noc::FabricKind::Ideal}) {
            core::NovaConfig cfg = novaConfig(opts.scale, 8);
            cfg.fabric = kind;
            const auto run = runOnNova(cfg, "bfs", bg);
            std::printf("%-11s %-14s | %-12.3f %-9.2f %-12.1f | %s\n",
                        bg.name().c_str(),
                        kind == noc::FabricKind::Ideal ? "ideal-p2p"
                                                       : "hierarchical",
                        run.seconds() * 1e3, run.gteps(),
                        run.result.extra.at("net.avgLatency") / 1000.0,
                        run.valid ? "ok" : "BAD");
        }
    }
    return 0;
}
