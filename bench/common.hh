/**
 * @file
 * Shared infrastructure for the figure/table reproduction benches:
 * option parsing, engine construction at the experiment scale,
 * workload execution with functional validation against the
 * sequential references, and table printing.
 *
 * Every bench accepts:
 *   --scale=<S>   scale denominator for graphs and on-chip capacities
 *   --quick       use a larger scale (faster, coarser)
 * and validates every simulated result against the reference.
 */

#ifndef NOVA_BENCH_COMMON_HH
#define NOVA_BENCH_COMMON_HH

#include <optional>
#include <string>
#include <vector>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "core/system.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/bc.hh"
#include "workloads/engine.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

namespace nova::bench
{

/** PageRank parameters used consistently across engines and refs. */
constexpr double prDamping = 0.85;
constexpr double prTolerance = 1e-7;
constexpr std::uint64_t prIterations = 5;

/** Parsed command-line options. */
struct Options
{
    double scale = 1000.0;
    bool quick = false;

    /** Parse argv; `default_scale` is the bench's preferred scale. */
    static Options parse(int argc, char **argv, double default_scale);
};

/** A prepared input: the graph, its symmetric closure and a source. */
struct BenchGraph
{
    graph::NamedGraph named;
    graph::Csr sym;
    graph::VertexId src = 0;
    graph::VertexId symSrc = 0;

    const graph::Csr &g() const { return named.graph; }
    const std::string &name() const { return named.name; }
};

/** Symmetrize and pick sources for a preset graph. */
BenchGraph prepare(graph::NamedGraph named);

/** All five Table III graphs, prepared, in paper order. */
std::vector<BenchGraph> prepareAll(double scale);

/** A NOVA system at the experiment scale. */
core::NovaConfig novaConfig(double scale, std::uint32_t gpns = 1);

/** A PolyGraph baseline at the experiment scale (iso-bandwidth). */
baselines::PolyGraphConfig pgConfig(double scale);

/** The five paper workloads, in Fig. 4 order. */
const std::vector<std::string> &allWorkloads();

/** Outcome of one (engine, workload, graph) execution. */
struct WorkloadRun
{
    std::string workload;
    workloads::RunResult result;
    /** Functional output matches the sequential reference. */
    bool valid = false;
    /** Edges a work-optimal execution would traverse. */
    std::uint64_t usefulEdges = 0;

    double
    workEfficiency() const
    {
        return result.messagesGenerated == 0
                   ? 1.0
                   : static_cast<double>(usefulEdges) /
                         static_cast<double>(result.messagesGenerated);
    }

    double seconds() const { return result.seconds(); }
    double gteps() const { return result.gteps(); }
};

/**
 * Run one workload ("bfs", "sssp", "cc", "pr", "bc") on an engine and
 * validate the result. CC and BC run on the symmetric closure. BC
 * combines its forward and backward passes.
 */
WorkloadRun runWorkload(workloads::GraphEngine &engine,
                        const std::string &workload, const BenchGraph &bg,
                        const graph::VertexMapping &map,
                        const graph::VertexMapping &sym_map);

/** Convenience: build maps and run on a freshly-built NOVA system. */
WorkloadRun runOnNova(const core::NovaConfig &cfg,
                      const std::string &workload, const BenchGraph &bg,
                      std::uint64_t map_seed = 1);

/** Convenience: run on the PolyGraph model. */
WorkloadRun runOnPolyGraph(const baselines::PolyGraphConfig &cfg,
                           const std::string &workload,
                           const BenchGraph &bg);

/** Convenience: run on the Ligra-like software engine. */
WorkloadRun runOnLigra(const std::string &workload, const BenchGraph &bg);

/** Print the bench banner. */
void printHeader(const std::string &experiment, const std::string &title,
                 const Options &opts);

} // namespace nova::bench

#endif // NOVA_BENCH_COMMON_HH
