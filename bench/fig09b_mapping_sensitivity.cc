/**
 * @file
 * Figure 9b: sensitivity to the spatial vertex mapping (8-GPN system):
 * random (no preprocessing), load-balanced (degree round-robin) and
 * locality-optimised (RABBIT-like communities).
 *
 * Paper shape: locality-optimised wins by at most ~20% thanks to lower
 * network traffic; random and load-balanced are close.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 9b",
                "sensitivity to spatial vertex mapping (8 GPNs, BFS)",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeRoadUsa(opts.scale)));
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));

    const core::NovaConfig cfg = novaConfig(opts.scale, 8);

    std::printf("%-11s %-14s | %-12s %-9s | %-9s %-11s | %s\n", "graph",
                "mapping", "time (ms)", "GTEPS", "cut%", "crossGpn%",
                "valid");
    for (const BenchGraph &bg : graphs) {
        for (const std::string kind :
             {"random", "load-balanced", "locality"}) {
            graph::VertexMapping map;
            if (kind == "random")
                map = graph::randomMapping(bg.g().numVertices(),
                                           cfg.totalPes(), 1);
            else if (kind == "load-balanced")
                map = graph::loadBalancedMapping(bg.g(), cfg.totalPes());
            else
                map = graph::localityMapping(bg.g(), cfg.totalPes());
            // CC/BC unused here; reuse the directed map for symmetry.
            core::NovaSystem nova(cfg);
            const auto run = runWorkload(nova, "bfs", bg, map, map);
            const double cut = graph::cutFraction(bg.g(), map);
            const auto &ex = run.result.extra;
            const double cross =
                ex.at("net.crossGpnMessages") /
                std::max(1.0, ex.at("net.messages") +
                                  ex.at("net.selfMessages"));
            std::printf("%-11s %-14s | %-12.3f %-9.2f | %-9.1f %-11.1f "
                        "| %s\n",
                        bg.name().c_str(), kind.c_str(),
                        run.seconds() * 1e3, run.gteps(), 100 * cut,
                        100 * cross, run.valid ? "ok" : "BAD");
        }
    }
    return 0;
}
