/**
 * @file
 * Table IV: resources needed to support the WDC12 graph (3.5 B
 * vertices, ~129 B edges) for NOVA, PolyGraph (sliced + non-sliced)
 * and Dalorex, from the analytical scaling models.
 */

#include <cstdio>

#include "analytic/scaling.hh"

using namespace nova::analytic;

namespace
{

void
printRow(const AcceleratorRequirements &r)
{
    char hbm[40] = "-";
    if (r.hbmStacks > 0)
        std::snprintf(hbm, sizeof(hbm), "%u (%.3f TiB)", r.hbmStacks,
                      r.hbmGiB / 1024.0);
    char ddr[40] = "-";
    if (r.ddrChannels > 0)
        std::snprintf(ddr, sizeof(ddr), "%u (%.0f GiB)", r.ddrChannels,
                      r.ddrGiB);
    char sram[40];
    if (r.sramMiB >= 1024.0)
        std::snprintf(sram, sizeof(sram), "%.2f GiB",
                      r.sramMiB / 1024.0);
    else
        std::snprintf(sram, sizeof(sram), "%.1f MiB", r.sramMiB);
    std::printf("%-22s %-18s %-16s %-12s %-8u %-6u\n", r.name.c_str(),
                hbm, ddr, sram, r.cores, r.slices);
}

} // namespace

int
main()
{
    std::printf("=================================================="
                "==========================\n");
    std::printf("Table IV: requirements to support WDC12 "
                "(%.0f GiB vertices + %.0f GiB edges)\n",
                wdc12().vertexGiB(), wdc12().edgeGiB());
    std::printf("=================================================="
                "==========================\n");
    std::printf("%-22s %-18s %-16s %-12s %-8s %-6s\n", "accelerator",
                "HBM stacks", "DDR channels", "SRAM/eDRAM", "cores",
                "slices");
    printRow(novaRequirements(wdc12()));
    printRow(polygraphRequirements(wdc12()));
    printRow(polygraphNonSlicedRequirements(wdc12()));
    printRow(dalorexRequirements(wdc12()));
    std::printf("\npaper: NOVA 14 stacks / 56 DDR ch / 21 MiB / 112 "
                "cores / 1 slice;\nPolyGraph 136 stacks / 4 GiB / 2176 "
                "cores / 15 slices;\nPolyGraph non-sliced 128 stacks / "
                "56 GiB / 6400 cores;\nDalorex 1 TiB SRAM / 249661 "
                "cores.\n");
    return 0;
}
