/**
 * @file
 * Table II: the system specification of one GPN, both at the paper's
 * full-size values and at the experiment scale, including the tracker
 * capacities from Eq. 1 and Eq. 2.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 1000);
    printHeader("Table II", "system specification per GPN", opts);

    const core::NovaConfig paper; // unscaled defaults
    const core::NovaConfig scaled = novaConfig(opts.scale);

    std::printf("%-28s %-28s %s\n", "parameter", "paper", "scaled");
    std::printf("%-28s %u @ %.1f GHz\n", "# PE", paper.pesPerGpn,
                paper.clockGHz);
    std::printf("%-28s %-28s %u B\n", "cache / PE",
                "64 KiB", scaled.cacheBytesPerPe);
    std::printf("%-28s %.2f MiB (Eq.1-2)           %.2f KiB\n",
                "tracker (VMU) / GPN",
                static_cast<double>(paper.trackerBitsPerGpn()) / 8 /
                    (1 << 20),
                static_cast<double>(
                    core::trackerCapacityBits(
                        scaled.vertexMemBytesPerPe, scaled.superblockDim,
                        scaled.blockBytes) *
                    scaled.pesPerGpn) /
                    8 / 1024);
    std::printf("%-28s HBM2 stack, %.0f GB/s, 4 GiB\n", "vertex memory",
                paper.vertexMem.peakBytesPerSec() * paper.pesPerGpn /
                    1e9);
    std::printf("%-28s %u DDR4 channels, %.1f GB/s, 128 GiB\n",
                "edge memory", paper.edgeChannelsPerGpn,
                paper.edgeMem.peakBytesPerSec() *
                    paper.edgeChannelsPerGpn / 1e9);
    std::printf("%-28s %u reduce + %u propagate\n",
                "functional units / GPN",
                paper.reduceFusPerPe * paper.pesPerGpn,
                paper.propagateFusPerPe * paper.pesPerGpn);
    std::printf("%-28s 8x8 point-to-point, %.1f GB/s per link\n",
                "PE-PE network", paper.net.linkGBs);
    std::printf("%-28s crossbar, %.0f GB/s per port\n",
                "inter-GPN network", paper.net.portGBs);
    std::printf("%-28s %u blocks of %u B (%u vertices/block)\n",
                "superblock", paper.superblockDim, paper.blockBytes,
                paper.vertsPerBlock());
    std::printf("%-28s %u entries, prefetch %u blocks @ threshold %u\n",
                "active buffer", paper.activeBufferEntries,
                paper.prefetchBurstBlocks, paper.prefetchThreshold);
    std::printf("%-28s %.1f GB/s\n", "GPN aggregate bandwidth",
                paper.gpnBandwidthGBs());
    return 0;
}
