/**
 * @file
 * Ablation: tracker counter policy. Listing 1's event counting can
 * over-estimate active blocks (extra wasted scans, reconciled at
 * superblock end); exact block-transition counting is the idealised
 * alternative. Both must produce identical results; the cost shows in
 * wasted vertex-memory bandwidth.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Ablation", "tracker counter policy (BFS, single GPN)",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeRoadUsa(opts.scale)));
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));

    std::printf("%-11s %-12s | %-12s %-9s | %-13s %-14s | %s\n",
                "graph", "policy", "time (ms)", "GTEPS",
                "wastefulKiB", "reconciles", "valid");
    for (const BenchGraph &bg : graphs) {
        for (const auto policy : {core::TrackerPolicy::ExactBlockCount,
                                  core::TrackerPolicy::EventCount}) {
            core::NovaConfig cfg = novaConfig(opts.scale);
            cfg.tracker = policy;
            // Pressure the buffer so tracking actually engages.
            cfg.activeBufferEntries = 16;
            cfg.prefetchThreshold = 8;
            const auto run = runOnNova(cfg, "bfs", bg);
            std::printf("%-11s %-12s | %-12.3f %-9.2f | %-13.1f %-14.0f "
                        "| %s\n",
                        bg.name().c_str(),
                        policy == core::TrackerPolicy::ExactBlockCount
                            ? "exact"
                            : "event-count",
                        run.seconds() * 1e3, run.gteps(),
                        run.result.extra.at(
                            "vertexMem.wastefulPrefetchBytes") /
                            1024.0,
                        run.result.extra.at(
                            "vmu.counterReconciliations"),
                        run.valid ? "ok" : "BAD");
        }
    }
    return 0;
}
