/**
 * @file
 * Table I: trade-offs of the two active-vertex spilling methods —
 * off-chip FIFO buffer vs. overwriting in the vertex set (NOVA's
 * choice). The off-chip buffer needs two writes per spill and cannot
 * coalesce, so it sends more messages; overwriting costs nothing extra
 * and coalesces in DRAM.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Table I", "spilling-method ablation (BFS)", opts);

    std::printf("%-11s %-20s | %-12s %-11s %-12s %-10s | %s\n", "graph",
                "policy", "time (ms)", "messages", "extraWrites",
                "coalesce%", "valid");
    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));
    graphs.push_back(prepare(graph::makeUrand(opts.scale)));
    for (const BenchGraph &bg : graphs) {
        for (const auto policy : {core::SpillPolicy::OverwriteVertexSet,
                                  core::SpillPolicy::OffChipFifo}) {
            core::NovaConfig cfg = novaConfig(opts.scale);
            cfg.spill = policy;
            // A small buffer makes spilling frequent enough to expose
            // the policy difference at bench scale.
            cfg.activeBufferEntries = 32;
            cfg.prefetchThreshold = 8;
            cfg.prefetchBurstBlocks = 8;
            core::NovaSystem nova(cfg);
            const auto map = graph::randomMapping(
                bg.g().numVertices(), cfg.totalPes(), 1);
            const auto run = runWorkload(nova, "bfs", bg, map, map);
            std::printf(
                "%-11s %-20s | %-12.3f %-11llu %-12.0f %-10.2f | %s\n",
                bg.name().c_str(),
                policy == core::SpillPolicy::OverwriteVertexSet
                    ? "overwrite-vertexset"
                    : "offchip-fifo",
                run.seconds() * 1e3,
                static_cast<unsigned long long>(
                    run.result.messagesGenerated),
                run.result.extra.at("vmu.fifoWrites"),
                100 * run.result.coalescingRate(),
                run.valid ? "ok" : "BAD");
        }
    }
    std::printf("\nOff-chip FIFO pays one extra 16 B write per spill "
                "and, lacking coalescing,\npropagates duplicate "
                "activations (more messages, longer runtime).\n");
    return 0;
}
