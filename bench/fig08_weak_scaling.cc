/**
 * @file
 * Figure 8: weak scaling — RMAT21..24 equivalents on 1/2/4/8 GPNs
 * (fixed problem size per node), BFS.
 *
 * Paper shape: execution time stays roughly constant as GPNs and
 * graph double together (ideal weak scaling = flat).
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 1000);
    printHeader("Figure 8",
                "weak scaling (RMAT21-24 equivalents, BFS)", opts);

    std::printf("%-9s %-6s | %-9s %-11s | %-12s %-10s | %s\n", "graph",
                "GPNs", "verts", "edges", "time (ms)", "norm", "valid");
    double base_ms = 0;
    const int exps[] = {21, 22, 23, 24};
    const std::uint32_t gpns_per[] = {1, 2, 4, 8};
    for (int i = 0; i < 4; ++i) {
        const BenchGraph bg =
            prepare(graph::makeRmatN(exps[i], opts.scale));
        const auto run =
            runOnNova(novaConfig(opts.scale, gpns_per[i]), "bfs", bg);
        const double ms = run.seconds() * 1e3;
        if (i == 0)
            base_ms = ms;
        std::printf("%-9s %-6u | %-9u %-11llu | %-12.3f %-10.2f | %s\n",
                    bg.name().c_str(), gpns_per[i],
                    bg.g().numVertices(),
                    static_cast<unsigned long long>(bg.g().numEdges()),
                    ms, base_ms > 0 ? ms / base_ms : 0,
                    run.valid ? "ok" : "BAD");
    }
    std::printf("\nnorm = time / time(1 GPN); 1.0 everywhere is ideal "
                "weak scaling.\n");
    return 0;
}
