/**
 * @file
 * Google-benchmark microbenchmarks of the simulation substrates:
 * event-queue throughput, DRAM-channel service rate, cache hit path
 * and graph generation. These guard the simulator's own performance
 * (wall-clock per simulated event), not the modelled system's.
 */

#include <benchmark/benchmark.h>

#include "graph/generators.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"

using namespace nova;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        std::uint64_t sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(static_cast<sim::Tick>(i * 100),
                        [&sink, i] { sink += i; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_DramRandomAccess(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        mem::DramChannel ch("ch", eq, mem::DramTiming::hbm2Channel());
        sim::Rng rng(7);
        std::uint64_t done = 0;
        std::uint64_t issued = 0;
        std::function<void()> pump = [&ch, &rng, &done, &issued, &pump] {
            while (issued < 4096 &&
                   ch.tryAccess(rng.next() % (1 << 26), false,
                                [&done] { ++done; }))
                ++issued;
            if (issued < 4096)
                ch.waitForSpace([&pump] { pump(); });
        };
        pump();
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DramRandomAccess);

void
BM_CacheHitPath(benchmark::State &state)
{
    for (auto _ : state) {
        sim::EventQueue eq;
        mem::MemorySystem mem("mem", eq, mem::DramTiming::hbm2Channel(),
                              1);
        mem::CacheConfig cfg;
        cfg.sizeBytes = 4096;
        mem::DirectMappedCache cache("cache", eq, cfg, mem);
        std::uint64_t done = 0;
        for (int round = 0; round < 8; ++round)
            for (sim::Addr a = 0; a < 4096; a += 32)
                cache.access(a, round & 1, [&done] { ++done; });
        eq.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 8 * 128);
}
BENCHMARK(BM_CacheHitPath);

void
BM_RmatGeneration(benchmark::State &state)
{
    graph::RmatParams p;
    p.numVertices = 1 << 14;
    p.numEdges = 1 << 17;
    for (auto _ : state) {
        p.seed++;
        auto g = graph::generateRmat(p);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * p.numEdges);
}
BENCHMARK(BM_RmatGeneration);

} // namespace

BENCHMARK_MAIN();
