/**
 * @file
 * Figure 10: vertex-memory bandwidth breakdown (useful reads, writes,
 * wasteful reads) against the tracker-module size (superblock_dim in
 * {32, 64, 128, 256} -> 3 MiB..576 KiB per GPN by Eq. 1-2), for BFS
 * and PR on RoadUSA- and Twitter-equivalents.
 *
 * Paper shape: the breakdown is insensitive to the tracker size;
 * sparse-frontier workloads on high-diameter graphs (RoadUSA BFS)
 * waste the most bandwidth; dense frontiers (PR) waste little.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 10",
                "vertex-memory bandwidth breakdown vs tracker size",
                opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeRoadUsa(opts.scale)));
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));

    std::printf("%-11s %-4s %-7s %-12s | %-9s %-8s %-9s | %s\n",
                "graph", "wl", "sbDim", "trackerGPN", "useful%",
                "write%", "wasteful%", "valid");
    for (const BenchGraph &bg : graphs) {
        for (const std::string wl : {"bfs", "pr"}) {
            for (const std::uint32_t dim : {32u, 64u, 128u, 256u}) {
                core::NovaConfig cfg = novaConfig(opts.scale);
                cfg.superblockDim = dim;
                const auto run = runOnNova(cfg, wl, bg);
                const auto &ex = run.result.extra;
                const double wasted =
                    ex.at("vertexMem.wastefulPrefetchBytes");
                const double written =
                    ex.at("vertexMem.bytesWritten");
                const double read = ex.at("vertexMem.bytesRead");
                const double useful_read = read - wasted;
                const double total = read + written;
                // Tracker capacity by Eq. 1-2 at full (unscaled) HBM
                // capacity, as the paper reports it.
                core::NovaConfig paper_cfg;
                paper_cfg.superblockDim = dim;
                const double tracker_mib =
                    static_cast<double>(paper_cfg.trackerBitsPerGpn()) /
                    8.0 / (1 << 20);
                std::printf("%-11s %-4s %-7u %-9.2fMiB | %-9.1f %-8.1f "
                            "%-9.1f | %s\n",
                            bg.name().c_str(), wl.c_str(), dim,
                            tracker_mib, 100 * useful_read / total,
                            100 * written / total, 100 * wasted / total,
                            run.valid ? "ok" : "BAD");
            }
        }
    }
    return 0;
}
