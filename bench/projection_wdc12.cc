/**
 * @file
 * Tera-scale projection (Sec. VI-E's narrative): combine the
 * analytical sizing of Table IV with the *measured* per-GPN throughput
 * of the cycle model to project the time NOVA would need to run BFS
 * over the full WDC12 graph — the workflow behind the paper's claim
 * that NOVA "charts the path toward tera-scale graph analytics".
 */

#include <cstdio>

#include "analytic/scaling.hh"
#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Projection",
                "WDC12 BFS time from measured per-GPN throughput",
                opts);

    // 1. Measure sustained per-GPN BFS throughput on the largest
    //    scaled input (near-flat in graph size per Figs. 1/4).
    const BenchGraph bg = prepare(graph::makeUrand(opts.scale));
    const auto run = runOnNova(novaConfig(opts.scale), "bfs", bg);
    const double gteps_per_gpn = run.gteps();

    // 2. Size the system analytically.
    const auto req = analytic::wdc12();
    const auto nova_req = analytic::novaRequirements(req);

    // 3. Project: near-perfect weak scaling (Fig. 8) over the sized
    //    GPN count; BFS traverses ~|E| edges.
    const double system_gteps =
        gteps_per_gpn * static_cast<double>(nova_req.hbmStacks);
    const double seconds =
        static_cast<double>(req.edges) / (system_gteps * 1e9);

    std::printf("measured per-GPN throughput: %.2f GTEPS (BFS on the "
                "Urand equivalent, %s)\n",
                gteps_per_gpn, run.valid ? "validated" : "INVALID");
    std::printf("system size for WDC12 (Table IV): %u GPNs, %.0f GiB "
                "HBM + %.0f GiB DDR, %.1f MiB SRAM\n",
                nova_req.hbmStacks, nova_req.hbmGiB, nova_req.ddrGiB,
                nova_req.sramMiB);
    std::printf("projected system throughput: %.1f GTEPS\n",
                system_gteps);
    std::printf("projected WDC12 BFS time (%.1fB edges): %.2f s\n",
                static_cast<double>(req.edges) / 1e9, seconds);
    std::printf("\n(The projection assumes the near-perfect weak "
                "scaling of Fig. 8 and one\ntraversal per edge; it is "
                "an envelope, not a simulation.)\n");
    return run.valid ? 0 : 1;
}
