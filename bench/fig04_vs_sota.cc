/**
 * @file
 * Figure 4: NOVA vs. PolyGraph (iso-bandwidth 332.8 GB/s) vs. Ligra
 * across the five workloads and five graphs.
 *
 * Paper shape: PolyGraph wins on the smaller inputs (e.g., ~1.3x on
 * Twitter BFS); NOVA wins on the larger inputs, up to 2.35x on Urand
 * SSSP; both accelerators dwarf the software baseline.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 4",
                "NOVA vs PolyGraph vs Ligra (5 workloads x 5 graphs)",
                opts);

    const auto graphs = prepareAll(opts.scale);

    std::printf("%-11s %-5s | %-11s %-11s %-11s | %-9s %-9s | %s\n",
                "graph", "wl", "NOVA GTEPS", "PG GTEPS", "Ligra GTEPS",
                "NOVA/PG", "NOVA/Lig", "valid");
    for (const BenchGraph &bg : graphs) {
        for (const std::string &wl : allWorkloads()) {
            const auto nova_run =
                runOnNova(novaConfig(opts.scale), wl, bg);
            const auto pg_run =
                runOnPolyGraph(pgConfig(opts.scale), wl, bg);
            const auto lig_run = runOnLigra(wl, bg);
            std::printf(
                "%-11s %-5s | %-11.2f %-11.2f %-11.3f | %-9.2f %-9.1f "
                "| %s%s%s\n",
                bg.name().c_str(), wl.c_str(), nova_run.gteps(),
                pg_run.gteps(), lig_run.gteps(),
                static_cast<double>(pg_run.result.ticks) /
                    static_cast<double>(nova_run.result.ticks),
                static_cast<double>(lig_run.result.ticks) /
                    static_cast<double>(nova_run.result.ticks),
                nova_run.valid ? "n:ok " : "n:BAD ",
                pg_run.valid ? "p:ok " : "p:BAD ",
                lig_run.valid ? "l:ok" : "l:BAD");
        }
    }
    std::printf("\nNOVA/PG and NOVA/Lig are NOVA's speedups (>1 means "
                "NOVA is faster).\nLigra runs on this host "
                "single-threaded; only its order of magnitude is "
                "meaningful.\n");
    return 0;
}
