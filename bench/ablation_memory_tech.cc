/**
 * @file
 * Ablation: memory technology for the vertex and edge stores.
 *
 * Sec. IV-A: "our design is not limited to these specific memory
 * technologies. Any memory technology that provides the required
 * bandwidth and capacity for vertices and edges can be used as long as
 * the required balance is achieved." This sweep swaps the vertex
 * memory (HBM2 / HBM2E / LPDDR5) and edge memory (DDR4 / DDR5) and
 * shows where the system stays balanced and where one side starves.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Ablation",
                "vertex/edge memory technology (BFS, single GPN)",
                opts);

    const BenchGraph bg = prepare(graph::makeTwitter(opts.scale));

    struct Tech
    {
        const char *name;
        mem::DramTiming timing;
    };
    const Tech vertex_techs[] = {
        {"HBM2", mem::DramTiming::hbm2Channel()},
        {"HBM2E", mem::DramTiming::hbm2eChannel()},
        {"LPDDR5", mem::DramTiming::lpddr5Channel()},
    };
    const Tech edge_techs[] = {
        {"DDR4", mem::DramTiming::ddr4Channel()},
        {"DDR5", mem::DramTiming::ddr5Channel()},
    };

    std::printf("%-8s %-6s | %-10s %-12s | %-12s %-9s | %s\n", "vertex",
                "edge", "vtxGB/s", "edgeGB/s", "time (ms)", "GTEPS",
                "valid");
    for (const Tech &vt : vertex_techs) {
        for (const Tech &et : edge_techs) {
            core::NovaConfig cfg = novaConfig(opts.scale);
            cfg.vertexMem = vt.timing;
            cfg.edgeMem = et.timing;
            const auto run = runOnNova(cfg, "bfs", bg);
            std::printf("%-8s %-6s | %-10.1f %-12.1f | %-12.3f %-9.2f "
                        "| %s\n",
                        vt.name, et.name,
                        vt.timing.peakBytesPerSec() * 8 / 1e9,
                        et.timing.peakBytesPerSec() * 4 / 1e9,
                        run.seconds() * 1e3, run.gteps(),
                        run.valid ? "ok" : "BAD");
        }
    }
    std::printf("\nThe paper's balance rule (vertex BW ~ 4x edge BW "
                "[16]) predicts the winners:\nfaster vertex memory "
                "lifts throughput until the edge side binds, and "
                "vice versa.\n");
    return 0;
}
