/**
 * @file
 * Figure 5: fraction of updates coalesced by NOVA vs. PolyGraph (BFS).
 *
 * Paper shape: NOVA coalesces up to ~3x more because spilled vertices
 * accumulate updates in DRAM until retrieval, while PolyGraph's
 * coalescing window is limited to the slice currently on-chip.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Figure 5",
                "% of updates coalesced, NOVA vs PolyGraph (BFS)", opts);

    std::printf("%-11s | %-10s %-10s | %-8s | %s\n", "graph",
                "NOVA %", "PG %", "ratio", "valid");
    for (const BenchGraph &bg : prepareAll(opts.scale)) {
        const auto nova_run = runOnNova(novaConfig(opts.scale), "bfs",
                                        bg);
        const auto pg_run = runOnPolyGraph(pgConfig(opts.scale), "bfs",
                                           bg);
        const double n = 100 * nova_run.result.coalescingRate();
        const double p = 100 * pg_run.result.coalescingRate();
        std::printf("%-11s | %-10.2f %-10.2f | %-8.2f | %s%s\n",
                    bg.name().c_str(), n, p, p > 0 ? n / p : 0,
                    nova_run.valid ? "n:ok " : "n:BAD ",
                    pg_run.valid ? "p:ok" : "p:BAD");
    }
    return 0;
}
