#include "common.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace nova::bench
{

using graph::Csr;
using graph::VertexId;
using workloads::RunResult;

Options
Options::parse(int argc, char **argv, double default_scale)
{
    Options o;
    o.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            o.scale = std::atof(argv[i] + 8);
        else if (std::strcmp(argv[i], "--quick") == 0)
            o.quick = true;
    }
    if (const char *env = std::getenv("NOVA_BENCH_QUICK");
        env && env[0] == '1')
        o.quick = true;
    if (o.quick)
        o.scale *= 4;
    return o;
}

BenchGraph
prepare(graph::NamedGraph named)
{
    BenchGraph bg;
    bg.named = std::move(named);
    bg.sym = graph::symmetrize(bg.named.graph);
    bg.src = graph::highestDegreeVertex(bg.named.graph);
    bg.symSrc = graph::highestDegreeVertex(bg.sym);
    return bg;
}

std::vector<BenchGraph>
prepareAll(double scale)
{
    std::vector<BenchGraph> all;
    for (auto &named : graph::paperGraphs(scale))
        all.push_back(prepare(std::move(named)));
    return all;
}

core::NovaConfig
novaConfig(double scale, std::uint32_t gpns)
{
    core::NovaConfig cfg = core::NovaConfig{}.scaled(scale);
    cfg.numGpns = gpns;
    return cfg;
}

baselines::PolyGraphConfig
pgConfig(double scale)
{
    return baselines::PolyGraphConfig{}.scaled(scale);
}

const std::vector<std::string> &
allWorkloads()
{
    static const std::vector<std::string> list = {"bfs", "sssp", "cc",
                                                  "pr", "bc"};
    return list;
}

namespace
{

bool
validateExact(const std::vector<std::uint64_t> &got,
              const std::vector<std::uint64_t> &want)
{
    return got == want;
}

bool
validateNear(const std::vector<double> &got,
             const std::vector<double> &want, double rel, double abs_tol)
{
    if (got.size() != want.size())
        return false;
    for (std::size_t i = 0; i < got.size(); ++i)
        if (std::abs(got[i] - want[i]) >
            abs_tol + rel * std::abs(want[i]))
            return false;
    return true;
}

} // namespace

WorkloadRun
runWorkload(workloads::GraphEngine &engine, const std::string &workload,
            const BenchGraph &bg, const graph::VertexMapping &map,
            const graph::VertexMapping &sym_map)
{
    WorkloadRun out;
    out.workload = workload;
    namespace ref = workloads::reference;

    if (workload == "bfs") {
        workloads::BfsProgram prog(bg.src);
        out.result = engine.run(prog, bg.g(), map);
        out.valid = validateExact(out.result.props,
                                  ref::bfsDepths(bg.g(), bg.src));
        out.usefulEdges = ref::sequentialEdgeWork(bg.g(), bg.src);
    } else if (workload == "sssp") {
        workloads::SsspProgram prog(bg.src);
        out.result = engine.run(prog, bg.g(), map);
        out.valid = validateExact(out.result.props,
                                  ref::ssspDistances(bg.g(), bg.src));
        out.usefulEdges = ref::sequentialEdgeWork(bg.g(), bg.src);
    } else if (workload == "cc") {
        workloads::CcProgram prog;
        out.result = engine.run(prog, bg.sym, sym_map);
        out.valid =
            validateExact(out.result.props, ref::ccLabels(bg.sym));
        out.usefulEdges = bg.sym.numEdges();
    } else if (workload == "pr") {
        workloads::PageRankProgram prog(prDamping, prTolerance,
                                        prIterations);
        out.result = engine.run(prog, bg.g(), map);
        out.valid = validateNear(
            prog.rank(),
            ref::pagerankDelta(bg.g(), prDamping, prTolerance,
                               prIterations),
            1e-4, 1e-10);
        out.usefulEdges = out.result.messagesGenerated;
    } else if (workload == "bc") {
        const auto bc = workloads::runBc(engine, bg.sym, sym_map,
                                         bg.symSrc);
        out.result = bc.forward;
        out.result.ticks = bc.totalTicks();
        out.result.messagesGenerated = bc.totalEdgesTraversed();
        out.result.messagesProcessed = bc.forward.messagesProcessed +
                                       bc.backward.messagesProcessed;
        out.result.coalescedUpdates = bc.forward.coalescedUpdates +
                                      bc.backward.coalescedUpdates;
        for (const auto &[k, v] : bc.backward.extra)
            out.result.extra["bwd." + k] = v;
        out.valid = validateNear(bc.centrality,
                                 ref::bcDependencies(bg.sym, bg.symSrc),
                                 1e-2, 1e-4);
        out.usefulEdges = out.result.messagesGenerated;
    } else {
        sim::fatal("unknown workload '", workload, "'");
    }
    return out;
}

WorkloadRun
runOnNova(const core::NovaConfig &cfg, const std::string &workload,
          const BenchGraph &bg, std::uint64_t map_seed)
{
    core::NovaSystem nova(cfg);
    const auto map = graph::randomMapping(bg.g().numVertices(),
                                          cfg.totalPes(), map_seed);
    const auto sym_map = graph::randomMapping(bg.sym.numVertices(),
                                              cfg.totalPes(), map_seed);
    return runWorkload(nova, workload, bg, map, sym_map);
}

WorkloadRun
runOnPolyGraph(const baselines::PolyGraphConfig &cfg,
               const std::string &workload, const BenchGraph &bg)
{
    baselines::PolyGraphModel pg(cfg);
    const auto map =
        graph::VertexMapping::interleave(bg.g().numVertices(), 1);
    const auto sym_map =
        graph::VertexMapping::interleave(bg.sym.numVertices(), 1);
    return runWorkload(pg, workload, bg, map, sym_map);
}

WorkloadRun
runOnLigra(const std::string &workload, const BenchGraph &bg)
{
    baselines::LigraEngine ligra;
    const auto map =
        graph::VertexMapping::interleave(bg.g().numVertices(), 1);
    const auto sym_map =
        graph::VertexMapping::interleave(bg.sym.numVertices(), 1);
    return runWorkload(ligra, workload, bg, map, sym_map);
}

void
printHeader(const std::string &experiment, const std::string &title,
            const Options &opts)
{
    std::printf("==================================================="
                "=========================\n");
    std::printf("%s: %s\n", experiment.c_str(), title.c_str());
    std::printf("scale 1/%.0f of the paper's inputs; on-chip capacities"
                " scaled equally\n", opts.scale);
    std::printf("==================================================="
                "=========================\n");
}

} // namespace nova::bench
