/**
 * @file
 * Ablation: asynchronous vs. bulk-synchronous traversal on NOVA.
 *
 * The paper runs BFS/SSSP/CC asynchronously and argues that the
 * decoupled design's enlarged coalescing window recovers the work
 * efficiency async execution normally loses. This sweep runs BFS and
 * SSSP in both modes on the same engine to expose the trade-off
 * (async: fewer global barriers, some redundant messages; BSP:
 * perfectly work-efficient supersteps, more synchronisation).
 */

#include <cstdio>

#include "common.hh"
#include "workloads/bsp_traversal.hh"
#include "workloads/reference.hh"

using namespace nova;
using namespace nova::bench;

namespace
{

workloads::RunResult
runMode(const core::NovaConfig &cfg, const BenchGraph &bg, bool async,
        bool weighted)
{
    core::NovaSystem nova(cfg);
    const auto map = graph::randomMapping(bg.g().numVertices(),
                                          cfg.totalPes(), 1);
    if (weighted) {
        if (async) {
            workloads::SsspProgram p(bg.src);
            return nova.run(p, bg.g(), map);
        }
        workloads::SsspBspProgram p(bg.src);
        return nova.run(p, bg.g(), map);
    }
    if (async) {
        workloads::BfsProgram p(bg.src);
        return nova.run(p, bg.g(), map);
    }
    workloads::BfsBspProgram p(bg.src);
    return nova.run(p, bg.g(), map);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 2000);
    printHeader("Ablation", "async vs BSP traversal on NOVA", opts);

    std::vector<BenchGraph> graphs;
    graphs.push_back(prepare(graph::makeRoadUsa(opts.scale)));
    graphs.push_back(prepare(graph::makeTwitter(opts.scale)));
    graphs.push_back(prepare(graph::makeUrand(opts.scale)));

    std::printf("%-11s %-5s %-6s | %-12s %-9s | %-11s %-9s %-7s | %s\n",
                "graph", "wl", "mode", "time (ms)", "GTEPS", "messages",
                "workEff", "steps", "valid");
    for (const BenchGraph &bg : graphs) {
        for (const bool weighted : {false, true}) {
            const auto ref =
                weighted
                    ? workloads::reference::ssspDistances(bg.g(), bg.src)
                    : workloads::reference::bfsDepths(bg.g(), bg.src);
            const std::uint64_t useful =
                workloads::reference::sequentialEdgeWork(bg.g(), bg.src);
            for (const bool async : {true, false}) {
                const auto r = runMode(novaConfig(opts.scale), bg,
                                       async, weighted);
                const bool ok = r.props == ref;
                std::printf("%-11s %-5s %-6s | %-12.3f %-9.2f | %-11llu "
                            "%-9.2f %-7llu | %s\n",
                            bg.name().c_str(),
                            weighted ? "sssp" : "bfs",
                            async ? "async" : "bsp",
                            r.seconds() * 1e3, r.gteps(),
                            static_cast<unsigned long long>(
                                r.messagesGenerated),
                            static_cast<double>(useful) /
                                static_cast<double>(
                                    std::max<std::uint64_t>(
                                        1, r.messagesGenerated)),
                            static_cast<unsigned long long>(
                                r.bspIterations),
                            ok ? "ok" : "BAD");
            }
        }
    }
    return 0;
}
