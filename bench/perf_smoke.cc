/**
 * @file
 * The fixed host-performance smoke suite: BFS/SSSP/PR/CC/BC on an RMAT
 * and a road-grid graph at pinned seeds — ten workloads whose event
 * streams are deterministic, so events/second on the host is
 * comparable across commits. Each workload runs on both event-queue
 * backends (the legacy binary heap and the calendar queue); the JSON
 * report carries host seconds, simulated ticks, executed events,
 * events/sec, the host thread count and peak RSS per workload, plus
 * the hardware-independent calendar-vs-legacy speedup, and asserts the
 * two backends' event-order fingerprints are bit-identical.
 *
 * Usage: perf_smoke [--out=FILE] [--quick] [--reps=N] [--threads=N]
 *
 * The report goes to stdout; --out also writes it to FILE (the
 * committed BENCH_6.json is produced this way by
 * scripts/bench_json.sh). --quick shrinks the graphs for per-commit CI.
 * Each workload/backend pair runs N times (default 3) and reports the
 * minimum host time, the noise-robust estimator on shared machines;
 * all repetitions must produce identical fingerprints.
 *
 * --threads=N (N > 1) switches to the sharded conservative-PDES
 * scheduler (docs/PARALLEL.md): one GPN shard per thread with
 * deterministic merge armed. The topology then differs from the serial
 * suite (N GPNs instead of 1), so parallel records are comparable with
 * other records at the same thread count, not with --threads=1 ones.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/system.hh"
#include "graph/generators.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/bc.hh"
#include "workloads/programs.hh"

using namespace nova;

namespace
{

/** One suite entry: a workload on a pinned generated graph. */
struct Spec
{
    const char *name;     ///< stable JSON key, e.g. "bfs_rmat"
    const char *workload; ///< bfs | sssp | pr
    const char *family;   ///< rmat | grid
};

constexpr Spec kSuite[] = {
    {"bfs_rmat", "bfs", "rmat"},   {"bfs_grid", "bfs", "grid"},
    {"sssp_rmat", "sssp", "rmat"}, {"sssp_grid", "sssp", "grid"},
    {"pr_rmat", "pr", "rmat"},     {"pr_grid", "pr", "grid"},
    {"cc_rmat", "cc", "rmat"},     {"cc_grid", "cc", "grid"},
    {"bc_rmat", "bc", "rmat"},     {"bc_grid", "bc", "grid"},
};

constexpr std::uint64_t kGraphSeed = 42; // pinned: the suite IS the seed

graph::Csr
makeGraph(const std::string &family, bool quick)
{
    if (family == "rmat") {
        graph::RmatParams p;
        p.numVertices = quick ? 4096 : 32768;
        p.numEdges = quick ? 65536 : 524288;
        p.maxWeight = 255;
        p.seed = kGraphSeed;
        return graph::generateRmat(p);
    }
    graph::RoadGridParams p;
    p.width = quick ? 64 : 192;
    p.height = quick ? 64 : 192;
    p.maxWeight = 255;
    p.seed = kGraphSeed;
    return graph::generateRoadGrid(p);
}

/** Host-time measurement of one run on one queue backend. */
struct Measured
{
    double hostSeconds = 0;
    double simTicks = 0;
    double events = 0;
    double fingerprint = 0;

    double
    eventsPerSec() const
    {
        return hostSeconds > 0 ? events / hostSeconds : 0;
    }
};

Measured
runOnce(const Spec &spec, const graph::Csr &g,
        sim::EventQueue::Impl impl, unsigned threads)
{
    sim::EventQueue::ScopedDefaultImpl forced(impl);

    core::NovaConfig cfg = core::NovaConfig{}.scaled(1000);
    if (threads > 1) {
        // Sharded scheduler: one GPN shard per host thread.
        cfg.numGpns = threads;
        cfg.threads = threads;
        cfg.deterministicMerge = true;
    }
    core::NovaSystem system(cfg);
    const auto map = graph::randomMapping(g.numVertices(),
                                          cfg.totalPes(), 1);
    const graph::VertexId src = graph::highestDegreeVertex(g);

    // novalint:allow(wall-clock) host wall time is the measurement here
    const auto start = std::chrono::steady_clock::now();
    workloads::RunResult r;
    double extra_events = 0, extra_fp = 0;
    if (std::strcmp(spec.workload, "bfs") == 0) {
        workloads::BfsProgram prog(src);
        r = system.run(prog, g, map);
    } else if (std::strcmp(spec.workload, "sssp") == 0) {
        workloads::SsspProgram prog(src);
        r = system.run(prog, g, map);
    } else if (std::strcmp(spec.workload, "cc") == 0) {
        workloads::CcProgram prog;
        r = system.run(prog, g, map);
    } else if (std::strcmp(spec.workload, "bc") == 0) {
        const workloads::BcResult bc =
            workloads::runBc(system, g, map, src);
        r = bc.forward;
        r.ticks = bc.totalTicks();
        extra_events = bc.backward.extra.at("sim.events");
        extra_fp = bc.backward.extra.at("sim.fingerprint");
    } else {
        workloads::PageRankProgram prog(0.85, 1e-9, 10);
        r = system.run(prog, g, map);
    }
    // novalint:allow(wall-clock) host wall time is the measurement here
    const auto end = std::chrono::steady_clock::now();

    Measured m;
    m.hostSeconds =
        std::chrono::duration<double>(end - start).count();
    m.simTicks = static_cast<double>(r.ticks);
    m.events = r.extra.at("sim.events") + extra_events;
    // BC runs two phases; fold the backward fingerprint in so the
    // determinism check still covers the whole run.
    m.fingerprint = r.extra.at("sim.fingerprint") + extra_fp;
    return m;
}

/** Best (minimum host time) of `reps` identical runs. */
Measured
runBest(const Spec &spec, const graph::Csr &g,
        sim::EventQueue::Impl impl, unsigned reps, unsigned threads)
{
    Measured best;
    for (unsigned rep = 0; rep < reps; ++rep) {
        const Measured m = runOnce(spec, g, impl, threads);
        if (rep == 0) {
            best = m;
            continue;
        }
        if (m.fingerprint != best.fingerprint || m.events != best.events)
            sim::panic("non-deterministic repetition on ", spec.name);
        if (m.hostSeconds < best.hostSeconds)
            best.hostSeconds = m.hostSeconds;
    }
    return best;
}

double
peakRssKb()
{
    struct rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<double>(ru.ru_maxrss);
}

void
appendJsonNumber(std::string &out, const char *key, double v,
                 bool last = false)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "    \"%s\": %.6f%s\n", key, v,
                  last ? "" : ",");
    out += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path;
    bool quick = false;
    unsigned reps = 3;
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        if (std::strncmp(a, "--out=", 6) == 0)
            out_path = a + 6;
        else if (std::strcmp(a, "--quick") == 0)
            quick = true;
        else if (std::strncmp(a, "--reps=", 7) == 0)
            reps = static_cast<unsigned>(std::strtoul(a + 7, nullptr, 10));
        else if (std::strncmp(a, "--threads=", 10) == 0)
            threads =
                static_cast<unsigned>(std::strtoul(a + 10, nullptr, 10));
        else
            sim::fatal("unknown option '", a,
                       "' (usage: perf_smoke [--out=FILE] [--quick] "
                       "[--reps=N] [--threads=N])");
    }
    if (reps == 0)
        sim::fatal("--reps must be at least 1");
    if (threads == 0)
        threads = 1;

    double agg_events = 0, agg_host = 0;
    double agg_legacy_events = 0, agg_legacy_host = 0;
    std::string json;
    json += "{\n";
    json += "  \"schema\": \"nova-bench-6\",\n";
    json += std::string("  \"quick\": ") + (quick ? "true" : "false") +
            ",\n";
    json += "  \"threads\": " + std::to_string(threads) + ",\n";
    json += "  \"workloads\": {\n";

    bool first = true;
    for (const Spec &spec : kSuite) {
        graph::Csr g = makeGraph(spec.family, quick);
        // CC finds weakly connected components and BC's backward pass
        // walks reverse edges: both need the symmetric closure.
        if (std::strcmp(spec.workload, "cc") == 0 ||
            std::strcmp(spec.workload, "bc") == 0)
            g = graph::symmetrize(g);

        const Measured legacy = runBest(
            spec, g, sim::EventQueue::Impl::LegacyHeap, reps, threads);
        const Measured cal = runBest(
            spec, g, sim::EventQueue::Impl::Calendar, reps, threads);

        // The suite doubles as an ordering check: identical inputs must
        // produce identical event streams on both backends.
        if (legacy.fingerprint != cal.fingerprint ||
            legacy.events != cal.events)
            sim::panic("queue backends diverged on ", spec.name,
                       ": legacy fingerprint ",
                       static_cast<std::uint64_t>(legacy.fingerprint),
                       " (", static_cast<std::uint64_t>(legacy.events),
                       " events) vs calendar ",
                       static_cast<std::uint64_t>(cal.fingerprint), " (",
                       static_cast<std::uint64_t>(cal.events),
                       " events)");

        agg_events += cal.events;
        agg_host += cal.hostSeconds;
        agg_legacy_events += legacy.events;
        agg_legacy_host += legacy.hostSeconds;

        if (!first)
            json += ",\n";
        first = false;
        json += std::string("   \"") + spec.name + "\": {\n";
        appendJsonNumber(json, "sim_ticks", cal.simTicks);
        appendJsonNumber(json, "events", cal.events);
        appendJsonNumber(json, "host_seconds", cal.hostSeconds);
        appendJsonNumber(json, "events_per_sec", cal.eventsPerSec());
        appendJsonNumber(json, "legacy_host_seconds", legacy.hostSeconds);
        appendJsonNumber(json, "legacy_events_per_sec",
                         legacy.eventsPerSec());
        appendJsonNumber(json, "speedup_vs_legacy",
                         legacy.hostSeconds > 0 && cal.hostSeconds > 0
                             ? legacy.hostSeconds / cal.hostSeconds
                             : 0);
        appendJsonNumber(json, "fingerprint", cal.fingerprint);
        appendJsonNumber(json, "threads", threads);
        appendJsonNumber(json, "peak_rss_kb", peakRssKb(), true);
        json += "   }";

        std::fprintf(stderr,
                     "%-10s %9.0f events  legacy %.3fs  calendar %.3fs  "
                     "speedup %.2fx\n",
                     spec.name, cal.events, legacy.hostSeconds,
                     cal.hostSeconds,
                     cal.hostSeconds > 0
                         ? legacy.hostSeconds / cal.hostSeconds
                         : 0);
    }

    const double agg_eps = agg_host > 0 ? agg_events / agg_host : 0;
    const double agg_legacy_eps =
        agg_legacy_host > 0 ? agg_legacy_events / agg_legacy_host : 0;
    json += "\n  },\n";
    json += "  \"aggregate\": {\n";
    appendJsonNumber(json, "events", agg_events);
    appendJsonNumber(json, "host_seconds", agg_host);
    appendJsonNumber(json, "events_per_sec", agg_eps);
    appendJsonNumber(json, "legacy_events_per_sec", agg_legacy_eps);
    appendJsonNumber(json, "speedup_vs_legacy",
                     agg_legacy_eps > 0 ? agg_eps / agg_legacy_eps : 0);
    appendJsonNumber(json, "threads", threads, true);
    json += "  }\n}\n";

    std::fputs(json.c_str(), stdout);
    if (!out_path.empty()) {
        std::ofstream f(out_path);
        if (!f)
            sim::fatal("cannot write '", out_path, "'");
        f << json;
    }
    std::fprintf(stderr, "aggregate: %.0f ev/s calendar vs %.0f ev/s "
                         "legacy (%.2fx) on %u thread%s\n",
                 agg_eps, agg_legacy_eps,
                 agg_legacy_eps > 0 ? agg_eps / agg_legacy_eps : 0,
                 threads, threads == 1 ? "" : "s");
    return 0;
}
