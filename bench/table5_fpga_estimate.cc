/**
 * @file
 * Table V: FPGA resource/power estimate of one GPN (8 PEs at 1 GHz)
 * on the Xilinx Alveo U280, from the calibrated per-unit model, plus
 * how many GPNs fit on the device.
 */

#include <cstdio>

#include "analytic/fpga.hh"

using namespace nova::analytic;

int
main()
{
    std::printf("=================================================="
                "==========================\n");
    std::printf("Table V: hardware implementation estimate, one GPN "
                "(8 PEs) at 1 GHz on U280\n");
    std::printf("=================================================="
                "==========================\n");

    const FpgaDevice dev = alveoU280();
    const GpnFpgaEstimate e = estimateGpn(8);

    std::printf("%-8s %-8s %-8s %-6s %-6s %-10s\n", "unit", "LUT", "FF",
                "BRAM", "URAM", "power(mW)");
    for (const FpgaRow &row : e.rows)
        std::printf("%-8s %-8u %-8u %-6u %-6u %-10.0f\n",
                    row.unit.c_str(), row.res.lut, row.res.ff,
                    row.res.bram, row.res.uram, row.res.powerMw);
    std::printf("%-8s %-8u %-8u %-6u %-6u %-10.0f\n", "total",
                e.total.lut, e.total.ff, e.total.bram, e.total.uram,
                e.total.powerMw);
    std::printf("%-8s %-7.2f%% %-7.2f%% %-5.2f%% %-5.2f%%\n", "of U280",
                e.lutPct(dev), e.ffPct(dev), e.bramPct(dev),
                e.uramPct(dev));

    std::printf("\nGPNs fitting on the U280: %u (paper reports 14; the "
                "binding resource is URAM)\n",
                maxGpnsOnDevice(dev));
    std::printf("paper totals: 8 MPU 6032/7472/16/24/1120mW, 8 VMU "
                "5160/5560/64/64/1396mW,\n8 MGU 1640/4840/16/8/752mW, "
                "NoC 3/145/0/0/6mW, total power 3274 mW.\n");
    return 0;
}
