/**
 * @file
 * Figure 2: PolyGraph execution-time breakdown (processing /
 * inefficiency / switching) as the number of temporal slices grows,
 * BFS on the Twitter-equivalent graph.
 *
 * Paper shape: overheads are ~20% below 3 slices and dominate (>75%)
 * by hundreds of slices.
 */

#include <cstdio>

#include "common.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 1000);
    printHeader("Figure 2",
                "temporal-partitioning overhead vs. #slices "
                "(PolyGraph, BFS on Twitter-equivalent)", opts);

    const BenchGraph bg = prepare(graph::makeTwitter(opts.scale));

    std::printf("%-8s %-12s | %-8s %-8s %-8s | %-10s %s\n", "slices",
                "sliceVerts", "proc%", "ineff%", "switch%", "GTEPS",
                "valid");
    for (const std::uint32_t slices :
         {1u, 2u, 3u, 5u, 8u, 16u, 32u, 64u, 128u, 318u}) {
        baselines::PolyGraphConfig cfg = pgConfig(opts.scale);
        cfg.forcedSlices = slices;
        const auto run = runOnPolyGraph(cfg, "bfs", bg);
        const double proc = run.result.extra.at("pg.processingTicks");
        const double ineff = run.result.extra.at("pg.inefficiencyTicks");
        const double sw = run.result.extra.at("pg.switchingTicks");
        const double tot = proc + ineff + sw;
        std::printf("%-8u %-12u | %-8.1f %-8.1f %-8.1f | %-10.2f %s\n",
                    slices, bg.g().numVertices() / slices,
                    100 * proc / tot, 100 * ineff / tot, 100 * sw / tot,
                    run.gteps(), run.valid ? "ok" : "BAD");
    }
    return 0;
}
