/**
 * @file
 * Figure 1: system throughput (GTEPS) vs. graph size for NOVA and
 * PolyGraph at iso-resources (1.5 MiB-equivalent on-chip for NOVA,
 * 32 MiB-equivalent for PolyGraph, 332.8 GB/s per node), BFS on a
 * family of uniform random graphs.
 *
 * Paper shape: PolyGraph is faster on small graphs but its throughput
 * falls as slices multiply; NOVA stays roughly flat.
 */

#include <cstdio>

#include "common.hh"
#include "graph/generators.hh"

using namespace nova;
using namespace nova::bench;

int
main(int argc, char **argv)
{
    const Options opts = Options::parse(argc, argv, 1000);
    printHeader("Figure 1", "throughput vs. graph size (BFS, NOVA vs "
                            "PolyGraph, iso-bandwidth)", opts);

    // Paper x-axis: ~8M to 134M vertices, uniform random, avg deg ~31.
    const std::uint64_t paper_sizes[] = {
        8'400'000, 16'800'000, 33'600'000, 67'100'000, 134'200'000};

    std::printf("%-14s %-10s %-8s | %-10s %-10s | %-10s %-8s\n",
                "paperVerts", "verts", "edges", "NOVA GTEPS",
                "PG GTEPS", "PG slices", "valid");
    for (const std::uint64_t paper_v : paper_sizes) {
        graph::UniformParams p;
        p.numVertices = static_cast<graph::VertexId>(
            static_cast<double>(paper_v) / opts.scale);
        p.numEdges = static_cast<graph::EdgeId>(p.numVertices) * 31;
        p.maxWeight = 255;
        p.seed = paper_v;
        graph::NamedGraph named{"urand" + std::to_string(paper_v),
                                paper_v, paper_v * 31,
                                graph::generateUniform(p)};
        const BenchGraph bg = prepare(std::move(named));

        const auto nova_run =
            runOnNova(novaConfig(opts.scale), "bfs", bg);
        const auto pg_run = runOnPolyGraph(pgConfig(opts.scale), "bfs",
                                           bg);
        std::printf("%-14llu %-10u %-8llu | %-10.2f %-10.2f | %-10.0f "
                    "%s%s\n",
                    static_cast<unsigned long long>(paper_v),
                    bg.g().numVertices(),
                    static_cast<unsigned long long>(bg.g().numEdges()),
                    nova_run.gteps(), pg_run.gteps(),
                    pg_run.result.extra.at("pg.numSlices"),
                    nova_run.valid ? "nova:ok " : "nova:BAD ",
                    pg_run.valid ? "pg:ok" : "pg:BAD");
    }
    return 0;
}
