#!/usr/bin/env python3
"""Validate and compare nova-bench-6 perf records (docs/CI.md).

Modes:
  bench_compare.py --validate FILE
      Schema-check one record: every suite workload present with
      positive events, host seconds and events/sec, backend fingerprints
      recorded, and the aggregate block consistent.

  bench_compare.py --compare BASELINE CURRENT [--threshold 0.15]
      Regression gate: fail (exit 1) when any workload's events/sec —
      or the aggregate — drops more than THRESHOLD relative to the
      baseline. Improvements and noise inside the threshold pass.

  bench_compare.py --self-test
      Prove the gates trip: synthesize regressions of embedded
      baselines and require --compare, --compare-serving and
      --speedup to reject them.

  bench_compare.py --validate-serving FILE
      Schema-check one nova-serving-1 report (nova_cli serve): schema
      tag, balanced offered/served/shed/pending accounting, positive
      latency quantiles and served_qps, one entry per tenant.

  bench_compare.py --compare-serving BASELINE CURRENT [--threshold 0.15]
      Serving-latency SLO gate: fail (exit 1) when p99 latency grows
      more than THRESHOLD, or served-queries/sec drops more than
      THRESHOLD, relative to the baseline. Both documents are
      simulated-time reports, so drift means the model changed — the
      gate bounds how far a change may push tail latency.

  bench_compare.py --speedup ONE_THREAD N_THREAD [--floor 1.2]
      Sharded-scheduler scaling gate: fail when the N-thread record's
      aggregate events/sec is below FLOOR x the 1-thread record's.
      --floor 0 reports the speedup without gating (single-core CI).
"""

import argparse
import copy
import json
import sys

SUITE = [
    "bfs_rmat", "bfs_grid",
    "sssp_rmat", "sssp_grid",
    "pr_rmat", "pr_grid",
    "cc_rmat", "cc_grid",
    "bc_rmat", "bc_grid",
]

NUMERIC_FIELDS = [
    "sim_ticks", "events", "host_seconds", "events_per_sec",
    "legacy_host_seconds", "legacy_events_per_sec", "speedup_vs_legacy",
    "fingerprint", "threads", "peak_rss_kb",
]


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(doc, path="<record>"):
    errors = []
    if doc.get("schema") != "nova-bench-6":
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      "expected 'nova-bench-6'")
    workloads = doc.get("workloads", {})
    for name in SUITE:
        w = workloads.get(name)
        if w is None:
            errors.append(f"{path}: workload '{name}' missing")
            continue
        for field in NUMERIC_FIELDS:
            if not isinstance(w.get(field), (int, float)):
                errors.append(f"{path}: {name}.{field} missing or "
                              "non-numeric")
        for field in ("events", "host_seconds", "events_per_sec",
                      "sim_ticks", "threads", "peak_rss_kb"):
            if isinstance(w.get(field), (int, float)) and w[field] <= 0:
                errors.append(f"{path}: {name}.{field} must be positive")
    agg = doc.get("aggregate", {})
    for field in ("events", "host_seconds", "events_per_sec",
                  "legacy_events_per_sec", "speedup_vs_legacy",
                  "threads"):
        if not isinstance(agg.get(field), (int, float)) or agg[field] <= 0:
            errors.append(f"{path}: aggregate.{field} missing or "
                          "non-positive")
    return errors


def compare(baseline, current, threshold):
    """Return a list of regression messages (empty = pass)."""
    failures = []
    base_w = baseline.get("workloads", {})
    cur_w = current.get("workloads", {})
    print(f"{'workload':<12} {'baseline ev/s':>14} {'current ev/s':>14} "
          f"{'ratio':>7}")
    for name in SUITE:
        b = base_w.get(name, {}).get("events_per_sec")
        c = cur_w.get(name, {}).get("events_per_sec")
        if not b or not c:
            failures.append(f"{name}: missing events_per_sec "
                            f"(baseline={b}, current={c})")
            continue
        ratio = c / b
        print(f"{name:<12} {b:>14.0f} {c:>14.0f} {ratio:>6.2f}x")
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: events/sec regressed {100 * (1 - ratio):.1f}% "
                f"({b:.0f} -> {c:.0f}), threshold "
                f"{100 * threshold:.0f}%")
    b = baseline.get("aggregate", {}).get("events_per_sec")
    c = current.get("aggregate", {}).get("events_per_sec")
    if b and c:
        ratio = c / b
        print(f"{'aggregate':<12} {b:>14.0f} {c:>14.0f} {ratio:>6.2f}x")
        if ratio < 1.0 - threshold:
            failures.append(
                f"aggregate: events/sec regressed "
                f"{100 * (1 - ratio):.1f}%, threshold "
                f"{100 * threshold:.0f}%")
    else:
        failures.append("aggregate events_per_sec missing")
    return failures


SERVING_QUANTILE_FIELDS = ("count", "mean", "p50", "p95", "p99", "max")


def validate_serving(doc, path="<report>"):
    errors = []
    if doc.get("schema") != "nova-serving-1":
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      "expected 'nova-serving-1'")
    for field in ("offered", "served", "shed", "pending_at_end",
                  "batches", "makespan_ticks", "tenants",
                  "fairness_jain_x1000"):
        if not isinstance(doc.get(field), int) or doc[field] < 0:
            errors.append(f"{path}: {field} missing or not a "
                          "non-negative integer")
    if errors:
        return errors
    if doc["served"] <= 0:
        errors.append(f"{path}: campaign served no queries")
    if doc["offered"] != doc["served"] + doc["shed"] + \
            doc["pending_at_end"]:
        errors.append(f"{path}: offered ({doc['offered']}) != served "
                      f"+ shed + pending_at_end")
    if not isinstance(doc.get("served_qps"), (int, float)) or \
            doc["served_qps"] <= 0:
        errors.append(f"{path}: served_qps missing or non-positive")
    lat = doc.get("latency_ticks", {})
    for field in SERVING_QUANTILE_FIELDS:
        if not isinstance(lat.get(field), int) or lat[field] < 0:
            errors.append(f"{path}: latency_ticks.{field} missing or "
                          "negative")
    if isinstance(lat.get("count"), int) and \
            lat.get("count") != doc["served"]:
        errors.append(f"{path}: latency_ticks.count != served")
    if not (0 <= doc["fairness_jain_x1000"] <= 1000):
        errors.append(f"{path}: fairness_jain_x1000 out of [0, 1000]")
    tenants = doc.get("per_tenant", [])
    if len(tenants) != doc["tenants"]:
        errors.append(f"{path}: per_tenant has {len(tenants)} "
                      f"entries, tenants says {doc['tenants']}")
    for t in tenants:
        for field in ("tenant", "offered", "served", "shed",
                      "pending"):
            if not isinstance(t.get(field), int) or t[field] < 0:
                errors.append(f"{path}: per_tenant[{t.get('tenant')}]"
                              f".{field} missing or negative")
    fp = doc.get("fingerprint", "")
    if not (isinstance(fp, str) and fp.startswith("0x")):
        errors.append(f"{path}: fingerprint missing or not 0x-hex")
    return errors


def compare_serving(baseline, current, threshold):
    """Gate p99 latency growth and served-qps drop. Empty = pass."""
    failures = []
    b_p99 = baseline.get("latency_ticks", {}).get("p99")
    c_p99 = current.get("latency_ticks", {}).get("p99")
    b_qps = baseline.get("served_qps")
    c_qps = current.get("served_qps")
    if not b_p99 or c_p99 is None:
        failures.append(f"p99 latency missing (baseline={b_p99}, "
                        f"current={c_p99})")
    else:
        ratio = c_p99 / b_p99
        print(f"{'p99 latency':<14} {b_p99:>14} {c_p99:>14} "
              f"{ratio:>6.2f}x (lower is better)")
        if ratio > 1.0 + threshold:
            failures.append(
                f"p99 latency grew {100 * (ratio - 1):.1f}% "
                f"({b_p99} -> {c_p99} ticks), threshold "
                f"{100 * threshold:.0f}%")
    if not b_qps or not c_qps:
        failures.append(f"served_qps missing (baseline={b_qps}, "
                        f"current={c_qps})")
    else:
        ratio = c_qps / b_qps
        print(f"{'served qps':<14} {b_qps:>14.0f} {c_qps:>14.0f} "
              f"{ratio:>6.2f}x (higher is better)")
        if ratio < 1.0 - threshold:
            failures.append(
                f"served-queries/sec regressed "
                f"{100 * (1 - ratio):.1f}% ({b_qps:.0f} -> "
                f"{c_qps:.0f}), threshold {100 * threshold:.0f}%")
    return failures


def compare_speedup(one_thread, n_thread, floor):
    """Gate the sharded scheduler's scaling. Empty list = pass."""
    failures = []
    base = one_thread.get("aggregate", {}).get("events_per_sec")
    cur = n_thread.get("aggregate", {}).get("events_per_sec")
    threads = n_thread.get("aggregate", {}).get("threads")
    if not base or not cur:
        return [f"aggregate events_per_sec missing (1-thread={base}, "
                f"N-thread={cur})"]
    speedup = cur / base
    print(f"speedup: {speedup:.2f}x at {threads:.0f} thread(s) "
          f"({base:.0f} -> {cur:.0f} ev/s), floor {floor:.2f}x")
    if floor > 0 and speedup < floor:
        failures.append(
            f"{threads:.0f}-thread aggregate speedup {speedup:.2f}x "
            f"is below the {floor:.2f}x floor")
    return failures


def synthetic_record(eps):
    """A minimal structurally valid record at `eps` events/sec."""
    w = {name: {f: 1.0 for f in NUMERIC_FIELDS} for name in SUITE}
    for entry in w.values():
        entry["events_per_sec"] = eps
    return {
        "schema": "nova-bench-6",
        "workloads": w,
        "aggregate": {
            "events": 1.0, "host_seconds": 1.0, "events_per_sec": eps,
            "legacy_events_per_sec": eps, "speedup_vs_legacy": 1.0,
            "threads": 1.0,
        },
    }


def synthetic_serving(p99, qps, tenants=2):
    """A minimal structurally valid nova-serving-1 report."""
    lat = {f: 1 for f in SERVING_QUANTILE_FIELDS}
    lat["count"] = 10
    lat["p99"] = p99
    return {
        "schema": "nova-serving-1",
        "tenants": tenants,
        "offered": 12, "served": 10, "shed": 2, "pending_at_end": 0,
        "batches": 5, "makespan_ticks": 1000,
        "served_qps": qps,
        "latency_ticks": lat,
        "fairness_jain_x1000": 1000,
        "per_tenant": [
            {"tenant": t, "offered": 6, "served": 5, "shed": 1,
             "pending": 0}
            for t in range(tenants)
        ],
        "fingerprint": "0x1",
    }


def self_test():
    baseline = synthetic_record(1_000_000.0)
    ok = compare(baseline, copy.deepcopy(baseline), 0.15)
    if ok:
        print("self-test: identical records must pass", file=sys.stderr)
        return 1
    regressed = synthetic_record(800_000.0)  # 20% slower
    failures = compare(baseline, regressed, 0.15)
    if not failures:
        print("self-test: a 20% regression must fail the 15% gate",
              file=sys.stderr)
        return 1
    improved = synthetic_record(1_200_000.0)
    if compare(baseline, improved, 0.15):
        print("self-test: improvements must pass", file=sys.stderr)
        return 1
    schema_errors = validate(synthetic_record(1.0))
    if schema_errors:
        print("self-test: synthetic record must validate:",
              schema_errors, file=sys.stderr)
        return 1

    serving = synthetic_serving(p99=1000, qps=500.0)
    if validate_serving(serving):
        print("self-test: synthetic serving report must validate:",
              validate_serving(serving), file=sys.stderr)
        return 1
    if compare_serving(serving, copy.deepcopy(serving), 0.15):
        print("self-test: identical serving reports must pass",
              file=sys.stderr)
        return 1
    slow_tail = synthetic_serving(p99=1200, qps=500.0)  # +20% p99
    if not compare_serving(serving, slow_tail, 0.15):
        print("self-test: a 20% p99 latency growth must fail the "
              "15% gate", file=sys.stderr)
        return 1
    low_qps = synthetic_serving(p99=1000, qps=400.0)  # -20% qps
    if not compare_serving(serving, low_qps, 0.15):
        print("self-test: a 20% served-qps drop must fail the 15% "
              "gate", file=sys.stderr)
        return 1
    better = synthetic_serving(p99=800, qps=600.0)
    if compare_serving(serving, better, 0.15):
        print("self-test: serving improvements must pass",
              file=sys.stderr)
        return 1

    if compare_speedup(synthetic_record(1_000_000.0),
                       synthetic_record(1_500_000.0), 1.2):
        print("self-test: a 1.5x speedup must clear the 1.2x floor",
              file=sys.stderr)
        return 1
    if not compare_speedup(synthetic_record(1_000_000.0),
                           synthetic_record(1_100_000.0), 1.2):
        print("self-test: a 1.1x speedup must miss the 1.2x floor",
              file=sys.stderr)
        return 1
    if compare_speedup(synthetic_record(1_000_000.0),
                       synthetic_record(900_000.0), 0):
        print("self-test: --floor 0 must never gate", file=sys.stderr)
        return 1

    print("self-test: regression gates trip as designed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--validate", metavar="FILE")
    mode.add_argument("--compare", nargs=2,
                      metavar=("BASELINE", "CURRENT"))
    mode.add_argument("--validate-serving", metavar="FILE")
    mode.add_argument("--compare-serving", nargs=2,
                      metavar=("BASELINE", "CURRENT"))
    mode.add_argument("--speedup", nargs=2,
                      metavar=("ONE_THREAD", "N_THREAD"))
    mode.add_argument("--self-test", action="store_true")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional regression "
                         "(default 0.15)")
    ap.add_argument("--floor", type=float, default=1.2,
                    help="minimum N-thread/1-thread aggregate "
                         "speedup for --speedup; 0 = report only "
                         "(default 1.2)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.validate:
        errors = validate(load(args.validate), args.validate)
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        if not errors:
            print(f"{args.validate}: valid nova-bench-6 record")
        return 1 if errors else 0

    if args.validate_serving:
        errors = validate_serving(load(args.validate_serving),
                                  args.validate_serving)
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        if not errors:
            print(f"{args.validate_serving}: valid nova-serving-1 "
                  "report")
        return 1 if errors else 0

    if args.compare_serving:
        baseline, current = (load(p) for p in args.compare_serving)
        for doc, path in ((baseline, args.compare_serving[0]),
                          (current, args.compare_serving[1])):
            errors = validate_serving(doc, path)
            if errors:
                for e in errors:
                    print(f"error: {e}", file=sys.stderr)
                return 1
        failures = compare_serving(baseline, current, args.threshold)
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        if not failures:
            print("bench_compare: serving SLOs within "
                  f"{100 * args.threshold:.0f}%")
        return 1 if failures else 0

    if args.speedup:
        one, many = (load(p) for p in args.speedup)
        failures = compare_speedup(one, many, args.floor)
        for f in failures:
            print(f"REGRESSION: {f}", file=sys.stderr)
        return 1 if failures else 0

    baseline, current = (load(p) for p in args.compare)
    for doc, path in ((baseline, args.compare[0]),
                      (current, args.compare[1])):
        errors = validate(doc, path)
        if errors:
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
            return 1
    failures = compare(baseline, current, args.threshold)
    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    if not failures:
        print("bench_compare: no regression beyond "
              f"{100 * args.threshold:.0f}%")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
