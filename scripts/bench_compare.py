#!/usr/bin/env python3
"""Validate and compare nova-bench-6 perf records (docs/CI.md).

Modes:
  bench_compare.py --validate FILE
      Schema-check one record: every suite workload present with
      positive events, host seconds and events/sec, backend fingerprints
      recorded, and the aggregate block consistent.

  bench_compare.py --compare BASELINE CURRENT [--threshold 0.15]
      Regression gate: fail (exit 1) when any workload's events/sec —
      or the aggregate — drops more than THRESHOLD relative to the
      baseline. Improvements and noise inside the threshold pass.

  bench_compare.py --self-test
      Prove the gate trips: synthesize a 20% regression of an embedded
      baseline and require --compare to reject it.
"""

import argparse
import copy
import json
import sys

SUITE = [
    "bfs_rmat", "bfs_grid",
    "sssp_rmat", "sssp_grid",
    "pr_rmat", "pr_grid",
    "cc_rmat", "cc_grid",
    "bc_rmat", "bc_grid",
]

NUMERIC_FIELDS = [
    "sim_ticks", "events", "host_seconds", "events_per_sec",
    "legacy_host_seconds", "legacy_events_per_sec", "speedup_vs_legacy",
    "fingerprint", "threads", "peak_rss_kb",
]


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def validate(doc, path="<record>"):
    errors = []
    if doc.get("schema") != "nova-bench-6":
        errors.append(f"{path}: schema is {doc.get('schema')!r}, "
                      "expected 'nova-bench-6'")
    workloads = doc.get("workloads", {})
    for name in SUITE:
        w = workloads.get(name)
        if w is None:
            errors.append(f"{path}: workload '{name}' missing")
            continue
        for field in NUMERIC_FIELDS:
            if not isinstance(w.get(field), (int, float)):
                errors.append(f"{path}: {name}.{field} missing or "
                              "non-numeric")
        for field in ("events", "host_seconds", "events_per_sec",
                      "sim_ticks", "threads", "peak_rss_kb"):
            if isinstance(w.get(field), (int, float)) and w[field] <= 0:
                errors.append(f"{path}: {name}.{field} must be positive")
    agg = doc.get("aggregate", {})
    for field in ("events", "host_seconds", "events_per_sec",
                  "legacy_events_per_sec", "speedup_vs_legacy",
                  "threads"):
        if not isinstance(agg.get(field), (int, float)) or agg[field] <= 0:
            errors.append(f"{path}: aggregate.{field} missing or "
                          "non-positive")
    return errors


def compare(baseline, current, threshold):
    """Return a list of regression messages (empty = pass)."""
    failures = []
    base_w = baseline.get("workloads", {})
    cur_w = current.get("workloads", {})
    print(f"{'workload':<12} {'baseline ev/s':>14} {'current ev/s':>14} "
          f"{'ratio':>7}")
    for name in SUITE:
        b = base_w.get(name, {}).get("events_per_sec")
        c = cur_w.get(name, {}).get("events_per_sec")
        if not b or not c:
            failures.append(f"{name}: missing events_per_sec "
                            f"(baseline={b}, current={c})")
            continue
        ratio = c / b
        print(f"{name:<12} {b:>14.0f} {c:>14.0f} {ratio:>6.2f}x")
        if ratio < 1.0 - threshold:
            failures.append(
                f"{name}: events/sec regressed {100 * (1 - ratio):.1f}% "
                f"({b:.0f} -> {c:.0f}), threshold "
                f"{100 * threshold:.0f}%")
    b = baseline.get("aggregate", {}).get("events_per_sec")
    c = current.get("aggregate", {}).get("events_per_sec")
    if b and c:
        ratio = c / b
        print(f"{'aggregate':<12} {b:>14.0f} {c:>14.0f} {ratio:>6.2f}x")
        if ratio < 1.0 - threshold:
            failures.append(
                f"aggregate: events/sec regressed "
                f"{100 * (1 - ratio):.1f}%, threshold "
                f"{100 * threshold:.0f}%")
    else:
        failures.append("aggregate events_per_sec missing")
    return failures


def synthetic_record(eps):
    """A minimal structurally valid record at `eps` events/sec."""
    w = {name: {f: 1.0 for f in NUMERIC_FIELDS} for name in SUITE}
    for entry in w.values():
        entry["events_per_sec"] = eps
    return {
        "schema": "nova-bench-6",
        "workloads": w,
        "aggregate": {
            "events": 1.0, "host_seconds": 1.0, "events_per_sec": eps,
            "legacy_events_per_sec": eps, "speedup_vs_legacy": 1.0,
            "threads": 1.0,
        },
    }


def self_test():
    baseline = synthetic_record(1_000_000.0)
    ok = compare(baseline, copy.deepcopy(baseline), 0.15)
    if ok:
        print("self-test: identical records must pass", file=sys.stderr)
        return 1
    regressed = synthetic_record(800_000.0)  # 20% slower
    failures = compare(baseline, regressed, 0.15)
    if not failures:
        print("self-test: a 20% regression must fail the 15% gate",
              file=sys.stderr)
        return 1
    improved = synthetic_record(1_200_000.0)
    if compare(baseline, improved, 0.15):
        print("self-test: improvements must pass", file=sys.stderr)
        return 1
    schema_errors = validate(synthetic_record(1.0))
    if schema_errors:
        print("self-test: synthetic record must validate:",
              schema_errors, file=sys.stderr)
        return 1
    print("self-test: regression gate trips as designed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--validate", metavar="FILE")
    mode.add_argument("--compare", nargs=2,
                      metavar=("BASELINE", "CURRENT"))
    mode.add_argument("--self-test", action="store_true")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional events/sec drop "
                         "(default 0.15)")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if args.validate:
        errors = validate(load(args.validate), args.validate)
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        if not errors:
            print(f"{args.validate}: valid nova-bench-6 record")
        return 1 if errors else 0

    baseline, current = (load(p) for p in args.compare)
    for doc, path in ((baseline, args.compare[0]),
                      (current, args.compare[1])):
        errors = validate(doc, path)
        if errors:
            for e in errors:
                print(f"error: {e}", file=sys.stderr)
            return 1
    failures = compare(baseline, current, args.threshold)
    for f in failures:
        print(f"REGRESSION: {f}", file=sys.stderr)
    if not failures:
        print("bench_compare: no regression beyond "
              f"{100 * args.threshold:.0f}%")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
