#!/usr/bin/env bash
#
# One-command correctness gate (docs/STATIC_ANALYSIS.md):
#
#   1. Debug + AddressSanitizer/UBSan build with -Werror; full ctest
#      (unit tests, novalint tree scan, verify-smoke differential fuzz)
#      — any sanitizer report is fatal (-fno-sanitize-recover).
#   2. Release (RelWithDebInfo) build with -Werror; full ctest.
#   2c. ThreadSanitizer build running the parallel-scheduler battery
#      and a --cross-sched differential smoke (docs/PARALLEL.md).
#   3. clang-tidy over the changed-most sources when available
#      (opt-in: CHECK_CLANG_TIDY=1).
#
# Usage: scripts/check.sh [jobs]

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"

# 0. Shell hygiene: every script under scripts/ must pass shellcheck.
#    Skipped (with a notice) where shellcheck is not installed; CI
#    always installs it, so the gate cannot rot silently.
if command -v shellcheck >/dev/null; then
    echo "=== shellcheck scripts/*.sh ==="
    shellcheck scripts/*.sh
else
    echo "check.sh: shellcheck not installed; skipping shell lint" >&2
fi

run_config() {
    local dir="$1"; shift
    echo "=== configure ${dir} ($*) ==="
    cmake -B "${dir}" -S . -DNOVA_WERROR=ON "$@" >/dev/null
    echo "=== build ${dir} ==="
    cmake --build "${dir}" -j "${JOBS}"
    echo "=== ctest ${dir} ==="
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# 1. Sanitized debug gate: memory safety + UB + determinism under ASan.
run_config build-san -DCMAKE_BUILD_TYPE=Debug \
    -DNOVA_SANITIZE=address,undefined

# 2. Optimized gate: the configuration benchmarks and users run.
run_config build-rel -DCMAKE_BUILD_TYPE=RelWithDebInfo

# 2b. Fault-injection soak (docs/RESILIENCE.md): differential fuzz with
#     the full hardware fault schedule armed, several seeds, under the
#     sanitized build — recovery paths must be memory-safe and the
#     engines must still agree on every case.
SOAK_FAULTS='dram.bitflip:every=40+dram.txn:every=50+cache.ecc:every=35'
SOAK_FAULTS+='+noc.drop:every=30+noc.corrupt:every=45+noc.dup:every=55'
SOAK_FAULTS+='+spill.corrupt:every=5+reduce.bitflip:every=25'
echo "=== fault-injection soak (sanitized build) ==="
for seed in 3 17 91; do
    ./build-san/tools/nova_cli verify --fuzz=10 --seed="${seed}" \
        --faults="${SOAK_FAULTS}"
done

# 2b'. Crash-recovery supervision soak (docs/RESILIENCE.md,
#      "Supervision"): one campaign per graph family, each injecting a
#      GPN hard-death plus a shard-worker crash under the supervisor;
#      every campaign must restart at least once and still pass the
#      differential check.
echo "=== supervision soak (release build) ==="
bash scripts/supervise_soak.sh ./build-rel/tools/nova_cli \
    build-rel/supervise_soak_work 13 7

# 2c. ThreadSanitizer gate: the conservative-PDES scheduler's worker
#     pool, mailboxes and sharded fabric under TSan. Runs the dedicated
#     parallel battery (multi-thread inside each test) plus a sharded
#     differential smoke rather than the full suite — TSan slows the
#     serial tests ~10x without adding thread coverage there.
echo "=== configure build-tsan (ThreadSanitizer) ==="
cmake -B build-tsan -S . -DNOVA_WERROR=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DNOVA_SANITIZE=thread >/dev/null
echo "=== build build-tsan ==="
cmake --build build-tsan -j "${JOBS}"
echo "=== TSan: parallel-scheduler battery ==="
./build-tsan/tests/nova_tests --gtest_filter='Parallel*'
echo "=== TSan: cross-sched differential smoke ==="
./build-tsan/tools/nova_cli verify --fuzz=6 --seed=7 --engines=nova \
    --cross-sched=4

# 3. Optional clang-tidy pass (mirrors the novalint rules natively
#    expressible in clang-tidy; see .clang-tidy).
if [[ "${CHECK_CLANG_TIDY:-0}" == "1" ]] && command -v clang-tidy >/dev/null
then
    echo "=== clang-tidy ==="
    cmake -B build-rel -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    git ls-files 'src/**/*.cc' 'tools/**/*.cc' |
        xargs -P "${JOBS}" -n 1 clang-tidy -p build-rel --quiet
fi

echo "check.sh: all gates passed"
