#!/usr/bin/env bash
#
# Generate the machine-readable perf record (BENCH_6.json) from the
# fixed 10-workload perf_smoke suite (docs/CI.md).
#
# Usage: scripts/bench_json.sh [OUT_JSON]
#
# Environment:
#   BUILD_DIR      build tree to use                  [build]
#   BENCH_QUICK    1 = pass --quick (smaller graphs)  [0]
#   BENCH_THREADS  host threads for the sharded
#                  scheduler (>1 switches to the
#                  conservative-PDES per-GPN shards)  [1]
#
# The suite runs every workload on both event-queue backends and fails
# hard if their event-order fingerprints differ, so a green run is also
# an ordering proof.

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

OUT="${1:-BENCH_6.json}"
BUILD="${BUILD_DIR:-build}"
THREADS="${BENCH_THREADS:-1}"

EXTRA=(--threads="${THREADS}")
if [[ "${BENCH_QUICK:-0}" == "1" ]]; then
    EXTRA+=(--quick)
fi

if [[ ! -x "${BUILD}/bench/perf_smoke" ]]; then
    echo "bench_json.sh: building perf_smoke in ${BUILD}" >&2
    cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 4)" \
        --target perf_smoke
fi

"${BUILD}/bench/perf_smoke" --out="${OUT}" "${EXTRA[@]}" >/dev/null
echo "bench_json.sh: wrote ${OUT} (${THREADS} thread(s))"
