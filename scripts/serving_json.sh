#!/usr/bin/env bash
#
# Generate the machine-readable serving record (BENCH_7, schema
# nova-serving-1) from the canonical multi-tenant serving campaign
# (docs/SERVING.md, docs/CI.md).
#
# Usage: scripts/serving_json.sh [OUT_JSON]
#
# Environment:
#   BUILD_DIR      build tree to use                       [build]
#   SERVE_THREADS  host threads per engine dispatch (the
#                  report is bit-identical for any value)  [1]
#   SERVE_QUEUE    event-queue backend (calendar|legacy)   [calendar]
#
# The campaign is fixed (graph, arrivals, seed), so the report — down
# to the fingerprint — must be byte-identical across hosts, thread
# counts and queue backends. CI regenerates it at 1 and 8 threads and
# diffs the two before gating against bench/serving_baseline.json.

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

OUT="${1:-BENCH_7.json}"
BUILD="${BUILD_DIR:-build}"
THREADS="${SERVE_THREADS:-1}"
QUEUE="${SERVE_QUEUE:-calendar}"

if [[ ! -x "${BUILD}/tools/nova_cli" ]]; then
    echo "serving_json.sh: building nova_cli in ${BUILD}" >&2
    cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "${BUILD}" -j "$(nproc 2>/dev/null || echo 4)" \
        --target nova_cli
fi

"${BUILD}/tools/nova_cli" serve \
    --graph=rmat:256:1024 \
    --arrivals=poisson:4000000 \
    --duration=200000000 \
    --tenants=4 \
    --groups=2 \
    --quota=4 \
    --queue-cap=16 \
    --batch-max=4 \
    --batch-window=2000000 \
    --seed=1 \
    --threads="${THREADS}" \
    --queue-impl="${QUEUE}" \
    --report="${OUT}"
echo "serving_json.sh: wrote ${OUT} (${THREADS} thread(s), ${QUEUE})"
