#!/usr/bin/env bash
#
# Crash-recovery supervision soak (docs/RESILIENCE.md, "Supervision"):
#
#   1. `verify --soak=N`: N supervised crash/restart campaigns, one per
#      graph family, each injecting a GPN hard-death plus a shard-worker
#      crash at fuzz-chosen ticks. Every campaign must finish with at
#      least one restart and pass the differential check.
#   2. One supervised run with a recovery report: assert the JSON says
#      the run was restarted, a vertex slice was remapped onto the
#      survivors, and no crash loop was declared.
#   3. The give-up contract: a child that always crashes must exhaust
#      its retries and exit 3 (sim::exitSupervisionFailed).
#
# Usage: scripts/supervise_soak.sh <path-to-nova_cli> [workdir]
#                                  [campaigns] [seed]

set -euo pipefail

CLI="$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"
WORK="${2:-$(mktemp -d)}"
CAMPAIGNS="${3:-6}"
SEED="${4:-7}"
SUPERVISE="$(dirname "${CLI}")/../nova_supervise"
[ -x "${SUPERVISE}" ] || SUPERVISE="$(dirname "${CLI}")/nova_supervise"

mkdir -p "${WORK}"
cd "${WORK}"

echo "=== soak: ${CAMPAIGNS} supervised crash/restart campaigns ==="
"${CLI}" verify --soak="${CAMPAIGNS}" --seed="${SEED}"

echo "=== supervised run with recovery report ==="
CKPT="${WORK}/supervised.ckpt"
REPORT="${WORK}/recovery.json"
rm -f "${CKPT}" "${CKPT}".* "${REPORT}"
"${CLI}" --supervise run --engine=nova --workload=pr \
    --graph=uniform:260:1700 --seed=5 --gpns=2 \
    --checkpoint-every=1 --checkpoint-file="${CKPT}" \
    --keep-generations=2 --crash-bundle="${WORK}/crash_bundle.txt" \
    --faults='gpn.dead@gpn1:tick=9+shard.crash@gpn0:tick=40' \
    --max-restarts=3 --backoff-ms=0 --crash-loop=2 \
    --recovery-report="${REPORT}" | tee supervised.txt
grep -q "validation: OK" supervised.txt

json_u64() {
    sed -n "s/.*\"$1\": \([0-9][0-9]*\).*/\1/p" "${REPORT}" | head -1
}
test -s "${REPORT}"
grep -q '"schema": "nova-recovery-1"' "${REPORT}"
grep -q '"crashLoop": false' "${REPORT}"
RESTARTS="$(json_u64 restarts)"
MIGRATED="$(json_u64 migratedVertices)"
if [ "${RESTARTS}" -lt 1 ]; then
    echo "supervise_soak: expected at least one restart" >&2
    exit 1
fi
if [ "${MIGRATED}" -lt 1 ]; then
    echo "supervise_soak: expected a vertex-slice remap" >&2
    exit 1
fi
echo "supervised run: ${RESTARTS} restart(s), ${MIGRATED} vertices remapped"

echo "=== give-up contract: always-crashing child exits 3 ==="
set +e
"${SUPERVISE}" --max-restarts=2 --backoff-ms=0 --crash-loop=5 -- \
    /bin/sh -c 'exit 2' >/dev/null 2>&1
RC=$?
set -e
if [ "${RC}" -ne 3 ]; then
    echo "supervise_soak: give-up exit was ${RC}, want 3" >&2
    exit 1
fi

echo "supervise_soak: OK"
