#!/usr/bin/env bash
#
# Local dry-run of .github/workflows/ci.yml for machines without `act`.
#
# Reproduces each job's steps with whatever the host provides, skipping
# matrix entries whose toolchain is missing (e.g. no clang) instead of
# failing, and reports a per-job summary. The workflow file itself is
# syntax-checked first so an edit that breaks the YAML fails here too.
#
# Usage: scripts/ci_local.sh [--quick]
#   --quick  use the small bench graphs (what you want on a laptop)
#
# Environment:
#   CI_LOCAL_JOBS  space-separated subset of jobs to run
#                  (default: "build-test sanitize-lint bench-smoke
#                             serving-gate")

set -uo pipefail
cd "$(dirname "$0")/.." || exit 1

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1
JOBS="${CI_LOCAL_JOBS:-build-test sanitize-lint bench-smoke serving-gate}"

pass=()
skip=()
fail=()

note() { printf '\n=== ci_local: %s ===\n' "$*"; }

# --- workflow syntax check -------------------------------------------------
note "validating .github/workflows/ci.yml"
if command -v python3 >/dev/null && python3 -c 'import yaml' 2>/dev/null;
then
    python3 - <<'EOF' || exit 1
import yaml
doc = yaml.safe_load(open(".github/workflows/ci.yml"))
jobs = doc.get("jobs", {})
assert jobs, "workflow has no jobs"
for name, job in jobs.items():
    assert job.get("steps"), f"job {name} has no steps"
print(f"ci.yml OK: jobs = {', '.join(jobs)}")
EOF
else
    echo "pyyaml unavailable; skipping workflow syntax check"
fi

# --- job: build-test -------------------------------------------------------
if [[ " ${JOBS} " == *" build-test "* ]]; then
    for compiler in gcc clang; do
        cc=${compiler}
        if [[ ${compiler} == gcc ]]; then cxx=g++; else cxx=clang++; fi
        if ! command -v "${cxx}" >/dev/null; then
            note "build-test/${compiler}: ${cxx} not installed -- SKIP"
            skip+=("build-test/${compiler}")
            continue
        fi
        launcher=()
        command -v ccache >/dev/null &&
            launcher=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                      -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
        for build_type in Debug RelWithDebInfo; do
            name="build-test/${compiler}/${build_type}"
            note "${name}"
            dir="build-ci-${compiler}-${build_type}"
            if CC=${cc} CXX=${cxx} cmake -B "${dir}" -S . \
                   -DCMAKE_BUILD_TYPE="${build_type}" \
                   -DNOVA_WERROR=ON "${launcher[@]}" &&
               cmake --build "${dir}" -j "$(nproc)" &&
               ctest --test-dir "${dir}" --output-on-failure \
                   -j "$(nproc)"; then
                pass+=("${name}")
            else
                fail+=("${name}")
            fi
        done
    done
fi

# --- job: sanitize-lint ----------------------------------------------------
if [[ " ${JOBS} " == *" sanitize-lint "* ]]; then
    note "sanitize-lint: scripts/check.sh"
    if bash scripts/check.sh; then
        note "sanitize-lint: novalint tree scan"
        if cmake --build build-rel --target novalint -j "$(nproc)" &&
           ./build-rel/tools/novalint/novalint src tools bench examples; then
            pass+=("sanitize-lint")
        else
            fail+=("sanitize-lint")
        fi
    else
        fail+=("sanitize-lint")
    fi
fi

# --- job: bench-smoke ------------------------------------------------------
if [[ " ${JOBS} " == *" bench-smoke "* ]]; then
    note "bench-smoke"
    out="BENCH_5.ci.json"
    bench_ok=1
    BENCH_QUICK=${QUICK} scripts/bench_json.sh "${out}" || bench_ok=0
    if [[ ${bench_ok} == 1 ]]; then
        scripts/bench_compare.py --validate "${out}" || bench_ok=0
        scripts/bench_compare.py --self-test || bench_ok=0
        if [[ ${QUICK} == 1 ]]; then
            echo "quick graphs: skipping baseline comparison" \
                 "(sizes differ from bench/baseline.json)"
        else
            scripts/bench_compare.py \
                --compare bench/baseline.json "${out}" \
                --threshold 0.15 || bench_ok=0
        fi
    fi
    # 8-thread speedup, gated only with real parallelism (as in CI).
    if [[ ${bench_ok} == 1 ]]; then
        out8="BENCH_5.t8.ci.json"
        BENCH_QUICK=${QUICK} BENCH_THREADS=8 \
            scripts/bench_json.sh "${out8}" || bench_ok=0
        if [[ ${bench_ok} == 1 ]]; then
            cores="$(nproc)"
            floor=0
            [[ ${cores} -ge 4 ]] && floor=1.2
            echo "8-thread speedup floor: ${floor}x (${cores} cores)"
            scripts/bench_compare.py --speedup "${out}" "${out8}" \
                --floor "${floor}" || bench_ok=0
        fi
    fi
    if [[ ${bench_ok} == 1 ]]; then
        pass+=("bench-smoke")
    else
        fail+=("bench-smoke")
    fi
fi

# --- job: serving-gate -------------------------------------------------------
if [[ " ${JOBS} " == *" serving-gate "* ]]; then
    note "serving-gate"
    serve_ok=1
    s1="BENCH_7.ci.json"
    s8="BENCH_7.t8.ci.json"
    scripts/serving_json.sh "${s1}" || serve_ok=0
    if [[ ${serve_ok} == 1 ]]; then
        SERVE_THREADS=8 scripts/serving_json.sh "${s8}" || serve_ok=0
    fi
    if [[ ${serve_ok} == 1 ]]; then
        if diff "${s1}" "${s8}"; then
            echo "serving reports bit-identical at 1 and 8 threads"
        else
            echo "serving reports DIVERGED between thread counts"
            serve_ok=0
        fi
        scripts/bench_compare.py --validate-serving "${s1}" || serve_ok=0
        scripts/bench_compare.py --self-test >/dev/null || serve_ok=0
        scripts/bench_compare.py \
            --compare-serving bench/serving_baseline.json "${s1}" \
            --threshold 0.15 || serve_ok=0
    fi
    if [[ ${serve_ok} == 1 ]]; then
        pass+=("serving-gate")
    else
        fail+=("serving-gate")
    fi
fi

# --- summary ---------------------------------------------------------------
note "summary"
printf 'passed:  %s\n' "${pass[*]:-none}"
printf 'skipped: %s\n' "${skip[*]:-none}"
printf 'failed:  %s\n' "${fail[*]:-none}"
[[ ${#fail[@]} -eq 0 ]] || exit 1
echo CI_LOCAL_OK
