#!/usr/bin/env bash
#
# Fresh-process checkpoint round trip (docs/RESILIENCE.md):
#
#   1. Run a BSP workload to completion; record the final fingerprint.
#   2. Re-run, checkpointing at iteration N and stopping there — this
#      models a killed run.
#   3. Resume from the checkpoint file in a NEW nova_cli process.
#   4. The resumed run's full output (fingerprint line included) must be
#      bit-identical to the uninterrupted run's.
#
# Usage: scripts/ckpt_roundtrip.sh <path-to-nova_cli> [workdir]

set -euo pipefail

CLI="$1"
WORK="${2:-$(mktemp -d)}"
mkdir -p "${WORK}"
CKPT="${WORK}/roundtrip.ckpt"
ARGS=(run --engine=nova --workload=pr --graph=uniform:260:1700 --seed=5)

echo "=== uninterrupted run ==="
"${CLI}" "${ARGS[@]}" | tee "${WORK}/whole.txt"

echo "=== run killed at the iteration-3 checkpoint ==="
"${CLI}" "${ARGS[@]}" --stop-after=3 --checkpoint-file="${CKPT}" \
    | tee "${WORK}/stopped.txt"
grep -q "stopped at checkpoint" "${WORK}/stopped.txt"
test -s "${CKPT}"

echo "=== resume in a fresh process ==="
"${CLI}" "${ARGS[@]}" --resume="${CKPT}" | tee "${WORK}/resumed.txt"

echo "=== compare ==="
if ! diff "${WORK}/whole.txt" "${WORK}/resumed.txt"; then
    echo "ckpt_roundtrip: resumed run diverged from the whole run" >&2
    exit 1
fi
grep -q "validation: OK" "${WORK}/resumed.txt"
grep -q "fingerprint: 0x" "${WORK}/resumed.txt"

# Same exercise with fault injection armed: recovery state (opportunity
# counters, rng streams) must survive the checkpoint too.
FAULTS='dram.bitflip:every=50+noc.drop:every=40+reduce.bitflip:every=35'
echo "=== faulted round trip ==="
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    | tee "${WORK}/fwhole.txt"
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    --stop-after=4 --checkpoint-file="${CKPT}" >/dev/null
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    --resume="${CKPT}" | tee "${WORK}/fresumed.txt"
if ! diff "${WORK}/fwhole.txt" "${WORK}/fresumed.txt"; then
    echo "ckpt_roundtrip: faulted resume diverged" >&2
    exit 1
fi
grep -q "recovered" "${WORK}/fresumed.txt"

# Sharded-scheduler round trip (docs/PARALLEL.md): a checkpoint written
# by a 4-thread run must resume bit-identically on 1 thread, and the
# whole-run output itself must not depend on the thread count.
PARGS=(run --engine=nova --workload=pr --graph=uniform:260:1700 --seed=5
       --gpns=2 --deterministic-merge)
echo "=== parallel round trip (4 threads -> 1 thread) ==="
"${CLI}" "${PARGS[@]}" --threads=1 | tee "${WORK}/pwhole.txt"
"${CLI}" "${PARGS[@]}" --threads=4 | tee "${WORK}/pwhole4.txt"
if ! diff "${WORK}/pwhole.txt" "${WORK}/pwhole4.txt"; then
    echo "ckpt_roundtrip: thread count changed the run output" >&2
    exit 1
fi
grep -q "merged fingerprint: 0x" "${WORK}/pwhole.txt"
"${CLI}" "${PARGS[@]}" --threads=4 --stop-after=3 \
    --checkpoint-file="${CKPT}" >/dev/null
"${CLI}" "${PARGS[@]}" --threads=1 --resume="${CKPT}" \
    | tee "${WORK}/presumed.txt"
if ! diff "${WORK}/pwhole.txt" "${WORK}/presumed.txt"; then
    echo "ckpt_roundtrip: parallel resume diverged from the whole run" >&2
    exit 1
fi

echo "=== parallel round trip (1 thread -> 4 threads) ==="
"${CLI}" "${PARGS[@]}" --threads=1 --stop-after=3 \
    --checkpoint-file="${CKPT}" >/dev/null
"${CLI}" "${PARGS[@]}" --threads=4 --resume="${CKPT}" \
    | tee "${WORK}/presumed4.txt"
if ! diff "${WORK}/pwhole.txt" "${WORK}/presumed4.txt"; then
    echo "ckpt_roundtrip: widened parallel resume diverged" >&2
    exit 1
fi

echo "ckpt_roundtrip: OK"
