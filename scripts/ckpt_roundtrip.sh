#!/usr/bin/env bash
#
# Fresh-process checkpoint round trip (docs/RESILIENCE.md):
#
#   1. Run a BSP workload to completion; record the final fingerprint.
#   2. Re-run, checkpointing at iteration N and stopping there — this
#      models a killed run.
#   3. Resume from the checkpoint file in a NEW nova_cli process.
#   4. The resumed run's full output (fingerprint line included) must be
#      bit-identical to the uninterrupted run's.
#
# Usage: scripts/ckpt_roundtrip.sh <path-to-nova_cli> [workdir]

set -euo pipefail

CLI="$1"
WORK="${2:-$(mktemp -d)}"
mkdir -p "${WORK}"
CKPT="${WORK}/roundtrip.ckpt"
ARGS=(run --engine=nova --workload=pr --graph=uniform:260:1700 --seed=5)

echo "=== uninterrupted run ==="
"${CLI}" "${ARGS[@]}" | tee "${WORK}/whole.txt"

echo "=== run killed at the iteration-3 checkpoint ==="
"${CLI}" "${ARGS[@]}" --stop-after=3 --checkpoint-file="${CKPT}" \
    | tee "${WORK}/stopped.txt"
grep -q "stopped at checkpoint" "${WORK}/stopped.txt"
test -s "${CKPT}"

echo "=== resume in a fresh process ==="
"${CLI}" "${ARGS[@]}" --resume="${CKPT}" | tee "${WORK}/resumed.txt"

echo "=== compare ==="
if ! diff "${WORK}/whole.txt" "${WORK}/resumed.txt"; then
    echo "ckpt_roundtrip: resumed run diverged from the whole run" >&2
    exit 1
fi
grep -q "validation: OK" "${WORK}/resumed.txt"
grep -q "fingerprint: 0x" "${WORK}/resumed.txt"

# Same exercise with fault injection armed: recovery state (opportunity
# counters, rng streams) must survive the checkpoint too.
FAULTS='dram.bitflip:every=50+noc.drop:every=40+reduce.bitflip:every=35'
echo "=== faulted round trip ==="
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    | tee "${WORK}/fwhole.txt"
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    --stop-after=4 --checkpoint-file="${CKPT}" >/dev/null
"${CLI}" "${ARGS[@]}" --faults="${FAULTS}" --fault-seed=11 \
    --resume="${CKPT}" | tee "${WORK}/fresumed.txt"
if ! diff "${WORK}/fwhole.txt" "${WORK}/fresumed.txt"; then
    echo "ckpt_roundtrip: faulted resume diverged" >&2
    exit 1
fi
grep -q "recovered" "${WORK}/fresumed.txt"

echo "ckpt_roundtrip: OK"
