#!/usr/bin/env bash
# Full reproduction run: build, test, and regenerate every table/figure.
set -u
cd "$(dirname "$0")/.." || exit 1
cmake -B build -G Ninja > /tmp/cmake_final.log 2>&1
cmake --build build > /tmp/build_final.log 2>&1 || { echo BUILD_FAILED; exit 1; }
ctest --test-dir build 2>&1 | tee test_output.txt > /dev/null
bash scripts/run_benches.sh
echo RUN_ALL_DONE
