#!/usr/bin/env bash
# Regenerate every table/figure into bench_output.txt.
set -u
cd "$(dirname "$0")/.."
{
  for b in $(ls build/bench/* | sort); do
      [ -f "$b" ] && [ -x "$b" ] || continue
      case "$(basename "$b")" in
        *.cmake) continue ;;
      esac
      echo "##### $(basename "$b")"
      "$b"
      echo
  done
} > bench_output.txt 2>&1
echo BENCHES_DONE
