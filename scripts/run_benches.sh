#!/usr/bin/env bash
# Regenerate every table/figure into bench_output.txt.
#
# Each benchmark binary under build/bench runs in sequence; its output
# is appended to bench_output.txt. A binary that is missing or not
# executable is counted as skipped; a binary that exits non-zero is
# counted as failed and makes this script exit non-zero, so CI cannot
# silently lose benchmark coverage.
#
# Environment:
#   BUILD_DIR  build tree to scan [build]

set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

BUILD="${BUILD_DIR:-build}"
OUT="bench_output.txt"

if [[ ! -d "${BUILD}/bench" ]]; then
    echo "run_benches.sh: ${BUILD}/bench does not exist -- build first" >&2
    exit 1
fi

ran=0
skipped=0
failed=0
failed_names=()

: > "${OUT}"
# Glob (not `ls`) so odd filenames cannot word-split; globs already
# expand in sorted order.
for b in "${BUILD}"/bench/*; do
    [[ -e "$b" ]] || continue
    name="$(basename "$b")"
    case "${name}" in
        *.cmake | CMakeFiles | cmake_install.cmake | Makefile) continue ;;
        perf_smoke) continue ;; # JSON suite; driven by bench_json.sh
    esac
    if [[ ! -f "$b" || ! -x "$b" ]]; then
        skipped=$((skipped + 1))
        echo "run_benches.sh: skipping ${name} (not executable)" >&2
        continue
    fi
    # `|| status=$?` keeps set -e from aborting mid-suite: one broken
    # benchmark must not hide the results of the rest.
    status=0
    {
        echo "##### ${name}"
        "$b" 2>&1 || status=$?
        echo
    } >> "${OUT}"
    if [[ ${status} -ne 0 ]]; then
        failed=$((failed + 1))
        failed_names+=("${name} (exit ${status})")
        echo "run_benches.sh: FAILED ${name} (exit ${status})" >&2
    else
        ran=$((ran + 1))
    fi
done

echo "run_benches.sh: ${ran} ran, ${skipped} skipped, ${failed} failed"
if [[ ${failed} -ne 0 ]]; then
    printf 'run_benches.sh: failed: %s\n' "${failed_names[@]}" >&2
    exit 1
fi
echo BENCHES_DONE
