/**
 * @file
 * Quickstart: build a graph, configure a 1-GPN NOVA system, run BFS and
 * print throughput plus the key statistics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

int
main(int argc, char **argv)
{
    using namespace nova;

    // 1. Make a Twitter-like input (1/scale of the paper's graph).
    const double scale = argc > 1 ? std::atof(argv[1]) : 4000.0;
    const graph::NamedGraph input = graph::makeTwitter(scale);
    const graph::Csr &g = input.graph;
    std::printf("graph: %s-equivalent, %u vertices, %llu edges\n",
                input.name.c_str(), g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    // 2. Configure one GPN (Table II) with on-chip capacities scaled to
    //    match the graph scale, and partition vertices randomly.
    const core::NovaConfig cfg = core::NovaConfig{}.scaled(scale);
    core::NovaSystem nova(cfg);
    const auto map = graph::randomMapping(g.numVertices(),
                                          cfg.totalPes(), /*seed=*/1);

    // 3. Run asynchronous BFS from the highest-degree vertex.
    const graph::VertexId src = graph::highestDegreeVertex(g);
    workloads::BfsProgram bfs(src);
    const workloads::RunResult r = nova.run(bfs, g, map);

    // 4. Validate against the sequential reference.
    const auto ref = workloads::reference::bfsDepths(g, src);
    std::uint64_t mismatches = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        mismatches += r.props[v] != ref[v];

    std::printf("time: %.3f ms simulated\n", r.seconds() * 1e3);
    std::printf("throughput: %.2f GTEPS\n", r.gteps());
    std::printf("messages: %llu processed, %llu generated, "
                "%.1f%% coalesced\n",
                static_cast<unsigned long long>(r.messagesProcessed),
                static_cast<unsigned long long>(r.messagesGenerated),
                100.0 * r.coalescingRate());
    std::printf("edge memory utilization: %.1f%%\n",
                100.0 * r.extra.at("edgeMem.utilization"));
    std::printf("validation: %s\n",
                mismatches == 0 ? "OK (matches sequential BFS)"
                                : "MISMATCH");
    return mismatches == 0 ? 0 : 1;
}
