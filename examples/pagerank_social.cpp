/**
 * @file
 * Influencer ranking on a social graph: bulk-synchronous delta
 * PageRank on the Twitter-equivalent input, run on both the NOVA
 * model and the Ligra-like software framework, with a top-10 agreement
 * check — the "who matters in the network" workload the paper's
 * introduction motivates.
 *
 *   ./build/examples/pagerank_social [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "baselines/ligra.hh"
#include "core/system.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/programs.hh"

namespace
{

std::vector<nova::graph::VertexId>
topTen(const std::vector<double> &rank)
{
    std::vector<nova::graph::VertexId> order(rank.size());
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                      [&](auto a, auto b) { return rank[a] > rank[b]; });
    order.resize(10);
    return order;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace nova;

    const double scale = argc > 1 ? std::atof(argv[1]) : 2000.0;
    const graph::NamedGraph social = graph::makeTwitter(scale);
    const graph::Csr &g = social.graph;
    std::printf("social graph: %u users, %llu follows\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));

    const core::NovaConfig cfg = core::NovaConfig{}.scaled(scale);
    core::NovaSystem nova(cfg);
    const auto map =
        graph::randomMapping(g.numVertices(), cfg.totalPes(), 3);

    workloads::PageRankProgram on_nova(0.85, 1e-9, 12);
    const auto rn = nova.run(on_nova, g, map);

    baselines::LigraEngine ligra;
    workloads::PageRankProgram on_ligra(0.85, 1e-9, 12);
    const auto rl = ligra.run(on_ligra, g, map);

    const auto top_nova = topTen(on_nova.rank());
    const auto top_ligra = topTen(on_ligra.rank());

    std::printf("\ntop influencers (NOVA after %llu supersteps):\n",
                static_cast<unsigned long long>(rn.bspIterations));
    for (int i = 0; i < 10; ++i)
        std::printf("  #%2d user %-8u rank %.3e\n", i + 1, top_nova[i],
                    on_nova.rank()[top_nova[i]]);

    const bool agree = top_nova == top_ligra;
    std::printf("\nNOVA: %.3f ms simulated (%.2f GTEPS); Ligra: %.3f "
                "ms wall\n",
                rn.seconds() * 1e3, rn.gteps(), rl.seconds() * 1e3);
    std::printf("top-10 agreement between engines: %s\n",
                agree ? "OK" : "MISMATCH");
    return agree ? 0 : 1;
}
