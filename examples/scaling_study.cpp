/**
 * @file
 * Capacity-planning study: how many GPNs does a graph need, and what
 * does adding GPNs buy? Combines the analytical scaling model
 * (Sec. VI-E) with simulated strong scaling — the workflow a system
 * architect would use before deploying NOVA.
 *
 *   ./build/examples/scaling_study [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "analytic/scaling.hh"
#include "core/system.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

int
main(int argc, char **argv)
{
    using namespace nova;

    const double scale = argc > 1 ? std::atof(argv[1]) : 2000.0;
    const graph::NamedGraph input = graph::makeUrand(scale);
    const graph::Csr &g = input.graph;

    // 1. Analytical sizing at the *paper* scale: what would the
    //    full-size version of this input need?
    analytic::GraphRequirements req;
    req.vertices = input.paperVertices;
    req.edges = input.paperEdges;
    const auto nova_req = analytic::novaRequirements(req);
    std::printf("full-size %s (%.0fM vertices, %.2fB edges) needs: "
                "%u GPNs, %.0f GiB HBM, %.0f GiB DDR, %.1f MiB SRAM\n",
                input.name.c_str(),
                static_cast<double>(req.vertices) / 1e6,
                static_cast<double>(req.edges) / 1e9, nova_req.hbmStacks,
                nova_req.hbmGiB, nova_req.ddrGiB, nova_req.sramMiB);

    // 2. Simulated strong scaling on the scaled stand-in.
    const graph::VertexId src = graph::highestDegreeVertex(g);
    const auto ref = workloads::reference::bfsDepths(g, src);
    std::printf("\nsimulated strong scaling (BFS, %u vertices, %llu "
                "edges):\n",
                g.numVertices(),
                static_cast<unsigned long long>(g.numEdges()));
    std::printf("%-6s %-12s %-10s %-10s %-12s %s\n", "GPNs", "time(ms)",
                "GTEPS", "speedup", "edgeBW util", "valid");
    double base = 0;
    bool all_ok = true;
    for (const std::uint32_t gpns : {1u, 2u, 4u, 8u}) {
        core::NovaConfig cfg = core::NovaConfig{}.scaled(scale);
        cfg.numGpns = gpns;
        core::NovaSystem nova(cfg);
        const auto map =
            graph::randomMapping(g.numVertices(), cfg.totalPes(), 1);
        workloads::BfsProgram bfs(src);
        const auto r = nova.run(bfs, g, map);
        const bool ok = r.props == ref;
        all_ok = all_ok && ok;
        const double ms = r.seconds() * 1e3;
        if (gpns == 1)
            base = ms;
        std::printf("%-6u %-12.3f %-10.2f %-10.2f %-12.1f%% %s\n", gpns,
                    ms, r.gteps(), base / ms,
                    100 * r.extra.at("edgeMem.utilization"),
                    ok ? "ok" : "BAD");
    }
    return all_ok ? 0 : 1;
}
