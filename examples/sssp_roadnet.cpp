/**
 * @file
 * Road-network shortest paths: the scenario the paper's RoadUSA input
 * represents. Runs SSSP on a high-diameter weighted road grid on one
 * NOVA GPN, validates against Dijkstra, and shows why sparse frontiers
 * make the vertex management unit's prefetcher overfetch (Fig. 10's
 * RoadUSA behaviour).
 *
 *   ./build/examples/sssp_roadnet [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/system.hh"
#include "graph/graph_stats.hh"
#include "graph/partition.hh"
#include "graph/presets.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

int
main(int argc, char **argv)
{
    using namespace nova;

    const double scale = argc > 1 ? std::atof(argv[1]) : 2000.0;
    const graph::NamedGraph road = graph::makeRoadUsa(scale);
    const graph::Csr &g = road.graph;
    const auto stats = graph::computeStats(g);
    std::printf("road network: %u junctions, %llu road segments, "
                "diameter >= %u hops\n",
                stats.numVertices,
                static_cast<unsigned long long>(stats.numEdges),
                stats.approxDiameter);

    const core::NovaConfig cfg = core::NovaConfig{}.scaled(scale);
    core::NovaSystem nova(cfg);
    const auto map =
        graph::randomMapping(g.numVertices(), cfg.totalPes(), 7);

    const graph::VertexId depot = graph::highestDegreeVertex(g);
    workloads::SsspProgram sssp(depot);
    const auto r = nova.run(sssp, g, map);

    const auto ref = workloads::reference::ssspDistances(g, depot);
    std::uint64_t mismatches = 0;
    std::uint64_t reached = 0;
    std::uint64_t farthest = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        mismatches += r.props[v] != ref[v];
        if (ref[v] != workloads::infProp) {
            ++reached;
            farthest = std::max(farthest, ref[v]);
        }
    }

    std::printf("source (depot): junction %u\n", depot);
    std::printf("reachable junctions: %llu (%.1f%%), farthest at "
                "weighted distance %llu\n",
                static_cast<unsigned long long>(reached),
                100.0 * static_cast<double>(reached) /
                    g.numVertices(),
                static_cast<unsigned long long>(farthest));
    std::printf("simulated time: %.3f ms, %.2f GTEPS, work efficiency "
                "driven by %llu messages\n",
                r.seconds() * 1e3, r.gteps(),
                static_cast<unsigned long long>(r.messagesGenerated));
    const double wasted = r.extra.at("vertexMem.wastefulPrefetchBytes");
    const double vbytes = r.extra.at("vertexMem.bytesRead") +
                          r.extra.at("vertexMem.bytesWritten");
    std::printf("sparse-frontier overfetch: %.1f%% of vertex-memory "
                "traffic was wasted searching for active vertices\n",
                100.0 * wasted / vbytes);
    std::printf("validation vs Dijkstra: %s\n",
                mismatches == 0 ? "OK" : "MISMATCH");
    return mismatches == 0 ? 0 : 1;
}
