/**
 * @file
 * The per-PE direct-mapped write-back vertex cache (Sec. III-B).
 *
 * The paper configures 64 KiB per PE with 32 B lines (the HBM2 atom) and
 * shows performance is insensitive to its size (Fig. 9a) because graph
 * vertex accesses have almost no locality — the cache mainly provides
 * fine-grained parallel access to memory (MSHR-style outstanding
 * misses). Timing-only: data lives in the caller's functional arrays.
 */

#ifndef NOVA_MEM_CACHE_HH
#define NOVA_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mem/dram.hh"
#include "sim/sim_object.hh"

namespace nova::mem
{

/** Configuration of a DirectMappedCache. */
struct CacheConfig
{
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 64 * 1024;
    /** Line size; matches the vertex-memory atom. */
    std::uint32_t lineBytes = 32;
    /** Hit latency in ticks. */
    sim::Tick hitLatency = 1000;
    /** Maximum outstanding misses. */
    std::uint32_t numMshrs = 16;
    /**
     * Extra latency when the line ECC corrects a bit error on a read
     * (only paid when a "cache.ecc" fault fires).
     */
    sim::Tick eccCorrectLatency = 1000;
};

/**
 * A direct-mapped write-back, write-allocate cache in front of a
 * MemorySystem.
 *
 * All accesses are line-granular (callers access whole vertex blocks).
 * The eviction hook tells the vertex management unit when a dirty block
 * spills to DRAM (Listing 1, on_evict).
 */
class DirectMappedCache : public sim::SimObject
{
  public:
    /** Invoked with the line address of every dirty line written back. */
    using EvictHook = std::function<void(sim::Addr line_addr)>;

    DirectMappedCache(std::string name, sim::EventQueue &queue,
                      const CacheConfig &config, MemorySystem &backing);

    const CacheConfig &config() const { return cfg; }

    /**
     * Access the line containing `addr`.
     * @param write marks the line dirty on completion.
     * @param done  invoked when the data is available (hit latency or
     *              after the miss fill).
     * @return false if no MSHR is available (caller should retry via
     *         waitForSpace()).
     */
    bool access(sim::Addr addr, bool write, MemCallback done);

    /** One-shot callback when an MSHR frees up. */
    void waitForSpace(std::function<void()> retry);

    /** Set the dirty-eviction hook (used by the VMU). */
    void setEvictHook(EvictHook hook) { evictHook = std::move(hook); }

    /**
     * True when the line is currently present (valid tag match).
     * Used by models that need presence without timing side effects.
     */
    bool contains(sim::Addr addr) const;

    /** Flush all dirty lines to memory functionally (end of run). */
    void flushAllDirty();

    /** @{ @name Statistics */
    sim::stats::Scalar hits;
    sim::stats::Scalar misses;
    sim::stats::Scalar evictions;
    sim::stats::Scalar writebacks;
    sim::stats::Scalar mshrRejects;
    sim::stats::Scalar eccCorrected; ///< line ECC events corrected inline
    /** @} */

    /** @{ @name Checkpoint hooks (tag/valid/dirty array + stats) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
    };

    struct Mshr
    {
        sim::Addr lineAddr;
        std::vector<std::pair<bool, MemCallback>> targets;
        bool issued = false;
    };

    std::uint64_t lineAddrOf(sim::Addr addr) const
    {
        return addr / cfg.lineBytes * cfg.lineBytes;
    }

    std::size_t indexOf(sim::Addr line_addr) const
    {
        return (line_addr / cfg.lineBytes) % numLines;
    }

    std::uint64_t tagOf(sim::Addr line_addr) const
    {
        return (line_addr / cfg.lineBytes) / numLines;
    }

    void issueFill(std::size_t mshr_slot);
    void fillDone(std::size_t mshr_slot);
    void postWriteback(sim::Addr victim_addr);

    CacheConfig cfg;
    MemorySystem &mem;
    std::size_t numLines;
    std::vector<Line> lines;
    std::vector<Mshr> mshrs;
    std::unordered_map<sim::Addr, std::size_t> mshrByLine;
    std::vector<std::size_t> freeMshrs;
    std::vector<std::function<void()>> spaceWaiters;
    EvictHook evictHook;
    FaultPoint *eccPoint = nullptr; ///< "cache.ecc" (reads of valid lines)
};

} // namespace nova::mem

#endif // NOVA_MEM_CACHE_HH
