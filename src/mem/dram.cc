#include "mem/dram.hh"

#include <algorithm>
#include <bit>
#include <memory>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::mem
{

double
DramTiming::peakBytesPerSec() const
{
    return static_cast<double>(accessBytes) /
           (static_cast<double>(tBurst) / static_cast<double>(sim::tickS));
}

DramTiming
DramTiming::hbm2Channel()
{
    DramTiming t;
    t.accessBytes = 32;
    t.tBurst = 1000;        // 32 B / 32 GB/s = 1 ns
    t.numBanks = 32;        // 2 pseudo-channels x 16 banks
    t.tRowHit = 14000;      // ~14 ns CAS
    t.tRowMiss = 42000;     // ~42 ns PRE+ACT+CAS
    t.rowBytes = 1024;
    t.frontendLatency = 6000;
    t.queueCapacity = 64;
    t.issueGap = 250;
    return t;
}

DramTiming
DramTiming::ddr4Channel()
{
    DramTiming t;
    t.accessBytes = 64;
    t.tBurst = 3333;        // 64 B / 19.2 GB/s ≈ 3.33 ns
    t.numBanks = 16;
    t.tRowHit = 15000;
    t.tRowMiss = 45000;
    t.rowBytes = 8192;
    t.frontendLatency = 8000;
    t.queueCapacity = 256;
    t.issueGap = 833;
    return t;
}

DramTiming
DramTiming::hbm2eChannel()
{
    DramTiming t = hbm2Channel();
    t.tBurst = 696;         // 32 B / 46 GB/s
    t.tRowHit = 13000;
    t.tRowMiss = 40000;
    t.issueGap = 174;
    return t;
}

DramTiming
DramTiming::ddr5Channel()
{
    DramTiming t = ddr4Channel();
    t.tBurst = 1667;        // 64 B / 38.4 GB/s
    t.numBanks = 32;        // DDR5: more bank groups
    t.issueGap = 417;
    return t;
}

DramTiming
DramTiming::lpddr5Channel()
{
    DramTiming t;
    t.accessBytes = 32;
    t.tBurst = 1250;        // 32 B / 25.6 GB/s
    t.numBanks = 16;
    t.tRowHit = 18000;
    t.tRowMiss = 54000;
    t.rowBytes = 2048;
    t.frontendLatency = 8000;
    t.queueCapacity = 64;
    t.issueGap = 313;
    return t;
}

DramChannel::DramChannel(std::string name, sim::EventQueue &queue,
                         const DramTiming &timing)
    : SimObject(std::move(name), queue), cfg(timing),
      bankReadyAt(cfg.numBanks, 0), openRow(cfg.numBanks, -1),
      issueEvent(queue, [this] { issueOne(); }),
      profIssue(sim::profile::Registry::instance().site(this->name(),
                                                        "dram.issue"))
{
    statistics().addScalar("bytesRead", &bytesRead);
    statistics().addScalar("bytesWritten", &bytesWritten);
    statistics().addScalar("rowHits", &rowHits);
    statistics().addScalar("rowMisses", &rowMisses);
    statistics().addScalar("busBusyTicks", &busBusyTicks);
    statistics().addScalar("totalQueueLatency", &totalQueueLatency);
    statistics().addScalar("numAccesses", &numAccesses);
    statistics().addScalar("eccCorrected", &eccCorrected);
    statistics().addScalar("eccRereads", &eccRereads);
    statistics().addScalar("txnRetries", &txnRetries);

    this->queue.reserve(cfg.queueCapacity);
    keys.reserve(cfg.queueCapacity);

    if (sim::FaultInjector *inj = queue.faultInjector()) {
        bitflipPoint = inj->registerPoint("dram.bitflip", this->name());
        txnPoint = inj->registerPoint("dram.txn", this->name());
    }
}

std::uint32_t
DramChannel::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / cfg.accessBytes) %
                                      cfg.numBanks);
}

std::uint64_t
DramChannel::rowOf(Addr addr) const
{
    const std::uint64_t atoms_per_row = cfg.rowBytes / cfg.accessBytes;
    return (addr / cfg.accessBytes) / (cfg.numBanks * atoms_per_row);
}

bool
DramChannel::tryAccess(Addr addr, bool write, MemCallback done)
{
    if (queue.size() >= cfg.queueCapacity)
        return false;
    queue.push_back(Request{addr, write, std::move(done), now()});
    keys.push_back(ScanKey{rowOf(addr), bankOf(addr)});
    trySchedule();
    return true;
}

void
DramChannel::waitForSpace(std::function<void()> retry)
{
    spaceWaiters.push_back(std::move(retry));
}

void
DramChannel::trySchedule()
{
    if (queue.empty())
        return;
    const Tick target = std::max(now(), nextIssueAt);
    if (issueEvent.scheduled()) {
        // A new arrival may be servable before a previously scheduled
        // bank-ready wait; pull the event forward.
        if (issueEvent.when() <= target)
            return;
        issueEvent.deschedule();
    }
    issueEvent.schedule(target);
}

void
DramChannel::issueOne()
{
    NOVA_PROF_SCOPE(profIssue);
    if (queue.empty())
        return;

    // FR-FCFS-lite: prefer the oldest row hit on a ready bank, then the
    // oldest request on a ready bank, then the overall oldest.
    const Tick t = now();
    std::size_t chosen = queue.size();
    int best_class = 2;
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const ScanKey &k = keys[i];
        if (bankReadyAt[k.bank] > t)
            continue;
        if (openRow[k.bank] == static_cast<std::int64_t>(k.row)) {
            chosen = i;
            best_class = 0;
            break;
        }
        if (best_class > 1) {
            best_class = 1;
            chosen = i;
        }
    }

    if (best_class == 2) {
        // No bank can accept a command yet; wait instead of committing
        // a request to a busy bank (which would serialize the banks).
        Tick earliest_ready = sim::maxTick;
        for (const ScanKey &k : keys)
            earliest_ready = std::min(earliest_ready, bankReadyAt[k.bank]);
        issueEvent.schedule(std::max(earliest_ready, nextIssueAt));
        return;
    }

    const std::uint32_t b = keys[chosen].bank;
    const std::uint64_t row = keys[chosen].row;
    Request req = std::move(queue[chosen]);
    queue.erase(queue.begin() +
                static_cast<std::ptrdiff_t>(chosen));
    keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(chosen));

    const bool hit = openRow[b] == static_cast<std::int64_t>(row);
    const Tick access_lat = hit ? cfg.tRowHit : cfg.tRowMiss;

    const Tick start = std::max(t, bankReadyAt[b]);
    const Tick data_at = start + cfg.frontendLatency + access_lat;
    const Tick bus_start = std::max(data_at, busFreeAt);
    const Tick bus_end = bus_start + cfg.tBurst;

    busFreeAt = bus_end;
    // The bank recovers after its own row cycle; it must not be held
    // hostage to data-bus queueing or bank-level parallelism collapses.
    bankReadyAt[b] = start + access_lat + cfg.tBurst;
    openRow[b] = static_cast<std::int64_t>(row);

    (hit ? rowHits : rowMisses) += 1;
    (req.write ? bytesWritten : bytesRead) += cfg.accessBytes;
    busBusyTicks += cfg.tBurst;
    numAccesses += 1;
    totalQueueLatency += static_cast<double>(bus_end - req.enqueued);

    // Fault injection on the data path. The returned data is always
    // correct (data lives in the caller's functional arrays); the ECC /
    // retry machinery is modeled as extra completion latency plus the
    // recovery statistics, which is what the architecture pays.
    Tick done_at = bus_end;
    std::uint64_t mask = 0;
    if (!req.write && bitflipPoint && bitflipPoint->fire(&mask)) {
        if (std::popcount(mask) == 1) {
            // SECDED corrects single-bit flips inline.
            eccCorrected += 1;
            done_at = sim::tickAdd(done_at, cfg.eccCorrectLatency);
        } else {
            // Multi-bit flip: detected-uncorrectable, recovered by a
            // full re-read of the atom (worst-case row cycle + burst).
            eccRereads += 1;
            done_at = sim::tickAdd(
                done_at, sim::tickAdd(cfg.tRowMiss, cfg.tBurst));
        }
    }
    if (txnPoint && txnPoint->fire()) {
        // Transaction error (bad CRC on the command/data link): the
        // controller reissues the whole access.
        txnRetries += 1;
        done_at = sim::tickAdd(
            done_at, sim::tickAdd(cfg.frontendLatency,
                                  sim::tickAdd(cfg.tRowMiss, cfg.tBurst)));
    }

    if (req.done)
        eventQueue().schedule(done_at, std::move(req.done));

    nextIssueAt = t + cfg.issueGap;
    if (!queue.empty())
        issueEvent.schedule(nextIssueAt);

    // Space freed: wake one waiter per freed slot.
    if (!spaceWaiters.empty()) {
        auto waiter = std::move(spaceWaiters.front());
        spaceWaiters.erase(spaceWaiters.begin());
        eventQueue().schedule(t, std::move(waiter));
    }
}

void
DramChannel::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(queue.empty() && spaceWaiters.empty() &&
                    !issueEvent.scheduled(),
                "checkpointing DRAM channel '", name(),
                "' with in-flight work");
    w.u64vec("bankReadyAt",
             std::vector<std::uint64_t>(bankReadyAt.begin(),
                                        bankReadyAt.end()));
    std::vector<std::uint64_t> rows;
    rows.reserve(openRow.size());
    for (std::int64_t r : openRow)
        rows.push_back(static_cast<std::uint64_t>(r));
    w.u64vec("openRow", rows);
    w.u64("busFreeAt", busFreeAt);
    w.u64("nextIssueAt", nextIssueAt);
    sim::saveGroupStats(w, statistics());
}

void
DramChannel::restoreState(sim::CheckpointReader &r)
{
    NOVA_ASSERT(queue.empty(), "restoring DRAM channel '", name(),
                "' with in-flight work");
    const std::vector<std::uint64_t> ready = r.u64vec("bankReadyAt");
    const std::vector<std::uint64_t> rows = r.u64vec("openRow");
    if (ready.size() != bankReadyAt.size() || rows.size() != openRow.size())
        sim::fatal("checkpoint bank count mismatch for '", name(), "'");
    for (std::size_t i = 0; i < ready.size(); ++i) {
        bankReadyAt[i] = ready[i];
        openRow[i] = static_cast<std::int64_t>(rows[i]);
    }
    busFreeAt = r.u64("busFreeAt");
    nextIssueAt = r.u64("nextIssueAt");
    sim::restoreGroupStats(r, statistics());
}

double
DramChannel::achievedBytesPerSec() const
{
    const Tick elapsed = now();
    if (elapsed == 0)
        return 0;
    return (bytesRead.value() + bytesWritten.value()) /
           sim::ticksToSeconds(elapsed);
}

MemorySystem::MemorySystem(std::string name, sim::EventQueue &queue,
                           const DramTiming &timing,
                           std::uint32_t num_channels,
                           std::uint32_t interleave_bytes)
    : SimObject(std::move(name), queue), cfg(timing),
      interleaveBytes(interleave_bytes ? interleave_bytes
                                       : timing.accessBytes)
{
    NOVA_ASSERT(num_channels > 0);
    for (std::uint32_t i = 0; i < num_channels; ++i) {
        owned.push_back(std::make_unique<DramChannel>(
            this->name() + ".ch" + std::to_string(i), queue, timing));
        channels.push_back(owned.back().get());
        statistics().addChild(&channels.back()->statistics());
    }
}

double
MemorySystem::peakBytesPerSec() const
{
    return cfg.peakBytesPerSec() * static_cast<double>(channels.size());
}

double
MemorySystem::achievedBytesPerSec() const
{
    double sum = 0;
    for (const auto *ch : channels)
        sum += ch->achievedBytesPerSec();
    return sum;
}

DramChannel &
MemorySystem::channelFor(Addr addr)
{
    return *channels[(addr / interleaveBytes) % channels.size()];
}

bool
MemorySystem::tryAccess(Addr addr, std::uint32_t bytes, bool write,
                        MemCallback done)
{
    const Addr first = addr / cfg.accessBytes;
    const Addr last = (addr + std::max<std::uint32_t>(bytes, 1) - 1) /
                      cfg.accessBytes;
    const auto num_atoms = static_cast<std::uint32_t>(last - first + 1);

    if (num_atoms == 1) {
        // Single-atom fast path: no completion counting needed, so the
        // callback goes straight to the channel with no allocation. An
        // empty callback still becomes a no-op completion event, which
        // the counting path always scheduled — event order and replay
        // fingerprints must not depend on which path a request took.
        if (!done)
            done = [] {};
        return channelFor(first * cfg.accessBytes)
            .tryAccess(first * cfg.accessBytes, write, std::move(done));
    }

    // All-or-nothing admission: check capacity first so a multi-atom
    // request is never half-enqueued.
    std::vector<std::uint32_t> per_channel(channels.size(), 0);
    for (Addr atom = first; atom <= last; ++atom) {
        const Addr a = atom * cfg.accessBytes;
        const std::size_t ci = (a / interleaveBytes) % channels.size();
        ++per_channel[ci];
    }
    for (std::size_t ci = 0; ci < channels.size(); ++ci) {
        if (channels[ci]->queued() + per_channel[ci] >
            cfg.queueCapacity)
            return false;
    }

    auto remaining = std::make_shared<std::uint32_t>(num_atoms);
    auto shared_done = std::make_shared<MemCallback>(std::move(done));
    for (Addr atom = first; atom <= last; ++atom) {
        const Addr a = atom * cfg.accessBytes;
        const bool ok = channelFor(a).tryAccess(
            a, write, [remaining, shared_done] {
                if (--*remaining == 0 && *shared_done)
                    (*shared_done)();
            });
        NOVA_ASSERT(ok, "channel rejected pre-checked access");
    }
    return true;
}

void
MemorySystem::waitForSpace(std::function<void()> retry)
{
    // Wake the caller when the most loaded channel frees a slot.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < channels.size(); ++i)
        if (channels[i]->queued() > channels[worst]->queued())
            worst = i;
    channels[worst]->waitForSpace(std::move(retry));
}

void
MemorySystem::saveState(sim::CheckpointWriter &w) const
{
    for (const DramChannel *ch : channels)
        ch->saveState(w);
}

void
MemorySystem::restoreState(sim::CheckpointReader &r)
{
    for (DramChannel *ch : channels)
        ch->restoreState(r);
}

double
MemorySystem::totalBytes() const
{
    double sum = 0;
    for (const auto *ch : channels)
        sum += ch->bytesRead.value() + ch->bytesWritten.value();
    return sum;
}

} // namespace nova::mem
