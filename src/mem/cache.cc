#include "mem/cache.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::mem
{

DirectMappedCache::DirectMappedCache(std::string name,
                                     sim::EventQueue &queue,
                                     const CacheConfig &config,
                                     MemorySystem &backing)
    : SimObject(std::move(name), queue), cfg(config), mem(backing),
      numLines(std::max<std::size_t>(1, cfg.sizeBytes / cfg.lineBytes)),
      lines(numLines), mshrs(cfg.numMshrs)
{
    NOVA_ASSERT(cfg.lineBytes > 0 && cfg.numMshrs > 0);
    for (std::size_t i = 0; i < mshrs.size(); ++i)
        freeMshrs.push_back(i);

    statistics().addScalar("hits", &hits);
    statistics().addScalar("misses", &misses);
    statistics().addScalar("evictions", &evictions);
    statistics().addScalar("writebacks", &writebacks);
    statistics().addScalar("mshrRejects", &mshrRejects);
    statistics().addScalar("eccCorrected", &eccCorrected);

    if (sim::FaultInjector *inj = queue.faultInjector())
        eccPoint = inj->registerPoint("cache.ecc", this->name());
}

bool
DirectMappedCache::contains(sim::Addr addr) const
{
    const sim::Addr line_addr = lineAddrOf(addr);
    const Line &line = lines[indexOf(line_addr)];
    return line.valid && line.tag == tagOf(line_addr);
}

bool
DirectMappedCache::access(sim::Addr addr, bool write, MemCallback done)
{
    const sim::Addr line_addr = lineAddrOf(addr);
    Line &line = lines[indexOf(line_addr)];

    if (line.valid && line.tag == tagOf(line_addr)) {
        ++hits;
        line.dirty = line.dirty || write;
        sim::Tick latency = cfg.hitLatency;
        if (eccPoint && eccPoint->fire()) {
            // Line ECC detects and corrects the flip on the read path;
            // the correction pipeline adds a fixed delay.
            ++eccCorrected;
            latency = sim::tickAdd(latency, cfg.eccCorrectLatency);
        }
        eventQueue().scheduleIn(latency, std::move(done));
        return true;
    }

    // Miss: merge into an outstanding fill when one exists.
    auto it = mshrByLine.find(line_addr);
    if (it != mshrByLine.end()) {
        ++misses;
        mshrs[it->second].targets.emplace_back(write, std::move(done));
        return true;
    }

    if (freeMshrs.empty()) {
        ++mshrRejects;
        return false;
    }

    ++misses;
    const std::size_t slot = freeMshrs.back();
    freeMshrs.pop_back();
    mshrs[slot].lineAddr = line_addr;
    mshrs[slot].targets.clear();
    mshrs[slot].targets.emplace_back(write, std::move(done));
    mshrs[slot].issued = false;
    mshrByLine.emplace(line_addr, slot);
    issueFill(slot);
    return true;
}

void
DirectMappedCache::waitForSpace(std::function<void()> retry)
{
    spaceWaiters.push_back(std::move(retry));
}

void
DirectMappedCache::issueFill(std::size_t mshr_slot)
{
    Mshr &m = mshrs[mshr_slot];
    const bool ok = mem.tryAccess(m.lineAddr, cfg.lineBytes, false,
                                  [this, mshr_slot] {
                                      fillDone(mshr_slot);
                                  });
    if (ok) {
        m.issued = true;
    } else {
        mem.waitForSpace([this, mshr_slot] { issueFill(mshr_slot); });
    }
}

void
DirectMappedCache::fillDone(std::size_t mshr_slot)
{
    Mshr &m = mshrs[mshr_slot];
    Line &line = lines[indexOf(m.lineAddr)];
    const std::uint64_t new_tag = tagOf(m.lineAddr);

    // Evict the victim only now that the fill data has arrived.
    if (line.valid && line.tag != new_tag) {
        ++evictions;
        if (line.dirty) {
            ++writebacks;
            const sim::Addr victim_addr =
                (line.tag * numLines + indexOf(m.lineAddr)) *
                cfg.lineBytes;
            if (evictHook)
                evictHook(victim_addr);
            postWriteback(victim_addr);
        }
    }

    line.valid = true;
    line.tag = new_tag;
    line.dirty = false;
    for (auto &[is_write, done] : m.targets) {
        line.dirty = line.dirty || is_write;
        if (done)
            eventQueue().scheduleIn(0, std::move(done));
    }
    m.targets.clear();
    mshrByLine.erase(m.lineAddr);
    freeMshrs.push_back(mshr_slot);

    if (!spaceWaiters.empty()) {
        auto waiter = std::move(spaceWaiters.front());
        spaceWaiters.erase(spaceWaiters.begin());
        eventQueue().scheduleIn(0, std::move(waiter));
    }
}

void
DirectMappedCache::postWriteback(sim::Addr victim_addr)
{
    // Posted write-back, retried until the channel accepts it.
    if (!mem.tryAccess(victim_addr, cfg.lineBytes, true, {}))
        mem.waitForSpace([this, victim_addr] { postWriteback(victim_addr); });
}

void
DirectMappedCache::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(mshrByLine.empty() && spaceWaiters.empty() &&
                    freeMshrs.size() == mshrs.size(),
                "checkpointing cache '", name(), "' with outstanding misses");
    std::vector<std::uint64_t> packed;
    packed.reserve(lines.size());
    for (const Line &line : lines)
        packed.push_back((line.tag << 2) |
                         (static_cast<std::uint64_t>(line.dirty) << 1) |
                         static_cast<std::uint64_t>(line.valid));
    w.u64vec("lines", packed);
    sim::saveGroupStats(w, statistics());
}

void
DirectMappedCache::restoreState(sim::CheckpointReader &r)
{
    NOVA_ASSERT(mshrByLine.empty(), "restoring cache '", name(),
                "' with outstanding misses");
    const std::vector<std::uint64_t> packed = r.u64vec("lines");
    if (packed.size() != lines.size())
        sim::fatal("checkpoint line count mismatch for '", name(), "'");
    for (std::size_t i = 0; i < lines.size(); ++i) {
        lines[i].valid = packed[i] & 1;
        lines[i].dirty = (packed[i] >> 1) & 1;
        lines[i].tag = packed[i] >> 2;
    }
    sim::restoreGroupStats(r, statistics());
}

void
DirectMappedCache::flushAllDirty()
{
    for (std::size_t idx = 0; idx < lines.size(); ++idx) {
        Line &line = lines[idx];
        if (line.valid && line.dirty) {
            ++writebacks;
            const sim::Addr addr = (line.tag * numLines + idx) *
                                   cfg.lineBytes;
            if (evictHook)
                evictHook(addr);
            line.dirty = false;
        }
    }
}

} // namespace nova::mem
