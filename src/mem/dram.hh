/**
 * @file
 * Timing models of off-chip DRAM channels.
 *
 * NOVA stores vertices in HBM2 (32 B atoms, high random-access
 * bandwidth) and edges in DDR4 (64 B atoms, high capacity and high
 * sequential bandwidth) — Sec. IV-A. The model is timing-only: data
 * lives in functional arrays owned by the callers; the channel tracks
 * per-bank row-buffer state, bank readiness and data-bus occupancy.
 */

#ifndef NOVA_MEM_DRAM_HH
#define NOVA_MEM_DRAM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fault.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"
#include "sim/types.hh"

namespace nova::mem
{

using sim::Addr;
using sim::FaultPoint;
using sim::Tick;

/** Completion callback for a memory access. */
using MemCallback = std::function<void()>;

/** Timing parameters of one DRAM channel. */
struct DramTiming
{
    /** Access granularity (atom/burst size) in bytes. */
    std::uint32_t accessBytes = 32;
    /** Data-bus occupancy per atom; peak BW = accessBytes / tBurst. */
    Tick tBurst = 1000;
    /** Number of banks (bank-level parallelism). */
    std::uint32_t numBanks = 16;
    /** Issue-to-data latency when the row buffer hits. */
    Tick tRowHit = 15000;
    /** Issue-to-data latency on a row miss (precharge + activate + CAS). */
    Tick tRowMiss = 45000;
    /** Row-buffer size in bytes. */
    std::uint32_t rowBytes = 1024;
    /** Controller pipeline latency added to every access. */
    Tick frontendLatency = 10000;
    /** Scheduler window: max queued accesses before backpressure. */
    std::size_t queueCapacity = 32;
    /** Minimum spacing between consecutive command issues. */
    Tick issueGap = 250;
    /**
     * Extra latency to correct a single-bit error in the SECDED logic
     * of the controller's read path (only paid when a fault fires).
     */
    Tick eccCorrectLatency = 2000;

    /** Peak bandwidth in bytes per second. */
    double peakBytesPerSec() const;

    /** One HBM2 pseudo-channel: 32 GB/s, 32 B atoms (Table II). */
    static DramTiming hbm2Channel();

    /** One DDR4-2400 channel: 19.2 GB/s, 64 B atoms (Table II). */
    static DramTiming ddr4Channel();

    /** One HBM2E channel: 46 GB/s, 32 B atoms (Sec. IV-A: "any
     *  memory technology that provides the required balance"). */
    static DramTiming hbm2eChannel();

    /** One DDR5-4800 channel: 38.4 GB/s, 64 B atoms. */
    static DramTiming ddr5Channel();

    /** One LPDDR5-6400 x32 channel: 25.6 GB/s, 32 B atoms. */
    static DramTiming lpddr5Channel();
};

/**
 * One DRAM channel with FR-FCFS-like scheduling.
 *
 * Requests are accepted atom-by-atom through tryAccess(); when the
 * scheduler window is full the call fails and the caller may register a
 * retry callback that fires when space frees up.
 */
class DramChannel : public sim::SimObject
{
  public:
    DramChannel(std::string name, sim::EventQueue &queue,
                const DramTiming &timing);

    const DramTiming &timing() const { return cfg; }

    /**
     * Enqueue a single-atom access.
     * @param addr   byte address (any alignment; atom is derived).
     * @param write  true for a write access.
     * @param done   invoked when the data transfer completes (may be
     *               empty for posted writes).
     * @return false when the scheduler window is full.
     */
    bool tryAccess(Addr addr, bool write, MemCallback done);

    /** Register a one-shot callback invoked when queue space frees. */
    void waitForSpace(std::function<void()> retry);

    /** Current queue occupancy. */
    std::size_t queued() const { return queue.size(); }

    /** @{ @name Statistics */
    sim::stats::Scalar bytesRead;
    sim::stats::Scalar bytesWritten;
    sim::stats::Scalar rowHits;
    sim::stats::Scalar rowMisses;
    sim::stats::Scalar busBusyTicks;
    sim::stats::Scalar totalQueueLatency;
    sim::stats::Scalar numAccesses;
    sim::stats::Scalar eccCorrected;     ///< single-bit flips fixed inline
    sim::stats::Scalar eccRereads;       ///< multi-bit flips detected, re-read
    sim::stats::Scalar txnRetries;       ///< transaction errors reissued
    /** @} */

    /** Achieved bandwidth over the elapsed simulated time. */
    double achievedBytesPerSec() const;

    /** @{ @name Checkpoint hooks (bank/row/bus registers + stats) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    struct Request
    {
        Addr addr;
        bool write;
        MemCallback done;
        Tick enqueued;
    };

    /**
     * bankOf/rowOf of a queued request, precomputed at enqueue and kept
     * in a parallel array so the FR-FCFS scan reads four entries per
     * cache line and does no divisions.
     */
    struct ScanKey
    {
        std::uint64_t row;
        std::uint32_t bank;
    };

    void trySchedule();
    void issueOne();

    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    DramTiming cfg;
    std::vector<Request> queue;
    std::vector<ScanKey> keys; ///< parallel to `queue`
    std::vector<Tick> bankReadyAt;
    std::vector<std::int64_t> openRow;
    Tick busFreeAt = 0;
    Tick nextIssueAt = 0;
    sim::SelfEvent issueEvent;
    std::vector<std::function<void()>> spaceWaiters;
    FaultPoint *bitflipPoint = nullptr; ///< "dram.bitflip" (reads)
    FaultPoint *txnPoint = nullptr;     ///< "dram.txn" (any access)
    sim::profile::Site &profIssue;      ///< host time in issueOne()
};

/**
 * A set of identical DRAM channels with address interleaving.
 *
 * Multi-atom requests are split; the completion callback fires when the
 * last atom finishes.
 */
class MemorySystem : public sim::SimObject
{
  public:
    /**
     * @param interleave_bytes granularity of channel interleaving; 0
     *        selects the atom size.
     */
    MemorySystem(std::string name, sim::EventQueue &queue,
                 const DramTiming &timing, std::uint32_t num_channels,
                 std::uint32_t interleave_bytes = 0);

    std::uint32_t numChannels() const
    {
        return static_cast<std::uint32_t>(channels.size());
    }

    DramChannel &channel(std::uint32_t i) { return *channels[i]; }

    const DramTiming &timing() const { return cfg; }

    /** Aggregate peak bandwidth in bytes per second. */
    double peakBytesPerSec() const;

    /** Aggregate achieved bandwidth in bytes per second. */
    double achievedBytesPerSec() const;

    /**
     * Issue an access of arbitrary size; it is split into atoms routed
     * to their channels. Returns false (and enqueues nothing) when any
     * target channel's window is full.
     */
    bool tryAccess(Addr addr, std::uint32_t bytes, bool write,
                   MemCallback done);

    /** Register a one-shot retry callback on all channels. */
    void waitForSpace(std::function<void()> retry);

    /** Total bytes transferred (read + written). */
    double totalBytes() const;

    /** @{ @name Checkpoint hooks (forwarded to every channel) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    DramChannel &channelFor(Addr addr);

    DramTiming cfg;
    std::uint32_t interleaveBytes;
    std::vector<DramChannel *> channels;
    std::vector<std::unique_ptr<DramChannel>> owned;
};

} // namespace nova::mem

#endif // NOVA_MEM_DRAM_HH
