/**
 * @file
 * Re-entrant query variants of the evaluation workloads, used by the
 * multi-tenant serving layer (docs/SERVING.md).
 *
 * A served query is a short-lived VertexProgram instance constructed
 * per request over the *shared* resident graph: all per-query state
 * (frontier, property arrays, result vectors) lives in the program
 * object and the engine run that executes it, never in the CSR. That
 * is the FlashGraph graph_engine / vertex_program split: one graph,
 * many concurrent query contexts.
 *
 *  - MultiSourceBfsProgram: nearest-seed BFS from a set of K seeds
 *    (the "distance to closest seed" query of label-propagation and
 *    seed-expansion services).
 *  - PersonalizedPageRankProgram: delta-based PageRank whose teleport
 *    mass is concentrated on one source vertex.
 *  - PointToPointSsspProgram: single-source shortest path queried for
 *    one destination (the full distance map is computed; the serving
 *    layer reads only the target's entry).
 */

#ifndef NOVA_WORKLOADS_QUERIES_HH
#define NOVA_WORKLOADS_QUERIES_HH

#include <algorithm>
#include <vector>

#include "workloads/programs.hh"

namespace nova::workloads
{

/** Nearest-seed BFS: depth from the closest of K seed vertices. */
class MultiSourceBfsProgram : public VertexProgram
{
  public:
    explicit MultiSourceBfsProgram(std::vector<graph::VertexId> seeds)
        : srcs(std::move(seeds))
    {
    }

    std::string name() const override { return "msbfs"; }
    ExecMode mode() const override { return ExecMode::Async; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return std::find(srcs.begin(), srcs.end(), v) != srcs.end()
                   ? 0
                   : infProp;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return srcs;
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value + 1;
    }

    const std::vector<graph::VertexId> &seeds() const { return srcs; }

  private:
    std::vector<graph::VertexId> srcs;
};

/**
 * Personalized PageRank: the delta-based BSP scheme of
 * PageRankProgram with all teleport mass (1 - d) on one source, so
 * rank() measures proximity to that vertex's neighbourhood.
 */
class PersonalizedPageRankProgram : public VertexProgram
{
  public:
    PersonalizedPageRankProgram(graph::VertexId source,
                                double damping = 0.85,
                                double tolerance = 1e-9,
                                std::uint64_t max_iterations = 10)
        : src(source), d(damping), tol(tolerance),
          maxIters(max_iterations)
    {
    }

    std::string name() const override { return "ppr"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    void
    bind(const graph::Csr &g) override
    {
        VertexProgram::bind(g);
        rankVec.assign(g.numVertices(), 0.0);
        rankVec[src] = 1.0 - d;
    }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return packDouble(v == src ? 1.0 - d : 0.0);
    }

    std::uint64_t initialAcc(graph::VertexId) const override
    {
        return packDouble(0.0);
    }

    std::vector<graph::VertexId> initialActive() const override
    {
        return {};
    }

    /** Only the personalization source self-activates at iteration 0. */
    std::int64_t
    scheduledActivation(graph::VertexId v) const override
    {
        return v == src ? 0 : -1;
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return packDouble(unpackDouble(state) + unpackDouble(update));
    }

    std::uint64_t
    propagateValue(std::uint64_t cur, graph::VertexId v) const override
    {
        const auto deg = static_cast<double>(graph().degree(v));
        const double delta = unpackDouble(cur);
        return packDouble(deg > 0 ? d * delta / deg : 0.0);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value;
    }

    BarrierOutcome
    bspApply(std::uint64_t, std::uint64_t acc, graph::VertexId v) override
    {
        const double delta = unpackDouble(acc);
        rankVec[v] += delta;
        BarrierOutcome out;
        out.newCur = packDouble(delta);
        out.newAcc = packDouble(0.0);
        out.active = delta > tol;
        return out;
    }

    std::uint64_t maxIterations() const override { return maxIters; }

    /** The personalized rank vector (budget-limited). */
    const std::vector<double> &rank() const { return rankVec; }

    graph::VertexId source() const { return src; }

  private:
    graph::VertexId src;
    double d;
    double tol;
    std::uint64_t maxIters;
    std::vector<double> rankVec;
};

/**
 * Point-to-point shortest path: the asynchronous SSSP engine run from
 * `source`; the serving layer answers with the target's distance. (The
 * cycle model has no early-exit path, so the query is charged the full
 * single-source run — see docs/SERVING.md.)
 */
class PointToPointSsspProgram : public SsspProgram
{
  public:
    PointToPointSsspProgram(graph::VertexId source,
                            graph::VertexId target_vertex)
        : SsspProgram(source), tgt(target_vertex)
    {
    }

    std::string name() const override { return "p2p"; }

    graph::VertexId target() const { return tgt; }

  private:
    graph::VertexId tgt;
};

} // namespace nova::workloads

#endif // NOVA_WORKLOADS_QUERIES_HH
