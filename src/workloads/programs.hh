/**
 * @file
 * The five evaluation workloads of the paper (Sec. V): BFS, SSSP and CC
 * in asynchronous mode; PageRank (delta-based) and Betweenness
 * Centrality (two-phase) in bulk-synchronous mode.
 */

#ifndef NOVA_WORKLOADS_PROGRAMS_HH
#define NOVA_WORKLOADS_PROGRAMS_HH

#include <bit>
#include <limits>
#include <memory>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"
#include "workloads/vertex_program.hh"

namespace nova::workloads
{

/** The "unreached" property for distance-style workloads. */
constexpr std::uint64_t infProp = ~std::uint64_t(0);

/** @{ @name 64-bit payload packing helpers */

inline std::uint64_t
packDouble(double d)
{
    return std::bit_cast<std::uint64_t>(d);
}

inline double
unpackDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

/** BC: [level:16][sigma:48] packing of the forward state. */
inline std::uint64_t
packLevelSigma(std::uint32_t level, std::uint64_t sigma)
{
    return (std::uint64_t(level) << 48) |
           (sigma & ((std::uint64_t(1) << 48) - 1));
}

inline std::uint32_t
unpackLevel(std::uint64_t bits)
{
    return static_cast<std::uint32_t>(bits >> 48);
}

inline std::uint64_t
unpackSigma(std::uint64_t bits)
{
    return bits & ((std::uint64_t(1) << 48) - 1);
}

/**
 * BC backward messages: a double whose 16 low mantissa bits carry the
 * sender's level (the precision loss is ~1e-9 relative).
 */
inline std::uint64_t
packValueLevel(double value, std::uint32_t level)
{
    return (packDouble(value) & ~std::uint64_t(0xFFFF)) | (level & 0xFFFF);
}

inline double
unpackValue(std::uint64_t bits)
{
    return unpackDouble(bits & ~std::uint64_t(0xFFFF));
}

inline std::uint32_t
unpackValueLevel(std::uint64_t bits)
{
    return static_cast<std::uint32_t>(bits & 0xFFFF);
}

/** @} */

/** Breadth-first search from a source (asynchronous, data-driven). */
class BfsProgram : public VertexProgram
{
  public:
    explicit BfsProgram(graph::VertexId source) : src(source) {}

    std::string name() const override { return "bfs"; }
    ExecMode mode() const override { return ExecMode::Async; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v == src ? 0 : infProp;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return {src};
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value + 1;
    }

  private:
    graph::VertexId src;
};

/** Single-source shortest path (asynchronous; Algorithm 1). */
class SsspProgram : public VertexProgram
{
  public:
    explicit SsspProgram(graph::VertexId source) : src(source) {}

    std::string name() const override { return "sssp"; }
    ExecMode mode() const override { return ExecMode::Async; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v == src ? 0 : infProp;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return {src};
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight w) const override
    {
        return value + w;
    }

  private:
    graph::VertexId src;
};

/**
 * Connected components by min-label propagation (asynchronous). Run on
 * a symmetrized graph for weakly connected components.
 */
class CcProgram : public VertexProgram
{
  public:
    std::string name() const override { return "cc"; }
    ExecMode mode() const override { return ExecMode::Async; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        std::vector<graph::VertexId> all(graph().numVertices());
        for (graph::VertexId v = 0; v < graph().numVertices(); ++v)
            all[v] = v;
        return all;
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value;
    }
};

/**
 * Delta-based PageRank executed in BSP mode (Sec. V explains why the
 * paper runs PR synchronously). rank() holds the result; the per-vertex
 * property carries the iteration's delta.
 */
class PageRankProgram : public VertexProgram
{
  public:
    PageRankProgram(double damping = 0.85, double tolerance = 1e-9,
                    std::uint64_t max_iterations = 20)
        : d(damping), tol(tolerance), maxIters(max_iterations)
    {
    }

    std::string name() const override { return "pr"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    void
    bind(const graph::Csr &g) override
    {
        VertexProgram::bind(g);
        rankVec.assign(g.numVertices(), base());
    }

    std::uint64_t
    initialProp(graph::VertexId) const override
    {
        return packDouble(base());
    }

    std::uint64_t initialAcc(graph::VertexId) const override
    {
        return packDouble(0.0);
    }

    std::vector<graph::VertexId> initialActive() const override
    {
        return {};
    }

    std::int64_t
    scheduledActivation(graph::VertexId) const override
    {
        return 0;
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return packDouble(unpackDouble(state) + unpackDouble(update));
    }

    std::uint64_t
    propagateValue(std::uint64_t cur, graph::VertexId v) const override
    {
        const auto deg = static_cast<double>(graph().degree(v));
        const double delta = unpackDouble(cur);
        return packDouble(deg > 0 ? d * delta / deg : 0.0);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value;
    }

    BarrierOutcome
    bspApply(std::uint64_t, std::uint64_t acc, graph::VertexId v) override
    {
        const double delta = unpackDouble(acc);
        rankVec[v] += delta;
        BarrierOutcome out;
        out.newCur = packDouble(delta);
        out.newAcc = packDouble(0.0);
        out.active = delta > tol;
        return out;
    }

    std::uint64_t maxIterations() const override { return maxIters; }

    /** The converged (or budget-limited) PageRank vector. */
    const std::vector<double> &rank() const { return rankVec; }

    void
    saveCheckpoint(sim::CheckpointWriter &w) const override
    {
        w.f64vec("pr.rank", rankVec);
    }

    void
    restoreCheckpoint(sim::CheckpointReader &r) override
    {
        const std::vector<double> rk = r.f64vec("pr.rank");
        if (rk.size() != rankVec.size())
            sim::fatal("checkpoint PageRank vector has ", rk.size(),
                       " entries, program has ", rankVec.size());
        rankVec = rk;
    }

  private:
    double
    base() const
    {
        return (1.0 - d) / static_cast<double>(graph().numVertices());
    }

    double d;
    double tol;
    std::uint64_t maxIters;
    std::vector<double> rankVec;
};

/**
 * Betweenness centrality, forward phase: level-synchronous BFS counting
 * shortest paths (sigma). The final property packs [level, sigma].
 */
class BcForwardProgram : public VertexProgram
{
  public:
    explicit BcForwardProgram(graph::VertexId source) : src(source) {}

    static constexpr std::uint32_t unreachedLevel = 0xFFFF;

    std::string name() const override { return "bc_fwd"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v == src ? packLevelSigma(0, 1)
                        : packLevelSigma(unreachedLevel, 0);
    }

    std::uint64_t
    initialAcc(graph::VertexId) const override
    {
        return packLevelSigma(unreachedLevel, 0);
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return {src};
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        const std::uint32_t ls = unpackLevel(state);
        const std::uint32_t lu = unpackLevel(update);
        if (lu < ls)
            return update;
        if (lu == ls && lu != unreachedLevel)
            return packLevelSigma(ls, unpackSigma(state) +
                                          unpackSigma(update));
        return state;
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return packLevelSigma(unpackLevel(value) + 1, unpackSigma(value));
    }

    BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc,
             graph::VertexId) override
    {
        BarrierOutcome out;
        out.newAcc = packLevelSigma(unreachedLevel, 0);
        if (unpackLevel(acc) < unpackLevel(cur)) {
            out.newCur = acc;
            out.active = true;
        } else {
            out.newCur = cur;
            out.active = false;
        }
        return out;
    }

  private:
    graph::VertexId src;
};

/**
 * Betweenness centrality, backward phase: dependency accumulation by
 * descending BFS level (Brandes). Activation follows the level schedule
 * (scheduledActivation), not messages. delta() holds the result.
 */
class BcBackwardProgram : public VertexProgram
{
  public:
    /**
     * @param levels  per-vertex BFS level from the forward phase.
     * @param sigmas  per-vertex shortest-path counts.
     * @param max_level deepest reached level D.
     */
    BcBackwardProgram(std::vector<std::uint32_t> levels,
                      std::vector<std::uint64_t> sigmas,
                      std::uint32_t max_level)
        : level(std::move(levels)), sigma(std::move(sigmas)),
          maxLevel(max_level)
    {
    }

    std::string name() const override { return "bc_bwd"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    void
    bind(const graph::Csr &g) override
    {
        VertexProgram::bind(g);
        deltaVec.assign(g.numVertices(), 0.0);
    }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return packLevelSigma(level[v], sigma[v]);
    }

    std::uint64_t
    initialAcc(graph::VertexId) const override
    {
        return packDouble(0.0);
    }

    std::vector<graph::VertexId> initialActive() const override
    {
        return {};
    }

    std::int64_t
    scheduledActivation(graph::VertexId v) const override
    {
        if (level[v] == BcForwardProgram::unreachedLevel)
            return -1;
        return static_cast<std::int64_t>(maxLevel - level[v]);
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t cur) const override
    {
        const std::uint32_t my_level = unpackLevel(cur);
        if (unpackValueLevel(update) != my_level + 1)
            return state;
        return packDouble(unpackDouble(state) + unpackValue(update));
    }

    std::uint64_t
    propagateValue(std::uint64_t cur, graph::VertexId v) const override
    {
        const auto s = static_cast<double>(unpackSigma(cur));
        const double value = s > 0 ? (1.0 + deltaVec[v]) / s : 0.0;
        return packValueLevel(value, unpackLevel(cur));
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value;
    }

    BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc,
             graph::VertexId v) override
    {
        deltaVec[v] += static_cast<double>(sigma[v]) * unpackDouble(acc);
        BarrierOutcome out;
        out.newCur = cur;
        out.newAcc = packDouble(0.0);
        out.active = false;
        return out;
    }

    /** Per-vertex dependency (the BC contribution of this source). */
    const std::vector<double> &delta() const { return deltaVec; }

    void
    saveCheckpoint(sim::CheckpointWriter &w) const override
    {
        w.f64vec("bc.delta", deltaVec);
    }

    void
    restoreCheckpoint(sim::CheckpointReader &r) override
    {
        const std::vector<double> dv = r.f64vec("bc.delta");
        if (dv.size() != deltaVec.size())
            sim::fatal("checkpoint BC delta vector has ", dv.size(),
                       " entries, program has ", deltaVec.size());
        deltaVec = dv;
    }

  private:
    std::vector<std::uint32_t> level;
    std::vector<std::uint64_t> sigma;
    std::uint32_t maxLevel;
    std::vector<double> deltaVec;
};

} // namespace nova::workloads

#endif // NOVA_WORKLOADS_PROGRAMS_HH
