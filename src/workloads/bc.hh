/**
 * @file
 * Two-phase betweenness-centrality driver (Sec. V: BC runs in BSP mode
 * with a forward and a backward pass). Works with any GraphEngine.
 */

#ifndef NOVA_WORKLOADS_BC_HH
#define NOVA_WORKLOADS_BC_HH

#include "workloads/engine.hh"

namespace nova::workloads
{

/** Combined outcome of the forward + backward BC passes. */
struct BcResult
{
    /** Per-vertex dependency (BC contribution of this source). */
    std::vector<double> centrality;
    RunResult forward;
    RunResult backward;

    /** Total simulated time of both passes. */
    sim::Tick totalTicks() const { return forward.ticks + backward.ticks; }

    /** Total edges traversed across both passes. */
    std::uint64_t
    totalEdgesTraversed() const
    {
        return forward.messagesGenerated + backward.messagesGenerated;
    }
};

/**
 * Run betweenness centrality from one source on a symmetric graph.
 * The forward pass computes levels and path counts; the backward pass
 * accumulates dependencies level by level.
 */
BcResult runBc(GraphEngine &engine, const graph::Csr &g,
               const graph::VertexMapping &map, graph::VertexId src);

/** Aggregate betweenness over several sources. */
struct BcMultiResult
{
    /** Sum of per-source dependencies (unnormalised BC scores). */
    std::vector<double> centrality;
    /** Total simulated time over all passes. */
    sim::Tick totalTicks = 0;
    /** Total edges traversed over all passes. */
    std::uint64_t edgesTraversed = 0;
    std::uint32_t numSources = 0;
};

/**
 * Brandes-style sampled betweenness centrality: run the two-phase
 * driver from `num_sources` distinct sources (the highest-out-degree
 * vertices) and sum the dependencies.
 */
BcMultiResult runBcMultiSource(GraphEngine &engine, const graph::Csr &g,
                               const graph::VertexMapping &map,
                               std::uint32_t num_sources);

} // namespace nova::workloads

#endif // NOVA_WORKLOADS_BC_HH
