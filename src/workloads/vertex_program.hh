/**
 * @file
 * The vertex-centric program abstraction (Sec. II-A, Algorithm 1).
 *
 * A workload is described by a reduce function (combine an incoming
 * update with the vertex state) and a propagate function (derive the
 * update sent along an edge from the vertex property and the edge
 * weight). Properties and updates travel as raw 64-bit payloads, as a
 * hardware implementation would; each program defines the packing.
 *
 * Programs run in one of two execution models (Sec. III-A):
 *  - Async: reduce applies directly to the current property; an
 *    activation immediately queues the vertex for propagation.
 *  - Bsp: reduce applies to the accumulator (next_prop); a global
 *    barrier applies bspApply() to every touched vertex and decides the
 *    next iteration's active set.
 */

#ifndef NOVA_WORKLOADS_VERTEX_PROGRAM_HH
#define NOVA_WORKLOADS_VERTEX_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hh"

namespace nova::sim
{
class CheckpointReader;
class CheckpointWriter;
} // namespace nova::sim

namespace nova::workloads
{

/** Execution model of a program (Sec. III-A). */
enum class ExecMode
{
    Async,
    Bsp,
};

/** Result of applying the BSP barrier to one vertex. */
struct BarrierOutcome
{
    /** New current property. */
    std::uint64_t newCur = 0;
    /** New accumulator (usually the reduce identity). */
    std::uint64_t newAcc = 0;
    /** Whether the vertex propagates in the next iteration. */
    bool active = false;
};

/**
 * A graph workload expressed as vertex-centric reduce/propagate
 * operators. Bind a graph before running; programs may keep auxiliary
 * result arrays (e.g., PageRank's rank vector) updated at barriers.
 */
class VertexProgram
{
  public:
    virtual ~VertexProgram() = default;

    /** Short workload name ("bfs", "pr", ...). */
    virtual std::string name() const = 0;

    /** Async or BSP execution. */
    virtual ExecMode mode() const = 0;

    /** Attach the input graph; called once before a run. */
    virtual void
    bind(const graph::Csr &g)
    {
        boundGraph = &g;
    }

    /** The bound input graph. */
    const graph::Csr &
    graph() const
    {
        return *boundGraph;
    }

    /** @{ @name State initialisation */

    /** Initial current property of a vertex. */
    virtual std::uint64_t initialProp(graph::VertexId v) const = 0;

    /** Initial accumulator (the reduce identity for BSP programs). */
    virtual std::uint64_t initialAcc(graph::VertexId) const { return 0; }

    /** Vertices active before any message is processed. */
    virtual std::vector<graph::VertexId> initialActive() const = 0;

    /**
     * BSP only: iteration at which the vertex self-activates without
     * receiving a message (e.g., BC's backward level schedule), or -1.
     */
    virtual std::int64_t
    scheduledActivation(graph::VertexId) const
    {
        return -1;
    }

    /** @} */

    /** @{ @name Operators */

    /**
     * Combine an update into the vertex state.
     * @param state current property (async) or accumulator (BSP).
     * @param update the message payload.
     * @param cur the current property (equals state when async).
     */
    virtual std::uint64_t reduce(std::uint64_t state, std::uint64_t update,
                                 std::uint64_t cur) const = 0;

    /** Whether the reduce result activates the vertex (async mode). */
    virtual bool
    activates(std::uint64_t old_state, std::uint64_t new_state) const
    {
        return old_state != new_state;
    }

    /**
     * The α snapshot stored in the active buffer when the vertex is
     * pulled for propagation (Algorithm 1's v_info entry).
     */
    virtual std::uint64_t
    propagateValue(std::uint64_t cur, graph::VertexId) const
    {
        return cur;
    }

    /** Derive the update sent along one edge from α and the weight. */
    virtual std::uint64_t propagate(std::uint64_t value,
                                    graph::Weight w) const = 0;

    /** @} */

    /** @{ @name BSP hooks */

    /**
     * Apply the barrier to a touched vertex (swap next into cur and
     * decide whether it stays active). Non-const so programs can record
     * results into their own arrays.
     */
    virtual BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc, graph::VertexId)
    {
        return {acc, initialAcc(0), cur != acc};
    }

    /** Upper bound on BSP iterations (safety net / PR budget). */
    virtual std::uint64_t maxIterations() const { return 1u << 20; }

    /** @} */

    /** @{ @name Checkpoint hooks
     *
     * Programs holding mutable state outside the engine's vertex arrays
     * (e.g. PageRank's rank vector) serialize it here; the default
     * covers stateless programs.
     */
    virtual void saveCheckpoint(sim::CheckpointWriter &) const {}
    virtual void restoreCheckpoint(sim::CheckpointReader &) {}
    /** @} */

  private:
    const graph::Csr *boundGraph = nullptr;
};

} // namespace nova::workloads

#endif // NOVA_WORKLOADS_VERTEX_PROGRAM_HH
