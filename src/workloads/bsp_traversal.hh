/**
 * @file
 * Bulk-synchronous variants of the traversal workloads.
 *
 * The paper notes that NOVA "supports both asynchronous message-driven
 * execution and synchronous models" (Sec. II-B); these programs run
 * BFS/SSSP level-synchronously so the async-vs-BSP work-efficiency
 * trade-off can be measured on the same engines (the ablation backing
 * the paper's choice of async mode for traversals).
 */

#ifndef NOVA_WORKLOADS_BSP_TRAVERSAL_HH
#define NOVA_WORKLOADS_BSP_TRAVERSAL_HH

#include "workloads/programs.hh"

namespace nova::workloads
{

/** Level-synchronous BFS: one superstep per frontier. */
class BfsBspProgram : public VertexProgram
{
  public:
    explicit BfsBspProgram(graph::VertexId source) : src(source) {}

    std::string name() const override { return "bfs_bsp"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v == src ? 0 : infProp;
    }

    std::uint64_t initialAcc(graph::VertexId) const override
    {
        return infProp;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return {src};
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight) const override
    {
        return value + 1;
    }

    BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc,
             graph::VertexId) override
    {
        BarrierOutcome out;
        out.newAcc = infProp;
        if (acc < cur) {
            out.newCur = acc;
            out.active = true;
        } else {
            out.newCur = cur;
            out.active = false;
        }
        return out;
    }

  private:
    graph::VertexId src;
};

/**
 * Round-synchronous SSSP (Bellman-Ford supersteps): improvements
 * found in superstep k propagate in superstep k+1.
 */
class SsspBspProgram : public VertexProgram
{
  public:
    explicit SsspBspProgram(graph::VertexId source) : src(source) {}

    std::string name() const override { return "sssp_bsp"; }
    ExecMode mode() const override { return ExecMode::Bsp; }

    std::uint64_t
    initialProp(graph::VertexId v) const override
    {
        return v == src ? 0 : infProp;
    }

    std::uint64_t initialAcc(graph::VertexId) const override
    {
        return infProp;
    }

    std::vector<graph::VertexId>
    initialActive() const override
    {
        return {src};
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t) const override
    {
        return std::min(state, update);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight w) const override
    {
        return value + w;
    }

    BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc,
             graph::VertexId) override
    {
        BarrierOutcome out;
        out.newAcc = infProp;
        if (acc < cur) {
            out.newCur = acc;
            out.active = true;
        } else {
            out.newCur = cur;
            out.active = false;
        }
        return out;
    }

  private:
    graph::VertexId src;
};

} // namespace nova::workloads

#endif // NOVA_WORKLOADS_BSP_TRAVERSAL_HH
