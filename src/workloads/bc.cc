#include "workloads/bc.hh"

#include <algorithm>
#include <numeric>

#include "workloads/programs.hh"

namespace nova::workloads
{

BcResult
runBc(GraphEngine &engine, const graph::Csr &g,
      const graph::VertexMapping &map, graph::VertexId src)
{
    BcResult result;

    BcForwardProgram forward(src);
    result.forward = engine.run(forward, g, map);

    std::vector<std::uint32_t> level(g.numVertices());
    std::vector<std::uint64_t> sigma(g.numVertices());
    std::uint32_t max_level = 0;
    for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
        level[v] = unpackLevel(result.forward.props[v]);
        sigma[v] = unpackSigma(result.forward.props[v]);
        if (level[v] != BcForwardProgram::unreachedLevel)
            max_level = std::max(max_level, level[v]);
    }

    BcBackwardProgram backward(std::move(level), std::move(sigma),
                               max_level);
    result.backward = engine.run(backward, g, map);
    result.centrality = backward.delta();
    return result;
}

BcMultiResult
runBcMultiSource(GraphEngine &engine, const graph::Csr &g,
                 const graph::VertexMapping &map,
                 std::uint32_t num_sources)
{
    // Sample the highest-out-degree vertices as sources (the standard
    // pivot heuristic for approximate BC).
    std::vector<graph::VertexId> order(g.numVertices());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](graph::VertexId a, graph::VertexId b) {
                         return g.degree(a) > g.degree(b);
                     });
    num_sources = std::min<std::uint32_t>(num_sources, g.numVertices());

    BcMultiResult out;
    out.centrality.assign(g.numVertices(), 0.0);
    out.numSources = num_sources;
    for (std::uint32_t i = 0; i < num_sources; ++i) {
        const BcResult one = runBc(engine, g, map, order[i]);
        for (graph::VertexId v = 0; v < g.numVertices(); ++v)
            out.centrality[v] += one.centrality[v];
        out.totalTicks += one.totalTicks();
        out.edgesTraversed += one.totalEdgesTraversed();
    }
    return out;
}

} // namespace nova::workloads
