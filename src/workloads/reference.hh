/**
 * @file
 * Sequential reference implementations used to validate every engine's
 * functional output and to compute work-efficiency baselines
 * (Sec. II-A: "work efficiency is the number of edges traversed by the
 * sequential code over the number traversed by asynchronous execution").
 */

#ifndef NOVA_WORKLOADS_REFERENCE_HH
#define NOVA_WORKLOADS_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace nova::workloads::reference
{

/** BFS depth per vertex (infProp when unreached). */
std::vector<std::uint64_t> bfsDepths(const graph::Csr &g,
                                     graph::VertexId src);

/** Dijkstra distances (infProp when unreached). */
std::vector<std::uint64_t> ssspDistances(const graph::Csr &g,
                                         graph::VertexId src);

/**
 * Weakly-connected-component labels: each vertex maps to the minimum
 * vertex id of its component (edges treated as undirected).
 */
std::vector<std::uint64_t> ccLabels(const graph::Csr &g);

/**
 * Delta-based PageRank with the same iteration scheme the BSP engines
 * run, executed sequentially.
 */
std::vector<double> pagerankDelta(const graph::Csr &g, double damping,
                                  double tolerance,
                                  std::uint64_t max_iterations);

/** Brandes dependency accumulation for one source (unweighted). */
std::vector<double> bcDependencies(const graph::Csr &g,
                                   graph::VertexId src);

/**
 * Edges a work-optimal sequential traversal touches: the sum of
 * out-degrees of reached vertices.
 */
std::uint64_t sequentialEdgeWork(const graph::Csr &g, graph::VertexId src);

} // namespace nova::workloads::reference

#endif // NOVA_WORKLOADS_REFERENCE_HH
