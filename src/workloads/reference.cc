#include "workloads/reference.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "workloads/programs.hh"

namespace nova::workloads::reference
{

using graph::Csr;
using graph::VertexId;

std::vector<std::uint64_t>
bfsDepths(const Csr &g, VertexId src)
{
    std::vector<std::uint64_t> depth(g.numVertices(), infProp);
    std::deque<VertexId> queue;
    depth[src] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        for (VertexId w : g.neighbors(v)) {
            if (depth[w] == infProp) {
                depth[w] = depth[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return depth;
}

std::vector<std::uint64_t>
ssspDistances(const Csr &g, VertexId src)
{
    std::vector<std::uint64_t> dist(g.numVertices(), infProp);
    using Item = std::pair<std::uint64_t, VertexId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
        const auto [d, v] = pq.top();
        pq.pop();
        if (d != dist[v])
            continue;
        for (graph::EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            const VertexId w = g.edgeDest(e);
            const std::uint64_t nd = d + g.edgeWeight(e);
            if (nd < dist[w]) {
                dist[w] = nd;
                pq.emplace(nd, w);
            }
        }
    }
    return dist;
}

std::vector<std::uint64_t>
ccLabels(const Csr &g)
{
    const VertexId n = g.numVertices();
    const Csr rev = transpose(g);
    std::vector<std::uint64_t> label(n, infProp);
    std::deque<VertexId> queue;
    for (VertexId root = 0; root < n; ++root) {
        if (label[root] != infProp)
            continue;
        label[root] = root;
        queue.push_back(root);
        while (!queue.empty()) {
            const VertexId v = queue.front();
            queue.pop_front();
            auto visit = [&](VertexId w) {
                if (label[w] == infProp) {
                    label[w] = root;
                    queue.push_back(w);
                }
            };
            for (VertexId w : g.neighbors(v))
                visit(w);
            for (VertexId w : rev.neighbors(v))
                visit(w);
        }
    }
    return label;
}

std::vector<double>
pagerankDelta(const Csr &g, double damping, double tolerance,
              std::uint64_t max_iterations)
{
    const VertexId n = g.numVertices();
    const double base = (1.0 - damping) / static_cast<double>(n);
    std::vector<double> rank(n, base);
    std::vector<double> delta(n, base);
    std::vector<bool> active(n, true);

    for (std::uint64_t iter = 0; iter < max_iterations; ++iter) {
        std::vector<double> acc(n, 0.0);
        bool any = false;
        for (VertexId v = 0; v < n; ++v) {
            if (!active[v] || g.degree(v) == 0)
                continue;
            any = true;
            const double contrib =
                damping * delta[v] / static_cast<double>(g.degree(v));
            for (VertexId w : g.neighbors(v))
                acc[w] += contrib;
        }
        if (!any)
            break;
        for (VertexId v = 0; v < n; ++v) {
            // Vertices receiving nothing this round become inactive,
            // matching the message-driven engines where only touched
            // vertices re-activate.
            delta[v] = acc[v];
            rank[v] += acc[v];
            active[v] = acc[v] > tolerance;
        }
    }
    return rank;
}

std::vector<double>
bcDependencies(const Csr &g, VertexId src)
{
    const VertexId n = g.numVertices();
    constexpr std::uint32_t unreached = 0xFFFF;
    std::vector<std::uint32_t> level(n, unreached);
    std::vector<double> sigma(n, 0.0);
    std::vector<VertexId> order;

    level[src] = 0;
    sigma[src] = 1.0;
    order.push_back(src);
    for (std::size_t head = 0; head < order.size(); ++head) {
        const VertexId v = order[head];
        for (VertexId w : g.neighbors(v)) {
            if (level[w] == unreached) {
                level[w] = level[v] + 1;
                order.push_back(w);
            }
            if (level[w] == level[v] + 1)
                sigma[w] += sigma[v];
        }
    }

    std::vector<double> delta(n, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const VertexId v = *it;
        for (VertexId w : g.neighbors(v)) {
            if (level[w] == level[v] + 1 && sigma[w] > 0)
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
    }
    return delta;
}

std::uint64_t
sequentialEdgeWork(const Csr &g, VertexId src)
{
    const auto depth = bfsDepths(g, src);
    std::uint64_t work = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        if (depth[v] != infProp)
            work += g.degree(v);
    return work;
}

} // namespace nova::workloads::reference
