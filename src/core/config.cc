#include "core/config.hh"

#include <algorithm>
#include <bit>
#include <cmath>

namespace nova::core
{

std::uint64_t
trackerCapacityBits(std::uint64_t vertex_mem_bytes,
                    std::uint32_t superblock_dim,
                    std::uint32_t block_bytes)
{
    // Eq. 2: num_superblocks = capacity / (superblock_dim * block_size).
    const std::uint64_t num_superblocks =
        vertex_mem_bytes /
        (std::uint64_t(superblock_dim) * block_bytes);
    // Eq. 1: (log2(superblock_dim) + 1) bits per counter.
    const std::uint64_t counter_bits =
        static_cast<std::uint64_t>(std::bit_width(superblock_dim - 1)) + 1;
    return counter_bits * num_superblocks;
}

double
NovaConfig::gpnBandwidthGBs() const
{
    const double vertex_bw =
        vertexMem.peakBytesPerSec() * pesPerGpn / 1e9;
    const double edge_bw =
        edgeMem.peakBytesPerSec() * edgeChannelsPerGpn / 1e9;
    return vertex_bw + edge_bw;
}

std::uint64_t
NovaConfig::trackerBitsPerPe() const
{
    return trackerCapacityBits(vertexMemBytesPerPe, superblockDim,
                               blockBytes);
}

NovaConfig
NovaConfig::scaled(double scale) const
{
    NovaConfig c = *this;
    auto shrink = [scale](std::uint64_t bytes, std::uint64_t floor_bytes) {
        const double scaled_bytes =
            static_cast<double>(bytes) / scale;
        return std::max<std::uint64_t>(
            floor_bytes, static_cast<std::uint64_t>(scaled_bytes));
    };
    // Floor of 32 lines: below that, direct-mapped conflict noise on
    // the (scaled) hub working set no longer matches the paper's
    // thousands-of-lines regime.
    c.cacheBytesPerPe = static_cast<std::uint32_t>(
        shrink(cacheBytesPerPe, 64 * blockBytes));
    c.vertexMemBytesPerPe = shrink(vertexMemBytesPerPe, 1 << 20);
    return c;
}

} // namespace nova::core
