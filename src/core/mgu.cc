#include "core/mgu.hh"

#include <algorithm>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::core
{

Mgu::Mgu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg_,
         std::uint32_t pe, VertexStore &store_,
         mem::MemorySystem &edge_mem, noc::Network &net_, Vmu &vmu_,
         workloads::VertexProgram &prog, const graph::VertexMapping &map,
         RunCounters &counters_)
    : ClockedObject(std::move(name), queue, cfg_.clockPeriod()), cfg(cfg_),
      peIndex(pe), store(store_), emem(edge_mem), net(net_), vmu(vmu_),
      program(prog), mapping(map), counters(counters_),
      propEvent(queue, [this] { propWork(); }),
      profProp(sim::profile::Registry::instance().site(this->name(),
                                                       "mgu.propagate")),
      profBurst(sim::profile::Registry::instance().site(this->name(),
                                                        "mgu.burst"))
{
    statistics().addScalar("verticesPropagated", &verticesPropagated);
    statistics().addScalar("edgesRead", &edgesRead);
    statistics().addScalar("messagesSent", &messagesSent);
    statistics().addScalar("rowPtrReads", &rowPtrReads);
    statistics().addScalar("sendStalls", &sendStalls);
}

void
Mgu::startup()
{
    vmu.setEntryNotify([this] { pull(); });
    pull();
}

void
Mgu::pull()
{
    while (entries.size() < cfg.mguEntryDepth && vmu.hasEntry()) {
        const Vmu::Entry e = vmu.pop();
        auto ent = std::make_shared<EntryState>();
        ent->local = e.local;
        ent->alpha = e.alpha;
        entries.push_back(ent);
        issueRowPtr(ent);
    }
}

void
Mgu::issueRowPtr(std::shared_ptr<EntryState> ent)
{
    const sim::Addr addr = store.rowPtrAddr(ent->local);
    const bool ok = emem.tryAccess(addr, 8, false, [this, ent] {
        onRowPtr(ent);
    });
    if (ok) {
        ++rowPtrReads;
    } else {
        emem.waitForSpace([this, ent] { issueRowPtr(ent); });
    }
}

void
Mgu::onRowPtr(const std::shared_ptr<EntryState> &ent)
{
    NOVA_PROF_SCOPE(profBurst);
    ent->rangeKnown = true;
    ent->next = store.edgeBegin(ent->local);
    ent->end = store.edgeEnd(ent->local);
    if (ent->next == ent->end)
        ent->issuedAll = true;
    maybeFinishEntry(ent);
    issueBursts();
}

void
Mgu::issueBursts()
{
    // Issue edge bursts in entry order; an entry whose row pointer is
    // still in flight blocks younger entries (in-order streaming).
    for (auto &ent : entries) {
        if (!ent->rangeKnown)
            break;
        while (!ent->issuedAll && burstsInFlight < cfg.mguBurstDepth) {
            const std::uint32_t edges_per_burst =
                std::max<std::uint32_t>(
                    1, cfg.mguBurstBytes / cfg.edgeRecordBytes);
            const auto count = static_cast<std::uint32_t>(std::min<EdgeId>(
                edges_per_burst, ent->end - ent->next));
            const EdgeId start = ent->next;
            ent->next += count;
            if (ent->next == ent->end)
                ent->issuedAll = true;
            ++ent->outstandingBursts;
            ++ent->unprocessedBursts;
            ++burstsInFlight;
            issueBurstRead(ent, start, count);
        }
        if (burstsInFlight >= cfg.mguBurstDepth)
            break;
    }
}

void
Mgu::issueBurstRead(std::shared_ptr<EntryState> ent, EdgeId start,
                    std::uint32_t count)
{
    const sim::Addr addr = store.edgeAddr(start);
    const std::uint32_t bytes = count * cfg.edgeRecordBytes;
    const bool ok = emem.tryAccess(addr, bytes, false,
                                   [this, ent, start, count] {
                                       onBurst(ent, start, count);
                                   });
    if (!ok)
        emem.waitForSpace([this, ent, start, count] {
            issueBurstRead(ent, start, count);
        });
}

void
Mgu::onBurst(const std::shared_ptr<EntryState> &ent, EdgeId start,
             std::uint32_t count)
{
    NOVA_PROF_SCOPE(profBurst);
    NOVA_ASSERT(ent->outstandingBursts > 0);
    --ent->outstandingBursts;
    edgesRead += count;
    propQueue.push_back(BurstItem{ent, start, count, 0});
    propEvent.schedule(clockEdge(0));
}

void
Mgu::propWork()
{
    NOVA_PROF_SCOPE(profProp);
    std::uint32_t budget = cfg.propagateFusPerPe;
    while (budget > 0 && !propQueue.empty()) {
        BurstItem &b = propQueue.front();
        while (budget > 0 && b.processed < b.count) {
            const EdgeId e = b.start + b.processed;
            const VertexId dst = store.edgeDest(e);
            noc::Message msg;
            msg.dstVertex = dst;
            msg.update =
                program.propagate(b.entry->alpha, store.edgeWeight(e));
            msg.dstPe = mapping.partOf(dst);
            msg.srcPe = peIndex;
            if (!net.trySend(msg)) {
                ++sendStalls;
                net.waitForSpace(peIndex, [this] {
                    propEvent.schedule(clockEdge(0));
                });
                return;
            }
            ++messagesSent;
            ++counters.messagesGenerated;
            ++b.processed;
            --budget;
        }
        if (b.processed == b.count) {
            auto ent = b.entry;
            propQueue.pop_front();
            NOVA_ASSERT(ent->unprocessedBursts > 0);
            --ent->unprocessedBursts;
            NOVA_ASSERT(burstsInFlight > 0);
            --burstsInFlight;
            maybeFinishEntry(ent);
            issueBursts();
        }
    }
    if (!propQueue.empty())
        propEvent.schedule(clockEdge(1));
}

void
Mgu::maybeFinishEntry(const std::shared_ptr<EntryState> &ent)
{
    if (!ent->rangeKnown || !ent->issuedAll || ent->outstandingBursts ||
        ent->unprocessedBursts)
        return;
    const auto it = std::find(entries.begin(), entries.end(), ent);
    if (it != entries.end()) {
        entries.erase(it);
        ++verticesPropagated;
        pull();
    }
}

void
Mgu::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(pendingWork() == 0 && !propEvent.scheduled(),
                "checkpointing a busy MGU");
    sim::saveGroupStats(w, statistics());
}

void
Mgu::restoreState(sim::CheckpointReader &r)
{
    sim::restoreGroupStats(r, statistics());
}

} // namespace nova::core
