/**
 * @file
 * The Vertex Management Unit (Sec. III-D) — the paper's key
 * contribution. It mediates active vertices between the message
 * processing unit (producer) and the message generation unit
 * (consumer), creating the illusion that the 80-entry on-chip active
 * buffer has the capacity of the off-chip vertex memory.
 *
 * Mechanisms modelled (Listing 1):
 *  - fast path: activations go straight into the active buffer;
 *  - spill: when the buffer is full, the active vertex overwrites its
 *    slot in the vertex set (no extra capacity or bandwidth) and a
 *    per-superblock counter tracks it;
 *  - retrieval: a prefetcher scans tracked superblocks in bursts of 16
 *    blocks, inserting active vertices and dropping inactive ones
 *    (counted as wasteful reads, Fig. 10);
 *  - coalescing: updates to a spilled vertex fold into its pending
 *    retrieval, enlarging the coalescing window (Fig. 5).
 *
 * The off-chip-FIFO alternative of Table I is selectable via
 * SpillPolicy::OffChipFifo.
 */

#ifndef NOVA_CORE_VMU_HH
#define NOVA_CORE_VMU_HH

#include <deque>
#include <functional>

#include "core/config.hh"
#include "core/vertex_store.hh"
#include "mem/dram.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"

namespace nova::core
{

/** The vertex management unit of one PE. */
class Vmu : public sim::SimObject
{
  public:
    /** One active-buffer entry: a vertex and its α snapshot. */
    struct Entry
    {
        VertexId local;
        std::uint64_t alpha;
    };

    Vmu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg,
        VertexStore &store, mem::MemorySystem &vertex_mem,
        const workloads::VertexProgram &prog);

    /**
     * Deliver an activation from the MPU (or the initial injection).
     * @param alpha the propagation value at activation time; ignored
     *        when the vertex spills (retrieval re-snapshots).
     */
    void activate(VertexId local, std::uint64_t alpha);

    /** @{ @name Consumer (MGU) interface */
    bool hasEntry() const { return !buffer.empty(); }
    Entry pop();
    void setEntryNotify(std::function<void()> fn)
    {
        entryNotify = std::move(fn);
    }
    /** @} */

    /** Spilled vertices still awaiting retrieval plus buffered ones. */
    std::uint64_t
    pendingWork() const
    {
        return totalTracked + buffer.size() + fifo.size();
    }

    /**
     * Hard-fault hook (spill.loss@pe<K>): this PE's spill region is
     * permanently lost. Only valid while quiescent (at a BSP barrier,
     * where nothing is spilled). Afterwards activations that would
     * spill over-commit the active buffer instead (an emergency slice;
     * counted by degradedInserts) — results stay exact while the
     * timing model degrades gracefully.
     */
    void loseSpillRegion();

    /** True once loseSpillRegion() switched this PE to degraded mode. */
    bool spillRegionLost() const { return spillLost; }

    /**
     * Failover hook: the backing store adopted vertices from a dead
     * GPN. Resizes the per-superblock tracker to the grown geometry;
     * only valid while quiescent (at a BSP barrier).
     */
    void onStoreGrown();

    /** @{ @name Statistics */
    sim::stats::Scalar coalescedUpdates;
    sim::stats::Scalar directInserts;
    sim::stats::Scalar spills;
    sim::stats::Scalar prefetchBursts;
    sim::stats::Scalar usefulPrefetchBytes;
    sim::stats::Scalar wastefulPrefetchBytes;
    sim::stats::Scalar activeBlocksFetched;
    sim::stats::Scalar fifoWrites;
    sim::stats::Scalar counterReconciliations;
    sim::stats::Scalar spillScrubs; ///< corrupted spill slots scrubbed
    /** Buffer over-commits after spill.loss (subset of directInserts). */
    sim::stats::Scalar degradedInserts;
    /** @} */

    /** @{ @name Checkpoint hooks (tracker + prefetch cursor + stats) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    void directInsert(VertexId local, std::uint64_t alpha);
    void emergencyInsert(VertexId local, std::uint64_t alpha);
    void spillOverwrite(VertexId local);
    void spillFifo(VertexId local);
    void maybePrefetch();
    void issueBlockRead(std::uint32_t block);
    void onBlockFetched(std::uint32_t block);
    void endBurst();
    void maybeFifoFetch();
    void issueFifoRead();
    void postFifoRead(sim::Addr addr);
    void onFifoEntryFetched(VertexId local);
    void postFifoWrite(sim::Addr addr);

    std::uint32_t freeSlots() const;

    const NovaConfig &cfg;
    VertexStore &store;
    mem::MemorySystem &vmem;
    const workloads::VertexProgram &program;

    /** Per-superblock active-block counters (the tracker module). */
    std::vector<std::uint32_t> counters;
    std::uint64_t totalTracked = 0;
    bool spillLost = false; ///< degraded mode after spill.loss

    std::deque<Entry> buffer;
    std::uint32_t reservedSlots = 0;
    std::function<void()> entryNotify;

    /** Scan state of the prefetcher. */
    bool scanActive = false;
    std::uint32_t scanSb = 0;
    std::uint32_t scanBlock = 0;
    bool scanResumed = false;
    std::uint32_t scanPending = 0;
    std::uint32_t cursorSb = 0;

    /** Off-chip FIFO mode state. */
    std::deque<VertexId> fifo;
    sim::Addr fifoHead = 0;
    sim::Addr fifoTail = 0;
    bool fifoFetchActive = false;
    std::uint32_t fifoFetchPending = 0;

    /** Base address of the auxiliary FIFO region in vertex memory. */
    static constexpr sim::Addr fifoRegionBase = sim::Addr(1) << 44;

    sim::FaultPoint *spillPoint = nullptr; ///< "spill.corrupt"
    sim::profile::Site &profActivate; ///< host time in activate()
    sim::profile::Site &profFetch;    ///< host time in onBlockFetched()
};

} // namespace nova::core

#endif // NOVA_CORE_VMU_HH
