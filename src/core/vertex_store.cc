#include "core/vertex_store.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::core
{

VertexStore::VertexStore(const graph::Csr &g,
                         const graph::VertexMapping &map, std::uint32_t pe,
                         const NovaConfig &cfg,
                         const workloads::VertexProgram &prog)
    : numLocalVerts(map.localCount(pe)), vpb(cfg.vertsPerBlock()),
      sbDim(cfg.superblockDim), blockBytes(cfg.blockBytes),
      recordBytes(cfg.edgeRecordBytes)
{
    NOVA_ASSERT(vpb >= 1, "block must hold at least one vertex");
    numBlocksTotal = (numLocalVerts + vpb - 1) / vpb;
    numSbTotal = (numBlocksTotal + sbDim - 1) / sbDim;
    if (numSbTotal == 0)
        numSbTotal = 1;

    // Distinct address regions per PE within the GPN's shared edge
    // memory; only channel routing and row locality depend on them.
    const std::uint32_t pe_in_gpn = pe % cfg.pesPerGpn;
    edgeBase = static_cast<Addr>(pe_in_gpn) << 40;
    rowBase = edgeBase + (Addr(1) << 39);

    curProp.resize(numLocalVerts);
    accProp.resize(numLocalVerts);
    activeNow.assign(numLocalVerts, 0);
    inBufferCount.assign(numLocalVerts, 0);
    activeInBlock.assign(std::max<std::uint32_t>(1, numBlocksTotal), 0);

    localToGlobal.resize(numLocalVerts);
    rowPtr.resize(static_cast<std::size_t>(numLocalVerts) + 1, 0);

    EdgeId total_edges = 0;
    for (VertexId local = 0; local < numLocalVerts; ++local) {
        const VertexId v = map.globalOf(pe, local);
        localToGlobal[local] = v;
        curProp[local] = prog.initialProp(v);
        accProp[local] = prog.initialAcc(v);
        total_edges += g.degree(v);
    }
    edgeDst.reserve(total_edges);
    if (g.weighted())
        edgeWgt.reserve(total_edges);
    for (VertexId local = 0; local < numLocalVerts; ++local) {
        const VertexId v = localToGlobal[local];
        rowPtr[local] = edgeDst.size();
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            edgeDst.push_back(g.edgeDest(e));
            if (g.weighted())
                edgeWgt.push_back(g.edgeWeight(e));
        }
    }
    rowPtr[numLocalVerts] = edgeDst.size();
}

void
VertexStore::setActiveNow(VertexId local, bool a)
{
    if (activeNow[local] == static_cast<std::uint8_t>(a))
        return;
    activeNow[local] = a;
    const std::uint32_t b = blockOf(local);
    if (a) {
        ++activeInBlock[b];
    } else {
        NOVA_ASSERT(activeInBlock[b] > 0, "active block count underflow");
        --activeInBlock[b];
    }
}

bool
VertexStore::corruptAndScrub(VertexId local, std::uint64_t mask)
{
    NOVA_ASSERT(local < numLocalVerts);
    const std::uint64_t saved = curProp[local];
    // Actually damage the stored value, as a flipped DRAM cell would.
    curProp[local] ^= mask;
    // The spill slot's checksum covers the full 64-bit value, so any
    // non-zero flip is detected; the scrubber rewrites the good copy.
    const bool detected = curProp[local] != saved;
    curProp[local] = saved;
    return detected;
}

void
VertexStore::saveState(sim::CheckpointWriter &w) const
{
    w.u64vec("cur", std::vector<std::uint64_t>(curProp.begin(),
                                               curProp.end()));
    w.u64vec("acc", std::vector<std::uint64_t>(accProp.begin(),
                                               accProp.end()));
    w.u64vec("activeNow", std::vector<std::uint64_t>(activeNow.begin(),
                                                     activeNow.end()));
    w.u64vec("inBufferCount",
             std::vector<std::uint64_t>(inBufferCount.begin(),
                                        inBufferCount.end()));
    w.u64vec("activeInBlock",
             std::vector<std::uint64_t>(activeInBlock.begin(),
                                        activeInBlock.end()));
}

void
VertexStore::restoreState(sim::CheckpointReader &r)
{
    const std::vector<std::uint64_t> cur = r.u64vec("cur");
    const std::vector<std::uint64_t> acc = r.u64vec("acc");
    const std::vector<std::uint64_t> act = r.u64vec("activeNow");
    const std::vector<std::uint64_t> buf = r.u64vec("inBufferCount");
    const std::vector<std::uint64_t> aib = r.u64vec("activeInBlock");
    if (cur.size() != curProp.size() || acc.size() != accProp.size() ||
        act.size() != activeNow.size() ||
        buf.size() != inBufferCount.size() ||
        aib.size() != activeInBlock.size())
        sim::fatal("checkpoint vertex-store shape mismatch "
                   "(different graph or partitioning?)");
    for (std::size_t i = 0; i < cur.size(); ++i) {
        curProp[i] = cur[i];
        accProp[i] = acc[i];
        activeNow[i] = static_cast<std::uint8_t>(act[i]);
        inBufferCount[i] = static_cast<std::uint8_t>(buf[i]);
    }
    for (std::size_t i = 0; i < aib.size(); ++i)
        activeInBlock[i] = static_cast<std::uint16_t>(aib[i]);
}

void
VertexStore::adoptVertices(const graph::Csr &g,
                           const std::vector<AdoptedVertex> &entries)
{
    for (const AdoptedVertex &a : entries) {
        NOVA_ASSERT(a.global < g.numVertices(),
                    "adopted vertex outside the graph");
        localToGlobal.push_back(a.global);
        curProp.push_back(a.cur);
        accProp.push_back(a.acc);
        activeNow.push_back(0);
        inBufferCount.push_back(0);
        for (EdgeId e = g.edgeBegin(a.global); e < g.edgeEnd(a.global);
             ++e) {
            edgeDst.push_back(g.edgeDest(e));
            if (g.weighted())
                edgeWgt.push_back(g.edgeWeight(e));
        }
        rowPtr.push_back(edgeDst.size());
        ++numLocalVerts;
    }
    // Appending never moves existing vertices between blocks (blockOf is
    // pure arithmetic on the local index), so only the tail grows.
    numBlocksTotal = (numLocalVerts + vpb - 1) / vpb;
    numSbTotal = (numBlocksTotal + sbDim - 1) / sbDim;
    if (numSbTotal == 0)
        numSbTotal = 1;
    activeInBlock.resize(std::max<std::uint32_t>(1, numBlocksTotal), 0);
}

std::uint32_t
VertexStore::exactActiveBlocks(std::uint32_t superblock) const
{
    const std::uint32_t first = superblock * sbDim;
    const std::uint32_t last =
        std::min(numBlocksTotal, (superblock + 1) * sbDim);
    std::uint32_t count = 0;
    for (std::uint32_t b = first; b < last; ++b)
        if (activeInBlock[b] > 0)
            ++count;
    return count;
}

} // namespace nova::core
