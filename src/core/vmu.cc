#include "core/vmu.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::core
{

Vmu::Vmu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg_,
         VertexStore &store_, mem::MemorySystem &vertex_mem,
         const workloads::VertexProgram &prog)
    : SimObject(std::move(name), queue), cfg(cfg_), store(store_),
      vmem(vertex_mem), program(prog),
      counters(store_.numSuperblocks(), 0),
      profActivate(sim::profile::Registry::instance().site(
          this->name(), "vmu.activate")),
      profFetch(sim::profile::Registry::instance().site(this->name(),
                                                        "vmu.fetch"))
{
    statistics().addScalar("coalescedUpdates", &coalescedUpdates);
    statistics().addScalar("directInserts", &directInserts);
    statistics().addScalar("spills", &spills);
    statistics().addScalar("prefetchBursts", &prefetchBursts);
    statistics().addScalar("usefulPrefetchBytes", &usefulPrefetchBytes);
    statistics().addScalar("wastefulPrefetchBytes",
                           &wastefulPrefetchBytes);
    statistics().addScalar("activeBlocksFetched", &activeBlocksFetched);
    statistics().addScalar("fifoWrites", &fifoWrites);
    statistics().addScalar("counterReconciliations",
                           &counterReconciliations);
    statistics().addScalar("spillScrubs", &spillScrubs);
    statistics().addScalar("degradedInserts", &degradedInserts);

    if (sim::FaultInjector *inj = queue.faultInjector())
        spillPoint = inj->registerPoint("spill.corrupt", this->name());
}

std::uint32_t
Vmu::freeSlots() const
{
    const auto used =
        static_cast<std::uint32_t>(buffer.size()) + reservedSlots;
    return used >= cfg.activeBufferEntries
               ? 0
               : cfg.activeBufferEntries - used;
}

void
Vmu::activate(VertexId local, std::uint64_t alpha)
{
    NOVA_PROF_SCOPE(profActivate);
    if (cfg.spill == SpillPolicy::OffChipFifo) {
        // Eager policy: no coalescing; duplicates are allowed.
        if (freeSlots() > 0)
            directInsert(local, alpha);
        else if (spillLost)
            emergencyInsert(local, alpha);
        else
            spillFifo(local);
        return;
    }

    if (store.isActiveNow(local)) {
        // Already spilled and awaiting retrieval: the update folds
        // into the pending propagation (the enlarged coalescing
        // window of the decoupled design).
        ++coalescedUpdates;
        return;
    }
    if (store.bufferCount(local) > 0) {
        // A stale snapshot is already queued; re-track so the new
        // value propagates too.
        if (spillLost)
            emergencyInsert(local, alpha);
        else
            spillOverwrite(local);
        return;
    }
    if (freeSlots() > 0)
        directInsert(local, alpha);
    else if (spillLost)
        emergencyInsert(local, alpha);
    else
        spillOverwrite(local);
}

void
Vmu::emergencyInsert(VertexId local, std::uint64_t alpha)
{
    // Degraded mode after spill.loss: the spill region is gone, so an
    // activation that would spill over-commits the buffer instead (a
    // reserved emergency slice). freeSlots() saturates at zero, so the
    // prefetcher simply never triggers while over-committed.
    ++degradedInserts;
    directInsert(local, alpha);
}

void
Vmu::directInsert(VertexId local, std::uint64_t alpha)
{
    const bool was_empty = buffer.empty();
    buffer.push_back(Entry{local, alpha});
    ++store.bufferCount(local);
    ++directInserts;
    if (was_empty && entryNotify)
        entryNotify();
}

void
Vmu::spillOverwrite(VertexId local)
{
    // The new value was already written through the MPU's cache; the
    // spill costs no extra bandwidth (Table I).
    store.setActiveNow(local, true);
    const std::uint32_t b = store.blockOf(local);
    const std::uint32_t sb = store.superblockOf(b);
    const bool transition = store.activeCountInBlock(b) == 1;
    if (cfg.tracker == TrackerPolicy::ExactBlockCount) {
        if (transition) {
            ++counters[sb];
            ++totalTracked;
        }
    } else {
        ++counters[sb];
        ++totalTracked;
    }
    ++spills;
    maybePrefetch();
}

void
Vmu::maybePrefetch()
{
    if (cfg.spill == SpillPolicy::OffChipFifo) {
        maybeFifoFetch();
        return;
    }
    if (scanActive || totalTracked == 0)
        return;
    // Clamp so a buffer smaller than the configured threshold can
    // still trigger retrieval (otherwise spills would strand).
    const std::uint32_t threshold =
        std::min(cfg.prefetchThreshold,
                 std::max(1u, cfg.activeBufferEntries / 2));
    if (freeSlots() < threshold)
        return;

    // Resume a partially scanned superblock, else round-robin to the
    // next one with a non-zero counter.
    if (!scanResumed) {
        std::uint32_t sb = cursorSb;
        bool found = false;
        for (std::uint32_t i = 0; i < counters.size(); ++i) {
            const std::uint32_t cand =
                (cursorSb + i) % static_cast<std::uint32_t>(
                    counters.size());
            if (counters[cand] > 0) {
                sb = cand;
                found = true;
                break;
            }
        }
        if (!found)
            return;
        scanSb = sb;
        scanBlock = sb * cfg.superblockDim;
        scanResumed = true;
    }

    const std::uint32_t sb_end = std::min(
        store.numBlocks(), (scanSb + 1) * cfg.superblockDim);
    const std::uint32_t burst_end =
        std::min(sb_end, scanBlock + cfg.prefetchBurstBlocks);
    if (scanBlock >= burst_end) {
        // Nothing left in this superblock (shrunk store); reconcile.
        scanActive = true;
        scanPending = 0;
        endBurst();
        return;
    }

    scanActive = true;
    scanPending = 0;
    ++prefetchBursts;
    for (std::uint32_t b = scanBlock; b < burst_end; ++b) {
        reservedSlots += store.vertsPerBlock();
        ++scanPending;
        issueBlockRead(b);
    }
    scanBlock = burst_end;
}

void
Vmu::issueBlockRead(std::uint32_t block)
{
    const bool ok = vmem.tryAccess(store.blockAddr(block), cfg.blockBytes,
                                   false, [this, block] {
                                       onBlockFetched(block);
                                   });
    if (!ok)
        vmem.waitForSpace([this, block] { issueBlockRead(block); });
}

void
Vmu::onBlockFetched(std::uint32_t block)
{
    NOVA_PROF_SCOPE(profFetch);
    reservedSlots -= store.vertsPerBlock();
    bool any = false;
    for (VertexId v = store.blockFirst(block); v < store.blockEnd(block);
         ++v) {
        if (store.isActiveNow(v)) {
            std::uint64_t mask = 0;
            if (spillPoint && spillPoint->fire(&mask)) {
                // The retrieved spill slot comes back damaged; the
                // checksum catches it and the scrubber restores the
                // good copy before the value is propagated.
                const bool scrubbed = store.corruptAndScrub(v, mask);
                NOVA_ASSERT(scrubbed,
                            "spill-slot corruption escaped the scrubber");
                ++spillScrubs;
            }
            store.setActiveNow(v, false);
            directInsert(v, program.propagateValue(
                                store.cur(v), store.globalOf(v)));
            any = true;
        }
    }
    const std::uint32_t sb = store.superblockOf(block);
    if (any) {
        usefulPrefetchBytes += cfg.blockBytes;
        ++activeBlocksFetched;
        if (counters[sb] > 0) {
            --counters[sb];
            NOVA_ASSERT(totalTracked > 0);
            --totalTracked;
        }
    } else {
        wastefulPrefetchBytes += cfg.blockBytes;
    }
    NOVA_ASSERT(scanPending > 0);
    if (--scanPending == 0)
        endBurst();
}

void
Vmu::endBurst()
{
    const std::uint32_t sb_end = std::min(
        store.numBlocks(), (scanSb + 1) * cfg.superblockDim);
    if (scanBlock >= sb_end) {
        // Superblock fully scanned: reconcile the (possibly
        // over-counting) counter against ground truth so stale counts
        // cannot trigger endless rescans.
        const std::uint32_t exact = store.exactActiveBlocks(scanSb);
        if (counters[scanSb] != exact) {
            ++counterReconciliations;
            totalTracked = totalTracked - counters[scanSb] + exact;
            counters[scanSb] = exact;
        }
        cursorSb = (scanSb + 1) % static_cast<std::uint32_t>(
            counters.size());
        scanResumed = false;
    }
    scanActive = false;
    maybePrefetch();
}

void
Vmu::loseSpillRegion()
{
    NOVA_ASSERT(pendingWork() == 0 && !scanActive && reservedSlots == 0 &&
                    !fifoFetchActive,
                "spill region lost while VMU '", name(), "' is busy");
    spillLost = true;
}

void
Vmu::onStoreGrown()
{
    NOVA_ASSERT(pendingWork() == 0 && !scanActive && reservedSlots == 0 &&
                    !fifoFetchActive,
                "store of VMU '", name(), "' grew while busy");
    counters.resize(store.numSuperblocks(), 0);
}

void
Vmu::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(buffer.empty() && fifo.empty() && !scanActive &&
                    scanPending == 0 && reservedSlots == 0 &&
                    !fifoFetchActive,
                "checkpointing VMU '", name(), "' with pending work");
    w.u64vec("counters", std::vector<std::uint64_t>(counters.begin(),
                                                    counters.end()));
    w.u64("totalTracked", totalTracked);
    w.u64("cursorSb", cursorSb);
    w.u64("scanSb", scanSb);
    w.u64("scanBlock", scanBlock);
    w.u64("scanResumed", scanResumed ? 1 : 0);
    w.u64("fifoHead", fifoHead);
    w.u64("fifoTail", fifoTail);
    sim::saveGroupStats(w, statistics());
}

void
Vmu::restoreState(sim::CheckpointReader &r)
{
    NOVA_ASSERT(buffer.empty() && fifo.empty() && !scanActive,
                "restoring VMU '", name(), "' with pending work");
    const std::vector<std::uint64_t> cnt = r.u64vec("counters");
    if (cnt.size() != counters.size())
        sim::fatal("checkpoint superblock count mismatch for '", name(),
                   "'");
    for (std::size_t i = 0; i < cnt.size(); ++i)
        counters[i] = static_cast<std::uint32_t>(cnt[i]);
    totalTracked = r.u64("totalTracked");
    cursorSb = static_cast<std::uint32_t>(r.u64("cursorSb"));
    scanSb = static_cast<std::uint32_t>(r.u64("scanSb"));
    scanBlock = static_cast<std::uint32_t>(r.u64("scanBlock"));
    scanResumed = r.u64("scanResumed") != 0;
    fifoHead = r.u64("fifoHead");
    fifoTail = r.u64("fifoTail");
    sim::restoreGroupStats(r, statistics());
}

Vmu::Entry
Vmu::pop()
{
    NOVA_ASSERT(!buffer.empty(), "pop from empty active buffer");
    Entry e = buffer.front();
    buffer.pop_front();
    NOVA_ASSERT(store.bufferCount(e.local) > 0);
    --store.bufferCount(e.local);
    maybePrefetch();
    return e;
}

void
Vmu::spillFifo(VertexId local)
{
    // Two writes per spill (Table I): the vertex set write happens via
    // the MPU's cache; the FIFO append is an extra 16 B write.
    fifo.push_back(local);
    ++fifoWrites;
    ++spills;
    postFifoWrite(fifoRegionBase + fifoTail);
    fifoTail += cfg.vertexBytes;
    maybeFifoFetch();
}

void
Vmu::postFifoWrite(sim::Addr addr)
{
    if (!vmem.tryAccess(addr, cfg.vertexBytes, true, {}))
        vmem.waitForSpace([this, addr] { postFifoWrite(addr); });
}

void
Vmu::maybeFifoFetch()
{
    if (fifoFetchActive || fifo.empty())
        return;
    const std::uint32_t threshold =
        std::min(cfg.prefetchThreshold,
                 std::max(1u, cfg.activeBufferEntries / 2));
    if (freeSlots() < threshold)
        return;
    fifoFetchActive = true;
    fifoFetchPending = std::min<std::uint32_t>(
        cfg.prefetchBurstBlocks, static_cast<std::uint32_t>(fifo.size()));
    const std::uint32_t n = fifoFetchPending;
    for (std::uint32_t i = 0; i < n; ++i) {
        const VertexId local = fifo.front();
        fifo.pop_front();
        reservedSlots += 1;
        issueFifoRead();
        // The entry read returns the vertex id; the block read that
        // follows (inside onFifoEntryFetched) supplies the value.
        eventQueue().scheduleIn(0, [this, local] {
            onFifoEntryFetched(local);
        });
    }
}

void
Vmu::issueFifoRead()
{
    const sim::Addr addr = fifoRegionBase + fifoHead;
    fifoHead += cfg.vertexBytes;
    postFifoRead(addr);
}

void
Vmu::postFifoRead(sim::Addr addr)
{
    if (!vmem.tryAccess(addr, cfg.vertexBytes, false, {}))
        vmem.waitForSpace([this, addr] { postFifoRead(addr); });
}

void
Vmu::onFifoEntryFetched(VertexId local)
{
    // Read the vertex block to obtain the current value.
    const std::uint32_t block = store.blockOf(local);
    const bool ok = vmem.tryAccess(
        store.blockAddr(block), cfg.blockBytes, false, [this, local] {
            reservedSlots -= 1;
            directInsert(local, program.propagateValue(
                                    store.cur(local),
                                    store.globalOf(local)));
            usefulPrefetchBytes += cfg.blockBytes + cfg.vertexBytes;
            NOVA_ASSERT(fifoFetchPending > 0);
            if (--fifoFetchPending == 0) {
                fifoFetchActive = false;
                maybeFifoFetch();
            }
        });
    if (!ok)
        vmem.waitForSpace([this, local] { onFifoEntryFetched(local); });
}

} // namespace nova::core
