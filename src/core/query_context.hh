/**
 * @file
 * The request model of the multi-tenant serving layer
 * (docs/SERVING.md).
 *
 * A QueryContext is the per-query half of the FlashGraph-style split:
 * the shared CSR is loaded once per campaign, and every admitted
 * request materializes its own short-lived program state (frontier,
 * property arrays, result vectors) over it. The context records the
 * request's identity and lifecycle timestamps; the transient
 * VertexProgram instance (workloads/queries.hh) carries the
 * algorithmic state while the query executes.
 */

#ifndef NOVA_CORE_QUERY_CONTEXT_HH
#define NOVA_CORE_QUERY_CONTEXT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hh"
#include "sim/types.hh"

namespace nova::core
{

/** The query kinds the serving layer multiplexes. */
enum class QueryKind : std::uint32_t
{
    MsBfs = 0,   ///< multi-source BFS (nearest-seed depth)
    Ppr = 1,     ///< personalized PageRank from one source
    P2pSssp = 2, ///< point-to-point shortest path
};

/** Number of query kinds (the arrival generator's kind-index range). */
constexpr std::uint32_t numQueryKinds = 3;

/** Stable short name ("msbfs", "ppr", "p2p"). */
const char *queryKindName(QueryKind kind);

/**
 * One materialized request: the arrival mapped onto concrete query
 * parameters (sources clamped into the resident graph, per-tenant
 * hot-set skew applied).
 */
struct QueryRequest
{
    std::uint64_t id = 0; ///< arrival index (campaign-unique)
    std::uint32_t tenant = 0;
    QueryKind kind = QueryKind::MsBfs;
    /** msbfs: the seed set; ppr/p2p: seeds[0] is the source. */
    std::vector<graph::VertexId> seeds;
    /** p2p only: the destination vertex. */
    graph::VertexId target = 0;
};

/**
 * The completed lifecycle of one query, in simulated ticks. Latency is
 * finishedAt - arrivedAt (queueing + batching delay + service).
 */
struct QueryRecord
{
    std::uint64_t id = 0;
    std::uint32_t tenant = 0;
    QueryKind kind = QueryKind::MsBfs;
    sim::Tick arrivedAt = 0;
    sim::Tick startedAt = 0;  ///< batch dispatch tick
    sim::Tick finishedAt = 0; ///< completion tick
    /** Engine ticks charged (incl. batch setup share and contention). */
    sim::Tick serviceTicks = 0;
    /** FNV-1a digest of the query answer (result vector). */
    std::uint64_t digest = 0;
    /** Size of the batch this query was dispatched in. */
    std::uint32_t batchSize = 1;
    /** True when admission dropped the query (overload shedding). */
    bool shed = false;
};

} // namespace nova::core

#endif // NOVA_CORE_QUERY_CONTEXT_HH
