#include "core/system.hh"

#include <map>
#include <memory>

#include "core/mgu.hh"
#include "core/mpu.hh"
#include "core/vmu.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nova::core
{

using workloads::ExecMode;
using workloads::RunResult;
using workloads::VertexProgram;

namespace
{

/** All per-PE components of one run, bundled for lifetime management. */
struct PeParts
{
    std::unique_ptr<VertexStore> store;
    std::unique_ptr<mem::MemorySystem> vertexMem;
    std::unique_ptr<mem::DirectMappedCache> cache;
    std::unique_ptr<Vmu> vmu;
    std::unique_ptr<Mpu> mpu;
    std::unique_ptr<Mgu> mgu;
};

} // namespace

RunResult
NovaSystem::run(VertexProgram &program, const graph::Csr &g,
                const graph::VertexMapping &map)
{
    const std::uint32_t num_pes = cfg.totalPes();
    if (map.parts() != num_pes)
        sim::fatal("mapping has ", map.parts(), " parts but the system has ",
                   num_pes, " PEs");

    program.bind(g);

    sim::EventQueue eq;
    RunCounters counters;

    noc::NetworkConfig ncfg = cfg.net;
    ncfg.numPes = num_pes;
    ncfg.pesPerGpn = cfg.pesPerGpn;
    auto net = noc::makeNetwork(cfg.fabric, "net", eq, ncfg);

    std::vector<std::unique_ptr<mem::MemorySystem>> edge_mems;
    for (std::uint32_t gpn = 0; gpn < cfg.numGpns; ++gpn) {
        edge_mems.push_back(std::make_unique<mem::MemorySystem>(
            "gpn" + std::to_string(gpn) + ".edgeMem", eq, cfg.edgeMem,
            cfg.edgeChannelsPerGpn));
    }

    std::vector<PeParts> pes(num_pes);
    for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
        const std::string base = "pe" + std::to_string(pe);
        PeParts &p = pes[pe];
        p.store = std::make_unique<VertexStore>(g, map, pe, cfg, program);
        p.vertexMem = std::make_unique<mem::MemorySystem>(
            base + ".vertexMem", eq, cfg.vertexMem, 1);
        mem::CacheConfig ccfg;
        ccfg.sizeBytes = cfg.cacheBytesPerPe;
        ccfg.lineBytes = cfg.blockBytes;
        ccfg.numMshrs = cfg.cacheMshrs;
        ccfg.hitLatency = cfg.clockPeriod();
        p.cache = std::make_unique<mem::DirectMappedCache>(
            base + ".cache", eq, ccfg, *p.vertexMem);
        p.vmu = std::make_unique<Vmu>(base + ".vmu", eq, cfg, *p.store,
                                      *p.vertexMem, program);
        p.mpu = std::make_unique<Mpu>(base + ".mpu", eq, cfg, pe, *p.store,
                                      *p.cache, *net, *p.vmu, program, map,
                                      counters);
        p.mgu = std::make_unique<Mgu>(base + ".mgu", eq, cfg, pe, *p.store,
                                      *edge_mems[pe / cfg.pesPerGpn], *net,
                                      *p.vmu, program, map, counters);
    }
    for (auto &p : pes)
        p.mpu->startup();

    const bool bsp = program.mode() == ExecMode::Bsp;

    // Pre-bucket scheduled activations (BSP level schedules).
    std::map<std::int64_t, std::vector<graph::VertexId>> schedule;
    if (bsp) {
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            const std::int64_t k = program.scheduledActivation(v);
            if (k >= 0)
                schedule[k].push_back(v);
        }
    }

    // Explicit captures (novalint capture-default): inject is only ever
    // called synchronously from this frame, never scheduled on the event
    // queue, so reference captures of the run-scoped state are safe.
    auto inject = [&pes, &map, &program](graph::VertexId v) {
        const std::uint32_t pe = map.partOf(v);
        const graph::VertexId local = map.localOf(v);
        pes[pe].vmu->activate(
            local, program.propagateValue(pes[pe].store->cur(local), v));
    };

    // Initial activations: the program's explicit set plus, in BSP
    // mode, everything scheduled for iteration 0.
    for (const graph::VertexId v : program.initialActive())
        inject(v);
    if (bsp) {
        auto it = schedule.find(0);
        if (it != schedule.end()) {
            for (const graph::VertexId v : it->second)
                inject(v);
            schedule.erase(it);
        }
    }
    // The MGUs pull once everything is wired; startup after injection
    // so initial entries are visible.
    for (auto &p : pes)
        p.mgu->startup();

    RunResult result;
    std::uint64_t iter = 0;
    for (;;) {
        eq.run();
        NOVA_ASSERT(net->messagesInNetwork() == 0,
                    "drained with messages in flight");
        if (!bsp)
            break;

        ++iter;
        result.bspIterations = iter;

        // Barrier: apply the program to every touched vertex and
        // gather next-iteration activations.
        std::vector<graph::VertexId> next_active;
        for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
            VertexStore &store = *pes[pe].store;
            for (const graph::VertexId local : pes[pe].mpu->touched()) {
                const graph::VertexId v = store.globalOf(local);
                const workloads::BarrierOutcome out = program.bspApply(
                    store.cur(local), store.acc(local), v);
                store.cur(local) = out.newCur;
                store.acc(local) = out.newAcc;
                if (out.active)
                    next_active.push_back(v);
            }
            pes[pe].mpu->clearTouched();
        }

        if (iter >= program.maxIterations())
            break;

        // Fold in this iteration's scheduled activations; skip ahead
        // over empty iterations when only later schedules remain.
        bool injected = false;
        auto it = schedule.find(static_cast<std::int64_t>(iter));
        if (it != schedule.end()) {
            for (const graph::VertexId v : it->second) {
                inject(v);
                injected = true;
            }
            schedule.erase(it);
        }
        for (const graph::VertexId v : next_active) {
            inject(v);
            injected = true;
        }
        if (!injected) {
            if (schedule.empty())
                break;
            continue; // later scheduled work exists; advance iterations
        }
    }

    // Invariants at quiescence: nothing tracked, buffered or queued.
    for (auto &p : pes) {
        NOVA_ASSERT(p.vmu->pendingWork() == 0,
                    "quiescent with pending VMU work");
    }

    result.ticks = eq.now();
    result.props.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        result.props[v] =
            pes[map.partOf(v)].store->cur(map.localOf(v));
    result.messagesProcessed = counters.messagesProcessed;
    result.messagesGenerated = counters.messagesGenerated;

    double coalesced = 0;
    double useful_prefetch = 0, wasteful_prefetch = 0;
    double cache_hits = 0, cache_misses = 0, cache_writebacks = 0;
    double vmem_read = 0, vmem_written = 0;
    double send_stalls = 0, direct_inserts = 0, spills = 0;
    double fifo_writes = 0, reconciliations = 0;
    double verts_propagated = 0, mshr_rejects = 0;
    double vmem_qlat = 0, vmem_qn = 0;
    for (auto &p : pes) {
        coalesced += p.vmu->coalescedUpdates.value() +
                     p.mpu->bspCoalesced.value();
        useful_prefetch += p.vmu->usefulPrefetchBytes.value();
        wasteful_prefetch += p.vmu->wastefulPrefetchBytes.value();
        cache_hits += p.cache->hits.value();
        cache_misses += p.cache->misses.value();
        cache_writebacks += p.cache->writebacks.value();
        vmem_read += p.vertexMem->channel(0).bytesRead.value();
        vmem_written += p.vertexMem->channel(0).bytesWritten.value();
        send_stalls += p.mgu->sendStalls.value();
        direct_inserts += p.vmu->directInserts.value();
        spills += p.vmu->spills.value();
        fifo_writes += p.vmu->fifoWrites.value();
        reconciliations += p.vmu->counterReconciliations.value();
        verts_propagated += p.mgu->verticesPropagated.value();
        mshr_rejects += p.cache->mshrRejects.value();
        vmem_qlat += p.vertexMem->channel(0).totalQueueLatency.value();
        vmem_qn += p.vertexMem->channel(0).numAccesses.value();
    }
    result.coalescedUpdates = static_cast<std::uint64_t>(coalesced);

    double edge_bytes = 0, edge_peak = 0;
    for (auto &em : edge_mems) {
        edge_bytes += em->totalBytes();
        edge_peak += em->peakBytesPerSec();
    }
    const double seconds = result.seconds();
    auto &extra = result.extra;
    extra["vertexMem.bytesRead"] = vmem_read;
    extra["vertexMem.bytesWritten"] = vmem_written;
    extra["vertexMem.usefulPrefetchBytes"] = useful_prefetch;
    extra["vertexMem.wastefulPrefetchBytes"] = wasteful_prefetch;
    extra["vertexMem.peakBytesPerSec"] =
        cfg.vertexMem.peakBytesPerSec() * num_pes;
    extra["edgeMem.bytes"] = edge_bytes;
    extra["edgeMem.peakBytesPerSec"] = edge_peak;
    extra["edgeMem.utilization"] =
        seconds > 0 && edge_peak > 0 ? edge_bytes / (edge_peak * seconds)
                                     : 0;
    extra["mgu.sendStalls"] = send_stalls;
    extra["mgu.verticesPropagated"] = verts_propagated;
    extra["vmu.directInserts"] = direct_inserts;
    extra["vmu.spills"] = spills;
    extra["vmu.fifoWrites"] = fifo_writes;
    extra["vmu.counterReconciliations"] = reconciliations;
    extra["cache.mshrRejects"] = mshr_rejects;
    extra["vertexMem.avgQueueLatency"] =
        vmem_qn > 0 ? vmem_qlat / vmem_qn : 0;
    double edge_qlat = 0, edge_qn = 0;
    double edge_rowhits = 0, edge_rowmiss = 0;
    for (auto &em : edge_mems) {
        for (std::uint32_t c = 0; c < em->numChannels(); ++c) {
            edge_qlat += em->channel(c).totalQueueLatency.value();
            edge_qn += em->channel(c).numAccesses.value();
            edge_rowhits += em->channel(c).rowHits.value();
            edge_rowmiss += em->channel(c).rowMisses.value();
        }
    }
    extra["edgeMem.rowHits"] = edge_rowhits;
    extra["edgeMem.rowMisses"] = edge_rowmiss;
    extra["edgeMem.avgQueueLatency"] =
        edge_qn > 0 ? edge_qlat / edge_qn : 0;
    extra["net.sendRejects"] = net->sendRejects.value();
    extra["cache.hits"] = cache_hits;
    extra["cache.misses"] = cache_misses;
    extra["cache.writebacks"] = cache_writebacks;
    extra["net.messages"] = net->messagesSent.value();
    extra["net.bytes"] = net->bytesSent.value();
    extra["net.crossGpnMessages"] = net->crossGpnMessages.value();
    extra["net.selfMessages"] = net->selfMessages.value();
    extra["net.avgLatency"] =
        net->messagesSent.value() + net->selfMessages.value() > 0
            ? net->totalLatency.value() /
                  (net->messagesSent.value() + net->selfMessages.value())
            : 0;
    extra["sim.events"] = static_cast<double>(eq.executed());
    // Low 52 bits only: the fingerprint must round-trip through the
    // double-valued stats map without losing information.
    extra["sim.fingerprint"] = static_cast<double>(
        eq.fingerprint() & ((std::uint64_t(1) << 52) - 1));
    return result;
}

} // namespace nova::core
