#include "core/system.hh"

#include <fstream>
#include <map>
#include <memory>
#include <optional>

#include "core/mgu.hh"
#include "core/mpu.hh"
#include "core/vmu.hh"
#include "noc/sharded.hh"
#include "sim/checkpoint.hh"
#include "sim/event_queue.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "sim/profile.hh"

namespace nova::core
{

using workloads::ExecMode;
using workloads::RunResult;
using workloads::VertexProgram;

namespace
{

/** All per-PE components of one run, bundled for lifetime management. */
struct PeParts
{
    std::unique_ptr<VertexStore> store;
    std::unique_ptr<mem::MemorySystem> vertexMem;
    std::unique_ptr<mem::DirectMappedCache> cache;
    std::unique_ptr<Vmu> vmu;
    std::unique_ptr<Mpu> mpu;
    std::unique_ptr<Mgu> mgu;
};

} // namespace

RunResult
NovaSystem::run(VertexProgram &program, const graph::Csr &g,
                const graph::VertexMapping &map)
{
    const std::uint32_t num_pes = cfg.totalPes();
    if (map.parts() != num_pes)
        sim::fatal("mapping has ", map.parts(), " parts but the system has ",
                   num_pes, " PEs");

    // The run's own mutable copy of the placement: GPN failover
    // reassigns a dead GPN's vertices here, and every component reads
    // placement through it.
    graph::VertexMapping live_map = map;

    program.bind(g);

    // Each run starts with a clean checkpoint-generation error context;
    // resume and every successful write update it below.
    sim::setCheckpointContext("");

    // The fault injector must exist before any component registers its
    // injection points, and the schedule must be installed before that.
    // With no schedule the injector is absent entirely, so a fault-free
    // run is bit-identical to a build without the subsystem.
    std::optional<sim::FaultInjector> injector;
    if (!cfg.faultSchedule.empty()) {
        injector.emplace(cfg.faultSeed);
        injector->configure(cfg.faultSchedule);
    }

    // threads == 0: the original serial scheduler, bit-compatible with
    // earlier releases. threads >= 1: conservative-PDES sharding, one
    // shard (event queue) per GPN, run by that many host worker
    // threads (docs/PARALLEL.md). The sharded model is deterministic
    // in its own right — fingerprints depend on the shard count
    // (numGpns), never on the thread count.
    const bool sharded = cfg.threads > 0;
    if (sharded) {
        if (injector && injector->hasTransient())
            sim::fatal("--threads does not support transient fault "
                       "injection (the injector's draw order is "
                       "schedule-global); hard tick= kinds are fine");
        if (cfg.watchdogIntervalEvents > 0)
            sim::fatal("--threads does not support the watchdog (its "
                       "probes read cross-shard state mid-window)");
        if (cfg.fabric != noc::FabricKind::Hierarchical)
            sim::fatal("--threads requires the hierarchical fabric (the "
                       "conservative lookahead comes from the crossbar)");
    }

    noc::NetworkConfig ncfg = cfg.net;
    ncfg.numPes = num_pes;
    ncfg.pesPerGpn = cfg.pesPerGpn;

    std::optional<sim::EventQueue> serial_eq;
    std::optional<sim::ParallelScheduler> sched;
    if (sharded) {
        sim::ParallelScheduler::Config pcfg;
        pcfg.numShards = cfg.numGpns;
        pcfg.numThreads = cfg.threads;
        pcfg.lookahead =
            noc::ShardedHierarchicalNetwork::minCrossLookahead(ncfg);
        pcfg.deterministicMerge = cfg.deterministicMerge;
        pcfg.impl = sim::EventQueue::defaultImpl();
        sched.emplace(pcfg);
    } else {
        serial_eq.emplace();
    }
    // The queue a PE's components schedule on: its GPN's shard, or the
    // one serial queue.
    auto queueFor = [&serial_eq, &sched, sharded,
                     this](std::uint32_t pe) -> sim::EventQueue & {
        return sharded ? sched->shard(pe / cfg.pesPerGpn) : *serial_eq;
    };
    // Message counters are per GPN in sharded mode (each shard's
    // components update only their own), summed for the final result.
    std::vector<RunCounters> counters(sharded ? cfg.numGpns : 1);
    auto countersFor = [&counters, sharded,
                        this](std::uint32_t pe) -> RunCounters & {
        return counters[sharded ? pe / cfg.pesPerGpn : 0];
    };

    // Each run reports its own host-time profile, not the process's.
    if (sim::profile::Registry::armed())
        sim::profile::Registry::instance().reset();

    // Attach the injector to the serial queue so components register
    // their transient points. Shard queues never carry an injector
    // (the sharded fabric asserts that); hard faults don't need
    // opportunity points — the system applies them at barriers.
    if (injector && !sharded)
        serial_eq->setFaultInjector(&*injector);
    if (cfg.maxTicks > 0 || cfg.maxEvents > 0) {
        if (sharded)
            sched->setGuard(cfg.maxTicks, cfg.maxEvents);
        else
            serial_eq->setGuard(cfg.maxTicks, cfg.maxEvents);
    }

    std::unique_ptr<noc::Network> net;
    noc::ShardedHierarchicalNetwork *sharded_net = nullptr;
    if (sharded) {
        auto sn = std::make_unique<noc::ShardedHierarchicalNetwork>(
            "net", *sched, ncfg);
        sharded_net = sn.get();
        net = std::move(sn);
    } else {
        net = noc::makeNetwork(cfg.fabric, "net", *serial_eq, ncfg);
    }

    std::vector<std::unique_ptr<mem::MemorySystem>> edge_mems;
    for (std::uint32_t gpn = 0; gpn < cfg.numGpns; ++gpn) {
        edge_mems.push_back(std::make_unique<mem::MemorySystem>(
            "gpn" + std::to_string(gpn) + ".edgeMem",
            queueFor(gpn * cfg.pesPerGpn), cfg.edgeMem,
            cfg.edgeChannelsPerGpn));
    }

    std::vector<PeParts> pes(num_pes);
    for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
        const std::string base = "pe" + std::to_string(pe);
        sim::EventQueue &peq = queueFor(pe);
        PeParts &p = pes[pe];
        p.store = std::make_unique<VertexStore>(g, live_map, pe, cfg,
                                                program);
        p.vertexMem = std::make_unique<mem::MemorySystem>(
            base + ".vertexMem", peq, cfg.vertexMem, 1);
        mem::CacheConfig ccfg;
        ccfg.sizeBytes = cfg.cacheBytesPerPe;
        ccfg.lineBytes = cfg.blockBytes;
        ccfg.numMshrs = cfg.cacheMshrs;
        ccfg.hitLatency = cfg.clockPeriod();
        p.cache = std::make_unique<mem::DirectMappedCache>(
            base + ".cache", peq, ccfg, *p.vertexMem);
        p.vmu = std::make_unique<Vmu>(base + ".vmu", peq, cfg, *p.store,
                                      *p.vertexMem, program);
        p.mpu = std::make_unique<Mpu>(base + ".mpu", peq, cfg, pe,
                                      *p.store, *p.cache, *net, *p.vmu,
                                      program, live_map, countersFor(pe));
        p.mgu = std::make_unique<Mgu>(base + ".mgu", peq, cfg, pe,
                                      *p.store,
                                      *edge_mems[pe / cfg.pesPerGpn], *net,
                                      *p.vmu, program, live_map,
                                      countersFor(pe));
    }
    for (auto &p : pes)
        p.mpu->startup();

    // Hang supervision: progress heartbeats must advance while events
    // execute; pending gauges must be zero whenever the queue drains.
    // The check runs out-of-band, so arming it never perturbs the
    // event-order fingerprint.
    std::optional<sim::Watchdog> watchdog;
    if (cfg.watchdogIntervalEvents > 0) {
        watchdog.emplace(*serial_eq, cfg.watchdogIntervalEvents,
                         static_cast<std::uint32_t>(cfg.watchdogStrikes));
        watchdog->addProgress("messagesProcessed", [&counters] {
            std::uint64_t n = 0;
            for (const RunCounters &c : counters)
                n += c.messagesProcessed;
            return n;
        });
        watchdog->addProgress("messagesGenerated", [&counters] {
            std::uint64_t n = 0;
            for (const RunCounters &c : counters)
                n += c.messagesGenerated;
            return n;
        });
        watchdog->addProgress("memAccesses", [&pes, &edge_mems] {
            double n = 0;
            for (const auto &p : pes)
                n += p.vertexMem->channel(0).numAccesses.value();
            for (const auto &em : edge_mems)
                for (std::uint32_t c = 0; c < em->numChannels(); ++c)
                    n += em->channel(c).numAccesses.value();
            return static_cast<std::uint64_t>(n);
        });
        watchdog->addPending("net.inFlight", [&net] {
            return net->messagesInNetwork();
        });
        watchdog->addPending("vmu.pendingWork", [&pes] {
            std::uint64_t n = 0;
            for (const auto &p : pes)
                n += p.vmu->pendingWork();
            return n;
        });
        watchdog->addPending("mpu.stalled", [&pes] {
            std::uint64_t n = 0;
            for (const auto &p : pes)
                n += p.mpu->pendingWork();
            return n;
        });
        watchdog->addPending("mgu.inFlight", [&pes] {
            std::uint64_t n = 0;
            for (const auto &p : pes)
                n += p.mgu->pendingWork();
            return n;
        });
        watchdog->arm();
    }

    // Crash-bundle context: a PanicError escaping the run loop gets the
    // recent-event ring and a stats snapshot written next to the replay
    // token before the components unwind.
    sim::crash::Scope crash_scope(
        sharded ? &sched->shard(0) : &*serial_eq,
        [&pes, &net, &edge_mems](std::ostream &os) {
        net->statistics().dump(os);
        for (const auto &em : edge_mems)
            em->statistics().dump(os);
        for (const auto &p : pes) {
            p.cache->statistics().dump(os);
            p.vertexMem->statistics().dump(os);
            p.vmu->statistics().dump(os);
            p.mpu->statistics().dump(os);
            p.mgu->statistics().dump(os);
        }
    });

    const bool bsp = program.mode() == ExecMode::Bsp;
    if (ckpt.any() && !bsp)
        sim::fatal("checkpoint/resume needs a BSP program; ",
                   program.name(), " runs asynchronously (its only "
                   "quiescent point is completion)");
    if (injector && !injector->hardFaults().empty() && !bsp)
        sim::fatal("hard faults apply at BSP barriers; ", program.name(),
                   " runs asynchronously (no global quiescent point to "
                   "fail over at)");

    // Pre-bucket scheduled activations (BSP level schedules).
    std::map<std::int64_t, std::vector<graph::VertexId>> schedule;
    if (bsp) {
        for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
            const std::int64_t k = program.scheduledActivation(v);
            if (k >= 0)
                schedule[k].push_back(v);
        }
    }

    // Explicit captures (novalint capture-default): inject is only ever
    // called synchronously from this frame, never scheduled on the event
    // queue, so reference captures of the run-scoped state are safe.
    auto inject = [&pes, &live_map, &program](graph::VertexId v) {
        const std::uint32_t pe = live_map.partOf(v);
        const graph::VertexId local = live_map.localOf(v);
        pes[pe].vmu->activate(
            local, program.propagateValue(pes[pe].store->cur(local), v));
    };

    RunResult result;
    std::uint64_t iter = 0;
    std::vector<graph::VertexId> next_active;

    // Hard-fault (permanent failure) bookkeeping. `hardApplied` rides
    // in the checkpoint's meta section so a resumed run replays exactly
    // the degraded topology the checkpoint was written under, *before*
    // the per-component state (whose shapes depend on it) is restored.
    const std::size_t num_hard =
        injector ? injector->hardFaults().size() : 0;
    std::vector<std::uint8_t> hardApplied(num_hard, 0);
    std::uint64_t gpnsFailed = 0, migratedVertices = 0, linksDown = 0;
    std::uint64_t spillRegionsLost = 0, shardCrashes = 0;
    std::vector<std::uint8_t> deadGpn(cfg.numGpns, 0);

    // Checkpoints are only taken at BSP barriers: the queue is drained,
    // no messages are in flight and no component holds a closure, so the
    // whole state is plain data. The write happens after bspApply and
    // before the next iteration's injection; `frontier` is the
    // not-yet-injected activation set.
    auto write_checkpoint =
        // Runs synchronously at the barrier, never outlives this frame.
        [&](std::uint64_t at_iter, // novalint:allow(capture-default)
            const std::vector<graph::VertexId> &frontier) {
            // Atomic + durable: write <path>.tmp, fsync, rotate the
            // generation chain, rename into place. A crash mid-write
            // can only lose the tmp file, never an existing generation.
            const std::string tmp = ckpt.path + ".tmp";
            std::ofstream os(tmp, std::ios::trunc);
            if (!os)
                sim::fatal("cannot write checkpoint file ", tmp);
            sim::CheckpointWriter w(os);
            w.section("meta");
            w.str("engine", "nova");
            w.str("program", program.name());
            w.u64("vertices", g.numVertices());
            w.u64("pes", num_pes);
            w.u64("iter", at_iter);
            w.str("faultSchedule", cfg.faultSchedule);
            w.u64("faultSeed", cfg.faultSeed);
            // Scheduler-mode marker: 0 = serial, else the shard count.
            // Resume requires the same mode and shard count; the host
            // thread count is free to differ (the sharded schedule is
            // thread-count invariant).
            w.u64("shards", sharded ? cfg.numGpns : 0);
            w.u64vec("hardApplied",
                     std::vector<std::uint64_t>(hardApplied.begin(),
                                                hardApplied.end()));
            w.u64("gpnsFailed", gpnsFailed);
            w.u64("migratedVertices", migratedVertices);
            w.u64("linksDown", linksDown);
            w.u64("spillRegionsLost", spillRegionsLost);
            w.u64("shardCrashes", shardCrashes);
            w.section("eventq");
            if (sharded) {
                for (std::uint32_t s = 0; s < cfg.numGpns; ++s) {
                    sim::Tick tick = 0;
                    std::uint64_t next_seq = 0, executed = 0, fp = 0;
                    sched->shard(s).saveSchedulingState(tick, next_seq,
                                                        executed, fp);
                    const std::string sfx = std::to_string(s);
                    w.u64("tick" + sfx, tick);
                    w.u64("nextSeq" + sfx, next_seq);
                    w.u64("executed" + sfx, executed);
                    w.u64("fingerprint" + sfx, fp);
                }
                w.u64("mergedFingerprint", sched->mergedFingerprint());
            } else {
                sim::Tick tick = 0;
                std::uint64_t next_seq = 0, executed = 0, fp = 0;
                serial_eq->saveSchedulingState(tick, next_seq, executed,
                                               fp);
                w.u64("tick", tick);
                w.u64("nextSeq", next_seq);
                w.u64("executed", executed);
                w.u64("fingerprint", fp);
            }
            w.section("counters");
            std::vector<std::uint64_t> processed, generated;
            for (const RunCounters &c : counters) {
                processed.push_back(c.messagesProcessed);
                generated.push_back(c.messagesGenerated);
            }
            if (sharded) {
                w.u64vec("messagesProcessed", processed);
                w.u64vec("messagesGenerated", generated);
            } else {
                w.u64("messagesProcessed", processed[0]);
                w.u64("messagesGenerated", generated[0]);
            }
            w.section("injector");
            w.u64("present", injector ? 1 : 0);
            if (injector)
                injector->saveState(w);
            w.section("program");
            program.saveCheckpoint(w);
            for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
                w.section("pe" + std::to_string(pe));
                pes[pe].store->saveState(w);
                pes[pe].vertexMem->saveState(w);
                pes[pe].cache->saveState(w);
                pes[pe].vmu->saveState(w);
                pes[pe].mpu->saveState(w);
                pes[pe].mgu->saveState(w);
            }
            for (std::uint32_t gpn = 0; gpn < cfg.numGpns; ++gpn) {
                w.section("edgeMem" + std::to_string(gpn));
                edge_mems[gpn]->saveState(w);
            }
            w.section("net");
            net->saveState(w);
            w.section("frontier");
            w.u64vec("nextActive",
                     std::vector<std::uint64_t>(frontier.begin(),
                                                frontier.end()));
            w.finish();
            os.flush();
            if (!w.good() || !os)
                sim::fatal("writing checkpoint ", tmp, " failed");
            os.close();
            sim::commitCheckpointDurable(tmp, ckpt.path,
                                         ckpt.keepGenerations);
            sim::setCheckpointContext("gen 0 (" + ckpt.path + "), iter " +
                                      std::to_string(at_iter));
        };

    // Apply one parsed hard fault. `replay` re-creates the degraded
    // topology during resume — state changes only: no checkpoint write,
    // no crash, no counter bumps (those are restored from the
    // checkpoint's own meta section).
    auto applyHardFault =
        // Runs synchronously at barriers (or during resume), never
        // outlives this frame.
        [&](std::size_t idx, // novalint:allow(capture-default)
            bool replay) {
            const sim::HardFault &h = injector->hardFaults()[idx];
            hardApplied[idx] = 1;
            switch (h.kind) {
              case sim::HardFault::Kind::GpnDead: {
                if (h.target >= cfg.numGpns)
                    sim::fatal("gpn.dead@gpn", h.target,
                               " is out of range (", cfg.numGpns,
                               " GPNs)");
                if (deadGpn[h.target])
                    break; // duplicate schedule entry; already dead
                deadGpn[h.target] = 1;
                std::vector<std::uint32_t> survivors;
                for (std::uint32_t pe = 0; pe < num_pes; ++pe)
                    if (!deadGpn[pe / cfg.pesPerGpn])
                        survivors.push_back(pe);
                if (survivors.empty())
                    sim::fatal("gpn.dead@gpn", h.target,
                               ": no surviving GPN to fail over to");
                // Deal the dead GPN's vertices round-robin onto the
                // survivors in ascending global order — a pure
                // function of (mapping, fault order), so a resumed run
                // replays the identical layout.
                live_map.materialize();
                std::vector<std::vector<AdoptedVertex>> adopted(num_pes);
                std::uint64_t dealt = 0;
                for (graph::VertexId v = 0; v < g.numVertices(); ++v) {
                    const std::uint32_t pe = live_map.partOf(v);
                    if (pe / cfg.pesPerGpn != h.target)
                        continue;
                    VertexStore &dead = *pes[pe].store;
                    const graph::VertexId local = live_map.localOf(v);
                    NOVA_ASSERT(!dead.isActiveNow(local) &&
                                    dead.bufferCount(local) == 0,
                                "migrating a non-quiescent vertex");
                    const std::uint32_t to =
                        survivors[dealt % survivors.size()];
                    ++dealt;
                    adopted[to].push_back(AdoptedVertex{
                        v, dead.cur(local), dead.acc(local)});
                    live_map.reassign(v, to);
                }
                for (const std::uint32_t pe : survivors) {
                    if (adopted[pe].empty())
                        continue;
                    pes[pe].store->adoptVertices(g, adopted[pe]);
                    pes[pe].vmu->onStoreGrown();
                    pes[pe].mpu->onStoreGrown();
                }
                if (sharded)
                    sched->retireShard(h.target,
                                       survivors.front() / cfg.pesPerGpn);
                if (!replay) {
                    ++gpnsFailed;
                    migratedVertices += dealt;
                }
                break;
              }
              case sim::HardFault::Kind::LinkDown:
                if (h.target >= cfg.numGpns)
                    sim::fatal("noc.linkdown@gpn", h.target,
                               " is out of range (", cfg.numGpns,
                               " GPNs)");
                net->setLinkDown(h.target);
                if (!replay)
                    ++linksDown;
                break;
              case sim::HardFault::Kind::SpillLoss:
                if (h.target >= num_pes)
                    sim::fatal("spill.loss@pe", h.target,
                               " is out of range (", num_pes, " PEs)");
                pes[h.target].vmu->loseSpillRegion();
                if (!replay)
                    ++spillRegionsLost;
                break;
              case sim::HardFault::Kind::ShardCrash:
                if (replay)
                    break; // the crash already happened pre-checkpoint
                ++shardCrashes;
                // Record the crash as applied *inside* a forced
                // checkpoint so the restarted run resumes past this
                // barrier instead of crash-looping on it.
                if (ckpt.everyIters > 0 || ckpt.stopAfterIters > 0 ||
                    !ckpt.resumePath.empty())
                    write_checkpoint(iter, next_active);
                sim::panic("injected hard fault: shard.crash@gpn",
                           h.target, " at iteration ", iter);
            }
        };

    // Barrier hook: apply every not-yet-applied hard fault whose tick
    // threshold has been reached, in schedule order.
    auto applyPendingHardFaults =
        [&] { // novalint:allow(capture-default) synchronous at barriers
            if (num_hard == 0)
                return;
            const sim::Tick t = sharded ? sched->now() : serial_eq->now();
            for (std::size_t i = 0; i < num_hard; ++i)
                if (!hardApplied[i] &&
                    injector->hardFaults()[i].atTick <= t)
                    applyHardFault(i, false);
        };

    bool resume_entry = false;
    if (!ckpt.resumePath.empty()) {
        // Self-healing resume: walk the generation chain and restore
        // from the newest file that passes validation. A truncated or
        // bit-flipped newest generation falls back to the previous one
        // instead of killing the run.
        const sim::GenerationPick pick = sim::newestValidCheckpoint(
            ckpt.resumePath, ckpt.keepGenerations);
        if (pick.path.empty()) {
            std::string detail;
            for (const std::string &rej : pick.rejected)
                detail += "\n  " + rej;
            sim::fatal("no valid checkpoint generation at ",
                       ckpt.resumePath, " (keep=", ckpt.keepGenerations,
                       "):", detail);
        }
        for (const std::string &rej : pick.rejected)
            sim::warn("checkpoint fallback: skipping ", rej);
        std::ifstream is(pick.path);
        if (!is)
            sim::fatal("cannot open checkpoint ", pick.path);
        sim::CheckpointReader r(is);
        r.section("meta");
        if (r.str("engine") != "nova")
            sim::fatal("checkpoint was not written by the nova engine");
        const std::string prog_name = r.str("program");
        if (prog_name != program.name())
            sim::fatal("checkpoint belongs to program '", prog_name,
                       "', not '", program.name(), "'");
        if (r.u64("vertices") != g.numVertices())
            sim::fatal("checkpoint graph size mismatch");
        if (r.u64("pes") != num_pes)
            sim::fatal("checkpoint PE count mismatch");
        iter = r.u64("iter");
        if (r.str("faultSchedule") != cfg.faultSchedule)
            sim::fatal("checkpoint fault schedule mismatch (resume with "
                       "the same --faults)");
        if (r.u64("faultSeed") != cfg.faultSeed)
            sim::fatal("checkpoint fault seed mismatch");
        const std::uint64_t ck_shards = r.u64("shards");
        if (ck_shards != (sharded ? cfg.numGpns : 0))
            sim::fatal("checkpoint scheduler mode mismatch: written with ",
                       ck_shards == 0
                           ? std::string("the serial scheduler")
                           : std::to_string(ck_shards) + " shards",
                       ", resuming with ",
                       sharded ? std::to_string(cfg.numGpns) + " shards"
                               : std::string("the serial scheduler"),
                       " (--threads toggles sharding; the thread count "
                       "itself is free)");
        const std::vector<std::uint64_t> applied_v =
            r.u64vec("hardApplied");
        if (applied_v.size() != num_hard)
            sim::fatal("checkpoint hard-fault count mismatch (",
                       applied_v.size(), " recorded, schedule has ",
                       num_hard, ")");
        gpnsFailed = r.u64("gpnsFailed");
        migratedVertices = r.u64("migratedVertices");
        linksDown = r.u64("linksDown");
        spillRegionsLost = r.u64("spillRegionsLost");
        shardCrashes = r.u64("shardCrashes");
        // Replay the degraded topology the checkpoint was written under
        // *before* restoring component state: the pe-section shapes
        // (store sizes, VMU counters, retired shards) depend on it.
        for (std::size_t i = 0; i < num_hard; ++i)
            if (applied_v[i] != 0)
                applyHardFault(i, true);
        r.section("eventq");
        if (sharded) {
            for (std::uint32_t s = 0; s < cfg.numGpns; ++s) {
                const std::string sfx = std::to_string(s);
                const sim::Tick tick = r.u64("tick" + sfx);
                const std::uint64_t next_seq = r.u64("nextSeq" + sfx);
                const std::uint64_t executed = r.u64("executed" + sfx);
                const std::uint64_t fp = r.u64("fingerprint" + sfx);
                sched->shard(s).restoreSchedulingState(tick, next_seq,
                                                       executed, fp);
            }
            sched->setMergedFingerprint(r.u64("mergedFingerprint"));
        } else {
            const sim::Tick tick = r.u64("tick");
            const std::uint64_t next_seq = r.u64("nextSeq");
            const std::uint64_t executed = r.u64("executed");
            const std::uint64_t fp = r.u64("fingerprint");
            serial_eq->restoreSchedulingState(tick, next_seq, executed,
                                              fp);
        }
        r.section("counters");
        if (sharded) {
            const std::vector<std::uint64_t> processed =
                r.u64vec("messagesProcessed");
            const std::vector<std::uint64_t> generated =
                r.u64vec("messagesGenerated");
            if (processed.size() != counters.size() ||
                generated.size() != counters.size())
                sim::fatal("checkpoint counter shard count mismatch");
            for (std::size_t i = 0; i < counters.size(); ++i) {
                counters[i].messagesProcessed = processed[i];
                counters[i].messagesGenerated = generated[i];
            }
        } else {
            counters[0].messagesProcessed = r.u64("messagesProcessed");
            counters[0].messagesGenerated = r.u64("messagesGenerated");
        }
        r.section("injector");
        const bool had_injector = r.u64("present") != 0;
        if (had_injector != injector.has_value())
            sim::fatal("checkpoint fault configuration mismatch");
        if (injector)
            injector->restoreState(r);
        r.section("program");
        program.restoreCheckpoint(r);
        for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
            r.section("pe" + std::to_string(pe));
            pes[pe].store->restoreState(r);
            pes[pe].vertexMem->restoreState(r);
            pes[pe].cache->restoreState(r);
            pes[pe].vmu->restoreState(r);
            pes[pe].mpu->restoreState(r);
            pes[pe].mgu->restoreState(r);
        }
        for (std::uint32_t gpn = 0; gpn < cfg.numGpns; ++gpn) {
            r.section("edgeMem" + std::to_string(gpn));
            edge_mems[gpn]->restoreState(r);
        }
        r.section("net");
        net->restoreState(r);
        r.section("frontier");
        next_active.clear();
        for (const std::uint64_t v : r.u64vec("nextActive"))
            next_active.push_back(static_cast<graph::VertexId>(v));
        r.finish();
        sim::setCheckpointContext("gen " + std::to_string(pick.generation) +
                                  " (" + pick.path + "), iter " +
                                  std::to_string(iter));

        // Iterations before the checkpoint already consumed their
        // scheduled activations; the checkpoint iteration's own entry
        // (consumed at injection, after the write) is still pending.
        for (auto it = schedule.begin(); it != schedule.end();) {
            if (it->first < static_cast<std::int64_t>(iter))
                it = schedule.erase(it);
            else
                ++it;
        }

        result.bspIterations = iter;
        resume_entry = true;
    } else {
        // Initial activations: the program's explicit set plus, in BSP
        // mode, everything scheduled for iteration 0.
        for (const graph::VertexId v : program.initialActive())
            inject(v);
        if (bsp) {
            auto it = schedule.find(0);
            if (it != schedule.end()) {
                for (const graph::VertexId v : it->second)
                    inject(v);
                schedule.erase(it);
            }
        }
    }
    // The MGUs pull once everything is wired; startup after injection
    // so initial entries are visible.
    for (auto &p : pes)
        p.mgu->startup();

    try {
        for (;;) {
            // A resumed run re-enters the loop at the injection step:
            // the checkpoint was written post-barrier, pre-injection.
            if (!resume_entry) {
                if (sharded) {
                    sched->runUntilQuiescent();
                    // Quiescence is the one point the per-shard stat
                    // deltas may fold into the reportable Scalars.
                    sharded_net->foldStats();
                } else {
                    serial_eq->run();
                }
                NOVA_ASSERT(net->messagesInNetwork() == 0,
                            "drained with messages in flight");
                if (watchdog)
                    watchdog->checkQuiescence();
                if (!bsp)
                    break;

                ++iter;
                result.bspIterations = iter;

                // Barrier: apply the program to every touched vertex
                // and gather next-iteration activations.
                next_active.clear();
                for (std::uint32_t pe = 0; pe < num_pes; ++pe) {
                    VertexStore &store = *pes[pe].store;
                    for (const graph::VertexId local :
                         pes[pe].mpu->touched()) {
                        const graph::VertexId v = store.globalOf(local);
                        const workloads::BarrierOutcome out =
                            program.bspApply(store.cur(local),
                                             store.acc(local), v);
                        store.cur(local) = out.newCur;
                        store.acc(local) = out.newAcc;
                        if (out.active)
                            next_active.push_back(v);
                    }
                    pes[pe].mpu->clearTouched();
                }

                // Permanent faults strike at the barrier — the only
                // point of global quiescence, where no vertex is
                // buffered and no message is in flight.
                applyPendingHardFaults();

                if (iter >= program.maxIterations())
                    break;

                const bool stop_here = ckpt.stopAfterIters > 0 &&
                                       iter == ckpt.stopAfterIters;
                if (stop_here || (ckpt.everyIters > 0 &&
                                  iter % ckpt.everyIters == 0))
                    write_checkpoint(iter, next_active);
                if (stop_here) {
                    result.stoppedAtCheckpoint = true;
                    break;
                }
            }
            resume_entry = false;

            // Fold in this iteration's scheduled activations; skip
            // ahead over empty iterations when only later schedules
            // remain.
            bool injected = false;
            auto it = schedule.find(static_cast<std::int64_t>(iter));
            if (it != schedule.end()) {
                for (const graph::VertexId v : it->second) {
                    inject(v);
                    injected = true;
                }
                schedule.erase(it);
            }
            for (const graph::VertexId v : next_active) {
                inject(v);
                injected = true;
            }
            if (!injected) {
                if (schedule.empty())
                    break;
                continue; // later scheduled work exists; advance
            }
        }
    } catch (const sim::PanicError &e) {
        // Write the crash bundle while the components (and the event
        // queue's recent-event ring) are still alive; the CLI reports
        // the bundle path and replay token after unwinding.
        sim::crash::writeBundle(e.what());
        throw;
    }

    // Invariants at quiescence: nothing tracked, buffered or queued.
    for (auto &p : pes) {
        NOVA_ASSERT(p.vmu->pendingWork() == 0,
                    "quiescent with pending VMU work");
    }

    result.ticks = sharded ? sched->now() : serial_eq->now();
    result.props.resize(g.numVertices());
    for (graph::VertexId v = 0; v < g.numVertices(); ++v)
        result.props[v] =
            pes[live_map.partOf(v)].store->cur(live_map.localOf(v));
    for (const RunCounters &c : counters) {
        result.messagesProcessed += c.messagesProcessed;
        result.messagesGenerated += c.messagesGenerated;
    }

    double coalesced = 0;
    double useful_prefetch = 0, wasteful_prefetch = 0;
    double cache_hits = 0, cache_misses = 0, cache_writebacks = 0;
    double vmem_read = 0, vmem_written = 0;
    double send_stalls = 0, direct_inserts = 0, spills = 0;
    double fifo_writes = 0, reconciliations = 0;
    double verts_propagated = 0, mshr_rejects = 0;
    double vmem_qlat = 0, vmem_qn = 0;
    for (auto &p : pes) {
        coalesced += p.vmu->coalescedUpdates.value() +
                     p.mpu->bspCoalesced.value();
        useful_prefetch += p.vmu->usefulPrefetchBytes.value();
        wasteful_prefetch += p.vmu->wastefulPrefetchBytes.value();
        cache_hits += p.cache->hits.value();
        cache_misses += p.cache->misses.value();
        cache_writebacks += p.cache->writebacks.value();
        vmem_read += p.vertexMem->channel(0).bytesRead.value();
        vmem_written += p.vertexMem->channel(0).bytesWritten.value();
        send_stalls += p.mgu->sendStalls.value();
        direct_inserts += p.vmu->directInserts.value();
        spills += p.vmu->spills.value();
        fifo_writes += p.vmu->fifoWrites.value();
        reconciliations += p.vmu->counterReconciliations.value();
        verts_propagated += p.mgu->verticesPropagated.value();
        mshr_rejects += p.cache->mshrRejects.value();
        vmem_qlat += p.vertexMem->channel(0).totalQueueLatency.value();
        vmem_qn += p.vertexMem->channel(0).numAccesses.value();
    }
    result.coalescedUpdates = static_cast<std::uint64_t>(coalesced);

    double edge_bytes = 0, edge_peak = 0;
    for (auto &em : edge_mems) {
        edge_bytes += em->totalBytes();
        edge_peak += em->peakBytesPerSec();
    }
    const double seconds = result.seconds();
    auto &extra = result.extra;
    extra["vertexMem.bytesRead"] = vmem_read;
    extra["vertexMem.bytesWritten"] = vmem_written;
    extra["vertexMem.usefulPrefetchBytes"] = useful_prefetch;
    extra["vertexMem.wastefulPrefetchBytes"] = wasteful_prefetch;
    extra["vertexMem.peakBytesPerSec"] =
        cfg.vertexMem.peakBytesPerSec() * num_pes;
    extra["edgeMem.bytes"] = edge_bytes;
    extra["edgeMem.peakBytesPerSec"] = edge_peak;
    extra["edgeMem.utilization"] =
        seconds > 0 && edge_peak > 0 ? edge_bytes / (edge_peak * seconds)
                                     : 0;
    extra["mgu.sendStalls"] = send_stalls;
    extra["mgu.verticesPropagated"] = verts_propagated;
    extra["vmu.directInserts"] = direct_inserts;
    extra["vmu.spills"] = spills;
    extra["vmu.fifoWrites"] = fifo_writes;
    extra["vmu.counterReconciliations"] = reconciliations;
    extra["cache.mshrRejects"] = mshr_rejects;
    extra["vertexMem.avgQueueLatency"] =
        vmem_qn > 0 ? vmem_qlat / vmem_qn : 0;
    double edge_qlat = 0, edge_qn = 0;
    double edge_rowhits = 0, edge_rowmiss = 0;
    for (auto &em : edge_mems) {
        for (std::uint32_t c = 0; c < em->numChannels(); ++c) {
            edge_qlat += em->channel(c).totalQueueLatency.value();
            edge_qn += em->channel(c).numAccesses.value();
            edge_rowhits += em->channel(c).rowHits.value();
            edge_rowmiss += em->channel(c).rowMisses.value();
        }
    }
    extra["edgeMem.rowHits"] = edge_rowhits;
    extra["edgeMem.rowMisses"] = edge_rowmiss;
    extra["edgeMem.avgQueueLatency"] =
        edge_qn > 0 ? edge_qlat / edge_qn : 0;
    extra["net.sendRejects"] = net->sendRejects.value();
    extra["cache.hits"] = cache_hits;
    extra["cache.misses"] = cache_misses;
    extra["cache.writebacks"] = cache_writebacks;
    extra["net.messages"] = net->messagesSent.value();
    extra["net.bytes"] = net->bytesSent.value();
    extra["net.crossGpnMessages"] = net->crossGpnMessages.value();
    extra["net.selfMessages"] = net->selfMessages.value();
    extra["net.avgLatency"] =
        net->messagesSent.value() + net->selfMessages.value() > 0
            ? net->totalLatency.value() /
                  (net->messagesSent.value() + net->selfMessages.value())
            : 0;
    extra["sim.events"] = static_cast<double>(
        sharded ? sched->executed() : serial_eq->executed());
    // Low 52 bits only: the fingerprint must round-trip through the
    // double-valued stats map without losing information. In sharded
    // mode this is the combined per-shard fold — thread-count
    // invariant, but a different (coarser-grained) quantity than the
    // serial fingerprint.
    constexpr std::uint64_t fp_mask = (std::uint64_t(1) << 52) - 1;
    extra["sim.fingerprint"] = static_cast<double>(
        (sharded ? sched->fingerprint() : serial_eq->fingerprint()) &
        fp_mask);
    if (sharded) {
        extra["sim.shards"] = static_cast<double>(cfg.numGpns);
        if (cfg.deterministicMerge)
            extra["sim.mergedFingerprint"] = static_cast<double>(
                sched->mergedFingerprint() & fp_mask);
    }

    if (sim::profile::Registry::armed()) {
        const auto rows = sim::profile::Registry::instance().report(true);
        for (const auto &row : rows) {
            const std::string base = "profile." + row.kind;
            extra[base + ".calls"] = static_cast<double>(row.calls);
            extra[base + ".total_ns"] =
                static_cast<double>(row.totalNanos);
            extra[base + ".self_ns"] = static_cast<double>(row.selfNanos);
        }
    }

    // Fault-injection outcome (only when an injector was armed, so a
    // fault-free result map is unchanged from earlier builds).
    if (injector) {
        double dram_ecc = 0, dram_rereads = 0, dram_txn = 0;
        double cache_ecc = 0, scrubs = 0, recomputes = 0;
        for (auto &p : pes) {
            dram_ecc += p.vertexMem->channel(0).eccCorrected.value();
            dram_rereads += p.vertexMem->channel(0).eccRereads.value();
            dram_txn += p.vertexMem->channel(0).txnRetries.value();
            cache_ecc += p.cache->eccCorrected.value();
            scrubs += p.vmu->spillScrubs.value();
            recomputes += p.mpu->reduceRecomputes.value();
        }
        for (auto &em : edge_mems) {
            for (std::uint32_t c = 0; c < em->numChannels(); ++c) {
                dram_ecc += em->channel(c).eccCorrected.value();
                dram_rereads += em->channel(c).eccRereads.value();
                dram_txn += em->channel(c).txnRetries.value();
            }
        }
        extra["fault.injected"] =
            static_cast<double>(injector->totalFired());
        extra["fault.dram.eccCorrected"] = dram_ecc;
        extra["fault.dram.eccRereads"] = dram_rereads;
        extra["fault.dram.txnRetries"] = dram_txn;
        extra["fault.cache.eccCorrected"] = cache_ecc;
        extra["fault.vmu.spillScrubs"] = scrubs;
        extra["fault.mpu.reduceRecomputes"] = recomputes;
        extra["fault.net.flitsDropped"] = net->flitsDropped.value();
        extra["fault.net.flitsCorrupted"] = net->flitsCorrupted.value();
        extra["fault.net.flitsDuplicated"] = net->flitsDuplicated.value();
        extra["fault.net.retries"] = net->retries.value();
        extra["fault.net.retryBackoffTicks"] =
            net->retryBackoffTicks.value();
        extra["fault.net.duplicatesDiscarded"] =
            net->duplicatesDiscarded.value();
        extra["fault.net.reorders"] = net->reorders.value();
        extra["fault.recoveries"] = dram_ecc + dram_rereads + dram_txn +
                                    cache_ecc + scrubs + recomputes +
                                    net->retries.value() +
                                    net->duplicatesDiscarded.value();
        // Degraded-mode outcome, present only when the schedule carries
        // permanent (hard) faults.
        if (num_hard > 0) {
            double applied = 0;
            for (const std::uint8_t a : hardApplied)
                applied += a;
            double degraded_inserts = 0;
            for (auto &p : pes)
                degraded_inserts += p.vmu->degradedInserts.value();
            extra["failover.hardFaultsApplied"] = applied;
            extra["failover.gpnsFailed"] =
                static_cast<double>(gpnsFailed);
            extra["failover.migratedVertices"] =
                static_cast<double>(migratedVertices);
            extra["failover.linksDown"] = static_cast<double>(linksDown);
            extra["failover.spillRegionsLost"] =
                static_cast<double>(spillRegionsLost);
            extra["failover.shardCrashes"] =
                static_cast<double>(shardCrashes);
            extra["failover.degradedInserts"] = degraded_inserts;
            extra["failover.net.reroutes"] = net->reroutes.value();
            extra["failover.net.rerouteRetries"] =
                net->rerouteRetries.value();
            extra["failover.net.rerouteDelayTicks"] =
                net->rerouteDelayTicks.value();
        }
    }
    return result;
}

} // namespace nova::core
