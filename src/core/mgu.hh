/**
 * @file
 * The Message Generation Unit (Sec. III-C): pulls <α, start, end>
 * entries from the active buffer, streams the vertex's edges from the
 * GPN's shared DDR4 edge memory, applies the propagate function and
 * injects messages into the interconnect (with backpressure).
 *
 * The unit is a three-stage decoupled pipeline:
 *  1. entry front end — pops VMU entries and fetches row pointers
 *     (up to mguEntryDepth outstanding);
 *  2. edge streamer — issues 64 B edge bursts (up to mguBurstDepth
 *     outstanding) in entry order;
 *  3. propagator — applies the propagate FUs (6/PE) to returned bursts
 *     and sends messages.
 */

#ifndef NOVA_CORE_MGU_HH
#define NOVA_CORE_MGU_HH

#include <deque>
#include <memory>

#include "core/config.hh"
#include "core/run_state.hh"
#include "core/vertex_store.hh"
#include "core/vmu.hh"
#include "mem/dram.hh"
#include "noc/network.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"

namespace nova::core
{

/** The message generation unit of one PE. */
class Mgu : public sim::ClockedObject
{
  public:
    Mgu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg,
        std::uint32_t pe, VertexStore &store, mem::MemorySystem &edge_mem,
        noc::Network &net, Vmu &vmu, workloads::VertexProgram &prog,
        const graph::VertexMapping &map, RunCounters &counters);

    void startup() override;

    /** Entries and bursts in the pipeline (watchdog pending probe). */
    std::uint64_t
    pendingWork() const
    {
        return entries.size() + propQueue.size() + burstsInFlight;
    }

    /** @{ @name Statistics */
    sim::stats::Scalar verticesPropagated;
    sim::stats::Scalar edgesRead;
    sim::stats::Scalar messagesSent;
    sim::stats::Scalar rowPtrReads;
    sim::stats::Scalar sendStalls;
    /** @} */

    /** @{ @name Checkpoint hooks (statistics; the pipeline is idle) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    struct EntryState
    {
        VertexId local;
        std::uint64_t alpha;
        bool rangeKnown = false;
        bool issuedAll = false;
        EdgeId next = 0;
        EdgeId end = 0;
        std::uint32_t outstandingBursts = 0;
        std::uint32_t unprocessedBursts = 0;
    };

    struct BurstItem
    {
        std::shared_ptr<EntryState> entry;
        EdgeId start;
        std::uint32_t count;
        std::uint32_t processed = 0;
    };

    void pull();
    void issueRowPtr(std::shared_ptr<EntryState> ent);
    void onRowPtr(const std::shared_ptr<EntryState> &ent);
    void issueBursts();
    void issueBurstRead(std::shared_ptr<EntryState> ent, EdgeId start,
                        std::uint32_t count);
    void onBurst(const std::shared_ptr<EntryState> &ent, EdgeId start,
                 std::uint32_t count);
    void propWork();
    void maybeFinishEntry(const std::shared_ptr<EntryState> &ent);

    const NovaConfig &cfg;
    std::uint32_t peIndex;
    VertexStore &store;
    mem::MemorySystem &emem;
    noc::Network &net;
    Vmu &vmu;
    workloads::VertexProgram &program;
    const graph::VertexMapping &mapping;
    RunCounters &counters;

    std::deque<std::shared_ptr<EntryState>> entries;
    std::deque<BurstItem> propQueue;
    std::uint32_t burstsInFlight = 0;
    sim::SelfEvent propEvent;
    sim::profile::Site &profProp;  ///< host time in propWork()
    sim::profile::Site &profBurst; ///< host time in onBurst()/onRowPtr()
};

} // namespace nova::core

#endif // NOVA_CORE_MGU_HH
