/**
 * @file
 * NovaSystem: the full accelerator model (Sec. III + IV) behind the
 * GraphEngine interface. A run instantiates GPNs (8 PEs, one HBM2
 * vertex channel per PE, four shared DDR4 edge channels), the
 * interconnect, and the per-PE MPU/VMU/MGU pipelines; drives the
 * event loop to quiescence (with BSP barriers when the program asks
 * for them); and aggregates statistics.
 */

#ifndef NOVA_CORE_SYSTEM_HH
#define NOVA_CORE_SYSTEM_HH

#include <string>

#include "core/config.hh"
#include "workloads/engine.hh"

namespace nova::core
{

/**
 * When and where the system writes (or resumes from) checkpoints.
 * Checkpoints are taken at BSP barriers — the only points of global
 * quiescence — so the policy only applies to BSP programs; requesting
 * one for an async program is a user error (fatal).
 */
struct CheckpointPolicy
{
    /** Write a checkpoint every N BSP iterations (0 = never). */
    std::uint64_t everyIters = 0;
    /** File the checkpoint is written to. */
    std::string path = "nova.ckpt";
    /** Restore from this file before running (empty = fresh run). */
    std::string resumePath;
    /**
     * Write a checkpoint after this iteration and stop the run there
     * (0 = run to completion). Used to exercise kill/resume.
     */
    std::uint64_t stopAfterIters = 0;
    /**
     * Keep this many checkpoint generations: the newest at `path`, the
     * previous at `path.1`, and so on. Resume falls back to the newest
     * generation that passes validation (self-healing checkpoints).
     */
    unsigned keepGenerations = 1;

    bool
    any() const
    {
        return everyIters > 0 || stopAfterIters > 0 || !resumePath.empty();
    }
};

/** The NOVA accelerator as a graph-processing engine. */
class NovaSystem : public workloads::GraphEngine
{
  public:
    explicit NovaSystem(NovaConfig config) : cfg(std::move(config)) {}

    std::string name() const override { return "nova"; }

    const NovaConfig &config() const { return cfg; }

    void setCheckpointPolicy(CheckpointPolicy policy)
    {
        ckpt = std::move(policy);
    }

    const CheckpointPolicy &checkpointPolicy() const { return ckpt; }

    workloads::RunResult run(workloads::VertexProgram &program,
                             const graph::Csr &g,
                             const graph::VertexMapping &map) override;

  private:
    NovaConfig cfg;
    CheckpointPolicy ckpt;
};

} // namespace nova::core

#endif // NOVA_CORE_SYSTEM_HH
