/**
 * @file
 * NovaSystem: the full accelerator model (Sec. III + IV) behind the
 * GraphEngine interface. A run instantiates GPNs (8 PEs, one HBM2
 * vertex channel per PE, four shared DDR4 edge channels), the
 * interconnect, and the per-PE MPU/VMU/MGU pipelines; drives the
 * event loop to quiescence (with BSP barriers when the program asks
 * for them); and aggregates statistics.
 */

#ifndef NOVA_CORE_SYSTEM_HH
#define NOVA_CORE_SYSTEM_HH

#include "core/config.hh"
#include "workloads/engine.hh"

namespace nova::core
{

/** The NOVA accelerator as a graph-processing engine. */
class NovaSystem : public workloads::GraphEngine
{
  public:
    explicit NovaSystem(NovaConfig config) : cfg(std::move(config)) {}

    std::string name() const override { return "nova"; }

    const NovaConfig &config() const { return cfg; }

    workloads::RunResult run(workloads::VertexProgram &program,
                             const graph::Csr &g,
                             const graph::VertexMapping &map) override;

  private:
    NovaConfig cfg;
};

} // namespace nova::core

#endif // NOVA_CORE_SYSTEM_HH
