/**
 * @file
 * Configuration of the NOVA accelerator model (Table II defaults).
 *
 * The default values reproduce the paper's system: GPNs of 8 PEs at
 * 2 GHz, one HBM2 channel of vertex memory per PE, four shared DDR4
 * channels of edge memory per GPN, 16 reduction + 48 propagation FUs
 * per GPN, a 64 KiB direct-mapped cache per PE and a vertex management
 * unit with superblock_dim = 128 and an 80-entry active buffer.
 *
 * scaled() divides all on-chip capacities by the experiment scale so
 * that size-relative behaviour matches the paper when running the
 * scaled Table III graphs (DESIGN.md §3).
 */

#ifndef NOVA_CORE_CONFIG_HH
#define NOVA_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "mem/dram.hh"
#include "noc/network.hh"
#include "sim/types.hh"

namespace nova::core
{

/** How spilled active vertices are stored off-chip (Table I). */
enum class SpillPolicy
{
    /** Overwrite in the vertex set; retrieval searches via tracker. */
    OverwriteVertexSet,
    /** Append to an off-chip FIFO; no coalescing, duplicate entries. */
    OffChipFifo,
};

/** How superblock counters are maintained (Listing 1 vs exact). */
enum class TrackerPolicy
{
    /**
     * Exact: counters equal the number of blocks holding spilled
     * active vertices (the MPU sees whole blocks, so transitions are
     * known).
     */
    ExactBlockCount,
    /**
     * Listing 1 event counting: every activation increments; counters
     * may over-estimate, causing extra (wasted) scans that reconcile
     * at superblock-scan end.
     */
    EventCount,
};

/** Full configuration of a NOVA system. */
struct NovaConfig
{
    /** @{ @name Topology (Table II) */
    std::uint32_t numGpns = 1;
    std::uint32_t pesPerGpn = 8;
    double clockGHz = 2.0;
    /** @} */

    /** @{ @name Per-PE on-chip resources */
    std::uint32_t cacheBytesPerPe = 64 * 1024;
    std::uint32_t cacheMshrs = 64;
    std::uint32_t vertexBytes = 16;
    std::uint32_t blockBytes = 32;
    std::uint32_t superblockDim = 128;
    std::uint32_t activeBufferEntries = 80;
    /** Blocks fetched per prefetch burst (Listing 1: 16). */
    std::uint32_t prefetchBurstBlocks = 16;
    /** Free active-buffer slots required to trigger a prefetch. */
    std::uint32_t prefetchThreshold = 16;
    /** @} */

    /** @{ @name Functional units (Table II: 16 + 48 per 8-PE GPN) */
    std::uint32_t reduceFusPerPe = 2;
    std::uint32_t propagateFusPerPe = 6;
    /** @} */

    /** @{ @name Off-chip memory (Sec. IV-A) */
    mem::DramTiming vertexMem = mem::DramTiming::hbm2Channel();
    mem::DramTiming edgeMem = mem::DramTiming::ddr4Channel();
    std::uint32_t edgeChannelsPerGpn = 4;
    /**
     * Nominal per-PE vertex memory capacity (tracker sizing, Eq. 2).
     * One 4 GiB HBM2 stack per GPN shared by 8 PEs (Table II).
     */
    std::uint64_t vertexMemBytesPerPe = (std::uint64_t(4) << 30) / 8;
    /** @} */

    /** @{ @name Interconnect (Sec. IV-C) */
    noc::FabricKind fabric = noc::FabricKind::Hierarchical;
    noc::NetworkConfig net;
    /** @} */

    /** @{ @name Microarchitectural policies */
    SpillPolicy spill = SpillPolicy::OverwriteVertexSet;
    TrackerPolicy tracker = TrackerPolicy::ExactBlockCount;
    /** Outstanding row-pointer fetches in the MGU front end. */
    std::uint32_t mguEntryDepth = 8;
    /** Outstanding edge-burst fetches in the MGU streamer. */
    std::uint32_t mguBurstDepth = 24;
    /** Bytes of one edge record in edge memory. */
    std::uint32_t edgeRecordBytes = 8;
    /** Bytes fetched per MGU edge burst. */
    std::uint32_t mguBurstBytes = 128;
    /** @} */

    /** @{ @name Resilience (fault injection, watchdog, guards)
     *
     * faultSchedule uses the grammar documented in sim/fault.hh, e.g.
     * "dram.bitflip:n=3+noc.drop:every=100". Empty = injector off; the
     * run is then bit-identical to a build without the subsystem.
     */
    std::string faultSchedule;
    std::uint64_t faultSeed = 0;
    /** Event-queue guard ceilings; 0 = unlimited. */
    sim::Tick maxTicks = 0;
    std::uint64_t maxEvents = 0;
    /** Watchdog cadence (executed events between checks); 0 = off. */
    std::uint64_t watchdogIntervalEvents = 0;
    /** Checks with no progress before the watchdog declares livelock. */
    std::uint64_t watchdogStrikes = 8;
    /** @} */

    /** @{ @name Parallel scheduling (conservative PDES, docs/PARALLEL.md)
     *
     * threads = 0 (default) keeps the serial single-queue scheduler,
     * bit-compatible with earlier releases. threads >= 1 shards the
     * event queue per GPN across that many host worker threads with
     * window-barrier synchronization (threads = 1 runs the sharded
     * model sequentially — same fingerprints as any other thread
     * count, which is the determinism contract test_parallel checks).
     */
    std::uint32_t threads = 0;
    /**
     * Also produce the canonical merged (tick, priority, shard, seq)
     * order fingerprint across shards ("sim.mergedFingerprint").
     * Slightly slower (every executed event is traced); thread-count
     * invariant like the per-shard fingerprints.
     */
    bool deterministicMerge = false;
    /** @} */

    std::uint32_t totalPes() const { return numGpns * pesPerGpn; }

    sim::Tick clockPeriod() const { return sim::periodFromGHz(clockGHz); }

    std::uint32_t
    vertsPerBlock() const
    {
        return blockBytes / vertexBytes;
    }

    /**
     * Total off-chip bandwidth of one GPN in GB/s (used for the
     * iso-bandwidth comparisons of Figs. 1/4).
     */
    double gpnBandwidthGBs() const;

    /**
     * On-chip bits required by the tracker module (Eq. 1 and Eq. 2)
     * for the configured per-PE vertex memory capacity.
     */
    std::uint64_t trackerBitsPerPe() const;

    /** Tracker capacity of a whole GPN in bits (the paper's 1 MiB). */
    std::uint64_t
    trackerBitsPerGpn() const
    {
        return trackerBitsPerPe() * pesPerGpn;
    }

    /**
     * Scale all on-chip capacities by 1/scale for scaled-graph
     * experiments; bandwidths and latencies are untouched.
     */
    NovaConfig scaled(double scale) const;
};

/** Tracker capacity in bits for arbitrary parameters (Eq. 1 + Eq. 2). */
std::uint64_t trackerCapacityBits(std::uint64_t vertex_mem_bytes,
                                  std::uint32_t superblock_dim,
                                  std::uint32_t block_bytes);

} // namespace nova::core

#endif // NOVA_CORE_CONFIG_HH
