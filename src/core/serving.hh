/**
 * @file
 * Multi-tenant graph-query serving on the resident simulator
 * (docs/SERVING.md).
 *
 * A ServingSystem turns the one-algorithm-per-run engine into a served
 * system: a deterministic open-loop arrival process (sim/arrivals.hh)
 * issues concurrent queries — multi-source BFS, personalized PageRank,
 * point-to-point SSSP — against one loaded graph, and an
 * admission/batching scheduler multiplexes the resulting query
 * contexts onto PE groups with per-tenant quotas.
 *
 * Two simulation scales compose:
 *  - The macro loop is a discrete-event simulation (one EventQueue) of
 *    arrivals, admission, batching and completion across `groups`
 *    parallel PE groups.
 *  - Each dispatched query runs the real NOVA cycle model on its
 *    group's configuration (gpnsPerGroup GPNs, sharded scheduler) to
 *    obtain its service time in simulated ticks and a result digest.
 *
 * Determinism contract: the report is a pure function of the campaign
 * configuration. Arrivals are precomputed from the seed; engine ticks
 * are thread-count- and queue-backend-invariant (docs/PARALLEL.md);
 * the macro loop holds only integer state and runs single-threaded.
 * Identical seeds therefore produce bit-identical `nova-serving-1`
 * reports across {1,2,4,8} host threads and both queue backends —
 * `--threads` only parallelizes inside each engine dispatch.
 */

#ifndef NOVA_CORE_SERVING_HH
#define NOVA_CORE_SERVING_HH

#include <memory>
#include <string>
#include <vector>

#include "core/query_context.hh"
#include "graph/csr.hh"
#include "sim/arrivals.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nova::core
{

/** Configuration of one serving campaign. */
struct ServingConfig
{
    /** Provenance string for the report (the --graph spec). */
    std::string graphSpec = "rmat:256:1024";

    /** Arrival process (poisson:<gap> or trace:<path>). */
    sim::ArrivalSpec arrivals;
    /** Seed for arrivals, parameter draws and tenant hot sets. */
    std::uint64_t seed = 1;
    /** Number of tenants sharing the deployment. */
    std::uint32_t tenants = 4;
    /** Campaign length: arrivals stop after this tick (backlog drains). */
    sim::Tick duration = 200'000'000;

    /** @{ @name Capacity and scheduling */
    /** Parallel PE groups queries are dispatched onto. */
    std::uint32_t groups = 2;
    /** GPNs per group (each GPN is 8 PEs). */
    std::uint32_t gpnsPerGroup = 1;
    /** Host worker threads per engine dispatch (>= 1). */
    std::uint32_t threads = 1;
    /** Max in-flight queries per tenant (admission quota). */
    std::uint32_t quotaPerTenant = 4;
    /** Pending-queue cap per tenant; arrivals beyond it are shed. */
    std::uint32_t queueCap = 16;
    /** Max queries batched into one dispatch (same tenant + kind). */
    std::uint32_t batchMax = 4;
    /** Ticks a queue head may wait for batch-mates before dispatch. */
    sim::Tick batchWindow = 2'000'000;
    /** Fixed per-dispatch setup cost (context load) in ticks. */
    sim::Tick setupTicks = 500;
    /** Service-time inflation per concurrently busy other group (%). */
    std::uint32_t contentionPct = 10;
    /** @} */

    /** @{ @name Engine (cycle-model) parameters */
    /** Preset scale denominator for the per-dispatch NovaConfig. */
    double scale = 1000;
    /** Personalized-PageRank iteration budget. */
    std::uint64_t pprIters = 8;
    /** @} */

    /** @{ @name Checkpointing (docs/SERVING.md, "Campaign resume") */
    /** Write a checkpoint every N completed queries (0 = never). */
    std::uint64_t ckptEvery = 0;
    std::string ckptPath = "nova_serve.ckpt";
    /** Restore a campaign checkpoint before serving (empty = fresh). */
    std::string resumePath;
    /** Checkpoint after N completed queries and stop (0 = run out). */
    std::uint64_t stopAfter = 0;
    unsigned keepGenerations = 1;
    /** @} */
};

/** The outcome of a campaign. */
struct ServingReport
{
    /** Canonical `nova-serving-1` JSON text (bit-identity carrier). */
    std::string json;
    /** FNV-1a fold over every query lifecycle, in completion order. */
    std::uint64_t fingerprint = 0;

    std::uint64_t offered = 0; ///< arrivals seen (incl. shed)
    std::uint64_t served = 0;  ///< queries completed
    std::uint64_t shed = 0;    ///< queries dropped by admission
    std::uint64_t batches = 0; ///< dispatches issued
    /** Queries still pending/in flight at the end (stopped runs). */
    std::uint64_t pendingAtEnd = 0;
    /** Tick of the last completion. */
    sim::Tick makespan = 0;
    /** True when the campaign halted at `stopAfter`. */
    bool stopped = false;
};

/** A multi-tenant query-serving campaign over one resident graph. */
class ServingSystem
{
  public:
    /** @param g the shared resident graph; must outlive the system. */
    ServingSystem(ServingConfig config, const graph::Csr &g);
    ~ServingSystem();

    ServingSystem(const ServingSystem &) = delete;
    ServingSystem &operator=(const ServingSystem &) = delete;

    /** Run the campaign (once per system) and build the report. */
    ServingReport run();

    /**
     * Completed-query records in completion order. A resumed campaign
     * only holds the records completed after the restore point.
     */
    const std::vector<QueryRecord> &records() const;

    const ServingConfig &config() const { return cfg; }

    /**
     * The campaign's statistics tree: `serve.latency.*`,
     * `serve.queue_depth.*`, per-tenant child groups. Valid after
     * run().
     */
    const sim::stats::Group &stats() const;

  private:
    struct Impl;

    ServingConfig cfg;
    std::unique_ptr<Impl> impl;
};

} // namespace nova::core

#endif // NOVA_CORE_SERVING_HH
