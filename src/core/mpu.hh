/**
 * @file
 * The Message Processing Unit (Sec. III-B): consumes network messages,
 * reads the target vertex block through the per-PE direct-mapped cache,
 * applies the reduce function and reports activations to the VMU.
 *
 * The MPU never blocks on the VMU or MGU — the deadlock-freedom
 * requirement of the decoupled design (Sec. III, point 2).
 */

#ifndef NOVA_CORE_MPU_HH
#define NOVA_CORE_MPU_HH

#include <optional>
#include <vector>

#include "core/config.hh"
#include "core/run_state.hh"
#include "core/vertex_store.hh"
#include "core/vmu.hh"
#include "mem/cache.hh"
#include "noc/network.hh"
#include "sim/profile.hh"
#include "sim/sim_object.hh"

namespace nova::core
{

/** The message processing unit of one PE. */
class Mpu : public sim::ClockedObject
{
  public:
    Mpu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg,
        std::uint32_t pe, VertexStore &store, mem::DirectMappedCache &cache,
        noc::Network &net, Vmu &vmu, workloads::VertexProgram &prog,
        const graph::VertexMapping &map, RunCounters &counters);

    void startup() override;

    /** Vertices whose accumulator was touched this BSP superstep. */
    const std::vector<VertexId> &touched() const { return touchedList; }

    /** Reset the touched set at a BSP barrier. */
    void clearTouched();

    /**
     * Failover hook: the backing store adopted vertices from a dead
     * GPN. Resizes the per-local touched bitmap; only valid between
     * supersteps (touched set already cleared).
     */
    void onStoreGrown();

    /** Messages popped but not yet reduced (watchdog pending probe). */
    std::uint64_t pendingWork() const { return stalled ? 1 : 0; }

    /** @{ @name Statistics */
    sim::stats::Scalar reductions;
    sim::stats::Scalar activations;
    sim::stats::Scalar bspCoalesced;
    sim::stats::Scalar reduceRecomputes; ///< corrupted FU results redone
    /** @} */

    /** @{ @name Checkpoint hooks (statistics; the pipeline is idle) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  private:
    void wake();
    void work();
    void finishReduce(const noc::Message &msg);

    const NovaConfig &cfg;
    std::uint32_t peIndex;
    VertexStore &store;
    mem::DirectMappedCache &cache;
    noc::Network &net;
    Vmu &vmu;
    workloads::VertexProgram &program;
    const graph::VertexMapping &mapping;
    RunCounters &counters;
    bool bspMode;

    sim::SelfEvent workEvent;
    std::optional<noc::Message> stalled;
    sim::FaultPoint *reducePoint = nullptr; ///< "reduce.bitflip"
    sim::profile::Site &profWork;   ///< host time in work()
    sim::profile::Site &profReduce; ///< host time in finishReduce()

    /** Apply reduce; a firing fault point costs a detected recompute. */
    std::uint64_t checkedReduce(std::uint64_t into, std::uint64_t update,
                                std::uint64_t cur);

    std::vector<std::uint8_t> touchedFlag;
    std::vector<VertexId> touchedList;
};

} // namespace nova::core

#endif // NOVA_CORE_MPU_HH
