#include "core/mpu.hh"

#include "sim/checkpoint.hh"
#include "workloads/programs.hh"

namespace nova::core
{

Mpu::Mpu(std::string name, sim::EventQueue &queue, const NovaConfig &cfg_,
         std::uint32_t pe, VertexStore &store_,
         mem::DirectMappedCache &cache_, noc::Network &net_, Vmu &vmu_,
         workloads::VertexProgram &prog, const graph::VertexMapping &map,
         RunCounters &counters_)
    : ClockedObject(std::move(name), queue, cfg_.clockPeriod()), cfg(cfg_),
      peIndex(pe), store(store_), cache(cache_), net(net_), vmu(vmu_),
      program(prog), mapping(map), counters(counters_),
      bspMode(prog.mode() == workloads::ExecMode::Bsp),
      workEvent(queue, [this] { work(); }),
      profWork(sim::profile::Registry::instance().site(this->name(),
                                                       "mpu.work")),
      profReduce(sim::profile::Registry::instance().site(this->name(),
                                                         "mpu.reduce"))
{
    statistics().addScalar("reductions", &reductions);
    statistics().addScalar("activations", &activations);
    statistics().addScalar("bspCoalesced", &bspCoalesced);
    statistics().addScalar("reduceRecomputes", &reduceRecomputes);
    if (sim::FaultInjector *inj = queue.faultInjector())
        reducePoint = inj->registerPoint("reduce.bitflip", this->name());
    if (bspMode)
        touchedFlag.assign(store.numLocal(), 0);
}

void
Mpu::startup()
{
    net.setInboundNotify(peIndex, [this] { wake(); });
}

void
Mpu::wake()
{
    workEvent.schedule(clockEdge(0));
}

void
Mpu::work()
{
    NOVA_PROF_SCOPE(profWork);
    std::uint32_t issued = 0;
    while (issued < cfg.reduceFusPerPe) {
        if (!stalled) {
            if (net.inboundEmpty(peIndex))
                break;
            stalled = net.popInbound(peIndex);
        }
        const noc::Message msg = *stalled;
        const VertexId local = mapping.localOf(msg.dstVertex);
        const sim::Addr addr = store.blockAddr(store.blockOf(local));
        const bool ok = cache.access(addr, true, [this, msg] {
            finishReduce(msg);
        });
        if (!ok) {
            // No MSHR: hold the message and retry when one frees.
            cache.waitForSpace([this] { wake(); });
            return;
        }
        stalled.reset();
        ++issued;
    }
    if (stalled || !net.inboundEmpty(peIndex))
        workEvent.schedule(clockEdge(1));
}

void
Mpu::finishReduce(const noc::Message &msg)
{
    NOVA_PROF_SCOPE(profReduce);
    const VertexId local = mapping.localOf(msg.dstVertex);
    ++reductions;
    ++counters.messagesProcessed;

    if (!bspMode) {
        const std::uint64_t old = store.cur(local);
        const std::uint64_t next = checkedReduce(old, msg.update, old);
        store.cur(local) = next;
        if (program.activates(old, next)) {
            ++activations;
            vmu.activate(local, program.propagateValue(
                                    next, store.globalOf(local)));
        }
        return;
    }

    // BSP: reduce into the accumulator; the barrier applies it.
    const std::uint64_t old_acc = store.acc(local);
    store.acc(local) =
        checkedReduce(old_acc, msg.update, store.cur(local));
    if (!touchedFlag[local]) {
        touchedFlag[local] = 1;
        touchedList.push_back(local);
    } else {
        ++bspCoalesced;
    }
}

std::uint64_t
Mpu::checkedReduce(std::uint64_t into, std::uint64_t update,
                   std::uint64_t cur)
{
    const std::uint64_t good = program.reduce(into, update, cur);
    std::uint64_t mask = 0;
    if (reducePoint && reducePoint->fire(&mask)) {
        // The FU produced `good ^ mask`; the residue check catches the
        // mismatch and the reduction is replayed on the spare pass.
        if ((good ^ mask) != good)
            ++reduceRecomputes;
    }
    return good;
}

void
Mpu::clearTouched()
{
    for (const VertexId v : touchedList)
        touchedFlag[v] = 0;
    touchedList.clear();
}

void
Mpu::onStoreGrown()
{
    NOVA_ASSERT(touchedList.empty() && !stalled,
                "store of MPU '", name(), "' grew while busy");
    if (bspMode)
        touchedFlag.resize(store.numLocal(), 0);
}

void
Mpu::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(!stalled && !workEvent.scheduled(),
                "checkpointing a busy MPU");
    NOVA_ASSERT(touchedList.empty(),
                "checkpointing an MPU before the barrier cleared it");
    sim::saveGroupStats(w, statistics());
}

void
Mpu::restoreState(sim::CheckpointReader &r)
{
    sim::restoreGroupStats(r, statistics());
}

} // namespace nova::core
