#include "core/serving.hh"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

#include "core/system.hh"
#include "graph/partition.hh"
#include "sim/checkpoint.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "workloads/queries.hh"

namespace nova::core
{

const char *
queryKindName(QueryKind kind)
{
    switch (kind) {
      case QueryKind::MsBfs:
        return "msbfs";
      case QueryKind::Ppr:
        return "ppr";
      case QueryKind::P2pSssp:
        return "p2p";
    }
    return "?";
}

namespace
{

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

std::uint64_t
fnvFold(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= fnvPrime;
    }
    return h;
}

/** Vertices each tenant's traffic concentrates on (cache-hot skew). */
constexpr std::uint64_t hotSetSize = 4;

/** One query in flight on a PE group. */
struct Inflight
{
    std::uint64_t idx = 0; ///< arrival index
    sim::Tick startedAt = 0;
    sim::Tick finishAt = 0;
    sim::Tick serviceTicks = 0;
    std::uint64_t digest = 0;
    std::uint32_t batchSize = 1;
};

/** One PE group: a server slot of `gpnsPerGroup` GPNs. */
struct GroupSlot
{
    bool busy = false;
    std::uint32_t tenant = 0;
    std::vector<Inflight> members; ///< ascending finishAt
};

/** Per-tenant scheduler and accounting state. */
struct TenantState
{
    explicit TenantState(const std::string &group_name)
        : group(group_name)
    {
        group.addScalar("offered", &offeredStat);
        group.addScalar("served", &servedStat);
        group.addScalar("shed", &shedStat);
        latency.registerIn(group, "latency");
    }

    std::deque<std::uint64_t> pending; ///< queued arrival indices
    std::uint32_t inflight = 0;        ///< dispatched, not completed
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    std::uint64_t shedCount = 0;

    sim::stats::Group group;
    sim::stats::Scalar offeredStat, servedStat, shedStat;
    sim::stats::Quantiles latency; ///< ticks, completion order
};

} // namespace

struct ServingSystem::Impl
{
    Impl(const ServingConfig &config, const graph::Csr &graph)
        : cfg(config), g(graph), root("serve"),
          map(graph::VertexMapping::interleave(
              graph.numVertices(),
              config.gpnsPerGroup * NovaConfig{}.pesPerGpn))
    {
        root.addScalar("offered", &offeredStat);
        root.addScalar("served", &servedStat);
        root.addScalar("shed", &shedStat);
        root.addScalar("batches", &batchesStat);
        latencyAll.registerIn(root, "latency");
        queueDepth.registerIn(root, "queue_depth");
        batchSize.registerIn(root, "batch_size");
        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            tenants.push_back(std::make_unique<TenantState>(
                "tenant" + std::to_string(t)));
            root.addChild(&tenants.back()->group);
        }
        groups.resize(cfg.groups);

        // Per-tenant hot sets: the handful of vertices a tenant's
        // queries favour (pinned by the campaign seed, independent of
        // the arrival stream).
        hotSets.resize(cfg.tenants);
        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            sim::Rng rng(cfg.seed ^
                         (0xB0115EEDULL + t * 0x9e3779b97f4a7c15ULL));
            for (std::uint64_t i = 0; i < hotSetSize; ++i)
                hotSets[t].push_back(static_cast<graph::VertexId>(
                    rng.nextBounded(g.numVertices())));
        }

        arrivals = sim::generateArrivals(cfg.arrivals, cfg.seed,
                                         cfg.tenants, numQueryKinds,
                                         cfg.duration);
    }

    /** @{ @name Campaign state (checkpointed) */
    const ServingConfig &cfg;
    const graph::Csr &g;
    std::vector<sim::Arrival> arrivals;
    std::vector<std::unique_ptr<TenantState>> tenants;
    std::vector<GroupSlot> groups;
    std::uint64_t arrivalCursor = 0; ///< next arrival not yet enqueued
    std::uint64_t completed = 0;
    std::uint64_t completedAtLastCkpt = 0;
    std::uint64_t batches = 0;
    std::uint64_t offeredTotal = 0;
    std::uint64_t shedTotal = 0;
    std::uint32_t rrCursor = 0; ///< round-robin admission cursor
    sim::Tick makespan = 0;
    std::uint64_t fp = fnvOffset;
    bool halted = false;
    /** @} */

    sim::EventQueue evq;
    std::vector<QueryRecord> recs;
    std::vector<std::vector<graph::VertexId>> hotSets;
    graph::VertexMapping map;
    sim::Tick resumeTick = 0;
    bool resumed = false;

    sim::stats::Group root;
    sim::stats::Scalar offeredStat, servedStat, shedStat, batchesStat;
    sim::stats::Quantiles latencyAll; ///< all tenants, completion order
    sim::stats::Quantiles queueDepth; ///< sampled at each enqueue
    sim::stats::Quantiles batchSize;  ///< per dispatch

    /** Host-side memo of engine runs (simulated time is unaffected:
     *  a hit is charged the same service ticks as a fresh run). */
    std::map<std::string, std::pair<sim::Tick, std::uint64_t>> memo;

    /** Completions run before arrivals (0) and retries (1) of the
     *  same tick, in ascending group index — a total order that a
     *  resumed campaign can reconstruct exactly. */
    static int groupPriority(std::uint32_t grp)
    {
        return -1000 + static_cast<int>(grp);
    }

    void
    scheduleArrival(std::uint64_t i)
    {
        if (i >= arrivals.size())
            return;
        evq.schedule(arrivals[i].at, [this, i] { onArrival(i); });
    }

    /**
     * Maintain the retry invariant: after every event, each tenant
     * queue head whose batch window has not expired has a retry event
     * pending at its expiry. Stale retries (the head moved on) are
     * no-ops, so duplicates are harmless and a resumed campaign can
     * re-derive the live set from queue heads alone.
     */
    void
    scheduleWindowRetries()
    {
        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            TenantState &ten = *tenants[t];
            if (ten.pending.empty())
                continue;
            const std::uint64_t head = ten.pending.front();
            const sim::Tick expiry =
                sim::tickAdd(arrivals[head].at, cfg.batchWindow);
            if (expiry <= evq.now())
                continue;
            evq.schedule(expiry, [this, t, head] {
                if (halted)
                    return;
                TenantState &tn = *tenants[t];
                if (tn.pending.empty() || tn.pending.front() != head)
                    return; // stale: the head moved on
                tryAdmit();
            }, 1);
        }
    }

    void
    onArrival(std::uint64_t i)
    {
        if (halted)
            return;
        arrivalCursor = i + 1;
        scheduleArrival(i + 1);

        const sim::Arrival &a = arrivals[i];
        TenantState &ten = *tenants[a.tenant];
        ++offeredTotal;
        ++ten.offered;
        if (ten.pending.size() >= cfg.queueCap) {
            // Overload shedding: the tenant's backlog is full. The
            // drop is part of the campaign's observable behaviour, so
            // it joins the records and the fingerprint.
            ++ten.shedCount;
            ++shedTotal;
            QueryRecord rec;
            rec.id = i;
            rec.tenant = a.tenant;
            rec.kind = static_cast<QueryKind>(a.kind);
            rec.arrivedAt = a.at;
            rec.shed = true;
            recs.push_back(rec);
            fp = fnvFold(fp, i);
            fp = fnvFold(fp, (std::uint64_t(a.tenant) << 32) | 0x5EDull);
            fp = fnvFold(fp, a.at);
            return;
        }
        ten.pending.push_back(i);
        queueDepth.sample(ten.pending.size());
        tryAdmit();
    }

    /** True when tenant t's queue head may be dispatched now. */
    bool
    headDispatchable(const TenantState &ten) const
    {
        const sim::Arrival &head = arrivals[ten.pending.front()];
        if (evq.now() >= sim::tickAdd(head.at, cfg.batchWindow))
            return true; // waited long enough
        if (ten.pending.size() >= cfg.queueCap)
            return true; // backpressure: drain now
        std::uint32_t same_kind = 0;
        for (const std::uint64_t idx : ten.pending)
            if (arrivals[idx].kind == head.kind &&
                ++same_kind >= cfg.batchMax)
                return true; // a full batch is ready
        return false;
    }

    bool
    eligible(const TenantState &ten) const
    {
        return !ten.pending.empty() &&
               ten.inflight < cfg.quotaPerTenant &&
               headDispatchable(ten);
    }

    /** Deficit-free round robin: tenants take turns at whole batches. */
    void
    tryAdmit()
    {
        for (;;) {
            std::uint32_t grp = 0;
            while (grp < cfg.groups && groups[grp].busy)
                ++grp;
            if (grp >= cfg.groups)
                break; // all PE groups busy
            std::uint32_t chosen = cfg.tenants;
            for (std::uint32_t k = 0; k < cfg.tenants; ++k) {
                const std::uint32_t t = (rrCursor + k) % cfg.tenants;
                if (eligible(*tenants[t])) {
                    chosen = t;
                    break;
                }
            }
            if (chosen >= cfg.tenants)
                break; // nothing admissible
            dispatch(chosen, popBatch(chosen), grp);
            rrCursor = (chosen + 1) % cfg.tenants;
        }
        scheduleWindowRetries();
    }

    /** Pop up to batchMax same-kind requests (FIFO) off the queue. */
    std::vector<std::uint64_t>
    popBatch(std::uint32_t t)
    {
        TenantState &ten = *tenants[t];
        const std::uint32_t kind =
            arrivals[ten.pending.front()].kind;
        const std::uint32_t limit =
            std::min(cfg.batchMax,
                     cfg.quotaPerTenant - ten.inflight);
        std::vector<std::uint64_t> batch;
        std::deque<std::uint64_t> keep;
        for (const std::uint64_t idx : ten.pending) {
            if (batch.size() < limit && arrivals[idx].kind == kind)
                batch.push_back(idx);
            else
                keep.push_back(idx);
        }
        ten.pending.swap(keep);
        return batch;
    }

    void
    dispatch(std::uint32_t t, const std::vector<std::uint64_t> &batch,
             std::uint32_t grp)
    {
        std::uint32_t busy_others = 0;
        for (const GroupSlot &s : groups)
            busy_others += s.busy ? 1 : 0;

        GroupSlot &slot = groups[grp];
        slot.busy = true;
        slot.tenant = t;
        const sim::Tick start = evq.now();
        // The batch shares one context-setup charge, then its queries
        // run back to back on the group; concurrent activity on other
        // groups inflates service time (shared-bandwidth contention).
        sim::Tick cum = cfg.setupTicks;
        for (const std::uint64_t idx : batch) {
            const auto [ticks, digest] = runQuery(idx);
            const sim::Tick inflated = sim::tickAdd(
                ticks,
                sim::tickMul(ticks, cfg.contentionPct * busy_others) /
                    100);
            cum = sim::tickAdd(cum, inflated);
            Inflight q;
            q.idx = idx;
            q.startedAt = start;
            q.finishAt = sim::tickAdd(start, cum);
            q.serviceTicks = inflated;
            q.digest = digest;
            q.batchSize = static_cast<std::uint32_t>(batch.size());
            slot.members.push_back(q);
        }
        ++batches;
        batchSize.sample(batch.size());
        tenants[t]->inflight +=
            static_cast<std::uint32_t>(batch.size());
        evq.schedule(slot.members.back().finishAt,
                     [this, grp] { onCompletion(grp); },
                     groupPriority(grp));
    }

    void
    onCompletion(std::uint32_t grp)
    {
        if (halted)
            return;
        GroupSlot &slot = groups[grp];
        NOVA_ASSERT(slot.busy, "completion on an idle group");
        TenantState &ten = *tenants[slot.tenant];
        for (const Inflight &q : slot.members) {
            const sim::Arrival &a = arrivals[q.idx];
            QueryRecord rec;
            rec.id = q.idx;
            rec.tenant = a.tenant;
            rec.kind = static_cast<QueryKind>(a.kind);
            rec.arrivedAt = a.at;
            rec.startedAt = q.startedAt;
            rec.finishedAt = q.finishAt;
            rec.serviceTicks = q.serviceTicks;
            rec.digest = q.digest;
            rec.batchSize = q.batchSize;
            recs.push_back(rec);

            const sim::Tick lat = sim::tickSub(q.finishAt, a.at);
            ten.latency.sample(lat);
            latencyAll.sample(lat);
            ++ten.served;
            fp = fnvFold(fp, q.idx);
            fp = fnvFold(fp, (std::uint64_t(a.tenant) << 32) | a.kind);
            fp = fnvFold(fp, a.at);
            fp = fnvFold(fp, q.startedAt);
            fp = fnvFold(fp, q.finishAt);
            fp = fnvFold(fp, q.digest);
            makespan = std::max(makespan, q.finishAt);
        }
        completed += slot.members.size();
        ten.inflight -=
            static_cast<std::uint32_t>(slot.members.size());
        slot.busy = false;
        slot.members.clear();

        if (cfg.stopAfter > 0 && completed >= cfg.stopAfter) {
            // Stop the campaign here: the checkpoint captures the
            // still-in-flight batches of other groups; remaining
            // events drain as no-ops and a resume replays them.
            halted = true;
            writeCheckpoint();
            return;
        }
        if (cfg.ckptEvery > 0 &&
            completed - completedAtLastCkpt >= cfg.ckptEvery)
            writeCheckpoint();
        tryAdmit();
    }

    /** @{ @name Query materialization and execution */

    graph::VertexId
    pickVertex(std::uint32_t tenant, std::uint64_t sel) const
    {
        const graph::VertexId v_count = g.numVertices();
        if (v_count <= 1)
            return 0;
        if ((sel & 3) != 0) // 75 % of draws hit the tenant's hot set
            return hotSets[tenant][(sel >> 2) % hotSetSize];
        return static_cast<graph::VertexId>((sel >> 2) % v_count);
    }

    QueryRequest
    buildRequest(std::uint64_t idx) const
    {
        const sim::Arrival &a = arrivals[idx];
        QueryRequest q;
        q.id = idx;
        q.tenant = a.tenant;
        q.kind = static_cast<QueryKind>(a.kind);
        switch (q.kind) {
          case QueryKind::MsBfs: {
            const std::uint64_t seeds = 1 + a.paramB % 3;
            for (std::uint64_t j = 0; j < seeds; ++j)
                q.seeds.push_back(pickVertex(
                    a.tenant,
                    a.paramA ^ ((j + 1) * 0x9e3779b97f4a7c15ULL)));
            std::sort(q.seeds.begin(), q.seeds.end());
            q.seeds.erase(
                std::unique(q.seeds.begin(), q.seeds.end()),
                q.seeds.end());
            break;
          }
          case QueryKind::Ppr:
            q.seeds.push_back(pickVertex(a.tenant, a.paramA));
            break;
          case QueryKind::P2pSssp: {
            q.seeds.push_back(pickVertex(a.tenant, a.paramA));
            const graph::VertexId v_count = g.numVertices();
            q.target = static_cast<graph::VertexId>(
                (a.paramB >> 2) % v_count);
            if (v_count > 1 && q.target == q.seeds[0])
                q.target = (q.target + 1) % v_count;
            break;
          }
        }
        return q;
    }

    /**
     * Run one query on the cycle model and return (service ticks,
     * answer digest). Identical parameter sets are memoized host-side
     * only — the simulated machine has no result cache, so a repeat
     * query is charged the same service time as a fresh one.
     */
    std::pair<sim::Tick, std::uint64_t>
    runQuery(std::uint64_t idx)
    {
        const QueryRequest q = buildRequest(idx);
        std::string key = queryKindName(q.kind);
        for (const graph::VertexId s : q.seeds) {
            key += ':';
            key += std::to_string(s);
        }
        key += '>';
        key += std::to_string(q.target);
        const auto hit = memo.find(key);
        if (hit != memo.end())
            return hit->second;

        NovaConfig ecfg = NovaConfig{}.scaled(cfg.scale);
        ecfg.numGpns = cfg.gpnsPerGroup;
        // Sharded mode regardless of thread count: serial (threads=0)
        // and sharded schedules tick differently, and the determinism
        // contract requires the report to be thread-count-free.
        ecfg.threads = std::max<std::uint32_t>(1, cfg.threads);
        NovaSystem sys(ecfg);

        workloads::RunResult r;
        std::uint64_t digest = fnvOffset;
        switch (q.kind) {
          case QueryKind::MsBfs: {
            workloads::MultiSourceBfsProgram prog(q.seeds);
            r = sys.run(prog, g, map);
            break;
          }
          case QueryKind::Ppr: {
            workloads::PersonalizedPageRankProgram prog(
                q.seeds[0], 0.85, 1e-9, cfg.pprIters);
            r = sys.run(prog, g, map);
            for (const double rank : prog.rank())
                digest = fnvFold(digest,
                                 workloads::packDouble(rank));
            break;
          }
          case QueryKind::P2pSssp: {
            workloads::PointToPointSsspProgram prog(q.seeds[0],
                                                    q.target);
            r = sys.run(prog, g, map);
            digest = fnvFold(digest, q.target);
            break;
          }
        }
        for (const std::uint64_t p : r.props)
            digest = fnvFold(digest, p);
        digest = fnvFold(digest, r.ticks);

        const std::pair<sim::Tick, std::uint64_t> out{r.ticks, digest};
        memo.emplace(std::move(key), out);
        return out;
    }

    /** @} */

    /** @{ @name Checkpoint / resume */

    void
    writeCheckpoint()
    {
        completedAtLastCkpt = completed;
        const std::string tmp = cfg.ckptPath + ".tmp";
        std::ofstream os(tmp, std::ios::trunc);
        if (!os)
            sim::fatal("cannot write serving checkpoint ", tmp);
        sim::CheckpointWriter w(os);
        w.section("serving_meta");
        w.u64("version", 1);
        w.str("graph", cfg.graphSpec);
        w.u64("vertices", g.numVertices());
        w.str("arrivals", cfg.arrivals.describe());
        w.u64("seed", cfg.seed);
        w.u64("tenants", cfg.tenants);
        w.u64("groups", cfg.groups);
        w.u64("gpns_per_group", cfg.gpnsPerGroup);
        w.u64("duration", cfg.duration);
        w.u64("quota", cfg.quotaPerTenant);
        w.u64("queue_cap", cfg.queueCap);
        w.u64("batch_max", cfg.batchMax);
        w.u64("batch_window", cfg.batchWindow);
        w.u64("setup_ticks", cfg.setupTicks);
        w.u64("contention_pct", cfg.contentionPct);
        w.f64("scale", cfg.scale);
        w.u64("ppr_iters", cfg.pprIters);

        w.section("serving_state");
        w.u64("now", evq.now());
        w.u64("arrival_cursor", arrivalCursor);
        w.u64("completed", completed);
        w.u64("batches", batches);
        w.u64("offered", offeredTotal);
        w.u64("shed", shedTotal);
        w.u64("rr_cursor", rrCursor);
        w.u64("makespan", makespan);
        w.u64("fingerprint", fp);
        w.u64vec("queue_depth", queueDepth.samples());
        w.u64vec("batch_size", batchSize.samples());
        w.u64vec("latency_all", latencyAll.samples());

        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            const TenantState &ten = *tenants[t];
            w.section("tenant" + std::to_string(t));
            w.u64vec("pending", {ten.pending.begin(),
                                 ten.pending.end()});
            w.u64("offered", ten.offered);
            w.u64("served", ten.served);
            w.u64("shed", ten.shedCount);
            w.u64vec("latency", ten.latency.samples());
        }

        for (std::uint32_t grp = 0; grp < cfg.groups; ++grp) {
            const GroupSlot &slot = groups[grp];
            w.section("group" + std::to_string(grp));
            w.u64("busy", slot.busy ? 1 : 0);
            w.u64("tenant", slot.tenant);
            std::vector<std::uint64_t> idxs, starts, fins, svc, digs,
                sizes;
            for (const Inflight &q : slot.members) {
                idxs.push_back(q.idx);
                starts.push_back(q.startedAt);
                fins.push_back(q.finishAt);
                svc.push_back(q.serviceTicks);
                digs.push_back(q.digest);
                sizes.push_back(q.batchSize);
            }
            w.u64vec("idx", idxs);
            w.u64vec("started", starts);
            w.u64vec("finish", fins);
            w.u64vec("service", svc);
            w.u64vec("digest", digs);
            w.u64vec("size", sizes);
        }
        w.finish();
        if (!w.good())
            sim::fatal("stream error writing serving checkpoint ", tmp);
        os.close();
        sim::commitCheckpointDurable(tmp, cfg.ckptPath,
                                     cfg.keepGenerations);
    }

    void
    expectU64(sim::CheckpointReader &r, const std::string &key,
              std::uint64_t want, const char *what)
    {
        const std::uint64_t got = r.u64(key);
        if (got != want)
            sim::fatal("serving checkpoint ", what, " mismatch: file "
                       "has ", got, ", campaign has ", want);
    }

    void
    restore()
    {
        const sim::GenerationPick pick = sim::newestValidCheckpoint(
            cfg.resumePath, cfg.keepGenerations);
        if (pick.path.empty())
            sim::fatal("no valid serving checkpoint at ",
                       cfg.resumePath);
        std::ifstream is(pick.path);
        if (!is)
            sim::fatal("cannot open serving checkpoint ", pick.path);
        sim::CheckpointReader r(is);
        r.section("serving_meta");
        expectU64(r, "version", 1, "format version");
        if (r.str("graph") != cfg.graphSpec)
            sim::fatal("serving checkpoint belongs to another graph");
        expectU64(r, "vertices", g.numVertices(), "graph size");
        if (r.str("arrivals") != cfg.arrivals.describe())
            sim::fatal("serving checkpoint has another arrival spec");
        expectU64(r, "seed", cfg.seed, "seed");
        expectU64(r, "tenants", cfg.tenants, "tenant count");
        expectU64(r, "groups", cfg.groups, "group count");
        expectU64(r, "gpns_per_group", cfg.gpnsPerGroup, "group size");
        expectU64(r, "duration", cfg.duration, "duration");
        expectU64(r, "quota", cfg.quotaPerTenant, "quota");
        expectU64(r, "queue_cap", cfg.queueCap, "queue cap");
        expectU64(r, "batch_max", cfg.batchMax, "batch max");
        expectU64(r, "batch_window", cfg.batchWindow, "batch window");
        expectU64(r, "setup_ticks", cfg.setupTicks, "setup ticks");
        expectU64(r, "contention_pct", cfg.contentionPct,
                  "contention");
        if (r.f64("scale") != cfg.scale)
            sim::fatal("serving checkpoint has another engine scale");
        expectU64(r, "ppr_iters", cfg.pprIters, "PPR budget");

        r.section("serving_state");
        resumeTick = r.u64("now");
        arrivalCursor = r.u64("arrival_cursor");
        completed = r.u64("completed");
        completedAtLastCkpt = completed;
        batches = r.u64("batches");
        offeredTotal = r.u64("offered");
        shedTotal = r.u64("shed");
        rrCursor = static_cast<std::uint32_t>(r.u64("rr_cursor"));
        makespan = r.u64("makespan");
        fp = r.u64("fingerprint");
        queueDepth.setSamples(r.u64vec("queue_depth"));
        batchSize.setSamples(r.u64vec("batch_size"));
        latencyAll.setSamples(r.u64vec("latency_all"));

        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            TenantState &ten = *tenants[t];
            r.section("tenant" + std::to_string(t));
            const std::vector<std::uint64_t> pend =
                r.u64vec("pending");
            ten.pending.assign(pend.begin(), pend.end());
            ten.offered = r.u64("offered");
            ten.served = r.u64("served");
            ten.shedCount = r.u64("shed");
            ten.latency.setSamples(r.u64vec("latency"));
            ten.inflight = 0; // rebuilt from the group slots below
        }

        for (std::uint32_t grp = 0; grp < cfg.groups; ++grp) {
            GroupSlot &slot = groups[grp];
            r.section("group" + std::to_string(grp));
            slot.busy = r.u64("busy") != 0;
            slot.tenant = static_cast<std::uint32_t>(r.u64("tenant"));
            const auto idxs = r.u64vec("idx");
            const auto starts = r.u64vec("started");
            const auto fins = r.u64vec("finish");
            const auto svc = r.u64vec("service");
            const auto digs = r.u64vec("digest");
            const auto sizes = r.u64vec("size");
            slot.members.clear();
            for (std::size_t i = 0; i < idxs.size(); ++i) {
                Inflight q;
                q.idx = idxs[i];
                q.startedAt = starts[i];
                q.finishAt = fins[i];
                q.serviceTicks = svc[i];
                q.digest = digs[i];
                q.batchSize =
                    static_cast<std::uint32_t>(sizes[i]);
                slot.members.push_back(q);
            }
            if (slot.busy)
                tenants[slot.tenant]->inflight +=
                    static_cast<std::uint32_t>(slot.members.size());
        }
        r.finish();
        resumed = true;
    }

    /** @} */

    void
    runCampaign()
    {
        if (!cfg.resumePath.empty())
            restore();
        if (resumed) {
            evq.fastForward(resumeTick);
            // Re-derive the pending event set from the restored
            // state: in-flight completions, the arrival chain, and
            // the live window retries (see scheduleWindowRetries).
            for (std::uint32_t grp = 0; grp < cfg.groups; ++grp)
                if (groups[grp].busy)
                    evq.schedule(groups[grp].members.back().finishAt,
                                 [this, grp] { onCompletion(grp); },
                                 groupPriority(grp));
            scheduleArrival(arrivalCursor);
            scheduleWindowRetries();
            // Checkpoints are written mid-completion-handler, after
            // the accounting but before its closing tryAdmit().
            // Replay that admission pass first — before any same-tick
            // completion of another group — or heads that became
            // dispatchable at the restore tick would wait for the
            // next event instead of dispatching immediately.
            evq.schedule(resumeTick, [this] { tryAdmit(); }, -2000);
        } else {
            scheduleArrival(0);
        }
        evq.run();
        // Sync the derived stat scalars with the final sample sets.
        offeredStat.set(static_cast<double>(offeredTotal));
        servedStat.set(static_cast<double>(completed));
        shedStat.set(static_cast<double>(shedTotal));
        batchesStat.set(static_cast<double>(batches));
        latencyAll.snapshot();
        queueDepth.snapshot();
        batchSize.snapshot();
        for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
            TenantState &ten = *tenants[t];
            ten.offeredStat.set(static_cast<double>(ten.offered));
            ten.servedStat.set(static_cast<double>(ten.served));
            ten.shedStat.set(static_cast<double>(ten.shedCount));
            ten.latency.snapshot();
        }
    }
};

namespace
{

void
appendU64(std::string &out, const char *key, std::uint64_t v,
          bool comma = true)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %llu%s\n", key,
                  static_cast<unsigned long long>(v),
                  comma ? "," : "");
    out += buf;
}

void
appendQuantiles(std::string &out, const char *key,
                const sim::stats::Quantiles &q, const char *indent,
                bool comma)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "%s\"%s\": {\"count\": %llu, \"mean\": %llu, \"p50\": %llu, "
        "\"p95\": %llu, \"p99\": %llu, \"max\": %llu}%s\n",
        indent, key, static_cast<unsigned long long>(q.count()),
        static_cast<unsigned long long>(q.mean()),
        static_cast<unsigned long long>(q.percentile(50)),
        static_cast<unsigned long long>(q.percentile(95)),
        static_cast<unsigned long long>(q.percentile(99)),
        static_cast<unsigned long long>(q.max()),
        comma ? "," : "");
    out += buf;
}

/** Jain's fairness index over per-tenant served counts, x1000. */
std::uint64_t
jainX1000(const std::vector<std::uint64_t> &served)
{
    std::uint64_t sum = 0, sum_sq = 0;
    for (const std::uint64_t x : served) {
        sum += x;
        sum_sq += x * x;
    }
    if (sum == 0)
        return 1000; // nothing served anywhere: trivially fair
    return sum * sum * 1000 / (served.size() * sum_sq);
}

} // namespace

ServingSystem::ServingSystem(ServingConfig config, const graph::Csr &g)
    : cfg(std::move(config))
{
    if (cfg.tenants == 0)
        sim::fatal("serving needs at least one tenant");
    if (cfg.groups == 0 || cfg.groups > 64)
        sim::fatal("serving needs 1..64 PE groups");
    if (cfg.gpnsPerGroup == 0)
        sim::fatal("serving needs at least one GPN per group");
    if (cfg.quotaPerTenant == 0 || cfg.batchMax == 0 ||
        cfg.queueCap == 0)
        sim::fatal("serving quota, batch-max and queue-cap must be "
                   ">= 1");
    if (cfg.batchMax > cfg.quotaPerTenant)
        sim::fatal("batch-max (", cfg.batchMax, ") cannot exceed the "
                   "per-tenant quota (", cfg.quotaPerTenant, ")");
    if (g.numVertices() == 0)
        sim::fatal("serving needs a non-empty graph");
    impl = std::make_unique<Impl>(cfg, g);
}

ServingSystem::~ServingSystem() = default;

const std::vector<QueryRecord> &
ServingSystem::records() const
{
    return impl->recs;
}

const sim::stats::Group &
ServingSystem::stats() const
{
    return impl->root;
}

ServingReport
ServingSystem::run()
{
    impl->runCampaign();

    ServingReport rep;
    rep.fingerprint = impl->fp;
    rep.offered = impl->offeredTotal;
    rep.served = impl->completed;
    rep.shed = impl->shedTotal;
    rep.batches = impl->batches;
    rep.makespan = impl->makespan;
    rep.stopped = impl->halted;
    std::uint64_t pending = 0;
    for (const auto &ten : impl->tenants)
        pending += ten->pending.size() + ten->inflight;
    rep.pendingAtEnd = pending;

    // Canonical report text: every quantity is simulated (ticks,
    // counts) or derived from simulated quantities, so the bytes are
    // identical across host thread counts and queue backends.
    std::string &out = rep.json;
    out += "{\n";
    out += "  \"schema\": \"nova-serving-1\",\n";
    out += "  \"graph\": \"" + cfg.graphSpec + "\",\n";
    out += "  \"arrivals\": \"" + cfg.arrivals.describe() + "\",\n";
    appendU64(out, "seed", cfg.seed);
    appendU64(out, "tenants", cfg.tenants);
    appendU64(out, "groups", cfg.groups);
    appendU64(out, "gpns_per_group", cfg.gpnsPerGroup);
    appendU64(out, "duration_ticks", cfg.duration);
    appendU64(out, "quota", cfg.quotaPerTenant);
    appendU64(out, "queue_cap", cfg.queueCap);
    appendU64(out, "batch_max", cfg.batchMax);
    appendU64(out, "batch_window_ticks", cfg.batchWindow);
    appendU64(out, "offered", rep.offered);
    appendU64(out, "served", rep.served);
    appendU64(out, "shed", rep.shed);
    appendU64(out, "pending_at_end", rep.pendingAtEnd);
    appendU64(out, "batches", rep.batches);
    appendU64(out, "makespan_ticks", rep.makespan);
    {
        const double secs = sim::ticksToSeconds(
            std::max<sim::Tick>(rep.makespan, 1));
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "  \"served_qps\": %.6f,\n",
                      static_cast<double>(rep.served) / secs);
        out += buf;
    }
    appendQuantiles(out, "latency_ticks", impl->latencyAll, "  ",
                    true);
    appendQuantiles(out, "queue_depth", impl->queueDepth, "  ", true);
    appendQuantiles(out, "batch_size", impl->batchSize, "  ", true);
    {
        std::vector<std::uint64_t> served_per_tenant;
        for (const auto &ten : impl->tenants)
            served_per_tenant.push_back(ten->served);
        appendU64(out, "fairness_jain_x1000",
                  jainX1000(served_per_tenant));
    }
    out += "  \"per_tenant\": [\n";
    for (std::uint32_t t = 0; t < cfg.tenants; ++t) {
        const TenantState &ten = *impl->tenants[t];
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "    {\"tenant\": %u, \"offered\": %llu, "
                      "\"served\": %llu, \"shed\": %llu, "
                      "\"pending\": %llu,\n",
                      t, static_cast<unsigned long long>(ten.offered),
                      static_cast<unsigned long long>(ten.served),
                      static_cast<unsigned long long>(ten.shedCount),
                      static_cast<unsigned long long>(
                          ten.pending.size() + ten.inflight));
        out += buf;
        appendQuantiles(out, "latency_ticks", ten.latency, "     ",
                        false);
        out += t + 1 < cfg.tenants ? "    },\n" : "    }\n";
    }
    out += "  ],\n";
    out += rep.stopped ? "  \"stopped\": true,\n"
                       : "  \"stopped\": false,\n";
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf),
                      "  \"fingerprint\": \"0x%llx\"\n",
                      static_cast<unsigned long long>(
                          rep.fingerprint));
        out += buf;
    }
    out += "}\n";
    return rep;
}

} // namespace nova::core
