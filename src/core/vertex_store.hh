/**
 * @file
 * Per-PE functional state: the local slice of the vertex set, its
 * activity flags and the local CSR, plus the address arithmetic that
 * maps local vertices onto vertex-memory blocks and superblocks.
 *
 * The store is the functional half of the timing/functional split:
 * values here are always current; the timing models (cache, DRAM, NoC)
 * decide *when* the units may act on them.
 */

#ifndef NOVA_CORE_VERTEX_STORE_HH
#define NOVA_CORE_VERTEX_STORE_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "graph/csr.hh"
#include "graph/partition.hh"
#include "sim/types.hh"
#include "workloads/vertex_program.hh"

namespace nova::sim
{
class CheckpointReader;
class CheckpointWriter;
} // namespace nova::sim

namespace nova::core
{

using graph::EdgeId;
using graph::VertexId;
using sim::Addr;

/** One vertex migrated from a dead GPN's PE during failover. */
struct AdoptedVertex
{
    VertexId global = 0;
    std::uint64_t cur = 0;
    std::uint64_t acc = 0;
};

/** Functional per-PE vertex and edge state. */
class VertexStore
{
  public:
    /**
     * Build the PE-local slice: vertex properties initialised by the
     * program and a local CSR whose destinations stay global ids.
     */
    VertexStore(const graph::Csr &g, const graph::VertexMapping &map,
                std::uint32_t pe, const NovaConfig &cfg,
                const workloads::VertexProgram &prog);

    std::uint32_t numLocal() const { return numLocalVerts; }

    /** @{ @name Vertex state */
    std::uint64_t &cur(VertexId local) { return curProp[local]; }
    std::uint64_t &acc(VertexId local) { return accProp[local]; }

    /** Spilled-active flag (the block copy's active_now bit). */
    bool isActiveNow(VertexId local) const { return activeNow[local]; }
    void setActiveNow(VertexId local, bool a);

    /** Entries for this vertex currently in the active buffer. */
    std::uint8_t &bufferCount(VertexId local)
    {
        return inBufferCount[local];
    }
    /** @} */

    /** @{ @name Block/superblock geometry */
    std::uint32_t vertsPerBlock() const { return vpb; }

    std::uint32_t blockOf(VertexId local) const { return local / vpb; }

    std::uint32_t superblockOf(std::uint32_t block) const
    {
        return block / sbDim;
    }

    std::uint32_t numBlocks() const { return numBlocksTotal; }
    std::uint32_t numSuperblocks() const { return numSbTotal; }

    /** Vertex-memory byte address of a local vertex's block. */
    Addr
    blockAddr(std::uint32_t block) const
    {
        return static_cast<Addr>(block) * blockBytes;
    }

    /** First local vertex of a block. */
    VertexId blockFirst(std::uint32_t block) const { return block * vpb; }

    /** One-past-last local vertex of a block (clamped). */
    VertexId
    blockEnd(std::uint32_t block) const
    {
        return std::min<VertexId>(numLocalVerts, (block + 1) * vpb);
    }

    /** Spilled-active vertices within a block (exact ground truth). */
    std::uint16_t activeCountInBlock(std::uint32_t block) const
    {
        return activeInBlock[block];
    }

    /** Exact number of active blocks in a superblock (reconciliation). */
    std::uint32_t exactActiveBlocks(std::uint32_t superblock) const;
    /** @} */

    /** @{ @name Local CSR (edge memory contents) */
    EdgeId edgeBegin(VertexId local) const { return rowPtr[local]; }
    EdgeId edgeEnd(VertexId local) const { return rowPtr[local + 1]; }
    EdgeId degree(VertexId local) const
    {
        return rowPtr[local + 1] - rowPtr[local];
    }
    VertexId edgeDest(EdgeId e) const { return edgeDst[e]; }
    graph::Weight edgeWeight(EdgeId e) const
    {
        return edgeWgt.empty() ? 1 : edgeWgt[e];
    }
    EdgeId numLocalEdges() const { return edgeDst.size(); }

    /** Edge-memory byte address of this PE's edge record `e`. */
    Addr
    edgeAddr(EdgeId e) const
    {
        return edgeBase + e * recordBytes;
    }

    /** Edge-memory byte address of the row pointer of `local`. */
    Addr
    rowPtrAddr(VertexId local) const
    {
        return rowBase + static_cast<Addr>(local) * 8;
    }
    /** @} */

    /** Global id of a local vertex. */
    VertexId globalOf(VertexId local) const { return localToGlobal[local]; }

    /**
     * Fault-injection helper: flip `mask` bits in the spilled copy of
     * `local`'s current value, then detect the damage via the slot's
     * checksum and scrub (restore) it — the recovery path the VMU's
     * retrieval exercises under "spill.corrupt" faults.
     * @return true when the corruption was detected (always, for a
     *         non-zero mask: the checksum covers the whole slot).
     */
    bool corruptAndScrub(VertexId local, std::uint64_t mask);

    /**
     * Failover: append vertices evacuated from a dead GPN's stores.
     *
     * Each entry brings its live property values; the adopted vertices
     * arrive inactive (no spilled-active flag, no buffer entries) — the
     * caller migrates at a BSP barrier where the dead stores are
     * quiescent and re-activates through the normal frontier path.
     * Existing local indices never move; block/superblock geometry is
     * re-derived for the grown slice, and CSR rows are rebuilt from the
     * global graph. Units caching per-local state must be resized
     * afterwards (MPU::onStoreGrown, VMU::onStoreGrown).
     */
    void adoptVertices(const graph::Csr &g,
                       const std::vector<AdoptedVertex> &entries);

    /** @{ @name Checkpoint support (all mutable functional state) */
    void saveState(sim::CheckpointWriter &w) const;
    void restoreState(sim::CheckpointReader &r);
    /** @} */

  private:
    std::uint32_t numLocalVerts;
    std::uint32_t vpb;
    std::uint32_t sbDim;
    std::uint32_t blockBytes;
    std::uint32_t recordBytes;
    std::uint32_t numBlocksTotal;
    std::uint32_t numSbTotal;
    Addr edgeBase;
    Addr rowBase;

    std::vector<std::uint64_t> curProp;
    std::vector<std::uint64_t> accProp;
    std::vector<std::uint8_t> activeNow;
    std::vector<std::uint8_t> inBufferCount;
    std::vector<std::uint16_t> activeInBlock;

    std::vector<EdgeId> rowPtr;
    std::vector<VertexId> edgeDst;
    std::vector<graph::Weight> edgeWgt;
    std::vector<VertexId> localToGlobal;
};

} // namespace nova::core

#endif // NOVA_CORE_VERTEX_STORE_HH
