/**
 * @file
 * FPGA resource and power estimator (Sec. VI-F, Table V).
 *
 * We cannot synthesise RTL in this environment; this model is
 * calibrated to the paper's post-synthesis per-unit results on the
 * Xilinx Alveo U280 (8 MPUs / 8 VMUs / 8 MGUs / NoC per GPN at 1 GHz)
 * and lets users re-scale the estimate to other PE counts or devices.
 */

#ifndef NOVA_ANALYTIC_FPGA_HH
#define NOVA_ANALYTIC_FPGA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nova::analytic
{

/** FPGA resource vector. */
struct FpgaResources
{
    std::uint32_t lut = 0;
    std::uint32_t ff = 0;
    std::uint32_t bram = 0;
    std::uint32_t uram = 0;
    double powerMw = 0;

    FpgaResources operator+(const FpgaResources &o) const;
    FpgaResources operator*(std::uint32_t k) const;
};

/** Available resources of a target device. */
struct FpgaDevice
{
    std::string name;
    std::uint32_t lut = 0;
    std::uint32_t ff = 0;
    std::uint32_t bram = 0;
    std::uint32_t uram = 0;
};

/** The Xilinx Alveo U280 (the paper's prototype platform). */
FpgaDevice alveoU280();

/** One labelled row of the estimate (Table V). */
struct FpgaRow
{
    std::string unit;
    FpgaResources res;
};

/** Full estimate for one GPN. */
struct GpnFpgaEstimate
{
    std::vector<FpgaRow> rows;
    FpgaResources total;

    /** Utilisation percentages against a device. */
    double lutPct(const FpgaDevice &d) const;
    double ffPct(const FpgaDevice &d) const;
    double bramPct(const FpgaDevice &d) const;
    double uramPct(const FpgaDevice &d) const;
};

/**
 * Estimate one GPN of `pes` PEs from the paper's calibrated per-unit
 * costs (Table V is for 8 PEs at 1 GHz).
 */
GpnFpgaEstimate estimateGpn(std::uint32_t pes = 8);

/**
 * How many GPNs fit on a device at the given utilisation ceiling
 * (the paper reports 14 GPNs / 112 PEs on the U280).
 */
std::uint32_t maxGpnsOnDevice(const FpgaDevice &d,
                              std::uint32_t pes_per_gpn = 8,
                              double utilisation_ceiling = 1.0);

} // namespace nova::analytic

#endif // NOVA_ANALYTIC_FPGA_HH
