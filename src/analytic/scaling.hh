/**
 * @file
 * Closed-form resource models for scaling to tera-scale graphs
 * (Sec. VI-E, Table IV): what it costs NOVA, PolyGraph (sliced and
 * non-sliced) and Dalorex to hold the WDC12 hyperlink graph.
 */

#ifndef NOVA_ANALYTIC_SCALING_HH
#define NOVA_ANALYTIC_SCALING_HH

#include <cstdint>
#include <string>

namespace nova::analytic
{

/** Capacity footprint of a graph under the paper's accounting. */
struct GraphRequirements
{
    std::uint64_t vertices = 0;
    std::uint64_t edges = 0;
    std::uint32_t vertexBytes = 16;
    std::uint32_t edgeBytes = 8;

    double
    vertexGiB() const
    {
        return static_cast<double>(vertices) * vertexBytes /
               (1024.0 * 1024.0 * 1024.0);
    }

    double
    edgeGiB() const
    {
        return static_cast<double>(edges) * edgeBytes /
               (1024.0 * 1024.0 * 1024.0);
    }
};

/** WDC12: 3.56 B pages, 128.7 B hyperlinks (53 GiB + 959 GiB). */
GraphRequirements wdc12();

/** One row of Table IV. */
struct AcceleratorRequirements
{
    std::string name;
    std::uint32_t hbmStacks = 0;
    double hbmGiB = 0;
    std::uint32_t ddrChannels = 0;
    double ddrGiB = 0;
    double sramMiB = 0;
    std::uint32_t cores = 0;
    std::uint32_t slices = 1;
};

/** Sizing parameters of one NOVA GPN (Table II defaults). */
struct NovaScalingParams
{
    double hbmStackGiB = 4.0;
    std::uint32_t ddrChannelsPerGpn = 4;
    double ddrChannelGiB = 32.0;
    std::uint32_t pesPerGpn = 8;
    /** 512 KiB cache + 1 MiB tracker per GPN. */
    double sramPerGpnMiB = 1.5;
};

/**
 * NOVA scales by adding GPNs until the vertex set fits in HBM; edges
 * ride along in the GPNs' DDR4. No temporal slicing ever.
 */
AcceleratorRequirements novaRequirements(const GraphRequirements &g,
                                         const NovaScalingParams &p = {});

/** Sizing parameters of a PolyGraph node (from [13] / Table IV). */
struct PolyGraphScalingParams
{
    double hbmStackGiB = 8.0;
    std::uint32_t coresPerNode = 16;
    double sramPerNodeMiB = 32.0;
    /** Partition replication overhead of the sliced variant. */
    double replicationFactor = 1.075;
    /** Non-sliced variant: per-core scratchpad share (Table IV). */
    double nonSlicedSramPerCoreMiB = 9.0;
};

/**
 * Sliced PolyGraph: the whole graph (plus replicas) lives in HBM;
 * nodes grow with capacity; the vertex set is time-multiplexed
 * through the aggregate scratchpad, giving the slice count.
 */
AcceleratorRequirements
polygraphRequirements(const GraphRequirements &g,
                      const PolyGraphScalingParams &p = {});

/**
 * Non-sliced PolyGraph: the entire vertex set must live on-chip; the
 * edge store fills HBM.
 */
AcceleratorRequirements
polygraphNonSlicedRequirements(const GraphRequirements &g,
                               const PolyGraphScalingParams &p = {});

/** Dalorex: everything on-chip, 4.25 MiB SRAM tiles. */
AcceleratorRequirements
dalorexRequirements(const GraphRequirements &g, double tile_mib = 4.25);

} // namespace nova::analytic

#endif // NOVA_ANALYTIC_SCALING_HH
