#include "analytic/fpga.hh"

#include <algorithm>

namespace nova::analytic
{

FpgaResources
FpgaResources::operator+(const FpgaResources &o) const
{
    return {lut + o.lut, ff + o.ff, bram + o.bram, uram + o.uram,
            powerMw + o.powerMw};
}

FpgaResources
FpgaResources::operator*(std::uint32_t k) const
{
    return {lut * k, ff * k, bram * k, uram * k, powerMw * k};
}

FpgaDevice
alveoU280()
{
    // Alveo U280 product brief: 1,304k LUTs, 2,607k FFs, 2,016 BRAM
    // blocks, 960 URAM blocks.
    return {"Alveo U280", 1'303'680, 2'607'360, 2016, 960};
}

namespace
{

// Per-unit costs for one PE, calibrated to Table V (which reports the
// 8-PE totals: 8 MPU = 6032 LUT / 7472 FF / 16 BRAM / 24 URAM /
// 1120 mW, etc.).
constexpr FpgaResources mpuPerPe{754, 934, 2, 3, 140.0};
constexpr FpgaResources vmuPerPe{645, 695, 8, 8, 174.5};
constexpr FpgaResources mguPerPe{205, 605, 2, 1, 94.0};
constexpr FpgaResources nocPerGpn{3, 145, 0, 0, 6.0};

} // namespace

GpnFpgaEstimate
estimateGpn(std::uint32_t pes)
{
    GpnFpgaEstimate e;
    e.rows.push_back({std::to_string(pes) + " MPU", mpuPerPe * pes});
    e.rows.push_back({std::to_string(pes) + " VMU", vmuPerPe * pes});
    e.rows.push_back({std::to_string(pes) + " MGU", mguPerPe * pes});
    e.rows.push_back({"NoC", nocPerGpn});
    for (const FpgaRow &row : e.rows)
        e.total = e.total + row.res;
    return e;
}

double
GpnFpgaEstimate::lutPct(const FpgaDevice &d) const
{
    return 100.0 * total.lut / d.lut;
}

double
GpnFpgaEstimate::ffPct(const FpgaDevice &d) const
{
    return 100.0 * total.ff / d.ff;
}

double
GpnFpgaEstimate::bramPct(const FpgaDevice &d) const
{
    return 100.0 * total.bram / d.bram;
}

double
GpnFpgaEstimate::uramPct(const FpgaDevice &d) const
{
    return 100.0 * total.uram / d.uram;
}

std::uint32_t
maxGpnsOnDevice(const FpgaDevice &d, std::uint32_t pes_per_gpn,
                double utilisation_ceiling)
{
    const GpnFpgaEstimate e = estimateGpn(pes_per_gpn);
    auto fit = [&](std::uint32_t have, std::uint32_t need) {
        if (need == 0)
            return ~0u;
        return static_cast<std::uint32_t>(
            static_cast<double>(have) * utilisation_ceiling / need);
    };
    std::uint32_t gpns = fit(d.lut, e.total.lut);
    gpns = std::min(gpns, fit(d.ff, e.total.ff));
    gpns = std::min(gpns, fit(d.bram, e.total.bram));
    gpns = std::min(gpns, fit(d.uram, e.total.uram));
    return gpns;
}

} // namespace nova::analytic
