#include "analytic/scaling.hh"

#include <algorithm>
#include <cmath>

namespace nova::analytic
{

namespace
{

std::uint32_t
ceilDiv(double need, double unit)
{
    return static_cast<std::uint32_t>(std::ceil(need / unit));
}

} // namespace

GraphRequirements
wdc12()
{
    GraphRequirements g;
    g.vertices = 3'560'000'000ULL;  // ~53 GiB of 16 B vertices
    g.edges = 128'750'000'000ULL;   // ~959 GiB of 8 B edges
    return g;
}

AcceleratorRequirements
novaRequirements(const GraphRequirements &g, const NovaScalingParams &p)
{
    AcceleratorRequirements r;
    r.name = "NOVA";
    // GPN count driven by the vertex set: one HBM stack per GPN.
    const std::uint32_t gpns_for_vertices =
        ceilDiv(g.vertexGiB(), p.hbmStackGiB);
    // Edges must also fit in the GPNs' DDR4.
    const std::uint32_t gpns_for_edges = ceilDiv(
        g.edgeGiB(), p.ddrChannelGiB * p.ddrChannelsPerGpn);
    const std::uint32_t gpns = std::max(gpns_for_vertices, gpns_for_edges);
    r.hbmStacks = gpns;
    r.hbmGiB = gpns * p.hbmStackGiB;
    r.ddrChannels = gpns * p.ddrChannelsPerGpn;
    r.ddrGiB = r.ddrChannels * p.ddrChannelGiB;
    r.sramMiB = gpns * p.sramPerGpnMiB;
    r.cores = gpns * p.pesPerGpn;
    r.slices = 1;
    return r;
}

AcceleratorRequirements
polygraphRequirements(const GraphRequirements &g,
                      const PolyGraphScalingParams &p)
{
    AcceleratorRequirements r;
    r.name = "PolyGraph";
    const double total_gib =
        (g.vertexGiB() + g.edgeGiB()) * p.replicationFactor;
    const std::uint32_t nodes = ceilDiv(total_gib, p.hbmStackGiB);
    r.hbmStacks = nodes;
    r.hbmGiB = nodes * p.hbmStackGiB;
    r.sramMiB = nodes * p.sramPerNodeMiB;
    r.cores = nodes * p.coresPerNode;
    // The vertex set (plus replicas) is time-multiplexed through the
    // aggregate scratchpad.
    r.slices = ceilDiv(g.vertexGiB() * p.replicationFactor * 1024.0,
                       r.sramMiB);
    return r;
}

AcceleratorRequirements
polygraphNonSlicedRequirements(const GraphRequirements &g,
                               const PolyGraphScalingParams &p)
{
    AcceleratorRequirements r;
    r.name = "PolyGraph non-sliced";
    r.sramMiB = g.vertexGiB() * 1024.0;
    r.hbmStacks = ceilDiv(g.edgeGiB(), p.hbmStackGiB);
    r.hbmGiB = r.hbmStacks * p.hbmStackGiB;
    r.cores = static_cast<std::uint32_t>(
        std::ceil(r.sramMiB / p.nonSlicedSramPerCoreMiB));
    r.slices = 1;
    return r;
}

AcceleratorRequirements
dalorexRequirements(const GraphRequirements &g, double tile_mib)
{
    AcceleratorRequirements r;
    r.name = "Dalorex";
    r.sramMiB = (g.vertexGiB() + g.edgeGiB()) * 1024.0;
    r.cores = static_cast<std::uint32_t>(
        std::ceil(r.sramMiB / tile_mib));
    r.slices = 1;
    return r;
}

} // namespace nova::analytic
