/**
 * @file
 * Synthetic graph generators used to stand in for the paper's inputs.
 *
 * The paper evaluates on RoadUSA, Twitter, Friendster, Host (WDC12
 * subset) and Urand (Table III). Those inputs are billions of edges; we
 * generate structurally equivalent scaled graphs: RMAT / Kronecker for
 * the skewed social/web graphs, a uniform random (Erdős–Rényi style)
 * graph for Urand, and a 2-D road grid for RoadUSA. See DESIGN.md §3.
 */

#ifndef NOVA_GRAPH_GENERATORS_HH
#define NOVA_GRAPH_GENERATORS_HH

#include <cstdint>

#include "graph/csr.hh"
#include "sim/random.hh"

namespace nova::graph
{

/** Parameters for the RMAT / Kronecker generator. */
struct RmatParams
{
    /** Number of vertices (rounded up to a power of two internally). */
    VertexId numVertices = 1 << 16;
    /** Number of directed edges to sample. */
    EdgeId numEdges = 1 << 20;
    /** Quadrant probabilities (Graph500 defaults). */
    double a = 0.57, b = 0.19, c = 0.19;
    /** Maximum edge weight; weights are uniform in [1, maxWeight]. */
    Weight maxWeight = 1;
    std::uint64_t seed = 1;
};

/**
 * Generate a skewed scale-free graph with the RMAT recursive model.
 * Vertex ids are scrambled so degree does not correlate with id.
 */
Csr generateRmat(const RmatParams &p);

/** Parameters for the uniform random generator ("Urand" of the paper). */
struct UniformParams
{
    VertexId numVertices = 1 << 16;
    EdgeId numEdges = 1 << 20;
    Weight maxWeight = 1;
    std::uint64_t seed = 1;
};

/** Generate an Erdős–Rényi style uniform random directed graph. */
Csr generateUniform(const UniformParams &p);

/** Parameters for the road-network style grid generator. */
struct RoadGridParams
{
    /** Grid width and height; vertices = width * height. */
    VertexId width = 256;
    VertexId height = 256;
    /** Fraction of lattice edges randomly removed (irregularity). */
    double dropFraction = 0.05;
    /** Fraction of extra long-range "highway" edges added. */
    double highwayFraction = 0.001;
    Weight maxWeight = 255;
    std::uint64_t seed = 1;
};

/**
 * Generate a high-diameter, low-degree planar-ish road network: a 2-D
 * lattice with some edges dropped and a few long-range shortcuts,
 * symmetric, with uniform random weights. Structurally mirrors RoadUSA
 * (avg degree ~2.4, huge diameter).
 */
Csr generateRoadGrid(const RoadGridParams &p);

/** A simple directed path 0 -> 1 -> ... -> n-1 (tests and examples). */
Csr generatePath(VertexId n, Weight w = 1);

/** A star: vertex 0 points at all others (tests). */
Csr generateStar(VertexId n);

/** A fully connected directed graph without self loops (tests). */
Csr generateComplete(VertexId n);

/** A directed cycle 0 -> 1 -> ... -> n-1 -> 0 (tests). */
Csr generateCycle(VertexId n);

/**
 * Attach uniform random weights in [1, max_weight] to every edge of an
 * unweighted graph (used to make SSSP inputs).
 */
Csr withRandomWeights(const Csr &g, Weight max_weight, std::uint64_t seed);

} // namespace nova::graph

#endif // NOVA_GRAPH_GENERATORS_HH
