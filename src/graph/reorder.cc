#include "graph/reorder.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "sim/logging.hh"

namespace nova::graph
{

std::vector<VertexId>
degreeSortPermutation(const Csr &g)
{
    const VertexId n = g.numVertices();
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                     });
    std::vector<VertexId> perm(n);
    for (VertexId rank = 0; rank < n; ++rank)
        perm[order[rank]] = rank;
    return perm;
}

std::vector<VertexId>
bfsPermutation(const Csr &g)
{
    const VertexId n = g.numVertices();
    const Csr rev = transpose(g);
    constexpr VertexId unseen = ~VertexId(0);
    std::vector<VertexId> perm(n, unseen);
    std::deque<VertexId> queue;
    VertexId next_id = 0;
    for (VertexId root = 0; root < n; ++root) {
        if (perm[root] != unseen)
            continue;
        perm[root] = next_id++;
        queue.push_back(root);
        while (!queue.empty()) {
            const VertexId v = queue.front();
            queue.pop_front();
            auto visit = [&](VertexId w) {
                if (perm[w] == unseen) {
                    perm[w] = next_id++;
                    queue.push_back(w);
                }
            };
            for (VertexId w : g.neighbors(v))
                visit(w);
            for (VertexId w : rev.neighbors(v))
                visit(w);
        }
    }
    return perm;
}

std::vector<VertexId>
communityPermutation(const Csr &g, VertexId max_community)
{
    const VertexId n = g.numVertices();
    if (max_community == 0)
        max_community = std::max<VertexId>(
            8, static_cast<VertexId>(std::sqrt(
                   static_cast<double>(n))));

    constexpr VertexId unseen = ~VertexId(0);
    std::vector<VertexId> perm(n, unseen);
    std::deque<VertexId> queue;
    VertexId next_id = 0;
    for (VertexId root = 0; root < n; ++root) {
        if (perm[root] != unseen)
            continue;
        VertexId members = 0;
        perm[root] = next_id++;
        ++members;
        queue.clear();
        queue.push_back(root);
        while (!queue.empty() && members < max_community) {
            const VertexId v = queue.front();
            queue.pop_front();
            for (VertexId w : g.neighbors(v)) {
                if (perm[w] == unseen && members < max_community) {
                    perm[w] = next_id++;
                    ++members;
                    queue.push_back(w);
                }
            }
        }
    }
    return perm;
}

double
averageEdgeSpan(const Csr &g)
{
    if (g.numEdges() == 0 || g.numVertices() == 0)
        return 0;
    double sum = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (VertexId w : g.neighbors(v))
            sum += std::abs(static_cast<double>(v) -
                            static_cast<double>(w));
    return sum / static_cast<double>(g.numEdges()) /
           static_cast<double>(g.numVertices());
}

void
validatePermutation(const std::vector<VertexId> &perm, VertexId n)
{
    NOVA_ASSERT(perm.size() == n, "permutation size mismatch");
    std::vector<std::uint8_t> seen(n, 0);
    for (const VertexId p : perm) {
        NOVA_ASSERT(p < n, "permutation target out of range");
        NOVA_ASSERT(!seen[p], "duplicate permutation target");
        seen[p] = 1;
    }
}

} // namespace nova::graph
