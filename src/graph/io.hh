/**
 * @file
 * Graph serialization: whitespace edge-list text and a compact binary
 * CSR container, so users can bring their own inputs.
 */

#ifndef NOVA_GRAPH_IO_HH
#define NOVA_GRAPH_IO_HH

#include <iosfwd>
#include <string>

#include "graph/csr.hh"

namespace nova::graph
{

/**
 * Parse a whitespace-separated edge list ("src dst [weight]" per line;
 * '#' and '%' comment lines ignored). Vertex count is
 * max(endpoint) + 1 unless a larger hint is given.
 */
EdgeList readEdgeList(std::istream &in, VertexId num_vertices_hint = 0);

/** Load an edge list file and build a CSR. */
Csr loadEdgeListFile(const std::string &path, const BuildOptions &opts = {});

/** Write a graph as an edge-list text stream. */
void writeEdgeList(const Csr &g, std::ostream &out);

/** Serialize a CSR to the repository's binary container. */
void writeBinary(const Csr &g, std::ostream &out);

/** Deserialize a CSR written by writeBinary. */
Csr readBinary(std::istream &in);

/** Save a CSR to a binary file. */
void saveBinaryFile(const Csr &g, const std::string &path);

/** Load a CSR from a binary file. */
Csr loadBinaryFile(const std::string &path);

} // namespace nova::graph

#endif // NOVA_GRAPH_IO_HH
