/**
 * @file
 * Spatial vertex-to-PE mappings (Sec. IV-B of the paper).
 *
 * NOVA assigns every vertex (and its out-edges) to exactly one PE; the
 * mapping is fixed at initialization. The paper studies three
 * strategies: random (no preprocessing), load-balanced (degree-aware)
 * and locality-optimized (RABBIT-style communities); Fig. 9b.
 */

#ifndef NOVA_GRAPH_PARTITION_HH
#define NOVA_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"

namespace nova::graph
{

/**
 * An invertible assignment of global vertices to (part, local index).
 *
 * Interleaved mappings are computed arithmetically (no tables); explicit
 * mappings store both directions.
 */
class VertexMapping
{
  public:
    VertexMapping() = default;

    /** Round-robin by id: part = v % parts, local = v / parts. */
    static VertexMapping interleave(VertexId num_vertices,
                                    std::uint32_t num_parts);

    /** Contiguous ranges: part = v / ceil(n/parts). */
    static VertexMapping chunk(VertexId num_vertices,
                               std::uint32_t num_parts);

    /**
     * Build from an explicit per-vertex part assignment; local indices
     * are allocated in ascending global-id order within each part.
     */
    static VertexMapping fromAssignment(std::vector<std::uint32_t> part_of,
                                        std::uint32_t num_parts);

    std::uint32_t parts() const { return numParts; }
    VertexId numVertices() const { return numVerts; }

    /** The part owning global vertex v. */
    std::uint32_t partOf(VertexId v) const;

    /** v's index within its owning part. */
    VertexId localOf(VertexId v) const;

    /** Inverse: the global id of the `local`-th vertex of `part`. */
    VertexId globalOf(std::uint32_t part, VertexId local) const;

    /** Number of vertices assigned to `part`. */
    VertexId localCount(std::uint32_t part) const;

    /** Largest localCount over all parts. */
    VertexId maxLocalCount() const;

    /**
     * Convert an arithmetic (interleave/chunk) mapping into the
     * equivalent explicit one so individual vertices can be
     * reassigned. No-op when already explicit.
     */
    void materialize();

    /**
     * Move global vertex v to `new_part`, appending it as that part's
     * next local index. Only valid on a materialized mapping, and only
     * for evacuating a *dead* part: v's stale slot stays in the old
     * part's inverse table (nothing may query a dead part again), so
     * surviving parts' local indices never shift.
     */
    void reassign(VertexId v, std::uint32_t new_part);

  private:
    enum class Kind { Interleave, Chunk, Explicit };

    Kind kind = Kind::Interleave;
    VertexId numVerts = 0;
    std::uint32_t numParts = 1;
    VertexId chunkSize = 0;

    std::vector<std::uint32_t> partOfVec;
    std::vector<VertexId> localOfVec;
    std::vector<std::vector<VertexId>> globals;
};

/** Random balanced assignment with no preprocessing cost. */
VertexMapping randomMapping(VertexId num_vertices, std::uint32_t parts,
                            std::uint64_t seed);

/**
 * Load-balanced assignment: vertices sorted by out-degree descending and
 * dealt round-robin, so every part receives a similar number of edges.
 */
VertexMapping loadBalancedMapping(const Csr &g, std::uint32_t parts);

/**
 * Locality-optimized assignment: cluster vertices into connected
 * communities (RABBIT-like, bounded size), then pack whole communities
 * onto parts balancing edge counts. Reduces inter-PE traffic at some
 * load-balance cost.
 */
VertexMapping localityMapping(const Csr &g, std::uint32_t parts,
                              VertexId max_community = 0);

/** Edge count owned by each part under a mapping (load balance check). */
std::vector<EdgeId> edgesPerPart(const Csr &g, const VertexMapping &map);

/**
 * Fraction of edges whose endpoints live on different parts
 * (inter-PE message fraction).
 */
double cutFraction(const Csr &g, const VertexMapping &map);

} // namespace nova::graph

#endif // NOVA_GRAPH_PARTITION_HH
