/**
 * @file
 * Scaled stand-ins for the paper's evaluation graphs (Table III).
 *
 * A `scale` of S produces a graph with vertex and edge counts 1/S of the
 * paper's input. The repository's default experiment scale is 1000 (see
 * DESIGN.md §3): all on-chip capacities used by the models are divided
 * by the same factor so size-relative behaviour (slice counts, spilling,
 * tracker resolution) matches the paper.
 */

#ifndef NOVA_GRAPH_PRESETS_HH
#define NOVA_GRAPH_PRESETS_HH

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace nova::graph
{

/** A graph together with its paper-equivalent identity. */
struct NamedGraph
{
    std::string name;
    /** Paper vertex/edge counts this stands in for. */
    std::uint64_t paperVertices;
    std::uint64_t paperEdges;
    Csr graph;
};

/** Default experiment scale denominator. */
constexpr double defaultScale = 1000.0;

/** RoadUSA equivalent: high-diameter, degree ~2.4 road grid. */
NamedGraph makeRoadUsa(double scale = defaultScale, std::uint64_t seed = 1);

/** Twitter equivalent: RMAT, degree ~35. */
NamedGraph makeTwitter(double scale = defaultScale, std::uint64_t seed = 2);

/** Friendster equivalent: RMAT, degree ~27. */
NamedGraph makeFriendster(double scale = defaultScale,
                          std::uint64_t seed = 3);

/** Host (WDC12 subset) equivalent: RMAT, degree ~20. */
NamedGraph makeHost(double scale = defaultScale, std::uint64_t seed = 4);

/** Urand equivalent: uniform random, degree ~31. */
NamedGraph makeUrand(double scale = defaultScale, std::uint64_t seed = 5);

/** All five Table III graphs in the paper's order. */
std::vector<NamedGraph> paperGraphs(double scale = defaultScale,
                                    std::uint64_t seed = 1);

/**
 * RMAT with 2^scale_exp vertices and avg degree 16, the paper's
 * weak-scaling inputs (RMAT21..24, Fig. 8), scaled by `scale`.
 */
NamedGraph makeRmatN(int scale_exp, double scale = defaultScale,
                     std::uint64_t seed = 7);

} // namespace nova::graph

#endif // NOVA_GRAPH_PRESETS_HH
