/**
 * @file
 * Compressed sparse row (CSR) graph representation.
 *
 * This is the canonical in-memory graph format for the whole repository:
 * generators produce it, partitioners slice it, and both the NOVA model
 * and the baselines consume it. Edge weights are optional; unweighted
 * graphs report weight 1 for every edge.
 */

#ifndef NOVA_GRAPH_CSR_HH
#define NOVA_GRAPH_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

namespace nova::graph
{

/** Vertex identifier. Scaled inputs stay well below 2^32 vertices. */
using VertexId = std::uint32_t;

/** Edge index into the CSR arrays. */
using EdgeId = std::uint64_t;

/** Edge weight; SSSP interprets it as a distance. */
using Weight = std::uint32_t;

/** A single directed edge, used during construction. */
struct Edge
{
    VertexId src;
    VertexId dst;
    Weight weight = 1;
};

/** An owning list of edges plus the vertex-count bound. */
struct EdgeList
{
    VertexId numVertices = 0;
    std::vector<Edge> edges;
};

/**
 * An immutable directed graph in CSR form.
 *
 * Neighbors of vertex v occupy dests[rowPtr[v] .. rowPtr[v+1]).
 */
class Csr
{
  public:
    Csr() = default;

    /**
     * Build from components.
     * @param row_ptr  numVertices+1 offsets, non-decreasing.
     * @param dests    destination vertex per edge.
     * @param weights  empty (unweighted) or one weight per edge.
     */
    Csr(std::vector<EdgeId> row_ptr, std::vector<VertexId> dests,
        std::vector<Weight> weights = {});

    VertexId numVertices() const
    {
        return row.empty() ? 0 : static_cast<VertexId>(row.size() - 1);
    }

    EdgeId numEdges() const { return dst.size(); }

    bool weighted() const { return !wgt.empty(); }

    /** Out-degree of a vertex. */
    EdgeId degree(VertexId v) const { return row[v + 1] - row[v]; }

    /** First edge index of a vertex. */
    EdgeId edgeBegin(VertexId v) const { return row[v]; }

    /** One-past-last edge index of a vertex. */
    EdgeId edgeEnd(VertexId v) const { return row[v + 1]; }

    /** Destination of edge e. */
    VertexId edgeDest(EdgeId e) const { return dst[e]; }

    /** Weight of edge e (1 when unweighted). */
    Weight edgeWeight(EdgeId e) const { return wgt.empty() ? 1 : wgt[e]; }

    /** The neighbors of v as a contiguous span. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {dst.data() + row[v], dst.data() + row[v + 1]};
    }

    const std::vector<EdgeId> &rowPtr() const { return row; }
    const std::vector<VertexId> &dests() const { return dst; }
    const std::vector<Weight> &weights() const { return wgt; }

    /**
     * Nominal memory footprint in bytes using the paper's accounting:
     * 16 B per vertex (Sec. VI-E) plus 8 B per edge.
     */
    std::uint64_t footprintBytes() const;

  private:
    std::vector<EdgeId> row;
    std::vector<VertexId> dst;
    std::vector<Weight> wgt;
};

/** Options controlling CSR construction from an edge list. */
struct BuildOptions
{
    /** Sort each adjacency list by destination id. */
    bool sortNeighbors = true;
    /** Remove duplicate (src, dst) pairs, keeping the smallest weight. */
    bool dedup = false;
    /** Drop self loops. */
    bool dropSelfLoops = false;
};

/** Build a CSR from an edge list. */
Csr buildCsr(const EdgeList &list, const BuildOptions &opts = {});

/**
 * Return the symmetric closure of g: for every edge (u, v) the result
 * also contains (v, u) with the same weight. Duplicates are removed.
 */
Csr symmetrize(const Csr &g);

/** Return the transpose (all edges reversed). */
Csr transpose(const Csr &g);

/**
 * Apply a relabelling permutation: vertex v becomes perm[v].
 * @pre perm is a permutation of [0, numVertices).
 */
Csr applyPermutation(const Csr &g, const std::vector<VertexId> &perm);

} // namespace nova::graph

#endif // NOVA_GRAPH_CSR_HH
