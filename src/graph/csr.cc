#include "graph/csr.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace nova::graph
{

Csr::Csr(std::vector<EdgeId> row_ptr, std::vector<VertexId> dests,
         std::vector<Weight> weights)
    : row(std::move(row_ptr)), dst(std::move(dests)), wgt(std::move(weights))
{
    NOVA_ASSERT(!row.empty(), "row pointer must have at least one entry");
    NOVA_ASSERT(row.front() == 0, "row pointer must start at zero");
    NOVA_ASSERT(row.back() == dst.size(), "row pointer end mismatch");
    NOVA_ASSERT(std::is_sorted(row.begin(), row.end()),
                "row pointer must be non-decreasing");
    NOVA_ASSERT(wgt.empty() || wgt.size() == dst.size(),
                "weights must be empty or per-edge");
    const VertexId n = numVertices();
    for (VertexId d : dst)
        NOVA_ASSERT(d < n, "edge destination out of range");
}

std::uint64_t
Csr::footprintBytes() const
{
    return std::uint64_t(numVertices()) * 16 + numEdges() * 8;
}

Csr
buildCsr(const EdgeList &list, const BuildOptions &opts)
{
    const VertexId n = list.numVertices;
    std::vector<Edge> edges;
    edges.reserve(list.edges.size());
    for (const Edge &e : list.edges) {
        NOVA_ASSERT(e.src < n && e.dst < n, "edge endpoint out of range");
        if (opts.dropSelfLoops && e.src == e.dst)
            continue;
        edges.push_back(e);
    }

    if (opts.sortNeighbors || opts.dedup) {
        std::sort(edges.begin(), edges.end(),
                  [](const Edge &a, const Edge &b) {
                      if (a.src != b.src)
                          return a.src < b.src;
                      if (a.dst != b.dst)
                          return a.dst < b.dst;
                      return a.weight < b.weight;
                  });
    } else {
        std::stable_sort(edges.begin(), edges.end(),
                         [](const Edge &a, const Edge &b) {
                             return a.src < b.src;
                         });
    }

    if (opts.dedup) {
        edges.erase(std::unique(edges.begin(), edges.end(),
                                [](const Edge &a, const Edge &b) {
                                    return a.src == b.src && a.dst == b.dst;
                                }),
                    edges.end());
    }

    std::vector<EdgeId> row(static_cast<std::size_t>(n) + 1, 0);
    for (const Edge &e : edges)
        ++row[e.src + 1];
    std::partial_sum(row.begin(), row.end(), row.begin());

    std::vector<VertexId> dst(edges.size());
    std::vector<Weight> wgt;
    const bool any_weighted =
        std::any_of(edges.begin(), edges.end(),
                    [](const Edge &e) { return e.weight != 1; });
    if (any_weighted)
        wgt.resize(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        dst[i] = edges[i].dst;
        if (any_weighted)
            wgt[i] = edges[i].weight;
    }
    return Csr(std::move(row), std::move(dst), std::move(wgt));
}

Csr
symmetrize(const Csr &g)
{
    EdgeList list;
    list.numVertices = g.numVertices();
    list.edges.reserve(g.numEdges() * 2);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            list.edges.push_back({v, g.edgeDest(e), g.edgeWeight(e)});
            list.edges.push_back({g.edgeDest(e), v, g.edgeWeight(e)});
        }
    }
    BuildOptions opts;
    opts.dedup = true;
    return buildCsr(list, opts);
}

Csr
transpose(const Csr &g)
{
    EdgeList list;
    list.numVertices = g.numVertices();
    list.edges.reserve(g.numEdges());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            list.edges.push_back({g.edgeDest(e), v, g.edgeWeight(e)});
    return buildCsr(list);
}

Csr
applyPermutation(const Csr &g, const std::vector<VertexId> &perm)
{
    NOVA_ASSERT(perm.size() == g.numVertices(), "permutation size mismatch");
    EdgeList list;
    list.numVertices = g.numVertices();
    list.edges.reserve(g.numEdges());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e)
            list.edges.push_back(
                {perm[v], perm[g.edgeDest(e)], g.edgeWeight(e)});
    return buildCsr(list);
}

} // namespace nova::graph
