#include "graph/partition.hh"

#include <algorithm>
#include <deque>
#include <numeric>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace nova::graph
{

using sim::Rng;

VertexMapping
VertexMapping::interleave(VertexId num_vertices, std::uint32_t num_parts)
{
    NOVA_ASSERT(num_parts > 0);
    VertexMapping m;
    m.kind = Kind::Interleave;
    m.numVerts = num_vertices;
    m.numParts = num_parts;
    return m;
}

VertexMapping
VertexMapping::chunk(VertexId num_vertices, std::uint32_t num_parts)
{
    NOVA_ASSERT(num_parts > 0);
    VertexMapping m;
    m.kind = Kind::Chunk;
    m.numVerts = num_vertices;
    m.numParts = num_parts;
    m.chunkSize = (num_vertices + num_parts - 1) / num_parts;
    if (m.chunkSize == 0)
        m.chunkSize = 1;
    return m;
}

VertexMapping
VertexMapping::fromAssignment(std::vector<std::uint32_t> part_of,
                              std::uint32_t num_parts)
{
    NOVA_ASSERT(num_parts > 0);
    VertexMapping m;
    m.kind = Kind::Explicit;
    m.numVerts = static_cast<VertexId>(part_of.size());
    m.numParts = num_parts;
    m.partOfVec = std::move(part_of);
    m.localOfVec.resize(m.numVerts);
    m.globals.resize(num_parts);
    for (VertexId v = 0; v < m.numVerts; ++v) {
        const std::uint32_t p = m.partOfVec[v];
        NOVA_ASSERT(p < num_parts, "part id out of range");
        m.localOfVec[v] = static_cast<VertexId>(m.globals[p].size());
        m.globals[p].push_back(v);
    }
    return m;
}

std::uint32_t
VertexMapping::partOf(VertexId v) const
{
    NOVA_ASSERT(v < numVerts);
    switch (kind) {
      case Kind::Interleave:
        return v % numParts;
      case Kind::Chunk:
        return std::min<std::uint32_t>(v / chunkSize, numParts - 1);
      case Kind::Explicit:
        return partOfVec[v];
    }
    return 0;
}

VertexId
VertexMapping::localOf(VertexId v) const
{
    NOVA_ASSERT(v < numVerts);
    switch (kind) {
      case Kind::Interleave:
        return v / numParts;
      case Kind::Chunk:
        return v - partOf(v) * chunkSize;
      case Kind::Explicit:
        return localOfVec[v];
    }
    return 0;
}

VertexId
VertexMapping::globalOf(std::uint32_t part, VertexId local) const
{
    NOVA_ASSERT(part < numParts);
    switch (kind) {
      case Kind::Interleave:
        return local * numParts + part;
      case Kind::Chunk:
        return part * chunkSize + local;
      case Kind::Explicit:
        return globals[part][local];
    }
    return 0;
}

VertexId
VertexMapping::localCount(std::uint32_t part) const
{
    NOVA_ASSERT(part < numParts);
    switch (kind) {
      case Kind::Interleave: {
        const VertexId base = numVerts / numParts;
        return base + (part < numVerts % numParts ? 1 : 0);
      }
      case Kind::Chunk: {
        const VertexId lo = part * chunkSize;
        if (lo >= numVerts)
            return 0;
        return std::min<VertexId>(chunkSize, numVerts - lo);
      }
      case Kind::Explicit:
        return static_cast<VertexId>(globals[part].size());
    }
    return 0;
}

VertexId
VertexMapping::maxLocalCount() const
{
    VertexId best = 0;
    for (std::uint32_t p = 0; p < numParts; ++p)
        best = std::max(best, localCount(p));
    return best;
}

void
VertexMapping::materialize()
{
    if (kind == Kind::Explicit)
        return;
    std::vector<std::uint32_t> part_of(numVerts);
    for (VertexId v = 0; v < numVerts; ++v)
        part_of[v] = partOf(v);
    *this = fromAssignment(std::move(part_of), numParts);
}

void
VertexMapping::reassign(VertexId v, std::uint32_t new_part)
{
    NOVA_ASSERT(kind == Kind::Explicit,
                "reassign needs a materialized mapping");
    NOVA_ASSERT(v < numVerts && new_part < numParts);
    NOVA_ASSERT(partOfVec[v] != new_part,
                "reassigning a vertex to its own part");
    partOfVec[v] = new_part;
    localOfVec[v] = static_cast<VertexId>(globals[new_part].size());
    globals[new_part].push_back(v);
}

VertexMapping
randomMapping(VertexId num_vertices, std::uint32_t parts, std::uint64_t seed)
{
    // Deal a shuffled deck round-robin so parts stay balanced in vertex
    // count while the assignment is uncorrelated with vertex ids.
    Rng rng(seed);
    std::vector<VertexId> order(num_vertices);
    std::iota(order.begin(), order.end(), 0);
    for (VertexId i = num_vertices; i > 1; --i) {
        const auto j = static_cast<VertexId>(rng.nextBounded(i));
        std::swap(order[i - 1], order[j]);
    }
    std::vector<std::uint32_t> part_of(num_vertices);
    for (VertexId i = 0; i < num_vertices; ++i)
        part_of[order[i]] = i % parts;
    return VertexMapping::fromAssignment(std::move(part_of), parts);
}

VertexMapping
loadBalancedMapping(const Csr &g, std::uint32_t parts)
{
    // Longest-processing-time greedy: highest-degree vertices first,
    // each onto the currently lightest part.
    const VertexId n = g.numVertices();
    std::vector<VertexId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](VertexId a, VertexId b) {
                         return g.degree(a) > g.degree(b);
                     });
    std::vector<std::uint32_t> part_of(n);
    std::vector<EdgeId> load(parts, 0);
    std::vector<VertexId> verts(parts, 0);
    const VertexId verts_cap = (n + parts - 1) / parts;
    for (const VertexId v : order) {
        std::uint32_t lightest = 0;
        bool found = false;
        for (std::uint32_t p = 0; p < parts; ++p) {
            if (verts[p] >= verts_cap)
                continue; // keep vertex counts balanced too
            if (!found || load[p] < load[lightest]) {
                lightest = p;
                found = true;
            }
        }
        part_of[v] = lightest;
        load[lightest] += g.degree(v);
        ++verts[lightest];
    }
    return VertexMapping::fromAssignment(std::move(part_of), parts);
}

VertexMapping
localityMapping(const Csr &g, std::uint32_t parts, VertexId max_community)
{
    const VertexId n = g.numVertices();
    if (max_community == 0)
        max_community = std::max<VertexId>(16, n / (parts * 8));

    // Grow bounded BFS communities over the (directed) adjacency; this
    // is the lightweight stand-in for RABBIT's incremental aggregation.
    std::vector<std::int32_t> community(n, -1);
    std::vector<std::vector<VertexId>> members;
    std::deque<VertexId> queue;
    for (VertexId seed_v = 0; seed_v < n; ++seed_v) {
        if (community[seed_v] >= 0)
            continue;
        const auto cid = static_cast<std::int32_t>(members.size());
        members.emplace_back();
        community[seed_v] = cid;
        queue.clear();
        queue.push_back(seed_v);
        while (!queue.empty() && members[cid].size() < max_community) {
            const VertexId v = queue.front();
            queue.pop_front();
            members[cid].push_back(v);
            for (VertexId w : g.neighbors(v)) {
                if (community[w] < 0 &&
                    members[cid].size() + queue.size() < max_community) {
                    community[w] = cid;
                    queue.push_back(w);
                }
            }
        }
        // Anything still queued when the community filled up keeps its
        // membership (it was claimed above) and gets flushed here.
        for (VertexId v : queue)
            members[cid].push_back(v);
        queue.clear();
    }

    // Pack whole communities onto the currently lightest part (by edge
    // count) so locality is preserved while load stays roughly even.
    std::vector<EdgeId> load(parts, 0);
    std::vector<std::uint32_t> part_of(n);
    std::vector<std::size_t> comm_order(members.size());
    std::iota(comm_order.begin(), comm_order.end(), 0);
    auto comm_edges = [&](std::size_t c) {
        EdgeId sum = 0;
        for (VertexId v : members[c])
            sum += g.degree(v);
        return sum;
    };
    std::vector<EdgeId> sizes(members.size());
    for (std::size_t c = 0; c < members.size(); ++c)
        sizes[c] = comm_edges(c);
    std::stable_sort(comm_order.begin(), comm_order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return sizes[a] > sizes[b];
                     });
    for (std::size_t c : comm_order) {
        const auto lightest = static_cast<std::uint32_t>(std::distance(
            load.begin(), std::min_element(load.begin(), load.end())));
        for (VertexId v : members[c])
            part_of[v] = lightest;
        load[lightest] += sizes[c];
    }
    return VertexMapping::fromAssignment(std::move(part_of), parts);
}

std::vector<EdgeId>
edgesPerPart(const Csr &g, const VertexMapping &map)
{
    std::vector<EdgeId> counts(map.parts(), 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        counts[map.partOf(v)] += g.degree(v);
    return counts;
}

double
cutFraction(const Csr &g, const VertexMapping &map)
{
    if (g.numEdges() == 0)
        return 0;
    EdgeId cut = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        for (VertexId w : g.neighbors(v))
            if (map.partOf(v) != map.partOf(w))
                ++cut;
    return static_cast<double>(cut) / static_cast<double>(g.numEdges());
}

} // namespace nova::graph
