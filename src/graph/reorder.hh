/**
 * @file
 * Vertex reordering (graph preprocessing) utilities.
 *
 * The paper's Sec. II-C1 and IV-B discuss the cost/benefit of
 * reordering: community-based orders (RABBIT [6]) improve locality but
 * are expensive; lightweight orders (degree sort) are cheap; using the
 * publisher's order costs nothing. These helpers produce relabelling
 * permutations consumed by graph::applyPermutation and are used by the
 * locality experiments.
 */

#ifndef NOVA_GRAPH_REORDER_HH
#define NOVA_GRAPH_REORDER_HH

#include <vector>

#include "graph/csr.hh"

namespace nova::graph
{

/**
 * Degree-descending order ("hub sorting"): vertex with the highest
 * out-degree becomes id 0. Cheap; clusters hot vertices.
 */
std::vector<VertexId> degreeSortPermutation(const Csr &g);

/**
 * BFS (Cuthill-McKee-like) order over the symmetrized adjacency:
 * neighbours receive nearby ids, improving block/cache locality on
 * high-diameter graphs.
 */
std::vector<VertexId> bfsPermutation(const Csr &g);

/**
 * Community-clustered order (lightweight RABBIT stand-in): bounded
 * BFS communities laid out contiguously, communities ordered by
 * discovery. @param max_community 0 picks ~sqrt(V).
 */
std::vector<VertexId> communityPermutation(const Csr &g,
                                           VertexId max_community = 0);

/**
 * Average |id(u) - id(v)| over edges, normalised by |V| — a locality
 * score in [0, 1]; lower is more local. Used to compare orders.
 */
double averageEdgeSpan(const Csr &g);

/** Verify `perm` is a permutation of [0, n); panics otherwise. */
void validatePermutation(const std::vector<VertexId> &perm, VertexId n);

} // namespace nova::graph

#endif // NOVA_GRAPH_REORDER_HH
