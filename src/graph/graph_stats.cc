#include "graph/graph_stats.hh"

#include <algorithm>
#include <deque>
#include <vector>

namespace nova::graph
{

namespace
{

/**
 * BFS over the symmetrized adjacency from `source`; returns the depth
 * vector (~0u for unreached) and the farthest vertex found.
 */
std::pair<std::vector<VertexId>, VertexId>
undirectedBfs(const Csr &g, const Csr &rev, VertexId source)
{
    constexpr VertexId unreached = ~VertexId(0);
    std::vector<VertexId> depth(g.numVertices(), unreached);
    std::deque<VertexId> queue;
    depth[source] = 0;
    queue.push_back(source);
    VertexId farthest = source;
    while (!queue.empty()) {
        const VertexId v = queue.front();
        queue.pop_front();
        if (depth[v] > depth[farthest])
            farthest = v;
        auto visit = [&](VertexId w) {
            if (depth[w] == unreached) {
                depth[w] = depth[v] + 1;
                queue.push_back(w);
            }
        };
        for (VertexId w : g.neighbors(v))
            visit(w);
        for (VertexId w : rev.neighbors(v))
            visit(w);
    }
    return {std::move(depth), farthest};
}

} // namespace

VertexId
highestDegreeVertex(const Csr &g)
{
    VertexId best = 0;
    for (VertexId v = 1; v < g.numVertices(); ++v)
        if (g.degree(v) > g.degree(best))
            best = v;
    return best;
}

GraphStats
computeStats(const Csr &g)
{
    GraphStats s;
    s.numVertices = g.numVertices();
    s.numEdges = g.numEdges();
    s.avgDegree = s.numVertices == 0
                      ? 0
                      : static_cast<double>(s.numEdges) /
                            static_cast<double>(s.numVertices);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        s.maxDegree = std::max(s.maxDegree, g.degree(v));
    s.footprintBytes = g.footprintBytes();

    if (s.numVertices == 0)
        return s;

    // Weakly connected components via BFS over g plus its transpose.
    const Csr rev = transpose(g);
    constexpr VertexId unvisited = ~VertexId(0);
    std::vector<VertexId> comp(g.numVertices(), unvisited);
    std::deque<VertexId> queue;
    VertexId num_comp = 0;
    VertexId largest = 0;
    VertexId largest_root = 0;
    for (VertexId root = 0; root < g.numVertices(); ++root) {
        if (comp[root] != unvisited)
            continue;
        const VertexId cid = num_comp++;
        VertexId size = 0;
        comp[root] = cid;
        queue.push_back(root);
        while (!queue.empty()) {
            const VertexId v = queue.front();
            queue.pop_front();
            ++size;
            auto visit = [&](VertexId w) {
                if (comp[w] == unvisited) {
                    comp[w] = cid;
                    queue.push_back(w);
                }
            };
            for (VertexId w : g.neighbors(v))
                visit(w);
            for (VertexId w : rev.neighbors(v))
                visit(w);
        }
        if (size > largest) {
            largest = size;
            largest_root = root;
        }
    }
    s.numComponents = num_comp;
    s.largestComponent = largest;

    // Double-sweep diameter lower bound inside the largest component.
    auto [depth1, far1] = undirectedBfs(g, rev, largest_root);
    auto [depth2, far2] = undirectedBfs(g, rev, far1);
    s.approxDiameter = depth2[far2];
    return s;
}

} // namespace nova::graph
