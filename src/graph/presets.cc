#include "graph/presets.hh"

#include <cmath>

#include "graph/generators.hh"

namespace nova::graph
{

namespace
{

VertexId
scaledV(std::uint64_t paper_v, double scale)
{
    return static_cast<VertexId>(
        std::max(64.0, static_cast<double>(paper_v) / scale));
}

EdgeId
scaledE(std::uint64_t paper_e, double scale)
{
    return static_cast<EdgeId>(
        std::max(128.0, static_cast<double>(paper_e) / scale));
}

NamedGraph
makeRmatLike(const std::string &name, std::uint64_t paper_v,
             std::uint64_t paper_e, double scale, std::uint64_t seed)
{
    RmatParams p;
    p.numVertices = scaledV(paper_v, scale);
    p.numEdges = scaledE(paper_e, scale);
    p.maxWeight = 255;
    p.seed = seed;
    return {name, paper_v, paper_e, generateRmat(p)};
}

} // namespace

NamedGraph
makeRoadUsa(double scale, std::uint64_t seed)
{
    constexpr std::uint64_t paper_v = 23'900'000;
    constexpr std::uint64_t paper_e = 58'300'000;
    const VertexId target_v = scaledV(paper_v, scale);
    const auto side =
        static_cast<VertexId>(std::sqrt(static_cast<double>(target_v)));
    RoadGridParams p;
    p.width = side;
    p.height = side;
    // A full lattice has degree ~4 (directed); RoadUSA's is 2.44, so
    // drop the difference. Stays above the bond-percolation threshold,
    // keeping a giant component as the real RoadUSA has.
    p.dropFraction = 0.39;
    p.highwayFraction = 0.002;
    p.maxWeight = 255;
    p.seed = seed;
    return {"roadusa", paper_v, paper_e, generateRoadGrid(p)};
}

NamedGraph
makeTwitter(double scale, std::uint64_t seed)
{
    return makeRmatLike("twitter", 41'650'000, 1'460'000'000, scale, seed);
}

NamedGraph
makeFriendster(double scale, std::uint64_t seed)
{
    return makeRmatLike("friendster", 65'600'000, 1'800'000'000, scale,
                        seed);
}

NamedGraph
makeHost(double scale, std::uint64_t seed)
{
    return makeRmatLike("host", 101'000'000, 2'000'000'000, scale, seed);
}

NamedGraph
makeUrand(double scale, std::uint64_t seed)
{
    constexpr std::uint64_t paper_v = 134'200'000;
    constexpr std::uint64_t paper_e = 4'200'000'000;
    UniformParams p;
    p.numVertices = scaledV(paper_v, scale);
    p.numEdges = scaledE(paper_e, scale);
    p.maxWeight = 255;
    p.seed = seed;
    return {"urand", paper_v, paper_e, generateUniform(p)};
}

std::vector<NamedGraph>
paperGraphs(double scale, std::uint64_t seed)
{
    std::vector<NamedGraph> graphs;
    graphs.push_back(makeRoadUsa(scale, seed + 0));
    graphs.push_back(makeTwitter(scale, seed + 1));
    graphs.push_back(makeFriendster(scale, seed + 2));
    graphs.push_back(makeHost(scale, seed + 3));
    graphs.push_back(makeUrand(scale, seed + 4));
    return graphs;
}

NamedGraph
makeRmatN(int scale_exp, double scale, std::uint64_t seed)
{
    const std::uint64_t paper_v = std::uint64_t(1) << scale_exp;
    const std::uint64_t paper_e = paper_v * 16;
    return makeRmatLike("rmat" + std::to_string(scale_exp), paper_v,
                        paper_e, scale, seed);
}

} // namespace nova::graph
