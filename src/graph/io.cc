#include "graph/io.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

namespace nova::graph
{

namespace
{

constexpr char binaryMagic[8] = {'N', 'O', 'V', 'A', 'C', 'S', 'R', '1'};

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    if (!in)
        sim::fatal("truncated binary graph stream");
    return value;
}

template <typename T>
void
writeVec(std::ostream &out, const std::vector<T> &vec)
{
    writePod<std::uint64_t>(out, vec.size());
    out.write(reinterpret_cast<const char *>(vec.data()),
              static_cast<std::streamsize>(vec.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &in)
{
    const auto n = readPod<std::uint64_t>(in);
    std::vector<T> vec(n);
    in.read(reinterpret_cast<char *>(vec.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    if (!in)
        sim::fatal("truncated binary graph stream");
    return vec;
}

} // namespace

EdgeList
readEdgeList(std::istream &in, VertexId num_vertices_hint)
{
    EdgeList list;
    list.numVertices = num_vertices_hint;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream ls(line);
        std::uint64_t u, v;
        if (!(ls >> u >> v))
            sim::fatal("malformed edge list line: '", line, "'");
        std::uint64_t w = 1;
        ls >> w;
        list.edges.push_back({static_cast<VertexId>(u),
                              static_cast<VertexId>(v),
                              static_cast<Weight>(w)});
        const auto hi = static_cast<VertexId>(std::max(u, v) + 1);
        list.numVertices = std::max(list.numVertices, hi);
    }
    return list;
}

Csr
loadEdgeListFile(const std::string &path, const BuildOptions &opts)
{
    std::ifstream in(path);
    if (!in)
        sim::fatal("cannot open edge list file '", path, "'");
    return buildCsr(readEdgeList(in), opts);
}

void
writeEdgeList(const Csr &g, std::ostream &out)
{
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        for (EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v); ++e) {
            out << v << ' ' << g.edgeDest(e);
            if (g.weighted())
                out << ' ' << g.edgeWeight(e);
            out << '\n';
        }
    }
}

void
writeBinary(const Csr &g, std::ostream &out)
{
    out.write(binaryMagic, sizeof(binaryMagic));
    writeVec(out, g.rowPtr());
    writeVec(out, g.dests());
    writeVec(out, g.weights());
}

Csr
readBinary(std::istream &in)
{
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, binaryMagic, sizeof(magic)) != 0)
        sim::fatal("not a NOVA binary graph stream");
    auto row = readVec<EdgeId>(in);
    auto dst = readVec<VertexId>(in);
    auto wgt = readVec<Weight>(in);
    return Csr(std::move(row), std::move(dst), std::move(wgt));
}

void
saveBinaryFile(const Csr &g, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        sim::fatal("cannot create file '", path, "'");
    writeBinary(g, out);
}

Csr
loadBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        sim::fatal("cannot open file '", path, "'");
    return readBinary(in);
}

} // namespace nova::graph
