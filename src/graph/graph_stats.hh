/**
 * @file
 * Structural statistics of a graph (Table III style inventory).
 */

#ifndef NOVA_GRAPH_GRAPH_STATS_HH
#define NOVA_GRAPH_GRAPH_STATS_HH

#include <cstdint>

#include "graph/csr.hh"

namespace nova::graph
{

/** Summary statistics of one input graph. */
struct GraphStats
{
    VertexId numVertices = 0;
    EdgeId numEdges = 0;
    double avgDegree = 0;
    EdgeId maxDegree = 0;
    /** 16 B/vertex + 8 B/edge, the paper's accounting. */
    std::uint64_t footprintBytes = 0;
    /** Weakly connected components (on the symmetrized graph). */
    VertexId numComponents = 0;
    /** Size of the largest weakly connected component. */
    VertexId largestComponent = 0;
    /** Lower bound on diameter from a double BFS sweep. */
    VertexId approxDiameter = 0;
};

/** Compute all statistics; component/diameter passes are O(V + E). */
GraphStats computeStats(const Csr &g);

/**
 * The highest-out-degree vertex: the canonical traversal source for
 * experiments (deterministic, guaranteed to have work).
 */
VertexId highestDegreeVertex(const Csr &g);

} // namespace nova::graph

#endif // NOVA_GRAPH_GRAPH_STATS_HH
