#include "graph/generators.hh"

#include <algorithm>
#include <bit>
#include <numeric>

#include "sim/logging.hh"

namespace nova::graph
{

using sim::Rng;

namespace
{

/** Smallest power of two >= n. */
VertexId
ceilPow2(VertexId n)
{
    return n <= 1 ? 1 : std::bit_ceil(n);
}

Weight
sampleWeight(Rng &rng, Weight max_weight)
{
    return max_weight <= 1
               ? 1
               : static_cast<Weight>(rng.nextRange(1, max_weight));
}

} // namespace

Csr
generateRmat(const RmatParams &p)
{
    NOVA_ASSERT(p.a + p.b + p.c < 1.0, "RMAT probabilities must sum < 1");
    Rng rng(p.seed);
    const VertexId side = ceilPow2(p.numVertices);
    const int levels = std::countr_zero(side);

    // Scramble ids so high-degree vertices are spread across the id
    // space (the raw RMAT model concentrates hubs at low ids).
    std::vector<VertexId> scramble(side);
    std::iota(scramble.begin(), scramble.end(), 0);
    for (VertexId i = side; i > 1; --i) {
        const auto j = static_cast<VertexId>(rng.nextBounded(i));
        std::swap(scramble[i - 1], scramble[j]);
    }

    EdgeList list;
    list.numVertices = p.numVertices;
    list.edges.reserve(p.numEdges);

    const double ab = p.a + p.b;
    const double abc = p.a + p.b + p.c;
    while (list.edges.size() < p.numEdges) {
        VertexId u = 0, v = 0;
        for (int level = 0; level < levels; ++level) {
            const double r = rng.nextDouble();
            u <<= 1;
            v <<= 1;
            if (r < p.a) {
                // top-left quadrant: no bits set
            } else if (r < ab) {
                v |= 1;
            } else if (r < abc) {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        u = scramble[u];
        v = scramble[v];
        if (u >= p.numVertices || v >= p.numVertices || u == v)
            continue;
        list.edges.push_back({u, v, sampleWeight(rng, p.maxWeight)});
    }
    return buildCsr(list);
}

Csr
generateUniform(const UniformParams &p)
{
    NOVA_ASSERT(p.numVertices > 1, "need at least two vertices");
    Rng rng(p.seed);
    EdgeList list;
    list.numVertices = p.numVertices;
    list.edges.reserve(p.numEdges);
    while (list.edges.size() < p.numEdges) {
        const auto u = static_cast<VertexId>(rng.nextBounded(p.numVertices));
        const auto v = static_cast<VertexId>(rng.nextBounded(p.numVertices));
        if (u == v)
            continue;
        list.edges.push_back({u, v, sampleWeight(rng, p.maxWeight)});
    }
    return buildCsr(list);
}

Csr
generateRoadGrid(const RoadGridParams &p)
{
    NOVA_ASSERT(p.width >= 2 && p.height >= 2, "grid too small");
    Rng rng(p.seed);
    const VertexId n = p.width * p.height;
    auto id = [&](VertexId x, VertexId y) { return y * p.width + x; };

    EdgeList list;
    list.numVertices = n;
    list.edges.reserve(static_cast<std::size_t>(n) * 2);
    auto addBidi = [&](VertexId u, VertexId v) {
        const Weight w = sampleWeight(rng, p.maxWeight);
        list.edges.push_back({u, v, w});
        list.edges.push_back({v, u, w});
    };

    for (VertexId y = 0; y < p.height; ++y) {
        for (VertexId x = 0; x < p.width; ++x) {
            if (x + 1 < p.width && !rng.nextBool(p.dropFraction))
                addBidi(id(x, y), id(x + 1, y));
            if (y + 1 < p.height && !rng.nextBool(p.dropFraction))
                addBidi(id(x, y), id(x, y + 1));
        }
    }

    // A few long-range "highways" keep the graph mostly connected even
    // with dropped lattice edges, as real road networks have.
    const auto num_highways =
        static_cast<EdgeId>(p.highwayFraction * static_cast<double>(n));
    for (EdgeId i = 0; i < num_highways; ++i) {
        const auto u = static_cast<VertexId>(rng.nextBounded(n));
        const auto v = static_cast<VertexId>(rng.nextBounded(n));
        if (u != v)
            addBidi(u, v);
    }
    BuildOptions opts;
    opts.dedup = true;
    return buildCsr(list, opts);
}

Csr
generatePath(VertexId n, Weight w)
{
    EdgeList list;
    list.numVertices = n;
    for (VertexId v = 0; v + 1 < n; ++v)
        list.edges.push_back({v, v + 1, w});
    return buildCsr(list);
}

Csr
generateStar(VertexId n)
{
    EdgeList list;
    list.numVertices = n;
    for (VertexId v = 1; v < n; ++v)
        list.edges.push_back({0, v, 1});
    return buildCsr(list);
}

Csr
generateComplete(VertexId n)
{
    EdgeList list;
    list.numVertices = n;
    for (VertexId u = 0; u < n; ++u)
        for (VertexId v = 0; v < n; ++v)
            if (u != v)
                list.edges.push_back({u, v, 1});
    return buildCsr(list);
}

Csr
generateCycle(VertexId n)
{
    EdgeList list;
    list.numVertices = n;
    for (VertexId v = 0; v < n; ++v)
        list.edges.push_back({v, static_cast<VertexId>((v + 1) % n), 1});
    return buildCsr(list);
}

Csr
withRandomWeights(const Csr &g, Weight max_weight, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Weight> wgt(g.numEdges());
    for (auto &w : wgt)
        w = sampleWeight(rng, max_weight);
    return Csr(g.rowPtr(), g.dests(), std::move(wgt));
}

} // namespace nova::graph
