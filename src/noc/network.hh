/**
 * @file
 * Interconnect models (Sec. IV-C).
 *
 * Three topologies are provided:
 *  - PePointToPointNetwork: the intra-GPN 8x8 electrical network with a
 *    dedicated serializing link per PE pair (Table II, 1.2 GB/s/link);
 *  - HierarchicalNetwork: intra-GPN point-to-point links plus an
 *    inter-GPN crossbar with 60 GB/s ports (the proposed system);
 *  - IdealNetwork: infinite bandwidth, fixed latency (the Fig. 9c
 *    comparison point).
 *
 * All networks expose the same contract: senders call trySend() (which
 * may refuse under backpressure), receivers pop per-PE inbound queues.
 * End-to-end backpressure is modelled with per-destination credits.
 */

#ifndef NOVA_NOC_NETWORK_HH
#define NOVA_NOC_NETWORK_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "noc/message.hh"
#include "sim/fault.hh"
#include "sim/sim_object.hh"

namespace nova::noc
{

using sim::Tick;

/** Shared configuration of all network models. */
struct NetworkConfig
{
    /** Total number of PEs attached (numGpns * pesPerGpn). */
    std::uint32_t numPes = 8;
    /** PEs per GPN (defines locality domains). */
    std::uint32_t pesPerGpn = 8;
    /** Wire size of one message in bytes (vertex id + update). */
    std::uint32_t messageBytes = 8;
    /** Outstanding messages allowed per destination PE. */
    std::uint32_t creditsPerDst = 96;
    /** Intra-GPN link bandwidth in GB/s (Table II: 1.2). */
    double linkGBs = 1.2;
    /** Intra-GPN link propagation latency. */
    Tick linkLatency = 5000;
    /** Inter-GPN crossbar port bandwidth in GB/s (Table II: 60). */
    double portGBs = 60.0;
    /** Crossbar traversal latency. */
    Tick xbarLatency = 100000;
    /** Latency of a message to a vertex on the sending PE itself. */
    Tick selfLatency = 500;
    /**
     * Link-level retry timeout: base wait before a dropped/corrupted
     * flit is retransmitted. Doubles per attempt (exponential backoff)
     * up to retryBackoffCap doublings. Only exercised under fault
     * injection.
     */
    Tick retryTimeout = 20000;
    /** Maximum number of backoff doublings. */
    std::uint32_t retryBackoffCap = 6;
};

/**
 * Base class: inbound queues, credits, stats and the staged-pipe
 * machinery subclasses route through.
 */
class Network : public sim::SimObject
{
  public:
    Network(std::string name, sim::EventQueue &queue,
            const NetworkConfig &config);

    const NetworkConfig &config() const { return cfg; }

    /**
     * Try to inject a message. Fails (returns false) when the
     * destination is out of credits or the first hop is saturated; the
     * sender should register with waitForSpace().
     *
     * The endpoint contract (trySend / waitForSpace / popInbound /
     * inboundEmpty / inboundSize / setInboundNotify /
     * messagesInNetwork) is virtual so the sharded fabric of the
     * parallel scheduler can keep the state per shard while MPU/MGU
     * stay agnostic.
     */
    virtual bool trySend(const Message &msg);

    /** One-shot retry callback for a sender blocked by trySend(). */
    virtual void waitForSpace(std::uint32_t src_pe,
                              std::function<void()> retry);

    /** True when PE `pe` has no waiting inbound message. */
    virtual bool inboundEmpty(std::uint32_t pe) const
    {
        return inbound[pe].empty();
    }

    /** Number of waiting inbound messages for PE `pe`. */
    virtual std::size_t inboundSize(std::uint32_t pe) const
    {
        return inbound[pe].size();
    }

    /** Pop the next inbound message for PE `pe`. @pre !inboundEmpty. */
    virtual Message popInbound(std::uint32_t pe);

    /** Callback fired whenever a message lands in pe's empty queue. */
    virtual void setInboundNotify(std::uint32_t pe,
                                  std::function<void()> fn)
    {
        inboundNotify[pe] = std::move(fn);
    }

    /** Messages currently inside the network or in inbound queues. */
    virtual std::uint64_t messagesInNetwork() const { return inFlight; }

    /**
     * Hard-fault hook (noc.linkdown@gpn<K>): GPN `gpn`'s crossbar link
     * is permanently down. Only called at a BSP barrier (no messages in
     * flight). Afterwards every cross-GPN message touching that GPN
     * pays a deterministic penalty — the sender times out through the
     * full exponential-backoff ladder against the dead primary path,
     * then the flit crosses via a maintenance path (one extra crossbar
     * traversal) — and is counted by the reroute statistics.
     */
    void setLinkDown(std::uint32_t gpn);

    /** True once setLinkDown(gpn) was applied. */
    bool linkIsDown(std::uint32_t gpn) const
    {
        return gpn < linkDownGpn.size() && linkDownGpn[gpn] != 0;
    }

    /** @{ @name Statistics */
    sim::stats::Scalar messagesSent;
    sim::stats::Scalar bytesSent;
    sim::stats::Scalar selfMessages;
    sim::stats::Scalar crossGpnMessages;
    sim::stats::Scalar totalLatency;
    sim::stats::Scalar sendRejects;
    sim::stats::Scalar flitsDropped;        ///< faults: flits lost in transit
    sim::stats::Scalar flitsCorrupted;      ///< faults: CRC failures at rx
    sim::stats::Scalar flitsDuplicated;     ///< faults: spurious extra copies
    sim::stats::Scalar retries;             ///< link-level retransmissions
    sim::stats::Scalar retryBackoffTicks;   ///< total backoff wait
    sim::stats::Scalar duplicatesDiscarded; ///< dedup'd at the receiver
    sim::stats::Scalar reorders;            ///< arrivals out of inject order
    sim::stats::Scalar reroutes;            ///< messages past a dead link
    sim::stats::Scalar rerouteRetries;      ///< timeouts against dead links
    sim::stats::Scalar rerouteDelayTicks;   ///< total reroute wait
    /** @} */

    /** @{ @name Checkpoint hooks (delivery-order trackers + stats) */
    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;
    /** @} */

  protected:
    /** One serializing pipe stage (a link or a switch port). */
    class Stage
    {
      public:
        Stage(Network &owner, Tick serialization, Tick latency);

        /** Queue a message; `deliver` fires after ser + latency. */
        void push(Message msg, Tick inject_tick);

        std::size_t depth() const { return q.size(); }

      private:
        void work();

        Network &net;
        Tick serTicks;
        Tick latTicks;
        struct Pending
        {
            Message msg;
            Tick injected;
        };
        std::deque<Pending> q;
        sim::SelfEvent workEvent;
    };

    friend class Stage;

    /**
     * Subclass routing: enqueue the message into its first stage, or
     * return false when that stage is saturated. The subclass's stages
     * must eventually call deliver().
     */
    virtual bool route(const Message &msg) = 0;

    /** Final hop: place the message into the destination's inbound. */
    void deliver(const Message &msg, Tick inject_tick);

    /**
     * Called when a message finishes traversing a stage. The default
     * delivers to the destination; multi-hop fabrics override this to
     * chain stages.
     */
    virtual void onStageExit(Stage &stage, const Message &msg,
                             Tick inject_tick);

    /** Stages call this after freeing a queue slot. */
    void wakeSendersFromStage() { wakeSenders(); }

    /** Helper: serialization ticks for one message at `gbps` GB/s. */
    Tick serializationTicks(double gbps) const;

    /** True when `msg` crosses GPNs through a dead crossbar link. */
    bool needsReroute(const Message &msg) const
    {
        if (linkDownGpn.empty())
            return false;
        const std::uint32_t sg = gpnOf(msg.srcPe);
        const std::uint32_t dg = gpnOf(msg.dstPe);
        return sg != dg && (linkDownGpn[sg] != 0 || linkDownGpn[dg] != 0);
    }

    /**
     * Deterministic penalty a rerouted message pays: the full
     * exponential-backoff ladder (retryBackoffCap + 1 timeouts) plus
     * one maintenance-path crossbar traversal.
     */
    Tick linkDownDelay() const;

    std::uint32_t gpnOf(std::uint32_t pe) const
    {
        return pe / cfg.pesPerGpn;
    }

    NetworkConfig cfg;

  private:
    void wakeSenders();

    /**
     * The real delivery funnel behind deliver(): applies fault
     * injection (drop/corrupt retransmit with exponential backoff,
     * duplicate-and-discard) before the message lands in the inbound
     * queue. `attempt` counts retransmissions of this flit.
     */
    void deliverAttempt(const Message &msg, Tick inject_tick,
                        std::uint32_t attempt);

    std::vector<std::deque<Message>> inbound;
    std::vector<std::function<void()>> inboundNotify;
    std::vector<std::uint32_t> credits;
    std::vector<std::pair<std::uint32_t, std::function<void()>>> waiters;
    std::uint64_t inFlight = 0;
    /** Last delivered inject tick per destination (reorder detection). */
    std::vector<Tick> lastInjectAt;
    /**
     * Per-GPN dead-crossbar-link flags; empty until the first
     * setLinkDown(). Mutated only at BSP barriers (global quiescence),
     * read by the delivery paths.
     */
    std::vector<std::uint8_t> linkDownGpn;
    sim::FaultPoint *dropPoint = nullptr;    ///< "noc.drop"
    sim::FaultPoint *corruptPoint = nullptr; ///< "noc.corrupt"
    sim::FaultPoint *dupPoint = nullptr;     ///< "noc.dup"
};

/** Intra-GPN full point-to-point mesh; valid for a single GPN. */
class PePointToPointNetwork : public Network
{
  public:
    PePointToPointNetwork(std::string name, sim::EventQueue &queue,
                          const NetworkConfig &config);

  protected:
    bool route(const Message &msg) override;

  private:
    /** links[src][dst], lazily built. */
    std::vector<std::vector<std::unique_ptr<Stage>>> links;
};

/**
 * The proposed system fabric: point-to-point links inside a GPN and a
 * crossbar between GPNs (uplink port -> switch -> downlink port).
 */
class HierarchicalNetwork : public Network
{
  public:
    HierarchicalNetwork(std::string name, sim::EventQueue &queue,
                        const NetworkConfig &config);

  protected:
    bool route(const Message &msg) override;
    void onStageExit(Stage &stage, const Message &msg,
                     Tick inject_tick) override;

  private:
    std::vector<std::vector<std::unique_ptr<Stage>>> intraLinks;
    std::vector<std::unique_ptr<Stage>> uplinks;
    std::vector<std::unique_ptr<Stage>> downlinks;
};

/** Infinite-bandwidth fixed-latency network (Fig. 9c "P2P" ideal). */
class IdealNetwork : public Network
{
  public:
    IdealNetwork(std::string name, sim::EventQueue &queue,
                 const NetworkConfig &config);

  protected:
    bool route(const Message &msg) override;
};

/** The fabric choices exposed in configs and benches. */
enum class FabricKind
{
    PointToPoint,
    Hierarchical,
    Ideal,
};

/** Factory used by the system builder. */
std::unique_ptr<Network> makeNetwork(FabricKind kind, std::string name,
                                     sim::EventQueue &queue,
                                     const NetworkConfig &config);

} // namespace nova::noc

#endif // NOVA_NOC_NETWORK_HH
