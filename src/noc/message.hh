/**
 * @file
 * The graph-update message exchanged between processing elements.
 *
 * A message is <u, δ>: a destination vertex and an update for it
 * (Sec. II-A). The update is carried as raw 64-bit payload; the vertex
 * program interprets it.
 */

#ifndef NOVA_NOC_MESSAGE_HH
#define NOVA_NOC_MESSAGE_HH

#include <cstdint>

#include "graph/csr.hh"

namespace nova::noc
{

/** A vertex-update message in flight between PEs. */
struct Message
{
    /** Global id of the destination vertex (u). */
    graph::VertexId dstVertex = 0;
    /** The update (δ), interpreted by the vertex program. */
    std::uint64_t update = 0;
    /** Destination PE (global PE index). */
    std::uint32_t dstPe = 0;
    /** Source PE (global PE index). */
    std::uint32_t srcPe = 0;
};

} // namespace nova::noc

#endif // NOVA_NOC_MESSAGE_HH
