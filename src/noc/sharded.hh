/**
 * @file
 * The hierarchical fabric re-expressed per scheduler shard.
 *
 * Under the parallel scheduler every GPN is a shard with a private
 * event queue, so the single-queue HierarchicalNetwork cannot be used:
 * its inbound queues, credit pools, stages and statistics are all
 * shared mutable state. ShardedHierarchicalNetwork keeps every piece
 * of state inside the shard that touches it:
 *
 *  - intra-GPN links, the GPN's crossbar uplink and its downlink are
 *    stages on that shard's own queue;
 *  - inbound queues, intra-GPN credit pools, waiters and
 *    reorder-detection trackers belong to the destination shard;
 *  - cross-GPN flow control uses per-(source shard, destination GPN)
 *    channel credit pools owned by the *source* shard — the credit is
 *    returned by a cross-shard message posted when the destination
 *    pops the message, so quiescence (messagesInNetwork() == 0)
 *    implies every credit is home;
 *  - statistics accumulate in per-shard plain counters, folded into
 *    the base class's Scalar stats at quiescence (foldStats()).
 *
 * The only inter-shard interactions are ParallelScheduler mailbox
 * posts: a message leaving a crossbar uplink at tick t arrives at the
 * destination shard at t + port serialization + xbarLatency, and a
 * credit return travels back with the scheduler's lookahead delay —
 * both at least the lookahead, which is what makes the conservative
 * window sound (docs/PARALLEL.md derives the bound).
 *
 * Timing of the cross path is identical to HierarchicalNetwork's:
 * uplink port serialization + crossbar traversal, then downlink port
 * serialization + intra-GPN link latency.
 */

#ifndef NOVA_NOC_SHARDED_HH
#define NOVA_NOC_SHARDED_HH

#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "noc/network.hh"
#include "sim/parallel.hh"

namespace nova::noc
{

/** Hierarchical fabric over the parallel scheduler's shards. */
class ShardedHierarchicalNetwork : public Network
{
  public:
    ShardedHierarchicalNetwork(std::string name,
                               sim::ParallelScheduler &scheduler,
                               const NetworkConfig &config);

    /**
     * The minimum latency of any cross-shard interaction this fabric
     * generates: one tick of port serialization plus the crossbar
     * traversal. The scheduler's lookahead must not exceed this.
     */
    static Tick
    minCrossLookahead(const NetworkConfig &config)
    {
        return sim::tickAdd(config.xbarLatency, 1);
    }

    bool trySend(const Message &msg) override;
    void waitForSpace(std::uint32_t src_pe,
                      std::function<void()> retry) override;
    bool inboundEmpty(std::uint32_t pe) const override;
    std::size_t inboundSize(std::uint32_t pe) const override;
    Message popInbound(std::uint32_t pe) override;
    void setInboundNotify(std::uint32_t pe,
                          std::function<void()> fn) override;
    std::uint64_t messagesInNetwork() const override;

    /**
     * Fold the per-shard statistic deltas into the base Scalar stats.
     * Coordinator thread only, at quiescence; idempotent (each delta is
     * zeroed as it is added).
     */
    void foldStats();

    void saveState(sim::CheckpointWriter &w) const override;
    void restoreState(sim::CheckpointReader &r) override;

  protected:
    /** Unreachable: trySend is fully overridden. */
    [[noreturn]] bool route(const Message &msg) override;

  private:
    /**
     * A serializing pipe stage owned by one shard. Like
     * Network::Stage, but bound to the shard's queue and finishing
     * through an explicit exit closure (which for the uplink crosses
     * shards via the scheduler's mailboxes instead of scheduling
     * locally).
     */
    class ShardStage
    {
      public:
        using ExitFn =
            std::function<void(const Message &, Tick inject_tick,
                               Tick exit_tick)>;

        ShardStage(sim::EventQueue &queue, Tick serialization,
                   Tick latency, ExitFn on_exit,
                   std::function<void()> on_slot_freed)
            : q(queue), serTicks(serialization), latTicks(latency),
              exitFn(std::move(on_exit)),
              freedFn(std::move(on_slot_freed)),
              workEvent(queue, [this] { work(); })
        {
        }

        void
        push(Message msg, Tick inject_tick)
        {
            pending.push_back(Pending{msg, inject_tick});
            if (!workEvent.scheduled())
                workEvent.schedule(q.now());
        }

        std::size_t depth() const { return pending.size(); }

      private:
        void work();

        sim::EventQueue &q;
        Tick serTicks;
        Tick latTicks;
        ExitFn exitFn;
        std::function<void()> freedFn;
        struct Pending
        {
            Message msg;
            Tick injected;
        };
        std::deque<Pending> pending;
        sim::SelfEvent workEvent;
    };

    /** Per-shard statistic deltas (folded at quiescence). */
    struct StatDeltas
    {
        std::uint64_t messagesSent = 0;
        std::uint64_t selfMessages = 0;
        std::uint64_t crossGpnMessages = 0;
        std::uint64_t sendRejects = 0;
        std::uint64_t reorders = 0;
        std::uint64_t reroutes = 0;
        std::uint64_t rerouteRetries = 0;
        std::uint64_t rerouteDelayTicks = 0;
        double bytesSent = 0;
        double totalLatency = 0;
    };

    struct alignas(64) Shard
    {
        std::vector<std::deque<Message>> inbound;       ///< [localPe]
        std::vector<std::function<void()>> notify;      ///< [localPe]
        std::vector<std::uint32_t> intraCredits;        ///< [localDst]
        std::vector<std::uint32_t> channelCredits;      ///< [dstGpn]
        std::vector<std::pair<std::uint32_t, std::function<void()>>>
            waiters;
        std::uint64_t inFlight = 0;
        std::vector<Tick> lastInjectAt; ///< [localPe]
        StatDeltas d;
        std::vector<std::vector<std::unique_ptr<ShardStage>>> intra;
        std::unique_ptr<ShardStage> uplink;
        std::unique_ptr<ShardStage> downlink;
    };

    std::uint32_t localOf(std::uint32_t pe) const
    {
        return pe % cfg.pesPerGpn;
    }

    void deliverLocal(std::uint32_t shard_idx, const Message &msg,
                      Tick inject_tick);
    void wakeShardSenders(Shard &sh);

    sim::ParallelScheduler &sched;
    std::vector<std::unique_ptr<Shard>> shards;
};

} // namespace nova::noc

#endif // NOVA_NOC_SHARDED_HH
