#include "noc/sharded.hh"

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::noc
{

namespace
{

/** Depth bound of a stage's input queue before trySend backpressure
 *  (matches network.cc's stageCapacity). */
constexpr std::size_t stageCapacity = 64;

} // namespace

ShardedHierarchicalNetwork::ShardedHierarchicalNetwork(
    std::string name, sim::ParallelScheduler &scheduler,
    const NetworkConfig &config)
    : Network(std::move(name), scheduler.shard(0), config),
      sched(scheduler)
{
    const std::uint32_t num_gpns = cfg.numPes / cfg.pesPerGpn;
    NOVA_ASSERT(num_gpns == sched.numShards(),
                "sharded fabric needs one shard per GPN");
    NOVA_ASSERT(sched.lookahead() <= minCrossLookahead(cfg),
                "scheduler lookahead exceeds the crossbar's minimum "
                "cross-shard latency");
    NOVA_ASSERT(eventQueue().faultInjector() == nullptr,
                "the sharded fabric does not support fault injection");

    const Tick link_ser = serializationTicks(cfg.linkGBs);
    const Tick port_ser = serializationTicks(cfg.portGBs);

    shards.reserve(num_gpns);
    for (std::uint32_t g = 0; g < num_gpns; ++g) {
        shards.push_back(std::make_unique<Shard>());
        Shard &sh = *shards.back();
        sim::EventQueue &q = sched.shard(g);
        sh.inbound.resize(cfg.pesPerGpn);
        sh.notify.resize(cfg.pesPerGpn);
        sh.intraCredits.assign(cfg.pesPerGpn, cfg.creditsPerDst);
        sh.channelCredits.assign(num_gpns, cfg.creditsPerDst);
        sh.lastInjectAt.assign(cfg.pesPerGpn, 0);

        auto wake = [this, g] { wakeShardSenders(*shards[g]); };
        auto local_exit = [this, g](const Message &msg, Tick inject,
                                    Tick exit_tick) {
            // Exit delivery runs on the destination GPN's own queue:
            // stage g's pipeline is owned by shard g, so this never
            // crosses a shard boundary.
            // novalint: shard-local
            sched.shard(g).schedule(exit_tick, [this, g, msg, inject] {
                deliverLocal(g, msg, inject);
            });
        };

        sh.intra.resize(cfg.pesPerGpn);
        for (std::uint32_t s = 0; s < cfg.pesPerGpn; ++s) {
            sh.intra[s].resize(cfg.pesPerGpn);
            for (std::uint32_t d = 0; d < cfg.pesPerGpn; ++d)
                if (s != d)
                    sh.intra[s][d] = std::make_unique<ShardStage>(
                        q, link_ser, cfg.linkLatency, local_exit, wake);
        }

        // The uplink finishes across shards: a message leaves at
        // now + port_ser + xbarLatency >= now + lookahead, which is
        // exactly why the conservative window is sound.
        auto uplink_exit = [this, g](const Message &msg, Tick inject,
                                     Tick exit_tick) {
            const std::uint32_t dst = gpnOf(msg.dstPe);
            Tick when = exit_tick;
            if (needsReroute(msg)) {
                // Same deterministic dead-link penalty as the serial
                // fabric: exhaust the retry ladder, then cross via the
                // maintenance path. Flags mutate only at barriers, so
                // this read off the shard thread is race-free.
                const Tick wait = linkDownDelay();
                Shard &sh = *shards[g];
                ++sh.d.reroutes;
                sh.d.rerouteRetries += cfg.retryBackoffCap + 1;
                sh.d.rerouteDelayTicks += wait;
                when = sim::tickAdd(when, wait);
            }
            sched.postCross(g, dst, when, sim::defaultPriority,
                            [this, dst, msg, inject] {
                                shards[dst]->downlink->push(msg, inject);
                            });
        };
        sh.uplink = std::make_unique<ShardStage>(
            q, port_ser, cfg.xbarLatency, uplink_exit, wake);
        sh.downlink = std::make_unique<ShardStage>(
            q, port_ser, cfg.linkLatency, local_exit, wake);
    }
}

void
ShardedHierarchicalNetwork::ShardStage::work()
{
    if (pending.empty())
        return;
    Pending p = pending.front();
    pending.pop_front();
    const Tick done_ser = sim::tickAdd(q.now(), serTicks);
    exitFn(p.msg, p.injected, sim::tickAdd(done_ser, latTicks));
    if (!pending.empty())
        workEvent.schedule(done_ser);
    freedFn();
}

bool
ShardedHierarchicalNetwork::trySend(const Message &msg)
{
    NOVA_ASSERT(msg.dstPe < cfg.numPes && msg.srcPe < cfg.numPes);
    const std::uint32_t src_gpn = gpnOf(msg.srcPe);
    Shard &sh = *shards[src_gpn];
    sim::EventQueue &q = sched.shard(src_gpn);
    const Tick inject = q.now();

    if (msg.dstPe == msg.srcPe) {
        const std::uint32_t local = localOf(msg.dstPe);
        if (sh.intraCredits[local] == 0) {
            ++sh.d.sendRejects;
            return false;
        }
        --sh.intraCredits[local];
        ++sh.inFlight;
        ++sh.d.selfMessages;
        Message copy = msg;
        // Self-delivery on the sender's own shard queue (src == dst).
        // novalint: shard-local
        q.scheduleIn(cfg.selfLatency, [this, src_gpn, copy, inject] {
            deliverLocal(src_gpn, copy, inject);
        });
        return true;
    }

    if (gpnOf(msg.dstPe) == src_gpn) {
        const std::uint32_t local = localOf(msg.dstPe);
        if (sh.intraCredits[local] == 0) {
            ++sh.d.sendRejects;
            return false;
        }
        ShardStage &link =
            *sh.intra[localOf(msg.srcPe)][local];
        if (link.depth() >= stageCapacity) {
            ++sh.d.sendRejects;
            return false;
        }
        link.push(msg, inject);
        --sh.intraCredits[local];
        ++sh.inFlight;
        ++sh.d.messagesSent;
        sh.d.bytesSent += cfg.messageBytes;
        return true;
    }

    // Cross-GPN: flow-controlled by the source-owned channel pool.
    const std::uint32_t dst_gpn = gpnOf(msg.dstPe);
    if (sh.channelCredits[dst_gpn] == 0) {
        ++sh.d.sendRejects;
        return false;
    }
    if (sh.uplink->depth() >= stageCapacity) {
        ++sh.d.sendRejects;
        return false;
    }
    sh.uplink->push(msg, inject);
    --sh.channelCredits[dst_gpn];
    ++sh.inFlight;
    ++sh.d.messagesSent;
    ++sh.d.crossGpnMessages;
    sh.d.bytesSent += cfg.messageBytes;
    return true;
}

void
ShardedHierarchicalNetwork::waitForSpace(std::uint32_t src_pe,
                                         std::function<void()> retry)
{
    shards[gpnOf(src_pe)]->waiters.emplace_back(src_pe,
                                               std::move(retry));
}

bool
ShardedHierarchicalNetwork::inboundEmpty(std::uint32_t pe) const
{
    return shards[gpnOf(pe)]->inbound[localOf(pe)].empty();
}

std::size_t
ShardedHierarchicalNetwork::inboundSize(std::uint32_t pe) const
{
    return shards[gpnOf(pe)]->inbound[localOf(pe)].size();
}

Message
ShardedHierarchicalNetwork::popInbound(std::uint32_t pe)
{
    const std::uint32_t dst_gpn = gpnOf(pe);
    Shard &sh = *shards[dst_gpn];
    auto &q = sh.inbound[localOf(pe)];
    NOVA_ASSERT(!q.empty(), "popInbound on empty queue");
    Message msg = q.front();
    q.pop_front();

    if (gpnOf(msg.srcPe) == dst_gpn) {
        ++sh.intraCredits[localOf(pe)];
        --sh.inFlight;
        wakeShardSenders(sh);
    } else {
        // Return the channel credit to the source shard. The return
        // travels with the full lookahead delay, so the source keeps
        // the message in its in-flight count until the credit is home —
        // global quiescence therefore implies every pool is full again.
        const std::uint32_t src_gpn = gpnOf(msg.srcPe);
        const Tick when =
            sim::tickAdd(sched.shard(dst_gpn).now(), sched.lookahead());
        sched.postCross(
            dst_gpn, src_gpn, when, sim::defaultPriority,
            [this, src_gpn, dst_gpn] {
                Shard &src = *shards[src_gpn];
                ++src.channelCredits[dst_gpn];
                NOVA_ASSERT(src.inFlight > 0,
                            "credit return without an in-flight message");
                --src.inFlight;
                wakeShardSenders(src);
            });
    }
    return msg;
}

void
ShardedHierarchicalNetwork::setInboundNotify(std::uint32_t pe,
                                             std::function<void()> fn)
{
    shards[gpnOf(pe)]->notify[localOf(pe)] = std::move(fn);
}

std::uint64_t
ShardedHierarchicalNetwork::messagesInNetwork() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards)
        n += sh->inFlight;
    return n;
}

void
ShardedHierarchicalNetwork::deliverLocal(std::uint32_t shard_idx,
                                         const Message &msg,
                                         Tick inject_tick)
{
    Shard &sh = *shards[shard_idx];
    const std::uint32_t local = localOf(msg.dstPe);
    if (inject_tick < sh.lastInjectAt[local])
        ++sh.d.reorders;
    sh.lastInjectAt[local] = inject_tick;
    sh.d.totalLatency += static_cast<double>(
        sim::tickSub(sched.shard(shard_idx).now(), inject_tick));
    auto &q = sh.inbound[local];
    const bool was_empty = q.empty();
    q.push_back(msg);
    if (was_empty && sh.notify[local])
        sh.notify[local]();
}

void
ShardedHierarchicalNetwork::wakeShardSenders(Shard &sh)
{
    if (sh.waiters.empty())
        return;
    auto pending = std::move(sh.waiters);
    sh.waiters.clear();
    for (auto &[pe, retry] : pending)
        retry();
}

void
ShardedHierarchicalNetwork::foldStats()
{
    // Runs on the coordinator after quiescence; shard index order is
    // fixed, so this reduction's order is canonical by construction.
    // novalint: canonical-order
    for (auto &shp : shards) {
        StatDeltas &d = shp->d;
        messagesSent += static_cast<double>(d.messagesSent);
        selfMessages += static_cast<double>(d.selfMessages);
        crossGpnMessages += static_cast<double>(d.crossGpnMessages);
        sendRejects += static_cast<double>(d.sendRejects);
        reorders += static_cast<double>(d.reorders);
        reroutes += static_cast<double>(d.reroutes);
        rerouteRetries += static_cast<double>(d.rerouteRetries);
        bytesSent += d.bytesSent;
        totalLatency += d.totalLatency;
        rerouteDelayTicks += static_cast<double>(d.rerouteDelayTicks);
        d = StatDeltas{};
    }
}

bool
ShardedHierarchicalNetwork::route(const Message &msg)
{
    (void)msg;
    sim::panic("sharded fabric routes through trySend only");
}

void
ShardedHierarchicalNetwork::saveState(sim::CheckpointWriter &w) const
{
    std::vector<std::uint64_t> last(cfg.numPes, 0);
    for (std::uint32_t g = 0; g < shards.size(); ++g) {
        const Shard &sh = *shards[g];
        NOVA_ASSERT(sh.inFlight == 0 && sh.waiters.empty(),
                    "checkpointing network '", name(),
                    "' with messages in flight");
        NOVA_ASSERT(sh.d.messagesSent == 0 && sh.d.selfMessages == 0,
                    "checkpointing network '", name(),
                    "' with unfolded statistics (call foldStats())");
        for (std::uint32_t l = 0; l < cfg.pesPerGpn; ++l)
            last[g * cfg.pesPerGpn + l] = sh.lastInjectAt[l];
    }
    // Same key layout as the serial fabric so the reader code is shared.
    w.u64vec("lastInjectAt", last);
    sim::saveGroupStats(w, statistics());
}

void
ShardedHierarchicalNetwork::restoreState(sim::CheckpointReader &r)
{
    NOVA_ASSERT(messagesInNetwork() == 0, "restoring network '", name(),
                "' with messages in flight");
    const std::vector<std::uint64_t> last = r.u64vec("lastInjectAt");
    if (last.size() != cfg.numPes)
        sim::fatal("checkpoint PE count mismatch for '", name(), "'");
    for (std::uint32_t g = 0; g < shards.size(); ++g)
        for (std::uint32_t l = 0; l < cfg.pesPerGpn; ++l)
            shards[g]->lastInjectAt[l] = last[g * cfg.pesPerGpn + l];
    sim::restoreGroupStats(r, statistics());
}

} // namespace nova::noc
