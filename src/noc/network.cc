#include "noc/network.hh"

#include <cmath>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::noc
{

namespace
{

/** Depth bound of a stage's input queue before trySend backpressure. */
constexpr std::size_t stageCapacity = 64;

} // namespace

Network::Network(std::string name, sim::EventQueue &queue,
                 const NetworkConfig &config)
    : SimObject(std::move(name), queue), cfg(config),
      inbound(cfg.numPes), inboundNotify(cfg.numPes),
      credits(cfg.numPes, cfg.creditsPerDst), lastInjectAt(cfg.numPes, 0)
{
    NOVA_ASSERT(cfg.numPes > 0 && cfg.pesPerGpn > 0);
    NOVA_ASSERT(cfg.numPes % cfg.pesPerGpn == 0,
                "numPes must be a multiple of pesPerGpn");
    statistics().addScalar("messagesSent", &messagesSent);
    statistics().addScalar("bytesSent", &bytesSent);
    statistics().addScalar("selfMessages", &selfMessages);
    statistics().addScalar("crossGpnMessages", &crossGpnMessages);
    statistics().addScalar("totalLatency", &totalLatency);
    statistics().addScalar("sendRejects", &sendRejects);
    statistics().addScalar("flitsDropped", &flitsDropped);
    statistics().addScalar("flitsCorrupted", &flitsCorrupted);
    statistics().addScalar("flitsDuplicated", &flitsDuplicated);
    statistics().addScalar("retries", &retries);
    statistics().addScalar("retryBackoffTicks", &retryBackoffTicks);
    statistics().addScalar("duplicatesDiscarded", &duplicatesDiscarded);
    statistics().addScalar("reorders", &reorders);
    statistics().addScalar("reroutes", &reroutes);
    statistics().addScalar("rerouteRetries", &rerouteRetries);
    statistics().addScalar("rerouteDelayTicks", &rerouteDelayTicks);

    if (sim::FaultInjector *inj = queue.faultInjector()) {
        dropPoint = inj->registerPoint("noc.drop", this->name());
        corruptPoint = inj->registerPoint("noc.corrupt", this->name());
        dupPoint = inj->registerPoint("noc.dup", this->name());
    }
}

Tick
Network::serializationTicks(double gbps) const
{
    // bytes / (GB/s) in picoseconds: B / (B/ps).
    const double bytes_per_ps = gbps * 1e9 / 1e12;
    return std::max<Tick>(
        1, static_cast<Tick>(std::llround(
               static_cast<double>(cfg.messageBytes) / bytes_per_ps)));
}

bool
Network::trySend(const Message &msg)
{
    NOVA_ASSERT(msg.dstPe < cfg.numPes && msg.srcPe < cfg.numPes);
    if (credits[msg.dstPe] == 0) {
        ++sendRejects;
        return false;
    }

    const Tick inject = now();
    if (msg.dstPe == msg.srcPe) {
        --credits[msg.dstPe];
        ++inFlight;
        ++selfMessages;
        Message copy = msg;
        eventQueue().scheduleIn(cfg.selfLatency,
                                [this, copy, inject] {
                                    deliver(copy, inject);
                                });
        return true;
    }

    if (!route(msg)) {
        ++sendRejects;
        return false;
    }
    --credits[msg.dstPe];
    ++inFlight;
    ++messagesSent;
    bytesSent += cfg.messageBytes;
    if (gpnOf(msg.dstPe) != gpnOf(msg.srcPe))
        ++crossGpnMessages;
    return true;
}

void
Network::waitForSpace(std::uint32_t src_pe, std::function<void()> retry)
{
    waiters.emplace_back(src_pe, std::move(retry));
}

Message
Network::popInbound(std::uint32_t pe)
{
    NOVA_ASSERT(!inbound[pe].empty(), "popInbound on empty queue");
    Message msg = inbound[pe].front();
    inbound[pe].pop_front();
    ++credits[pe];
    --inFlight;
    wakeSenders();
    return msg;
}

void
Network::setLinkDown(std::uint32_t gpn)
{
    const std::uint32_t num_gpns = cfg.numPes / cfg.pesPerGpn;
    NOVA_ASSERT(gpn < num_gpns, "link-down target out of range");
    if (linkDownGpn.empty())
        linkDownGpn.assign(num_gpns, 0);
    linkDownGpn[gpn] = 1;
}

Tick
Network::linkDownDelay() const
{
    Tick wait = cfg.xbarLatency;
    for (std::uint32_t a = 0; a <= cfg.retryBackoffCap; ++a)
        wait = sim::tickAdd(wait,
                            sim::tickMul(cfg.retryTimeout, Tick(1) << a));
    return wait;
}

void
Network::deliver(const Message &msg, Tick inject_tick)
{
    if (needsReroute(msg)) {
        // The primary crossbar path is hard-down: the sender exhausts
        // the bounded retry ladder, then the flit crosses via the
        // maintenance path. Deterministic (no randomness), so faulted
        // runs stay replayable.
        const Tick wait = linkDownDelay();
        reroutes += 1;
        rerouteRetries += static_cast<double>(cfg.retryBackoffCap + 1);
        rerouteDelayTicks += static_cast<double>(wait);
        Message copy = msg;
        eventQueue().scheduleIn(wait, [this, copy, inject_tick] {
            deliverAttempt(copy, inject_tick, 0);
        });
        return;
    }
    deliverAttempt(msg, inject_tick, 0);
}

void
Network::deliverAttempt(const Message &msg, Tick inject_tick,
                        std::uint32_t attempt)
{
    // Fault injection at the single point every message funnels
    // through. A dropped flit (lost in transit, detected by the
    // sender's ack timeout) and a corrupted flit (CRC failure at the
    // receiver, nack'd) are both recovered by retransmitting the
    // original after an exponentially backed-off wait; the message
    // never leaves the in-flight accounting, so credits and quiescence
    // detection are unaffected.
    const bool dropped = dropPoint && dropPoint->fire();
    const bool corrupted = !dropped && corruptPoint && corruptPoint->fire();
    if (dropped || corrupted) {
        (dropped ? flitsDropped : flitsCorrupted) += 1;
        retries += 1;
        const std::uint32_t shift =
            attempt < cfg.retryBackoffCap ? attempt : cfg.retryBackoffCap;
        const Tick wait = sim::tickMul(cfg.retryTimeout, Tick(1) << shift);
        retryBackoffTicks += static_cast<double>(wait);
        Message copy = msg;
        eventQueue().scheduleIn(wait, [this, copy, inject_tick, attempt] {
            deliverAttempt(copy, inject_tick, attempt + 1);
        });
        return;
    }
    if (dupPoint && dupPoint->fire()) {
        // A spurious extra copy arrives one timeout later; the
        // receiver's sequence-number dedup discards it without touching
        // the inbound queue or credit accounting.
        flitsDuplicated += 1;
        eventQueue().scheduleIn(cfg.retryTimeout,
                                [this] { duplicatesDiscarded += 1; });
    }

    if (inject_tick < lastInjectAt[msg.dstPe])
        reorders += 1;
    lastInjectAt[msg.dstPe] = inject_tick;

    totalLatency += static_cast<double>(sim::tickSub(now(), inject_tick));
    auto &q = inbound[msg.dstPe];
    const bool was_empty = q.empty();
    q.push_back(msg);
    if (was_empty && inboundNotify[msg.dstPe])
        inboundNotify[msg.dstPe]();
}

void
Network::saveState(sim::CheckpointWriter &w) const
{
    NOVA_ASSERT(inFlight == 0 && waiters.empty(),
                "checkpointing network '", name(),
                "' with messages in flight");
    w.u64vec("lastInjectAt",
             std::vector<std::uint64_t>(lastInjectAt.begin(),
                                        lastInjectAt.end()));
    sim::saveGroupStats(w, statistics());
}

void
Network::restoreState(sim::CheckpointReader &r)
{
    NOVA_ASSERT(inFlight == 0, "restoring network '", name(),
                "' with messages in flight");
    const std::vector<std::uint64_t> last = r.u64vec("lastInjectAt");
    if (last.size() != lastInjectAt.size())
        sim::fatal("checkpoint PE count mismatch for '", name(), "'");
    for (std::size_t i = 0; i < last.size(); ++i)
        lastInjectAt[i] = last[i];
    sim::restoreGroupStats(r, statistics());
}

void
Network::onStageExit(Stage &stage, const Message &msg, Tick inject_tick)
{
    (void)stage;
    deliver(msg, inject_tick);
}

void
Network::wakeSenders()
{
    if (waiters.empty())
        return;
    auto pending = std::move(waiters);
    waiters.clear();
    for (auto &[pe, retry] : pending)
        retry();
}

Network::Stage::Stage(Network &owner, Tick serialization, Tick latency)
    : net(owner), serTicks(serialization), latTicks(latency),
      workEvent(owner.eventQueue(), [this] { work(); })
{
}

void
Network::Stage::push(Message msg, Tick inject_tick)
{
    q.push_back(Pending{msg, inject_tick});
    if (!workEvent.scheduled())
        workEvent.schedule(net.now());
}

void
Network::Stage::work()
{
    if (q.empty())
        return;
    Pending p = q.front();
    q.pop_front();

    const Tick done_ser = sim::tickAdd(net.now(), serTicks);
    net.eventQueue().schedule(sim::tickAdd(done_ser, latTicks), [this, p] {
        net.onStageExit(*this, p.msg, p.injected);
    });
    if (!q.empty())
        workEvent.schedule(done_ser);
    net.wakeSendersFromStage();
}

PePointToPointNetwork::PePointToPointNetwork(std::string name,
                                             sim::EventQueue &queue,
                                             const NetworkConfig &config)
    : Network(std::move(name), queue, config)
{
    NOVA_ASSERT(cfg.numPes == cfg.pesPerGpn,
                "point-to-point fabric models a single GPN");
    const Tick ser = serializationTicks(cfg.linkGBs);
    links.resize(cfg.numPes);
    for (std::uint32_t s = 0; s < cfg.numPes; ++s) {
        links[s].resize(cfg.numPes);
        for (std::uint32_t d = 0; d < cfg.numPes; ++d)
            if (s != d)
                links[s][d] = std::make_unique<Stage>(*this, ser,
                                                      cfg.linkLatency);
    }
}

bool
PePointToPointNetwork::route(const Message &msg)
{
    Stage &link = *links[msg.srcPe][msg.dstPe];
    if (link.depth() >= stageCapacity)
        return false;
    link.push(msg, now());
    return true;
}

HierarchicalNetwork::HierarchicalNetwork(std::string name,
                                         sim::EventQueue &queue,
                                         const NetworkConfig &config)
    : Network(std::move(name), queue, config)
{
    const std::uint32_t num_gpns = cfg.numPes / cfg.pesPerGpn;
    const Tick link_ser = serializationTicks(cfg.linkGBs);
    const Tick port_ser = serializationTicks(cfg.portGBs);

    intraLinks.resize(cfg.numPes);
    for (std::uint32_t s = 0; s < cfg.numPes; ++s) {
        intraLinks[s].resize(cfg.pesPerGpn);
        for (std::uint32_t d = 0; d < cfg.pesPerGpn; ++d) {
            const std::uint32_t dst_pe = gpnOf(s) * cfg.pesPerGpn + d;
            if (dst_pe != s)
                intraLinks[s][d] = std::make_unique<Stage>(
                    *this, link_ser, cfg.linkLatency);
        }
    }
    for (std::uint32_t g = 0; g < num_gpns; ++g) {
        uplinks.push_back(std::make_unique<Stage>(*this, port_ser,
                                                  cfg.xbarLatency));
        downlinks.push_back(std::make_unique<Stage>(
            *this, port_ser, cfg.linkLatency));
    }
}

bool
HierarchicalNetwork::route(const Message &msg)
{
    if (gpnOf(msg.srcPe) == gpnOf(msg.dstPe)) {
        Stage &link =
            *intraLinks[msg.srcPe][msg.dstPe % cfg.pesPerGpn];
        if (link.depth() >= stageCapacity)
            return false;
        link.push(msg, now());
        return true;
    }
    Stage &up = *uplinks[gpnOf(msg.srcPe)];
    if (up.depth() >= stageCapacity)
        return false;
    up.push(msg, now());
    return true;
}

void
HierarchicalNetwork::onStageExit(Stage &stage, const Message &msg,
                                 Tick inject_tick)
{
    // Messages leaving an uplink hop onto the destination GPN's
    // downlink port; everything else has arrived.
    for (std::size_t g = 0; g < uplinks.size(); ++g) {
        if (&stage == uplinks[g].get()) {
            downlinks[gpnOf(msg.dstPe)]->push(msg, inject_tick);
            return;
        }
    }
    deliver(msg, inject_tick);
}

IdealNetwork::IdealNetwork(std::string name, sim::EventQueue &queue,
                           const NetworkConfig &config)
    : Network(std::move(name), queue, config)
{
}

bool
IdealNetwork::route(const Message &msg)
{
    const Tick inject = now();
    Message copy = msg;
    eventQueue().scheduleIn(cfg.linkLatency, [this, copy, inject] {
        deliver(copy, inject);
    });
    return true;
}

std::unique_ptr<Network>
makeNetwork(FabricKind kind, std::string name, sim::EventQueue &queue,
            const NetworkConfig &config)
{
    switch (kind) {
      case FabricKind::PointToPoint:
        return std::make_unique<PePointToPointNetwork>(std::move(name),
                                                       queue, config);
      case FabricKind::Hierarchical:
        return std::make_unique<HierarchicalNetwork>(std::move(name),
                                                     queue, config);
      case FabricKind::Ideal:
        return std::make_unique<IdealNetwork>(std::move(name), queue,
                                              config);
    }
    sim::panic("unknown fabric kind");
}

} // namespace nova::noc
