/**
 * @file
 * The differential runner: every fuzzed graph is executed by the NOVA
 * cycle model, the PolyGraph baseline and the Ligra-like software
 * engine, and each result is compared per vertex against the
 * sequential references in workloads/reference.hh — exact for the
 * traversal workloads (BFS, SSSP, CC), epsilon-tolerant for PageRank.
 *
 * A divergence is reported together with a replay token (replay.hh)
 * that re-runs exactly the failing (seed, iteration, algorithm,
 * engine, fault) combination. Fault injection deliberately corrupts
 * one reduction so the harness can prove it detects — and replays —
 * real bugs.
 */

#ifndef NOVA_VERIFY_DIFFERENTIAL_HH
#define NOVA_VERIFY_DIFFERENTIAL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "verify/fuzz.hh"

namespace nova::verify
{

/** The workloads the differential harness cross-checks. */
enum class Algo : std::uint32_t
{
    Bfs,
    Sssp,
    Cc,
    Pr,
};

/** The engines under test. */
enum class EngineKind : std::uint32_t
{
    Nova,
    PolyGraph,
    Ligra,
};

/** Short stable name ("bfs", ...); used in tokens and CLI flags. */
const char *algoName(Algo a);
const char *engineKindName(EngineKind e);

/** Parse a name back; returns false on unknown input. */
bool algoFromName(const std::string &name, Algo &out);
bool engineKindFromName(const std::string &name, EngineKind &out);

/**
 * A deliberately corrupted reduction: after `afterReduces` calls, one
 * reduce result is XORed with `xorMask`. Applied to the engine under
 * test (never to the reference), so every injected fault must surface
 * as a divergence.
 */
struct FaultSpec
{
    bool enabled = false;
    /** Index of the corrupted reduce call within one engine run. */
    std::uint64_t afterReduces = 0;
    /** Bits flipped into that call's result. */
    std::uint64_t xorMask = 1;
    /**
     * Recovered mode: the corruption is detected (the FU result
     * checksum model) and the good value recomputed, so results must
     * still match the reference and the recovery is counted instead.
     * This is the engine-agnostic fault path — it exercises recovery on
     * PolyGraph and Ligra, which have no event-driven hardware model.
     */
    bool recover = false;
};

/** Options of a differential run. */
struct DiffOptions
{
    std::vector<Algo> algos = {Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr};
    std::vector<EngineKind> engines = {EngineKind::Nova,
                                       EngineKind::PolyGraph,
                                       EngineKind::Ligra};
    FuzzerConfig fuzzer;
    FaultSpec fault;
    /**
     * Hardware fault schedule (sim/fault.hh grammar) armed inside the
     * NOVA engine. The fault seed is derived deterministically from
     * (seed, index), so recovered runs replay bit-exactly. Engines
     * without a hardware model (PolyGraph, Ligra) ignore it; use
     * FaultSpec::recover to fault those.
     */
    std::string faultSchedule;
    /**
     * Run every NOVA case twice — once per event-queue backend (legacy
     * binary heap, calendar queue) — and require bit-identical run
     * records. Proves the queue fast path preserves event order on
     * whatever the fuzzer generates.
     */
    bool crossCheckQueueImpls = false;
    /**
     * When nonzero, additionally run every NOVA case on the sharded
     * parallel scheduler (core::NovaConfig::threads) under
     * deterministic merge, sweeping {legacy heap, calendar} x
     * {1, crossCheckSchedThreads} host threads. All four run records
     * must be bit-identical to each other and agree with the
     * reference. Skipped when fault injection is active: corrupted
     * reductions depend on global reduce-call order, which the sharded
     * model does not reproduce.
     */
    std::uint32_t crossCheckSchedThreads = 0;
    /** PageRank comparison tolerance: |got - want| <= abs + rel*want. */
    double prAbsTol = 1e-9;
    double prRelTol = 1e-6;
    /** Mismatching vertices listed per divergence before truncation. */
    std::uint32_t maxReportedVertices = 4;
};

/** One engine × algorithm disagreement with the reference. */
struct Divergence
{
    Algo algo = Algo::Bfs;
    EngineKind engine = EngineKind::Nova;
    /** First mismatching vertices as "v: got G want W" fragments. */
    std::string detail;
    /** Token reproducing exactly this run (see replay.hh). */
    std::string replayToken;
};

/**
 * The determinism record of one engine × algorithm run: a content hash
 * of the final properties folded with the engine's event-order
 * fingerprint (when it has one), plus the number of faults the run
 * detected and recovered from. Two replays of the same token must
 * produce identical records bit for bit.
 */
struct RunRecord
{
    Algo algo = Algo::Bfs;
    EngineKind engine = EngineKind::Nova;
    std::uint64_t fingerprint = 0;
    std::uint64_t recoveries = 0;
};

/** The outcome of one fuzz case across all engines and algorithms. */
struct CaseOutcome
{
    std::uint64_t seed = 0;
    std::uint64_t index = 0;
    std::string graphDescription;
    /** Engine × algorithm runs executed for this case. */
    std::uint64_t runsExecuted = 0;
    std::vector<Divergence> divergences;
    /** One record per executed run, in execution order. */
    std::vector<RunRecord> runs;

    bool ok() const { return divergences.empty(); }
};

/** Aggregate of a fuzz campaign. */
struct FuzzSummary
{
    std::uint64_t casesRun = 0;
    std::uint64_t runsExecuted = 0;
    std::vector<CaseOutcome> failures;

    bool ok() const { return failures.empty(); }
};

/** Run the `index`-th case of stream `seed` across the full matrix. */
CaseOutcome runCase(std::uint64_t seed, std::uint64_t index,
                    const DiffOptions &opt);

/**
 * Run `iterations` cases of stream `seed`; `onCase` (optional) fires
 * after each case, e.g. for progress reporting.
 */
FuzzSummary
runFuzz(std::uint64_t seed, std::uint64_t iterations,
        const DiffOptions &opt,
        const std::function<void(const CaseOutcome &)> &onCase = {});

} // namespace nova::verify

#endif // NOVA_VERIFY_DIFFERENTIAL_HH
