#include "verify/replay.hh"

#include <charconv>
#include <cstdio>
#include <vector>

#include "sim/fault.hh"

namespace nova::verify
{

namespace
{

constexpr const char *tokenVersion = "NV1";

std::string
hex(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Split on '.'; tokens never contain empty fields. */
std::vector<std::string>
splitFields(const std::string &token)
{
    std::vector<std::string> fields;
    std::size_t pos = 0;
    while (pos <= token.size()) {
        const std::size_t dot = token.find('.', pos);
        if (dot == std::string::npos) {
            fields.push_back(token.substr(pos));
            break;
        }
        fields.push_back(token.substr(pos, dot - pos));
        pos = dot + 1;
    }
    return fields;
}

bool
parseU64(const std::string &s, int base, std::uint64_t &out)
{
    if (s.empty())
        return false;
    const auto [ptr, ec] =
        std::from_chars(s.data(), s.data() + s.size(), out, base);
    return ec == std::errc() && ptr == s.data() + s.size();
}

/** Parse "<key><number>" (e.g. "s1f" with key 's', base 16). */
bool
parseKeyed(const std::string &field, char key, int base,
           std::uint64_t &out)
{
    if (field.size() < 2 || field[0] != key)
        return false;
    return parseU64(field.substr(1), base, out);
}

} // namespace

std::string
encodeReplayToken(const ReplayCase &c)
{
    std::string token = std::string(tokenVersion) + ".s" + hex(c.seed) +
                        ".i" + std::to_string(c.index) + "." +
                        algoName(c.algo) + "." +
                        engineKindName(c.engine) + ".v" +
                        std::to_string(c.fuzzer.maxVertices) + ".e" +
                        std::to_string(c.fuzzer.maxEdges);
    if (c.fault.enabled)
        token += (c.fault.recover ? ".r" : ".f") +
                 std::to_string(c.fault.afterReduces) + "x" +
                 hex(c.fault.xorMask);
    if (!c.faultSchedule.empty())
        token += ".S" + c.faultSchedule;
    return token;
}

bool
parseReplayToken(const std::string &token, ReplayCase &out)
{
    // The schedule suffix may contain dots, so split it off first: the
    // encoder always appends it last, and no other field starts 'S'.
    std::string head = token;
    std::string schedule;
    const std::size_t sched = token.find(".S");
    if (sched != std::string::npos) {
        schedule = token.substr(sched + 2);
        head = token.substr(0, sched);
        if (schedule.empty() ||
            !sim::FaultInjector::validateSchedule(schedule).empty())
            return false;
    }

    const std::vector<std::string> fields = splitFields(head);
    if (fields.size() != 7 && fields.size() != 8)
        return false;
    if (fields[0] != tokenVersion)
        return false;

    ReplayCase c;
    std::uint64_t v = 0;
    if (!parseKeyed(fields[1], 's', 16, c.seed))
        return false;
    if (!parseKeyed(fields[2], 'i', 10, c.index))
        return false;
    if (!algoFromName(fields[3], c.algo))
        return false;
    if (!engineKindFromName(fields[4], c.engine))
        return false;
    if (!parseKeyed(fields[5], 'v', 10, v))
        return false;
    c.fuzzer.maxVertices = static_cast<graph::VertexId>(v);
    if (!parseKeyed(fields[6], 'e', 10, c.fuzzer.maxEdges))
        return false;

    if (fields.size() == 8) {
        // "f<afterReduces>x<xorMask:hex>" or the recovered "r..." form.
        const std::string &f = fields[7];
        const std::size_t x = f.find('x');
        if (f.size() < 4 || (f[0] != 'f' && f[0] != 'r') ||
            x == std::string::npos || x < 2 || x + 1 >= f.size())
            return false;
        if (!parseU64(f.substr(1, x - 1), 10, c.fault.afterReduces))
            return false;
        if (!parseU64(f.substr(x + 1), 16, c.fault.xorMask))
            return false;
        c.fault.enabled = true;
        c.fault.recover = f[0] == 'r';
    }

    c.faultSchedule = std::move(schedule);
    out = c;
    return true;
}

std::string
replayCommand(const ReplayCase &c)
{
    return "nova_cli verify --replay=" + encodeReplayToken(c);
}

CaseOutcome
replayCase(const ReplayCase &c)
{
    DiffOptions opt;
    opt.algos = {c.algo};
    opt.engines = {c.engine};
    opt.fuzzer = c.fuzzer;
    opt.fault = c.fault;
    opt.faultSchedule = c.faultSchedule;
    return runCase(c.seed, c.index, opt);
}

} // namespace nova::verify
