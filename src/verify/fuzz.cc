#include "verify/fuzz.hh"

#include <algorithm>
#include <iterator>

#include "graph/generators.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace nova::verify
{

using graph::Csr;
using graph::Edge;
using graph::EdgeId;
using graph::EdgeList;
using graph::VertexId;
using graph::Weight;
using sim::Rng;

const char *
familyName(GraphFamily f)
{
    switch (f) {
      case GraphFamily::Rmat:
        return "rmat";
      case GraphFamily::Uniform:
        return "uniform";
      case GraphFamily::RoadGrid:
        return "roadgrid";
      case GraphFamily::Path:
        return "path";
      case GraphFamily::Star:
        return "star";
      case GraphFamily::Cycle:
        return "cycle";
      case GraphFamily::Complete:
        return "complete";
      case GraphFamily::NoEdges:
        return "noedges";
      case GraphFamily::SingleVertex:
        return "singlevertex";
      case GraphFamily::SelfLoops:
        return "selfloops";
      case GraphFamily::Disconnected:
        return "disconnected";
      case GraphFamily::ZeroWeight:
        return "zeroweight";
      case GraphFamily::MaxWeight:
        return "maxweight";
    }
    return "?";
}

namespace
{

/**
 * Case-local generator: scramble the index splitmix-style so nearby
 * iterations of one stream are decorrelated, then fold in the seed.
 */
Rng
caseRng(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t x = index + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return Rng(seed ^ (x ^ (x >> 31)));
}

/** Sample an edge count that keeps tiny graphs sparse-ish. */
EdgeId
sampleEdges(Rng &rng, VertexId v, EdgeId max_edges)
{
    const EdgeId cap = std::min<EdgeId>(
        max_edges, static_cast<EdgeId>(v) * std::min<VertexId>(v, 16));
    return cap == 0 ? 0 : rng.nextRange(1, cap);
}

/** Random weighted edge inside [lo, lo + n). */
Edge
randomEdgeIn(Rng &rng, VertexId lo, VertexId n, Weight max_weight)
{
    const auto u = lo + static_cast<VertexId>(rng.nextBounded(n));
    const auto v = lo + static_cast<VertexId>(rng.nextBounded(n));
    const Weight w =
        max_weight <= 1 ? 1
                        : static_cast<Weight>(rng.nextRange(1, max_weight));
    return {u, v, w};
}

void
makeUniformBlob(Rng &rng, VertexId lo, VertexId n, EdgeId e,
                Weight max_weight, EdgeList &list)
{
    for (EdgeId i = 0; i < e; ++i) {
        Edge edge = randomEdgeIn(rng, lo, n, max_weight);
        if (edge.src == edge.dst)
            continue; // slight undershoot is fine
        list.edges.push_back(edge);
    }
}

} // namespace

FuzzedGraph
fuzzCase(std::uint64_t seed, std::uint64_t index, const FuzzerConfig &cfg)
{
    NOVA_ASSERT(cfg.maxVertices >= 8, "fuzzer needs maxVertices >= 8");
    NOVA_ASSERT(cfg.maxEdges >= 16, "fuzzer needs maxEdges >= 16");
    Rng rng = caseRng(seed, index);

    // Draw the family: degenerate shapes with the configured
    // probability, the generator/regular families otherwise.
    GraphFamily family;
    if (rng.nextBool(cfg.degenerateProbability)) {
        constexpr GraphFamily degenerate[] = {
            GraphFamily::NoEdges,      GraphFamily::SingleVertex,
            GraphFamily::SelfLoops,    GraphFamily::Disconnected,
            GraphFamily::ZeroWeight,   GraphFamily::MaxWeight,
        };
        family = degenerate[rng.nextBounded(std::size(degenerate))];
    } else {
        constexpr GraphFamily regular[] = {
            GraphFamily::Rmat, GraphFamily::Uniform,
            GraphFamily::RoadGrid, GraphFamily::Path,
            GraphFamily::Star, GraphFamily::Cycle,
            GraphFamily::Complete,
        };
        family = regular[rng.nextBounded(std::size(regular))];
    }

    // Half of all cases are weighted with a small range (conflict-heavy
    // SSSP), the rest unweighted (weight 1 everywhere).
    const Weight wmax =
        rng.nextBool(0.5) ? static_cast<Weight>(rng.nextRange(2, 255)) : 1;
    const std::uint64_t sub_seed = rng.next();

    FuzzedGraph out;
    out.family = family;
    Csr g;

    switch (family) {
      case GraphFamily::Rmat: {
        graph::RmatParams p;
        p.numVertices =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices));
        p.numEdges = sampleEdges(rng, p.numVertices, cfg.maxEdges);
        p.maxWeight = wmax;
        p.seed = sub_seed;
        // Jitter the quadrant skew around the Graph500 defaults.
        p.a = 0.45 + 0.2 * rng.nextDouble();
        p.b = p.c = (1.0 - p.a) / 2.0 - 0.05;
        g = graph::generateRmat(p);
        break;
      }
      case GraphFamily::Uniform: {
        graph::UniformParams p;
        p.numVertices =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices));
        p.numEdges = sampleEdges(rng, p.numVertices, cfg.maxEdges);
        p.maxWeight = wmax;
        p.seed = sub_seed;
        g = graph::generateUniform(p);
        break;
      }
      case GraphFamily::RoadGrid: {
        graph::RoadGridParams p;
        const auto side = static_cast<VertexId>(std::max<std::uint64_t>(
            2, rng.nextRange(2, std::min<VertexId>(16, cfg.maxVertices / 4))));
        p.width = side;
        p.height =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / side));
        p.dropFraction = 0.3 * rng.nextDouble();
        p.highwayFraction = 0.02 * rng.nextDouble();
        p.maxWeight = wmax;
        p.seed = sub_seed;
        g = graph::generateRoadGrid(p);
        break;
      }
      case GraphFamily::Path:
        g = graph::generatePath(
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices)), 1);
        if (wmax > 1)
            g = graph::withRandomWeights(g, wmax, sub_seed);
        break;
      case GraphFamily::Star:
        g = graph::generateStar(
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices)));
        if (wmax > 1)
            g = graph::withRandomWeights(g, wmax, sub_seed);
        break;
      case GraphFamily::Cycle:
        g = graph::generateCycle(
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices)));
        if (wmax > 1)
            g = graph::withRandomWeights(g, wmax, sub_seed);
        break;
      case GraphFamily::Complete:
        g = graph::generateComplete(
            static_cast<VertexId>(rng.nextRange(2, 24)));
        if (wmax > 1)
            g = graph::withRandomWeights(g, wmax, sub_seed);
        break;
      case GraphFamily::NoEdges: {
        EdgeList list;
        list.numVertices = static_cast<VertexId>(rng.nextRange(1, 8));
        g = graph::buildCsr(list);
        break;
      }
      case GraphFamily::SingleVertex: {
        EdgeList list;
        list.numVertices = 1;
        if (rng.nextBool(0.5))
            list.edges.push_back({0, 0, wmax});
        g = graph::buildCsr(list);
        break;
      }
      case GraphFamily::SelfLoops: {
        EdgeList list;
        list.numVertices =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / 2));
        const EdgeId e =
            sampleEdges(rng, list.numVertices, cfg.maxEdges / 2);
        makeUniformBlob(rng, 0, list.numVertices, e, wmax, list);
        // Every vertex gets a self loop with p=0.3; force at least one.
        for (VertexId v = 0; v < list.numVertices; ++v)
            if (rng.nextBool(0.3))
                list.edges.push_back({v, v, wmax});
        list.edges.push_back({0, 0, wmax});
        g = graph::buildCsr(list);
        break;
      }
      case GraphFamily::Disconnected: {
        // Two islands plus trailing isolated vertices; no cross edges.
        EdgeList list;
        const auto n1 =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / 4));
        const auto n2 =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / 4));
        const auto isolated = static_cast<VertexId>(rng.nextRange(0, 6));
        list.numVertices = n1 + n2 + isolated;
        makeUniformBlob(rng, 0, n1, sampleEdges(rng, n1, cfg.maxEdges / 2),
                        wmax, list);
        makeUniformBlob(rng, n1, n2,
                        sampleEdges(rng, n2, cfg.maxEdges / 2), wmax, list);
        g = graph::buildCsr(list);
        break;
      }
      case GraphFamily::ZeroWeight: {
        graph::UniformParams p;
        p.numVertices =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / 2));
        p.numEdges = sampleEdges(rng, p.numVertices, cfg.maxEdges / 2);
        p.maxWeight = std::max<Weight>(wmax, 2);
        p.seed = sub_seed;
        const Csr base = graph::generateUniform(p);
        // Zero out a third of the weights: zero-weight edges stress
        // the "update equals state" activation edge case.
        std::vector<Weight> w = base.weights();
        for (auto &weight : w)
            if (rng.nextBool(1.0 / 3.0))
                weight = 0;
        g = Csr(base.rowPtr(), base.dests(), std::move(w));
        break;
      }
      case GraphFamily::MaxWeight: {
        graph::UniformParams p;
        p.numVertices =
            static_cast<VertexId>(rng.nextRange(2, cfg.maxVertices / 2));
        p.numEdges = sampleEdges(rng, p.numVertices, cfg.maxEdges / 2);
        p.maxWeight = 2;
        p.seed = sub_seed;
        const Csr base = graph::generateUniform(p);
        // Saturate every weight: exercises 64-bit distance headroom.
        std::vector<Weight> w(base.numEdges(),
                              ~static_cast<Weight>(0));
        g = Csr(base.rowPtr(), base.dests(), std::move(w));
        break;
      }
    }

    out.source = g.numVertices() <= 1
                     ? 0
                     : static_cast<VertexId>(
                           rng.nextBounded(g.numVertices()));
    out.description =
        std::string(familyName(family)) +
        " V=" + std::to_string(g.numVertices()) +
        " E=" + std::to_string(g.numEdges()) +
        " wmax=" + std::to_string(wmax) +
        " src=" + std::to_string(out.source);
    out.graph = std::move(g);
    return out;
}

} // namespace nova::verify
