/**
 * @file
 * Deterministic replay tokens.
 *
 * A token is a single shell-safe word that pins down everything a
 * failing differential run depends on: the fuzz stream seed, the case
 * index, the algorithm, the engine, the fuzzer bounds and any injected
 * fault. Because every layer underneath (graph generation, vertex
 * mapping, the event queue, all model Rngs) is seed-deterministic,
 * `nova_cli verify --replay=<token>` reproduces the original run bit
 * for bit.
 *
 * Format (version 1, all integers in their natural base):
 *   NV1.s<seed:hex>.i<index>.<algo>.<engine>.v<maxV>.e<maxE>
 *       [.f<afterReduces>x<xorMask:hex> | .r<afterReduces>x<xorMask:hex>]
 *       [.S<fault-schedule>]
 *
 * 'f' is an unrecovered reduce corruption (must diverge), 'r' the
 * recovered variant (must NOT diverge, counts a recovery). The '.S'
 * suffix carries a hardware fault schedule (sim/fault.hh grammar)
 * verbatim; it is always the last field and may itself contain dots,
 * so parsing splits it off at the first ".S" occurrence.
 */

#ifndef NOVA_VERIFY_REPLAY_HH
#define NOVA_VERIFY_REPLAY_HH

#include <string>

#include "verify/differential.hh"

namespace nova::verify
{

/** Everything needed to re-run one engine × algorithm fuzz run. */
struct ReplayCase
{
    std::uint64_t seed = 0;
    std::uint64_t index = 0;
    Algo algo = Algo::Bfs;
    EngineKind engine = EngineKind::Nova;
    FuzzerConfig fuzzer;
    FaultSpec fault;
    /** Hardware fault schedule armed in the NOVA engine (may be empty). */
    std::string faultSchedule;
};

/** Serialize to the one-word token. */
std::string encodeReplayToken(const ReplayCase &c);

/** Parse a token; returns false (out untouched) on malformed input. */
bool parseReplayToken(const std::string &token, ReplayCase &out);

/** The full one-line repro command for a failing run. */
std::string replayCommand(const ReplayCase &c);

/**
 * Execute exactly the run a token describes (one engine, one
 * algorithm, same fuzzed graph, same fault).
 */
CaseOutcome replayCase(const ReplayCase &c);

} // namespace nova::verify

#endif // NOVA_VERIFY_REPLAY_HH
