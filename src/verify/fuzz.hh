/**
 * @file
 * The graph fuzzer behind the differential verification harness.
 *
 * Each fuzz case is a pure function of (seed, index): the fuzzer draws
 * a structural family — the paper's generator families (RMAT, uniform
 * random, road grid) plus deliberately degenerate shapes (no edges,
 * single vertex, self loops, disconnected components, zero- and
 * max-weight edges) — then samples its parameters and a traversal
 * source from a case-local Rng. Random access by index means a failing
 * iteration replays without regenerating its predecessors; see
 * docs/VERIFICATION.md.
 */

#ifndef NOVA_VERIFY_FUZZ_HH
#define NOVA_VERIFY_FUZZ_HH

#include <cstdint>
#include <string>

#include "graph/csr.hh"

namespace nova::verify
{

/** The structural family a fuzzed graph is drawn from. */
enum class GraphFamily : std::uint32_t
{
    /** @{ @name Generator-backed families (paper inputs, Sec. V) */
    Rmat,
    Uniform,
    RoadGrid,
    /** @} */
    /** @{ @name Regular shapes */
    Path,
    Star,
    Cycle,
    Complete,
    /** @} */
    /** @{ @name Degenerate / adversarial shapes */
    NoEdges,
    SingleVertex,
    SelfLoops,
    Disconnected,
    ZeroWeight,
    MaxWeight,
    /** @} */
};

/** Number of GraphFamily values (for sampling and iteration). */
constexpr std::uint32_t numGraphFamilies = 13;

/** Short stable name ("rmat", "noedges", ...). */
const char *familyName(GraphFamily f);

/** Bounds on the sampled graphs. */
struct FuzzerConfig
{
    /** Upper bound (inclusive) on vertices of a sampled graph. */
    graph::VertexId maxVertices = 256;
    /** Upper bound (inclusive) on edges of a sampled graph. */
    graph::EdgeId maxEdges = 2048;
    /** Probability of drawing a degenerate family over a generator. */
    double degenerateProbability = 0.4;
};

/** One fuzzed differential-test input. */
struct FuzzedGraph
{
    GraphFamily family = GraphFamily::Rmat;
    /** Human-readable parameters ("rmat V=64 E=512 wmax=31 src=3"). */
    std::string description;
    /** The sampled graph (directed; CC symmetrizes it itself). */
    graph::Csr graph;
    /** Sampled traversal source, < numVertices (0 when V == 1). */
    graph::VertexId source = 0;
};

/**
 * Generate the `index`-th fuzz case of stream `seed`. Deterministic and
 * randomly accessible: equal (seed, index, cfg) always produce the
 * identical graph, bit for bit.
 */
FuzzedGraph fuzzCase(std::uint64_t seed, std::uint64_t index,
                     const FuzzerConfig &cfg = {});

} // namespace nova::verify

#endif // NOVA_VERIFY_FUZZ_HH
