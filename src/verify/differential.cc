#include "verify/differential.hh"

#include <cmath>
#include <memory>

#include "baselines/ligra.hh"
#include "baselines/polygraph.hh"
#include "core/system.hh"
#include "graph/partition.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "verify/replay.hh"
#include "workloads/programs.hh"
#include "workloads/reference.hh"

namespace nova::verify
{

using graph::VertexId;
using workloads::GraphEngine;
using workloads::RunResult;
using workloads::VertexProgram;

const char *
algoName(Algo a)
{
    switch (a) {
      case Algo::Bfs:
        return "bfs";
      case Algo::Sssp:
        return "sssp";
      case Algo::Cc:
        return "cc";
      case Algo::Pr:
        return "pr";
    }
    return "?";
}

const char *
engineKindName(EngineKind e)
{
    switch (e) {
      case EngineKind::Nova:
        return "nova";
      case EngineKind::PolyGraph:
        return "polygraph";
      case EngineKind::Ligra:
        return "ligra";
    }
    return "?";
}

bool
algoFromName(const std::string &name, Algo &out)
{
    for (const Algo a : {Algo::Bfs, Algo::Sssp, Algo::Cc, Algo::Pr}) {
        if (name == algoName(a)) {
            out = a;
            return true;
        }
    }
    return false;
}

bool
engineKindFromName(const std::string &name, EngineKind &out)
{
    for (const EngineKind e : {EngineKind::Nova, EngineKind::PolyGraph,
                               EngineKind::Ligra}) {
        if (name == engineKindName(e)) {
            out = e;
            return true;
        }
    }
    return false;
}

namespace
{

/**
 * Decorator that forwards a program unchanged except for one corrupted
 * reduction (FaultSpec). The inner program stays bound and keeps its
 * auxiliary result arrays (e.g. PageRank's rank vector).
 */
class CorruptedProgram : public VertexProgram
{
  public:
    CorruptedProgram(VertexProgram &program, const FaultSpec &spec)
        : inner(program), fault(spec)
    {
    }

    std::string name() const override { return inner.name(); }
    workloads::ExecMode mode() const override { return inner.mode(); }

    void
    bind(const graph::Csr &g) override
    {
        VertexProgram::bind(g);
        inner.bind(g);
    }

    std::uint64_t
    initialProp(VertexId v) const override
    {
        return inner.initialProp(v);
    }

    std::uint64_t
    initialAcc(VertexId v) const override
    {
        return inner.initialAcc(v);
    }

    std::vector<VertexId>
    initialActive() const override
    {
        return inner.initialActive();
    }

    std::int64_t
    scheduledActivation(VertexId v) const override
    {
        return inner.scheduledActivation(v);
    }

    std::uint64_t
    reduce(std::uint64_t state, std::uint64_t update,
           std::uint64_t cur) const override
    {
        std::uint64_t result = inner.reduce(state, update, cur);
        if (fault.enabled && reduceCalls++ == fault.afterReduces) {
            const std::uint64_t corrupted = result ^ fault.xorMask;
            if (!fault.recover)
                return corrupted;
            // Recovered mode: the FU result checksum flags the damaged
            // value and the reduction is recomputed — model of a
            // detect-and-retry functional unit. A zero mask would be
            // undetectable, but the parser guarantees mask != 0.
            if (corrupted != result)
                ++nRecovered;
        }
        return result;
    }

    /** Faults detected and recovered inside this run. */
    std::uint64_t recoveries() const { return nRecovered; }

    bool
    activates(std::uint64_t old_state,
              std::uint64_t new_state) const override
    {
        return inner.activates(old_state, new_state);
    }

    std::uint64_t
    propagateValue(std::uint64_t cur, VertexId v) const override
    {
        return inner.propagateValue(cur, v);
    }

    std::uint64_t
    propagate(std::uint64_t value, graph::Weight w) const override
    {
        return inner.propagate(value, w);
    }

    workloads::BarrierOutcome
    bspApply(std::uint64_t cur, std::uint64_t acc, VertexId v) override
    {
        return inner.bspApply(cur, acc, v);
    }

    std::uint64_t
    maxIterations() const override
    {
        return inner.maxIterations();
    }

  private:
    VertexProgram &inner;
    FaultSpec fault;
    mutable std::uint64_t reduceCalls = 0;
    mutable std::uint64_t nRecovered = 0;
};

/**
 * Engine under test. Configurations mirror the integration sweep's
 * scaled-down systems; NOVA alternates between a single-GPN and a
 * two-GPN hierarchical topology by case index so cross-GPN schedules
 * are fuzzed too. Everything is a pure function of (kind, index), which
 * replay relies on.
 */
std::unique_ptr<GraphEngine>
makeEngine(EngineKind kind, std::uint64_t seed, std::uint64_t index,
           const DiffOptions &opt, std::uint32_t &parts,
           std::uint32_t sched_threads)
{
    switch (kind) {
      case EngineKind::Nova: {
        core::NovaConfig cfg;
        cfg.pesPerGpn = 4;
        cfg.cacheBytesPerPe = 512;
        cfg.activeBufferEntries = 16;
        if (index % 2 == 1)
            cfg.numGpns = 2;
        // Hardware fault injection (recovered faults only): the seed is
        // a pure function of (seed, index) so replays are bit-exact.
        cfg.faultSchedule = opt.faultSchedule;
        cfg.faultSeed =
            seed ^ (index * 0x9e3779b97f4a7c15ULL) ^ 0xfa0175eedULL;
        // Cross-sched sweep: the sharded parallel scheduler with the
        // canonical merged event order folded into the fingerprint.
        cfg.threads = sched_threads;
        cfg.deterministicMerge = sched_threads > 0;
        parts = cfg.totalPes();
        return std::make_unique<core::NovaSystem>(cfg);
      }
      case EngineKind::PolyGraph: {
        baselines::PolyGraphConfig cfg;
        cfg.onChipBytes = 1024; // forces several temporal slices
        parts = 1;
        return std::make_unique<baselines::PolyGraphModel>(cfg);
      }
      case EngineKind::Ligra:
        parts = 1;
        return std::make_unique<baselines::LigraEngine>();
    }
    sim::panic("bad engine kind");
}

/** Mapping seed: decorrelated from the graph but replay-stable. */
std::uint64_t
mappingSeed(std::uint64_t seed, std::uint64_t index)
{
    return seed ^ (index * 0x9e3779b97f4a7c15ULL) ^ 0x5ca1ab1eULL;
}

std::string
describeExactMismatches(const std::vector<std::uint64_t> &got,
                        const std::vector<std::uint64_t> &want,
                        std::uint32_t max_reported)
{
    std::string detail;
    std::uint64_t mismatches = 0;
    for (VertexId v = 0; v < want.size(); ++v) {
        if (got[v] == want[v])
            continue;
        ++mismatches;
        if (mismatches <= max_reported) {
            if (!detail.empty())
                detail += "; ";
            detail += "vertex " + std::to_string(v) + ": got " +
                      std::to_string(got[v]) + " want " +
                      std::to_string(want[v]);
        }
    }
    if (mismatches > max_reported)
        detail += " (+" + std::to_string(mismatches - max_reported) +
                  " more)";
    return detail;
}

std::string
describePrMismatches(const std::vector<double> &got,
                     const std::vector<double> &want, double abs_tol,
                     double rel_tol, std::uint32_t max_reported)
{
    std::string detail;
    std::uint64_t mismatches = 0;
    for (VertexId v = 0; v < want.size(); ++v) {
        const double err = std::abs(got[v] - want[v]);
        if (err <= abs_tol + rel_tol * std::abs(want[v]))
            continue;
        ++mismatches;
        if (mismatches <= max_reported) {
            if (!detail.empty())
                detail += "; ";
            detail += "vertex " + std::to_string(v) + ": got " +
                      std::to_string(got[v]) + " want " +
                      std::to_string(want[v]);
        }
    }
    if (mismatches > max_reported)
        detail += " (+" + std::to_string(mismatches - max_reported) +
                  " more)";
    return detail;
}

/** FNV-1a over the final property vector (determinism record). */
std::uint64_t
propsFingerprint(const std::vector<std::uint64_t> &props)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint64_t p : props) {
        for (unsigned byte = 0; byte < 8; ++byte) {
            h ^= (p >> (byte * 8)) & 0xFF;
            h *= 0x100000001b3ULL;
        }
    }
    return h;
}

/** What one engine × algorithm run produced. */
struct SingleOutcome
{
    /** Mismatch description; empty means agreement with the reference. */
    std::string detail;
    RunRecord record;
};

SingleOutcome
runSingle(const FuzzedGraph &fuzzed, Algo algo, EngineKind kind,
          std::uint64_t seed, std::uint64_t index,
          const DiffOptions &opt, std::uint32_t sched_threads = 0)
{
    namespace ref = workloads::reference;

    // CC wants the symmetric closure (weakly connected components);
    // the traversals and PageRank run the graph as generated.
    const graph::Csr g = algo == Algo::Cc ? graph::symmetrize(fuzzed.graph)
                                          : fuzzed.graph;
    const VertexId src = fuzzed.source;

    std::uint32_t parts = 1;
    auto engine = makeEngine(kind, seed, index, opt, parts,
                             sched_threads);
    const auto map = graph::randomMapping(g.numVertices(), parts,
                                          mappingSeed(seed, index));

    SingleOutcome out;
    out.record.algo = algo;
    out.record.engine = kind;

    auto execute = [&opt, &engine, &out, &g, &map](VertexProgram &program) {
        RunResult r;
        if (opt.fault.enabled) {
            CorruptedProgram corrupted(program, opt.fault);
            r = engine->run(corrupted, g, map);
            out.record.recoveries += corrupted.recoveries();
        } else {
            r = engine->run(program, g, map);
        }
        out.record.fingerprint = propsFingerprint(r.props);
        const auto fp_it = r.extra.find("sim.fingerprint");
        if (fp_it != r.extra.end())
            out.record.fingerprint ^=
                static_cast<std::uint64_t>(fp_it->second);
        // Sharded runs under deterministic merge also expose the
        // canonical merged event order; fold it in (with a spread so
        // the two hashes cannot cancel) to make the record sensitive
        // to cross-shard interleaving, not just per-shard order.
        const auto mfp_it = r.extra.find("sim.mergedFingerprint");
        if (mfp_it != r.extra.end())
            out.record.fingerprint ^=
                static_cast<std::uint64_t>(mfp_it->second) *
                0x9e3779b97f4a7c15ULL;
        const auto rec_it = r.extra.find("fault.recoveries");
        if (rec_it != r.extra.end())
            out.record.recoveries +=
                static_cast<std::uint64_t>(rec_it->second);
        return r;
    };

    switch (algo) {
      case Algo::Bfs: {
        workloads::BfsProgram prog(src);
        const RunResult r = execute(prog);
        out.detail = describeExactMismatches(r.props,
                                             ref::bfsDepths(g, src),
                                             opt.maxReportedVertices);
        return out;
      }
      case Algo::Sssp: {
        workloads::SsspProgram prog(src);
        const RunResult r = execute(prog);
        out.detail = describeExactMismatches(r.props,
                                             ref::ssspDistances(g, src),
                                             opt.maxReportedVertices);
        return out;
      }
      case Algo::Cc: {
        workloads::CcProgram prog;
        const RunResult r = execute(prog);
        out.detail = describeExactMismatches(r.props, ref::ccLabels(g),
                                             opt.maxReportedVertices);
        return out;
      }
      case Algo::Pr: {
        workloads::PageRankProgram prog(0.85, 1e-11, 8);
        execute(prog);
        const auto want = ref::pagerankDelta(g, 0.85, 1e-11, 8);
        out.detail = describePrMismatches(prog.rank(), want, opt.prAbsTol,
                                          opt.prRelTol,
                                          opt.maxReportedVertices);
        return out;
      }
    }
    sim::panic("bad algorithm");
}

} // namespace

CaseOutcome
runCase(std::uint64_t seed, std::uint64_t index, const DiffOptions &opt)
{
    CaseOutcome out;
    out.seed = seed;
    out.index = index;

    const FuzzedGraph fuzzed = fuzzCase(seed, index, opt.fuzzer);
    out.graphDescription = fuzzed.description;

    for (const Algo algo : opt.algos) {
        for (const EngineKind kind : opt.engines) {
            ++out.runsExecuted;
            SingleOutcome single =
                runSingle(fuzzed, algo, kind, seed, index, opt);

            if (opt.crossCheckQueueImpls && kind == EngineKind::Nova) {
                // Replay the identical case on the other queue backend;
                // the event-order fingerprints (folded into the record)
                // must agree bit for bit.
                ++out.runsExecuted;
                const auto other =
                    sim::EventQueue::defaultImpl() ==
                            sim::EventQueue::Impl::Calendar
                        ? sim::EventQueue::Impl::LegacyHeap
                        : sim::EventQueue::Impl::Calendar;
                sim::EventQueue::ScopedDefaultImpl forced(other);
                const SingleOutcome twin =
                    runSingle(fuzzed, algo, kind, seed, index, opt);
                if (twin.record.fingerprint != single.record.fingerprint ||
                    twin.record.recoveries != single.record.recoveries) {
                    Divergence d;
                    d.algo = algo;
                    d.engine = kind;
                    d.detail =
                        "event-queue backend mismatch: fingerprint " +
                        std::to_string(single.record.fingerprint) +
                        " (default) vs " +
                        std::to_string(twin.record.fingerprint) +
                        " (alternate), recoveries " +
                        std::to_string(single.record.recoveries) + " vs " +
                        std::to_string(twin.record.recoveries);
                    d.replayToken = encodeReplayToken(
                        {seed, index, algo, kind, opt.fuzzer, opt.fault,
                         opt.faultSchedule});
                    out.divergences.push_back(std::move(d));
                }
            }

            if (opt.crossCheckSchedThreads > 0 &&
                kind == EngineKind::Nova && !opt.fault.enabled &&
                opt.faultSchedule.empty()) {
                // Sweep the sharded scheduler over both queue backends
                // and both thread counts. All four records must agree
                // bit for bit (the sharded model is deterministic in
                // the thread count and queue backend) and every run
                // must still match the reference.
                bool have_first = false;
                RunRecord first{};
                for (const auto impl :
                     {sim::EventQueue::Impl::LegacyHeap,
                      sim::EventQueue::Impl::Calendar}) {
                    for (const std::uint32_t threads :
                         {std::uint32_t{1}, opt.crossCheckSchedThreads}) {
                        ++out.runsExecuted;
                        sim::EventQueue::ScopedDefaultImpl forced(impl);
                        const SingleOutcome sharded = runSingle(
                            fuzzed, algo, kind, seed, index, opt, threads);
                        std::string detail;
                        if (!sharded.detail.empty())
                            detail = "sharded scheduler (" +
                                     std::to_string(threads) +
                                     " threads) diverged from the "
                                     "reference: " +
                                     sharded.detail;
                        else if (!have_first) {
                            have_first = true;
                            first = sharded.record;
                        } else if (sharded.record.fingerprint !=
                                   first.fingerprint)
                            detail =
                                "sharded scheduler mismatch: fingerprint " +
                                std::to_string(first.fingerprint) +
                                " (first variant) vs " +
                                std::to_string(sharded.record.fingerprint) +
                                " (" + std::to_string(threads) +
                                " threads)";
                        if (detail.empty())
                            continue;
                        Divergence d;
                        d.algo = algo;
                        d.engine = kind;
                        d.detail = std::move(detail);
                        d.replayToken = encodeReplayToken(
                            {seed, index, algo, kind, opt.fuzzer,
                             opt.fault, opt.faultSchedule});
                        out.divergences.push_back(std::move(d));
                    }
                }
            }

            out.runs.push_back(single.record);
            if (single.detail.empty())
                continue;
            Divergence d;
            d.algo = algo;
            d.engine = kind;
            d.detail = std::move(single.detail);
            d.replayToken = encodeReplayToken({seed, index, algo, kind,
                                               opt.fuzzer, opt.fault,
                                               opt.faultSchedule});
            out.divergences.push_back(std::move(d));
        }
    }
    return out;
}

FuzzSummary
runFuzz(std::uint64_t seed, std::uint64_t iterations,
        const DiffOptions &opt,
        const std::function<void(const CaseOutcome &)> &onCase)
{
    FuzzSummary summary;
    for (std::uint64_t i = 0; i < iterations; ++i) {
        CaseOutcome outcome = runCase(seed, i, opt);
        ++summary.casesRun;
        summary.runsExecuted += outcome.runsExecuted;
        if (onCase)
            onCase(outcome);
        if (!outcome.ok())
            summary.failures.push_back(std::move(outcome));
    }
    return summary;
}

} // namespace nova::verify
