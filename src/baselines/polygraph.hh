/**
 * @file
 * Model of PolyGraph [13], the paper's baseline accelerator, in its
 * most optimised sliced variant (S_s, A_c, T_w — Sec. V).
 *
 * PolyGraph keeps the current temporal slice's vertex state in a large
 * on-chip scratchpad (32 MiB), processing a slice until no new
 * intra-slice messages remain, then switching slices. Cross-slice
 * updates travel through off-chip FIFO queues (uncoalesced — the
 * coalescing window PolyGraph lacks is exactly what NOVA's DRAM
 * spilling enlarges, Fig. 5). Following the paper's methodology, slice
 * switching is assumed perfectly parallelised at full memory bandwidth.
 *
 * The model executes the workload functionally (so results are exact
 * and redundancy/inefficiency emerge naturally) while charging memory
 * bytes and compute cycles to a single shared bandwidth resource:
 *   - processing: edge reads, FIFO reads/writes, compute;
 *   - switching: slice vertex-state load/store per visit;
 *   - inefficiency: the share of processing time due to redundant edge
 *     traversals (beyond one propagation per reached vertex).
 */

#ifndef NOVA_BASELINES_POLYGRAPH_HH
#define NOVA_BASELINES_POLYGRAPH_HH

#include <cstdint>

#include "workloads/engine.hh"

namespace nova::baselines
{

/** Configuration of the PolyGraph model. */
struct PolyGraphConfig
{
    /** Aggregate off-chip bandwidth in GB/s (iso-BW: 332.8). */
    double memBandwidthGBs = 332.8;
    /**
     * Sustained fraction of peak bandwidth for PolyGraph's mixed
     * random/sequential traffic — the same DRAM efficiency regime the
     * NOVA cycle model exhibits (its channels sustain 60-70% of peak
     * under mixed streams).
     */
    double dramEfficiency = 0.65;
    /**
     * Bytes moved per replica while recreating inter-slice messages
     * (step 3 of Sec. II-C): a read-modify-write of a 16 B replica at
     * the 32 B memory-atom granularity (32 B in + 32 B out).
     */
    std::uint32_t replicaReadBytes = 64;
    /** Bytes per replica updated by a visit (step 2, also an RMW). */
    std::uint32_t replicaWriteBytes = 64;
    /** On-chip scratchpad capacity (paper: 32 MiB). */
    std::uint64_t onChipBytes = std::uint64_t(32) << 20;
    /**
     * On-chip bytes of state per vertex of a temporal slice.
     * 4 B/vertex reproduces Table III's slice counts (3/5/8/13/16).
     */
    std::uint32_t slicedVertexBytes = 4;
    /** Full vertex record size in off-chip memory. */
    std::uint32_t vertexBytes = 16;
    /** Edge record size. */
    std::uint32_t edgeBytes = 8;
    /** Cross-slice FIFO entry size (vertex id + update). */
    std::uint32_t fifoEntryBytes = 8;
    /** Clock for the compute side. */
    double clockGHz = 2.0;
    /**
     * Sustained edges processed per cycle (includes PolyGraph's task
     * scheduling overheads); calibrated so the non-sliced variant is
     * ~30% faster than one NOVA GPN on the Twitter-scale input
     * (Fig. 4).
     */
    double computeEdgesPerCycle = 2.0;
    /** Force a slice count (0 = derive from onChipBytes); Fig. 2. */
    std::uint32_t forcedSlices = 0;

    /** Scale on-chip capacity for scaled-graph experiments. */
    PolyGraphConfig
    scaled(double scale) const
    {
        PolyGraphConfig c = *this;
        c.onChipBytes = std::max<std::uint64_t>(
            1024, static_cast<std::uint64_t>(
                      static_cast<double>(onChipBytes) / scale));
        return c;
    }

    /** Number of temporal slices needed for a given vertex count. */
    std::uint32_t numSlices(graph::VertexId num_vertices) const;
};

/** The PolyGraph baseline as a graph engine. */
class PolyGraphModel : public workloads::GraphEngine
{
  public:
    explicit PolyGraphModel(PolyGraphConfig config) : cfg(config) {}

    std::string name() const override { return "polygraph"; }

    const PolyGraphConfig &config() const { return cfg; }

    /**
     * Execute the program. The VertexMapping argument is unused (the
     * model is a single accelerator with id-range slicing) but kept
     * for engine-interface compatibility.
     */
    workloads::RunResult run(workloads::VertexProgram &program,
                             const graph::Csr &g,
                             const graph::VertexMapping &map) override;

  private:
    PolyGraphConfig cfg;
};

} // namespace nova::baselines

#endif // NOVA_BASELINES_POLYGRAPH_HH
