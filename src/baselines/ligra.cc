#include "baselines/ligra.hh"

#include <map>
#include <vector>

namespace nova::baselines
{

using graph::Csr;
using graph::VertexId;
using workloads::ExecMode;
using workloads::RunResult;
using workloads::VertexProgram;

namespace
{

/** Frontier with sparse representation plus membership flags. */
struct Frontier
{
    std::vector<VertexId> verts;
    std::vector<std::uint8_t> member;

    explicit Frontier(VertexId n) : member(n, 0) {}

    void
    add(VertexId v)
    {
        if (!member[v]) {
            member[v] = 1;
            verts.push_back(v);
        }
    }

    void
    clear()
    {
        for (const VertexId v : verts)
            member[v] = 0;
        verts.clear();
    }

    bool empty() const { return verts.empty(); }
};

} // namespace

RunResult
LigraEngine::run(VertexProgram &program, const Csr &g,
                 const graph::VertexMapping &map)
{
    (void)map;
    program.bind(g);
    const VertexId n = g.numVertices();

    std::vector<std::uint64_t> cur(n), acc(n);
    for (VertexId v = 0; v < n; ++v) {
        cur[v] = program.initialProp(v);
        acc[v] = program.initialAcc(v);
    }

    RunResult result;
    std::uint64_t traversed = 0, reduced = 0, coalesced = 0;
    std::uint64_t supersteps = 0;

    if (program.mode() == ExecMode::Async) {
        // Frontier-synchronous execution of the monotone workloads;
        // the fixed point matches the asynchronous result.
        Frontier frontier(n), next(n);
        for (const VertexId v : program.initialActive())
            frontier.add(v);
        while (!frontier.empty()) {
            ++supersteps;
            for (const VertexId v : frontier.verts) {
                const std::uint64_t alpha =
                    program.propagateValue(cur[v], v);
                for (graph::EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v);
                     ++e) {
                    const VertexId w = g.edgeDest(e);
                    const std::uint64_t u =
                        program.propagate(alpha, g.edgeWeight(e));
                    ++traversed;
                    ++reduced;
                    const std::uint64_t old = cur[w];
                    const std::uint64_t nxt = program.reduce(old, u, old);
                    cur[w] = nxt;
                    if (program.activates(old, nxt)) {
                        if (next.member[w])
                            ++coalesced;
                        next.add(w);
                    }
                }
            }
            frontier.clear();
            std::swap(frontier, next);
        }
    } else {
        // BSP supersteps with scheduled activations (PR/BC).
        std::map<std::int64_t, std::vector<VertexId>> schedule;
        for (VertexId v = 0; v < n; ++v) {
            const std::int64_t k = program.scheduledActivation(v);
            if (k >= 0)
                schedule[k].push_back(v);
        }
        Frontier frontier(n), touched(n);
        auto add_scheduled = [&](std::uint64_t k) {
            auto it = schedule.find(static_cast<std::int64_t>(k));
            if (it == schedule.end())
                return;
            for (const VertexId v : it->second)
                frontier.add(v);
            schedule.erase(it);
        };
        for (const VertexId v : program.initialActive())
            frontier.add(v);
        add_scheduled(0);

        while ((!frontier.empty() || !schedule.empty()) &&
               supersteps < program.maxIterations()) {
            ++supersteps;
            // edgeMap: propagate the frontier into accumulators.
            for (const VertexId v : frontier.verts) {
                const std::uint64_t alpha =
                    program.propagateValue(cur[v], v);
                for (graph::EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v);
                     ++e) {
                    const VertexId w = g.edgeDest(e);
                    const std::uint64_t u =
                        program.propagate(alpha, g.edgeWeight(e));
                    ++traversed;
                    ++reduced;
                    if (touched.member[w])
                        ++coalesced;
                    touched.add(w);
                    acc[w] = program.reduce(acc[w], u, cur[w]);
                }
            }
            frontier.clear();
            // vertexMap: barrier over touched vertices.
            for (const VertexId v : touched.verts) {
                const workloads::BarrierOutcome out =
                    program.bspApply(cur[v], acc[v], v);
                cur[v] = out.newCur;
                acc[v] = out.newAcc;
                if (out.active)
                    frontier.add(v);
            }
            touched.clear();
            add_scheduled(supersteps);
        }
    }

    // Deterministic cost model instead of wall-clock time: the software
    // baseline charges one nanosecond-equivalent per edge traversal plus
    // a fixed per-superstep barrier cost, so verify/replay runs are
    // bit-for-bit reproducible (wall-clock sources are banned by
    // novalint's wall-clock rule).
    constexpr sim::Tick edgeCost = sim::tickNs;
    constexpr sim::Tick barrierCost = 100 * sim::tickNs;
    result.ticks = sim::tickAdd(sim::tickMul(traversed, edgeCost),
                                sim::tickMul(supersteps, barrierCost));
    result.props = std::move(cur);
    result.messagesProcessed = reduced;
    result.messagesGenerated = traversed;
    result.coalescedUpdates = coalesced;
    result.bspIterations =
        program.mode() == ExecMode::Bsp ? supersteps : 0;
    result.extra["ligra.supersteps"] = static_cast<double>(supersteps);
    return result;
}

} // namespace nova::baselines
