#include "baselines/polygraph.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "sim/logging.hh"

namespace nova::baselines
{

using graph::Csr;
using graph::VertexId;
using workloads::ExecMode;
using workloads::RunResult;
using workloads::VertexProgram;

std::uint32_t
PolyGraphConfig::numSlices(VertexId num_vertices) const
{
    if (forcedSlices > 0)
        return forcedSlices;
    const std::uint64_t need =
        std::uint64_t(num_vertices) * slicedVertexBytes;
    return static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, (need + onChipBytes - 1) / onChipBytes));
}

namespace
{

/** Mutable execution state shared by the async and BSP drivers. */
struct PgState
{
    const PolyGraphConfig &cfg;
    VertexProgram &prog;
    const Csr &g;
    std::uint32_t numSlices;
    VertexId sliceSize;

    std::vector<std::uint64_t> cur;
    std::vector<std::uint64_t> acc;
    std::vector<std::uint8_t> everActivated;

    double processingTicks = 0;
    double revisitTicks = 0;
    double switchingTicks = 0;
    std::uint64_t traversed = 0;
    std::uint64_t reduced = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t sliceVisits = 0;

    PgState(const PolyGraphConfig &c, VertexProgram &p, const Csr &graph)
        : cfg(c), prog(p), g(graph), numSlices(c.numSlices(graph.
              numVertices())),
          sliceSize((graph.numVertices() + numSlices - 1) / numSlices)
    {
        if (sliceSize == 0)
            sliceSize = 1;
        const VertexId n = g.numVertices();
        cur.resize(n);
        acc.resize(n);
        everActivated.assign(n, 0);
        for (VertexId v = 0; v < n; ++v) {
            cur[v] = prog.initialProp(v);
            acc[v] = prog.initialAcc(v);
        }
    }

    std::uint32_t sliceOf(VertexId v) const { return v / sliceSize; }

    /**
     * Replicas a slice keeps of remote vertices (distinct cross-slice
     * edge destinations). Sec. II-C step (3): all of them are read on
     * every visit to create inter-slice messages; updated ones are
     * written back (step 2).
     */
    std::vector<std::uint64_t>
    computeReplicaCounts() const
    {
        std::vector<std::uint64_t> replicas(numSlices, 0);
        if (numSlices <= 1)
            return replicas;
        std::vector<std::uint32_t> seen(g.numVertices(), ~0u);
        for (std::uint32_t s = 0; s < numSlices; ++s) {
            const VertexId lo = s * sliceSize;
            const VertexId hi =
                std::min<VertexId>(g.numVertices(), lo + sliceSize);
            for (VertexId v = lo; v < hi; ++v) {
                for (graph::EdgeId e = g.edgeBegin(v); e < g.edgeEnd(v);
                     ++e) {
                    const VertexId w = g.edgeDest(e);
                    if (sliceOf(w) != s && seen[w] != s) {
                        seen[w] = s;
                        ++replicas[s];
                    }
                }
            }
        }
        return replicas;
    }

    VertexId
    sliceVerts(std::uint32_t s) const
    {
        const VertexId lo = s * sliceSize;
        return std::min<VertexId>(sliceSize, g.numVertices() - lo);
    }

    double
    bytesToTicks(double bytes) const
    {
        return bytes * 1000.0 /
               (cfg.memBandwidthGBs * cfg.dramEfficiency);
    }

    double
    edgesToTicks(double edges) const
    {
        return edges * 1000.0 / (cfg.computeEdgesPerCycle * cfg.clockGHz);
    }

    /**
     * Charge one slice visit's processing phase. Re-visit processing
     * is attributed to the inefficiency overhead, following the
     * paper's Fig. 2 definition ("time spent processing slices more
     * than once").
     */
    void
    chargeVisit(double bytes, double edges, bool first_visit)
    {
        const double t = std::max(bytesToTicks(bytes),
                                  edgesToTicks(edges));
        if (first_visit)
            processingTicks += t;
        else
            revisitTicks += t;
        ++sliceVisits;
    }

    /**
     * Charge slice-state / replica traffic (full bandwidth, Sec. V).
     * On a re-visit the cost is re-processing overhead and counts as
     * inefficiency (Fig. 2's definition); the first visit's cost is
     * the unavoidable switching.
     */
    void
    chargeSwitch(double bytes, bool first_visit = true)
    {
        if (first_visit)
            switchingTicks += bytesToTicks(bytes);
        else
            revisitTicks += bytesToTicks(bytes);
    }
};

/** Asynchronous sliced execution (BFS/SSSP/CC). */
void
runAsync(PgState &st)
{
    const std::uint32_t S = st.numSlices;
    std::vector<std::deque<std::pair<VertexId, std::uint64_t>>> fifo(S);
    std::vector<std::deque<VertexId>> pendingActive(S);
    std::vector<std::uint8_t> in_queue(st.g.numVertices(), 0);
    const std::vector<std::uint64_t> replicas = st.computeReplicaCounts();
    std::vector<std::uint64_t> dst_stamp(st.g.numVertices(), 0);
    std::uint64_t visit_epoch = 0;

    for (const VertexId v : st.prog.initialActive())
        pendingActive[st.sliceOf(v)].push_back(v);

    const bool non_sliced = S == 1;
    bool loaded_once = false;
    std::vector<std::uint8_t> visited(S, 0);

    for (;;) {
        // Work-aware slice selection (the T_w variant): visit the
        // slice with the most pending work.
        std::uint32_t best = S;
        std::size_t best_work = 0;
        for (std::uint32_t s = 0; s < S; ++s) {
            const std::size_t work =
                fifo[s].size() + pendingActive[s].size();
            if (work > best_work) {
                best_work = work;
                best = s;
            }
        }
        if (best == S)
            break;
        const std::uint32_t s = best;

        const bool first_visit = !visited[s];
        if (!non_sliced || !loaded_once) {
            st.chargeSwitch(static_cast<double>(st.sliceVerts(s)) *
                            st.cfg.vertexBytes, first_visit);
            loaded_once = true;
        }
        // Sec. II-C step (3): read every replica of this slice to
        // create the inter-slice messages it owes its neighbours.
        st.chargeSwitch(static_cast<double>(replicas[s]) *
                        st.cfg.replicaReadBytes, first_visit);
        ++visit_epoch;
        std::uint64_t updated_replicas = 0;

        double visit_bytes = 0;
        double visit_edges = 0;
        std::deque<VertexId> localq;

        // Drain the cross-slice FIFO (uncoalesced entries).
        visit_bytes +=
            static_cast<double>(fifo[s].size()) * st.cfg.fifoEntryBytes;
        while (!fifo[s].empty()) {
            const auto [v, u] = fifo[s].front();
            fifo[s].pop_front();
            ++st.reduced;
            const std::uint64_t old = st.cur[v];
            const std::uint64_t next = st.prog.reduce(old, u, old);
            st.cur[v] = next;
            if (st.prog.activates(old, next)) {
                if (!in_queue[v]) {
                    in_queue[v] = 1;
                    localq.push_back(v);
                } else {
                    ++st.coalesced;
                }
            }
        }
        while (!pendingActive[s].empty()) {
            const VertexId v = pendingActive[s].front();
            pendingActive[s].pop_front();
            if (!in_queue[v]) {
                in_queue[v] = 1;
                localq.push_back(v);
            }
        }

        // Eager intra-slice processing until quiescent.
        while (!localq.empty()) {
            const VertexId v = localq.front();
            localq.pop_front();
            in_queue[v] = 0;
            st.everActivated[v] = 1;
            const std::uint64_t alpha =
                st.prog.propagateValue(st.cur[v], v);
            for (graph::EdgeId e = st.g.edgeBegin(v); e < st.g.edgeEnd(v);
                 ++e) {
                const VertexId w = st.g.edgeDest(e);
                const std::uint64_t u =
                    st.prog.propagate(alpha, st.g.edgeWeight(e));
                ++st.traversed;
                visit_edges += 1;
                visit_bytes += st.cfg.edgeBytes;
                if (st.sliceOf(w) == s) {
                    // On-chip reduce with on-chip queue coalescing.
                    ++st.reduced;
                    const std::uint64_t old = st.cur[w];
                    const std::uint64_t next = st.prog.reduce(old, u, old);
                    st.cur[w] = next;
                    if (st.prog.activates(old, next)) {
                        if (!in_queue[w]) {
                            in_queue[w] = 1;
                            localq.push_back(w);
                        } else {
                            ++st.coalesced;
                        }
                    }
                } else {
                    fifo[st.sliceOf(w)].emplace_back(w, u);
                    visit_bytes += st.cfg.fifoEntryBytes;
                    if (dst_stamp[w] != visit_epoch) {
                        dst_stamp[w] = visit_epoch;
                        ++updated_replicas;
                    }
                }
            }
        }

        st.chargeVisit(visit_bytes, visit_edges, first_visit);
        visited[s] = 1;
        if (!non_sliced) {
            // Step (1) store + step (2) write back updated replicas.
            st.chargeSwitch(static_cast<double>(st.sliceVerts(s)) *
                            st.cfg.vertexBytes, first_visit);
            st.chargeSwitch(static_cast<double>(updated_replicas) *
                            st.cfg.replicaWriteBytes, first_visit);
        }
    }
    if (non_sliced && loaded_once) {
        st.chargeSwitch(static_cast<double>(st.g.numVertices()) *
                        st.cfg.vertexBytes);
    }
}

/** Bulk-synchronous sliced execution (PR/BC). */
std::uint64_t
runBsp(PgState &st)
{
    const std::uint32_t S = st.numSlices;
    const bool non_sliced = S == 1;

    // Pre-bucket scheduled activations by iteration.
    std::map<std::int64_t, std::vector<VertexId>> schedule;
    for (VertexId v = 0; v < st.g.numVertices(); ++v) {
        const std::int64_t k = st.prog.scheduledActivation(v);
        if (k >= 0)
            schedule[k].push_back(v);
    }

    std::vector<std::deque<std::pair<VertexId, std::uint64_t>>> fifoCur(S);
    std::vector<std::deque<std::pair<VertexId, std::uint64_t>>> fifoNext(S);
    std::vector<std::deque<VertexId>> active(S);
    const std::vector<std::uint64_t> replicas = st.computeReplicaCounts();
    std::vector<std::uint64_t> dst_stamp(st.g.numVertices(), 0);
    std::uint64_t visit_epoch = 0;

    auto add_scheduled = [&](std::uint64_t k) {
        auto it = schedule.find(static_cast<std::int64_t>(k));
        if (it == schedule.end())
            return;
        for (const VertexId v : it->second)
            active[st.sliceOf(v)].push_back(v);
        schedule.erase(it);
    };
    for (const VertexId v : st.prog.initialActive())
        active[st.sliceOf(v)].push_back(v);
    add_scheduled(0);

    std::uint64_t superstep = 0;
    bool loaded_once = false;
    std::vector<std::uint8_t> visited(S, 0);
    std::vector<VertexId> touched;
    std::vector<std::uint8_t> touched_flag(st.g.numVertices(), 0);

    for (;;) {
        bool any_work = false;
        for (std::uint32_t s = 0; s < S; ++s)
            any_work |= !fifoCur[s].empty() || !active[s].empty();
        if (!any_work && schedule.empty())
            break;

        for (std::uint32_t s = 0; s < S; ++s) {
            if (fifoCur[s].empty() && active[s].empty())
                continue;

            const bool first_visit = !visited[s];
            if (!non_sliced || !loaded_once) {
                st.chargeSwitch(static_cast<double>(st.sliceVerts(s)) *
                                st.cfg.vertexBytes, first_visit);
                loaded_once = true;
            }
            if (!non_sliced) {
                st.chargeSwitch(static_cast<double>(replicas[s]) *
                                st.cfg.replicaReadBytes, first_visit);
            }
            ++visit_epoch;
            std::uint64_t updated_replicas = 0;

            double visit_bytes = 0;
            double visit_edges = 0;

            // Reduce last superstep's messages into accumulators.
            visit_bytes += static_cast<double>(fifoCur[s].size()) *
                           st.cfg.fifoEntryBytes;
            touched.clear();
            while (!fifoCur[s].empty()) {
                const auto [v, u] = fifoCur[s].front();
                fifoCur[s].pop_front();
                ++st.reduced;
                if (!touched_flag[v]) {
                    touched_flag[v] = 1;
                    touched.push_back(v);
                } else {
                    ++st.coalesced;
                }
                st.acc[v] = st.prog.reduce(st.acc[v], u, st.cur[v]);
            }

            // Barrier for this slice's touched vertices.
            for (const VertexId v : touched) {
                touched_flag[v] = 0;
                const workloads::BarrierOutcome out =
                    st.prog.bspApply(st.cur[v], st.acc[v], v);
                st.cur[v] = out.newCur;
                st.acc[v] = out.newAcc;
                if (out.active && superstep < st.prog.maxIterations())
                    active[s].push_back(v);
            }

            // Propagate this superstep's active vertices.
            while (!active[s].empty()) {
                const VertexId v = active[s].front();
                active[s].pop_front();
                st.everActivated[v] = 1;
                const std::uint64_t alpha =
                    st.prog.propagateValue(st.cur[v], v);
                for (graph::EdgeId e = st.g.edgeBegin(v);
                     e < st.g.edgeEnd(v); ++e) {
                    const VertexId w = st.g.edgeDest(e);
                    const std::uint64_t u =
                        st.prog.propagate(alpha, st.g.edgeWeight(e));
                    ++st.traversed;
                    visit_edges += 1;
                    visit_bytes += st.cfg.edgeBytes;
                    fifoNext[st.sliceOf(w)].emplace_back(w, u);
                    if (!non_sliced) {
                        visit_bytes += st.cfg.fifoEntryBytes;
                        if (st.sliceOf(w) != s &&
                            dst_stamp[w] != visit_epoch) {
                            dst_stamp[w] = visit_epoch;
                            ++updated_replicas;
                        }
                    }
                }
            }

            st.chargeVisit(visit_bytes, visit_edges, first_visit);
            visited[s] = 1;
            if (!non_sliced) {
                st.chargeSwitch(static_cast<double>(st.sliceVerts(s)) *
                                st.cfg.vertexBytes, first_visit);
                st.chargeSwitch(static_cast<double>(updated_replicas) *
                                st.cfg.replicaWriteBytes, first_visit);
            }
        }

        std::swap(fifoCur, fifoNext);
        ++superstep;
        // The activation gate above stops propagation at the iteration
        // budget; one extra superstep drains and applies the final
        // messages, after which no work remains. The hard stop is only
        // a safety net.
        if (superstep > st.prog.maxIterations() + 1)
            break;
        add_scheduled(superstep);
    }
    if (non_sliced && loaded_once) {
        st.chargeSwitch(static_cast<double>(st.g.numVertices()) *
                        st.cfg.vertexBytes);
    }
    return superstep;
}

} // namespace

RunResult
PolyGraphModel::run(VertexProgram &program, const Csr &g,
                    const graph::VertexMapping &map)
{
    (void)map;
    program.bind(g);
    PgState st(cfg, program, g);

    RunResult result;
    if (program.mode() == ExecMode::Async)
        runAsync(st);
    else
        result.bspIterations = runBsp(st);

    result.ticks = static_cast<sim::Tick>(
        st.processingTicks + st.revisitTicks + st.switchingTicks);
    result.props = std::move(st.cur);
    result.messagesProcessed = st.reduced;
    result.messagesGenerated = st.traversed;
    result.coalescedUpdates = st.coalesced;

    // Work-optimal edge count, for the work-efficiency statistics.
    std::uint64_t useful = 0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        if (st.everActivated[v])
            useful += g.degree(v);

    auto &extra = result.extra;
    extra["pg.numSlices"] = st.numSlices;
    extra["pg.sliceVisits"] = static_cast<double>(st.sliceVisits);
    extra["pg.processingTicks"] = st.processingTicks;
    extra["pg.inefficiencyTicks"] = st.revisitTicks;
    extra["pg.switchingTicks"] = st.switchingTicks;
    extra["pg.usefulEdges"] = static_cast<double>(useful);
    const double total_bytes =
        (st.processingTicks + st.revisitTicks + st.switchingTicks) *
        cfg.memBandwidthGBs * cfg.dramEfficiency / 1000.0;
    const double edge_bytes =
        static_cast<double>(st.traversed) * cfg.edgeBytes;
    extra["pg.edgeByteFraction"] =
        total_bytes > 0 ? edge_bytes / total_bytes : 0;
    return result;
}

} // namespace nova::baselines
