/**
 * @file
 * A Ligra-style software graph-processing framework (the paper's
 * software baseline, Sec. V).
 *
 * Executes the same VertexProgram abstraction with frontier-based
 * supersteps (edgeMap/vertexMap structure, sparse/dense frontier
 * switching) on the host CPU, and reports *measured wall-clock* time
 * converted to simulation ticks. Substitution note (DESIGN.md §3): the
 * paper measured Ligra on an 8-core x86 with 400 GB/s of memory
 * bandwidth; this runs on whatever host executes the benchmark, so
 * only the software-vs-accelerator shape is meaningful.
 */

#ifndef NOVA_BASELINES_LIGRA_HH
#define NOVA_BASELINES_LIGRA_HH

#include "workloads/engine.hh"

namespace nova::baselines
{

/**
 * Configuration of the software framework.
 *
 * The engine is push-based with sparse frontiers (Ligra's edgeMap /
 * vertexMap structure); direction-optimising pull iteration is not
 * modelled — for the paper's comparison only the software baseline's
 * order of magnitude matters.
 */
struct LigraConfig
{
    /** Reserved for future frontier-density tuning. */
    double denseThreshold = 0.05;
};

/** The Ligra-like software engine. */
class LigraEngine : public workloads::GraphEngine
{
  public:
    explicit LigraEngine(LigraConfig config = {}) : cfg(config) {}

    std::string name() const override { return "ligra"; }

    /** The mapping argument is unused (shared-memory execution). */
    workloads::RunResult run(workloads::VertexProgram &program,
                             const graph::Csr &g,
                             const graph::VertexMapping &map) override;

  private:
    LigraConfig cfg;
};

} // namespace nova::baselines

#endif // NOVA_BASELINES_LIGRA_HH
