// novalint:allow-file(wall-clock) host-side supervision: backoff delays
// and MTTR measurement are real time by definition; nothing here touches
// simulated state.

#include "sim/supervise.hh"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace nova::sim
{

namespace
{

/**
 * Pull the failover counters out of a checkpoint's meta section. The
 * format is token-oriented (`key value` pairs, `!crc`/`@section`
 * markers), so a plain word scan suffices; the file already passed
 * validateCheckpointFile, so no integrity checking here.
 */
void
readFailoverMeta(const std::string &path, SuperviseResult &r)
{
    std::ifstream in(path);
    if (!in.good())
        return;
    std::string w;
    bool in_meta = false;
    auto grab = [&in](std::uint64_t &out) {
        std::string v;
        if (in >> v)
            out = std::strtoull(v.c_str(), nullptr, 10);
    };
    while (in >> w) {
        if (w == "!crc") {
            in >> w; // skip the stored checksum
            continue;
        }
        if (!w.empty() && w[0] == '@') {
            if (in_meta)
                return; // meta is the first section; we are done
            in_meta = w == "@meta";
            continue;
        }
        if (!in_meta)
            continue;
        if (w == "migratedVertices")
            grab(r.migratedVertices);
        else if (w == "gpnsFailed")
            grab(r.gpnsFailed);
        else if (w == "linksDown")
            grab(r.linksDown);
        else if (w == "spillRegionsLost")
            grab(r.spillRegionsLost);
        else if (w == "shardCrashes")
            grab(r.shardCrashes);
    }
}

/** Fork + exec the child and wait for it. @return waitpid status. */
int
runChild(const std::vector<std::string> &argv)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("supervisor: fork failed: ", std::strerror(errno));
    if (pid == 0) {
        ::execv(cargv[0], cargv.data());
        // exec failed; no C++ unwinding in the forked child — report
        // and leave with the shell's command-not-found convention.
        std::fprintf(stderr, "supervisor: cannot exec %s: %s\n",
                     cargv[0], std::strerror(errno));
        ::_exit(127);
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR)
            fatal("supervisor: waitpid failed: ", std::strerror(errno));
    }
    return status;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

} // namespace

SuperviseResult
superviseRun(const SuperviseConfig &cfg)
{
    NOVA_ASSERT(!cfg.childArgv.empty(), "supervisor needs a child command");
    SuperviseResult result;
    unsigned consecutive_crashes = 0;
    unsigned no_progress = 0;
    // Progress marker of the last restart: (generation path, iter).
    // A crash that leaves the chain exactly where the previous restart
    // found it means the run is dying at the same point every time.
    std::string last_resume_path;
    std::uint64_t last_resume_iter = 0;
    bool have_marker = false;

    for (unsigned attempt = 0;; ++attempt) {
        SuperviseAttempt a;
        a.index = attempt;

        std::vector<std::string> argv = cfg.childArgv;
        if (attempt > 0) {
            // Restart: resume from the newest generation that passes
            // validation (self-healing fallback), or from scratch when
            // the chain holds nothing usable.
            if (!cfg.checkpointPath.empty()) {
                const GenerationPick pick = newestValidCheckpoint(
                    cfg.checkpointPath, cfg.keepGenerations);
                if (!pick.path.empty()) {
                    a.resumed = true;
                    a.resumePath = pick.path;
                    a.generation = pick.generation;
                    a.checkpointIter = pick.iter;
                    // parseArgs is last-wins, so appending overrides
                    // any --resume the original command carried.
                    argv.push_back("--resume=" + pick.path);
                }
            }
            if (have_marker && a.resumePath == last_resume_path &&
                a.checkpointIter == last_resume_iter)
                ++no_progress;
            else
                no_progress = 0;
            last_resume_path = a.resumePath;
            last_resume_iter = a.checkpointIter;
            have_marker = true;
            if (no_progress >= cfg.crashLoopWindow) {
                result.crashLoop = true;
                result.finalExit = exitSupervisionFailed;
                break;
            }

            // Exponential backoff before touching the system again.
            a.backoffMs = cfg.backoffMs > 0
                              ? cfg.backoffMs
                                    << std::min(consecutive_crashes - 1,
                                                20u)
                              : 0;
            if (a.backoffMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(a.backoffMs));
            ++result.restarts;
            std::fprintf(stderr,
                         "supervisor: restart %u (%s, backoff %llu ms)\n",
                         attempt,
                         a.resumed
                             ? ("resume " + a.resumePath + " iter " +
                                std::to_string(a.checkpointIter))
                                   .c_str()
                             : "from scratch",
                         static_cast<unsigned long long>(a.backoffMs));
        }

        const auto t0 = std::chrono::steady_clock::now();
        const int status = runChild(argv);
        a.hostNanos = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        result.totalHostNanos += a.hostNanos;

        if (WIFSIGNALED(status)) {
            a.termSignal = WTERMSIG(status);
            a.outcome = "crash";
        } else {
            a.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : 2;
            a.outcome = a.exitCode == 0   ? "success"
                        : a.exitCode == 1 ? "fatal"
                                          : "crash";
        }
        result.attempts.push_back(a);

        if (a.outcome == "success") {
            result.finalExit = 0;
            break;
        }
        if (a.outcome == "fatal") {
            // User error: deterministic, restarting cannot change it.
            result.finalExit = 1;
            break;
        }
        ++consecutive_crashes;
        if (result.restarts >= cfg.maxRestarts) {
            result.retriesExhausted = true;
            result.finalExit = exitSupervisionFailed;
            break;
        }
    }

    if (!cfg.checkpointPath.empty()) {
        const GenerationPick pick =
            newestValidCheckpoint(cfg.checkpointPath, cfg.keepGenerations);
        if (!pick.path.empty())
            readFailoverMeta(pick.path, result);
    }
    return result;
}

std::string
recoveryReportJson(const SuperviseConfig &cfg,
                   const SuperviseResult &result)
{
    std::ostringstream os;
    os << "{\n  \"schema\": \"nova-recovery-1\",\n  \"command\": [";
    for (std::size_t i = 0; i < cfg.childArgv.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(cfg.childArgv[i])
           << '"';
    os << "],\n  \"checkpoint\": {\"path\": \""
       << jsonEscape(cfg.checkpointPath)
       << "\", \"keepGenerations\": " << cfg.keepGenerations << "},\n"
       << "  \"finalExit\": " << result.finalExit << ",\n"
       << "  \"restarts\": " << result.restarts << ",\n"
       << "  \"crashLoop\": " << (result.crashLoop ? "true" : "false")
       << ",\n  \"retriesExhausted\": "
       << (result.retriesExhausted ? "true" : "false") << ",\n"
       << "  \"totalHostNanos\": " << result.totalHostNanos << ",\n"
       << "  \"failover\": {\"migratedVertices\": "
       << result.migratedVertices
       << ", \"gpnsFailed\": " << result.gpnsFailed
       << ", \"linksDown\": " << result.linksDown
       << ", \"spillRegionsLost\": " << result.spillRegionsLost
       << ", \"shardCrashes\": " << result.shardCrashes << "},\n"
       << "  \"attempts\": [\n";
    for (std::size_t i = 0; i < result.attempts.size(); ++i) {
        const SuperviseAttempt &a = result.attempts[i];
        os << "    {\"index\": " << a.index << ", \"resumed\": "
           << (a.resumed ? "true" : "false") << ", \"resumePath\": \""
           << jsonEscape(a.resumePath)
           << "\", \"generation\": " << a.generation
           << ", \"checkpointIter\": " << a.checkpointIter
           << ", \"backoffMs\": " << a.backoffMs
           << ", \"hostNanos\": " << a.hostNanos
           << ", \"exitCode\": " << a.exitCode
           << ", \"termSignal\": " << a.termSignal << ", \"outcome\": \""
           << a.outcome << "\"}"
           << (i + 1 < result.attempts.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace nova::sim
