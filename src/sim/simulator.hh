/**
 * @file
 * Top-level simulation container: owns the event queue and the
 * components, runs the event loop, and aggregates statistics.
 */

#ifndef NOVA_SIM_SIMULATOR_HH
#define NOVA_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nova::sim
{

/**
 * Owns an EventQueue plus a set of SimObjects and drives a run.
 *
 * Usage: construct components via create<T>(...), wire them together,
 * then call run(). The simulation ends when the event queue drains
 * (models only schedule events while they have work, so a drained queue
 * means global quiescence) or the optional tick/event limits trip.
 */
class Simulator
{
  public:
    explicit Simulator(std::string sim_name = "system")
        : topGroup(std::move(sim_name))
    {
    }

    EventQueue &eventQueue() { return eq; }
    Tick now() const { return eq.now(); }

    /** Construct and register a component. Returns a non-owning pointer. */
    template <typename T, typename... Args>
    T *
    create(Args &&...args)
    {
        auto obj = std::make_unique<T>(std::forward<Args>(args)...);
        T *raw = obj.get();
        topGroup.addChild(&raw->statistics());
        objects.push_back(std::move(obj));
        return raw;
    }

    /**
     * Call startup() on every component, then run the event loop.
     * @return the tick at which the queue drained (or the limit hit).
     */
    Tick
    run(Tick until = maxTick, std::uint64_t max_events = ~std::uint64_t(0))
    {
        if (!started) {
            started = true;
            for (auto &obj : objects)
                obj->startup();
        }
        eq.run(until, max_events);
        return eq.now();
    }

    /** Continue running after new events were injected. */
    Tick resume(Tick until = maxTick) { return run(until); }

    /** The aggregated statistics of all registered components. */
    stats::Group &statistics() { return topGroup; }

  private:
    EventQueue eq;
    std::vector<std::unique_ptr<SimObject>> objects;
    stats::Group topGroup;
    bool started = false;
};

} // namespace nova::sim

#endif // NOVA_SIM_SIMULATOR_HH
