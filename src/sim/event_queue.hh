/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders all simulation work by (tick, priority,
 * insertion order). Components schedule closures; the queue executes them
 * in deterministic order, making whole-system runs reproducible.
 *
 * Two interchangeable backends implement the ordering (selected per
 * queue at construction, default via the NOVA_EQ_IMPL environment
 * variable):
 *
 *  - Calendar (default): an index-bucketed near-future calendar queue.
 *    Pending events within the next `calBuckets * bucketTicks` ticks
 *    live in per-bucket min-heaps of 24-byte key entries (tick,
 *    sequence, priority, pool index); later events wait in an overflow
 *    heap and migrate into the window as the scan cursor advances.
 *    Event closures are pool-allocated and recycled through a free
 *    list, so a schedule/execute pair does no container reallocation,
 *    heap siftings move compact keys instead of whole closures, and
 *    comparisons read contiguous heap memory without chasing pool
 *    pointers. Chosen over a pairing heap because the smoke bench
 *    (bench/perf_smoke.cc) showed the win comes from eliminating the
 *    O(log n) closure moves of the binary heap, which a pointer-based
 *    pairing heap only halves, while bucket indexing makes push/pop
 *    O(1) for the near-future deltas that dominate (clock edges, DRAM
 *    and link latencies are all well inside the window).
 *  - LegacyHeap: the original std::priority_queue of whole items; kept
 *    as the bit-exact ordering reference for differential cross-checks
 *    and as the "pre-change queue" yardstick in perf benches.
 *
 * Both backends produce identical execution orders — and therefore
 * identical event-order fingerprints — for identical schedules.
 */

#ifndef NOVA_SIM_EVENT_QUEUE_HH
#define NOVA_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nova::sim
{

class FaultInjector;

/** Default scheduling priority; lower values run first within a tick. */
constexpr int defaultPriority = 0;

/** One entry of the queue's recent-event ring (for crash bundles). */
struct RecentEvent
{
    Tick when = 0;
    int priority = 0;
    std::uint64_t seq = 0;
};

/**
 * A time-ordered queue of closures.
 *
 * Events scheduled for the same tick run in priority order, and events
 * with equal priority run in insertion order (FIFO), which keeps
 * simulations deterministic.
 */
class EventQueue
{
  public:
    /** Selectable ordering backend (see the file comment). */
    enum class Impl
    {
        Calendar,
        LegacyHeap,
    };

    /**
     * The backend new queues use when none is passed explicitly: the
     * innermost ScopedDefaultImpl override if one is active, else the
     * NOVA_EQ_IMPL environment variable ("calendar" or "legacy"), else
     * Calendar.
     */
    static Impl defaultImpl();

    /**
     * Temporarily force the default backend (e.g. the verify harness
     * running the same model under both queues). Single-threaded use
     * only; nests like a stack.
     */
    class ScopedDefaultImpl
    {
      public:
        explicit ScopedDefaultImpl(Impl impl) : prev(forced)
        {
            forced = impl;
        }
        ~ScopedDefaultImpl() { forced = prev; }
        ScopedDefaultImpl(const ScopedDefaultImpl &) = delete;
        ScopedDefaultImpl &operator=(const ScopedDefaultImpl &) = delete;

      private:
        std::optional<Impl> prev;
    };

    EventQueue() : EventQueue(defaultImpl()) {}
    explicit EventQueue(Impl backend) : impl_(backend) {}
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** The ordering backend this queue runs on. */
    Impl impl() const { return impl_; }

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of events waiting to execute. */
    std::size_t
    size() const
    {
        return impl_ == Impl::LegacyHeap ? heap.size()
                                         : nearCount + farHeap.size();
    }

    /** True when no events remain. */
    bool empty() const { return size() == 0; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Order-sensitive hash over every executed event's (tick, priority,
     * sequence number). Two runs of the same model with the same seeds
     * must end with identical fingerprints; a difference pinpoints the
     * first schedule divergence when bisecting non-determinism (the
     * record side of the verify replay workflow).
     */
    std::uint64_t fingerprint() const { return fp; }

    /**
     * Schedule a closure to run at an absolute tick.
     * @pre when >= now().
     */
    void
    schedule(Tick when, std::function<void()> fn,
             int priority = defaultPriority)
    {
        NOVA_ASSERT(when >= curTick, "scheduling in the past");
        if (impl_ == Impl::LegacyHeap) {
            heap.push(Item{when, priority, nextSeq++, std::move(fn)});
            return;
        }
        const CalEnt e{when, nextSeq++, allocNode(std::move(fn)),
                       priority};
        if ((when >> bucketShift) < scanBucket + calBuckets)
            pushNear(e);
        else
            pushFar(e);
    }

    /** Schedule a closure to run delta ticks from now. */
    void
    scheduleIn(Tick delta, std::function<void()> fn,
               int priority = defaultPriority)
    {
        schedule(tickAdd(curTick, delta), std::move(fn), priority);
    }

    /**
     * Execute the next event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains, `until` is passed, or
     * `maxEvents` events have executed.
     * @return the number of events executed by this call.
     */
    std::uint64_t run(Tick until = maxTick,
                      std::uint64_t maxEvents = ~std::uint64_t(0));

    /**
     * @{ @name Runaway guards
     * Hard ceilings on simulated time and total executed events. A run
     * that crosses either ceiling panics with a watchdog-style diagnosis
     * instead of spinning forever. 0 disables a ceiling (the default).
     */
    void
    setGuard(Tick max_tick, std::uint64_t max_events)
    {
        guardMaxTick = max_tick;
        guardMaxEvents = max_events;
    }
    Tick guardTick() const { return guardMaxTick; }
    std::uint64_t guardEvents() const { return guardMaxEvents; }
    /** @} */

    /**
     * Install an out-of-band check invoked after every `every` executed
     * events. The callback runs outside the event stream: it is not an
     * event, consumes no sequence number and must not schedule work, so
     * the fingerprint is unaffected. Used by the Watchdog. `every` = 0
     * (or a null fn) uninstalls.
     */
    void
    setPeriodicCheck(std::uint64_t every, std::function<void()> fn)
    {
        checkEvery = fn ? every : 0;
        checkFn = std::move(fn);
    }

    /**
     * @{ @name Fault-injector attachment
     * Components reach the (optional) injector through their queue so no
     * constructor signature changes when fault injection is off. Null
     * when no injector is attached.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }
    FaultInjector *faultInjector() const { return injector; }
    /** @} */

    /**
     * Tick of the next pending event, without mutating queue state.
     * @return false when the queue is empty. Used by the parallel
     * scheduler to compute the global safe-time horizon.
     */
    bool
    peekNextTick(Tick &when) const
    {
        return peekKey(when);
    }

    /**
     * Append every executed event's (when, priority, seq) to `sink`
     * (in execution order) in addition to the fingerprint fold. Null
     * (the default) disables tracing. The parallel scheduler's
     * deterministic-merge mode uses this to build the canonical merged
     * event order across shards.
     */
    void setTraceSink(std::vector<RecentEvent> *sink) { traceSink = sink; }

    /**
     * The last executed events, oldest first (at most recentCapacity).
     * Recorded unconditionally; used by crash bundles and diagnoses.
     */
    std::vector<RecentEvent> recentEvents() const;

    /** Ring capacity of the recent-event log. */
    static constexpr std::size_t recentCapacity = 64;

    /**
     * @{ @name Checkpoint support
     * The scheduling state that must survive a checkpoint: current tick,
     * the next sequence number, the executed-event count and the order
     * fingerprint. Only valid at quiescence (empty queue); restoring
     * into a non-empty queue is a bug.
     */
    void saveSchedulingState(Tick &tick, std::uint64_t &next_seq,
                             std::uint64_t &executed_count,
                             std::uint64_t &fingerprint_value) const;
    void restoreSchedulingState(Tick tick, std::uint64_t next_seq,
                                std::uint64_t executed_count,
                                std::uint64_t fingerprint_value);
    /** @} */

    /**
     * Advance the clock of an empty queue without executing anything.
     * The parallel scheduler resynchronizes shard clocks to the global
     * maximum at quiescence so later cross-shard messages can never
     * land in a shard's past. @pre empty() and when >= now().
     */
    void
    fastForward(Tick when)
    {
        NOVA_ASSERT(empty(), "fast-forwarding a non-empty queue");
        NOVA_ASSERT(when >= curTick, "fast-forwarding into the past");
        curTick = when;
        scanBucket = when >> bucketShift;
    }

  private:
    /** @{ @name Calendar geometry (both powers of two). */
    static constexpr unsigned bucketShift = 10;
    static constexpr Tick bucketTicks = Tick(1) << bucketShift;
    static constexpr std::size_t calBuckets = 256;
    static constexpr std::size_t bucketMask = calBuckets - 1;
    static constexpr std::size_t occWords = calBuckets / 64;
    /** @} */

    /**
     * One calendar entry: the full (when, priority, seq) sort key plus
     * the pool slot of the closure. Keys live inline in the bucket
     * heaps so sift comparisons never touch the pool.
     */
    struct CalEnt
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t id;
        std::int32_t priority;
    };

    /** One entry of the legacy backend's heap. */
    struct Item
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    /** True when entry `a` must execute after entry `b`. */
    static bool
    entAfter(const CalEnt &a, const CalEnt &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        if (a.priority != b.priority)
            return a.priority > b.priority;
        return a.seq > b.seq;
    }

    std::uint32_t
    allocNode(std::function<void()> fn)
    {
        std::uint32_t id;
        if (freeList.empty()) {
            id = static_cast<std::uint32_t>(pool.size());
            pool.emplace_back();
        } else {
            id = freeList.back();
            freeList.pop_back();
        }
        pool[id] = std::move(fn);
        return id;
    }

    void pushNear(const CalEnt &e);
    void pushFar(const CalEnt &e);
    void migrateFar();
    std::uint64_t scanForward(std::uint64_t from) const;
    bool peekKey(Tick &when) const;
    [[noreturn]] void guardTripped(const char *which, Tick when,
                                   int priority, std::uint64_t seq);
    bool runOneLegacy();

    const Impl impl_;
    // Test hook: written once, single-threaded, before any queue or
    // worker thread exists; read-only from then on.
    // novalint:allow(shard-safety) set before threads start, then const
    static inline std::optional<Impl> forced;

    /** @{ @name Calendar backend state */
    std::vector<std::function<void()>> pool; ///< closures, by CalEnt::id
    std::vector<std::uint32_t> freeList;
    std::array<std::vector<CalEnt>, calBuckets> buckets;
    std::array<std::uint64_t, occWords> occ{};
    /** Global bucket number (when >> bucketShift) of the scan cursor;
     *  never exceeds the bucket of the last executed event, so every
     *  pending near event lies in [scanBucket, scanBucket+calBuckets). */
    std::uint64_t scanBucket = 0;
    std::vector<CalEnt> farHeap; ///< beyond-window events
    std::size_t nearCount = 0;
    /** @} */

    /** Legacy backend state. */
    std::priority_queue<Item, std::vector<Item>, Later> heap;

    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::uint64_t fp = 0xcbf29ce484222325ULL; // FNV-1a offset basis

    Tick guardMaxTick = 0;
    std::uint64_t guardMaxEvents = 0;
    std::uint64_t checkEvery = 0;
    std::function<void()> checkFn;
    FaultInjector *injector = nullptr;
    std::vector<RecentEvent> *traceSink = nullptr;
    std::array<RecentEvent, recentCapacity> recent{};
};

/**
 * A reschedulable event bound to a fixed callback.
 *
 * Components use this for their "wake up and do work" events: scheduling
 * while already pending is a no-op, and deschedule() cancels a pending
 * occurrence. The owning object must outlive the queue's processing of
 * the event (all components live for the whole simulation).
 */
class SelfEvent
{
  public:
    SelfEvent(EventQueue &queue, std::function<void()> callback)
        : q(queue), fn(std::move(callback))
    {
    }

    SelfEvent(const SelfEvent &) = delete;
    SelfEvent &operator=(const SelfEvent &) = delete;

    /** True if an occurrence is pending. */
    bool scheduled() const { return pending; }

    /** Tick of the pending occurrence (valid only when scheduled()). */
    Tick when() const { return pendingWhen; }

    /** Schedule at an absolute tick; no-op when already pending. */
    void
    schedule(Tick when, int priority = defaultPriority)
    {
        if (pending)
            return;
        pending = true;
        pendingWhen = when;
        const std::uint64_t g = ++generation;
        q.schedule(when, [this, g] {
            if (g != generation)
                return;
            pending = false;
            fn();
        }, priority);
    }

    /** Schedule delta ticks from now; no-op when already pending. */
    void
    scheduleIn(Tick delta, int priority = defaultPriority)
    {
        schedule(tickAdd(q.now(), delta), priority);
    }

    /** Cancel any pending occurrence. */
    void
    deschedule()
    {
        ++generation;
        pending = false;
    }

  private:
    EventQueue &q;
    std::function<void()> fn;
    bool pending = false;
    Tick pendingWhen = 0;
    std::uint64_t generation = 0;
};

} // namespace nova::sim

#endif // NOVA_SIM_EVENT_QUEUE_HH
