/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders all simulation work by (tick, priority,
 * insertion order). Components schedule closures; the queue executes them
 * in deterministic order, making whole-system runs reproducible.
 */

#ifndef NOVA_SIM_EVENT_QUEUE_HH
#define NOVA_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace nova::sim
{

class FaultInjector;

/** Default scheduling priority; lower values run first within a tick. */
constexpr int defaultPriority = 0;

/** One entry of the queue's recent-event ring (for crash bundles). */
struct RecentEvent
{
    Tick when = 0;
    int priority = 0;
    std::uint64_t seq = 0;
};

/**
 * A time-ordered queue of closures.
 *
 * Events scheduled for the same tick run in priority order, and events
 * with equal priority run in insertion order (FIFO), which keeps
 * simulations deterministic.
 */
class EventQueue
{
  public:
    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /** Number of events waiting to execute. */
    std::size_t size() const { return heap.size(); }

    /** True when no events remain. */
    bool empty() const { return heap.empty(); }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return numExecuted; }

    /**
     * Order-sensitive hash over every executed event's (tick, priority,
     * sequence number). Two runs of the same model with the same seeds
     * must end with identical fingerprints; a difference pinpoints the
     * first schedule divergence when bisecting non-determinism (the
     * record side of the verify replay workflow).
     */
    std::uint64_t fingerprint() const { return fp; }

    /**
     * Schedule a closure to run at an absolute tick.
     * @pre when >= now().
     */
    void
    schedule(Tick when, std::function<void()> fn,
             int priority = defaultPriority)
    {
        NOVA_ASSERT(when >= curTick, "scheduling in the past");
        heap.push(Item{when, priority, nextSeq++, std::move(fn)});
    }

    /** Schedule a closure to run delta ticks from now. */
    void
    scheduleIn(Tick delta, std::function<void()> fn,
               int priority = defaultPriority)
    {
        schedule(tickAdd(curTick, delta), std::move(fn), priority);
    }

    /**
     * Execute the next event, advancing time to it.
     * @return false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains, `until` is passed, or
     * `maxEvents` events have executed.
     * @return the number of events executed by this call.
     */
    std::uint64_t run(Tick until = maxTick,
                      std::uint64_t maxEvents = ~std::uint64_t(0));

    /**
     * @{ @name Runaway guards
     * Hard ceilings on simulated time and total executed events. A run
     * that crosses either ceiling panics with a watchdog-style diagnosis
     * instead of spinning forever. 0 disables a ceiling (the default).
     */
    void
    setGuard(Tick max_tick, std::uint64_t max_events)
    {
        guardMaxTick = max_tick;
        guardMaxEvents = max_events;
    }
    Tick guardTick() const { return guardMaxTick; }
    std::uint64_t guardEvents() const { return guardMaxEvents; }
    /** @} */

    /**
     * Install an out-of-band check invoked after every `every` executed
     * events. The callback runs outside the event stream: it is not an
     * event, consumes no sequence number and must not schedule work, so
     * the fingerprint is unaffected. Used by the Watchdog. `every` = 0
     * (or a null fn) uninstalls.
     */
    void
    setPeriodicCheck(std::uint64_t every, std::function<void()> fn)
    {
        checkEvery = fn ? every : 0;
        checkFn = std::move(fn);
    }

    /**
     * @{ @name Fault-injector attachment
     * Components reach the (optional) injector through their queue so no
     * constructor signature changes when fault injection is off. Null
     * when no injector is attached.
     */
    void setFaultInjector(FaultInjector *inj) { injector = inj; }
    FaultInjector *faultInjector() const { return injector; }
    /** @} */

    /**
     * The last executed events, oldest first (at most recentCapacity).
     * Recorded unconditionally; used by crash bundles and diagnoses.
     */
    std::vector<RecentEvent> recentEvents() const;

    /** Ring capacity of the recent-event log. */
    static constexpr std::size_t recentCapacity = 64;

    /**
     * @{ @name Checkpoint support
     * The scheduling state that must survive a checkpoint: current tick,
     * the next sequence number, the executed-event count and the order
     * fingerprint. Only valid at quiescence (empty queue); restoring
     * into a non-empty queue is a bug.
     */
    void saveSchedulingState(Tick &tick, std::uint64_t &next_seq,
                             std::uint64_t &executed_count,
                             std::uint64_t &fingerprint_value) const;
    void restoreSchedulingState(Tick tick, std::uint64_t next_seq,
                                std::uint64_t executed_count,
                                std::uint64_t fingerprint_value);
    /** @} */

  private:
    struct Item
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    [[noreturn]] void guardTripped(const char *which, const Item &item);

    std::priority_queue<Item, std::vector<Item>, Later> heap;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    std::uint64_t fp = 0xcbf29ce484222325ULL; // FNV-1a offset basis

    Tick guardMaxTick = 0;
    std::uint64_t guardMaxEvents = 0;
    std::uint64_t checkEvery = 0;
    std::function<void()> checkFn;
    FaultInjector *injector = nullptr;
    std::array<RecentEvent, recentCapacity> recent{};
};

/**
 * A reschedulable event bound to a fixed callback.
 *
 * Components use this for their "wake up and do work" events: scheduling
 * while already pending is a no-op, and deschedule() cancels a pending
 * occurrence. The owning object must outlive the queue's processing of
 * the event (all components live for the whole simulation).
 */
class SelfEvent
{
  public:
    SelfEvent(EventQueue &queue, std::function<void()> callback)
        : q(queue), fn(std::move(callback))
    {
    }

    SelfEvent(const SelfEvent &) = delete;
    SelfEvent &operator=(const SelfEvent &) = delete;

    /** True if an occurrence is pending. */
    bool scheduled() const { return pending; }

    /** Tick of the pending occurrence (valid only when scheduled()). */
    Tick when() const { return pendingWhen; }

    /** Schedule at an absolute tick; no-op when already pending. */
    void
    schedule(Tick when, int priority = defaultPriority)
    {
        if (pending)
            return;
        pending = true;
        pendingWhen = when;
        const std::uint64_t g = ++generation;
        q.schedule(when, [this, g] {
            if (g != generation)
                return;
            pending = false;
            fn();
        }, priority);
    }

    /** Schedule delta ticks from now; no-op when already pending. */
    void
    scheduleIn(Tick delta, int priority = defaultPriority)
    {
        schedule(tickAdd(q.now(), delta), priority);
    }

    /** Cancel any pending occurrence. */
    void
    deschedule()
    {
        ++generation;
        pending = false;
    }

  private:
    EventQueue &q;
    std::function<void()> fn;
    bool pending = false;
    Tick pendingWhen = 0;
    std::uint64_t generation = 0;
};

} // namespace nova::sim

#endif // NOVA_SIM_EVENT_QUEUE_HH
