/**
 * @file
 * Deterministic fault injection, watchdog supervision and crash bundles.
 *
 * A single FaultInjector per simulation owns a parsed fault schedule and
 * hands out FaultPoint handles to components (DRAM channels, caches, NoC
 * fabrics, the VMU spill path). A point is an *opportunity counter*: the
 * component asks `fire()` at every opportunity (a DRAM read completing, a
 * message being delivered, ...) and the injector decides — from the
 * schedule and a per-point seeded Rng — whether a fault occurs there.
 * With no schedule configured every `fire()` is a counter increment and a
 * null check, consumes no random numbers and schedules no events, so a
 * fault-free run is bit-identical to a build without the subsystem.
 *
 * Schedule grammar (shell-safe; also embeddable in replay tokens):
 *
 *   schedule := entry ('+' entry)*
 *   entry    := kind ['@' instance-prefix] ':' trigger [':' 'mask=' hex]
 *   trigger  := 'n=' N        fire exactly at the N-th opportunity (1-based)
 *             | 'every=' N    fire at every N-th opportunity
 *             | 'p=' P        fire with probability P per opportunity
 *             | 'tick=' T     hard faults only: apply at the first BSP
 *                             barrier at or after simulated tick T
 *
 * e.g. `dram.bitflip:every=64:mask=3+noc.drop@gpn0:n=5`. Known kinds are
 * listed in docs/RESILIENCE.md; configure() rejects unknown kinds and
 * malformed entries via fatal().
 *
 * Hard (permanent) faults share the grammar but not the opportunity
 * machinery: `gpn.dead@gpn1:tick=T`, `shard.crash@gpn1:tick=T`,
 * `spill.loss@pe3:tick=T` and `noc.linkdown@gpn1:tick=T` parse into
 * HardFault records that the system applies once, at the first BSP
 * barrier at or after tick T (the only points of global quiescence, so
 * failover can remap state without serializing in-flight events). They
 * require a `tick=` trigger and a targeted instance; transient kinds
 * reject `tick=`. See docs/RESILIENCE.md "Hard faults & degraded mode".
 *
 * The Watchdog detects hangs without perturbing the event stream: the
 * EventQueue invokes its check out-of-band every N executed events (no
 * event is scheduled, no sequence number consumed, so the event-order
 * fingerprint is unchanged). Livelock = a full strike budget of check
 * intervals with no progress heartbeat advancing; deadlock = the queue
 * drained while pending-work probes report outstanding work. Both abort
 * with a diagnosis (probe values + recent-event ring) via panic().
 *
 * Crash bundles: when a PanicError escapes to the CLI, the installed
 * crash context (event queue, stats dump, replay token) is written to a
 * bundle file so the failure can be reproduced with one command.
 */

#ifndef NOVA_SIM_FAULT_HH
#define NOVA_SIM_FAULT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/random.hh"
#include "sim/types.hh"

namespace nova::sim
{

class CheckpointReader;
class CheckpointWriter;
class EventQueue;

/** One parsed schedule entry: which points it arms and when they fire. */
struct FaultAction
{
    enum class Trigger
    {
        Nth,   ///< fire exactly at the n-th opportunity (1-based)
        Every, ///< fire at every n-th opportunity
        Prob,  ///< fire with probability p per opportunity
    };

    std::string kind;           ///< e.g. "dram.bitflip"
    std::string instancePrefix; ///< empty matches every instance
    Trigger trigger = Trigger::Every;
    std::uint64_t n = 1;        ///< for Nth / Every
    double p = 0;               ///< for Prob
    std::uint64_t mask = 1;     ///< payload (e.g. bits to flip)
};

/**
 * One parsed permanent-failure entry. Unlike transient FaultActions,
 * hard faults are not opportunity counters: the system applies each
 * one exactly once, at the first BSP barrier whose tick is >= atTick,
 * then runs on in degraded mode (docs/RESILIENCE.md).
 */
struct HardFault
{
    enum class Kind
    {
        GpnDead,    ///< gpn.dead@gpn<K>: GPN K dies; its slices remap
        ShardCrash, ///< shard.crash@gpn<K>: checkpoint, then crash
        SpillLoss,  ///< spill.loss@pe<K>: PE K's spill region is lost
        LinkDown,   ///< noc.linkdown@gpn<K>: GPN K's crossbar link dies
    };

    Kind kind = Kind::GpnDead;
    std::uint32_t target = 0; ///< GPN (or PE for SpillLoss) index
    Tick atTick = 0;          ///< barrier threshold (tick= trigger)
};

/** Short stable name of a hard-fault kind ("gpn.dead", ...). */
const char *hardFaultKindName(HardFault::Kind kind);

/**
 * A registered injection opportunity stream inside one component.
 *
 * Obtained from FaultInjector::registerPoint; components keep the raw
 * pointer (the injector owns the point and outlives the components of
 * one run).
 */
class FaultPoint
{
  public:
    /**
     * Record one opportunity; true when a fault fires here.
     * @param mask_out receives the firing action's mask when non-null.
     */
    bool fire(std::uint64_t *mask_out = nullptr);

    const std::string &kind() const { return kindName; }
    const std::string &instance() const { return instanceName; }
    std::uint64_t opportunities() const { return count; }
    std::uint64_t fired() const { return nFired; }

  private:
    friend class FaultInjector;

    FaultPoint(std::string kind, std::string instance)
        : kindName(std::move(kind)), instanceName(std::move(instance))
    {
    }

    struct Match
    {
        const FaultAction *action;
        Rng rng; ///< private stream for Prob triggers
    };

    std::string kindName;
    std::string instanceName;
    std::vector<Match> matches;
    std::uint64_t count = 0;
    std::uint64_t nFired = 0;
};

/**
 * Central, seeded, schedule-driven fault source for one simulation.
 *
 * Lifecycle: construct with a seed, configure() with a schedule string,
 * attach to the EventQueue, then build components (they register their
 * points in their constructors). configure() must precede registration.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed_value = 0);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Parse and install a schedule; fatal() on malformed input. */
    void configure(const std::string &schedule);

    /** Empty string when valid, otherwise a description of the error. */
    static std::string validateSchedule(const std::string &schedule);

    /** True when at least one schedule entry is armed. */
    bool enabled() const { return !actions.empty() || !hards.empty(); }

    /** True when any *transient* (opportunity-counter) entry is armed. */
    bool hasTransient() const { return !actions.empty(); }

    /** Parsed permanent-failure entries, in schedule order. */
    const std::vector<HardFault> &hardFaults() const { return hards; }

    /** The schedule string this injector was configured with. */
    const std::string &schedule() const { return scheduleText; }

    /**
     * Register an injection point. Instance names are dotted component
     * names (e.g. "gpn0.pe1.vertexMem.ch0") matched by schedule entries
     * via prefix.
     */
    FaultPoint *registerPoint(const std::string &kind,
                              const std::string &instance);

    /** All registered points, in registration order. */
    const std::vector<std::unique_ptr<FaultPoint>> &points() const
    {
        return pts;
    }

    /** Total faults fired across every point. */
    std::uint64_t totalFired() const;

    /** @{ @name Checkpoint support (opportunity counters + rng streams) */
    void saveState(CheckpointWriter &w) const;
    void restoreState(CheckpointReader &r);
    /** @} */

  private:
    std::uint64_t seed;
    std::string scheduleText;
    std::vector<FaultAction> actions;
    std::vector<HardFault> hards;
    std::vector<std::unique_ptr<FaultPoint>> pts;
};

/**
 * Deadlock/livelock supervisor for one EventQueue.
 *
 * Progress probes are monotonically increasing counters that must
 * advance while real work happens (messages processed, memory traffic).
 * Pending probes report outstanding work that must be zero when the
 * queue drains. arm() hooks the queue's out-of-band periodic check.
 */
class Watchdog
{
  public:
    Watchdog(EventQueue &queue, std::uint64_t check_interval_events,
             std::uint32_t strike_budget);
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Register a heartbeat counter that advances with useful work. */
    void addProgress(std::string probe_name,
                     std::function<std::uint64_t()> probe);

    /** Register an outstanding-work gauge (0 at true quiescence). */
    void addPending(std::string probe_name,
                    std::function<std::uint64_t()> probe);

    /** Install the periodic check on the queue. */
    void arm();

    /** Remove the periodic check. */
    void disarm();

    /**
     * Livelock check, invoked by the queue every check interval. Panics
     * with a diagnosis after `strike_budget` intervals without any
     * progress probe advancing.
     */
    void check();

    /**
     * Deadlock check after the queue drained: panics with a diagnosis
     * when any pending probe still reports outstanding work.
     */
    void checkQuiescence() const;

  private:
    struct Probe
    {
        std::string name;
        std::function<std::uint64_t()> fn;
        std::uint64_t last = 0;
    };

    std::string diagnosis(const std::string &verdict) const;

    EventQueue &eq;
    std::uint64_t interval;
    std::uint32_t strikeBudget;
    std::uint32_t strikesUsed = 0;
    std::vector<Probe> progressProbes;
    std::vector<Probe> pendingProbes;
    bool armed = false;
};

namespace crash
{

/**
 * RAII installer for the crash-bundle context of one run: the event
 * queue (for the recent-event ring and fingerprint) and a stats dumper.
 */
class Scope
{
  public:
    Scope(const EventQueue *queue,
          std::function<void(std::ostream &)> stats_dump);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;
};

/** One-line token/command that reproduces the failing run. */
void setReplayToken(const std::string &token);
const std::string &replayToken();

/** Where writeBundle() writes; empty selects "nova_crash.txt". */
void setBundlePath(const std::string &path);

/**
 * Write a crash bundle (diagnosis, replay token, recent-event ring,
 * stats snapshot) for a caught PanicError.
 * @return the path written, or empty when writing failed.
 */
std::string writeBundle(const std::string &what);

/**
 * Path of the last bundle writeBundle() produced (empty when none was
 * written). Lets an outer handler tell that an inner one — e.g.
 * NovaSystem::run's catch, which runs while the components are still
 * alive — already wrote the bundle for the in-flight panic.
 */
const std::string &lastBundle();

} // namespace crash

} // namespace nova::sim

#endif // NOVA_SIM_FAULT_HH
