#include "sim/event_queue.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "sim/profile.hh"

namespace nova::sim
{

EventQueue::Impl
EventQueue::defaultImpl()
{
    if (forced)
        return *forced;
    if (const char *env = std::getenv("NOVA_EQ_IMPL")) {
        if (std::strcmp(env, "legacy") == 0)
            return Impl::LegacyHeap;
        if (std::strcmp(env, "calendar") == 0 || env[0] == '\0')
            return Impl::Calendar;
        fatal("NOVA_EQ_IMPL must be 'calendar' or 'legacy', not '", env,
              "'");
    }
    return Impl::Calendar;
}

void
EventQueue::pushNear(const CalEnt &e)
{
    const std::uint64_t bucket = e.when >> bucketShift;
    auto &b = buckets[bucket & bucketMask];
    b.push_back(e);
    std::push_heap(b.begin(), b.end(), entAfter);
    occ[(bucket & bucketMask) >> 6] |= std::uint64_t(1)
                                       << (bucket & bucketMask & 63);
    ++nearCount;
}

void
EventQueue::pushFar(const CalEnt &e)
{
    farHeap.push_back(e);
    std::push_heap(farHeap.begin(), farHeap.end(), entAfter);
}

/** Pull every overflow event that now falls inside the window. */
void
EventQueue::migrateFar()
{
    while (!farHeap.empty() &&
           (farHeap.front().when >> bucketShift) <
               scanBucket + calBuckets) {
        const CalEnt e = farHeap.front();
        std::pop_heap(farHeap.begin(), farHeap.end(), entAfter);
        farHeap.pop_back();
        pushNear(e);
    }
}

/**
 * First non-empty bucket at or after global bucket `from`, as a global
 * bucket number. @pre nearCount > 0 and every near event's bucket is in
 * [from, from + calBuckets).
 */
std::uint64_t
EventQueue::scanForward(std::uint64_t from) const
{
    const std::size_t start = from & bucketMask;
    std::size_t w = start >> 6;
    std::uint64_t word = occ[w] & (~std::uint64_t(0) << (start & 63));
    std::size_t wrapped = 0;
    while (word == 0) {
        w = (w + 1) % occWords;
        word = occ[w];
        ++wrapped;
        NOVA_ASSERT(wrapped <= occWords, "calendar occupancy empty");
    }
    const std::size_t found =
        w * 64 +
        static_cast<std::size_t>(__builtin_ctzll(word));
    const std::size_t dist = (found - start) & bucketMask;
    return from + dist;
}

/** Tick of the next pending event without mutating calendar state. */
bool
EventQueue::peekKey(Tick &when) const
{
    if (impl_ == Impl::LegacyHeap) {
        if (heap.empty())
            return false;
        when = heap.top().when;
        return true;
    }
    // Near events always precede overflow ones: the overflow heap only
    // holds events at or beyond the window end.
    if (nearCount > 0) {
        const std::uint64_t b = scanForward(scanBucket);
        when = buckets[b & bucketMask].front().when;
        return true;
    }
    if (!farHeap.empty()) {
        when = farHeap.front().when;
        return true;
    }
    return false;
}

void
EventQueue::guardTripped(const char *which, Tick when, int priority,
                         std::uint64_t seq)
{
    panic("event-queue guard tripped (", which, "): next event at tick ",
          when, " priority ", priority, " seq ", seq, "; now=", curTick,
          " executed=", numExecuted, " pending=", size(),
          " guard{maxTick=", guardMaxTick, ", maxEvents=", guardMaxEvents,
          "}. The run exceeded its configured ceiling -- likely a "
          "livelock or a missing termination condition.");
}

bool
EventQueue::runOneLegacy()
{
    if (heap.empty())
        return false;
    if (guardMaxEvents && numExecuted >= guardMaxEvents)
        guardTripped("max-events", heap.top().when, heap.top().priority,
                     heap.top().seq);
    if (guardMaxTick && heap.top().when > guardMaxTick)
        guardTripped("max-tick", heap.top().when, heap.top().priority,
                     heap.top().seq);
    // Move the closure out before popping so it may schedule new events.
    Item item = std::move(const_cast<Item &>(heap.top()));
    heap.pop();
    NOVA_ASSERT(item.when >= curTick, "event queue went backwards");
    curTick = item.when;
    recent[numExecuted % recentCapacity] =
        RecentEvent{item.when, item.priority, item.seq};
    if (traceSink)
        traceSink->push_back(
            RecentEvent{item.when, item.priority, item.seq});
    ++numExecuted;
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    fp = (fp ^ item.when) * prime;
    fp = (fp ^ static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(item.priority))) *
         prime;
    fp = (fp ^ item.seq) * prime;
    item.fn();
    if (checkEvery && numExecuted % checkEvery == 0)
        checkFn();
    return true;
}

bool
EventQueue::runOne()
{
    if (impl_ == Impl::LegacyHeap)
        return runOneLegacy();

    if (nearCount == 0) {
        if (farHeap.empty())
            return false;
        // The window is empty: jump it to the earliest overflow event.
        scanBucket = farHeap.front().when >> bucketShift;
        migrateFar();
    }
    const std::uint64_t b = scanForward(scanBucket);
    if (b != scanBucket) {
        // Sliding the window forward may expose overflow events that now
        // fit; they are all later than bucket b's events, so the pop
        // order is unaffected.
        scanBucket = b;
        migrateFar();
    }

    auto &bucket = buckets[b & bucketMask];
    const CalEnt e = bucket.front();
    if (guardMaxEvents && numExecuted >= guardMaxEvents)
        guardTripped("max-events", e.when, e.priority, e.seq);
    if (guardMaxTick && e.when > guardMaxTick)
        guardTripped("max-tick", e.when, e.priority, e.seq);

    std::pop_heap(bucket.begin(), bucket.end(), entAfter);
    bucket.pop_back();
    if (bucket.empty())
        occ[(b & bucketMask) >> 6] &=
            ~(std::uint64_t(1) << (b & bucketMask & 63));
    --nearCount;

    // Move the closure out and recycle its pool slot before invoking it:
    // the closure may schedule new events, growing the pool and
    // invalidating pool references.
    const Tick when = e.when;
    const int priority = e.priority;
    const std::uint64_t seq = e.seq;
    std::function<void()> fn = std::move(pool[e.id]);
    pool[e.id] = nullptr;
    freeList.push_back(e.id);

    NOVA_ASSERT(when >= curTick, "event queue went backwards");
    curTick = when;
    recent[numExecuted % recentCapacity] = RecentEvent{when, priority, seq};
    if (traceSink)
        traceSink->push_back(RecentEvent{when, priority, seq});
    ++numExecuted;
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    fp = (fp ^ when) * prime;
    fp = (fp ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(
                   priority))) *
         prime;
    fp = (fp ^ seq) * prime;
    fn();
    if (checkEvery && numExecuted % checkEvery == 0)
        checkFn();
    return true;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t maxEvents)
{
    profile::Scope prof_scope(profile::loopSite());
    std::uint64_t count = 0;
    if (until == maxTick) {
        // Full drain: no tick bound to check, so skip the per-event
        // peek (which repeats the calendar's bucket scan).
        while (count < maxEvents && runOne())
            ++count;
        return count;
    }
    Tick next = 0;
    while (count < maxEvents && peekKey(next) && next <= until) {
        runOne();
        ++count;
    }
    return count;
}

std::vector<RecentEvent>
EventQueue::recentEvents() const
{
    std::vector<RecentEvent> out;
    const std::uint64_t n =
        numExecuted < recentCapacity ? numExecuted : recentCapacity;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(recent[(numExecuted - n + i) % recentCapacity]);
    return out;
}

void
EventQueue::saveSchedulingState(Tick &tick, std::uint64_t &next_seq,
                                std::uint64_t &executed_count,
                                std::uint64_t &fingerprint_value) const
{
    NOVA_ASSERT(empty(),
                "saving event-queue state with events still pending");
    tick = curTick;
    next_seq = nextSeq;
    executed_count = numExecuted;
    fingerprint_value = fp;
}

void
EventQueue::restoreSchedulingState(Tick tick, std::uint64_t next_seq,
                                   std::uint64_t executed_count,
                                   std::uint64_t fingerprint_value)
{
    NOVA_ASSERT(empty(),
                "restoring event-queue state with events still pending");
    NOVA_ASSERT(tick >= curTick, "restored tick behind current tick");
    curTick = tick;
    scanBucket = tick >> bucketShift;
    nextSeq = next_seq;
    numExecuted = executed_count;
    fp = fingerprint_value;
}

} // namespace nova::sim
