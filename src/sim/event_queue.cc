#include "sim/event_queue.hh"

namespace nova::sim
{

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    // Move the closure out before popping so it may schedule new events.
    Item item = std::move(const_cast<Item &>(heap.top()));
    heap.pop();
    NOVA_ASSERT(item.when >= curTick, "event queue went backwards");
    curTick = item.when;
    ++numExecuted;
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    fp = (fp ^ item.when) * prime;
    fp = (fp ^ static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(item.priority))) *
         prime;
    fp = (fp ^ item.seq) * prime;
    item.fn();
    return true;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (count < maxEvents && !heap.empty() && heap.top().when <= until) {
        runOne();
        ++count;
    }
    return count;
}

} // namespace nova::sim
