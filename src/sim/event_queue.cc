#include "sim/event_queue.hh"

namespace nova::sim
{

void
EventQueue::guardTripped(const char *which, const Item &item)
{
    panic("event-queue guard tripped (", which, "): next event at tick ",
          item.when, " priority ", item.priority, " seq ", item.seq,
          "; now=", curTick, " executed=", numExecuted,
          " pending=", heap.size(), " guard{maxTick=", guardMaxTick,
          ", maxEvents=", guardMaxEvents,
          "}. The run exceeded its configured ceiling -- likely a "
          "livelock or a missing termination condition.");
}

bool
EventQueue::runOne()
{
    if (heap.empty())
        return false;
    if (guardMaxEvents && numExecuted >= guardMaxEvents)
        guardTripped("max-events", heap.top());
    if (guardMaxTick && heap.top().when > guardMaxTick)
        guardTripped("max-tick", heap.top());
    // Move the closure out before popping so it may schedule new events.
    Item item = std::move(const_cast<Item &>(heap.top()));
    heap.pop();
    NOVA_ASSERT(item.when >= curTick, "event queue went backwards");
    curTick = item.when;
    recent[numExecuted % recentCapacity] =
        RecentEvent{item.when, item.priority, item.seq};
    ++numExecuted;
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    fp = (fp ^ item.when) * prime;
    fp = (fp ^ static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(item.priority))) *
         prime;
    fp = (fp ^ item.seq) * prime;
    item.fn();
    if (checkEvery && numExecuted % checkEvery == 0)
        checkFn();
    return true;
}

std::uint64_t
EventQueue::run(Tick until, std::uint64_t maxEvents)
{
    std::uint64_t count = 0;
    while (count < maxEvents && !heap.empty() && heap.top().when <= until) {
        runOne();
        ++count;
    }
    return count;
}

std::vector<RecentEvent>
EventQueue::recentEvents() const
{
    std::vector<RecentEvent> out;
    const std::uint64_t n =
        numExecuted < recentCapacity ? numExecuted : recentCapacity;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back(recent[(numExecuted - n + i) % recentCapacity]);
    return out;
}

void
EventQueue::saveSchedulingState(Tick &tick, std::uint64_t &next_seq,
                                std::uint64_t &executed_count,
                                std::uint64_t &fingerprint_value) const
{
    NOVA_ASSERT(heap.empty(),
                "saving event-queue state with events still pending");
    tick = curTick;
    next_seq = nextSeq;
    executed_count = numExecuted;
    fingerprint_value = fp;
}

void
EventQueue::restoreSchedulingState(Tick tick, std::uint64_t next_seq,
                                   std::uint64_t executed_count,
                                   std::uint64_t fingerprint_value)
{
    NOVA_ASSERT(heap.empty(),
                "restoring event-queue state with events still pending");
    NOVA_ASSERT(tick >= curTick, "restored tick behind current tick");
    curTick = tick;
    nextSeq = next_seq;
    numExecuted = executed_count;
    fp = fingerprint_value;
}

} // namespace nova::sim
