#include "sim/fault.hh"

#include <fstream>
#include <sstream>

#include "sim/checkpoint.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nova::sim
{

namespace
{

/** Kinds with a wired injection point; configure() rejects others. */
const char *const knownKinds[] = {
    "dram.bitflip", "dram.txn",    "cache.ecc",     "noc.drop",
    "noc.corrupt",  "noc.dup",     "spill.corrupt", "reduce.bitflip",
};

bool
kindKnown(const std::string &kind)
{
    for (const char *k : knownKinds)
        if (kind == k)
            return true;
    return false;
}

/** Permanent-failure kinds; applied once at a BSP barrier. */
struct HardKindSpec
{
    const char *name;
    HardFault::Kind kind;
    const char *instancePrefix; ///< required @instance shape
};

const HardKindSpec hardKindSpecs[] = {
    {"gpn.dead", HardFault::Kind::GpnDead, "gpn"},
    {"shard.crash", HardFault::Kind::ShardCrash, "gpn"},
    {"spill.loss", HardFault::Kind::SpillLoss, "pe"},
    {"noc.linkdown", HardFault::Kind::LinkDown, "gpn"},
};

const HardKindSpec *
hardKindSpec(const std::string &kind)
{
    for (const HardKindSpec &s : hardKindSpecs)
        if (kind == s.name)
            return &s;
    return nullptr;
}

bool
scheduleCharset(const std::string &s)
{
    for (char c : s) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                        c == '@' || c == ':' || c == '=' || c == '+' ||
                        c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (const std::invalid_argument &) {
        return false;
    } catch (const std::out_of_range &) {
        return false;
    }
}

bool
parseHex(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    out = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        out = (out << 4) | static_cast<std::uint64_t>(digit);
    }
    return true;
}

bool
parseProb(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    try {
        std::size_t pos = 0;
        out = std::stod(s, &pos);
        return pos == s.size() && out > 0 && out <= 1;
    } catch (const std::invalid_argument &) {
        return false;
    } catch (const std::out_of_range &) {
        return false;
    }
}

/** Parse one schedule into actions + hard faults; empty = success. */
std::string
parseSchedule(const std::string &schedule, std::vector<FaultAction> &out,
              std::vector<HardFault> &hard_out)
{
    if (schedule.empty())
        return "";
    if (!scheduleCharset(schedule))
        return "schedule contains characters outside [A-Za-z0-9_.@:=+-]";
    for (const std::string &entry : splitOn(schedule, '+')) {
        if (entry.empty())
            return "empty schedule entry (stray '+')";
        std::vector<std::string> fields = splitOn(entry, ':');
        if (fields.size() < 2 || fields.size() > 3)
            return "entry '" + entry +
                   "' is not kind[@instance]:trigger[:mask=hex]";

        FaultAction action;
        const std::string &target = fields[0];
        const std::size_t at = target.find('@');
        action.kind = target.substr(0, at);
        if (at != std::string::npos)
            action.instancePrefix = target.substr(at + 1);

        if (const HardKindSpec *spec = hardKindSpec(action.kind)) {
            if (fields.size() != 2)
                return "hard fault '" + entry + "' takes no mask field";
            if (fields[1].rfind("tick=", 0) != 0)
                return "hard fault '" + entry +
                       "' needs a tick=<T> trigger";
            HardFault hf;
            hf.kind = spec->kind;
            if (!parseU64(fields[1].substr(5), hf.atTick))
                return "bad trigger '" + fields[1] +
                       "' (want tick=<non-negative int>)";
            const std::string want(spec->instancePrefix);
            if (action.instancePrefix.rfind(want, 0) != 0 ||
                action.instancePrefix.size() == want.size())
                return "hard fault '" + action.kind + "' needs @" + want +
                       "<index> (got '" + action.instancePrefix + "')";
            std::uint64_t idx = 0;
            if (!parseU64(action.instancePrefix.substr(want.size()), idx))
                return "hard fault '" + action.kind + "' needs @" + want +
                       "<index> (got '" + action.instancePrefix + "')";
            hf.target = static_cast<std::uint32_t>(idx);
            hard_out.push_back(hf);
            continue;
        }

        if (!kindKnown(action.kind))
            return "unknown fault kind '" + action.kind + "'";

        const std::string &trig = fields[1];
        if (trig.rfind("tick=", 0) == 0)
            return "trigger 'tick=' is only valid for hard fault kinds "
                   "(gpn.dead, shard.crash, spill.loss, noc.linkdown)";
        if (trig.rfind("n=", 0) == 0) {
            action.trigger = FaultAction::Trigger::Nth;
            if (!parseU64(trig.substr(2), action.n) || action.n == 0)
                return "bad trigger '" + trig + "' (want n=<positive int>)";
        } else if (trig.rfind("every=", 0) == 0) {
            action.trigger = FaultAction::Trigger::Every;
            if (!parseU64(trig.substr(6), action.n) || action.n == 0)
                return "bad trigger '" + trig +
                       "' (want every=<positive int>)";
        } else if (trig.rfind("p=", 0) == 0) {
            action.trigger = FaultAction::Trigger::Prob;
            if (!parseProb(trig.substr(2), action.p))
                return "bad trigger '" + trig + "' (want p=<prob in (0,1]>)";
        } else {
            return "unknown trigger '" + trig + "' (want n=/every=/p=)";
        }

        if (fields.size() == 3) {
            if (fields[2].rfind("mask=", 0) != 0 ||
                !parseHex(fields[2].substr(5), action.mask))
                return "bad mask field '" + fields[2] + "' (want mask=<hex>)";
            if (action.mask == 0)
                return "mask must be non-zero";
        }
        out.push_back(action);
    }
    return "";
}

std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    constexpr std::uint64_t prime = 0x100000001b3ULL;
    for (char c : s)
        h = (h ^ static_cast<unsigned char>(c)) * prime;
    return h;
}

} // namespace

bool
FaultPoint::fire(std::uint64_t *mask_out)
{
    ++count;
    if (matches.empty())
        return false;
    // Evaluate every match first: probabilistic streams must advance
    // independently of which entry ends up firing, so adding an entry to
    // a schedule never perturbs another entry's decisions.
    const FaultAction *firing = nullptr;
    for (Match &m : matches) {
        bool hit = false;
        switch (m.action->trigger) {
          case FaultAction::Trigger::Nth:
            hit = count == m.action->n;
            break;
          case FaultAction::Trigger::Every:
            hit = count % m.action->n == 0;
            break;
          case FaultAction::Trigger::Prob:
            hit = m.rng.nextBool(m.action->p);
            break;
        }
        if (hit && !firing)
            firing = m.action;
    }
    if (!firing)
        return false;
    ++nFired;
    if (mask_out)
        *mask_out = firing->mask;
    return true;
}

const char *
hardFaultKindName(HardFault::Kind kind)
{
    switch (kind) {
      case HardFault::Kind::GpnDead:
        return "gpn.dead";
      case HardFault::Kind::ShardCrash:
        return "shard.crash";
      case HardFault::Kind::SpillLoss:
        return "spill.loss";
      case HardFault::Kind::LinkDown:
        return "noc.linkdown";
    }
    return "?";
}

FaultInjector::FaultInjector(std::uint64_t seed_value) : seed(seed_value) {}

std::string
FaultInjector::validateSchedule(const std::string &schedule)
{
    std::vector<FaultAction> scratch;
    std::vector<HardFault> hard_scratch;
    return parseSchedule(schedule, scratch, hard_scratch);
}

void
FaultInjector::configure(const std::string &schedule)
{
    NOVA_ASSERT(pts.empty(),
                "FaultInjector::configure after points were registered");
    std::vector<FaultAction> parsed;
    std::vector<HardFault> hard_parsed;
    const std::string err = parseSchedule(schedule, parsed, hard_parsed);
    if (!err.empty())
        fatal("bad fault schedule '", schedule, "': ", err);
    scheduleText = schedule;
    actions = std::move(parsed);
    hards = std::move(hard_parsed);
}

FaultPoint *
FaultInjector::registerPoint(const std::string &kind,
                             const std::string &instance)
{
    // Private constructor: make_unique cannot reach it.
    std::unique_ptr<FaultPoint> p( // novalint:allow(raw-new)
        new FaultPoint(kind, instance));
    for (std::size_t i = 0; i < actions.size(); ++i) {
        const FaultAction &a = actions[i];
        if (a.kind != kind)
            continue;
        if (!a.instancePrefix.empty() &&
            instance.rfind(a.instancePrefix, 0) != 0)
            continue;
        // Seed the per-(point, entry) stream from content, not from
        // registration order, so construction-order changes elsewhere
        // cannot shift fault decisions.
        std::uint64_t h = fnv1a(0xcbf29ce484222325ULL ^ seed, kind);
        h = fnv1a(h, "@" + instance);
        h = fnv1a(h, "#" + std::to_string(i));
        p->matches.push_back(FaultPoint::Match{&a, Rng(h)});
    }
    pts.push_back(std::move(p));
    return pts.back().get();
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (const auto &p : pts)
        total += p->nFired;
    return total;
}

void
FaultInjector::saveState(CheckpointWriter &w) const
{
    w.u64("fault.points", pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const FaultPoint &p = *pts[i];
        const std::string prefix = "fault.p" + std::to_string(i);
        w.str(prefix + ".id", p.kindName + "@" + p.instanceName);
        w.u64(prefix + ".count", p.count);
        w.u64(prefix + ".fired", p.nFired);
        std::vector<std::uint64_t> rngWords;
        for (const FaultPoint::Match &m : p.matches) {
            const auto st = m.rng.saveState();
            rngWords.insert(rngWords.end(), st.begin(), st.end());
        }
        w.u64vec(prefix + ".rng", rngWords);
    }
}

void
FaultInjector::restoreState(CheckpointReader &r)
{
    const std::uint64_t n = r.u64("fault.points");
    if (n != pts.size())
        fatal("checkpoint fault-point count mismatch: file has ", n,
              ", run has ", pts.size(),
              " (different configuration or fault schedule?)");
    for (std::size_t i = 0; i < pts.size(); ++i) {
        FaultPoint &p = *pts[i];
        const std::string prefix = "fault.p" + std::to_string(i);
        const std::string id = r.str(prefix + ".id");
        if (id != p.kindName + "@" + p.instanceName)
            fatal("checkpoint fault point ", i, " is '", id,
                  "' but the run registered '",
                  p.kindName + "@" + p.instanceName, "'");
        p.count = r.u64(prefix + ".count");
        p.nFired = r.u64(prefix + ".fired");
        const std::vector<std::uint64_t> rngWords =
            r.u64vec(prefix + ".rng");
        if (rngWords.size() != p.matches.size() * 4)
            fatal("checkpoint rng state size mismatch for fault point '", id,
                  "'");
        for (std::size_t m = 0; m < p.matches.size(); ++m) {
            std::array<std::uint64_t, 4> st{};
            for (std::size_t k = 0; k < 4; ++k)
                st[k] = rngWords[m * 4 + k];
            p.matches[m].rng.restoreState(st);
        }
    }
}

Watchdog::Watchdog(EventQueue &queue, std::uint64_t check_interval_events,
                   std::uint32_t strike_budget)
    : eq(queue), interval(check_interval_events), strikeBudget(strike_budget)
{
    NOVA_ASSERT(strikeBudget > 0, "watchdog strike budget must be positive");
}

Watchdog::~Watchdog()
{
    if (armed)
        disarm();
}

void
Watchdog::addProgress(std::string probe_name,
                      std::function<std::uint64_t()> probe)
{
    Probe p;
    p.name = std::move(probe_name);
    p.fn = std::move(probe);
    p.last = p.fn();
    progressProbes.push_back(std::move(p));
}

void
Watchdog::addPending(std::string probe_name,
                     std::function<std::uint64_t()> probe)
{
    Probe p;
    p.name = std::move(probe_name);
    p.fn = std::move(probe);
    pendingProbes.push_back(std::move(p));
}

void
Watchdog::arm()
{
    if (interval == 0)
        return;
    armed = true;
    eq.setPeriodicCheck(interval, [this] { check(); });
}

void
Watchdog::disarm()
{
    armed = false;
    eq.setPeriodicCheck(0, nullptr);
}

std::string
Watchdog::diagnosis(const std::string &verdict) const
{
    std::ostringstream os;
    os << "watchdog: " << verdict << " at tick " << eq.now() << " after "
       << eq.executed() << " events (queue depth " << eq.size() << ")";
    os << "; progress{";
    for (std::size_t i = 0; i < progressProbes.size(); ++i) {
        if (i)
            os << ", ";
        os << progressProbes[i].name << "=" << progressProbes[i].fn();
    }
    os << "} pending{";
    for (std::size_t i = 0; i < pendingProbes.size(); ++i) {
        if (i)
            os << ", ";
        os << pendingProbes[i].name << "=" << pendingProbes[i].fn();
    }
    os << "} recent-events[";
    const std::vector<RecentEvent> recents = eq.recentEvents();
    const std::size_t show = recents.size() < 8 ? recents.size() : 8;
    for (std::size_t i = recents.size() - show; i < recents.size(); ++i) {
        const RecentEvent &e = recents[i];
        os << " (t=" << e.when << ",p=" << e.priority << ",s=" << e.seq
           << ")";
    }
    os << " ]";
    return os.str();
}

void
Watchdog::check()
{
    bool advanced = false;
    for (Probe &p : progressProbes) {
        const std::uint64_t v = p.fn();
        if (v != p.last)
            advanced = true;
        p.last = v;
    }
    if (advanced) {
        strikesUsed = 0;
        return;
    }
    ++strikesUsed;
    if (strikesUsed >= strikeBudget)
        panic(diagnosis("livelock suspected: " +
                        std::to_string(strikesUsed) + " check intervals (" +
                        std::to_string(interval) +
                        " events each) with no progress heartbeat"));
}

void
Watchdog::checkQuiescence() const
{
    std::uint64_t outstanding = 0;
    for (const Probe &p : pendingProbes)
        outstanding += p.fn();
    if (outstanding)
        panic(diagnosis(
            "deadlock suspected: event queue drained with outstanding "
            "work"));
}

namespace crash
{

namespace
{

struct Context
{
    const EventQueue *eq = nullptr;
    std::function<void(std::ostream &)> statsDump;
    std::string token;
    std::string path;
    std::string lastWritten;
};

Context &
ctx()
{
    // Fault injection is serial-only: the sharded fabric refuses an
    // armed injector (see the ShardedHierarchicalNetwork constructor
    // assertion), so this registry is never touched from a worker.
    // novalint:allow(shard-safety) serial-only, sharded fabric asserts
    static Context c;
    return c;
}

} // namespace

Scope::Scope(const EventQueue *queue,
             std::function<void(std::ostream &)> stats_dump)
{
    ctx().eq = queue;
    ctx().statsDump = std::move(stats_dump);
    ctx().lastWritten.clear();
}

Scope::~Scope()
{
    ctx().eq = nullptr;
    ctx().statsDump = nullptr;
}

void
setReplayToken(const std::string &token)
{
    ctx().token = token;
}

const std::string &
replayToken()
{
    return ctx().token;
}

void
setBundlePath(const std::string &path)
{
    ctx().path = path;
}

std::string
writeBundle(const std::string &what)
{
    const std::string path =
        ctx().path.empty() ? "nova_crash.txt" : ctx().path;
    std::ofstream os(path);
    if (!os)
        return "";
    os << "NOVA crash bundle\n";
    os << "=================\n";
    os << "error: " << what << "\n";
    if (!ctx().token.empty())
        os << "replay: " << ctx().token << "\n";
    if (ctx().eq) {
        const EventQueue &eq = *ctx().eq;
        os << "tick: " << eq.now() << "\n";
        os << "events-executed: " << eq.executed() << "\n";
        os << "queue-depth: " << eq.size() << "\n";
        os << "fingerprint: 0x" << std::hex << eq.fingerprint() << std::dec
           << "\n";
        os << "recent-events (oldest first):\n";
        for (const RecentEvent &e : eq.recentEvents())
            os << "  tick=" << e.when << " priority=" << e.priority
               << " seq=" << e.seq << "\n";
    }
    if (ctx().statsDump) {
        os << "stats:\n";
        ctx().statsDump(os);
    }
    os.flush();
    if (!os.good())
        return "";
    ctx().lastWritten = path;
    return path;
}

const std::string &
lastBundle()
{
    return ctx().lastWritten;
}

} // namespace crash

} // namespace nova::sim
