/**
 * @file
 * Conservative parallel discrete-event scheduler (PDES) over sharded
 * event queues.
 *
 * The simulated system is partitioned into shards (one per GPN); each
 * shard owns a private EventQueue and every component of that GPN
 * schedules exclusively on it. Shards advance together through
 * safe-time windows: with lookahead L — the minimum latency of any
 * cross-shard interaction, derived from the inter-GPN crossbar (see
 * docs/PARALLEL.md) — every event in [globalNext, globalNext + L) can
 * execute without hearing from any other shard, so the window runs on
 * all shards concurrently with no rollback (classic conservative
 * synchronization with a barrier instead of null messages; the barrier
 * is cheaper here because the shard count is small and windows are
 * long relative to an event).
 *
 * Cross-shard work travels through lock-free MPSC mailboxes (Treiber
 * stacks). Mailboxes are drained only at window barriers, on the
 * coordinating thread, in the canonical order (when, priority,
 * srcShard, srcSeq) — so the destination queue's sequence numbers, and
 * therefore every fingerprint, are independent of the host thread
 * count. That is the determinism contract tests/test_parallel.cc
 * enforces: the sharded model produces bit-identical fingerprints and
 * statistics on 1, 2, 4 or 8 threads (threads = 1 simply runs the
 * shards sequentially on the caller).
 *
 * Deterministic-merge mode additionally k-way merges the per-shard
 * window traces by (when, priority, shard, seq) into one global
 * total-order fingerprint — a stronger replay oracle that also orders
 * events *across* shards canonically.
 */

#ifndef NOVA_SIM_PARALLEL_HH
#define NOVA_SIM_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace nova::sim
{

/**
 * Owner of N per-shard EventQueues plus the worker pool and mailbox
 * fabric that advance them in lockstep windows.
 */
class ParallelScheduler
{
  public:
    struct Config
    {
        /** Number of shards (one per GPN). */
        std::uint32_t numShards = 1;
        /** Host worker threads; 1 runs shards sequentially. */
        std::uint32_t numThreads = 1;
        /**
         * Safe-time window length: no cross-shard interaction posted at
         * time t may take effect before t + lookahead. Must be > 0.
         */
        Tick lookahead = 1;
        /** Maintain the canonical merged event-order fingerprint. */
        bool deterministicMerge = false;
        /** Ordering backend of every shard queue. */
        EventQueue::Impl impl = EventQueue::Impl::Calendar;
    };

    explicit ParallelScheduler(const Config &config);
    ~ParallelScheduler();
    ParallelScheduler(const ParallelScheduler &) = delete;
    ParallelScheduler &operator=(const ParallelScheduler &) = delete;

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(shards.size());
    }

    /** The event queue of shard `s`; components schedule on it. */
    EventQueue &shard(std::uint32_t s) { return shards[s]->q; }
    const EventQueue &shard(std::uint32_t s) const { return shards[s]->q; }

    Tick lookahead() const { return cfg.lookahead; }
    bool deterministicMerge() const { return cfg.deterministicMerge; }

    /**
     * Post a closure from shard `src_shard` (during its window
     * execution, on its worker thread) to run on shard `dst_shard` at
     * absolute tick `when`. Lock-free; the destination sees it at the
     * next window barrier.
     * @pre when >= current window horizon (i.e. the posting event's
     * time plus at least the lookahead) — checked at the barrier.
     */
    void postCross(std::uint32_t src_shard, std::uint32_t dst_shard,
                   Tick when, int priority, std::function<void()> fn);

    /** Apply runaway-guard ceilings to every shard queue. */
    void setGuard(Tick max_tick, std::uint64_t max_events);

    /**
     * Failover (gpn.dead): permanently retire shard `s`. Every future
     * cross-shard post addressed to it is redirected onto
     * `reassign_to`, and anything still in its mailbox is folded into
     * the survivor's (the canonical drain sort keeps the fold
     * thread-count invariant; at a BSP barrier the mailbox is empty
     * anyway). Coordinator thread only, at quiescence. The retired
     * shard's queue never runs again — its clock, executed count and
     * fingerprint contributions stay frozen, so the aggregate
     * fingerprint remains deterministic.
     */
    void retireShard(std::uint32_t s, std::uint32_t reassign_to);

    /** True when shard `s` was retired by retireShard(). */
    bool shardRetired(std::uint32_t s) const
    {
        return s < retiredFlags.size() && retiredFlags[s] != 0;
    }

    /**
     * Run windows until every shard queue and mailbox is empty, then
     * resynchronize all shard clocks to the global maximum (so later
     * injections and cross-shard messages can never land in a shard's
     * past). @return events executed by this call.
     */
    std::uint64_t runUntilQuiescent();

    /** @{ @name Aggregates (coordinator thread only, between windows) */
    Tick now() const;
    std::uint64_t executed() const;
    /**
     * Combined fingerprint: a fold, in shard order, of every shard's
     * (fingerprint, executed, now). Thread-count invariant.
     */
    std::uint64_t fingerprint() const;
    /** The canonical merged-order fingerprint (deterministicMerge). */
    std::uint64_t mergedFingerprint() const { return mergedFp; }
    /** Restore the merged fingerprint from a checkpoint. */
    void setMergedFingerprint(std::uint64_t v) { mergedFp = v; }
    /** @} */

  private:
    struct MailNode
    {
        Tick when = 0;
        int priority = 0;
        std::uint32_t srcShard = 0;
        std::uint64_t srcSeq = 0;
        std::function<void()> fn;
        MailNode *next = nullptr;
    };

    /** MPSC Treiber stack; drained wholesale at barriers. */
    struct alignas(64) Mailbox
    {
        std::atomic<MailNode *> head{nullptr};
    };

    struct alignas(64) Shard
    {
        explicit Shard(EventQueue::Impl impl) : q(impl) {}
        EventQueue q;
        /** Monotone per-source post counter (canonical drain order). */
        std::uint64_t postSeq = 0;
        /** Window trace when deterministic merge is on. */
        std::vector<RecentEvent> trace;
    };

    void drainMailboxes();
    std::uint64_t runWindow(Tick until);
    void mergeWindow();
    void workerLoop(std::uint32_t lane);
    void runLaneShards(std::uint32_t lane, Tick until);
    void noteWorkerError();

    Config cfg;
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<Mailbox> mailboxes; ///< one per destination shard
    /**
     * Retirement state; empty until the first retireShard(). Mutated
     * only at quiescence (workers parked), read by postCross off shard
     * threads.
     */
    std::vector<std::uint8_t> retiredFlags;
    std::vector<std::uint32_t> redirect; ///< post-target overrides
    std::uint64_t mergedFp = 0xcbf29ce484222325ULL; // FNV-1a basis

    /** @{ @name Worker pool (present only when numThreads > 1) */
    std::vector<std::thread> workers;
    std::mutex poolMutex;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    std::uint64_t generation = 0;
    Tick windowUntil = 0;
    std::uint32_t remaining = 0;
    bool stopping = false;
    std::exception_ptr workerError;
    /** @} */
};

} // namespace nova::sim

#endif // NOVA_SIM_PARALLEL_HH
