/**
 * @file
 * Checkpoint serialization for quiescent simulation state.
 *
 * A checkpoint is written at a point of global quiescence (the event
 * queue is drained, no messages are in flight), so it never has to
 * serialize scheduled closures: the state is the functional arrays,
 * the timing-model registers (bank readiness, cache tags, ...), the
 * statistics counters and the event-queue ordering state (tick,
 * sequence counter, fingerprint). Restoring into a freshly built,
 * identically configured system and re-injecting the pending frontier
 * resumes the run bit-for-bit (docs/RESILIENCE.md).
 *
 * The format is a line-oriented text stream of `key value` records.
 * Both sides visit state in the same deterministic order, so the
 * reader verifies every key it consumes; a mismatch means the file
 * does not belong to this configuration and is reported via fatal().
 *
 * Self-healing (format version 2): the writer folds every emitted
 * token into a running CRC32 and flushes it as a `!crc <hex>` record
 * before each section marker and once more before the terminating
 * `!end`. The CRC covers whitespace-normalized tokens — the reader
 * consumes the stream word-by-word, so hashing tokens (not raw bytes)
 * keeps the check independent of separator choice. The reader verifies
 * each record as it streams past; validateCheckpointFile() runs the
 * same scan without needing the component visitation order, and
 * newestValidCheckpoint() picks the newest intact file from a
 * keep-last-K generation chain (commitCheckpointDurable() maintains
 * the chain with atomic tmp+fsync+rename writes). Version-1 files
 * (no integrity records) still restore, without verification.
 */

#ifndef NOVA_SIM_CHECKPOINT_HH
#define NOVA_SIM_CHECKPOINT_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace nova::sim
{

/** Writes `key value` records in visitation order. */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::ostream &stream);

    /** Begin a named section (flushes the previous section's CRC). */
    void section(const std::string &name);

    void u64(const std::string &key, std::uint64_t value);
    /** Doubles round-trip bit-exactly (stored as the raw bit pattern). */
    void f64(const std::string &key, double value);
    void str(const std::string &key, const std::string &value);
    void u64vec(const std::string &key,
                const std::vector<std::uint64_t> &values);
    void f64vec(const std::string &key, const std::vector<double> &values);

    /** Flush the final section's CRC and the `!end` terminator. */
    void finish();

    /** True while no stream error has occurred. */
    bool good() const { return os.good(); }

  private:
    void put(const std::string &token, bool last);
    void flushCrc();

    std::ostream &os;
    std::uint32_t crc = 0xFFFFFFFFu;
    std::uint64_t tokensSinceFlush = 0;
    bool finished = false;
};

/** Reads records back, verifying keys match the write order. */
class CheckpointReader
{
  public:
    explicit CheckpointReader(std::istream &stream);

    /** Consume a section marker; fatal() when it does not match. */
    void section(const std::string &name);

    std::uint64_t u64(const std::string &key);
    double f64(const std::string &key);
    std::string str(const std::string &key);
    std::vector<std::uint64_t> u64vec(const std::string &key);
    std::vector<double> f64vec(const std::string &key);

    /** Consume the final CRC record and the `!end` terminator. */
    void finish();

  private:
    /** Next raw token straight from the stream. */
    std::string rawWord(const std::string &context);
    /** Next data token (verifies CRC records in passing). */
    std::string word(const std::string &context);
    void expectKey(const std::string &key);
    void checkCrcRecord(const std::string &context);

    std::istream &is;
    std::uint32_t crc = 0xFFFFFFFFu;
    std::string curSection = "header";
    bool legacy = false; ///< version-1 file: no integrity records
};

/**
 * Save every scalar of a statistics group (and its children) under
 * dotted names, in sorted order. Values are bit-exact.
 */
void saveGroupStats(CheckpointWriter &w, const stats::Group &group);

/** Restore scalars saved by saveGroupStats into the same group shape. */
void restoreGroupStats(CheckpointReader &r, stats::Group &group);

/**
 * Scan a checkpoint file for integrity without knowing the component
 * visitation order: header, every section CRC, and the `!end`
 * terminator must all check out. Never throws.
 *
 * @param path the file to scan.
 * @param why  when non-null, receives the reason a file is invalid.
 * @param iter when non-null, receives the `iter` value of the `meta`
 *             section (the BSP iteration the checkpoint was taken at).
 * @return true when the file is a complete, uncorrupted checkpoint.
 */
bool validateCheckpointFile(const std::string &path,
                            std::string *why = nullptr,
                            std::uint64_t *iter = nullptr);

/**
 * Durably publish a freshly written checkpoint: fsync the temporary
 * file, rotate the existing generation chain (`path` -> `path.1` ->
 * ... -> `path.K-1`, dropping the oldest), rename the temporary onto
 * `path`, and fsync the containing directory. A crash at any point
 * leaves either the old chain or the new one — never a truncated
 * `path`. fatal() on filesystem errors.
 */
void commitCheckpointDurable(const std::string &tmpPath,
                             const std::string &finalPath,
                             unsigned keepGenerations);

/** The newest intact file of a checkpoint generation chain. */
struct GenerationPick
{
    std::string path;        ///< empty when no generation is valid
    unsigned generation = 0; ///< 0 = newest (`finalPath` itself)
    std::uint64_t iter = 0;  ///< BSP iteration recorded in the pick
    /** `path: reason` for each newer generation that was rejected. */
    std::vector<std::string> rejected;
};

/**
 * Walk the generation chain `path`, `path.1`, ... `path.K-1` and pick
 * the newest file that passes validateCheckpointFile(). Missing files
 * are skipped like corrupt ones (with a reason recorded).
 */
GenerationPick newestValidCheckpoint(const std::string &path,
                                     unsigned keepGenerations);

/** CRC32 (IEEE, poly 0xEDB88320) over a byte string; for tests. */
std::uint32_t crc32(const void *data, std::size_t bytes,
                    std::uint32_t seed = 0xFFFFFFFFu);

} // namespace nova::sim

#endif // NOVA_SIM_CHECKPOINT_HH
