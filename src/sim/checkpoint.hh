/**
 * @file
 * Checkpoint serialization for quiescent simulation state.
 *
 * A checkpoint is written at a point of global quiescence (the event
 * queue is drained, no messages are in flight), so it never has to
 * serialize scheduled closures: the state is the functional arrays,
 * the timing-model registers (bank readiness, cache tags, ...), the
 * statistics counters and the event-queue ordering state (tick,
 * sequence counter, fingerprint). Restoring into a freshly built,
 * identically configured system and re-injecting the pending frontier
 * resumes the run bit-for-bit (docs/RESILIENCE.md).
 *
 * The format is a line-oriented text stream of `key value` records.
 * Both sides visit state in the same deterministic order, so the
 * reader verifies every key it consumes; a mismatch means the file
 * does not belong to this configuration and is reported via fatal().
 */

#ifndef NOVA_SIM_CHECKPOINT_HH
#define NOVA_SIM_CHECKPOINT_HH

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"

namespace nova::sim
{

/** Writes `key value` records in visitation order. */
class CheckpointWriter
{
  public:
    explicit CheckpointWriter(std::ostream &stream);

    /** Begin a named section (a comment-like structural marker). */
    void section(const std::string &name);

    void u64(const std::string &key, std::uint64_t value);
    /** Doubles round-trip bit-exactly (stored as the raw bit pattern). */
    void f64(const std::string &key, double value);
    void str(const std::string &key, const std::string &value);
    void u64vec(const std::string &key,
                const std::vector<std::uint64_t> &values);
    void f64vec(const std::string &key, const std::vector<double> &values);

    /** True while no stream error has occurred. */
    bool good() const { return os.good(); }

  private:
    std::ostream &os;
};

/** Reads records back, verifying keys match the write order. */
class CheckpointReader
{
  public:
    explicit CheckpointReader(std::istream &stream);

    /** Consume a section marker; fatal() when it does not match. */
    void section(const std::string &name);

    std::uint64_t u64(const std::string &key);
    double f64(const std::string &key);
    std::string str(const std::string &key);
    std::vector<std::uint64_t> u64vec(const std::string &key);
    std::vector<double> f64vec(const std::string &key);

  private:
    /** Next whitespace-separated word; fatal() at end of stream. */
    std::string word(const std::string &context);
    void expectKey(const std::string &key);

    std::istream &is;
};

/**
 * Save every scalar of a statistics group (and its children) under
 * dotted names, in sorted order. Values are bit-exact.
 */
void saveGroupStats(CheckpointWriter &w, const stats::Group &group);

/** Restore scalars saved by saveGroupStats into the same group shape. */
void restoreGroupStats(CheckpointReader &r, stats::Group &group);

} // namespace nova::sim

#endif // NOVA_SIM_CHECKPOINT_HH
