/**
 * @file
 * Crash-recovery supervisor: runs a simulation as a child process,
 * classifies its exit, and restarts it from the newest valid
 * checkpoint generation with exponential backoff until it succeeds,
 * fails deterministically, or the retry budget is exhausted
 * (docs/RESILIENCE.md, "Supervision").
 *
 * Exit classification follows the nova_cli contract:
 *   0  success — supervision ends, final exit 0.
 *   1  FatalError (user error) — restarting cannot help; final exit 1.
 *   2  PanicError / unexpected exception — a crash: restart from the
 *      newest checkpoint generation that passes validation.
 *   signal — treated like a crash.
 *
 * The supervisor itself exits with code 3 (exitSupervisionFailed) when
 * the retry budget runs out or a crash loop is detected (consecutive
 * crashes with no forward progress in the checkpoint chain). Resume
 * after a restart is bit-identical to an uninterrupted run — that is
 * the checkpoint subsystem's contract, which tests/test_failover.cc
 * and the supervise-soak campaign enforce end to end.
 *
 * All host-side: the supervisor never touches simulated time, and the
 * child's determinism guarantees are what make restarts safe.
 */

#ifndef NOVA_SIM_SUPERVISE_HH
#define NOVA_SIM_SUPERVISE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nova::sim
{

/** nova_cli/nova_supervise exit code: retries exhausted or crash loop. */
constexpr int exitSupervisionFailed = 3;

/** What the supervisor runs and how hard it tries. */
struct SuperviseConfig
{
    /** Child command; argv[0] is the executable path. */
    std::vector<std::string> childArgv;
    /**
     * Root of the child's checkpoint generation chain (the child's
     * --checkpoint-file). Empty: restarts always start from scratch.
     */
    std::string checkpointPath;
    /** Generations kept by the child (newest at path, then path.1...). */
    unsigned keepGenerations = 1;
    /** Restarts allowed after the first attempt. */
    unsigned maxRestarts = 5;
    /**
     * Consecutive crashes without checkpoint-chain progress that count
     * as a crash loop (the same barrier keeps killing the run).
     */
    unsigned crashLoopWindow = 3;
    /** First restart delay; doubles per consecutive crash. 0 = none. */
    std::uint64_t backoffMs = 100;
    /** Machine-readable JSON recovery report (empty = not written). */
    std::string reportPath;
};

/** One child execution, classified. */
struct SuperviseAttempt
{
    unsigned index = 0;     ///< 0 = the initial attempt
    bool resumed = false;   ///< --resume=<resumePath> was appended
    std::string resumePath; ///< checkpoint generation restored from
    unsigned generation = 0;
    std::uint64_t checkpointIter = 0; ///< BSP iteration of that file
    std::uint64_t backoffMs = 0;      ///< delay served before this run
    std::uint64_t hostNanos = 0;      ///< child wall time
    int exitCode = 0;
    int termSignal = 0;  ///< nonzero when the child died on a signal
    std::string outcome; ///< "success" | "fatal" | "crash"
};

/** The whole supervision session. */
struct SuperviseResult
{
    int finalExit = 0; ///< 0, 1, or exitSupervisionFailed
    unsigned restarts = 0;
    bool crashLoop = false;
    bool retriesExhausted = false;
    std::uint64_t totalHostNanos = 0;
    std::vector<SuperviseAttempt> attempts;
    /**
     * Failover counters from the newest valid checkpoint's meta
     * section after the session ends (all zero when the child never
     * checkpointed): migratedVertices, gpnsFailed, linksDown,
     * spillRegionsLost, shardCrashes.
     */
    std::uint64_t migratedVertices = 0;
    std::uint64_t gpnsFailed = 0;
    std::uint64_t linksDown = 0;
    std::uint64_t spillRegionsLost = 0;
    std::uint64_t shardCrashes = 0;
};

/** Run the child under supervision until success, fatal, or give-up. */
SuperviseResult superviseRun(const SuperviseConfig &cfg);

/** Serialize the session as JSON (schema "nova-recovery-1"). */
std::string recoveryReportJson(const SuperviseConfig &cfg,
                               const SuperviseResult &result);

} // namespace nova::sim

#endif // NOVA_SIM_SUPERVISE_HH
