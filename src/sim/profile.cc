// Host-time profiler implementation; see profile.hh for the design.
// novalint:allow-file(wall-clock)

#include "sim/profile.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace nova::sim::profile
{

void
Site::registerStats(stats::Group &g)
{
    const std::string base = fullName();
    g.addScalar(base + ".calls", &nCalls);
    g.addScalar(base + ".total_ns", &nTotalNanos);
    g.addScalar(base + ".self_ns", &nSelfNanos);
}

Registry &
Registry::instance()
{
    static Registry r;
    return r;
}

Site &
Registry::site(const std::string &object, const std::string &kind)
{
    auto key = std::make_pair(object, kind);
    auto it = sites.find(key);
    if (it == sites.end()) {
        auto s = std::make_unique<Site>(object, kind);
        s->registerStats(group);
        it = sites.emplace(std::move(key), std::move(s)).first;
    }
    return *it->second;
}

void
Registry::reset()
{
    for (auto &[key, s] : sites)
        s->reset();
}

std::vector<Row>
Registry::report(bool aggregate) const
{
    std::vector<Row> rows;
    for (const auto &[key, s] : sites) {
        if (s->calls() == 0)
            continue;
        Row r{aggregate ? "*" : s->object(), s->kind(), s->calls(),
              s->totalNanos(), s->selfNanos()};
        if (aggregate) {
            auto it = std::find_if(rows.begin(), rows.end(),
                                   [&](const Row &x) {
                                       return x.kind == r.kind;
                                   });
            if (it != rows.end()) {
                it->calls += r.calls;
                it->totalNanos += r.totalNanos;
                it->selfNanos += r.selfNanos;
                continue;
            }
        }
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        if (a.selfNanos != b.selfNanos)
            return a.selfNanos > b.selfNanos;
        return std::make_pair(a.object, a.kind) <
               std::make_pair(b.object, b.kind);
    });
    return rows;
}

std::string
Registry::table() const
{
    const auto rows = report(true);
    std::uint64_t allSelf = 0;
    for (const auto &r : rows)
        allSelf += r.selfNanos;

    std::ostringstream os;
    os << "---------- host profile (by event kind) ----------\n";
    os << std::left << std::setw(18) << "kind" << std::right
       << std::setw(12) << "calls" << std::setw(12) << "self-ms"
       << std::setw(12) << "total-ms" << std::setw(12) << "ev/s"
       << std::setw(8) << "self%" << "\n";
    for (const auto &r : rows) {
        const double selfMs = static_cast<double>(r.selfNanos) / 1e6;
        const double totalMs = static_cast<double>(r.totalNanos) / 1e6;
        const double pct =
            allSelf == 0 ? 0
                         : 100.0 * static_cast<double>(r.selfNanos) /
                               static_cast<double>(allSelf);
        os << std::left << std::setw(18) << r.kind << std::right
           << std::setw(12) << r.calls << std::setw(12) << std::fixed
           << std::setprecision(2) << selfMs << std::setw(12) << totalMs
           << std::setw(12) << std::setprecision(0) << r.eventsPerSec()
           << std::setw(7) << std::setprecision(1) << pct << "%\n";
    }
    os << "--------------------------------------------------\n";
    return os.str();
}

void
Scope::open(Site &s)
{
    site = &s;
    Registry &reg = Registry::instance();
    parent = reg.cur;
    reg.cur = this;
    childNanos = 0;
    startNanos = hostNow();
}

void
Scope::close()
{
    const std::uint64_t total = hostNow() - startNanos;
    Registry &reg = Registry::instance();
    reg.cur = parent;
    if (parent)
        parent->childNanos += total;
    site->nCalls += 1;
    site->nTotalNanos += static_cast<double>(total);
    // A scope's children can only run while it is open, so child time
    // never exceeds total even across clock-granularity jitter.
    site->nSelfNanos += static_cast<double>(
        total >= childNanos ? total - childNanos : 0);
    site = nullptr;
}

Site &
loopSite()
{
    static Site &s = Registry::instance().site("sim", "run");
    return s;
}

} // namespace nova::sim::profile
