/**
 * @file
 * Error-reporting helpers in the style of gem5's base/logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration); warn()/inform() are advisory.
 */

#ifndef NOVA_SIM_LOGGING_HH
#define NOVA_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nova::sim
{

/** Thrown by fatal(); carries the user-facing error message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(); indicates a simulator bug, not a user error. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug and abort the simulation.
 * Use for conditions that should be impossible regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    throw PanicError("panic: " + detail::concat(args...));
}

/**
 * Report an unrecoverable user error (bad configuration, invalid input).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    throw FatalError("fatal: " + detail::concat(args...));
}

/** Emit a non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", detail::concat(args...).c_str());
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", detail::concat(args...).c_str());
}

/** panic() unless the given condition holds. */
#define NOVA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::nova::sim::panic("assertion '", #cond, "' failed at ",        \
                               __FILE__, ":", __LINE__, " ", ##__VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace nova::sim

#endif // NOVA_SIM_LOGGING_HH
