/**
 * @file
 * Error-reporting helpers in the style of gem5's base/logging.hh.
 *
 * panic() is for internal invariant violations (simulator bugs); fatal()
 * is for user errors (bad configuration); warn()/inform() are advisory.
 */

#ifndef NOVA_SIM_LOGGING_HH
#define NOVA_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace nova::sim
{

/** Thrown by fatal(); carries the user-facing error message. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(); indicates a simulator bug, not a user error. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail
{

inline void
appendAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
appendAll(std::ostringstream &os, const T &value, const Rest &...rest)
{
    os << value;
    appendAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    appendAll(os, args...);
    return os.str();
}

/**
 * The active checkpoint-generation annotation. Written only from the
 * coordinator at BSP barriers (workers are idle there), read when an
 * error is thrown.
 */
// novalint:allow(shard-safety) mutated only at barrier quiescence
inline std::string &
checkpointContextSlot()
{
    static std::string ctx;
    return ctx;
}

} // namespace detail

/**
 * @{ @name Checkpoint-generation error context
 * When set (e.g. "gen 0 of pr.ckpt, iter 6"), every FatalError /
 * PanicError message carries the annotation so a crash or refusal can
 * be tied to the checkpoint the run was using. Cleared by passing "".
 */
inline void
setCheckpointContext(std::string ctx)
{
    detail::checkpointContextSlot() = std::move(ctx);
}

inline const std::string &
checkpointContext()
{
    return detail::checkpointContextSlot();
}
/** @} */

/**
 * Report an internal simulator bug and abort the simulation.
 * Use for conditions that should be impossible regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    std::string msg = "panic: " + detail::concat(args...);
    if (!checkpointContext().empty())
        msg += " [checkpoint: " + checkpointContext() + "]";
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user error (bad configuration, invalid input).
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    std::string msg = "fatal: " + detail::concat(args...);
    if (!checkpointContext().empty())
        msg += " [checkpoint: " + checkpointContext() + "]";
    throw FatalError(msg);
}

/** Emit a non-fatal warning to stderr. */
template <typename... Args>
void
warn(const Args &...args)
{
    std::fprintf(stderr, "warn: %s\n", detail::concat(args...).c_str());
}

/** Emit an informational message to stderr. */
template <typename... Args>
void
inform(const Args &...args)
{
    std::fprintf(stderr, "info: %s\n", detail::concat(args...).c_str());
}

/** panic() unless the given condition holds. */
#define NOVA_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::nova::sim::panic("assertion '", #cond, "' failed at ",        \
                               __FILE__, ":", __LINE__, " ", ##__VA_ARGS__); \
        }                                                                   \
    } while (0)

} // namespace nova::sim

#endif // NOVA_SIM_LOGGING_HH
