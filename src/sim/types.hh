/**
 * @file
 * Fundamental scalar types shared by all simulation models.
 *
 * Mirrors the conventions of gem5: simulated time advances in integer
 * ticks, where one tick equals one picosecond. Clocked components convert
 * between cycles of their own clock domain and ticks.
 */

#ifndef NOVA_SIM_TYPES_HH
#define NOVA_SIM_TYPES_HH

#include <cstdint>

#include "sim/logging.hh"

namespace nova::sim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** A simulated memory address (byte granularity). */
using Addr = std::uint64_t;

/** One nanosecond expressed in ticks. */
constexpr Tick tickNs = 1000;

/** One microsecond expressed in ticks. */
constexpr Tick tickUs = 1000 * tickNs;

/** One millisecond expressed in ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** One second expressed in ticks. */
constexpr Tick tickS = 1000 * tickMs;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** @{ @name Checked Tick arithmetic
 * Tick is unsigned; a silently wrapped sum or product schedules an event
 * at a nonsense time and the simulation "hangs" or drops work with no
 * diagnostic. All Tick arithmetic outside the sim kernel must use these
 * helpers (enforced by novalint's tick-arith rule); they panic on
 * overflow/underflow instead of wrapping.
 */

/** a + b, panicking on overflow. */
inline Tick
tickAdd(Tick a, Tick b)
{
    NOVA_ASSERT(b <= maxTick - a, "Tick addition overflow");
    return a + b;
}

/** a - b, panicking on underflow. @pre a >= b. */
inline Tick
tickSub(Tick a, Tick b)
{
    NOVA_ASSERT(a >= b, "Tick subtraction underflow");
    return a - b;
}

/** a * b, panicking on overflow. */
inline Tick
tickMul(Tick a, Tick b)
{
    NOVA_ASSERT(b == 0 || a <= maxTick / b, "Tick multiplication overflow");
    return a * b;
}
/** @} */

/** Convert a tick count to seconds. */
inline double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickS);
}

/** Convert a clock frequency in GHz to a clock period in ticks. */
inline Tick
periodFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

} // namespace nova::sim

#endif // NOVA_SIM_TYPES_HH
