/**
 * @file
 * Fundamental scalar types shared by all simulation models.
 *
 * Mirrors the conventions of gem5: simulated time advances in integer
 * ticks, where one tick equals one picosecond. Clocked components convert
 * between cycles of their own clock domain and ticks.
 */

#ifndef NOVA_SIM_TYPES_HH
#define NOVA_SIM_TYPES_HH

#include <cstdint>

namespace nova::sim
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** A simulated memory address (byte granularity). */
using Addr = std::uint64_t;

/** One nanosecond expressed in ticks. */
constexpr Tick tickNs = 1000;

/** One microsecond expressed in ticks. */
constexpr Tick tickUs = 1000 * tickNs;

/** One millisecond expressed in ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** One second expressed in ticks. */
constexpr Tick tickS = 1000 * tickMs;

/** The largest representable tick; used as "never". */
constexpr Tick maxTick = ~Tick(0);

/** Convert a tick count to seconds. */
inline double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickS);
}

/** Convert a clock frequency in GHz to a clock period in ticks. */
inline Tick
periodFromGHz(double ghz)
{
    return static_cast<Tick>(1000.0 / ghz);
}

} // namespace nova::sim

#endif // NOVA_SIM_TYPES_HH
