#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace nova::sim::stats
{

Histogram::Histogram(double lo_, double hi_, std::size_t num_buckets)
    : lo(lo_), hi(hi_), bins(num_buckets, 0)
{
    NOVA_ASSERT(hi > lo && num_buckets > 0, "bad histogram range");
}

void
Histogram::sample(double v)
{
    if (n == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    ++n;
    sum += v;

    double frac = (v - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(frac * static_cast<double>(
        bins.size()));
    if (idx >= bins.size())
        idx = bins.size() - 1;
    ++bins[idx];
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    n = 0;
    sum = 0;
    minV = maxV = 0;
}

void
Group::addScalar(const std::string &stat_name, Scalar *s)
{
    NOVA_ASSERT(s != nullptr);
    scalars.emplace_back(stat_name, s);
}

void
Group::addHistogram(const std::string &stat_name, Histogram *h)
{
    NOVA_ASSERT(h != nullptr);
    histograms.emplace_back(stat_name, h);
}

void
Group::addChild(Group *child)
{
    NOVA_ASSERT(child != nullptr);
    children.push_back(child);
}

void
Group::collect(std::map<std::string, double> &out,
               const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? name : (name.empty() ? prefix : prefix + "." + name);
    for (const auto &[stat_name, scalar] : scalars) {
        const std::string full =
            base.empty() ? stat_name : base + "." + stat_name;
        out[full] = scalar->value();
    }
    for (const Group *child : children)
        child->collect(out, base);
}

void
Group::visitScalars(
    const std::function<void(const std::string &, Scalar &)> &fn,
    const std::string &prefix)
{
    const std::string base =
        prefix.empty() ? name : (name.empty() ? prefix : prefix + "." + name);
    for (auto &[stat_name, scalar] : scalars) {
        const std::string full =
            base.empty() ? stat_name : base + "." + stat_name;
        fn(full, *scalar);
    }
    for (Group *child : children)
        child->visitScalars(fn, base);
}

double
Group::get(const std::string &path) const
{
    std::map<std::string, double> all;
    collect(all);
    // Accept both the fully-qualified path and a path relative to this
    // group's own name.
    auto it = all.find(path);
    if (it == all.end() && !name.empty())
        it = all.find(name + "." + path);
    if (it == all.end())
        panic("unknown stat '", path, "' in group '", name, "'");
    return it->second;
}

bool
Group::has(const std::string &path) const
{
    std::map<std::string, double> all;
    collect(all);
    return all.count(path) > 0 ||
           (!name.empty() && all.count(name + "." + path) > 0);
}

void
Group::dump(std::ostream &os) const
{
    std::map<std::string, double> all;
    collect(all);
    for (const auto &[stat_name, value] : all) {
        os << std::left << std::setw(56) << stat_name << " "
           << std::setprecision(12) << value << "\n";
    }
}

} // namespace nova::sim::stats
