#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace nova::sim::stats
{

Histogram::Histogram(double lo_, double hi_, std::size_t num_buckets)
    : lo(lo_), hi(hi_), bins(num_buckets, 0)
{
    NOVA_ASSERT(hi > lo && num_buckets > 0, "bad histogram range");
}

void
Histogram::sample(double v)
{
    if (n == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    ++n;
    sum += v;

    double frac = (v - lo) / (hi - lo);
    frac = std::clamp(frac, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(frac * static_cast<double>(
        bins.size()));
    if (idx >= bins.size())
        idx = bins.size() - 1;
    ++bins[idx];
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    n = 0;
    sum = 0;
    minV = maxV = 0;
}

void
Quantiles::sample(std::uint64_t v)
{
    vals.push_back(v);
    dirty = true;
}

namespace
{

const std::vector<std::uint64_t> &
sortedOf(std::vector<std::uint64_t> &sorted,
         const std::vector<std::uint64_t> &vals, bool &dirty)
{
    if (dirty) {
        sorted = vals;
        std::sort(sorted.begin(), sorted.end());
        dirty = false;
    }
    return sorted;
}

} // namespace

std::uint64_t
Quantiles::max() const
{
    const auto &s = sortedOf(sorted, vals, dirty);
    return s.empty() ? 0 : s.back();
}

std::uint64_t
Quantiles::mean() const
{
    if (vals.empty())
        return 0;
    std::uint64_t sum = 0;
    for (std::uint64_t v : vals)
        sum += v;
    return sum / vals.size();
}

std::uint64_t
Quantiles::percentile(unsigned p) const
{
    NOVA_ASSERT(p > 0 && p <= 100, "percentile wants 0 < p <= 100");
    const auto &s = sortedOf(sorted, vals, dirty);
    if (s.empty())
        return 0;
    // Nearest-rank: the ceil(p/100 * n)-th smallest, 1-indexed.
    const std::uint64_t n = s.size();
    const std::uint64_t rank = (p * n + 99) / 100;
    return s[rank - 1];
}

void
Quantiles::reset()
{
    vals.clear();
    sorted.clear();
    dirty = false;
    countStat.reset();
    meanStat.reset();
    p50Stat.reset();
    p95Stat.reset();
    p99Stat.reset();
    maxStat.reset();
}

void
Quantiles::registerIn(Group &g, const std::string &prefix)
{
    g.addScalar(prefix + ".count", &countStat);
    g.addScalar(prefix + ".mean", &meanStat);
    g.addScalar(prefix + ".p50", &p50Stat);
    g.addScalar(prefix + ".p95", &p95Stat);
    g.addScalar(prefix + ".p99", &p99Stat);
    g.addScalar(prefix + ".max", &maxStat);
}

void
Quantiles::snapshot()
{
    countStat.set(static_cast<double>(count()));
    meanStat.set(static_cast<double>(mean()));
    p50Stat.set(static_cast<double>(percentile(50)));
    p95Stat.set(static_cast<double>(percentile(95)));
    p99Stat.set(static_cast<double>(percentile(99)));
    maxStat.set(static_cast<double>(max()));
}

void
Group::addScalar(const std::string &stat_name, Scalar *s)
{
    NOVA_ASSERT(s != nullptr);
    scalars.emplace_back(stat_name, s);
}

void
Group::addHistogram(const std::string &stat_name, Histogram *h)
{
    NOVA_ASSERT(h != nullptr);
    histograms.emplace_back(stat_name, h);
}

void
Group::addChild(Group *child)
{
    NOVA_ASSERT(child != nullptr);
    children.push_back(child);
}

void
Group::collect(std::map<std::string, double> &out,
               const std::string &prefix) const
{
    const std::string base =
        prefix.empty() ? name : (name.empty() ? prefix : prefix + "." + name);
    for (const auto &[stat_name, scalar] : scalars) {
        const std::string full =
            base.empty() ? stat_name : base + "." + stat_name;
        out[full] = scalar->value();
    }
    for (const Group *child : children)
        child->collect(out, base);
}

void
Group::visitScalars(
    const std::function<void(const std::string &, Scalar &)> &fn,
    const std::string &prefix)
{
    const std::string base =
        prefix.empty() ? name : (name.empty() ? prefix : prefix + "." + name);
    for (auto &[stat_name, scalar] : scalars) {
        const std::string full =
            base.empty() ? stat_name : base + "." + stat_name;
        fn(full, *scalar);
    }
    for (Group *child : children)
        child->visitScalars(fn, base);
}

double
Group::get(const std::string &path) const
{
    std::map<std::string, double> all;
    collect(all);
    // Accept both the fully-qualified path and a path relative to this
    // group's own name.
    auto it = all.find(path);
    if (it == all.end() && !name.empty())
        it = all.find(name + "." + path);
    if (it == all.end())
        panic("unknown stat '", path, "' in group '", name, "'");
    return it->second;
}

bool
Group::has(const std::string &path) const
{
    std::map<std::string, double> all;
    collect(all);
    return all.count(path) > 0 ||
           (!name.empty() && all.count(name + "." + path) > 0);
}

void
Group::dump(std::ostream &os) const
{
    std::map<std::string, double> all;
    collect(all);
    for (const auto &[stat_name, value] : all) {
        os << std::left << std::setw(56) << stat_name << " "
           << std::setprecision(12) << value << "\n";
    }
}

} // namespace nova::sim::stats
