#include "sim/random.hh"

namespace nova::sim
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
Rng::splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

std::array<std::uint64_t, 4>
Rng::saveState() const
{
    return {s[0], s[1], s[2], s[3]};
}

void
Rng::restoreState(const std::array<std::uint64_t, 4> &state)
{
    for (std::size_t i = 0; i < state.size(); ++i)
        s[i] = state[i];
}

} // namespace nova::sim
