#include "sim/checkpoint.hh"

#include <array>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>

#include <fcntl.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace nova::sim
{

namespace
{

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
validKey(const std::string &key)
{
    if (key.empty())
        return false;
    for (char c : key) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                          c == '-' || c == '[' || c == ']';
        if (!word)
            return false;
    }
    return true;
}

const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/**
 * Fold one token into a running CRC. The trailing '\n' separates
 * tokens so "ab"+"c" and "a"+"bc" hash differently; hashing tokens
 * rather than raw bytes keeps the CRC independent of the whitespace
 * the writer chose (the reader consumes the stream word-by-word).
 */
std::uint32_t
crcToken(std::uint32_t crc, const std::string &token)
{
    const auto &t = crcTable();
    for (unsigned char c : token)
        crc = t[(crc ^ c) & 0xFF] ^ (crc >> 8);
    crc = t[(crc ^ static_cast<unsigned char>('\n')) & 0xFF] ^ (crc >> 8);
    return crc;
}

std::string
crcHex(std::uint32_t final_value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", final_value);
    return buf;
}

/** Strict 1..8-digit lowercase/uppercase hex parse; false on junk. */
bool
parseCrcHex(const std::string &s, std::uint32_t &out)
{
    if (s.empty() || s.size() > 8)
        return false;
    std::uint32_t v = 0;
    for (char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint32_t>(digit);
    }
    out = v;
    return true;
}

std::string
generationPath(const std::string &base, unsigned generation)
{
    return generation == 0 ? base
                           : base + "." + std::to_string(generation);
}

/** fsync a path; directories are best-effort, files report failure. */
bool
fsyncPath(const std::string &path, bool directory)
{
    const int fd = ::open(path.c_str(),
                          O_RDONLY | (directory ? O_DIRECTORY : 0));
    if (fd < 0)
        return directory; // a missing/odd dir is tolerable, a file is not
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok || directory;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t bytes, std::uint32_t seed)
{
    const auto &t = crcTable();
    std::uint32_t crc = seed;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i)
        crc = t[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return crc;
}

CheckpointWriter::CheckpointWriter(std::ostream &stream) : os(stream)
{
    put("novackpt", false);
    put("2", true);
}

void
CheckpointWriter::put(const std::string &token, bool last)
{
    NOVA_ASSERT(!finished, "writing to a finished checkpoint");
    os << token << (last ? '\n' : ' ');
    crc = crcToken(crc, token);
    ++tokensSinceFlush;
}

void
CheckpointWriter::flushCrc()
{
    if (tokensSinceFlush == 0)
        return;
    os << "!crc " << crcHex(crc ^ 0xFFFFFFFFu) << "\n";
    crc = 0xFFFFFFFFu;
    tokensSinceFlush = 0;
}

void
CheckpointWriter::section(const std::string &name)
{
    NOVA_ASSERT(validKey(name), "invalid checkpoint section name '", name,
                "'");
    flushCrc();
    put("@" + name, true);
}

void
CheckpointWriter::finish()
{
    flushCrc();
    os << "!end\n";
    finished = true;
}

void
CheckpointWriter::u64(const std::string &key, std::uint64_t value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    put(key, false);
    put(std::to_string(value), true);
}

void
CheckpointWriter::f64(const std::string &key, double value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    put(key, false);
    put(std::to_string(doubleBits(value)), true);
}

void
CheckpointWriter::str(const std::string &key, const std::string &value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    NOVA_ASSERT(value.find_first_of(" \t\n\r") == std::string::npos,
                "checkpoint string value for '", key,
                "' contains whitespace");
    put(key, false);
    put(value.empty() ? "-" : value, true);
}

void
CheckpointWriter::u64vec(const std::string &key,
                         const std::vector<std::uint64_t> &values)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    put(key, false);
    put(std::to_string(values.size()), values.empty());
    for (std::size_t i = 0; i < values.size(); ++i)
        put(std::to_string(values[i]), i + 1 == values.size());
}

void
CheckpointWriter::f64vec(const std::string &key,
                         const std::vector<double> &values)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    put(key, false);
    put(std::to_string(values.size()), values.empty());
    for (std::size_t i = 0; i < values.size(); ++i)
        put(std::to_string(doubleBits(values[i])), i + 1 == values.size());
}

CheckpointReader::CheckpointReader(std::istream &stream) : is(stream)
{
    std::string magic = rawWord("header");
    std::string version = rawWord("header");
    if (magic != "novackpt" || (version != "1" && version != "2"))
        fatal("not a NOVA checkpoint (bad header '", magic, " ", version,
              "')");
    legacy = version == "1";
    if (!legacy) {
        crc = crcToken(crc, magic);
        crc = crcToken(crc, version);
    }
}

std::string
CheckpointReader::rawWord(const std::string &context)
{
    std::string w;
    if (!(is >> w))
        fatal("checkpoint truncated while reading ", context);
    return w;
}

void
CheckpointReader::checkCrcRecord(const std::string &context)
{
    const std::string stored = rawWord("CRC of section '" + curSection +
                                       "'");
    std::uint32_t want = 0;
    if (!parseCrcHex(stored, want))
        fatal("checkpoint section '", curSection,
              "' has a malformed CRC record '", stored,
              "' (reading ", context, ") — file is corrupt");
    const std::uint32_t got = crc ^ 0xFFFFFFFFu;
    if (want != got)
        fatal("checkpoint section '", curSection,
              "' failed its CRC check (stored ", stored, ", computed ",
              crcHex(got), ") — file is corrupt");
    crc = 0xFFFFFFFFu;
}

std::string
CheckpointReader::word(const std::string &context)
{
    for (;;) {
        std::string w = rawWord(context);
        if (!legacy && w == "!crc") {
            checkCrcRecord(context);
            continue;
        }
        if (w == "!end")
            fatal("checkpoint ended while reading ", context,
                  " (file does not match this configuration?)");
        if (!legacy)
            crc = crcToken(crc, w);
        if (w.size() > 1 && w[0] == '@')
            curSection = w.substr(1);
        return w;
    }
}

void
CheckpointReader::finish()
{
    if (legacy)
        return;
    std::string w = rawWord("checkpoint terminator");
    while (w == "!crc") {
        checkCrcRecord("checkpoint terminator");
        w = rawWord("checkpoint terminator");
    }
    if (w != "!end")
        fatal("checkpoint not fully consumed: expected '!end', found '", w,
              "'");
}

void
CheckpointReader::expectKey(const std::string &key)
{
    std::string got = word("key '" + key + "'");
    if (got != key)
        fatal("checkpoint mismatch: expected key '", key, "', found '", got,
              "' (file does not match this configuration?)");
}

void
CheckpointReader::section(const std::string &name)
{
    std::string got = word("section '" + name + "'");
    if (got != "@" + name)
        fatal("checkpoint mismatch: expected section '@", name, "', found '",
              got, "'");
}

std::uint64_t
CheckpointReader::u64(const std::string &key)
{
    expectKey(key);
    std::string v = word("value of '" + key + "'");
    std::uint64_t out = 0;
    try {
        std::size_t pos = 0;
        out = std::stoull(v, &pos);
        if (pos != v.size())
            fatal("checkpoint value for '", key, "' is not an integer: '", v,
                  "'");
    } catch (const std::invalid_argument &) {
        fatal("checkpoint value for '", key, "' is not an integer: '", v,
              "'");
    } catch (const std::out_of_range &) {
        fatal("checkpoint value for '", key, "' is out of range: '", v, "'");
    }
    return out;
}

double
CheckpointReader::f64(const std::string &key)
{
    return bitsDouble(u64(key));
}

std::string
CheckpointReader::str(const std::string &key)
{
    expectKey(key);
    std::string v = word("value of '" + key + "'");
    return v == "-" ? std::string() : v;
}

std::vector<std::uint64_t>
CheckpointReader::u64vec(const std::string &key)
{
    std::uint64_t n = u64(key);
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string v = word("element of '" + key + "'");
        try {
            out.push_back(std::stoull(v));
        } catch (const std::exception &) {
            fatal("checkpoint vector '", key, "' has bad element '", v, "'");
        }
    }
    return out;
}

std::vector<double>
CheckpointReader::f64vec(const std::string &key)
{
    std::vector<std::uint64_t> bits = u64vec(key);
    std::vector<double> out;
    out.reserve(bits.size());
    for (std::uint64_t b : bits)
        out.push_back(bitsDouble(b));
    return out;
}

void
saveGroupStats(CheckpointWriter &w, const stats::Group &group)
{
    // collect() returns a std::map, so iteration order is sorted and
    // deterministic across runs.
    std::map<std::string, double> values;
    group.collect(values);
    w.u64("stats.count", values.size());
    for (const auto &[name, value] : values)
        w.f64(name, value);
}

void
restoreGroupStats(CheckpointReader &r, stats::Group &group)
{
    std::map<std::string, stats::Scalar *> byName;
    group.visitScalars(
        [&byName](const std::string &name, stats::Scalar &s) {
            byName[name] = &s;
        });
    std::uint64_t n = r.u64("stats.count");
    if (n != byName.size())
        fatal("checkpoint stat count mismatch for group '",
              group.groupName(), "': file has ", n, ", group has ",
              byName.size());
    // Sorted map order matches saveGroupStats's collect() order.
    for (auto &[name, scalar] : byName)
        scalar->set(r.f64(name));
}

bool
validateCheckpointFile(const std::string &path, std::string *why,
                       std::uint64_t *iter)
{
    const auto invalid = [why](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };

    std::ifstream in(path);
    if (!in.good())
        return invalid("cannot open file");

    std::string magic, version;
    if (!(in >> magic) || magic != "novackpt" || !(in >> version))
        return invalid("bad header (not a NOVA checkpoint)");
    if (version == "1")
        return invalid("version-1 file carries no integrity records");
    if (version != "2")
        return invalid("unknown checkpoint version '" + version + "'");

    std::uint32_t crc = 0xFFFFFFFFu;
    crc = crcToken(crc, magic);
    crc = crcToken(crc, version);

    std::string section = "header";
    std::string prev;
    std::uint64_t pending = 2; // tokens folded since the last CRC flush
    bool ended = false;
    bool iter_seen = false;
    std::string w;
    while (in >> w) {
        if (ended)
            return invalid("trailing data after '!end'");
        if (w == "!crc") {
            std::string stored;
            if (!(in >> stored))
                return invalid("truncated CRC record in section '" +
                               section + "'");
            std::uint32_t want = 0;
            if (!parseCrcHex(stored, want))
                return invalid("malformed CRC record '" + stored +
                               "' in section '" + section + "'");
            if (want != (crc ^ 0xFFFFFFFFu))
                return invalid("section '" + section +
                               "' failed its CRC check");
            crc = 0xFFFFFFFFu;
            pending = 0;
            prev.clear();
            continue;
        }
        if (w == "!end") {
            if (pending != 0)
                return invalid("unchecked records before '!end'");
            ended = true;
            continue;
        }
        crc = crcToken(crc, w);
        ++pending;
        if (w.size() > 1 && w[0] == '@') {
            section = w.substr(1);
            prev.clear();
            continue;
        }
        if (iter && !iter_seen && section == "meta" && prev == "iter") {
            try {
                *iter = std::stoull(w);
                iter_seen = true;
            } catch (const std::exception &) {
                return invalid("meta section has a non-integer 'iter'");
            }
        }
        prev = w;
    }
    if (!ended)
        return invalid("truncated (missing '!end' terminator)");
    return true;
}

void
commitCheckpointDurable(const std::string &tmpPath,
                        const std::string &finalPath,
                        unsigned keepGenerations)
{
    if (!fsyncPath(tmpPath, false))
        fatal("cannot fsync checkpoint '", tmpPath, "': ",
              std::strerror(errno));

    // Shift the chain oldest-first (k-1 -> k) so a crash mid-rotation
    // only ever duplicates a generation, never loses the newest.
    const unsigned keep = keepGenerations == 0 ? 1 : keepGenerations;
    for (unsigned k = keep - 1; k >= 1; --k) {
        // Missing generations are normal early in a run.
        std::rename(generationPath(finalPath, k - 1).c_str(),
                    generationPath(finalPath, k).c_str());
    }
    if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0)
        fatal("cannot publish checkpoint '", tmpPath, "' -> '", finalPath,
              "': ", std::strerror(errno));

    const std::size_t slash = finalPath.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : finalPath.substr(0, slash);
    fsyncPath(dir.empty() ? "/" : dir, true);
}

GenerationPick
newestValidCheckpoint(const std::string &path, unsigned keepGenerations)
{
    const unsigned keep = keepGenerations == 0 ? 1 : keepGenerations;
    GenerationPick pick;
    for (unsigned k = 0; k < keep; ++k) {
        const std::string p = generationPath(path, k);
        std::string why;
        std::uint64_t iter = 0;
        if (validateCheckpointFile(p, &why, &iter)) {
            pick.path = p;
            pick.generation = k;
            pick.iter = iter;
            return pick;
        }
        pick.rejected.push_back(p + ": " + why);
    }
    return pick;
}

} // namespace nova::sim
