#include "sim/checkpoint.hh"

#include <cstring>
#include <map>

#include "sim/logging.hh"

namespace nova::sim
{

namespace
{

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(std::uint64_t bits)
{
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

bool
validKey(const std::string &key)
{
    if (key.empty())
        return false;
    for (char c : key) {
        const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                          c == '-' || c == '[' || c == ']';
        if (!word)
            return false;
    }
    return true;
}

} // namespace

CheckpointWriter::CheckpointWriter(std::ostream &stream) : os(stream)
{
    os << "novackpt 1\n";
}

void
CheckpointWriter::section(const std::string &name)
{
    NOVA_ASSERT(validKey(name), "invalid checkpoint section name '", name,
                "'");
    os << "@" << name << "\n";
}

void
CheckpointWriter::u64(const std::string &key, std::uint64_t value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    os << key << " " << value << "\n";
}

void
CheckpointWriter::f64(const std::string &key, double value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    os << key << " " << doubleBits(value) << "\n";
}

void
CheckpointWriter::str(const std::string &key, const std::string &value)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    NOVA_ASSERT(value.find_first_of(" \t\n\r") == std::string::npos,
                "checkpoint string value for '", key,
                "' contains whitespace");
    os << key << " " << (value.empty() ? "-" : value) << "\n";
}

void
CheckpointWriter::u64vec(const std::string &key,
                         const std::vector<std::uint64_t> &values)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    os << key << " " << values.size();
    for (std::uint64_t v : values)
        os << " " << v;
    os << "\n";
}

void
CheckpointWriter::f64vec(const std::string &key,
                         const std::vector<double> &values)
{
    NOVA_ASSERT(validKey(key), "invalid checkpoint key '", key, "'");
    os << key << " " << values.size();
    for (double v : values)
        os << " " << doubleBits(v);
    os << "\n";
}

CheckpointReader::CheckpointReader(std::istream &stream) : is(stream)
{
    std::string magic = word("header");
    std::string version = word("header");
    if (magic != "novackpt" || version != "1")
        fatal("not a NOVA checkpoint (bad header '", magic, " ", version,
              "')");
}

std::string
CheckpointReader::word(const std::string &context)
{
    std::string w;
    if (!(is >> w))
        fatal("checkpoint truncated while reading ", context);
    return w;
}

void
CheckpointReader::expectKey(const std::string &key)
{
    std::string got = word("key '" + key + "'");
    if (got != key)
        fatal("checkpoint mismatch: expected key '", key, "', found '", got,
              "' (file does not match this configuration?)");
}

void
CheckpointReader::section(const std::string &name)
{
    std::string got = word("section '" + name + "'");
    if (got != "@" + name)
        fatal("checkpoint mismatch: expected section '@", name, "', found '",
              got, "'");
}

std::uint64_t
CheckpointReader::u64(const std::string &key)
{
    expectKey(key);
    std::string v = word("value of '" + key + "'");
    std::uint64_t out = 0;
    try {
        std::size_t pos = 0;
        out = std::stoull(v, &pos);
        if (pos != v.size())
            fatal("checkpoint value for '", key, "' is not an integer: '", v,
                  "'");
    } catch (const std::invalid_argument &) {
        fatal("checkpoint value for '", key, "' is not an integer: '", v,
              "'");
    } catch (const std::out_of_range &) {
        fatal("checkpoint value for '", key, "' is out of range: '", v, "'");
    }
    return out;
}

double
CheckpointReader::f64(const std::string &key)
{
    return bitsDouble(u64(key));
}

std::string
CheckpointReader::str(const std::string &key)
{
    expectKey(key);
    std::string v = word("value of '" + key + "'");
    return v == "-" ? std::string() : v;
}

std::vector<std::uint64_t>
CheckpointReader::u64vec(const std::string &key)
{
    std::uint64_t n = u64(key);
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string v = word("element of '" + key + "'");
        try {
            out.push_back(std::stoull(v));
        } catch (const std::exception &) {
            fatal("checkpoint vector '", key, "' has bad element '", v, "'");
        }
    }
    return out;
}

std::vector<double>
CheckpointReader::f64vec(const std::string &key)
{
    std::vector<std::uint64_t> bits = u64vec(key);
    std::vector<double> out;
    out.reserve(bits.size());
    for (std::uint64_t b : bits)
        out.push_back(bitsDouble(b));
    return out;
}

void
saveGroupStats(CheckpointWriter &w, const stats::Group &group)
{
    // collect() returns a std::map, so iteration order is sorted and
    // deterministic across runs.
    std::map<std::string, double> values;
    group.collect(values);
    w.u64("stats.count", values.size());
    for (const auto &[name, value] : values)
        w.f64(name, value);
}

void
restoreGroupStats(CheckpointReader &r, stats::Group &group)
{
    std::map<std::string, stats::Scalar *> byName;
    group.visitScalars(
        [&byName](const std::string &name, stats::Scalar &s) {
            byName[name] = &s;
        });
    std::uint64_t n = r.u64("stats.count");
    if (n != byName.size())
        fatal("checkpoint stat count mismatch for group '",
              group.groupName(), "': file has ", n, ", group has ",
              byName.size());
    // Sorted map order matches saveGroupStats's collect() order.
    for (auto &[name, scalar] : byName)
        scalar->set(r.f64(name));
}

} // namespace nova::sim
