#include "sim/arrivals.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"
#include "sim/random.hh"

namespace nova::sim
{

ArrivalSpec
ArrivalSpec::parse(const std::string &text)
{
    const auto colon = text.find(':');
    const std::string head = text.substr(0, colon);
    const std::string rest =
        colon == std::string::npos ? "" : text.substr(colon + 1);

    ArrivalSpec spec;
    if (head == "poisson") {
        spec.kind = Kind::Poisson;
        if (rest.empty())
            fatal("arrival spec '", text,
                  "': poisson needs a mean gap, e.g. poisson:1000");
        std::uint64_t gap = 0;
        std::istringstream in(rest);
        if (!(in >> gap) || !in.eof() || gap == 0)
            fatal("arrival spec '", text, "': bad poisson mean gap '",
                  rest, "' (want a positive tick count)");
        spec.meanGap = gap;
    } else if (head == "trace") {
        spec.kind = Kind::Trace;
        if (rest.empty())
            fatal("arrival spec '", text, "': trace needs a file path");
        spec.path = rest;
    } else {
        fatal("arrival spec '", text,
              "': want poisson:<mean_gap_ticks> or trace:<path>");
    }
    return spec;
}

std::string
ArrivalSpec::describe() const
{
    if (kind == Kind::Poisson)
        return "poisson:" + std::to_string(meanGap);
    return "trace:" + path;
}

namespace
{

std::uint32_t
parseKindToken(const std::string &token, std::uint32_t num_kinds,
               const std::string &where)
{
    // The well-known serving kind names, as a trace-authoring
    // convenience; bare integers address any kind table.
    if (token == "msbfs")
        return 0;
    if (token == "ppr")
        return 1;
    if (token == "p2p")
        return 2;
    std::uint64_t k = 0;
    std::istringstream in(token);
    if (!(in >> k) || !in.eof() || k >= num_kinds)
        fatal(where, ": bad query kind '", token, "' (want 0..",
              num_kinds - 1, " or msbfs/ppr/p2p)");
    return static_cast<std::uint32_t>(k);
}

std::vector<Arrival>
generatePoisson(const ArrivalSpec &spec, std::uint64_t seed,
                std::uint32_t tenants, std::uint32_t num_kinds,
                Tick duration)
{
    Rng rng(seed);
    std::vector<Arrival> out;
    Tick t = 0;
    for (;;) {
        const double u = rng.nextDouble();
        const double gap_f = -std::log(1.0 - u) *
                             static_cast<double>(spec.meanGap);
        const auto gap = std::max<Tick>(1, static_cast<Tick>(gap_f));
        t = tickAdd(t, gap);
        if (t > duration)
            break;
        Arrival a;
        a.at = t;
        a.tenant = static_cast<std::uint32_t>(rng.nextBounded(tenants));
        a.kind = static_cast<std::uint32_t>(rng.nextBounded(num_kinds));
        a.paramA = rng.next();
        a.paramB = rng.next();
        out.push_back(a);
    }
    return out;
}

std::vector<Arrival>
generateTrace(const ArrivalSpec &spec, std::uint64_t seed,
              std::uint32_t tenants, std::uint32_t num_kinds,
              Tick duration)
{
    std::ifstream in(spec.path);
    if (!in)
        fatal("arrival trace '", spec.path, "': cannot open");

    Rng rng(seed);
    std::vector<Arrival> out;
    std::string line;
    std::uint64_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::uint64_t at = 0;
        std::uint64_t tenant = 0;
        std::string kind_tok;
        if (!(fields >> at))
            continue; // blank or comment-only line
        const std::string where =
            spec.path + ":" + std::to_string(line_no);
        if (!(fields >> tenant >> kind_tok))
            fatal(where, ": want '<tick> <tenant> <kind> "
                         "[paramA [paramB]]'");
        if (tenant >= tenants)
            fatal(where, ": tenant ", tenant, " out of range (campaign "
                  "has ", tenants, " tenants)");
        Arrival a;
        a.at = at;
        a.tenant = static_cast<std::uint32_t>(tenant);
        a.kind = parseKindToken(kind_tok, num_kinds, where);
        if (!(fields >> a.paramA))
            a.paramA = rng.next();
        if (!(fields >> a.paramB))
            a.paramB = rng.next();
        std::string trailing;
        if (fields >> trailing)
            fatal(where, ": trailing token '", trailing, "'");
        if (a.at <= duration)
            out.push_back(a);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const Arrival &x, const Arrival &y) {
                         return x.at < y.at;
                     });
    return out;
}

} // namespace

std::vector<Arrival>
generateArrivals(const ArrivalSpec &spec, std::uint64_t seed,
                 std::uint32_t tenants, std::uint32_t num_kinds,
                 Tick duration)
{
    if (tenants == 0 || num_kinds == 0)
        fatal("arrival generation needs >= 1 tenant and >= 1 query kind");
    if (spec.kind == ArrivalSpec::Kind::Poisson)
        return generatePoisson(spec, seed, tenants, num_kinds, duration);
    return generateTrace(spec, seed, tenants, num_kinds, duration);
}

} // namespace nova::sim
