/**
 * @file
 * Deterministic pseudo-random number generation for simulation models and
 * workload generators.
 *
 * All stochastic behaviour in the repository flows through Rng so that a
 * given seed reproduces a run bit-for-bit. The generator is xoshiro256**,
 * which is fast and has good statistical quality for simulation purposes.
 */

#ifndef NOVA_SIM_RANDOM_HH
#define NOVA_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace nova::sim
{

/** A small, seedable, splittable pseudo-random number generator. */
class Rng
{
  public:
    /** Construct from a 64-bit seed; any seed (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Derive an independent child generator. Useful to give each
     * component its own stream without correlation.
     */
    Rng split();

    /** @{ @name Record/replay support
     * The full generator state, so the verify harness can snapshot a
     * stream mid-run and resume it bit-for-bit during replay.
     */
    std::array<std::uint64_t, 4> saveState() const;
    void restoreState(const std::array<std::uint64_t, 4> &state);
    /** @} */

  private:
    std::uint64_t s[4];

    static std::uint64_t splitMix64(std::uint64_t &state);
};

} // namespace nova::sim

#endif // NOVA_SIM_RANDOM_HH
