/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 *
 * Components own Scalar/Histogram objects and register them with a Group.
 * Benchmarks and tests read stats by name or through the typed objects.
 */

#ifndef NOVA_SIM_STATS_HH
#define NOVA_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace nova::sim::stats
{

/** A single named scalar statistic (a counter or a gauge). */
class Scalar
{
  public:
    Scalar() = default;

    double value() const { return val; }
    void set(double v) { val = v; }
    void reset() { val = 0; }

    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator-=(double v) { val -= v; return *this; }
    Scalar &operator++() { val += 1; return *this; }

  private:
    double val = 0;
};

/** A fixed-bucket histogram over a linear range. */
class Histogram
{
  public:
    /** @param num_buckets number of equal-width buckets over [lo, hi). */
    Histogram(double lo = 0, double hi = 1, std::size_t num_buckets = 16);

    /** Record one sample; out-of-range samples clamp to end buckets. */
    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / static_cast<double>(n) : 0; }
    double min() const { return n ? minV : 0; }
    double max() const { return n ? maxV : 0; }
    const std::vector<std::uint64_t> &buckets() const { return bins; }
    void reset();

  private:
    double lo, hi;
    std::vector<std::uint64_t> bins;
    std::uint64_t n = 0;
    double sum = 0;
    double minV = 0;
    double maxV = 0;
};

class Group;

/**
 * Exact nearest-rank quantiles over integer samples (latencies in
 * ticks, queue depths). Samples are kept verbatim — serving campaigns
 * record at most a few thousand queries — so percentile(99) is the
 * textbook nearest-rank order statistic: deterministic, with no
 * interpolation or floating-point accumulation to diverge across
 * platforms. Exposed to a Group through registerIn(), which publishes
 * count/mean/p50/p95/p99/max as derived scalars at snapshot() time.
 */
class Quantiles
{
  public:
    /** Record one sample. */
    void sample(std::uint64_t v);

    std::uint64_t count() const { return vals.size(); }
    std::uint64_t max() const;
    /** Integer mean (floor), 0 when empty. */
    std::uint64_t mean() const;

    /**
     * Nearest-rank percentile: the ceil(p/100 * n)-th smallest sample.
     * @pre 0 < p <= 100. Returns 0 when no samples were recorded.
     */
    std::uint64_t percentile(unsigned p) const;

    void reset();

    /** @{ @name Checkpoint support
     * The raw samples in insertion order; restoring them resumes the
     * tracker bit-identically (quantiles are order-independent, so the
     * insertion order only matters for byte-exact checkpoint files).
     */
    const std::vector<std::uint64_t> &samples() const { return vals; }
    void
    setSamples(std::vector<std::uint64_t> v)
    {
        vals = std::move(v);
        sorted.clear();
        dirty = true;
    }
    /** @} */

    /**
     * Register derived scalars (`<prefix>.count/mean/p50/p95/p99/max`)
     * under `g`. The scalars live inside this object; call snapshot()
     * after the last sample to refresh them.
     */
    void registerIn(Group &g, const std::string &prefix);

    /** Refresh the registered derived scalars from the samples. */
    void snapshot();

  private:
    std::vector<std::uint64_t> vals;
    mutable std::vector<std::uint64_t> sorted; ///< lazily sorted copy
    mutable bool dirty = false;

    Scalar countStat, meanStat, p50Stat, p95Stat, p99Stat, maxStat;
};

/**
 * A named collection of statistics, hierarchically composable.
 *
 * Groups do not own the registered statistics; the registering component
 * does. All registered objects must outlive the group.
 */
class Group
{
  public:
    explicit Group(std::string group_name = "") : name(std::move(group_name))
    {
    }

    // Rule-of-five: groups are registered by pointer (addChild) and hold
    // non-owning pointers to member stats; a copy would alias both sides
    // of the registry. Keep them pinned.
    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Register a scalar under this group. */
    void addScalar(const std::string &stat_name, Scalar *s);

    /** Register a histogram under this group. */
    void addHistogram(const std::string &stat_name, Histogram *h);

    /** Attach a child group (e.g., a sub-component). */
    void addChild(Group *child);

    /** Look up a scalar by dotted path; panics if absent. */
    double get(const std::string &path) const;

    /** True when a scalar with the given dotted path exists. */
    bool has(const std::string &path) const;

    /** Flatten all scalars into `out` with dotted names. */
    void collect(std::map<std::string, double> &out,
                 const std::string &prefix = "") const;

    /**
     * Visit every registered scalar mutably with its dotted name,
     * recursing into children. Used by checkpoint restore to write
     * saved counter values back into live components.
     */
    void visitScalars(
        const std::function<void(const std::string &, Scalar &)> &fn,
        const std::string &prefix = "");

    /** Pretty-print all statistics. */
    void dump(std::ostream &os) const;

    const std::string &groupName() const { return name; }

  private:
    std::string name;
    std::vector<std::pair<std::string, Scalar *>> scalars;
    std::vector<std::pair<std::string, Histogram *>> histograms;
    std::vector<Group *> children;
};

} // namespace nova::sim::stats

#endif // NOVA_SIM_STATS_HH
