/**
 * @file
 * Deterministic open-loop arrival generation for the serving layer
 * (docs/SERVING.md).
 *
 * An arrival process stands in for user traffic: a seeded Poisson
 * process ("poisson:<mean_gap_ticks>") or a replayable trace file
 * ("trace:<path>"). Either way the whole campaign's arrival sequence
 * is a pure function of (spec, seed, tenants, kinds, duration) —
 * generated up front as a vector, never sampled during simulation —
 * so identical seeds give bit-identical request streams regardless of
 * thread count or queue backend, and a checkpoint only has to record
 * a cursor into the sequence.
 */

#ifndef NOVA_SIM_ARRIVALS_HH
#define NOVA_SIM_ARRIVALS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace nova::sim
{

/**
 * One request arrival. The generator is agnostic to what a "kind"
 * means: it draws a kind index in [0, numKinds) and two raw 64-bit
 * parameter words; the consumer (core::ServingSystem) maps them onto
 * query sources/targets deterministically.
 */
struct Arrival
{
    Tick at = 0;               ///< arrival time (simulated ticks)
    std::uint32_t tenant = 0;  ///< issuing tenant, [0, tenants)
    std::uint32_t kind = 0;    ///< query-kind index, [0, numKinds)
    std::uint64_t paramA = 0;  ///< raw parameter (e.g. source selector)
    std::uint64_t paramB = 0;  ///< raw parameter (e.g. target selector)
};

/** Parsed `--arrivals=` specification. */
struct ArrivalSpec
{
    enum class Kind
    {
        Poisson, ///< exponential inter-arrival gaps, seeded
        Trace,   ///< replay a trace file verbatim
    };

    Kind kind = Kind::Poisson;
    /** Poisson: mean inter-arrival gap in ticks (> 0). */
    Tick meanGap = 1000;
    /** Trace: path of the trace file. */
    std::string path;

    /**
     * Parse "poisson:<mean_gap_ticks>" or "trace:<path>".
     * fatal() on malformed specs (exit-code-1 user error).
     */
    static ArrivalSpec parse(const std::string &text);

    /** Canonical round-trip form (report provenance field). */
    std::string describe() const;
};

/**
 * Materialize the full arrival sequence for a campaign.
 *
 * Poisson: inter-arrival gaps are max(1, floor(-ln(1-u) * meanGap))
 * with u drawn from an Rng seeded with `seed`; tenant, kind and the
 * parameter words come from the same stream, so one seed pins the
 * whole sequence. Trace: lines are `<tick> <tenant> <kind> [paramA
 * [paramB]]` (kind is an integer index or one of the serving layer's
 * names msbfs/ppr/p2p; `#` starts a comment), and `seed` only feeds
 * the parameter words of lines that omit them.
 *
 * Arrivals past `duration` are dropped; the result is sorted by
 * arrival tick (stable for equal ticks, preserving trace order).
 */
std::vector<Arrival> generateArrivals(const ArrivalSpec &spec,
                                      std::uint64_t seed,
                                      std::uint32_t tenants,
                                      std::uint32_t numKinds,
                                      Tick duration);

} // namespace nova::sim

#endif // NOVA_SIM_ARRIVALS_HH
