/**
 * @file
 * Base classes for simulated hardware components (gem5 SimObjects).
 */

#ifndef NOVA_SIM_SIM_OBJECT_HH
#define NOVA_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace nova::sim
{

class CheckpointReader;
class CheckpointWriter;

/**
 * A named simulation component attached to an event queue.
 *
 * SimObjects are constructed once per run, wired to each other by the
 * system builder, and then driven entirely by events.
 */
class SimObject
{
  public:
    SimObject(std::string object_name, EventQueue &queue)
        : objName(std::move(object_name)), eq(queue),
          statGroup(objName)
    {
    }

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return objName; }
    EventQueue &eventQueue() { return eq; }
    Tick now() const { return eq.now(); }

    /** Statistics exposed by this component. */
    stats::Group &statistics() { return statGroup; }
    const stats::Group &statistics() const { return statGroup; }

    /** Called once after the whole system has been wired together. */
    virtual void startup() {}

    /**
     * @{ @name Checkpoint hooks
     * Serialize/restore this component's quiescent state (model
     * registers and functional contents; statistics are handled
     * separately via saveGroupStats). Components that keep no state
     * beyond statistics use the empty defaults. Only called at global
     * quiescence — no events pending, no messages in flight.
     */
    virtual void saveState(CheckpointWriter &w) const { (void)w; }
    virtual void restoreState(CheckpointReader &r) { (void)r; }
    /** @} */

  protected:
    /** Schedule a closure `delta` ticks in the future. */
    void
    scheduleIn(Tick delta, std::function<void()> fn,
               int priority = defaultPriority)
    {
        eq.scheduleIn(delta, std::move(fn), priority);
    }

  private:
    std::string objName;
    EventQueue &eq;
    stats::Group statGroup;
};

/**
 * A SimObject that belongs to a clock domain.
 *
 * Provides cycle/tick conversion and edge alignment so that models can
 * express latencies in their own cycles.
 */
class ClockedObject : public SimObject
{
  public:
    ClockedObject(std::string object_name, EventQueue &queue,
                  Tick clock_period)
        : SimObject(std::move(object_name), queue), period(clock_period)
    {
        NOVA_ASSERT(period > 0, "clock period must be positive");
    }

    /** The clock period in ticks. */
    Tick clockPeriod() const { return period; }

    /** Convert a cycle count of this domain to ticks. */
    Tick cyclesToTicks(Cycles c) const { return tickMul(c, period); }

    /** The current cycle number (floor). */
    Cycles curCycle() const { return now() / period; }

    /**
     * The tick of the clock edge `cycles` cycles after the next edge
     * at-or-after now. clockEdge(0) is the first edge >= now.
     */
    Tick
    clockEdge(Cycles cycles = 0) const
    {
        const Tick t = now();
        const Tick aligned = tickMul(tickAdd(t, period - 1) / period, period);
        return tickAdd(aligned, tickMul(cycles, period));
    }

  private:
    Tick period;
};

} // namespace nova::sim

#endif // NOVA_SIM_SIM_OBJECT_HH
