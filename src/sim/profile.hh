/**
 * @file
 * Scoped, hierarchical host-time profiler for the simulation kernel.
 *
 * The simulator's own speed — host nanoseconds per simulated event — is
 * the budget every experiment in bench/ spends. This profiler answers
 * "where does the host time go" with per-(SimObject, event-kind) sites:
 * a component brackets each event boundary with NOVA_PROF_SCOPE, and
 * the registry accumulates call counts plus total and self (exclusive)
 * nanoseconds, attributing nested scopes to their parent's child time.
 *
 * The profiler is disarmed by default and costs one predicted branch on
 * a static bool per scope in that state; nothing else is touched, so
 * arming it never perturbs simulated behaviour (event order and
 * fingerprints are host-time independent by construction). Defining
 * NOVA_PROFILE_DISABLED removes even the branch at compile time.
 *
 * Host-time measurement is the one legitimate wall-clock consumer in
 * the tree: readings only ever flow into host-side statistics, never
 * into simulated state.
 */
// novalint:allow-file(wall-clock)

#ifndef NOVA_SIM_PROFILE_HH
#define NOVA_SIM_PROFILE_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hh"

namespace nova::sim::profile
{

class Registry;
class Scope;

/** One profiled event boundary of one simulated object. */
class Site
{
  public:
    Site(std::string object_name, std::string kind_name)
        : obj(std::move(object_name)), kindName(std::move(kind_name))
    {
    }

    Site(const Site &) = delete;
    Site &operator=(const Site &) = delete;

    /** Owning object ("pe0.mpu", "sim", ...). */
    const std::string &object() const { return obj; }

    /** Event kind within the object ("work", "run", ...). */
    const std::string &kind() const { return kindName; }

    /** Dotted display name, "<object>.<kind>". */
    std::string fullName() const { return obj + "." + kindName; }

    std::uint64_t calls() const
    {
        return static_cast<std::uint64_t>(nCalls.value());
    }
    std::uint64_t totalNanos() const
    {
        return static_cast<std::uint64_t>(nTotalNanos.value());
    }
    std::uint64_t selfNanos() const
    {
        return static_cast<std::uint64_t>(nSelfNanos.value());
    }

    /** Register this site's counters under `g` (done by the Registry). */
    void registerStats(stats::Group &g);

    void
    reset()
    {
        nCalls.reset();
        nTotalNanos.reset();
        nSelfNanos.reset();
    }

  private:
    friend class Scope;

    std::string obj;
    std::string kindName;
    stats::Scalar nCalls;
    stats::Scalar nTotalNanos;
    stats::Scalar nSelfNanos;
};

/** One aggregated line of a profile report. */
struct Row
{
    std::string object; ///< "*" when aggregated across objects
    std::string kind;
    std::uint64_t calls = 0;
    std::uint64_t totalNanos = 0;
    std::uint64_t selfNanos = 0;

    /** Scope entries per host second of scope-total time. */
    double
    eventsPerSec() const
    {
        return totalNanos == 0 ? 0
                               : static_cast<double>(calls) * 1e9 /
                                     static_cast<double>(totalNanos);
    }
};

/**
 * The process-wide site registry.
 *
 * Sites are created on first use and live for the process; their
 * accumulators are reset per measured run. All access is
 * single-threaded, like the simulation itself.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Find or create the site for (object, kind). */
    Site &site(const std::string &object, const std::string &kind);

    /** @{ @name Arming
     * Disarmed scopes cost one branch; armed scopes read the host clock
     * twice and update their site. Threads running inside the parallel
     * scheduler suppress profiling entirely (the registry's spine is
     * single-threaded), so armed profiles only ever cover the serial
     * scheduler path.
     */
    static bool armed() { return armedFlag && !tlSuppress; }
    void arm() { armedFlag = true; }
    void disarm() { armedFlag = false; }
    /** @} */

    /**
     * RAII suppression of profiling on the current thread. The parallel
     * scheduler brackets shard execution (on workers and on the caller's
     * own lane alike, so results never depend on the thread count) with
     * one of these.
     */
    class ThreadSuppressor
    {
      public:
        ThreadSuppressor() : prev(tlSuppress) { tlSuppress = true; }
        ~ThreadSuppressor() { tlSuppress = prev; }
        ThreadSuppressor(const ThreadSuppressor &) = delete;
        ThreadSuppressor &operator=(const ThreadSuppressor &) = delete;

      private:
        bool prev;
    };

    /** Zero every site's accumulators (start of a measured run). */
    void reset();

    /** All sites' counters as a stats group named "profile". */
    stats::Group &statsGroup() { return group; }

    /**
     * Per-site rows, sorted by self time descending. With `aggregate`,
     * rows with the same kind are folded across objects (object "*") —
     * the per-PE split rarely matters, the per-kind one always does.
     */
    std::vector<Row> report(bool aggregate = false) const;

    /** Human-readable table of report(aggregate=true). */
    std::string table() const;

  private:
    Registry() = default;

    friend class Scope;

    static inline bool armedFlag = false;
    static inline thread_local bool tlSuppress = false;
    std::map<std::pair<std::string, std::string>, std::unique_ptr<Site>>
        sites;
    stats::Group group{"profile"};
    Scope *cur = nullptr; ///< innermost open scope (hierarchy spine)
};

/**
 * RAII bracket around one profiled region. When the registry is
 * disarmed, construction is a single branch and destruction a null
 * check; when armed, the scope charges its duration to the site and its
 * exclusive share to the parent scope's child time.
 */
class Scope
{
  public:
    explicit Scope(Site &s)
    {
#if !defined(NOVA_PROFILE_DISABLED)
        if (Registry::armed())
            open(s);
#else
        (void)s;
#endif
    }

    ~Scope()
    {
        if (site)
            close();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void open(Site &s);
    void close();

    Site *site = nullptr;
    Scope *parent = nullptr;
    std::uint64_t startNanos = 0;
    std::uint64_t childNanos = 0;
};

/** Monotonic host clock reading in nanoseconds. */
inline std::uint64_t
hostNow()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** The event-loop site ("sim.run"); its self time is kernel overhead. */
Site &loopSite();

} // namespace nova::sim::profile

/**
 * Bracket the rest of the enclosing block as one occurrence of `site`
 * (a profile::Site reference). Near-zero cost while disarmed.
 */
#define NOVA_PROF_CONCAT2(a, b) a##b
#define NOVA_PROF_CONCAT(a, b) NOVA_PROF_CONCAT2(a, b)
#define NOVA_PROF_SCOPE(site) \
    ::nova::sim::profile::Scope NOVA_PROF_CONCAT(nova_prof_scope_, \
                                                 __LINE__)(site)

#endif // NOVA_SIM_PROFILE_HH
