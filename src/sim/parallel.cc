#include "sim/parallel.hh"

#include <algorithm>
#include <tuple>

#include "sim/logging.hh"
#include "sim/profile.hh"

namespace nova::sim
{

ParallelScheduler::ParallelScheduler(const Config &config)
    : cfg(config), mailboxes(config.numShards)
{
    NOVA_ASSERT(cfg.numShards > 0, "scheduler needs at least one shard");
    NOVA_ASSERT(cfg.numThreads > 0, "scheduler needs at least one thread");
    NOVA_ASSERT(cfg.lookahead > 0, "conservative PDES needs lookahead > 0");
    shards.reserve(cfg.numShards);
    for (std::uint32_t s = 0; s < cfg.numShards; ++s)
        shards.push_back(std::make_unique<Shard>(cfg.impl));

    // Lane 0 is the caller; extra lanes get dedicated workers. More
    // threads than shards would idle, so clamp.
    const std::uint32_t lanes =
        std::min(cfg.numThreads, cfg.numShards);
    for (std::uint32_t lane = 1; lane < lanes; ++lane)
        workers.emplace_back([this, lane] { workerLoop(lane); });
}

ParallelScheduler::~ParallelScheduler()
{
    {
        std::lock_guard<std::mutex> l(poolMutex);
        stopping = true;
    }
    cvStart.notify_all();
    for (auto &w : workers)
        w.join();
    // Free any undrained mailbox nodes (e.g. unwinding after a panic).
    for (auto &box : mailboxes) {
        MailNode *n = box.head.exchange(nullptr,
                                        std::memory_order_acquire);
        while (n) {
            std::unique_ptr<MailNode> own(n);
            n = own->next;
        }
    }
}

void
ParallelScheduler::postCross(std::uint32_t src_shard,
                             std::uint32_t dst_shard, Tick when,
                             int priority, std::function<void()> fn)
{
    NOVA_ASSERT(src_shard < numShards() && dst_shard < numShards());
    if (!redirect.empty())
        dst_shard = redirect[dst_shard];
    auto node = std::make_unique<MailNode>();
    node->when = when;
    node->priority = priority;
    node->srcShard = src_shard;
    node->srcSeq = shards[src_shard]->postSeq++;
    node->fn = std::move(fn);

    Mailbox &box = mailboxes[dst_shard];
    MailNode *n = node.release();
    n->next = box.head.load(std::memory_order_relaxed);
    while (!box.head.compare_exchange_weak(n->next, n,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
    }
}

void
ParallelScheduler::setGuard(Tick max_tick, std::uint64_t max_events)
{
    for (auto &sh : shards)
        sh->q.setGuard(max_tick, max_events);
}

void
ParallelScheduler::retireShard(std::uint32_t s, std::uint32_t reassign_to)
{
    NOVA_ASSERT(s < numShards() && reassign_to < numShards());
    NOVA_ASSERT(s != reassign_to, "a shard cannot adopt itself");
    NOVA_ASSERT(!shardRetired(s) && !shardRetired(reassign_to),
                "retire source must be live and target must survive");
    if (retiredFlags.empty()) {
        retiredFlags.assign(numShards(), 0);
        redirect.resize(numShards());
        for (std::uint32_t i = 0; i < numShards(); ++i)
            redirect[i] = i;
    }
    retiredFlags[s] = 1;
    for (std::uint32_t i = 0; i < numShards(); ++i)
        if (redirect[i] == s)
            redirect[i] = reassign_to;

    // Fold whatever is still in the dead shard's mailbox into the
    // survivor's stack; the canonical (when, priority, srcShard,
    // srcSeq) sort at the next drain orders it deterministically.
    MailNode *n =
        mailboxes[s].head.exchange(nullptr, std::memory_order_acquire);
    while (n) {
        MailNode *next = n->next;
        Mailbox &box = mailboxes[reassign_to];
        n->next = box.head.load(std::memory_order_relaxed);
        while (!box.head.compare_exchange_weak(n->next, n,
                                               std::memory_order_release,
                                               std::memory_order_relaxed)) {
        }
        n = next;
    }
}

/**
 * Empty every mailbox into its destination queue. Runs on the
 * coordinator between windows; the canonical sort makes the
 * destination's sequence assignment independent of which thread posted
 * first in host time.
 */
void
ParallelScheduler::drainMailboxes()
{
    std::vector<std::unique_ptr<MailNode>> batch;
    for (std::uint32_t dst = 0; dst < numShards(); ++dst) {
        MailNode *n =
            mailboxes[dst].head.exchange(nullptr,
                                         std::memory_order_acquire);
        if (!n)
            continue;
        batch.clear();
        while (n) {
            batch.emplace_back(n);
            n = batch.back()->next;
        }
        std::sort(batch.begin(), batch.end(),
                  [](const std::unique_ptr<MailNode> &a,
                     const std::unique_ptr<MailNode> &b) {
                      return std::make_tuple(a->when, a->priority,
                                             a->srcShard, a->srcSeq) <
                             std::make_tuple(b->when, b->priority,
                                             b->srcShard, b->srcSeq);
                  });
        EventQueue &q = shards[dst]->q;
        for (auto &m : batch) {
            NOVA_ASSERT(m->when >= q.now(),
                        "cross-shard post below the lookahead horizon");
            q.schedule(m->when, std::move(m->fn), m->priority);
        }
    }
}

void
ParallelScheduler::runLaneShards(std::uint32_t lane, Tick until)
{
    const std::uint32_t stride = std::min(cfg.numThreads, numShards());
    for (std::uint32_t s = lane; s < numShards(); s += stride)
        if (!shardRetired(s))
            shards[s]->q.run(until);
}

void
ParallelScheduler::noteWorkerError()
{
    std::lock_guard<std::mutex> l(poolMutex);
    if (!workerError)
        workerError = std::current_exception();
}

void
ParallelScheduler::workerLoop(std::uint32_t lane)
{
    // Shard execution is never profiled: the profiler's scope spine is
    // single-threaded (the coordinator suppresses its own lane too, so
    // results do not depend on the thread count).
    profile::Registry::ThreadSuppressor suppress;
    std::uint64_t seen = 0;
    for (;;) {
        Tick until = 0;
        {
            std::unique_lock<std::mutex> l(poolMutex);
            cvStart.wait(l, [this, &seen] {
                return stopping || generation != seen;
            });
            if (stopping)
                return;
            seen = generation;
            until = windowUntil;
        }
        // A panic inside a shard (guard trip, assertion) must reach the
        // coordinator, not std::terminate this thread.
        try {
            runLaneShards(lane, until);
        } catch (...) { // novalint:allow(silent-catch) rethrown on coordinator
            noteWorkerError();
        }
        {
            std::lock_guard<std::mutex> l(poolMutex);
            --remaining;
        }
        cvDone.notify_one();
    }
}

std::uint64_t
ParallelScheduler::runWindow(Tick until)
{
    std::uint64_t before = 0;
    for (const auto &sh : shards)
        before += sh->q.executed();

    if (workers.empty()) {
        profile::Registry::ThreadSuppressor suppress;
        for (auto &sh : shards)
            sh->q.run(until);
    } else {
        {
            std::lock_guard<std::mutex> l(poolMutex);
            windowUntil = until;
            remaining = static_cast<std::uint32_t>(workers.size());
            ++generation;
        }
        cvStart.notify_all();
        {
            profile::Registry::ThreadSuppressor suppress;
            try {
                runLaneShards(0, until);
            } catch (...) { // novalint:allow(silent-catch) rethrown below
                noteWorkerError();
            }
        }
        {
            std::unique_lock<std::mutex> l(poolMutex);
            cvDone.wait(l, [this] { return remaining == 0; });
            if (workerError) {
                std::exception_ptr err = workerError;
                workerError = nullptr;
                std::rethrow_exception(err);
            }
        }
    }

    std::uint64_t after = 0;
    for (const auto &sh : shards)
        after += sh->q.executed();
    return after - before;
}

/**
 * Fold the finished window's per-shard traces, merged by the canonical
 * (when, priority, shard, seq) order, into the global fingerprint.
 * Windows never overlap in simulated time, so concatenating per-window
 * merges reproduces the total order of the whole run.
 */
void
ParallelScheduler::mergeWindow()
{
    struct Tagged
    {
        RecentEvent ev;
        std::uint32_t shard;
    };
    std::vector<Tagged> all;
    for (std::uint32_t s = 0; s < numShards(); ++s) {
        for (const RecentEvent &ev : shards[s]->trace)
            all.push_back(Tagged{ev, s});
        shards[s]->trace.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  return std::make_tuple(a.ev.when, a.ev.priority, a.shard,
                                         a.ev.seq) <
                         std::make_tuple(b.ev.when, b.ev.priority, b.shard,
                                         b.ev.seq);
              });
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    for (const Tagged &t : all) {
        mergedFp = (mergedFp ^ t.ev.when) * prime;
        mergedFp = (mergedFp ^ static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(
                                       t.ev.priority))) *
                   prime;
        mergedFp = (mergedFp ^ t.shard) * prime;
        mergedFp = (mergedFp ^ t.ev.seq) * prime;
    }
}

std::uint64_t
ParallelScheduler::runUntilQuiescent()
{
    if (cfg.deterministicMerge) {
        for (auto &sh : shards) {
            sh->trace.clear();
            sh->q.setTraceSink(&sh->trace);
        }
    }

    std::uint64_t total = 0;
    for (;;) {
        drainMailboxes();
        Tick global_next = maxTick;
        bool any = false;
        for (const auto &sh : shards) {
            Tick t = 0;
            if (sh->q.peekNextTick(t) && (!any || t < global_next)) {
                global_next = t;
                any = true;
            }
        }
        if (!any)
            break;
        const Tick horizon = tickAdd(global_next, cfg.lookahead);
        total += runWindow(horizon - 1); // run(until) is inclusive
        if (cfg.deterministicMerge)
            mergeWindow();
    }

    if (cfg.deterministicMerge)
        for (auto &sh : shards)
            sh->q.setTraceSink(nullptr);

    // Resynchronize shard clocks so the next super-step's injections
    // (and their cross-shard consequences) share one time base.
    // Retired shards keep their frozen clocks (they never run again).
    Tick m = 0;
    for (const auto &sh : shards)
        m = std::max(m, sh->q.now());
    for (std::uint32_t s = 0; s < numShards(); ++s)
        if (!shardRetired(s))
            shards[s]->q.fastForward(m);
    return total;
}

Tick
ParallelScheduler::now() const
{
    Tick m = 0;
    for (const auto &sh : shards)
        m = std::max(m, sh->q.now());
    return m;
}

std::uint64_t
ParallelScheduler::executed() const
{
    std::uint64_t n = 0;
    for (const auto &sh : shards)
        n += sh->q.executed();
    return n;
}

std::uint64_t
ParallelScheduler::fingerprint() const
{
    constexpr std::uint64_t prime = 0x100000001b3ULL; // FNV-1a
    std::uint64_t fp = 0xcbf29ce484222325ULL;
    for (const auto &sh : shards) {
        fp = (fp ^ sh->q.fingerprint()) * prime;
        fp = (fp ^ sh->q.executed()) * prime;
        fp = (fp ^ sh->q.now()) * prime;
    }
    return fp;
}

} // namespace nova::sim
