/**
 * @file
 * nova-lint command-line driver.
 *
 * Usage: novalint [--rules=r1,r2] [--format=text|sarif]
 *                 [--output=FILE] [--list-rules] <file-or-dir>...
 *
 * Directories are walked recursively for .hh/.cc sources (build trees
 * are skipped). Exits 1 when any diagnostic is emitted, so the ctest
 * `novalint` target gates the build on a clean tree. `--format=sarif`
 * writes a SARIF 2.1.0 document (for GitHub code scanning) instead of
 * the gcc-style text lines; the exit-code contract is unchanged.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"
#include "sarif.hh"

namespace fs = std::filesystem;

namespace
{

bool
isSource(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".hpp" || ext == ".cpp" ||
           ext == ".h";
}

bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name.rfind("build", 0) == 0 || name.rfind(".", 0) == 0;
}

void
collect(const fs::path &root, std::vector<fs::path> &out)
{
    if (fs::is_regular_file(root)) {
        if (isSource(root))
            out.push_back(root);
        return;
    }
    if (!fs::is_directory(root))
        return;
    auto it = fs::recursive_directory_iterator(root);
    for (auto end = fs::end(it); it != end; ++it) {
        if (it->is_directory() && skippedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && isSource(it->path()))
            out.push_back(it->path());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::set<std::string> enabled;
    std::vector<fs::path> roots;
    std::string format = "text";
    std::string output;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &r : nova::lint::ruleNames())
                std::printf("%s\n", r.c_str());
            return 0;
        }
        if (arg.rfind("--rules=", 0) == 0) {
            std::stringstream names(arg.substr(8));
            std::string name;
            while (std::getline(names, name, ','))
                if (!name.empty())
                    enabled.insert(name);
            continue;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "sarif") {
                std::fprintf(stderr,
                             "novalint: unknown format '%s' "
                             "(text|sarif)\n",
                             format.c_str());
                return 2;
            }
            continue;
        }
        if (arg.rfind("--output=", 0) == 0) {
            output = arg.substr(9);
            continue;
        }
        if (arg == "--help" || arg == "-h") {
            std::printf("usage: novalint [--rules=r1,r2] "
                        "[--format=text|sarif] [--output=FILE] "
                        "[--list-rules] <file-or-dir>...\n");
            return 0;
        }
        roots.emplace_back(arg);
    }
    if (roots.empty()) {
        std::fprintf(stderr, "novalint: no inputs (try --help)\n");
        return 2;
    }

    std::vector<fs::path> paths;
    for (const fs::path &root : roots) {
        if (!fs::exists(root)) {
            std::fprintf(stderr, "novalint: no such path: %s\n",
                         root.string().c_str());
            return 2;
        }
        collect(root, paths);
    }
    std::sort(paths.begin(), paths.end());
    paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

    std::vector<nova::lint::SourceFile> files;
    files.reserve(paths.size());
    for (const fs::path &p : paths) {
        std::ifstream in(p, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        files.push_back({p.generic_string(), buf.str()});
    }

    const std::vector<nova::lint::Diagnostic> diags =
        nova::lint::lintFiles(files, enabled);

    if (format == "sarif") {
        const std::string doc = nova::lint::renderSarif(diags);
        if (output.empty()) {
            std::fputs(doc.c_str(), stdout);
        } else {
            std::ofstream out(output, std::ios::binary);
            if (!out) {
                std::fprintf(stderr, "novalint: cannot write %s\n",
                             output.c_str());
                return 2;
            }
            out << doc;
        }
        std::fprintf(stderr,
                     "novalint: scanned %zu files, %zu issue(s)\n",
                     files.size(), diags.size());
        return diags.empty() ? 0 : 1;
    }

    for (const nova::lint::Diagnostic &d : diags)
        std::fprintf(stderr, "%s\n",
                     nova::lint::formatDiagnostic(d).c_str());
    std::printf("novalint: scanned %zu files, %zu issue(s)\n",
                files.size(), diags.size());
    return diags.empty() ? 0 : 1;
}
